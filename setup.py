"""Setup shim: enables legacy editable installs on environments whose
setuptools lacks PEP 660 / bdist_wheel support (offline boxes without the
``wheel`` package).  All real metadata lives in pyproject.toml.
"""

from setuptools import setup

setup()
