"""Paper-reported reference numbers used as calibration targets.

Everything the paper quotes numerically is collected here so that
tests, benches, and EXPERIMENTS.md can compare simulated results
against the published measurements in one place.  Values are ratios
(CC / non-CC) unless stated otherwise.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict


@dataclass(frozen=True)
class Target:
    """One published number with the paper location it comes from."""

    value: float
    source: str
    kind: str = "ratio"  # "ratio" | "gbps" | "percent" | "us"


PAPER: Dict[str, Target] = {
    # --- Sec. VI-A: data transfer ---------------------------------------
    "pcie.cc_pin_h2d_peak_gbps": Target(3.03, "Sec. VI-A text", "gbps"),
    "crypto.aes_gcm_emr_gbps": Target(3.36, "Fig. 4b / Sec. VI-A", "gbps"),
    "crypto.ghash_emr_gbps": Target(8.9, "Fig. 4b / Sec. VI-A", "gbps"),
    "copy.mean_slowdown": Target(5.80, "Observation 3"),
    "copy.max_slowdown": Target(19.69, "Observation 3 (2dconv)"),
    "copy.min_slowdown": Target(1.17, "Sec. VI-A (cnn)"),
    # --- Sec. VI-A: memory management -----------------------------------
    "alloc.dmalloc_slowdown": Target(5.67, "Sec. VI-A (cudaMalloc)"),
    "alloc.hmalloc_slowdown": Target(5.72, "Sec. VI-A (cudaMallocHost)"),
    "alloc.free_slowdown": Target(10.54, "Sec. VI-A (cudaFree)"),
    "alloc.managed_alloc_slowdown": Target(5.43, "Sec. VI-A (cudaMallocManaged)"),
    "alloc.managed_free_slowdown": Target(3.35, "Sec. VI-A (managed cudaFree)"),
    # Relative to the non-CC non-UVM baseline:
    "alloc.uvm_alloc_vs_base": Target(0.51, "Sec. VI-A (non-CC UVM alloc)"),
    "alloc.uvm_free_vs_base": Target(3.13, "Sec. VI-A (non-CC UVM free)"),
    "alloc.cc_uvm_alloc_vs_base": Target(1.01, "Sec. VI-A (CC UVM alloc)"),
    "alloc.cc_uvm_free_vs_base": Target(18.20, "Sec. VI-A (CC UVM free)"),
    # --- Sec. VI-B: launch and execution --------------------------------
    "launch.klo_mean_slowdown": Target(1.42, "Observation 4"),
    "launch.klo_max_slowdown": Target(5.31, "Fig. 7a (dwt2d)"),
    "launch.lqt_mean_slowdown": Target(1.43, "Observation 4"),
    "launch.kqt_mean_slowdown": Target(2.32, "Observation 4"),
    "tdx.hypercall_increase_percent": Target(470.0, "Sec. VI-B [16]", "percent"),
    "ket.nonuvm_cc_increase_percent": Target(0.48, "Observation 5", "percent"),
    "ket.uvm_noncc_slowdown": Target(5.29, "Sec. VI-B (UVM vs non-UVM)"),
    "ket.uvm_cc_mean_slowdown": Target(188.87, "Observation 5"),
    "ket.uvm_cc_min_slowdown": Target(1.08, "Sec. VI-B (gramschm)"),
    "ket.uvm_cc_max_slowdown": Target(164030.65, "Sec. VI-B (2dconv)"),
    "uvm.fault_latency_low_us": Target(20.0, "Sec. II-B", "us"),
    "uvm.fault_latency_high_us": Target(50.0, "Sec. II-B", "us"),
    # --- Sec. VII-B: CNN workloads (CC effects, percent) -----------------
    "cnn.b64_throughput_drop_max": Target(36.0, "Sec. VII-B", "percent"),
    "cnn.b64_throughput_drop_mean": Target(24.0, "Sec. VII-B", "percent"),
    "cnn.b64_time_increase_max": Target(53.0, "Sec. VII-B", "percent"),
    "cnn.b64_time_increase_mean": Target(31.0, "Sec. VII-B", "percent"),
    "cnn.b1024_throughput_drop_mean": Target(7.3, "Sec. VII-B", "percent"),
    "cnn.b1024_time_increase_mean": Target(6.7, "Sec. VII-B", "percent"),
    "cnn.amp_b64_throughput_drop_max": Target(50.0, "Sec. VII-B", "percent"),
    "cnn.amp_b64_throughput_drop_mean": Target(19.7, "Sec. VII-B", "percent"),
    "cnn.amp_b64_time_increase_max": Target(92.0, "Sec. VII-B", "percent"),
    "cnn.amp_b64_time_increase_mean": Target(50.9, "Sec. VII-B", "percent"),
    "cnn.amp_b1024_throughput_gain_max": Target(40.8, "Sec. VII-B", "percent"),
    "cnn.amp_b1024_throughput_gain_mean": Target(11.8, "Sec. VII-B", "percent"),
    "cnn.amp_b1024_time_drop_mean": Target(7.8, "Sec. VII-B", "percent"),
    "cnn.amp_b1024_time_drop_max": Target(24.4, "Sec. VII-B", "percent"),
    "cnn.fp16_b1024_time_drop_mean": Target(27.7, "Sec. VII-B", "percent"),
    "cnn.fp16_b1024_time_drop_max": Target(46.1, "Sec. VII-B", "percent"),
}


def target(key: str) -> Target:
    """Look up a paper target, raising with context on typos."""
    try:
        return PAPER[key]
    except KeyError:
        raise KeyError(f"unknown calibration target {key!r}") from None


def within(measured: float, key: str, rel_tol: float) -> bool:
    """True if ``measured`` is within ``rel_tol`` of the paper value."""
    reference = target(key).value
    if reference == 0:
        return abs(measured) <= rel_tol
    return abs(measured - reference) / abs(reference) <= rel_tol
