"""Golden-snapshot gate: ``repro check golden [--update]``.

A golden is the canonical result payload for one figure/variant cell,
committed under ``results/golden/<figure_id>.json``.  The gate re-runs
the grid (cache-served when nothing changed) and structurally diffs
every payload against its golden under a tolerance
(:mod:`repro.check.differ`); any drift — a moved number, a dropped
row, a missing golden — is a ``GOLDEN_DRIFT`` verdict (exit 4).

Goldens are updated *only* deliberately: ``repro check golden
--update`` rewrites the snapshot files from the current run, and the
resulting ``results/golden/`` diff is reviewed like any other code
change.  The configs behind a snapshot come from the same
:func:`repro.config.grid_system_configs` pair the runner fingerprints,
so a snapshot can always be reproduced locally by a default run.
"""

from __future__ import annotations

import json
import os
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence

from ..exec import fingerprint
from . import EXIT_GOLDEN_DRIFT, EXIT_OK
from .differ import PayloadDiff, Tolerance, diff_payloads, render_report
from .gate import PayloadSet, collect_payloads, default_golden_dir

#: Default comparison band.  The simulator is deterministic, so golden
#: payloads reproduce exactly; the tiny relative band only absorbs
#: float round-trip noise across platforms/python versions.
DEFAULT_TOLERANCE = Tolerance(rel=1e-9, abs=1e-12)


def golden_path(golden_dir: str, figure_id: str) -> str:
    return os.path.join(golden_dir, f"{figure_id}.json")


@dataclass
class GoldenReport:
    """Outcome of one golden verify/update pass."""

    diffs: List[PayloadDiff] = field(default_factory=list)
    failures: List[str] = field(default_factory=list)
    updated: List[str] = field(default_factory=list)
    config_hash: str = ""

    @property
    def drifted(self) -> List[PayloadDiff]:
        return [d for d in self.diffs if not d.clean]

    @property
    def ok(self) -> bool:
        return not self.drifted and not self.failures

    @property
    def exit_code(self) -> int:
        return EXIT_OK if self.ok else EXIT_GOLDEN_DRIFT

    @property
    def verdict(self) -> str:
        return "OK" if self.ok else "GOLDEN_DRIFT"

    def render(self) -> str:
        lines: List[str] = []
        if self.updated:
            lines.append(
                f"updated {len(self.updated)} golden snapshot(s): "
                + ", ".join(self.updated)
            )
        clean = sum(1 for d in self.diffs if d.clean)
        lines.append(
            f"golden gate: {clean}/{len(self.diffs)} payload(s) match "
            f"(config {self.config_hash[:12]})"
        )
        if self.drifted:
            lines.append(render_report(self.diffs))
        for failure in self.failures:
            lines.append(f"FAILED {failure}")
        lines.append(f"verdict: {self.verdict}")
        return "\n".join(lines)

    def details(self) -> Dict[str, object]:
        return {
            "config_hash": self.config_hash,
            "checked": [d.figure_id for d in self.diffs],
            "drifted": {
                d.figure_id: (
                    d.error
                    or [
                        {
                            "path": diff.path,
                            "kind": diff.kind,
                            "golden": _jsonable(diff.golden),
                            "current": _jsonable(diff.current),
                        }
                        for diff in d.differences[:50]
                    ]
                )
                for d in self.drifted
            },
            "failures": self.failures,
        }


def _jsonable(value: object) -> object:
    if isinstance(value, float) and value != value:  # NaN
        return "NaN"
    return value


def _diff_one(
    figure_id: str,
    current: dict,
    golden_dir: str,
    results_dir_label: str,
    tol: Tolerance,
) -> PayloadDiff:
    path = golden_path(golden_dir, figure_id)
    result = PayloadDiff(
        figure_id=figure_id,
        golden_path=path,
        current_path=os.path.join(results_dir_label, f"{figure_id}.json"),
    )
    try:
        with open(path) as handle:
            golden = json.load(handle)
    except FileNotFoundError:
        result.error = (
            "no golden snapshot; run `repro check golden --update` and "
            "commit the new file"
        )
        return result
    except (OSError, json.JSONDecodeError) as exc:
        result.error = f"unreadable golden: {exc}"
        return result
    result.differences = diff_payloads(golden, current, tol)
    return result


def check_golden(
    cells: Sequence[str],
    results_dir: Optional[str] = None,
    golden_dir: Optional[str] = None,
    jobs: int = 1,
    update: bool = False,
    use_cache: bool = True,
    tol: Tolerance = DEFAULT_TOLERANCE,
    payload_set: Optional[PayloadSet] = None,
) -> GoldenReport:
    """Verify (or with ``update=True`` refresh) golden snapshots."""
    golden_dir = golden_dir or default_golden_dir()
    if payload_set is None:
        payload_set = collect_payloads(cells, results_dir, jobs, use_cache)
    report = GoldenReport(
        failures=list(payload_set.failures),
        config_hash=fingerprint.grid_config_hash(),
    )
    results_label = results_dir or "results"
    for figure_id in sorted(payload_set.payloads):
        current = payload_set.payloads[figure_id]
        if update:
            os.makedirs(golden_dir, exist_ok=True)
            with open(golden_path(golden_dir, figure_id), "w") as handle:
                json.dump(current, handle, indent=1)
                handle.write("\n")
            report.updated.append(figure_id)
        report.diffs.append(
            _diff_one(figure_id, current, golden_dir, results_label, tol)
        )
    return report
