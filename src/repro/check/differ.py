"""Tolerance-aware structural diff between two figure payloads.

The golden gate compares the JSON payload a figure produced today
against the canonical snapshot committed under ``results/golden/``.
Payloads are trees of dicts/lists/scalars; the differ walks both trees
in lockstep and reports every mismatch with its JSON path, so a drift
report reads like a unified diff of the exact cells that moved:

    --- golden/fig05_copytime.json
    +++ results/fig05_copytime.json
    @ rows[3][5]
    - 12.482
    + 13.007   (rel err 4.21e-02 > tol 1e-09)

Numbers compare under a per-call :class:`Tolerance` (absolute OR
relative — passing either suffices); NaN equals NaN (a payload that
legitimately contains NaN must stay reproducible); bools compare as
bools, never as the integers Python pretends they are.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import Any, Iterator, List, Optional


@dataclass(frozen=True)
class Tolerance:
    """Numeric comparison band: equal if |a-b| <= abs_tol OR the
    relative error against max(|a|,|b|) is <= rel_tol."""

    rel: float = 1e-9
    abs: float = 1e-12

    def numbers_equal(self, golden: float, current: float) -> bool:
        golden_nan = isinstance(golden, float) and math.isnan(golden)
        current_nan = isinstance(current, float) and math.isnan(current)
        if golden_nan or current_nan:
            return golden_nan and current_nan
        if math.isinf(golden) or math.isinf(current):
            return golden == current
        delta = abs(float(golden) - float(current))
        if delta <= self.abs:
            return True
        scale = max(abs(float(golden)), abs(float(current)))
        return scale > 0 and delta / scale <= self.rel


@dataclass
class Difference:
    """One structural or numeric mismatch between golden and current."""

    path: str
    kind: str  # "value" | "type" | "missing" | "extra" | "length"
    golden: Any = None
    current: Any = None
    detail: str = ""


def _is_number(value: Any) -> bool:
    return isinstance(value, (int, float)) and not isinstance(value, bool)


def _walk(
    path: str, golden: Any, current: Any, tol: Tolerance
) -> Iterator[Difference]:
    if _is_number(golden) and _is_number(current):
        if not tol.numbers_equal(golden, current):
            delta = abs(float(golden) - float(current))
            scale = max(abs(float(golden)), abs(float(current)))
            rel = delta / scale if scale else math.inf
            yield Difference(
                path, "value", golden, current,
                detail=f"rel err {rel:.2e} > tol {tol.rel:g}",
            )
        return
    if type(golden) is not type(current):
        yield Difference(
            path, "type", golden, current,
            detail=f"{type(golden).__name__} became {type(current).__name__}",
        )
        return
    if isinstance(golden, dict):
        for key in golden:
            if key not in current:
                yield Difference(f"{path}.{key}", "missing", golden=golden[key],
                                 detail="key dropped from current payload")
        for key in current:
            if key not in golden:
                yield Difference(f"{path}.{key}", "extra", current=current[key],
                                 detail="key absent from golden")
        for key in golden:
            if key in current:
                yield from _walk(f"{path}.{key}", golden[key], current[key], tol)
        return
    if isinstance(golden, list):
        if len(golden) != len(current):
            yield Difference(
                path, "length", len(golden), len(current),
                detail=f"{len(golden)} items became {len(current)}",
            )
        for index, (g_item, c_item) in enumerate(zip(golden, current)):
            yield from _walk(f"{path}[{index}]", g_item, c_item, tol)
        return
    if golden != current:
        yield Difference(path, "value", golden, current)


def diff_payloads(
    golden: Any, current: Any, tol: Optional[Tolerance] = None
) -> List[Difference]:
    """Every mismatch between two payload trees, in document order."""
    return list(_walk("$", golden, current, tol or Tolerance()))


@dataclass
class PayloadDiff:
    """The diff of one figure against its golden snapshot."""

    figure_id: str
    golden_path: str
    current_path: str
    differences: List[Difference] = field(default_factory=list)
    error: str = ""  # e.g. missing/corrupt golden file

    @property
    def clean(self) -> bool:
        return not self.differences and not self.error


def _render_side(value: Any) -> str:
    text = repr(value)
    return text if len(text) <= 120 else text[:117] + "..."


def render_report(diffs: List[PayloadDiff], max_per_figure: int = 20) -> str:
    """Unified-diff-style drift report over every non-clean figure."""
    lines: List[str] = []
    for payload_diff in diffs:
        if payload_diff.clean:
            continue
        lines.append(f"--- {payload_diff.golden_path}")
        lines.append(f"+++ {payload_diff.current_path}")
        if payload_diff.error:
            lines.append(f"!! {payload_diff.error}")
        shown = payload_diff.differences[:max_per_figure]
        for difference in shown:
            lines.append(f"@ {difference.path} ({difference.kind})")
            if difference.kind != "extra":
                lines.append(f"- {_render_side(difference.golden)}")
            if difference.kind != "missing":
                suffix = f"   ({difference.detail})" if difference.detail else ""
                lines.append(f"+ {_render_side(difference.current)}{suffix}")
            elif difference.detail:
                lines.append(f"  ({difference.detail})")
        hidden = len(payload_diff.differences) - len(shown)
        if hidden > 0:
            lines.append(f"  ... and {hidden} more difference(s)")
        lines.append("")
    if not lines:
        return "no drift: every payload matches its golden snapshot"
    total = sum(len(d.differences) for d in diffs)
    drifted = sum(1 for d in diffs if not d.clean)
    lines.append(
        f"{drifted} figure(s) drifted, {total} difference(s) total"
    )
    return "\n".join(lines)
