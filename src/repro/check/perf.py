"""Perf-budget gate: ``repro check perf [--quick] [--update]``.

Times the tier-1 grid for real (cache bypassed, min-of-N wall clock
per cell via :func:`repro.exec.runner.bench_cell`) plus a set of
simulator benches (catalogue apps run end to end, reporting both the
deterministic simulated span and the simulated-ns-per-wall-second
throughput), and compares the result against the committed
``BENCH_baseline.json``.

A cell whose wall time exceeds ``baseline * (1 + band)`` is a
``PERF_REGRESSION`` verdict (exit 5).  Simulated spans are
deterministic, so a *sim_ns* change is reported as behavioural drift
info — the golden/accuracy gates own that failure mode; this gate owns
wall clock.  Faster-than-baseline cells beyond the band are reported
as a hint to refresh the baseline (``--update``), never as a failure.

Wall-clock comparisons are only meaningful against a baseline recorded
on comparable hardware; the default band (75%) absorbs normal
machine-to-machine spread, and CI runs this gate warn-only on pull
requests (hard gate on main).
"""

from __future__ import annotations

import json
import os
import platform
import time
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence

from ..config import resolve_system_configs
from ..cuda import run_app
from ..exec import fingerprint
from ..exec import runner as exec_runner
from ..figures.common import default_results_dir
from ..obs import MetricsRegistry
from ..workloads import CATALOG
from . import EXIT_OK, EXIT_PERF_REGRESSION

BASELINE_VERSION = 1
DEFAULT_BAND = 0.75
DEFAULT_REPEATS = 3
#: Absolute slack added to every wall budget: below this scale a
#: relative band gates scheduler jitter, not code.
DEFAULT_NOISE_FLOOR_NS = 50_000_000

#: Cells the --quick smoke times (a cross-section of the fast grid
#: plus the storm-heavy serving cell, which exercises the bucketed
#: event-kernel path the figure cells barely touch).
QUICK_CELLS = ("table1", "fig04a", "fig04b", "fig05", "fig07", "ext_serving")

#: Simulator benches: deterministic end-to-end app runs.  Keys are the
#: baseline entry names; values are (app, cc) resolved through the
#: shared config path so `repro run APP [--cc]` times the same thing.
SIM_BENCHES: Dict[str, tuple] = {
    "gemm.base": ("gemm", False),
    "gemm.cc": ("gemm", True),
    "hotspot.cc": ("hotspot", True),
}


def default_baseline_path() -> str:
    return os.path.join(
        os.path.dirname(default_results_dir()), "BENCH_baseline.json"
    )


def perf_cells(quick: bool = False) -> List[str]:
    if quick:
        return list(QUICK_CELLS)
    cells = exec_runner.default_cells(include_slow=False)
    if "ext_serving" not in cells:  # slow cell, but perf-critical
        cells.append("ext_serving")
    return cells


@dataclass
class PerfEntry:
    """One timed unit (grid cell or simulator bench)."""

    name: str
    wall_ns: int
    # Final simulator clock: trace span for sim benches; for grid cells
    # the summed final clock of every Simulator the cell ran (0 only
    # for purely analytic cells such as table1).
    sim_ns: int = 0

    @property
    def sim_ns_per_wall_s(self) -> float:
        return self.sim_ns / (self.wall_ns / 1e9) if self.wall_ns else 0.0


def measure(
    cells: Sequence[str],
    repeats: int = DEFAULT_REPEATS,
    sim_benches: Optional[Dict[str, tuple]] = None,
    metrics: Optional[MetricsRegistry] = None,
) -> Dict[str, PerfEntry]:
    """Time the named cells and sim benches; min-of-N wall each."""
    metrics = metrics if metrics is not None else MetricsRegistry()
    entries: Dict[str, PerfEntry] = {}
    for cell_id in cells:
        payload = exec_runner.bench_cell(cell_id, repeats, metrics=metrics)
        if not payload["ok"]:
            raise RuntimeError(f"perf bench {cell_id} failed: {payload['error']}")
        entries[f"cell:{cell_id}"] = PerfEntry(
            name=f"cell:{cell_id}",
            wall_ns=payload["wall_ns_min"],
            sim_ns=payload.get("sim_ns", 0),
        )
    benches = SIM_BENCHES if sim_benches is None else sim_benches
    for name, (app_name, cc) in benches.items():
        config = resolve_system_configs(cc=cc)
        info = CATALOG[app_name]
        walls: List[int] = []
        sim_ns = 0
        for _ in range(max(1, repeats)):
            started = time.perf_counter_ns()
            trace, _ = run_app(info.app(False), config, label=app_name)
            wall = time.perf_counter_ns() - started
            walls.append(wall)
            sim_ns = trace.span_ns()
            metrics.histogram(f"check.perf.sim.{name}.wall_ns").observe(wall)
        entries[f"sim:{name}"] = PerfEntry(
            name=f"sim:{name}", wall_ns=min(walls), sim_ns=sim_ns
        )
    return entries


def save_baseline(
    entries: Dict[str, PerfEntry], path: str, repeats: int
) -> str:
    payload = {
        "version": BASELINE_VERSION,
        "config_hash": fingerprint.grid_config_hash(),
        "repeats": repeats,
        "host": {
            "python": platform.python_version(),
            "machine": platform.machine(),
        },
        "entries": {
            entry.name: {
                "wall_ns": entry.wall_ns,
                "sim_ns": entry.sim_ns,
                "sim_ns_per_wall_s": round(entry.sim_ns_per_wall_s, 1),
            }
            for entry in entries.values()
        },
    }
    with open(path, "w") as handle:
        json.dump(payload, handle, indent=1, sort_keys=True)
        handle.write("\n")
    return path


def validate_baseline(baseline: dict, path: str = "") -> None:
    """Schema gate for a loaded baseline.

    Guards against the zeroed-``sim_ns`` accounting bug ever being
    recorded again: every entry needs a positive ``wall_ns``, every
    ``sim:*`` bench a positive ``sim_ns``, a ``sim_ns_per_wall_s``
    consistent with the pair — and a baseline whose *cell* entries are
    all zero-``sim_ns`` (the harness not plumbing the simulator clock
    at all) is rejected outright.  Individual analytic cells (e.g.
    ``table1``, which never spins up a simulator) may be zero.
    """
    where = path or "<baseline>"
    entries = baseline.get("entries")
    if not isinstance(entries, dict) or not entries:
        raise ValueError(f"{where}: baseline has no entries")
    cell_sim_ns: List[int] = []
    for name, entry in entries.items():
        wall_ns = entry.get("wall_ns")
        sim_ns = entry.get("sim_ns")
        rate = entry.get("sim_ns_per_wall_s")
        if not isinstance(wall_ns, int) or wall_ns <= 0:
            raise ValueError(
                f"{where}: entry {name!r} has invalid wall_ns={wall_ns!r}"
            )
        if not isinstance(sim_ns, int) or sim_ns < 0:
            raise ValueError(
                f"{where}: entry {name!r} has invalid sim_ns={sim_ns!r}"
            )
        if not isinstance(rate, (int, float)) or (sim_ns > 0) != (rate > 0):
            raise ValueError(
                f"{where}: entry {name!r} has sim_ns_per_wall_s={rate!r} "
                f"inconsistent with sim_ns={sim_ns}"
            )
        if name.startswith("sim:") and sim_ns == 0:
            raise ValueError(
                f"{where}: sim bench {name!r} recorded sim_ns=0 "
                f"(zeroed accounting)"
            )
        if name.startswith("cell:"):
            cell_sim_ns.append(sim_ns)
    if cell_sim_ns and not any(cell_sim_ns):
        raise ValueError(
            f"{where}: every cell entry has sim_ns=0 — the harness is "
            f"not recording the simulator clock (zeroed accounting bug)"
        )


def load_baseline(path: str) -> dict:
    with open(path) as handle:
        baseline = json.load(handle)
    if (
        not isinstance(baseline, dict)
        or baseline.get("version") != BASELINE_VERSION
        or not isinstance(baseline.get("entries"), dict)
    ):
        raise ValueError(f"{path}: not a v{BASELINE_VERSION} perf baseline")
    validate_baseline(baseline, path)
    return baseline


@dataclass
class PerfComparison:
    """Current-vs-baseline verdict for one entry."""

    name: str
    baseline_wall_ns: int
    current_wall_ns: int
    status: str  # "ok" | "regression" | "improved"
    note: str = ""

    @property
    def ratio(self) -> float:
        return (
            self.current_wall_ns / self.baseline_wall_ns
            if self.baseline_wall_ns
            else float("inf")
        )


@dataclass
class PerfReport:
    """Outcome of one perf-gate pass."""

    comparisons: List[PerfComparison] = field(default_factory=list)
    band: float = DEFAULT_BAND
    notes: List[str] = field(default_factory=list)
    baseline_path: str = ""

    @property
    def regressions(self) -> List[PerfComparison]:
        return [c for c in self.comparisons if c.status == "regression"]

    @property
    def ok(self) -> bool:
        return not self.regressions

    @property
    def exit_code(self) -> int:
        return EXIT_OK if self.ok else EXIT_PERF_REGRESSION

    @property
    def verdict(self) -> str:
        return "OK" if self.ok else "PERF_REGRESSION"

    def render(self) -> str:
        width = max([5] + [len(c.name) for c in self.comparisons]) + 2
        lines = [
            f"perf gate vs {self.baseline_path} (band +{100 * self.band:.0f}%)",
            f"{'entry':<{width}}{'base_ms':>10}{'now_ms':>10}{'ratio':>8}"
            f"  status",
            "-" * (width + 36),
        ]
        for comparison in self.comparisons:
            lines.append(
                f"{comparison.name:<{width}}"
                f"{comparison.baseline_wall_ns / 1e6:>10.1f}"
                f"{comparison.current_wall_ns / 1e6:>10.1f}"
                f"{comparison.ratio:>8.2f}  {comparison.status}"
                + (f"  ({comparison.note})" if comparison.note else "")
            )
        for note in self.notes:
            lines.append(f"note: {note}")
        lines.append(f"verdict: {self.verdict}")
        return "\n".join(lines)

    def details(self) -> Dict[str, object]:
        return {
            "band": self.band,
            "baseline": self.baseline_path,
            "entries": {
                c.name: {
                    "baseline_wall_ns": c.baseline_wall_ns,
                    "current_wall_ns": c.current_wall_ns,
                    "ratio": round(c.ratio, 4),
                    "status": c.status,
                    "note": c.note,
                }
                for c in self.comparisons
            },
            "notes": self.notes,
        }


def compare(
    baseline: dict,
    entries: Dict[str, PerfEntry],
    band: float = DEFAULT_BAND,
    baseline_path: str = "",
    noise_floor_ns: int = DEFAULT_NOISE_FLOOR_NS,
) -> PerfReport:
    """Gate current timings against a loaded baseline.

    An entry regresses when it exceeds ``baseline * (1 + band) +
    noise_floor_ns``: the relative band owns the cells that run long
    enough for a ratio to mean anything, while the absolute floor keeps
    sub-millisecond benches — where scheduler jitter alone is tens of
    percent — from tripping a tight band on noise.
    """
    report = PerfReport(band=band, baseline_path=baseline_path)
    recorded = baseline["entries"]
    if baseline.get("config_hash") not in ("", None, fingerprint.grid_config_hash()):
        report.notes.append(
            "baseline was recorded under a different SystemConfig "
            "(sim-time drift is expected; wall budgets still apply)"
        )
    for name in sorted(entries):
        entry = entries[name]
        if name not in recorded:
            report.notes.append(
                f"{name}: no baseline entry (new bench? run --update)"
            )
            continue
        base_wall = int(recorded[name]["wall_ns"])
        status = "ok"
        note = ""
        if entry.wall_ns > base_wall * (1.0 + band) + noise_floor_ns:
            status = "regression"
            note = f"exceeds +{100 * band:.0f}% budget"
        elif entry.wall_ns * (1.0 + band) + noise_floor_ns < base_wall:
            status = "improved"
            note = "beyond band; consider --update"
        base_sim = int(recorded[name].get("sim_ns", 0))
        if entry.sim_ns and base_sim and entry.sim_ns != base_sim:
            report.notes.append(
                f"{name}: simulated span changed "
                f"{base_sim} -> {entry.sim_ns} ns (behavioural drift; "
                f"the golden gate owns this)"
            )
        report.comparisons.append(
            PerfComparison(name, base_wall, entry.wall_ns, status, note)
        )
    for name in sorted(set(recorded) - set(entries)):
        report.notes.append(f"{name}: in baseline but not timed this run")
    return report
