"""Shared plumbing for the three ``repro check`` gates.

Every gate needs the same three things: the set of grid cells it
covers, the current payloads for those cells (produced through the
cache-aware harness, so a warm checkout gates at cache speed), and a
machine-readable verdict file CI can parse without scraping stdout.
"""

from __future__ import annotations

import json
import os
from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional, Sequence

from ..exec import runner as exec_runner
from ..figures.common import default_results_dir
from . import VERDICTS


def default_golden_dir() -> str:
    return os.path.join(default_results_dir(), "golden")


def gate_cells(
    tokens: Sequence[str] = (), full: bool = False
) -> List[str]:
    """Cells a gate covers: explicit tokens, else the fast grid
    (``--full`` adds the slow figures and extensions)."""
    if tokens:
        return exec_runner.resolve_cells(tokens)
    return exec_runner.default_cells(include_slow=full)


@dataclass
class PayloadSet:
    """Current payloads for one gate run, keyed by figure id."""

    payloads: Dict[str, dict] = field(default_factory=dict)
    cell_of: Dict[str, str] = field(default_factory=dict)
    failures: List[str] = field(default_factory=list)  # "cell: error"


def collect_payloads(
    cells: Sequence[str],
    results_dir: Optional[str] = None,
    jobs: int = 1,
    use_cache: bool = True,
) -> PayloadSet:
    """Run the named cells through the harness and load their payloads."""
    results_dir = results_dir or default_results_dir()
    report = exec_runner.run_grid(
        cells, jobs=max(1, jobs), results_dir=results_dir, use_cache=use_cache,
    )
    out = PayloadSet()
    for outcome in report.outcomes:
        if not outcome.ok:
            out.failures.append(f"{outcome.cell}: {outcome.error}")
            continue
        with open(outcome.json_path) as handle:
            out.payloads[outcome.figure_id] = json.load(handle)
        out.cell_of[outcome.figure_id] = outcome.cell
    return out


def write_verdict(
    path: str, gate: str, verdict: str, details: Dict[str, Any]
) -> str:
    """Persist one gate's machine-readable verdict for CI."""
    payload = {
        "gate": gate,
        "verdict": verdict,
        "exit_code": VERDICTS[verdict],
        "exit_codes": dict(VERDICTS),
        **details,
    }
    parent = os.path.dirname(os.path.abspath(path))
    os.makedirs(parent, exist_ok=True)
    with open(path, "w") as handle:
        json.dump(payload, handle, indent=1, sort_keys=True)
        handle.write("\n")
    return path
