"""Regression gating: golden snapshots, paper-accuracy scoring, and
perf budgets (``repro check golden|accuracy|perf``).

Each gate returns a typed exit code so CI can gate on each
independently:

===========================  =====  ==============================================
verdict                      exit   meaning
===========================  =====  ==============================================
``OK``                       0      gate passed
``ACCURACY_DRIFT``           3      a figure's reproduction error breached its
                                    per-figure threshold (or the paper-target
                                    table is out of sync with a figure module)
``GOLDEN_DRIFT``             4      a result payload no longer matches its
                                    committed golden snapshot in
                                    ``results/golden/``
``PERF_REGRESSION``          5      harness wall-clock exceeded the committed
                                    ``BENCH_baseline.json`` tolerance band
===========================  =====  ==============================================

Exit codes 1 and 2 keep their conventional meanings (unexpected error,
argparse usage error), so a gate verdict is never conflated with a
crash.  See docs/architecture.md §10 for the gating model and how to
refresh goldens/baselines legitimately.
"""

from __future__ import annotations

EXIT_OK = 0
EXIT_ACCURACY_DRIFT = 3
EXIT_GOLDEN_DRIFT = 4
EXIT_PERF_REGRESSION = 5

#: verdict-name <-> exit-code table, stamped into machine-readable
#: verdict files so CI scripts never hard-code the numbers.
VERDICTS = {
    "OK": EXIT_OK,
    "ACCURACY_DRIFT": EXIT_ACCURACY_DRIFT,
    "GOLDEN_DRIFT": EXIT_GOLDEN_DRIFT,
    "PERF_REGRESSION": EXIT_PERF_REGRESSION,
}

__all__ = [
    "EXIT_OK",
    "EXIT_ACCURACY_DRIFT",
    "EXIT_GOLDEN_DRIFT",
    "EXIT_PERF_REGRESSION",
    "VERDICTS",
]
