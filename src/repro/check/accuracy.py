"""Paper-accuracy gate: ``repro check accuracy``.

Scores how faithfully each figure reproduces the paper's reported
numbers.  Every figure payload carries its paper-vs-measured
comparison rows; this gate re-derives the relative error of each
*quantitative* metric against the canonical target table
(:mod:`repro.check.paper_targets`), aggregates per figure (worst-case
and geomean), and fails with ``ACCURACY_DRIFT`` (exit 3) when any
figure's worst-case error breaches its per-figure threshold — or when
a payload's embedded paper value disagrees with the table, which means
a figure module and the gate have drifted apart.

Qualitative targets (direction predicates like "ratio > 1") are
excluded from error scoring; the golden gate pins their exact values.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence

from . import EXIT_ACCURACY_DRIFT, EXIT_OK
from .gate import PayloadSet, collect_payloads
from .paper_targets import target_for, threshold_for


@dataclass
class MetricScore:
    """Reproduction error of one quantitative figure metric."""

    figure_id: str
    metric: str
    paper: float
    measured: float
    rel_err_pct: float

    @classmethod
    def from_values(
        cls, figure_id: str, metric: str, paper: float, measured: float
    ) -> "MetricScore":
        scale = abs(paper)
        if scale == 0 or math.isnan(measured) or math.isinf(measured):
            err = math.inf if measured != paper else 0.0
        else:
            err = 100.0 * abs(measured - paper) / scale
        return cls(figure_id, metric, paper, measured, err)


@dataclass
class FigureScore:
    """Accuracy aggregate for one figure."""

    figure_id: str
    scores: List[MetricScore] = field(default_factory=list)
    qualitative: int = 0
    unregistered: List[str] = field(default_factory=list)
    table_mismatches: List[str] = field(default_factory=list)

    @property
    def threshold_pct(self) -> float:
        return threshold_for(self.figure_id)

    @property
    def worst_pct(self) -> float:
        return max((s.rel_err_pct for s in self.scores), default=0.0)

    @property
    def geomean_pct(self) -> float:
        """Geometric mean of per-metric errors (floored at 0.01% so a
        perfect metric doesn't zero the product)."""
        if not self.scores:
            return 0.0
        logs = [math.log(max(s.rel_err_pct, 0.01)) for s in self.scores]
        return math.exp(sum(logs) / len(logs))

    @property
    def breached(self) -> bool:
        return (
            self.worst_pct > self.threshold_pct
            or bool(self.unregistered)
            or bool(self.table_mismatches)
        )


def score_payload(figure_id: str, payload: dict) -> FigureScore:
    """Score one figure payload's comparison rows against the table."""
    figure_score = FigureScore(figure_id=figure_id)
    for item in payload.get("comparisons", []):
        metric = item["metric"]
        target = target_for(figure_id, metric)
        if target is None:
            figure_score.unregistered.append(metric)
            continue
        embedded = float(item["paper"])
        if not math.isclose(embedded, target.value, rel_tol=1e-12, abs_tol=0.0):
            figure_score.table_mismatches.append(
                f"{metric}: payload embeds paper={embedded!r}, "
                f"table says {target.value!r}"
            )
            continue
        if target.qualitative:
            figure_score.qualitative += 1
            continue
        figure_score.scores.append(
            MetricScore.from_values(
                figure_id, metric, target.value, float(item["measured"])
            )
        )
    return figure_score


@dataclass
class AccuracyReport:
    """Outcome of one accuracy-gate pass over many figures."""

    figures: List[FigureScore] = field(default_factory=list)
    failures: List[str] = field(default_factory=list)

    @property
    def breached(self) -> List[FigureScore]:
        return [f for f in self.figures if f.breached]

    @property
    def ok(self) -> bool:
        return not self.breached and not self.failures

    @property
    def exit_code(self) -> int:
        return EXIT_OK if self.ok else EXIT_ACCURACY_DRIFT

    @property
    def verdict(self) -> str:
        return "OK" if self.ok else "ACCURACY_DRIFT"

    def worst(self) -> Optional[MetricScore]:
        scores = [s for f in self.figures for s in f.scores]
        return max(scores, key=lambda s: s.rel_err_pct, default=None)

    def render(self, top: int = 5) -> str:
        lines = [
            f"{'figure':<26}{'metrics':>8}{'qual':>6}{'worst_%':>9}"
            f"{'geomean_%':>11}{'budget_%':>10}  status",
            "-" * 78,
        ]
        for figure_score in self.figures:
            status = "BREACH" if figure_score.breached else "ok"
            lines.append(
                f"{figure_score.figure_id:<26}{len(figure_score.scores):>8}"
                f"{figure_score.qualitative:>6}{figure_score.worst_pct:>9.2f}"
                f"{figure_score.geomean_pct:>11.2f}"
                f"{figure_score.threshold_pct:>10.1f}  {status}"
            )
            for metric in figure_score.unregistered:
                lines.append(f"    unregistered metric: {metric!r}")
            for mismatch in figure_score.table_mismatches:
                lines.append(f"    target-table mismatch: {mismatch}")
        worst_scores = sorted(
            (s for f in self.figures for s in f.scores),
            key=lambda s: s.rel_err_pct, reverse=True,
        )[:top]
        if worst_scores:
            lines.append("")
            lines.append("largest reproduction errors:")
            for score in worst_scores:
                lines.append(
                    f"  {score.rel_err_pct:7.2f}%  {score.figure_id}: "
                    f"{score.metric} (paper={score.paper:g}, "
                    f"measured={score.measured:g})"
                )
        for failure in self.failures:
            lines.append(f"FAILED {failure}")
        lines.append(f"verdict: {self.verdict}")
        return "\n".join(lines)

    def details(self) -> Dict[str, object]:
        return {
            "figures": {
                f.figure_id: {
                    "worst_pct": f.worst_pct,
                    "geomean_pct": f.geomean_pct,
                    "threshold_pct": f.threshold_pct,
                    "breached": f.breached,
                    "unregistered": f.unregistered,
                    "table_mismatches": f.table_mismatches,
                    "metrics": {
                        s.metric: {
                            "paper": s.paper,
                            "measured": s.measured,
                            "rel_err_pct": (
                                s.rel_err_pct
                                if math.isfinite(s.rel_err_pct)
                                else "inf"
                            ),
                        }
                        for s in f.scores
                    },
                }
                for f in self.figures
            },
            "failures": self.failures,
        }


def check_accuracy(
    cells: Sequence[str],
    results_dir: Optional[str] = None,
    jobs: int = 1,
    use_cache: bool = True,
    payload_set: Optional[PayloadSet] = None,
) -> AccuracyReport:
    """Run the accuracy gate over the named grid cells."""
    if payload_set is None:
        payload_set = collect_payloads(cells, results_dir, jobs, use_cache)
    report = AccuracyReport(failures=list(payload_set.failures))
    for figure_id in sorted(payload_set.payloads):
        report.figures.append(
            score_payload(figure_id, payload_set.payloads[figure_id])
        )
    return report
