"""The paper's reported values, per figure and comparison metric.

This table is the single source of truth for every number the figure
modules compare themselves against: each ``FigureResult``'s
paper-vs-measured comparison (``add_paper_comparison`` in
:mod:`repro.figures.common`) resolves its paper value here, and the
accuracy gate (:mod:`repro.check.accuracy`) scores reproduction error
against the same entries — so a figure module cannot silently drift
away from the numbers the gate enforces.

Values come from :data:`repro.calibration.PAPER` where the paper
states them directly (``_ref``), and from the figure modules' own
derived/qualitative expectations otherwise (``_lit``).  A target
marked ``qualitative`` encodes a direction or predicate ("ratio > 1",
"panel A >> panel C") rather than a published magnitude; qualitative
targets are excluded from relative-error scoring — the golden gate
pins their exact values instead.

``ACCURACY_THRESHOLDS`` holds the per-figure accuracy budget: the
maximum allowed per-metric relative error (percent) across that
figure's quantitative comparisons.  Budgets are set from the achieved
calibration quality with headroom (see EXPERIMENTS.md), so a core
refactor that degrades a figure's reproduction trips the gate before
it lands.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Optional

from ..calibration import PAPER


@dataclass(frozen=True)
class PaperTarget:
    """One paper-reported (or expected) value for a figure metric."""

    value: float
    qualitative: bool = False
    source: str = ""


def _ref(key: str) -> PaperTarget:
    """A value the paper reports directly (see repro.calibration)."""
    target = PAPER[key]
    return PaperTarget(target.value, source=target.source)


def _lit(value: float, qualitative: bool = False, source: str = "") -> PaperTarget:
    return PaperTarget(value, qualitative=qualitative, source=source)


TARGETS: Dict[str, Dict[str, PaperTarget]] = {
    "fig01_overview": {
        "cc-on / cc-off end-to-end (qualitative: > 1)":
            _lit(1.0, qualitative=True, source="Fig. 1 structure"),
        "cc-on-uvm / cc-on end-to-end (qualitative: >> 1)":
            _lit(1.0, qualitative=True, source="Fig. 1 structure"),
    },
    "fig03_perfmodel": {
        "max |prediction error| (qualitative: small)":
            _lit(0.0, qualitative=True, source="Sec. V model fit"),
    },
    "fig04a_bandwidth": {
        "CC pin-h2d peak GB/s": _ref("pcie.cc_pin_h2d_peak_gbps"),
        "base pinned h2d peak GB/s (paper-class ~25)":
            _lit(25.0, source="Fig. 4a (non-CC pinned plateau)"),
    },
    "fig04b_crypto": {
        "AES-GCM peak on EMR GB/s": _ref("crypto.aes_gcm_emr_gbps"),
        "GHASH peak on EMR GB/s": _ref("crypto.ghash_emr_gbps"),
    },
    "fig05_copytime": {
        "mean copy slowdown": _ref("copy.mean_slowdown"),
        "max copy slowdown (2dconv)": _ref("copy.max_slowdown"),
        "min copy slowdown (cnn)": _ref("copy.min_slowdown"),
    },
    "fig06_alloc": {
        "cudaMalloc slowdown": _ref("alloc.dmalloc_slowdown"),
        "cudaMallocHost slowdown": _ref("alloc.hmalloc_slowdown"),
        "cudaFree slowdown": _ref("alloc.free_slowdown"),
        "cudaMallocManaged slowdown": _ref("alloc.managed_alloc_slowdown"),
        "managed free slowdown": _ref("alloc.managed_free_slowdown"),
        "non-CC UVM alloc vs base": _ref("alloc.uvm_alloc_vs_base"),
        "non-CC UVM free vs base": _ref("alloc.uvm_free_vs_base"),
        "CC UVM alloc vs base": _ref("alloc.cc_uvm_alloc_vs_base"),
        "CC UVM free vs base": _ref("alloc.cc_uvm_free_vs_base"),
    },
    "fig07_launch_queuing": {
        "mean KLO slowdown": _ref("launch.klo_mean_slowdown"),
        "max KLO slowdown (dwt2d)": _ref("launch.klo_max_slowdown"),
        "mean LQT slowdown": _ref("launch.lqt_mean_slowdown"),
        "mean KQT slowdown": _ref("launch.kqt_mean_slowdown"),
    },
    "fig08_flamegraph": {
        "share of launch in set_memory_decrypted (qualitative: large)":
            _lit(0.5, qualitative=True, source="Fig. 8"),
        "share of launch in TDX module (__seamcall)":
            _lit(0.1, qualitative=True, source="Fig. 8"),
    },
    "fig09_ket": {
        "non-UVM CC KET increase (%)": _ref("ket.nonuvm_cc_increase_percent"),
        "UVM non-CC mean slowdown": _ref("ket.uvm_noncc_slowdown"),
        "UVM CC mean slowdown": _ref("ket.uvm_cc_mean_slowdown"),
        # The paper's 164030x extreme is a pathological thrash point the
        # simulator deliberately does not chase; direction only.
        "UVM CC max slowdown (2dconv; paper value is pathological thrash)":
            PaperTarget(PAPER["ket.uvm_cc_max_slowdown"].value,
                        qualitative=True,
                        source=PAPER["ket.uvm_cc_max_slowdown"].source),
        "UVM CC min slowdown": _ref("ket.uvm_cc_min_slowdown"),
    },
    "fig10_event_timeline": {
        "KLR panel A >> panel C": _lit(1.0, qualitative=True, source="Obs. 6"),
        "KLR panel B > panel D": _lit(1.0, qualitative=True, source="Obs. 6"),
    },
    "fig11_cdfs": {
        "KLO CDF shifts right under CC (mean ratio > 1)":
            _lit(1.0, qualitative=True, source="Fig. 11a"),
        "KET distribution ~unchanged under CC (mean ratio)":
            _lit(1.0048, source="Fig. 11b / Observation 5"),
    },
    "fig12a_launch_sequence": {
        "first-launch spike over steady (base)":
            _lit(10.0, qualitative=True,
                 source="Fig. 12a (first-launch spike, order of magnitude)"),
        "CC steady-state KLO ratio": _lit(1.25, source="Fig. 12a"),
    },
    "fig12b_fusion": {
        "mean KLO at 1 launch / at max launches (CC)":
            _lit(5.0, qualitative=True, source="Fig. 12b (trend predicate)"),
        "total KLO grows with launches (CC, max/min)":
            _lit(10.0, qualitative=True, source="Fig. 12b (trend predicate)"),
    },
    "fig12c_overlap": {
        "CC overlap speedup, 64 streams, KET 100ms vs 1ms (ratio > 1)":
            _lit(1.0, qualitative=True, source="Observation 8"),
        "base vs CC overlap speedup at 64 streams, KET 1ms (base higher)":
            _lit(1.0, qualitative=True, source="Observation 8"),
    },
    "fig13_cnn": {
        "b64 fp32 CC throughput drop mean (%)":
            _ref("cnn.b64_throughput_drop_mean"),
        "b64 fp32 CC throughput drop max (%)":
            _ref("cnn.b64_throughput_drop_max"),
        "b64 fp32 CC time increase mean (%)":
            _ref("cnn.b64_time_increase_mean"),
        "b64 fp32 CC time increase max (%)":
            _ref("cnn.b64_time_increase_max"),
        "b1024 fp32 CC throughput drop mean (%)":
            _ref("cnn.b1024_throughput_drop_mean"),
        "b1024 fp32 CC time increase mean (%)":
            _ref("cnn.b1024_time_increase_mean"),
        "amp@64 CC throughput drop mean (%)":
            _ref("cnn.amp_b64_throughput_drop_mean"),
        "amp@64 CC throughput drop max (%)":
            _ref("cnn.amp_b64_throughput_drop_max"),
        "amp@64 CC time increase mean (%)":
            _ref("cnn.amp_b64_time_increase_mean"),
        "amp@64 CC time increase max (%)":
            _ref("cnn.amp_b64_time_increase_max"),
        "amp@1024 CC vs base throughput gain mean (%)":
            _ref("cnn.amp_b1024_throughput_gain_mean"),
        "amp@1024 CC vs base throughput gain max (%)":
            _ref("cnn.amp_b1024_throughput_gain_max"),
        "amp@1024 CC vs base time drop mean (%)":
            _ref("cnn.amp_b1024_time_drop_mean"),
        "amp@1024 CC vs base time drop max (%)":
            _ref("cnn.amp_b1024_time_drop_max"),
        "fp16@1024 time drop vs AMP mean (%)":
            _ref("cnn.fp16_b1024_time_drop_mean"),
        "fp16@1024 time drop vs AMP max (%)":
            _ref("cnn.fp16_b1024_time_drop_max"),
    },
    "fig14_llm": {
        "all vLLM speedups > 1 (fraction)": _lit(1.0, source="Fig. 14"),
        "AWQ > BF16 at batch <= 32": _lit(1.0, qualitative=True, source="Fig. 14"),
        "BF16 >= AWQ at batch 64/128": _lit(1.0, qualitative=True, source="Fig. 14"),
        "CC-on <= CC-off (fraction of cells)": _lit(1.0, source="Fig. 14"),
    },
    "ext_teeio": {
        "teeio recovers transfer bandwidth (teeio/base, ~0.9+)":
            _lit(0.94, source="Sec. VI-A TEE-IO what-if"),
        "teeio end-to-end vs cc (fraction of CC slowdown removed)":
            _lit(0.64, source="Sec. VI-A TEE-IO what-if"),
    },
    "ext_crypto_scaling": {
        "8-thread CC bandwidth / base bandwidth (still < 1)":
            _lit(0.58, source="Sec. VIII (PipeLLM/FastRack regime)"),
        "2-thread speedup over 1 thread":
            _lit(1.8, source="Sec. VIII (PipeLLM/FastRack regime)"),
    },
    "ext_graph_fusion_cc": {
        "CC optimal batch >= base optimal batch":
            _lit(1.0, qualitative=True, source="Sec. VII-A deferred question"),
    },
    "ext_oversubscription": {
        "CC thrash blowup at 1.8x oversubscription (vs in-budget CC)":
            _lit(700.0, source="Fig. 9 extreme-point regime"),
        "base thrash blowup at 1.8x (vs in-budget base)":
            _lit(23.0, source="Fig. 9 extreme-point regime"),
        "CC/base steady-state ratio while thrashing":
            _lit(30.0, source="Fig. 9 extreme-point regime"),
    },
    "ext_attestation": {
        "TD attestation / VM attestation time":
            _lit(1.0, qualitative=True, source="Sec. III attestation flow"),
    },
    "ext_multigpu": {
        "batched / plaintext all-reduce bandwidth (8 GPUs, 1 GB)":
            _lit(0.96, source="Sec. VIII scaling (HPCA'24)"),
        "naive / plaintext all-reduce bandwidth (8 GPUs, 1 GB)":
            _lit(0.60, source="Sec. VIII scaling (HPCA'24)"),
        "CC tax on cross-island (hier cc/base, 2x2 NVL pairs)":
            _lit(5.0, qualitative=True,
                 source="Sec. VIII scaling (HPCA'24, order of magnitude)"),
    },
    "ext_model_load": {
        "cc / base model-load time": _lit(8.5, source="Sec. VIII [19] (PipeLLM)"),
        "pipelined recovers (cc / cc+pipelined)":
            _lit(3.5, source="Sec. VIII [19] (PipeLLM)"),
    },
    "ext_sensitivity": {
        "few-launch app (2mm) KLO ratio noisier than launch-storm (sc)":
            _lit(1.0, qualitative=True, source="Sec. VI-B fluctuation note"),
        "copy ratios are seed-stable (max CoV, %)":
            _lit(0.0, qualitative=True, source="Sec. VI-B fluctuation note"),
    },
    "ext_distributed_training": {
        "CC scaling efficiency, 4 GPUs on NVLink fabric":
            _lit(0.99, source="Sec. VIII scaling direction"),
        "CC scaling efficiency, 4 GPUs on NVL pairs":
            _lit(0.57, source="Sec. VIII scaling direction"),
        "base scaling efficiency, 4 GPUs on NVL pairs":
            _lit(0.91, source="Sec. VIII scaling direction"),
    },
    "ext_serving": {
        # Direction predicates (fractions over scheduler policies) for
        # the serving extension: under CC the goodput knee must sit at
        # a strictly lower arrival rate, and tail TTFT must inflate by
        # at least the Sec.-V model's fixed per-iteration CC tax
        # (launch path + token-copy staging/crypto).
        "CC goodput knee below base (fraction of policies)":
            _lit(1.0, source="The Serialized Bridge (Yin & Wang, 2026)"),
        "TTFT p99 inflation >= Sec.-V per-step CC tax (fraction)":
            _lit(1.0, source="Sec. V model + serialized-bridge regime"),
    },
    "ext_cluster_serving": {
        # Cluster-scale direction predicates: with kernels sharded
        # across tp GPUs, every per-layer all-reduce rides the secure
        # peer links, so the CC goodput knee sits strictly left of
        # base at every TP degree, and the knee gap widens as TP grows
        # (more taxed ring steps per sync).
        "CC goodput knee strictly below base under TP>=2 (fraction)":
            _lit(1.0, source="The Serialized Bridge (Yin & Wang, 2026)"),
        "knee degradation grows with TP degree (fraction of steps)":
            _lit(1.0, source="The Serialized Bridge (Yin & Wang, 2026)"),
    },
    "ext_fault_serving": {
        # Resilience predicates (fractions over base/cc modes) for the
        # fault-rate x policy serving sweep: zero-fault runs must be
        # byte-identical to the fault-free build, the policy-free
        # engine must fall off a goodput cliff at the top fault rate
        # (terminal SPDM storm -> give-up), and the shed+breaker
        # policy must degrade gracefully (bounded goodput loss, zero
        # failed requests) and strictly beat no-policy there.
        "zero-fault verdict byte-identical to plain build (fraction)":
            _lit(1.0, source="zero-perturbation guarantee (Sec. III)"),
        "no-policy goodput cliff at top fault rate (fraction of modes)":
            _lit(1.0, source="SPDM re-attestation storm regime (Sec. III)"),
        "shed+breaker graceful at top fault rate, zero failed (fraction)":
            _lit(1.0, source="degradation-policy regime (Sec. VIII)"),
        "shed+breaker beats no-policy at top fault rate (fraction)":
            _lit(1.0, source="degradation-policy regime (Sec. VIII)"),
    },
    "ext_serve_telemetry": {
        # Exact predicates for the request-level telemetry layer
        # (repro.serve.telemetry): pure bookkeeping must not move the
        # verdict by a byte, per-request Sec.-V breakdowns must be
        # conservative (integer-exact sums to E2E/TTFT), and the
        # tail-forensics surface must reproduce the verdict's
        # percentiles and fully attribute the base->CC p99 delta.
        "telemetry-on verdict byte-identical to off (fraction of modes)":
            _lit(1.0, source="zero-perturbation guarantee (Sec. III)"),
        "per-request breakdown sums exactly to E2E/TTFT (fraction)":
            _lit(1.0, source="Sec. V component model, conservation"),
        "forensics percentiles equal the verdict report (fraction)":
            _lit(1.0, source="nearest-rank percentile convention"),
        "TTFT p99 delta fully attributed to components (fraction)":
            _lit(1.0, source="The Serialized Bridge (Yin & Wang, 2026)"),
    },
    "ext_recovered_serving": {
        # Mitigation-ladder predicates for the recovery extension
        # (repro.optim.passes + repro.tune): the cumulative pipeline
        # must move the CC goodput knee strictly right of the naive CC
        # knee, claw-back must grow monotonically along the ladder,
        # coalescing token downloads must be monotone in the flush
        # period, and the full pipeline must recover the entire
        # top-rate goodput gap (overlap hides bridge DMA that stalls
        # even the native engine).
        "recovered CC knee strictly above naive CC knee (exact)":
            _lit(1.0, source="Sec. VII-A mitigations, serving regime"),
        "cumulative ladder claw-back monotone (fraction of stages)":
            _lit(1.0, source="Sec. VII-A mitigations, serving regime"),
        "token-batch completed throughput monotone in k (fraction)":
            _lit(1.0, source="serialized-bridge transit count model"),
        "full pipeline closes the top-rate goodput gap (claw-back >= 1)":
            _lit(1.0, source="Observation 8 overlap regime"),
    },
    "ext_fault_recovery": {
        "rate-0 span / no-plan span (zero-overhead guarantee)":
            _lit(1.0, source="repro.faults zero-overhead guarantee"),
        "slowdown at rate 0.1 (recovery visible end to end, > 1)":
            _lit(1.0, qualitative=True, source="repro.faults"),
    },
}

#: Per-figure accuracy budget: max allowed per-metric relative error
#: (percent) over the figure's quantitative comparisons.  Values are
#: the achieved calibration error rounded up with ~2x headroom, so the
#: gate trips on genuine model drift, not on float noise.
DEFAULT_THRESHOLD = 10.0
ACCURACY_THRESHOLDS: Dict[str, float] = {
    "fig04a_bandwidth": 8.0,        # achieved 4.0
    "fig04b_crypto": 2.0,           # achieved 0.0 (direct calibration)
    "fig05_copytime": 25.0,         # achieved 14.6 (min-slowdown app mix)
    "fig06_alloc": 30.0,            # achieved 18.9 (UVM free path)
    "fig07_launch_queuing": 10.0,   # achieved 5.0
    "fig09_ket": 75.0,              # achieved 60.4 — UVM thrash regime is
                                    # order-of-magnitude, not point-accurate
    "fig11_cdfs": 2.0,              # achieved 0.0
    "fig12a_launch_sequence": 20.0,  # achieved ~10 (steady-state ratio)
    "fig13_cnn": 60.0,              # achieved 40.4 (amp@64 max panels)
    "fig14_llm": 5.0,               # achieved 0.0 (fraction predicates)
    "ext_teeio": 10.0,              # achieved 0.3
    "ext_crypto_scaling": 10.0,     # achieved 2.1
    "ext_oversubscription": 15.0,   # achieved 3.0
    "ext_multigpu": 10.0,           # achieved <5 (link-policy ratios)
    "ext_model_load": 15.0,         # achieved 9.7
    "ext_distributed_training": 8.0,  # achieved 0.2
    "ext_fault_recovery": 1.0,      # rate-0 row is an exact guarantee
    "ext_serving": 1.0,             # fraction predicates are exact 1.0
    "ext_cluster_serving": 1.0,     # fraction predicates are exact 1.0
    "ext_fault_serving": 1.0,       # fraction predicates are exact 1.0
    "ext_serve_telemetry": 1.0,     # fraction predicates are exact 1.0
    "ext_recovered_serving": 1.0,   # fraction predicates are exact 1.0
}


def target_for(figure_id: str, metric: str) -> Optional[PaperTarget]:
    """The table entry for one figure metric, or None if unregistered."""
    return TARGETS.get(figure_id, {}).get(metric)


def paper_value(
    figure_id: str, metric: str, default: Optional[float] = None
) -> float:
    """The paper value a figure module should embed for ``metric``.

    ``default`` covers metrics with parameter-dependent names (e.g. a
    fault-rate sweep run at a non-default rate) whose canonical entry
    only exists for the default parameters.
    """
    target = target_for(figure_id, metric)
    if target is not None:
        return target.value
    if default is not None:
        return default
    raise KeyError(
        f"no paper target registered for {figure_id!r} metric {metric!r}; "
        f"add it to repro/check/paper_targets.py"
    )


def threshold_for(figure_id: str) -> float:
    return ACCURACY_THRESHOLDS.get(figure_id, DEFAULT_THRESHOLD)
