"""Interval arithmetic for timeline attribution.

The performance model (Sec. V) needs to know how much of one activity
class overlaps another (the alpha and beta_i parameters).  These
helpers operate on half-open integer intervals [start, end).
"""

from __future__ import annotations

from typing import Iterable, List, Sequence, Tuple

Interval = Tuple[int, int]


def merge(intervals: Iterable[Interval]) -> List[Interval]:
    """Union of intervals as a sorted, disjoint list."""
    items = sorted((s, e) for s, e in intervals if e > s)
    merged: List[Interval] = []
    for start, end in items:
        if merged and start <= merged[-1][1]:
            last_start, last_end = merged[-1]
            merged[-1] = (last_start, max(last_end, end))
        else:
            merged.append((start, end))
    return merged


def total_length(merged_intervals: Sequence[Interval]) -> int:
    """Sum of lengths of a disjoint interval list."""
    return sum(end - start for start, end in merged_intervals)


def union_length(intervals: Iterable[Interval]) -> int:
    return total_length(merge(intervals))


def overlap_with_union(
    interval: Interval, merged_intervals: Sequence[Interval]
) -> int:
    """Length of ``interval`` covered by a merged (disjoint) list."""
    start, end = interval
    covered = 0
    for m_start, m_end in merged_intervals:
        if m_end <= start:
            continue
        if m_start >= end:
            break
        covered += min(end, m_end) - max(start, m_start)
    return covered


def union_overlap(
    intervals_a: Iterable[Interval], intervals_b: Iterable[Interval]
) -> int:
    """Length of intersection of two interval unions."""
    merged_b = merge(intervals_b)
    return sum(
        overlap_with_union(interval, merged_b) for interval in merge(intervals_a)
    )


def subtract(
    intervals_a: Iterable[Interval], intervals_b: Iterable[Interval]
) -> List[Interval]:
    """Portions of union(a) not covered by union(b)."""
    result: List[Interval] = []
    merged_b = merge(intervals_b)
    for start, end in merge(intervals_a):
        cursor = start
        for b_start, b_end in merged_b:
            if b_end <= cursor:
                continue
            if b_start >= end:
                break
            if b_start > cursor:
                result.append((cursor, min(b_start, end)))
            cursor = max(cursor, b_end)
            if cursor >= end:
                break
        if cursor < end:
            result.append((cursor, end))
    return result
