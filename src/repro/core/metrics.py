"""Metric extraction: KLO, LQT, KQT, KET, KLR and friends (Sec. V/VI).

Definitions follow the paper exactly:

* **KLO** (Kernel Launch Overhead): duration of a launch operation on
  the CPU (driver work of ``cudaLaunchKernel``).
* **LQT** (Launch Queuing Time): waiting period before the next
  consecutive launch can start — the gap between the end of the
  previous launch and the start of this one.
* **KQT** (Kernel Queuing Time): time a kernel waits in the GPU task
  queue between submission completion and execution start.
* **KET** (Kernel Execution Time): on-GPU execution duration
  (includes UVM fault servicing for managed kernels).
* **KLR** (Kernel-to-Launch Ratio): KET / (KLO + LQT) — Observation 6's
  predictor of whether launch costs dominate end-to-end time.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List

from ..config import CopyKind
from ..profiler import EventKind, SummaryStats, Trace


@dataclass(frozen=True)
class LaunchMetrics:
    klo_ns: List[int]
    lqt_ns: List[int]

    @property
    def total_klo_ns(self) -> int:
        return sum(self.klo_ns)

    @property
    def total_lqt_ns(self) -> int:
        return sum(self.lqt_ns)

    @property
    def count(self) -> int:
        return len(self.klo_ns)

    def klo_stats(self) -> SummaryStats:
        return SummaryStats.of(self.klo_ns)

    def lqt_stats(self) -> SummaryStats:
        return SummaryStats.of(self.lqt_ns)


@dataclass(frozen=True)
class KernelMetrics:
    ket_ns: List[int]
    kqt_ns: List[int]

    @property
    def total_ket_ns(self) -> int:
        return sum(self.ket_ns)

    @property
    def total_kqt_ns(self) -> int:
        return sum(self.kqt_ns)

    @property
    def count(self) -> int:
        return len(self.ket_ns)

    def ket_stats(self) -> SummaryStats:
        return SummaryStats.of(self.ket_ns)

    def kqt_stats(self) -> SummaryStats:
        return SummaryStats.of(self.kqt_ns)


def launch_metrics(trace: Trace) -> LaunchMetrics:
    launches = trace.launches()
    return LaunchMetrics(
        klo_ns=[e.duration_ns for e in launches],
        lqt_ns=[e.queue_ns for e in launches],
    )


def kernel_metrics(trace: Trace) -> KernelMetrics:
    kernels = trace.kernels()
    return KernelMetrics(
        ket_ns=[e.duration_ns for e in kernels],
        kqt_ns=[e.queue_ns for e in kernels],
    )


def copy_time_by_kind(trace: Trace) -> Dict[CopyKind, int]:
    """Total memcpy time per direction, using the *Nsight-visible*
    classification: CC pinned copies are reported as Managed D2D
    (Sec. VI-A, Fig. 5)."""
    totals = {kind: 0 for kind in CopyKind}
    for event in trace.memcpys():
        if event.attrs.get("staging"):
            # CPU-side staging half of an async copy: not a separate
            # Nsight copy row (its DMA counterpart carries the bytes).
            continue
        kind = event.attrs["copy_kind"]
        if event.attrs.get("managed"):
            kind = CopyKind.D2D
        totals[kind] += event.duration_ns
    return totals


def total_copy_time_ns(trace: Trace) -> int:
    return trace.total_duration_ns(EventKind.MEMCPY)


def mgmt_time_by_api(trace: Trace) -> Dict[str, int]:
    """Alloc/free time per API name (Fig. 6 rows)."""
    totals: Dict[str, int] = {}
    for event in trace.of_kind(EventKind.ALLOC) + trace.of_kind(EventKind.FREE):
        totals[event.name] = totals.get(event.name, 0) + event.duration_ns
    return totals


def kernel_to_launch_ratio(trace: Trace) -> float:
    """KLR = total KET / total (KLO + LQT); Observation 6."""
    launches = launch_metrics(trace)
    kernels = kernel_metrics(trace)
    denominator = launches.total_klo_ns + launches.total_lqt_ns
    if denominator == 0:
        return float("inf") if kernels.total_ket_ns > 0 else 0.0
    return kernels.total_ket_ns / denominator
