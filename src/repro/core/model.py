"""The paper's GPU performance model (Sec. V, Fig. 3).

End-to-end application time P decomposes into four parts:

    P = (1 - alpha) * T_mem                       (A: data transfer)
      + sum_i (KLO_i + LQT_i)                     (B: launch + queuing)
      + sum_i (1 - beta_i) * (KET_i + KQT_i)      (C: execution + queuing)
      + T_other                                   (D: alloc/free/sync)

``alpha`` is the fraction of memory-copy time hidden under other
activity (raised by CUDA streams, Sec. VII-A); ``beta_i`` is the
fraction of kernel i's (KET+KQT) interval hidden under part B — for a
kernel fully covered by concurrent launch activity beta_i = 1 and it
contributes nothing beyond the launches themselves (the low-KLR
regime of Observation 6).

:func:`decompose` measures all parameters from a trace; the resulting
:class:`ModelDecomposition` both *predicts* P and reports the part
totals the figures use.  Prediction quality against the simulated
wall-clock is validated in the Fig. 3 bench.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List

from .. import units
from ..profiler import EventKind, Trace
from . import intervals


@dataclass(frozen=True)
class ModelDecomposition:
    """Measured model parameters and part totals, all in nanoseconds."""

    t_mem_ns: int  # total memory-copy busy time (union)
    alpha: float  # overlapped fraction of T_mem
    part_b_ns: int  # sum(KLO + LQT)
    part_c_raw_ns: int  # sum(KET + KQT), before beta discount
    part_c_ns: int  # sum((1 - beta_i) (KET_i + KQT_i))
    betas: List[float]
    t_other_ns: int  # alloc + free + non-overlapped sync + recovery
    span_ns: int  # observed wall-clock span of the trace
    t_recovery_ns: int = 0  # fault-recovery time (union; subset of D)

    @property
    def part_a_ns(self) -> int:
        return int((1.0 - self.alpha) * self.t_mem_ns)

    @property
    def predicted_ns(self) -> int:
        return self.part_a_ns + self.part_b_ns + self.part_c_ns + self.t_other_ns

    @property
    def mean_beta(self) -> float:
        return sum(self.betas) / len(self.betas) if self.betas else 0.0

    @property
    def prediction_error(self) -> float:
        """Relative error of the model prediction vs observed span."""
        if self.span_ns == 0:
            return 0.0
        return (self.predicted_ns - self.span_ns) / self.span_ns

    def summary(self) -> str:
        rows = [
            ("A: (1-a)*T_mem", self.part_a_ns),
            ("B: sum(KLO+LQT)", self.part_b_ns),
            ("C: sum((1-b)(KET+KQT))", self.part_c_ns),
            ("D: T_other", self.t_other_ns),
            ("P predicted", self.predicted_ns),
            ("P observed", self.span_ns),
        ]
        if self.t_recovery_ns:
            rows.insert(4, ("  of D: recovery", self.t_recovery_ns))
        lines = [
            f"  {label:<26}{units.to_ms(value):12.3f} ms" for label, value in rows
        ]
        lines.append(
            f"  {'alpha':<26}{self.alpha:12.3f}\n"
            f"  {'mean beta':<26}{self.mean_beta:12.3f}\n"
            f"  {'relative error':<26}{self.prediction_error * 100:11.2f} %"
        )
        return "\n".join(lines)


def decompose(trace: Trace) -> ModelDecomposition:
    """Measure the Sec.-V model parameters from a trace.

    Part totals are computed over interval *unions*: when kernels are
    strictly sequential (the paper's Fig.-3 setting) the union equals
    the paper's per-kernel sum, and when deep launch queues make
    (KET+KQT) intervals overlap — e.g. 254 back-to-back 3dconv
    launches all queued at once — the union avoids double-counting the
    shared waiting time.  The reported ``betas`` keep the paper's
    per-kernel definition: the fraction of kernel i's (KET+KQT)
    interval hidden under part B.
    """
    mem_iv = [(e.start_ns, e.end_ns) for e in trace.memcpys()]
    launch_iv = [
        (e.start_ns - e.queue_ns, e.end_ns) for e in trace.launches()
    ]
    kernel_iv = [
        (e.start_ns - e.queue_ns, e.end_ns) for e in trace.kernels()
    ]
    mgmt_iv = [
        (e.start_ns, e.end_ns)
        for e in trace.of_kind(EventKind.ALLOC) + trace.of_kind(EventKind.FREE)
    ]
    sync_iv = [(e.start_ns, e.end_ns) for e in trace.of_kind(EventKind.SYNC)]
    recovery_iv = [
        (e.start_ns, e.end_ns) for e in trace.of_kind(EventKind.RECOVERY)
    ]

    # --- part A: memory time and its hidden fraction alpha -------------
    t_mem = intervals.union_length(mem_iv)
    hiders = launch_iv + kernel_iv
    alpha = (
        intervals.union_overlap(mem_iv, hiders) / t_mem if t_mem > 0 else 0.0
    )

    # --- part B: launch activity (union == sum for one CPU thread) -----
    merged_launch = intervals.merge(launch_iv)
    part_b = intervals.total_length(merged_launch)

    # --- part C: kernel (KET+KQT) activity not hidden under part B -----
    betas: List[float] = []
    part_c_raw = 0
    for start, end in kernel_iv:
        length = end - start
        part_c_raw += length
        if length <= 0:
            betas.append(0.0)
            continue
        betas.append(
            intervals.overlap_with_union((start, end), merged_launch) / length
        )
    part_c = intervals.total_length(
        intervals.subtract(kernel_iv, merged_launch)
    )

    # --- part D: management plus sync not already hidden above ---------
    mgmt_total = intervals.union_length(mgmt_iv)
    sync_exposed = intervals.total_length(
        intervals.subtract(sync_iv, kernel_iv + launch_iv + mem_iv)
    )
    # Fault-recovery time not hidden under real work also lands in D —
    # empty under an inactive fault plan, so nothing changes there.
    recovery_exposed = intervals.total_length(
        intervals.subtract(
            recovery_iv, kernel_iv + launch_iv + mem_iv + mgmt_iv + sync_iv
        )
    )
    t_other = mgmt_total + sync_exposed + recovery_exposed

    return ModelDecomposition(
        t_mem_ns=t_mem,
        alpha=alpha,
        part_b_ns=part_b,
        part_c_raw_ns=part_c_raw,
        part_c_ns=part_c,
        betas=betas,
        t_other_ns=t_other,
        span_ns=trace.span_ns(),
        t_recovery_ns=intervals.union_length(recovery_iv),
    )
