"""The paper's primary contribution: the GPU performance model and the
metric definitions used to dissect CC overheads (Sec. V)."""

from .breakdown import CATEGORIES, Breakdown, breakdown
from .metrics import (
    KernelMetrics,
    LaunchMetrics,
    copy_time_by_kind,
    kernel_metrics,
    kernel_to_launch_ratio,
    launch_metrics,
    mgmt_time_by_api,
    total_copy_time_ns,
)
from .model import ModelDecomposition, decompose
from . import intervals

__all__ = [
    "Breakdown",
    "CATEGORIES",
    "KernelMetrics",
    "LaunchMetrics",
    "ModelDecomposition",
    "breakdown",
    "copy_time_by_kind",
    "decompose",
    "intervals",
    "kernel_metrics",
    "kernel_to_launch_ratio",
    "launch_metrics",
    "mgmt_time_by_api",
    "total_copy_time_ns",
]
