"""End-to-end wall-clock attribution by activity class (Fig. 1).

Attributes every nanosecond of an application's timeline to exactly
one category with a fixed priority order (kernel execution wins over
queuing, etc.), producing the paper's Fig.-1 style stacked overview of
where time goes under CC-off / CC-on / CC-on+UVM.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Tuple

from ..profiler import EventKind, Trace
from . import intervals


# Attribution priority: earlier categories claim overlapping time.
CATEGORIES = (
    "kernel",  # KET
    "copy",  # T_mem
    "launch",  # KLO
    "kernel_queue",  # KQT
    "launch_queue",  # LQT
    "mgmt",  # alloc + free
    "sync",  # exposed synchronization
    "recovery",  # fault recovery (wasted attempts, backoff, re-attest)
    "idle",  # everything else inside the span
)


@dataclass(frozen=True)
class Breakdown:
    span_ns: int
    by_category_ns: Dict[str, int]

    def share(self, category: str) -> float:
        if self.span_ns == 0:
            return 0.0
        return self.by_category_ns.get(category, 0) / self.span_ns

    def rows(self) -> List[Tuple[str, int, float]]:
        return [
            (cat, self.by_category_ns.get(cat, 0), self.share(cat))
            for cat in CATEGORIES
        ]


def breakdown(trace: Trace) -> Breakdown:
    """Attribute the trace span across CATEGORIES by priority."""
    if not trace.events:
        return Breakdown(0, {cat: 0 for cat in CATEGORIES})
    span_start = min(e.start_ns for e in trace.events)
    span_end = max(e.end_ns for e in trace.events)

    raw: Dict[str, List[Tuple[int, int]]] = {cat: [] for cat in CATEGORIES}
    for event in trace.events:
        if event.kind is EventKind.KERNEL:
            raw["kernel"].append((event.start_ns, event.end_ns))
            if event.queue_ns:
                raw["kernel_queue"].append(
                    (event.start_ns - event.queue_ns, event.start_ns)
                )
        elif event.kind is EventKind.LAUNCH:
            raw["launch"].append((event.start_ns, event.end_ns))
            if event.queue_ns:
                raw["launch_queue"].append(
                    (event.start_ns - event.queue_ns, event.start_ns)
                )
        elif event.kind is EventKind.MEMCPY:
            raw["copy"].append((event.start_ns, event.end_ns))
        elif event.kind in (EventKind.ALLOC, EventKind.FREE):
            raw["mgmt"].append((event.start_ns, event.end_ns))
        elif event.kind is EventKind.SYNC:
            raw["sync"].append((event.start_ns, event.end_ns))
        elif event.kind is EventKind.RECOVERY:
            raw["recovery"].append((event.start_ns, event.end_ns))

    claimed: List[Tuple[int, int]] = []
    result: Dict[str, int] = {}
    for category in CATEGORIES:
        if category == "idle":
            continue
        remaining = intervals.subtract(raw[category], claimed)
        result[category] = intervals.total_length(remaining)
        claimed = intervals.merge(claimed + remaining)
    result["idle"] = (span_end - span_start) - intervals.total_length(claimed)
    return Breakdown(span_end - span_start, result)
