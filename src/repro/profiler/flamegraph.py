"""Flame-graph folding and rendering (paper Fig. 8).

Builds an aggregated call tree with inclusive times from either the
folded stacks of :class:`repro.tdx.CallStackRecorder`
(:func:`build_tree`) or the hierarchical span tree of
:class:`repro.obs.SpanRecorder` (:func:`tree_from_spans`), plus a
simple ASCII rendering used by the Fig. 8 bench and the ``repro trace``
CLI.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Iterable, List, Tuple


@dataclass
class FlameNode:
    name: str
    self_ns: int = 0
    children: Dict[str, "FlameNode"] = field(default_factory=dict)

    @property
    def total_ns(self) -> int:
        return self.self_ns + sum(c.total_ns for c in self.children.values())

    def child(self, name: str) -> "FlameNode":
        node = self.children.get(name)
        if node is None:
            node = FlameNode(name)
            self.children[name] = node
        return node


def build_tree(samples: Dict[Tuple[str, ...], int], root_name: str = "root") -> FlameNode:
    """Aggregate {stack: self_ns} samples into a call tree."""
    root = FlameNode(root_name)
    for stack, self_ns in samples.items():
        node = root
        for frame in stack:
            node = node.child(frame)
        node.self_ns += self_ns
    return root


def tree_from_spans(spans: Iterable, root_name: str = "root") -> FlameNode:
    """Aggregate a span forest into a call tree.

    Spans carry *inclusive* durations, so each span's self-time is its
    duration minus the total duration of its direct children (clamped
    at zero — retroactive child spans may model overlapping pipeline
    stages).  Spans whose parent is not part of ``spans`` hang off the
    root, so a filtered subtree folds cleanly.
    """
    spans = list(spans)
    child_total: Dict[int, int] = {}
    for span in spans:
        if span.parent_id is not None:
            child_total[span.parent_id] = (
                child_total.get(span.parent_id, 0) + span.duration_ns
            )
    root = FlameNode(root_name)
    nodes: Dict[int, FlameNode] = {}
    for span in sorted(spans, key=lambda s: s.span_id):
        parent = nodes.get(span.parent_id, root)
        node = parent.child(span.name)
        nodes[span.span_id] = node
        node.self_ns += max(
            0, span.duration_ns - child_total.get(span.span_id, 0)
        )
    return root


def folded_from_spans(spans: Iterable) -> List[Tuple[str, int]]:
    """Folded-stacks rows (``a;b;c``, self_ns) from a span forest."""
    spans = list(spans)
    by_id = {s.span_id: s for s in spans}
    child_total: Dict[int, int] = {}
    for span in spans:
        if span.parent_id in by_id:
            child_total[span.parent_id] = (
                child_total.get(span.parent_id, 0) + span.duration_ns
            )

    def path(span) -> str:
        names: List[str] = []
        cursor = span
        while cursor is not None:
            names.append(cursor.name)
            cursor = by_id.get(cursor.parent_id)
        return ";".join(reversed(names))

    rows: Dict[str, int] = {}
    for span in sorted(spans, key=lambda s: s.span_id):
        self_ns = max(0, span.duration_ns - child_total.get(span.span_id, 0))
        if self_ns <= 0:
            continue
        key = path(span)
        rows[key] = rows.get(key, 0) + self_ns
    return sorted(rows.items())


def render_ascii(root: FlameNode, width: int = 72) -> str:
    """Indented tree with per-frame inclusive time and share of root."""
    lines: List[str] = []
    total = max(root.total_ns, 1)

    def visit(node: FlameNode, depth: int) -> None:
        share = node.total_ns / total * 100.0
        label = f"{'  ' * depth}{node.name}"
        timing = f"{node.total_ns / 1000.0:10.2f} us {share:5.1f}%"
        pad = max(1, width - len(label))
        lines.append(f"{label}{' ' * pad}{timing}")
        for child in sorted(
            node.children.values(), key=lambda c: -c.total_ns
        ):
            visit(child, depth + 1)

    visit(root, 0)
    return "\n".join(lines)


def frame_share(root: FlameNode, frame_name: str) -> float:
    """Inclusive share [0,1] of all stacks passing through frame_name."""
    total = max(root.total_ns, 1)

    def inclusive(node: FlameNode) -> int:
        if node.name == frame_name:
            return node.total_ns
        return sum(inclusive(child) for child in node.children.values())

    return inclusive(root) / total
