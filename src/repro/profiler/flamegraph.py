"""Flame-graph folding and rendering (paper Fig. 8).

Takes the folded stacks from :class:`repro.tdx.CallStackRecorder` and
builds an aggregated call tree with inclusive times, plus a simple
ASCII rendering used by the Fig. 8 bench.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Tuple


@dataclass
class FlameNode:
    name: str
    self_ns: int = 0
    children: Dict[str, "FlameNode"] = field(default_factory=dict)

    @property
    def total_ns(self) -> int:
        return self.self_ns + sum(c.total_ns for c in self.children.values())

    def child(self, name: str) -> "FlameNode":
        node = self.children.get(name)
        if node is None:
            node = FlameNode(name)
            self.children[name] = node
        return node


def build_tree(samples: Dict[Tuple[str, ...], int], root_name: str = "root") -> FlameNode:
    """Aggregate {stack: self_ns} samples into a call tree."""
    root = FlameNode(root_name)
    for stack, self_ns in samples.items():
        node = root
        for frame in stack:
            node = node.child(frame)
        node.self_ns += self_ns
    return root


def render_ascii(root: FlameNode, width: int = 72) -> str:
    """Indented tree with per-frame inclusive time and share of root."""
    lines: List[str] = []
    total = max(root.total_ns, 1)

    def visit(node: FlameNode, depth: int) -> None:
        share = node.total_ns / total * 100.0
        label = f"{'  ' * depth}{node.name}"
        timing = f"{node.total_ns / 1000.0:10.2f} us {share:5.1f}%"
        pad = max(1, width - len(label))
        lines.append(f"{label}{' ' * pad}{timing}")
        for child in sorted(
            node.children.values(), key=lambda c: -c.total_ns
        ):
            visit(child, depth + 1)

    visit(root, 0)
    return "\n".join(lines)


def frame_share(root: FlameNode, frame_name: str) -> float:
    """Inclusive share [0,1] of all stacks passing through frame_name."""
    total = max(root.total_ns, 1)

    def inclusive(node: FlameNode) -> int:
        if node.name == frame_name:
            return node.total_ns
        return sum(inclusive(child) for child in node.children.values())

    return inclusive(root) / total
