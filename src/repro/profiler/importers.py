"""Trace importers: apply the paper's analysis to external captures.

Two formats:

* **Chrome trace JSON** — the format this repository exports
  (:meth:`Trace.to_chrome_trace`), and what Perfetto/`nsys export`
  pipelines can be massaged into.  Events are complete-phase ("ph":
  "X") rows; the importer maps categories back onto the trace-event
  vocabulary, so ``decompose`` / ``breakdown`` / the metric extractors
  run on imported traces exactly as on simulated ones.
* **Nsight-style CSV rows** via :func:`from_rows` — a minimal
  programmatic entry point (kind, name, start_us, dur_us, queue_us)
  for users who already parsed their profiler output.
"""

from __future__ import annotations

import json
from typing import Dict, Iterable, Optional, Sequence, Tuple

from ..config import CopyKind, MemoryKind
from .collector import Trace
from .events import EventKind, TraceEvent


class ImportError_(ValueError):
    """Malformed trace input."""


_KIND_BY_NAME = {kind.value: kind for kind in EventKind}
_COPY_BY_NAME = {kind.value: kind for kind in CopyKind}
_MEMORY_BY_NAME = {kind.value: kind for kind in MemoryKind}


def _revive_attrs(kind: EventKind, args: Dict) -> Tuple[Dict, int, Optional[int]]:
    attrs = dict(args)
    queue_ns = int(round(float(attrs.pop("queue_us", 0.0)) * 1000))
    stream = attrs.pop("stream", None)
    if kind is EventKind.MEMCPY:
        copy_name = attrs.get("copy_kind")
        if isinstance(copy_name, str):
            if copy_name not in _COPY_BY_NAME:
                raise ImportError_(f"unknown copy kind {copy_name!r}")
            attrs["copy_kind"] = _COPY_BY_NAME[copy_name]
        memory_name = attrs.get("memory")
        if isinstance(memory_name, str):
            if memory_name not in _MEMORY_BY_NAME:
                raise ImportError_(f"unknown memory kind {memory_name!r}")
            attrs["memory"] = _MEMORY_BY_NAME[memory_name]
    return attrs, queue_ns, stream


def from_chrome_trace(text: str, label: str = "imported") -> Trace:
    """Parse a Chrome-trace JSON string into a :class:`Trace`."""
    try:
        payload = json.loads(text)
    except json.JSONDecodeError as exc:
        raise ImportError_(f"invalid JSON: {exc}") from exc
    if isinstance(payload, dict):
        rows = payload.get("traceEvents")
    elif isinstance(payload, list):
        rows = payload  # bare-array chrome trace variant
    else:
        rows = None
    if not isinstance(rows, list):
        raise ImportError_("expected a traceEvents array")
    trace = Trace(label=label)
    for index, row in enumerate(rows):
        if not isinstance(row, dict) or row.get("ph") != "X":
            continue  # ignore metadata/instant events
        category = row.get("cat")
        if category not in _KIND_BY_NAME:
            continue  # foreign categories are skipped, not fatal
        kind = _KIND_BY_NAME[category]
        try:
            start_ns = int(round(float(row["ts"]) * 1000))
            duration_ns = int(round(float(row.get("dur", 0.0)) * 1000))
        except (KeyError, TypeError, ValueError) as exc:
            raise ImportError_(f"traceEvents[{index}]: bad ts/dur") from exc
        attrs, queue_ns, stream = _revive_attrs(kind, row.get("args", {}))
        trace.add(
            TraceEvent(
                kind=kind,
                name=str(row.get("name", category)),
                start_ns=start_ns,
                duration_ns=duration_ns,
                queue_ns=queue_ns,
                stream=stream,
                attrs=attrs,
            )
        )
    return trace


def load_chrome_trace(path: str, label: Optional[str] = None) -> Trace:
    with open(path) as handle:
        return from_chrome_trace(handle.read(), label=label or path)


def from_rows(
    rows: Iterable[Sequence],
    label: str = "imported",
) -> Trace:
    """Build a trace from (kind, name, start_us, dur_us[, queue_us]) rows.

    ``kind`` is one of launch/kernel/memcpy/alloc/free/sync.  This is
    the minimal shape a user can extract from ``nsys stats`` CSVs.
    """
    trace = Trace(label=label)
    for index, row in enumerate(rows):
        if len(row) not in (4, 5):
            raise ImportError_(
                f"row {index}: expected 4 or 5 fields, got {len(row)}"
            )
        kind_name, name, start_us, dur_us = row[:4]
        queue_us = row[4] if len(row) == 5 else 0.0
        if kind_name not in _KIND_BY_NAME:
            raise ImportError_(f"row {index}: unknown kind {kind_name!r}")
        trace.add(
            TraceEvent(
                kind=_KIND_BY_NAME[kind_name],
                name=str(name),
                start_ns=int(round(float(start_us) * 1000)),
                duration_ns=int(round(float(dur_us) * 1000)),
                queue_ns=int(round(float(queue_us) * 1000)),
            )
        )
    return trace
