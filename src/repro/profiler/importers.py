"""Trace importers: apply the paper's analysis to external captures.

Two formats:

* **Chrome trace JSON** — the format this repository exports
  (:meth:`Trace.to_chrome_trace`), and what Perfetto/`nsys export`
  pipelines can be massaged into.  Events are complete-phase ("ph":
  "X") rows; the importer maps categories back onto the trace-event
  vocabulary, revives span rows (``cat == "span"``) into the
  hierarchical :class:`repro.obs.SpanRecorder`, counter ("C"-phase)
  rows into the metrics registry, and histogram metadata — so
  ``decompose`` / ``breakdown`` / the span summaries run on imported
  traces exactly as on simulated ones, and an export → import →
  re-export round trip is byte-identical.
* **Nsight-style CSV rows** via :func:`from_rows` — a minimal
  programmatic entry point (kind, name, start_us, dur_us, queue_us)
  for users who already parsed their profiler output.
"""

from __future__ import annotations

import json
from typing import Dict, Iterable, Optional, Sequence, Tuple

from ..config import CopyKind, MemoryKind
from ..obs.spans import Span
from .collector import HISTOGRAM_ROW_NAME, Trace
from .events import EventKind, TraceEvent


class TraceImportError(ValueError):
    """Malformed trace input."""


_KIND_BY_NAME = {kind.value: kind for kind in EventKind}
_COPY_BY_NAME = {kind.value: kind for kind in CopyKind}
_MEMORY_BY_NAME = {kind.value: kind for kind in MemoryKind}


def _ns(value: float) -> int:
    return int(round(float(value) * 1000))


def _revive_attrs(kind: EventKind, args: Dict) -> Tuple[Dict, int, Optional[int]]:
    attrs = dict(args)
    queue_ns = _ns(attrs.pop("queue_us", 0.0))
    stream = attrs.pop("stream", None)
    if kind is EventKind.MEMCPY:
        copy_name = attrs.get("copy_kind")
        if isinstance(copy_name, str):
            if copy_name not in _COPY_BY_NAME:
                raise TraceImportError(f"unknown copy kind {copy_name!r}")
            attrs["copy_kind"] = _COPY_BY_NAME[copy_name]
        memory_name = attrs.get("memory")
        if isinstance(memory_name, str):
            if memory_name not in _MEMORY_BY_NAME:
                raise TraceImportError(f"unknown memory kind {memory_name!r}")
            attrs["memory"] = _MEMORY_BY_NAME[memory_name]
    return attrs, queue_ns, stream


def _import_metadata(trace: Trace, row: Dict) -> Optional[str]:
    """Handle one "M" row; returns the process name when present."""
    args = row.get("args") or {}
    name = row.get("name")
    if name == "process_name":
        return args.get("name")
    if name == HISTOGRAM_ROW_NAME and isinstance(args, dict):
        for metric_name, values in args.items():
            if isinstance(values, list):
                trace.metrics.import_histogram(metric_name, values)
    return None


def _import_span(trace: Trace, index: int, row: Dict) -> None:
    args = row.get("args") or {}
    try:
        span_id = int(args["id"])
        layer = str(args["layer"])
        start_ns = _ns(row["ts"])
        duration_ns = _ns(row.get("dur", 0.0))
    except (KeyError, TypeError, ValueError) as exc:
        raise TraceImportError(f"traceEvents[{index}]: bad span row") from exc
    parent = args.get("parent")
    trace.spans.add(
        Span(
            span_id=span_id,
            parent_id=int(parent) if parent is not None else None,
            name=str(row.get("name", "span")),
            layer=layer,
            start_ns=start_ns,
            duration_ns=duration_ns,
            attrs=dict(args.get("attrs") or {}),
        )
    )


def from_chrome_trace(text: str, label: Optional[str] = None) -> Trace:
    """Parse a Chrome-trace JSON string into a :class:`Trace`.

    ``label`` defaults to the exported ``process_name`` metadata (so a
    round trip preserves the label), falling back to ``"imported"``.
    """
    try:
        payload = json.loads(text)
    except json.JSONDecodeError as exc:
        raise TraceImportError(f"invalid JSON: {exc}") from exc
    if isinstance(payload, dict):
        rows = payload.get("traceEvents")
    elif isinstance(payload, list):
        rows = payload  # bare-array chrome trace variant
    else:
        rows = None
    if not isinstance(rows, list):
        raise TraceImportError("expected a traceEvents array")
    trace = Trace(label=label or "imported")
    process_name: Optional[str] = None
    counter_series: Dict[Tuple[str, str], list] = {}
    for index, row in enumerate(rows):
        if not isinstance(row, dict):
            continue
        phase = row.get("ph")
        if phase == "M":
            found = _import_metadata(trace, row)
            if found is not None:
                process_name = found
            continue
        if phase == "C":
            name = row.get("name")
            kind = row.get("cat", "counter")
            if not isinstance(name, str) or kind not in ("counter", "gauge"):
                continue
            args = row.get("args") or {}
            try:
                sample = (_ns(row["ts"]), args["value"])
            except (KeyError, TypeError, ValueError) as exc:
                raise TraceImportError(
                    f"traceEvents[{index}]: bad counter row"
                ) from exc
            counter_series.setdefault((name, kind), []).append(sample)
            continue
        if phase != "X":
            continue  # ignore instant/async events
        category = row.get("cat")
        if category == "span":
            _import_span(trace, index, row)
            continue
        if category not in _KIND_BY_NAME:
            continue  # foreign categories are skipped, not fatal
        kind = _KIND_BY_NAME[category]
        try:
            start_ns = _ns(row["ts"])
            duration_ns = _ns(row.get("dur", 0.0))
        except (KeyError, TypeError, ValueError) as exc:
            raise TraceImportError(f"traceEvents[{index}]: bad ts/dur") from exc
        attrs, queue_ns, stream = _revive_attrs(kind, row.get("args", {}))
        trace.add(
            TraceEvent(
                kind=kind,
                name=str(row.get("name", category)),
                start_ns=start_ns,
                duration_ns=duration_ns,
                queue_ns=queue_ns,
                stream=stream,
                attrs=attrs,
            )
        )
    for (name, kind), samples in counter_series.items():
        trace.metrics.import_series(name, kind, samples)
    if label is None and process_name is not None:
        trace.label = process_name
    return trace


def load_chrome_trace(path: str, label: Optional[str] = None) -> Trace:
    with open(path) as handle:
        return from_chrome_trace(handle.read(), label=label or path)


def from_rows(
    rows: Iterable[Sequence],
    label: str = "imported",
) -> Trace:
    """Build a trace from (kind, name, start_us, dur_us[, queue_us]) rows.

    ``kind`` is one of launch/kernel/memcpy/alloc/free/sync.  This is
    the minimal shape a user can extract from ``nsys stats`` CSVs.
    """
    trace = Trace(label=label)
    for index, row in enumerate(rows):
        if len(row) not in (4, 5):
            raise TraceImportError(
                f"row {index}: expected 4 or 5 fields, got {len(row)}"
            )
        kind_name, name, start_us, dur_us = row[:4]
        queue_us = row[4] if len(row) == 5 else 0.0
        if kind_name not in _KIND_BY_NAME:
            raise TraceImportError(f"row {index}: unknown kind {kind_name!r}")
        trace.add(
            TraceEvent(
                kind=_KIND_BY_NAME[kind_name],
                name=str(name),
                start_ns=_ns(start_us),
                duration_ns=_ns(dur_us),
                queue_ns=_ns(queue_us),
            )
        )
    return trace
