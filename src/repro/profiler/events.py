"""Trace event model — the simulator's Nsight-Systems equivalent.

Every timed activity in the runtime/GPU emits one :class:`TraceEvent`.
The vocabulary matches the categories the paper's analysis uses:
Launch (KLO), Kernel (KET, with queuing KQT), Memcpy, Alloc, Free, and
Sync.  Queuing times are attached to the event they precede (``lqt_ns``
on launches, ``kqt_ns`` on kernels) exactly as defined in Sec. V.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from enum import Enum
from typing import Any, Dict, Optional

from ..config import CopyKind, MemoryKind


class EventKind(Enum):
    LAUNCH = "launch"
    KERNEL = "kernel"
    MEMCPY = "memcpy"
    ALLOC = "alloc"
    FREE = "free"
    SYNC = "sync"
    # Fault recovery: wasted failed attempts, backoff waits, degraded
    # staging, re-attestation (repro.faults).
    RECOVERY = "recovery"


@dataclass(slots=True)
class TraceEvent:
    """One timed activity on the CPU or GPU timeline."""

    kind: EventKind
    name: str
    start_ns: int
    duration_ns: int
    # Queuing time immediately preceding this event (Sec. V):
    #   launches carry LQT, kernels carry KQT.
    queue_ns: int = 0
    stream: Optional[int] = None
    attrs: Dict[str, Any] = field(default_factory=dict)

    @property
    def end_ns(self) -> int:
        return self.start_ns + self.duration_ns

    def __post_init__(self) -> None:
        if self.duration_ns < 0:
            raise ValueError("event duration must be non-negative")
        if self.queue_ns < 0:
            raise ValueError("queue time must be non-negative")


def launch_event(
    name: str,
    start_ns: int,
    duration_ns: int,
    lqt_ns: int,
    stream: int,
    first: bool = False,
) -> TraceEvent:
    return TraceEvent(
        EventKind.LAUNCH,
        name,
        start_ns,
        duration_ns,
        queue_ns=lqt_ns,
        stream=stream,
        attrs={"first": first},
    )


def kernel_event(
    name: str,
    start_ns: int,
    duration_ns: int,
    kqt_ns: int,
    stream: int,
    uvm: bool = False,
    faulted_pages: int = 0,
) -> TraceEvent:
    return TraceEvent(
        EventKind.KERNEL,
        name,
        start_ns,
        duration_ns,
        queue_ns=kqt_ns,
        stream=stream,
        attrs={"uvm": uvm, "faulted_pages": faulted_pages},
    )


def memcpy_event(
    copy_kind: CopyKind,
    start_ns: int,
    duration_ns: int,
    size_bytes: int,
    memory: MemoryKind,
    stream: int = 0,
    managed: bool = False,
) -> TraceEvent:
    return TraceEvent(
        EventKind.MEMCPY,
        f"memcpy_{copy_kind.value}",
        start_ns,
        duration_ns,
        stream=stream,
        attrs={
            "copy_kind": copy_kind,
            "bytes": size_bytes,
            "memory": memory,
            # Nsight labels CC pinned-copies as "Managed" D2D (Sec. VI-A).
            "managed": managed,
        },
    )


def alloc_event(api: str, start_ns: int, duration_ns: int, size_bytes: int) -> TraceEvent:
    return TraceEvent(
        EventKind.ALLOC, api, start_ns, duration_ns, attrs={"bytes": size_bytes}
    )


def free_event(api: str, start_ns: int, duration_ns: int, size_bytes: int) -> TraceEvent:
    return TraceEvent(
        EventKind.FREE, api, start_ns, duration_ns, attrs={"bytes": size_bytes}
    )


def sync_event(name: str, start_ns: int, duration_ns: int) -> TraceEvent:
    return TraceEvent(EventKind.SYNC, name, start_ns, duration_ns)


def recovery_event(
    site: str,
    start_ns: int,
    duration_ns: int,
    attempt: int,
    action: str = "retry",
) -> TraceEvent:
    """Time spent recovering from an injected fault at ``site``.

    ``action`` is "retry" (wasted attempt + backoff), "degraded"
    (chunked-staging slowdown), "re-attest", or "fatal" (the final
    unrecovered attempt before escalation).
    """
    return TraceEvent(
        EventKind.RECOVERY,
        f"recover:{site}",
        start_ns,
        duration_ns,
        attrs={"site": site, "attempt": attempt, "action": action},
    )
