"""Trace statistics: CDFs and summary stats (paper Fig. 11).

The paper plots CDFs of per-launch KLO and per-kernel KET and notes
that, for launch CDFs, the top-5 longest launches are removed for
display while averages use all points — :func:`cdf` supports the same
trimming rule.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Sequence, Tuple

import numpy as np


@dataclass(frozen=True)
class SummaryStats:
    count: int
    mean: float
    median: float
    p95: float
    minimum: float
    maximum: float
    total: float

    @staticmethod
    def of(values: Sequence[float]) -> "SummaryStats":
        if not values:
            return SummaryStats(0, 0.0, 0.0, 0.0, 0.0, 0.0, 0.0)
        arr = np.asarray(values, dtype=float)
        return SummaryStats(
            count=len(arr),
            mean=float(arr.mean()),
            median=float(np.median(arr)),
            p95=float(np.percentile(arr, 95)),
            minimum=float(arr.min()),
            maximum=float(arr.max()),
            total=float(arr.sum()),
        )


def cdf(
    values: Sequence[float], trim_top: int = 0
) -> Tuple[List[float], List[float]]:
    """Empirical CDF as (sorted values, cumulative probabilities).

    ``trim_top`` removes the N largest points *from the displayed
    curve only* — matching the paper's Fig. 11 methodology ("the top 5
    longest launch durations are removed; the average value is
    calculated over all data points").
    """
    if trim_top < 0:
        raise ValueError("trim_top must be >= 0")
    if not values:
        return [], []
    ordered = sorted(values)
    if trim_top:
        ordered = ordered[: max(0, len(ordered) - trim_top)]
    n = len(ordered)
    probs = [(i + 1) / n for i in range(n)]
    return ordered, probs


def cdf_at(values: Sequence[float], threshold: float) -> float:
    """Fraction of values <= threshold."""
    if not values:
        return 0.0
    return sum(1 for v in values if v <= threshold) / len(values)


def ratio_of_means(numerator: Sequence[float], denominator: Sequence[float]) -> float:
    """Mean(numerator)/mean(denominator); the paper's normalization."""
    num = SummaryStats.of(numerator).mean
    den = SummaryStats.of(denominator).mean
    if den == 0:
        return float("inf") if num > 0 else 1.0
    return num / den


def ratio_of_totals(numerator: Sequence[float], denominator: Sequence[float]) -> float:
    num = sum(numerator)
    den = sum(denominator)
    if den == 0:
        return float("inf") if num > 0 else 1.0
    return num / den
