"""Trace collection and querying.

A :class:`Trace` is the full observability record of one run: the flat
Nsight-style event list, the hierarchical span tree, and the sampled
metrics registry (see :mod:`repro.obs`).  Export produces
Perfetto-grade Chrome tracing JSON — integer pid/tid with "M"-phase
process/thread name metadata, one thread track per event category and
per span layer, and "C"-phase counter tracks — that round-trips
losslessly (byte-identically) through :mod:`repro.profiler.importers`.
"""

from __future__ import annotations

import json
from typing import Callable, Dict, Iterable, List, Optional, Tuple

from ..obs.metrics import MetricsRegistry
from ..obs.spans import SpanRecorder
from .events import EventKind, TraceEvent

# Exported process id (one simulated application per trace).
TRACE_PID = 1

# Fixed thread-track ids for the flat event categories.
EVENT_TRACKS: Dict[EventKind, Tuple[int, str]] = {
    EventKind.ALLOC: (1, "CPU:api"),
    EventKind.FREE: (1, "CPU:api"),
    EventKind.SYNC: (1, "CPU:api"),
    EventKind.LAUNCH: (2, "CPU:driver"),
    EventKind.RECOVERY: (3, "CPU:recovery"),
    EventKind.KERNEL: (4, "GPU:compute"),
    EventKind.MEMCPY: (5, "GPU:copy"),
}

# Fixed thread-track ids for the canonical span layers; layers outside
# the table get deterministic ids after the reserved range.
LAYER_TRACKS: Dict[str, int] = {
    "td": 10,
    "tdx_module": 11,
    "hypervisor": 12,
    "driver": 13,
    "dma": 14,
    "gpu.copy": 15,
    "gpu.compute": 16,
    "recovery": 17,
}
_FIRST_DYNAMIC_TID = 20

# Metadata row that carries histogram metrics through export/import.
HISTOGRAM_ROW_NAME = "repro.histograms"


class Trace:
    """An ordered collection of trace events for one application run."""

    def __init__(self, label: str = "", observability: bool = True) -> None:
        self.label = label
        self.events: List[TraceEvent] = []
        self.spans = SpanRecorder(enabled=observability)
        self.metrics = MetricsRegistry(enabled=observability)

    def bind_clock(self, clock: Callable[[], int]) -> None:
        """Attach the simulated-time clock used by spans and metrics."""
        self.spans.bind_clock(clock)
        self.metrics.bind_clock(clock)

    def add(self, event: TraceEvent) -> TraceEvent:
        self.events.append(event)
        return event

    def span(self, name: str, layer: str, scope: str = "cpu", **attrs):
        """Open a hierarchical span (context manager); see
        :meth:`repro.obs.SpanRecorder.span`."""
        return self.spans.span(name, layer, scope=scope, **attrs)

    def __len__(self) -> int:
        return len(self.events)

    def __iter__(self):
        return iter(self.events)

    # -- queries -----------------------------------------------------------

    def of_kind(self, kind: EventKind) -> List[TraceEvent]:
        return [e for e in self.events if e.kind is kind]

    def launches(self) -> List[TraceEvent]:
        return self.of_kind(EventKind.LAUNCH)

    def kernels(self) -> List[TraceEvent]:
        return self.of_kind(EventKind.KERNEL)

    def memcpys(self) -> List[TraceEvent]:
        return self.of_kind(EventKind.MEMCPY)

    def recoveries(self) -> List[TraceEvent]:
        return self.of_kind(EventKind.RECOVERY)

    def recovery_ns(self) -> int:
        """Total fault-recovery time (wasted attempts + backoff)."""
        return self.total_duration_ns(EventKind.RECOVERY)

    def filter(self, predicate: Callable[[TraceEvent], bool]) -> List[TraceEvent]:
        return [e for e in self.events if predicate(e)]

    def total_duration_ns(self, kind: Optional[EventKind] = None) -> int:
        events: Iterable[TraceEvent] = (
            self.events if kind is None else self.of_kind(kind)
        )
        return sum(e.duration_ns for e in events)

    def span_ns(self) -> int:
        """Wall-clock span from first event start to last event end."""
        if not self.events:
            return 0
        return max(e.end_ns for e in self.events) - min(
            e.start_ns for e in self.events
        )

    def sorted_by_start(self) -> List[TraceEvent]:
        return sorted(self.events, key=lambda e: (e.start_ns, e.end_ns))

    # -- export --------------------------------------------------------------

    def _layer_tids(self) -> Dict[str, int]:
        """Deterministic layer -> tid map (fixed table + extras)."""
        tids = {}
        dynamic = [
            layer
            for layer in self.spans.layers()
            if layer not in LAYER_TRACKS
        ]
        for offset, layer in enumerate(sorted(dynamic)):
            tids[layer] = _FIRST_DYNAMIC_TID + offset
        for layer in self.spans.layers():
            if layer in LAYER_TRACKS:
                tids[layer] = LAYER_TRACKS[layer]
        return tids

    def to_chrome_trace(self) -> str:
        """Perfetto-grade Chrome tracing JSON.

        Emits integer pid/tid plus "M"-phase process/thread name
        metadata (loads cleanly in Perfetto, not just chrome://tracing),
        one "X" row per event and per span (grouped on per-layer thread
        tracks), and "C"-phase counter tracks for sampled metrics.  The
        output is deterministic and round-trips byte-identically
        through :func:`repro.profiler.importers.from_chrome_trace`.
        """
        label = self.label or "app"
        layer_tids = self._layer_tids()
        used_tids: Dict[int, str] = {}

        event_rows = []
        for event in self.sorted_by_start():
            tid, track = EVENT_TRACKS[event.kind]
            used_tids[tid] = track
            args = {
                key: (value.value if hasattr(value, "value") else value)
                for key, value in event.attrs.items()
            }
            # Preserve queue time and stream so the trace round-trips
            # through repro.profiler.importers losslessly.
            args["queue_us"] = event.queue_ns / 1000.0
            if event.stream is not None:
                args["stream"] = event.stream
            event_rows.append(
                {
                    "name": event.name,
                    "cat": event.kind.value,
                    "ph": "X",
                    "ts": event.start_ns / 1000.0,  # chrome uses us
                    "dur": event.duration_ns / 1000.0,
                    "pid": TRACE_PID,
                    "tid": tid,
                    "args": args,
                }
            )

        # Per-request tracks: serving-telemetry request spans (layer
        # "serve.req") get one thread track per request id so Perfetto
        # shows each request's lifecycle on its own row.  Tids are
        # allocated after every layer tid, sorted by request id —
        # deterministic, and invisible to the importer (which
        # reconstructs spans from args, not tids), so traces still
        # round-trip byte-identically.
        request_ids = sorted({
            span.attrs["req"]
            for span in self.spans
            if span.layer == "serve.req" and "req" in span.attrs
        })
        next_tid = max(
            list(layer_tids.values()) + [_FIRST_DYNAMIC_TID - 1]
        ) + 1
        request_tids = {
            req_id: next_tid + offset
            for offset, req_id in enumerate(request_ids)
        }

        span_rows = []
        for span in sorted(
            self.spans, key=lambda s: (s.start_ns, s.span_id)
        ):
            if span.layer == "serve.req" and "req" in span.attrs:
                tid = request_tids[span.attrs["req"]]
                used_tids[tid] = f"req:{span.attrs['req']}"
            else:
                tid = layer_tids[span.layer]
                used_tids[tid] = f"layer:{span.layer}"
            args = {
                "id": span.span_id,
                "parent": span.parent_id,
                "layer": span.layer,
            }
            if span.attrs:
                args["attrs"] = {
                    key: (value.value if hasattr(value, "value") else value)
                    for key, value in span.attrs.items()
                }
            span_rows.append(
                {
                    "name": span.name,
                    "cat": "span",
                    "ph": "X",
                    "ts": span.start_ns / 1000.0,
                    "dur": span.duration_ns / 1000.0,
                    "pid": TRACE_PID,
                    "tid": tid,
                    "args": args,
                }
            )

        counter_rows = []
        for metric in self.metrics.sampled():
            for t_ns, value in metric.series:
                counter_rows.append(
                    {
                        "name": metric.name,
                        "cat": metric.kind,
                        "ph": "C",
                        "ts": t_ns / 1000.0,
                        "pid": TRACE_PID,
                        "args": {"value": value},
                    }
                )

        meta_rows = [
            {
                "name": "process_name",
                "ph": "M",
                "pid": TRACE_PID,
                "args": {"name": label},
            }
        ]
        for tid in sorted(used_tids):
            meta_rows.append(
                {
                    "name": "thread_name",
                    "ph": "M",
                    "pid": TRACE_PID,
                    "tid": tid,
                    "args": {"name": used_tids[tid]},
                }
            )
        histograms = self.metrics.histograms()
        if histograms:
            meta_rows.append(
                {
                    "name": HISTOGRAM_ROW_NAME,
                    "ph": "M",
                    "pid": TRACE_PID,
                    "args": {h.name: list(h.values) for h in histograms},
                }
            )

        rows = meta_rows + event_rows + span_rows + counter_rows
        return json.dumps({"traceEvents": rows}, indent=1, sort_keys=True)
