"""Trace collection and querying."""

from __future__ import annotations

import json
from typing import Callable, Iterable, List, Optional

from .events import EventKind, TraceEvent


class Trace:
    """An ordered collection of trace events for one application run."""

    def __init__(self, label: str = "") -> None:
        self.label = label
        self.events: List[TraceEvent] = []

    def add(self, event: TraceEvent) -> TraceEvent:
        self.events.append(event)
        return event

    def __len__(self) -> int:
        return len(self.events)

    def __iter__(self):
        return iter(self.events)

    # -- queries -----------------------------------------------------------

    def of_kind(self, kind: EventKind) -> List[TraceEvent]:
        return [e for e in self.events if e.kind is kind]

    def launches(self) -> List[TraceEvent]:
        return self.of_kind(EventKind.LAUNCH)

    def kernels(self) -> List[TraceEvent]:
        return self.of_kind(EventKind.KERNEL)

    def memcpys(self) -> List[TraceEvent]:
        return self.of_kind(EventKind.MEMCPY)

    def recoveries(self) -> List[TraceEvent]:
        return self.of_kind(EventKind.RECOVERY)

    def recovery_ns(self) -> int:
        """Total fault-recovery time (wasted attempts + backoff)."""
        return self.total_duration_ns(EventKind.RECOVERY)

    def filter(self, predicate: Callable[[TraceEvent], bool]) -> List[TraceEvent]:
        return [e for e in self.events if predicate(e)]

    def total_duration_ns(self, kind: Optional[EventKind] = None) -> int:
        events: Iterable[TraceEvent] = (
            self.events if kind is None else self.of_kind(kind)
        )
        return sum(e.duration_ns for e in events)

    def span_ns(self) -> int:
        """Wall-clock span from first event start to last event end."""
        if not self.events:
            return 0
        return max(e.end_ns for e in self.events) - min(
            e.start_ns for e in self.events
        )

    def sorted_by_start(self) -> List[TraceEvent]:
        return sorted(self.events, key=lambda e: (e.start_ns, e.end_ns))

    # -- export --------------------------------------------------------------

    def to_chrome_trace(self) -> str:
        """Chrome tracing JSON (open in chrome://tracing or Perfetto)."""
        rows = []
        track = {
            EventKind.LAUNCH: "CPU:driver",
            EventKind.ALLOC: "CPU:api",
            EventKind.FREE: "CPU:api",
            EventKind.SYNC: "CPU:api",
            EventKind.KERNEL: "GPU:compute",
            EventKind.MEMCPY: "GPU:copy",
            EventKind.RECOVERY: "CPU:recovery",
        }
        for event in self.sorted_by_start():
            args = {
                key: (value.value if hasattr(value, "value") else value)
                for key, value in event.attrs.items()
            }
            # Preserve queue time and stream so the trace round-trips
            # through repro.profiler.importers losslessly.
            args["queue_us"] = event.queue_ns / 1000.0
            if event.stream is not None:
                args["stream"] = event.stream
            rows.append(
                {
                    "name": event.name,
                    "cat": event.kind.value,
                    "ph": "X",
                    "ts": event.start_ns / 1000.0,  # chrome uses us
                    "dur": event.duration_ns / 1000.0,
                    "pid": self.label or "app",
                    "tid": track[event.kind],
                    "args": args,
                }
            )
        return json.dumps({"traceEvents": rows}, indent=1)
