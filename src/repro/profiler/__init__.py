"""Nsight-Systems-like profiling layer: trace events, hierarchical
spans, metrics, collection, statistics (CDFs), and flame-graph
folding."""

from ..obs import MetricsRegistry, Span, SpanRecorder
from .analysis import SummaryStats, cdf, cdf_at, ratio_of_means, ratio_of_totals
from .collector import Trace
from .events import (
    EventKind,
    TraceEvent,
    alloc_event,
    free_event,
    kernel_event,
    launch_event,
    memcpy_event,
    recovery_event,
    sync_event,
)
from .flamegraph import (
    FlameNode,
    build_tree,
    folded_from_spans,
    frame_share,
    render_ascii,
    tree_from_spans,
)
from .importers import (
    TraceImportError,
    from_chrome_trace,
    from_rows,
    load_chrome_trace,
)
from .schema import assert_valid_chrome_trace, validate_chrome_trace

__all__ = [
    "EventKind",
    "FlameNode",
    "MetricsRegistry",
    "Span",
    "SpanRecorder",
    "SummaryStats",
    "Trace",
    "TraceEvent",
    "TraceImportError",
    "alloc_event",
    "assert_valid_chrome_trace",
    "build_tree",
    "cdf",
    "cdf_at",
    "folded_from_spans",
    "frame_share",
    "free_event",
    "from_chrome_trace",
    "from_rows",
    "load_chrome_trace",
    "kernel_event",
    "launch_event",
    "memcpy_event",
    "ratio_of_means",
    "ratio_of_totals",
    "recovery_event",
    "render_ascii",
    "sync_event",
    "tree_from_spans",
    "validate_chrome_trace",
]
