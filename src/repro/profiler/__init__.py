"""Nsight-Systems-like profiling layer: trace events, collection,
statistics (CDFs), and flame-graph folding."""

from .analysis import SummaryStats, cdf, cdf_at, ratio_of_means, ratio_of_totals
from .collector import Trace
from .events import (
    EventKind,
    TraceEvent,
    alloc_event,
    free_event,
    kernel_event,
    launch_event,
    memcpy_event,
    recovery_event,
    sync_event,
)
from .flamegraph import FlameNode, build_tree, frame_share, render_ascii
from .importers import from_chrome_trace, from_rows, load_chrome_trace

__all__ = [
    "EventKind",
    "FlameNode",
    "SummaryStats",
    "Trace",
    "TraceEvent",
    "alloc_event",
    "build_tree",
    "cdf",
    "cdf_at",
    "frame_share",
    "free_event",
    "from_chrome_trace",
    "from_rows",
    "load_chrome_trace",
    "kernel_event",
    "launch_event",
    "memcpy_event",
    "ratio_of_means",
    "ratio_of_totals",
    "recovery_event",
    "render_ascii",
    "sync_event",
]
