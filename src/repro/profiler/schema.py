"""Structural validation of exported Chrome-trace JSON.

A dependency-free validator for the trace format
:meth:`repro.profiler.Trace.to_chrome_trace` produces (a constrained
subset of the Chrome tracing format).  Used by ``repro trace
validate`` and the CI trace-smoke step to catch schema regressions
before a trace ships as a build artifact.

Checked invariants:

* top level: object with a ``traceEvents`` array (or a bare array);
* every row is an object with a string ``ph`` phase;
* "X" rows carry string ``name``/``cat``, numeric ``ts`` and a
  non-negative numeric ``dur``, integer ``pid``/``tid``, and an object
  ``args`` when present;
* span rows (``cat == "span"``) carry integer unique ``args.id``, a
  string ``args.layer``, and a ``args.parent`` that is null or a known
  span id (parents must appear before children is *not* required —
  only referential integrity);
* "C" rows carry a string ``name``, numeric ``ts`` and ``args.value``;
* "M" rows carry a string ``name``.
"""

from __future__ import annotations

import json
from typing import Any, List, Union

from .importers import TraceImportError

_NUMBER = (int, float)


def _is_int(value: Any) -> bool:
    return isinstance(value, int) and not isinstance(value, bool)


def _is_number(value: Any) -> bool:
    return isinstance(value, _NUMBER) and not isinstance(value, bool)


def validate_chrome_trace(payload: Union[str, dict, list]) -> List[str]:
    """Return a list of schema violations (empty when valid)."""
    if isinstance(payload, str):
        try:
            payload = json.loads(payload)
        except json.JSONDecodeError as exc:
            return [f"invalid JSON: {exc}"]
    if isinstance(payload, dict):
        rows = payload.get("traceEvents")
    elif isinstance(payload, list):
        rows = payload
    else:
        return ["top level must be an object or array"]
    if not isinstance(rows, list):
        return ["missing traceEvents array"]

    errors: List[str] = []
    span_ids = set()
    span_parents = []  # (row index, parent id) checked after the scan
    for index, row in enumerate(rows):
        where = f"traceEvents[{index}]"
        if not isinstance(row, dict):
            errors.append(f"{where}: row is not an object")
            continue
        phase = row.get("ph")
        if not isinstance(phase, str):
            errors.append(f"{where}: missing ph")
            continue
        if phase == "M":
            if not isinstance(row.get("name"), str):
                errors.append(f"{where}: metadata row without a name")
            continue
        if phase == "C":
            if not isinstance(row.get("name"), str):
                errors.append(f"{where}: counter row without a name")
            if not _is_number(row.get("ts")):
                errors.append(f"{where}: counter row with non-numeric ts")
            args = row.get("args")
            if not isinstance(args, dict) or not _is_number(args.get("value")):
                errors.append(f"{where}: counter row without numeric value")
            continue
        if phase != "X":
            continue  # other phases are legal Chrome trace, unchecked
        if not isinstance(row.get("name"), str):
            errors.append(f"{where}: event without a name")
        if not isinstance(row.get("cat"), str):
            errors.append(f"{where}: event without a category")
        if not _is_number(row.get("ts")):
            errors.append(f"{where}: non-numeric ts")
        if not _is_number(row.get("dur")) or row.get("dur", 0) < 0:
            errors.append(f"{where}: missing or negative dur")
        if "pid" in row and not _is_int(row["pid"]):
            errors.append(f"{where}: pid must be an integer")
        if "tid" in row and not _is_int(row["tid"]):
            errors.append(f"{where}: tid must be an integer")
        args = row.get("args")
        if args is not None and not isinstance(args, dict):
            errors.append(f"{where}: args must be an object")
            continue
        if row.get("cat") == "span" and isinstance(args, dict):
            span_id = args.get("id")
            if not _is_int(span_id):
                errors.append(f"{where}: span without integer id")
            elif span_id in span_ids:
                errors.append(f"{where}: duplicate span id {span_id}")
            else:
                span_ids.add(span_id)
            if not isinstance(args.get("layer"), str):
                errors.append(f"{where}: span without a layer")
            parent = args.get("parent")
            if parent is not None:
                if not _is_int(parent):
                    errors.append(f"{where}: span parent must be int or null")
                else:
                    span_parents.append((index, parent))
    for index, parent in span_parents:
        if parent not in span_ids:
            errors.append(
                f"traceEvents[{index}]: span parent {parent} is unknown"
            )
    return errors


def assert_valid_chrome_trace(payload: Union[str, dict, list]) -> None:
    """Raise :class:`TraceImportError` on the first schema violation."""
    errors = validate_chrome_trace(payload)
    if errors:
        raise TraceImportError(
            f"{len(errors)} schema violation(s): " + "; ".join(errors[:5])
        )
