"""CNN model zoo for CIFAR-100 (paper Sec. VII-B, Fig. 13).

The paper trains six models from the pytorch-cifar100 collection:
VGG16, ResNet50, MobileNetV2, SqueezeNet, Attention92, Inception-v4.
For the training-cost simulation each model is characterized by the
quantities that determine its CC behaviour:

* forward FLOPs per image (32x32 input),
* parameter bytes (FP32),
* kernel launches per forward pass (layer count x ops per layer) —
  the lever CC pulls on at small batch sizes,
* activation traffic per image,
* AMP speedup factor: how much tensor-core FP16 accelerates its
  compute (depthwise-separable models like MobileNetV2 benefit least).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List


@dataclass(frozen=True)
class CNNModel:
    name: str
    fwd_flops_per_image: float
    param_bytes: int
    fwd_launches: int
    act_bytes_per_image: int
    amp_speedup: float
    # Relative growth in launched ops when AMP autocasting is on
    # (cast/scale kernels around every mixed-precision boundary);
    # depthwise-separable models have the most boundaries per FLOP.
    amp_cast_overhead: float = 1.3

    @property
    def bwd_flops_per_image(self) -> float:
        # Backward pass is ~2x forward (grad wrt weights + inputs).
        return 2.0 * self.fwd_flops_per_image

    @property
    def bwd_launches(self) -> int:
        return int(1.9 * self.fwd_launches)

    @property
    def step_launches(self) -> int:
        """Forward + backward + fused-optimizer launches per step."""
        return self.fwd_launches + self.bwd_launches + 8


_M = 1_000_000

MODELS: Dict[str, CNNModel] = {
    model.name: model
    for model in [
        CNNModel(
            "vgg16",
            fwd_flops_per_image=333e6,
            param_bytes=34 * _M * 4,
            fwd_launches=48,
            act_bytes_per_image=9 * _M,
            amp_speedup=1.35,
            amp_cast_overhead=1.3,
        ),
        CNNModel(
            "resnet50",
            fwd_flops_per_image=1300e6,
            param_bytes=25 * _M * 4,
            fwd_launches=176,
            act_bytes_per_image=18 * _M,
            amp_speedup=1.25,
            amp_cast_overhead=1.3,
        ),
        CNNModel(
            "mobilenetv2",
            fwd_flops_per_image=310e6,
            param_bytes=3 * _M * 4 + 2 * _M,
            fwd_launches=186,
            act_bytes_per_image=12 * _M,
            amp_speedup=1.0,
            amp_cast_overhead=1.75,
        ),
        CNNModel(
            "squeezenet",
            fwd_flops_per_image=280e6,
            param_bytes=int(1.2 * _M) * 4,
            fwd_launches=94,
            act_bytes_per_image=7 * _M,
            amp_speedup=1.1,
            amp_cast_overhead=1.55,
        ),
        CNNModel(
            "attention92",
            fwd_flops_per_image=1900e6,
            param_bytes=51 * _M * 4,
            fwd_launches=390,
            act_bytes_per_image=30 * _M,
            amp_speedup=1.45,
            amp_cast_overhead=1.3,
        ),
        CNNModel(
            "inceptionv4",
            fwd_flops_per_image=1600e6,
            param_bytes=41 * _M * 4,
            fwd_launches=460,
            act_bytes_per_image=26 * _M,
            amp_speedup=1.4,
            amp_cast_overhead=1.45,
        ),
    ]
}

MODEL_NAMES: List[str] = list(MODELS)

CIFAR100_TRAIN_IMAGES = 50_000
CIFAR100_IMAGE_BYTES = 3 * 32 * 32 * 4  # FP32 CHW


def get(name: str) -> CNNModel:
    try:
        return MODELS[name]
    except KeyError:
        raise KeyError(f"unknown CNN model {name!r}; known: {MODEL_NAMES}") from None
