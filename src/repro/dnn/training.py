"""CNN training-step simulation (paper Sec. VII-B, Fig. 13).

One training step, executed through the CUDA runtime:

1. H2D copy of the batch from the DataLoader's *pinned* staging buffer
   (pin_memory=True): a fresh batch is always a cold transfer — under
   CC this is the UVM-backed encrypted path, the main data-side tax.
2. Forward launches, backward launches (~1.9x), fused optimizer.
3. A tiny D2H of the loss (implicit sync).

Precision modes:

* ``fp32`` — baseline.
* ``amp`` — Automatic Mixed Precision: compute accelerated by the
  model's tensor-core factor, but extra cast/scale launches and no
  reduction in transferred bytes; at small batch the added launches
  dominate and AMP *hurts* under CC (the paper's batch-64 result).
* ``fp16`` — FP16-quantized training: AMP's compute speedup *plus*
  halved H2D traffic (the input data itself is FP16), which is what
  cuts CC training time further at batch 1024.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Generator, Optional

from .. import units
from ..config import SystemConfig
from ..cuda import CudaRuntime, run_app
from ..gpu import KernelSpec
from .models import CIFAR100_IMAGE_BYTES, CIFAR100_TRAIN_IMAGES, CNNModel

PRECISIONS = ("fp32", "amp", "fp16")

# Eager-mode (PyTorch) per-op dispatch cost on the CPU: Python + ATen
# dispatch + CUDA-API bookkeeping per launched op.
EAGER_OP_CPU_NS = units.us(14.0)
# Per-op driver register reads (stream/allocator state).  With VFIO
# passthrough in a regular VM these MMIO reads are direct (EPT-mapped,
# no exit); inside a TD every MMIO access takes a #VE and is emulated
# via tdvmcall — a full hypercall round trip.  This fixed per-op tax is
# what makes small-batch CNN training ~24-36 % slower under CC
# (Sec. VII-B) even though the kernels themselves are unaffected.
EAGER_OP_MMIO_READS = 1.0


@dataclass(frozen=True)
class TrainingResult:
    model: str
    batch_size: int
    precision: str
    cc: bool
    step_time_ns: int
    throughput_img_per_sec: float
    epoch_time_sec: float

    def training_time_sec(self, epochs: int = 200) -> float:
        return self.epoch_time_sec * epochs


def _batch_efficiency(batch_size: int) -> float:
    """Roofline efficiency vs batch: 32x32 kernels underfill the H100
    at small batch and approach ~0.5 of peak at batch 1024."""
    return 0.5 * batch_size / (batch_size + 64.0)


def _amp_factor(model: CNNModel, precision: str) -> float:
    if precision == "amp":
        return model.amp_speedup
    if precision == "fp16":
        # Pure-FP16 training avoids autocast graph breaks entirely, so
        # kernels fuse better than under AMP.
        return model.amp_speedup * 1.30
    return 1.0


def _step_kernels(model: CNNModel, batch_size: int, precision: str):
    """Decompose a training step into launchable kernel specs."""
    eff = _batch_efficiency(batch_size)
    amp = _amp_factor(model, precision)
    total_flops = (
        batch_size
        * (model.fwd_flops_per_image + model.bwd_flops_per_image)
        / amp
    )
    act_bytes = batch_size * model.act_bytes_per_image
    if precision in ("amp", "fp16"):
        act_bytes //= 2  # half-precision activations
    launches = model.step_launches
    if precision == "amp":
        # Cast/scale kernels plus GradScaler bookkeeping; FP16-quantized
        # training has no autocast boundaries, so it pays none of this.
        launches = int(launches * model.amp_cast_overhead)
    flops_per_launch = total_flops / launches
    bytes_per_launch = act_bytes // launches
    kernels = []
    for index in range(launches):
        kernels.append(
            KernelSpec(
                name=f"{model.name}_op{index % model.fwd_launches}",
                flops=flops_per_launch,
                mem_bytes=bytes_per_launch,
                efficiency=eff,
            )
        )
    # Optimizer traffic: read grad + momentum, write weights.  FP16
    # quantized training keeps half-precision weights end to end, so
    # its optimizer traffic is halved (AMP keeps FP32 master weights).
    opt_bytes = model.param_bytes * 3
    if precision == "fp16":
        opt_bytes //= 2
    kernels.append(
        KernelSpec(
            name=f"{model.name}_sgd",
            flops=model.param_bytes / 4 * 2,
            mem_bytes=opt_bytes,
            efficiency=0.6,
        )
    )
    return kernels


def training_app(
    rt: CudaRuntime,
    model: CNNModel,
    batch_size: int,
    precision: str,
    num_steps: int,
) -> Generator:
    """Warmup + ``num_steps`` measured steps; returns measured ns."""
    elem = 2 if precision == "fp16" else 4
    batch_bytes = batch_size * CIFAR100_IMAGE_BYTES * elem // 4
    weights_dev = yield from rt.malloc(model.param_bytes * 4)  # w+g+m+ws
    data_dev = yield from rt.malloc(max(batch_bytes, 4096))
    staging = yield from rt.malloc_host(max(batch_bytes, 4096))
    loss_host = yield from rt.malloc_host(4 * units.KiB)
    kernels = _step_kernels(model, batch_size, precision)

    def one_step() -> Generator:
        # Fresh batch: the pinned staging buffer is cold every step.
        yield from rt.memcpy(data_dev, staging, batch_bytes, cold=True)
        for kernel in kernels:
            # Eager-mode dispatch: CPU-side op overhead plus driver
            # register reads that trap (#VE -> tdvmcall) inside a TD.
            yield from rt.cpu_gap(EAGER_OP_CPU_NS)
            if rt.config.cc_on:
                for _ in range(int(EAGER_OP_MMIO_READS)):
                    yield from rt.guest.hypercall("tdvmcall.mmio_read")
            yield from rt.launch(kernel)
        # Loss readback (implicit sync; AMP also syncs the GradScaler).
        yield from rt.memcpy(loss_host, weights_dev, 512)

    yield from one_step()  # warmup (first-launch costs excluded)
    yield from rt.synchronize()
    start = rt.sim.now
    for _ in range(num_steps):
        yield from one_step()
    yield from rt.synchronize()
    measured = rt.sim.now - start
    for buf in (weights_dev, data_dev, staging, loss_host):
        yield from rt.free(buf)
    return measured


def train(
    model: CNNModel,
    batch_size: int,
    precision: str,
    config: Optional[SystemConfig] = None,
    num_steps: int = 3,
) -> TrainingResult:
    """Simulate training and extrapolate epoch time / throughput."""
    if precision not in PRECISIONS:
        raise ValueError(f"precision must be one of {PRECISIONS}")
    config = config or SystemConfig.base()
    _trace, measured_ns = run_app(
        training_app,
        config,
        label=f"{model.name}-b{batch_size}-{precision}",
        model=model,
        batch_size=batch_size,
        precision=precision,
        num_steps=num_steps,
    )
    step_time_ns = measured_ns // num_steps
    throughput = batch_size / units.to_sec(step_time_ns)
    steps_per_epoch = (CIFAR100_TRAIN_IMAGES + batch_size - 1) // batch_size
    epoch_time = units.to_sec(step_time_ns) * steps_per_epoch
    return TrainingResult(
        model=model.name,
        batch_size=batch_size,
        precision=precision,
        cc=config.cc_on,
        step_time_ns=step_time_ns,
        throughput_img_per_sec=throughput,
        epoch_time_sec=epoch_time,
    )
