"""Data-parallel CNN training across multiple GPUs under CC.

Composes the single-GPU training-step simulation (:mod:`repro.dnn.
training`) with the secure multi-GPU collectives (:mod:`repro.
multigpu`): each step is the local step time plus a gradient
all-reduce of the model's parameter bytes. On the paper's own H100
*NVL* topology (NVLink pairs bridged by PCIe) the cross-pair hop runs
through the CC bounce+crypto path — so confidential multi-GPU training
pays the paper's transfer tax on every gradient sync, not just on data
loading.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

from .. import units
from ..config import SystemConfig
from ..multigpu import (
    LinkSecurity,
    MultiGPUNode,
    best_all_reduce,
    hierarchical_all_reduce,
)
from .models import CIFAR100_TRAIN_IMAGES, CNNModel
from .training import train


@dataclass(frozen=True)
class DistributedResult:
    model: str
    num_gpus: int
    topology: str  # "nvlink" | "nvl-pairs"
    batch_per_gpu: int
    precision: str
    cc: bool
    local_step_ns: int
    allreduce_ns: int

    @property
    def step_time_ns(self) -> int:
        return self.local_step_ns + self.allreduce_ns

    @property
    def global_batch(self) -> int:
        return self.num_gpus * self.batch_per_gpu

    @property
    def throughput_img_per_sec(self) -> float:
        return self.global_batch / units.to_sec(self.step_time_ns)

    @property
    def scaling_efficiency(self) -> float:
        """Achieved speedup over one GPU divided by the GPU count."""
        single = self.global_batch / self.num_gpus / units.to_sec(
            self.local_step_ns
        )
        return self.throughput_img_per_sec / (single * self.num_gpus)

    def epoch_time_sec(self) -> float:
        steps = (
            CIFAR100_TRAIN_IMAGES + self.global_batch - 1
        ) // self.global_batch
        return units.to_sec(self.step_time_ns) * steps


def _gradient_bytes(model: CNNModel, precision: str) -> int:
    # AMP/FP16 all-reduce half-precision gradients.
    return model.param_bytes // (2 if precision in ("amp", "fp16") else 1)


def data_parallel_train(
    model: CNNModel,
    num_gpus: int,
    batch_per_gpu: int,
    precision: str = "fp32",
    config: Optional[SystemConfig] = None,
    topology: str = "nvlink",
    link_security: LinkSecurity = LinkSecurity.BATCHED,
) -> DistributedResult:
    """One data-parallel training configuration.

    ``topology``:

    * ``"nvlink"``  — all GPUs on one NVLink fabric (DGX/NVSwitch);
      gradient sync uses the best single-level all-reduce under
      ``link_security`` (plaintext links when CC is off).
    * ``"nvl-pairs"`` — H100 NVL: NVLink islands of 2 bridged by PCIe;
      the inter-island phase inherits the host's CC transfer path.
    """
    config = config or SystemConfig.base()
    if num_gpus < 1:
        raise ValueError("need at least one GPU")
    local = train(model, batch_per_gpu, precision, config)
    grad_bytes = _gradient_bytes(model, precision)
    security = link_security if config.cc_on else LinkSecurity.NONE
    if num_gpus == 1:
        allreduce_ns = 0
    elif topology == "nvlink":
        node = MultiGPUNode(num_gpus=num_gpus)
        allreduce_ns = best_all_reduce(node, grad_bytes, security).time_ns
    elif topology == "nvl-pairs":
        island = min(2, num_gpus)
        islands = max(1, num_gpus // island)
        allreduce_ns = hierarchical_all_reduce(
            config, islands, island, grad_bytes, security
        ).time_ns
    else:
        raise ValueError(f"unknown topology {topology!r}")
    return DistributedResult(
        model=model.name,
        num_gpus=num_gpus,
        topology=topology,
        batch_per_gpu=batch_per_gpu,
        precision=precision,
        cc=config.cc_on,
        local_step_ns=local.step_time_ns,
        allreduce_ns=allreduce_ns,
    )
