"""CNN training workloads (paper Sec. VII-B, Fig. 13)."""

from .distributed import DistributedResult, data_parallel_train
from .models import CIFAR100_TRAIN_IMAGES, MODEL_NAMES, MODELS, CNNModel, get
from .training import PRECISIONS, TrainingResult, train, training_app

__all__ = [
    "CIFAR100_TRAIN_IMAGES",
    "CNNModel",
    "DistributedResult",
    "MODELS",
    "MODEL_NAMES",
    "PRECISIONS",
    "TrainingResult",
    "data_parallel_train",
    "get",
    "train",
    "training_app",
]
