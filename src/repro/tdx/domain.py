"""Guest execution context: a regular VM or a trust domain (TD).

This is the CPU-side substrate of the paper's Fig. 2: the guest kernel
plus device driver run inside a VM or TD; interactions with the outside
world (hypervisor, TDX module, device MMIO) cost a VM exit — and under
TDX a much more expensive tdx_hypercall through the SEAM-mode TDX
module (the paper cites a +470 % latency increase [16]).

All timed operations are generator coroutines to be driven by the
simulation kernel; they also feed the Fig. 8 call-stack recorder and
per-primitive counters used in overhead breakdowns.
"""

from __future__ import annotations

from typing import Generator, Optional, TYPE_CHECKING

import numpy as np

from ..config import SystemConfig
from ..crypto import throughput as crypto_throughput
from ..faults import HYPERCALL, FatalFault, FaultInjector
from ..mem import BounceBufferPool, HostMemory
from ..obs import MetricsRegistry, SpanRecorder
from ..profiler import recovery_event
from ..sim import Simulator
from .callstack import CallStackRecorder

if TYPE_CHECKING:  # pragma: no cover - typing only
    from ..profiler import Trace


class GuestContext:
    """A VM (cc off) or TD (cc on) with its memory and TDX cost model."""

    def __init__(
        self,
        sim: Simulator,
        config: SystemConfig,
        trace: Optional["Trace"] = None,
    ) -> None:
        self.sim = sim
        self.config = config
        self.cc = config.cc_on
        self.trace = trace
        self.memory = HostMemory(
            config.vm_memory_bytes, td=self.cc, page_size=config.tdx.page_size
        )
        self.bounce = BounceBufferPool(
            config.tdx.bounce_pool_bytes, page_size=config.tdx.page_size
        )
        self.stacks = CallStackRecorder()
        self.rng = np.random.default_rng(config.seed)
        self.faults = FaultInjector(config.faults, seed=config.seed, sim=sim)
        # Observability: spans and sampled metrics live on the trace;
        # a guest without a trace records into disabled stand-ins.
        if trace is not None:
            self.spans = trace.spans
            self.metrics = trace.metrics
        else:
            self.spans = SpanRecorder(enabled=False)
            self.metrics = MetricsRegistry(enabled=False)
        self.bounce.on_usage = (
            lambda used: self.metrics.gauge("bounce.used_bytes").set(used)
        )
        # Lazily-cached hot instruments: resolved on first use (so the
        # registry's register-on-lookup semantics — and therefore the
        # set of exported metric names — are unchanged), then reused.
        self._hypercalls_counter: Optional[object] = None
        self._pages_converted_counter: Optional[object] = None
        # Primitive counters for overhead attribution.
        self.hypercall_count = 0
        self.seamcall_count = 0
        self.pages_accepted = 0
        self.pages_converted = 0

    # -- fault recovery accounting ------------------------------------------

    def record_recovery(
        self,
        site: str,
        start_ns: int,
        attempt: int,
        action: str = "retry",
        fatal: bool = False,
        scope: str = "cpu",
    ) -> None:
        """Book [start_ns, now) as recovery time for ``site``.

        Emits a RECOVERY trace event (when a trace is attached) so the
        core/breakdown gains a distinct "recovery" component, and feeds
        the injector ledger behind the ``faults`` CLI report.  A
        recovery *span* is recorded too, nested under whatever
        operation span is currently open in ``scope`` — the operation
        the fault delayed.
        """
        duration = self.sim.now - start_ns
        if self.trace is not None:
            self.trace.add(
                recovery_event(site, start_ns, duration, attempt, action)
            )
        self.spans.record(
            f"recover:{site}",
            "recovery",
            start_ns,
            duration,
            scope=scope,
            site=site,
            attempt=attempt,
            action=action,
        )
        self.metrics.counter(
            "faults.fatal" if fatal else "faults.retries"
        ).inc()
        self.faults.note_recovery(site, duration, fatal=fatal)

    # -- timing primitives -------------------------------------------------

    def jitter(self, base_ns: int, sigma: float) -> int:
        """Multiplicative lognormal jitter around ``base_ns``."""
        if sigma <= 0 or base_ns <= 0:
            return base_ns
        factor = float(self.rng.lognormal(mean=0.0, sigma=sigma))
        return max(1, int(base_ns * factor))

    def cpu_work(self, base_ns: int) -> Generator:
        """Ordinary guest CPU time; TDs pay a small TME-MK/TLB tax."""
        duration = base_ns
        if self.cc:
            duration = int(duration * self.config.cpu.td_compute_tax)
        self.stacks.record(duration)
        yield self.sim.timeout(duration)
        return duration

    def hypercall(self, reason: str = "tdx_hypercall") -> Generator:
        """One guest->host transition and back.

        In a regular VM this is a plain VM exit; in a TD it routes
        through the TDX module (tdcall -> SEAM -> hypervisor -> back).
        An injected timeout wastes the watchdog budget and reissues the
        call with backoff; exhaustion raises :class:`FatalFault`.
        """
        attempt = 1
        while True:
            fault = self.faults.draw(HYPERCALL)
            if fault is None:
                break
            start = self.sim.now
            timeout = self.config.fault_model.hypercall_timeout_ns
            with self.stacks.frame("tdx_hypercall.timeout"):
                self.stacks.record(timeout)
            yield self.sim.timeout(timeout)
            if attempt >= self.config.retry.max_attempts:
                self.record_recovery(
                    HYPERCALL, start, attempt, "fatal", fatal=True
                )
                raise FatalFault(HYPERCALL, attempt, fault)
            yield self.sim.timeout(self.config.retry.backoff_ns(attempt))
            self.record_recovery(HYPERCALL, start, attempt)
            attempt += 1
        self.hypercall_count += 1
        duration = self.config.hypercall_ns()
        if self.cc:
            with self.stacks.frame(reason):
                with self.stacks.frame("tdx_module.__seamcall"):
                    self.stacks.record(duration)
        else:
            with self.stacks.frame("vmexit"):
                self.stacks.record(duration)
        yield self.sim.timeout(duration)
        start = self.sim.now - duration
        counter = self._hypercalls_counter
        if counter is None:
            counter = self._hypercalls_counter = self.metrics.counter(
                "tdx.hypercalls"
            )
        counter.inc()
        if self.cc:
            parent = self.spans.record(reason, "tdx_module", start, duration)
            self.spans.record(
                "tdx_module.__seamcall",
                "tdx_module",
                start,
                duration,
                parent=parent,
            )
        else:
            self.spans.record(reason, "hypervisor", start, duration)
        return duration

    def seamcall(self, reason: str = "seamcall") -> Generator:
        """Host/TDX-module service call (only meaningful for TDs)."""
        self.seamcall_count += 1
        duration = self.config.tdx.seamcall_ns if self.cc else 0
        if duration:
            with self.stacks.frame(reason):
                self.stacks.record(duration)
            yield self.sim.timeout(duration)
            self.spans.record(
                reason, "tdx_module", self.sim.now - duration, duration
            )
            self.metrics.counter("tdx.seamcalls").inc()
        return duration

    def accept_pages(self, num_pages: int) -> Generator:
        """tdh.mem.page.accept for newly mapped private pages."""
        if not self.cc or num_pages <= 0:
            return 0
        self.pages_accepted += num_pages
        duration = num_pages * self.config.tdx.page_accept_ns
        with self.stacks.frame("tdx_accept_page"):
            self.stacks.record(duration)
        yield self.sim.timeout(duration)
        self.spans.record(
            "tdh.mem.page.accept",
            "tdx_module",
            self.sim.now - duration,
            duration,
            pages=num_pages,
        )
        self.metrics.counter("tdx.pages_accepted").inc(num_pages)
        return duration

    def set_memory_decrypted(self, address: int, size: int) -> Generator:
        """Private->shared conversion (Linux set_memory_decrypted()).

        Cost is per page: EPT attribute flip via hypercall-mediated
        mapping change plus TLB shootdown (paper Fig. 8 shows this frame
        under dma_direct_alloc in the launch path).
        """
        converted = self.memory.set_memory_decrypted(address, size)
        if converted == 0:
            return 0
        self.pages_converted += converted
        duration = converted * self.config.tdx.page_convert_ns
        with self.stacks.frame("set_memory_decrypted"):
            with self.stacks.frame("__set_memory_enc_dec"):
                self.stacks.record(duration)
        yield self.sim.timeout(duration)
        self.spans.record(
            "set_memory_decrypted",
            "td",
            self.sim.now - duration,
            duration,
            pages=converted,
        )
        counter = self._pages_converted_counter
        if counter is None:
            counter = self._pages_converted_counter = self.metrics.counter(
                "tdx.pages_converted"
            )
        counter.inc(converted)
        return duration

    # -- bounce-buffer management -------------------------------------------

    def dma_alloc_bounce(self, size: int) -> Generator:
        """Allocate a DMA-capable bounce region (dma_alloc_* path).

        Returns the bounce slot address.  Under CC this is the
        dma_direct_alloc + swiotlb + set_memory_decrypted path from
        Fig. 8; in a regular VM DMA goes direct and the "bounce" is
        just an address reservation with negligible cost.
        """
        with self.stacks.frame("dma_direct_alloc"):
            with self.spans.span("dma_direct_alloc", "driver", bytes=size):
                slot = self.bounce.alloc(size)
                try:
                    if self.cc:
                        with self.stacks.frame("swiotlb_tbl_map_single"):
                            self.stacks.record(500 * max(1, size // (1 << 20)))
                        yield from self.hypercall("tdvmcall.mapgpa")
                        num_pages = (size + self.config.tdx.page_size - 1) // self.config.tdx.page_size
                        duration = num_pages * self.config.tdx.page_convert_ns
                        self.pages_converted += num_pages
                        with self.stacks.frame("set_memory_decrypted"):
                            self.stacks.record(duration)
                        yield self.sim.timeout(duration)
                        self.spans.record(
                            "set_memory_decrypted",
                            "td",
                            self.sim.now - duration,
                            duration,
                            pages=num_pages,
                        )
                        counter = self._pages_converted_counter
                        if counter is None:
                            counter = self._pages_converted_counter = (
                                self.metrics.counter("tdx.pages_converted")
                            )
                        counter.inc(num_pages)
                except BaseException:
                    # The mapping failed: the slot must not leak.
                    self.bounce.free(slot)
                    raise
        return slot

    def dma_free_bounce(self, slot: int) -> None:
        self.bounce.free(slot)

    # -- software crypto (OpenSSL AES-GCM with AES-NI, Sec. II-A) ------------

    def crypt_time_ns(self, size: int, algorithm: Optional[str] = None) -> int:
        alg = algorithm or self.config.tdx.transfer_cipher
        single = crypto_throughput.crypt_time_ns(
            size, alg, self.config.cpu.crypto_cpu
        )
        threads = max(1, self.config.tdx.crypto_threads)
        return max(1, single // threads)

    def encrypt(self, size: int, algorithm: Optional[str] = None) -> Generator:
        """Software-encrypt ``size`` bytes for PCIe transfer (CC only)."""
        if not self.cc or size <= 0:
            return 0
        duration = self.crypt_time_ns(size, algorithm)
        with self.stacks.frame("openssl.EVP_EncryptUpdate"):
            with self.stacks.frame("aesni_gcm_encrypt"):
                self.stacks.record(duration)
        yield self.sim.timeout(duration)
        self.spans.record(
            "aes_gcm",
            "td",
            self.sim.now - duration,
            duration,
            crypto=True,
            bytes=size,
        )
        self.metrics.counter("crypto.encrypted_bytes").inc(size)
        return duration

    decrypt = encrypt  # AES-GCM encrypt/decrypt are symmetric in cost
