"""Call-stack recording for perf-style flame graphs (paper Fig. 8).

The simulated driver/TDX paths push named frames while they work; the
recorder accumulates self-time per unique stack, which folds directly
into Brendan-Gregg "folded stacks" format (``a;b;c <ns>``) — the input
format for flamegraph.pl and speedscope.
"""

from __future__ import annotations

from typing import Dict, List, Tuple


class _Frame:
    """Pops one pushed frame on block exit.

    ``frame()`` wraps every simulated driver/TDX call (~100k per figure
    cell); a plain ``__enter__``/``__exit__`` object avoids the
    generator frame + ``contextlib`` dispatch per call.  The frame is
    pushed at call time — with-statement semantics evaluate the context
    expression immediately before ``__enter__``, so nesting order is
    unchanged.
    """

    __slots__ = ("_stack",)

    def __init__(self, stack: List[str], name: str) -> None:
        self._stack = stack
        stack.append(name)

    def __enter__(self) -> None:
        return None

    def __exit__(self, *exc: object) -> bool:
        self._stack.pop()
        return False


class CallStackRecorder:
    """Accumulates (stack tuple) -> self-time in nanoseconds."""

    def __init__(self) -> None:
        self._current: List[str] = []
        self._samples: Dict[Tuple[str, ...], int] = {}

    def frame(self, name: str) -> _Frame:
        """Push a frame for the duration of a with-block."""
        return _Frame(self._current, name)

    def record(self, self_time_ns: int, *extra_frames: str) -> None:
        """Attribute ``self_time_ns`` to the current stack (+extras)."""
        if self_time_ns <= 0:
            return
        stack = tuple(self._current) + extra_frames
        if not stack:
            stack = ("<root>",)
        self._samples[stack] = self._samples.get(stack, 0) + self_time_ns

    @property
    def samples(self) -> Dict[Tuple[str, ...], int]:
        return dict(self._samples)

    def total_ns(self) -> int:
        return sum(self._samples.values())

    def folded(self) -> List[str]:
        """Folded-stacks lines, deterministic order (by stack)."""
        return [
            ";".join(stack) + f" {value}"
            for stack, value in sorted(self._samples.items())
        ]

    def inclusive_ns(self, frame_name: str) -> int:
        """Total time in stacks that contain ``frame_name`` anywhere."""
        return sum(
            value for stack, value in self._samples.items() if frame_name in stack
        )

    def clear(self) -> None:
        self._samples.clear()
