"""CPU TEE substrate: trust-domain context, TDX cost primitives, and
flame-graph call-stack recording (paper Sec. II-A, Fig. 2, Fig. 8)."""

from .callstack import CallStackRecorder
from .domain import GuestContext
from .spdm import SpdmError, SpdmSession, attest_gpu

__all__ = [
    "CallStackRecorder",
    "GuestContext",
    "SpdmError",
    "SpdmSession",
    "attest_gpu",
]
