"""SPDM session establishment between the TD's driver and the GPU
(paper Sec. III: "NVIDIA utilizes Security Protocols and Data Models
(SPDM) to attest communication between the CPU and GPU over PCIe").

A functional model of the DMTF SPDM 1.1 flow the H100 CC bring-up
performs before any kernel can run:

    GET_VERSION -> GET_CAPABILITIES -> NEGOTIATE_ALGORITHMS ->
    GET_CERTIFICATE -> CHALLENGE -> KEY_EXCHANGE -> FINISH

Messages are real byte strings accumulated into a SHA-256 transcript
hash; the challenge/key-exchange authentication uses HMAC keyed with a
provisioned device secret (a documented simplification of the
certificate-chain signature — the *protocol shape*, transcript
binding, and key schedule are faithful; the asymmetric primitive is
not re-implemented).  Session keys come from an HKDF over the
transcript, mirroring SPDM's key schedule, and become the AES-GCM key
for the PCIe channel.

Timing: each request/response pair costs a PCIe round trip plus
responder-firmware processing, and in a TD every MMIO doorbell is
hypercall-mediated, so CC session setup is measurably slower — the
"time to first kernel" experiment in benchmarks/test_extensions.py.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Generator, Optional

from .. import units
from ..config import SystemConfig
from ..crypto.sha256 import hkdf_expand, hmac_sha256, sha256
from ..faults import SPDM as SPDM_SITE
from ..faults import FatalFault
from ..sim import Simulator
from .domain import GuestContext


class SpdmError(RuntimeError):
    """Protocol violation or failed verification."""


# Request/response codes (subset of DMTF DSP0274).
GET_VERSION = 0x84
GET_CAPABILITIES = 0xE1
NEGOTIATE_ALGORITHMS = 0xE3
GET_CERTIFICATE = 0x82
CHALLENGE = 0x83
KEY_EXCHANGE = 0xE4
FINISH = 0xE5

_RESPONSE_BIT = 0x40  # responses echo the code with bit 6 flipped

# Responder-side processing budgets per message (firmware crypto and
# certificate walking dominate).
_RESPONDER_NS = {
    GET_VERSION: units.us(40),
    GET_CAPABILITIES: units.us(60),
    NEGOTIATE_ALGORITHMS: units.us(80),
    GET_CERTIFICATE: units.us(900),  # chain read-out from fuses/flash
    CHALLENGE: units.us(650),  # measurement + signature
    KEY_EXCHANGE: units.us(780),  # DHE + signature
    FINISH: units.us(240),
}
_MESSAGE_BYTES = {
    GET_VERSION: 16,
    GET_CAPABILITIES: 32,
    NEGOTIATE_ALGORITHMS: 64,
    GET_CERTIFICATE: 2048,  # certificate chain portion
    CHALLENGE: 96,
    KEY_EXCHANGE: 160,
    FINISH: 64,
}
_MESSAGE_NAMES = {
    GET_VERSION: "get_version",
    GET_CAPABILITIES: "get_capabilities",
    NEGOTIATE_ALGORITHMS: "negotiate_algorithms",
    GET_CERTIFICATE: "get_certificate",
    CHALLENGE: "challenge",
    KEY_EXCHANGE: "key_exchange",
    FINISH: "finish",
}


@dataclass
class SpdmMessage:
    code: int
    payload: bytes

    def to_bytes(self) -> bytes:
        return bytes([self.code]) + len(self.payload).to_bytes(4, "big") + self.payload


class SpdmResponder:
    """The GPU-firmware side: answers requests, proves possession of
    the provisioned device secret, and derives the same session key."""

    def __init__(self, device_secret: bytes, measurement: bytes) -> None:
        self._secret = device_secret
        self.measurement = measurement
        self._transcript = b""
        self.session_key: Optional[bytes] = None

    def handle(self, request: SpdmMessage) -> SpdmMessage:
        self._transcript += request.to_bytes()
        if request.code == GET_VERSION:
            response = SpdmMessage(GET_VERSION ^ _RESPONSE_BIT, b"\x11")  # 1.1
        elif request.code == GET_CAPABILITIES:
            response = SpdmMessage(
                GET_CAPABILITIES ^ _RESPONSE_BIT, b"CERT|CHAL|KEY_EX|ENCRYPT"
            )
        elif request.code == NEGOTIATE_ALGORITHMS:
            response = SpdmMessage(
                NEGOTIATE_ALGORITHMS ^ _RESPONSE_BIT, b"SHA256|AES128GCM"
            )
        elif request.code == GET_CERTIFICATE:
            cert = b"H100-CC-device-cert:" + sha256(self._secret)
            response = SpdmMessage(GET_CERTIFICATE ^ _RESPONSE_BIT, cert)
        elif request.code == CHALLENGE:
            nonce = request.payload
            proof = hmac_sha256(
                self._secret, self._transcript + nonce + self.measurement
            )
            response = SpdmMessage(
                CHALLENGE ^ _RESPONSE_BIT, self.measurement + proof
            )
        elif request.code == KEY_EXCHANGE:
            exchange_data = request.payload
            proof = hmac_sha256(self._secret, self._transcript + exchange_data)
            response = SpdmMessage(KEY_EXCHANGE ^ _RESPONSE_BIT, proof)
        elif request.code == FINISH:
            self.session_key = self._derive_key()
            confirm = hmac_sha256(self.session_key, b"spdm-finish-rsp")
            response = SpdmMessage(FINISH ^ _RESPONSE_BIT, confirm)
        else:
            raise SpdmError(f"unsupported request code {request.code:#x}")
        self._transcript += response.to_bytes()
        return response

    def _derive_key(self) -> bytes:
        prk = hmac_sha256(self._secret, sha256(self._transcript))
        return hkdf_expand(prk, b"spdm session key", 16)


@dataclass
class SpdmSession:
    """Result of a completed attestation + key exchange."""

    session_key: bytes
    measurement: bytes
    transcript_hash: bytes
    elapsed_ns: int
    messages: int


class SpdmRequester:
    """The in-TD driver side, driven as a simulation process."""

    def __init__(
        self,
        sim: Simulator,
        guest: GuestContext,
        config: SystemConfig,
        expected_measurement: bytes,
        device_secret: bytes,
    ) -> None:
        self.sim = sim
        self.guest = guest
        self.config = config
        self.expected_measurement = expected_measurement
        # The verifier holds the same provisioned secret (stands in for
        # the vendor CA public key).
        self._secret = device_secret
        self._transcript = b""

    def _round_trip(self, responder: SpdmResponder, request: SpdmMessage) -> Generator:
        """One request/response with PCIe + firmware + (TD) exit costs."""
        wire_bytes = _MESSAGE_BYTES[request.code]
        pcie_ns = units.us(2.0) + units.transfer_time_ns(
            wire_bytes, self.config.pcie.dma_h2d_bw
        )
        with self.guest.spans.span(
            f"spdm.{_MESSAGE_NAMES[request.code]}", "driver", bytes=wire_bytes
        ):
            # Doorbell + completion are MMIO: hypercall-mediated in a TD.
            yield from self.guest.hypercall("spdm.doorbell")
            yield self.sim.timeout(pcie_ns + _RESPONDER_NS[request.code])
            self._transcript += request.to_bytes()
            response = responder.handle(request)
            fault = self.guest.faults.draw(SPDM_SITE)
            if fault is not None:
                # Corrupt the response on the wire.  Proof-carrying messages
                # fail verification directly; any other corruption diverges
                # the transcripts and is caught by the key schedule at
                # FINISH — SPDM's transcript binding guarantees detection.
                tampered = bytearray(response.payload or b"\x00")
                tampered[-1] ^= 0xFF
                response = SpdmMessage(response.code, bytes(tampered))
            self._transcript += response.to_bytes()
            yield from self.guest.cpu_work(units.us(15))  # verify/parse
        self.guest.metrics.counter("spdm.messages").inc()
        return response

    def establish(self, responder: SpdmResponder) -> Generator:
        """Run the full SPDM flow; returns an :class:`SpdmSession`."""
        with self.guest.spans.span("spdm.establish", "driver"):
            session = yield from self._establish(responder)
        return session

    def _establish(self, responder: SpdmResponder) -> Generator:
        start = self.sim.now
        messages = 0
        for code, payload in (
            (GET_VERSION, b""),
            (GET_CAPABILITIES, b""),
            (NEGOTIATE_ALGORITHMS, b"SHA256|AES128GCM"),
            (GET_CERTIFICATE, b""),
        ):
            yield from self._round_trip(responder, SpdmMessage(code, payload))
            messages += 1

        # CHALLENGE: verify the device's measurement proof.
        nonce = sha256(self._transcript)[:16]
        transcript_at_challenge = self._transcript + SpdmMessage(
            CHALLENGE, nonce
        ).to_bytes()
        response = yield from self._round_trip(
            responder, SpdmMessage(CHALLENGE, nonce)
        )
        messages += 1
        measurement, proof = response.payload[:32], response.payload[32:]
        expected = hmac_sha256(
            self._secret, transcript_at_challenge + nonce + measurement
        )
        if proof != expected:
            raise SpdmError("challenge proof verification failed")
        if measurement != self.expected_measurement:
            raise SpdmError("GPU measurement does not match policy")

        # KEY_EXCHANGE + FINISH.
        exchange = sha256(b"dhe-public:" + nonce)[:32]
        transcript_at_kex = self._transcript + SpdmMessage(
            KEY_EXCHANGE, exchange
        ).to_bytes()
        response = yield from self._round_trip(
            responder, SpdmMessage(KEY_EXCHANGE, exchange)
        )
        messages += 1
        if response.payload != hmac_sha256(
            self._secret, transcript_at_kex + exchange
        ):
            raise SpdmError("key-exchange proof verification failed")
        # Both sides derive the session key over the transcript up to
        # and including the FINISH request (the responder keys its
        # confirmation before appending its own response).
        finish_request = SpdmMessage(FINISH, b"")
        transcript_at_finish = self._transcript + finish_request.to_bytes()
        response = yield from self._round_trip(responder, finish_request)
        messages += 1

        session_key = self._derive_key(transcript_at_finish)
        if response.payload != hmac_sha256(session_key, b"spdm-finish-rsp"):
            raise SpdmError("finish confirmation mismatch")
        if responder.session_key != session_key:
            raise SpdmError("key schedule divergence")
        return SpdmSession(
            session_key=session_key,
            measurement=measurement,
            transcript_hash=sha256(self._transcript),
            elapsed_ns=self.sim.now - start,
            messages=messages,
        )

    def _derive_key(self, transcript: bytes) -> bytes:
        prk = hmac_sha256(self._secret, sha256(transcript))
        return hkdf_expand(prk, b"spdm session key", 16)


def attest_gpu(
    sim: Simulator,
    guest: GuestContext,
    config: SystemConfig,
    device_secret: bytes = b"h100-provisioned-secret",
    measurement: Optional[bytes] = None,
    expected_measurement: Optional[bytes] = None,
) -> Generator:
    """Convenience process: build both endpoints and run the flow.

    ``measurement`` is what the GPU reports; ``expected_measurement``
    is the verifier policy (defaults to matching — pass a different
    value to simulate a compromised device being rejected).

    Injected message corruption (the ``spdm.attest`` fault site) is
    recovered by tearing the session down and re-attesting from scratch
    — SPDM state is transcript-bound, so no partial resume is possible.
    Genuine verification failures (policy mismatch, bad proof with no
    injection) are *not* retried; retry exhaustion raises
    :class:`~repro.faults.FatalFault`.
    """
    measurement = measurement if measurement is not None else sha256(b"h100-cc-fw")
    expected = (
        expected_measurement if expected_measurement is not None else measurement
    )
    retry = config.retry
    attempt = 1
    while True:
        responder = SpdmResponder(device_secret, measurement)
        requester = SpdmRequester(sim, guest, config, expected, device_secret)
        injected_before = guest.faults.injected_at(SPDM_SITE)
        start = sim.now
        try:
            session = yield from requester.establish(responder)
            return session
        except SpdmError as exc:
            if guest.faults.injected_at(SPDM_SITE) == injected_before:
                raise  # genuine failure, not an injected corruption
            if attempt >= retry.max_attempts:
                guest.record_recovery(SPDM_SITE, start, attempt, "fatal", fatal=True)
                raise FatalFault(SPDM_SITE, attempt) from exc
            yield sim.timeout(
                config.fault_model.spdm_restart_ns + retry.backoff_ns(attempt)
            )
            guest.record_recovery(SPDM_SITE, start, attempt, "re-attest")
            attempt += 1
