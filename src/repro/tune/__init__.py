"""Pareto auto-tuner over CC-mitigation pass pipelines.

``repro tune`` searches the composable :mod:`repro.optim.passes`
space for pipelines that close the CC serving gap: it enumerates a
deterministic pass x config grid, runs every (pipeline, rate, mode)
point as an ``ext_recovered_serving`` *cell* through the
content-addressed :mod:`repro.exec` cache (resumable — re-running a
partially finished sweep only simulates the missing points; parallel
via ``--jobs``), and reports the Pareto frontier over

    (goodput up, TTFT p99 down, CC overhead ratio down)

with per-pipeline claw-back attribution against the untuned CC
baseline.  :func:`tune_verdict_json` is byte-deterministic for a
fixed (spec, code) pair — the CI ``tune-smoke`` job runs the sweep
twice and ``cmp``s the bytes.
"""

from .driver import (
    CANDIDATES,
    FAMILY_ORDER,
    TuneError,
    TuneReport,
    TuneSpec,
    build_grid,
    enumerate_pipelines,
    pareto_frontier,
    render_pareto_table,
    run_tune,
    tune_verdict,
    tune_verdict_json,
)

__all__ = [
    "CANDIDATES",
    "FAMILY_ORDER",
    "TuneError",
    "TuneReport",
    "TuneSpec",
    "build_grid",
    "enumerate_pipelines",
    "pareto_frontier",
    "render_pareto_table",
    "run_tune",
    "tune_verdict",
    "tune_verdict_json",
]
