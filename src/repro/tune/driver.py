"""The ``repro tune`` search driver.

Deterministic grid search over mitigation pipelines.  The unit of work
is one ``ext_recovered_serving`` ``cell`` variant — a single
(pipeline, rate, mode) serving scenario — scheduled through
:func:`repro.exec.runner.run_grid`, so points are content-addressed:
a re-run after an interrupt (or after editing unrelated figures) only
simulates the points whose cache entries are missing or stale, and
``--jobs N`` fans misses over a process pool while staying
byte-identical to the serial sweep.

The verdict deliberately excludes anything run-dependent (cache
hit/miss counts, wall times): for a fixed (spec, code, calibration)
triple, :func:`tune_verdict_json` is the same bytes on every machine,
every run — the determinism contract CI's ``tune-smoke`` job enforces
with ``cmp``.
"""

from __future__ import annotations

import itertools
import json
import math
import os
from dataclasses import asdict, dataclass, field
from typing import Dict, List, Mapping, Optional, Sequence, Tuple

from ..exec.runner import CellSpec, GridReport, run_grid
from ..figures.ext_recovered_serving import cell_figure_id
from ..optim.passes import PassError, parse_pipeline

#: Canonical family application order — matches the cumulative ladder
#: in :mod:`repro.figures.ext_recovered_serving` so pipeline ids line
#: up between the figure and the tuner.
FAMILY_ORDER = ("fusion", "overlap", "batch", "staging", "quant")

#: Per-family config candidates for each search grid.  ``small`` is
#: one candidate per family (2^5 = 32 pipelines over all families);
#: ``full`` widens the numeric knobs (2*3*4*2*3 = 144 pipelines).
CANDIDATES: Dict[str, Dict[str, Tuple[str, ...]]] = {
    "small": {
        "fusion": ("fusion",),
        "overlap": ("overlap:2",),
        "batch": ("batch:4",),
        "staging": ("staging",),
        "quant": ("quant:awq:8",),
    },
    "full": {
        "fusion": ("fusion",),
        "overlap": ("overlap:2", "overlap:4"),
        "batch": ("batch:2", "batch:4", "batch:8"),
        "staging": ("staging",),
        "quant": ("quant:awq:8", "quant:awq:4"),
    },
}


class TuneError(ValueError):
    """Invalid tune spec, or a sweep point failed to simulate."""


@dataclass(frozen=True)
class TuneSpec:
    """One auto-tuning problem: which passes to search, at what load."""

    families: Tuple[str, ...] = FAMILY_ORDER
    grid: str = "small"
    rate: float = 24.0
    duration_s: float = 2.0
    tenants: int = 2
    seed: int = 42

    def validate(self) -> None:
        if self.grid not in CANDIDATES:
            raise TuneError(
                f"unknown grid {self.grid!r} (have {sorted(CANDIDATES)})"
            )
        if not self.families:
            raise TuneError("families must be non-empty")
        seen = set()
        for family in self.families:
            if family not in FAMILY_ORDER:
                raise TuneError(
                    f"unknown pass family {family!r} "
                    f"(have {list(FAMILY_ORDER)})"
                )
            if family in seen:
                raise TuneError(f"duplicate pass family {family!r}")
            seen.add(family)
        if not (
            isinstance(self.rate, (int, float))
            and math.isfinite(self.rate)
            and self.rate > 0
        ):
            raise TuneError(f"rate must be positive finite, got {self.rate!r}")
        if not (
            isinstance(self.duration_s, (int, float))
            and math.isfinite(self.duration_s)
            and self.duration_s > 0
        ):
            raise TuneError(
                f"duration_s must be positive finite, got {self.duration_s!r}"
            )
        if not isinstance(self.tenants, int) or self.tenants < 1:
            raise TuneError(f"tenants must be an int >= 1, got {self.tenants!r}")


def enumerate_pipelines(spec: TuneSpec) -> Tuple[str, ...]:
    """Deterministic pipeline enumeration: the cross product of
    (absent | candidate...) per selected family, in canonical family
    order.  The all-absent combination spells ``naive`` and always
    comes first — the untuned baseline every sweep includes."""
    spec.validate()
    candidates = CANDIDATES[spec.grid]
    axes = [
        (None, *candidates[family])
        for family in FAMILY_ORDER
        if family in spec.families
    ]
    pipelines: List[str] = []
    for combo in itertools.product(*axes):
        chosen = [token for token in combo if token is not None]
        pipelines.append("+".join(chosen) if chosen else "naive")
    return tuple(pipelines)


def _cell_slug(pipeline: str) -> str:
    return (
        parse_pipeline(pipeline)
        .pipeline_id()
        .replace(":", "")
        .replace("+", "-")
    )


def build_grid(spec: TuneSpec) -> Dict[str, CellSpec]:
    """The sweep as an exec grid: one non-hidden cell per point.

    Cells must NOT be hidden — hidden cells get a self-test cache key
    instead of the code fingerprint, which would defeat invalidation
    when :mod:`repro.optim` / the figure module changes.
    """

    def cell(cell_id: str, pipeline: str, mode: str) -> CellSpec:
        return CellSpec(
            cell_id=cell_id,
            module="ext_recovered_serving",
            variant="cell",
            params=(
                ("passes", pipeline),
                ("rate", float(spec.rate)),
                ("mode", mode),
                ("duration_s", float(spec.duration_s)),
                ("tenants", spec.tenants),
                ("seed", spec.seed),
            ),
            slow=True,
        )

    grid: Dict[str, CellSpec] = {}
    base_id = f"tune_base_r{spec.rate:g}"
    grid[base_id] = cell(base_id, "naive", "base")
    for pipeline in enumerate_pipelines(spec):
        cell_id = f"tune_cc_r{spec.rate:g}_{_cell_slug(pipeline)}"
        if cell_id in grid:  # pragma: no cover - candidate sets are injective
            raise TuneError(f"duplicate tune cell id {cell_id!r}")
        grid[cell_id] = cell(cell_id, pipeline, "cc")
    return grid


@dataclass
class TuneReport:
    """Everything one tuning sweep produced."""

    spec: TuneSpec
    points: List[Dict]  # per-pipeline metric records (cc mode)
    baseline: Dict  # base-mode + naive-cc reference metrics
    grid_report: GridReport = field(repr=False, default=None)

    @property
    def pareto(self) -> List[Dict]:
        return [p for p in self.points if p["pareto"]]

    @property
    def best(self) -> Dict:
        """Top-goodput Pareto point (ties break on lower TTFT p99,
        then pipeline id — all deterministic)."""
        return min(
            self.pareto,
            key=lambda p: (-p["goodput_rps"], p["ttft_p99_ms"],
                           p["pipeline"]),
        )


def pareto_frontier(points: Sequence[Mapping]) -> List[bool]:
    """Non-dominated mask over (goodput up, TTFT p99 down, CC overhead
    ratio down).  A point is dominated when another is at least as good
    on every objective and strictly better on one."""

    def objectives(p: Mapping) -> Tuple[float, float, float]:
        return (
            -p["goodput_rps"],
            p["ttft_p99_ms"],
            p["cc_overhead_ratio"],
        )

    mask: List[bool] = []
    for me in points:
        mine = objectives(me)
        dominated = any(
            all(o <= m for o, m in zip(objectives(other), mine))
            and objectives(other) != mine
            for other in points
        )
        mask.append(not dominated)
    return mask


def _harvest_row(json_path: str) -> Dict:
    with open(json_path) as handle:
        payload = json.load(handle)
    columns = payload["columns"]
    row = dict(zip(columns, payload["rows"][0]))
    for note in payload.get("notes", []):
        if note.startswith("accuracy_drop_pct="):
            row["accuracy_drop_pct"] = float(note.split("=", 1)[1])
    return row


def run_tune(
    spec: TuneSpec,
    jobs: int = 1,
    results_dir: str = os.path.join("results", "tune"),
    cache_dir: Optional[str] = None,
    force: bool = False,
    use_cache: bool = True,
) -> TuneReport:
    """Run (or resume) one tuning sweep.

    ``cache_dir`` defaults to the main grid's ``results/.cache`` so
    tune points share the content-addressed store with ``repro run``
    (and CI's cache restore); per-point outputs land under
    ``results_dir`` as ``<figure_id>.json|.txt``.
    """
    spec.validate()
    grid = build_grid(spec)
    cache_dir = cache_dir or os.path.join("results", ".cache")
    report = run_grid(
        list(grid),
        jobs=jobs,
        results_dir=results_dir,
        cache_dir=cache_dir,
        force=force,
        use_cache=use_cache,
        grid=grid,
    )
    failed = report.failed
    if failed:
        details = "; ".join(
            f"{outcome.cell}: {outcome.error}" for outcome in failed
        )
        raise TuneError(f"{len(failed)} tune point(s) failed: {details}")

    rows = {
        outcome.cell: _harvest_row(outcome.json_path)
        for outcome in report.outcomes
    }
    base_id = f"tune_base_r{spec.rate:g}"
    base_row = rows.pop(base_id)
    base_goodput = base_row["goodput_rps"]

    naive_id = f"tune_cc_r{spec.rate:g}_naive"
    naive_goodput = rows[naive_id]["goodput_rps"]
    gap = base_goodput - naive_goodput

    points: List[Dict] = []
    for cell_id in sorted(rows):
        row = rows[cell_id]
        goodput = row["goodput_rps"]
        points.append({
            "pipeline": row["pipeline"],
            "goodput_rps": goodput,
            "completed_rps": row["completed_rps"],
            "ttft_p50_ms": row["ttft_p50_ms"],
            "ttft_p99_ms": row["ttft_p99_ms"],
            "tpot_p99_ms": row["tpot_p99_ms"],
            "preemptions": row["preemptions"],
            "accuracy_drop_pct": row.get("accuracy_drop_pct", 0.0),
            # CC tax left after mitigation: untuned-native over tuned-CC
            # goodput (1.0 = gap closed; < 1.0 = now beating native).
            "cc_overhead_ratio": round(base_goodput / goodput, 4)
            if goodput > 0 else math.inf,
            "clawback_frac": round((goodput - naive_goodput) / gap, 4)
            if gap > 0 else 0.0,
        })
    for point, flag in zip(points, pareto_frontier(points)):
        point["pareto"] = flag
    baseline = {
        "base_goodput_rps": base_goodput,
        "base_ttft_p99_ms": base_row["ttft_p99_ms"],
        "naive_cc_goodput_rps": naive_goodput,
        "naive_cc_ttft_p99_ms": rows[naive_id]["ttft_p99_ms"],
    }
    return TuneReport(
        spec=spec, points=points, baseline=baseline, grid_report=report
    )


def tune_verdict(report: TuneReport) -> Dict:
    """Deterministic, JSON-ready verdict (no cache/wall statistics)."""
    best = report.best
    return {
        "command": "tune",
        "spec": asdict(report.spec),
        "cells": len(report.points) + 1,  # + the base-mode point
        "baseline": report.baseline,
        "points": report.points,
        "pareto": [p["pipeline"] for p in report.pareto],
        "best": {
            "pipeline": best["pipeline"],
            "goodput_rps": best["goodput_rps"],
            "ttft_p99_ms": best["ttft_p99_ms"],
            "cc_overhead_ratio": best["cc_overhead_ratio"],
            "clawback_frac": best["clawback_frac"],
            "accuracy_drop_pct": best["accuracy_drop_pct"],
        },
    }


def tune_verdict_json(report: TuneReport) -> str:
    """Byte-stable encoding (the ``tune-smoke`` determinism gate)."""
    return json.dumps(tune_verdict(report), indent=1, sort_keys=True)


def render_pareto_table(report: TuneReport) -> str:
    """Human-readable Pareto summary for the CLI."""
    lines = [
        "pareto frontier (goodput up, ttft p99 down, cc ratio down):",
        f"{'pipeline':<48} {'goodput':>8} {'ttft_p99':>9} "
        f"{'cc_ratio':>9} {'clawback':>9} {'acc_drop':>9}",
    ]
    frontier = sorted(
        report.pareto, key=lambda p: (-p["goodput_rps"], p["pipeline"])
    )
    for p in frontier:
        lines.append(
            f"{p['pipeline']:<48} {p['goodput_rps']:>8.2f} "
            f"{p['ttft_p99_ms']:>9.2f} {p['cc_overhead_ratio']:>9.3f} "
            f"{p['clawback_frac']:>9.2f} {p['accuracy_drop_pct']:>9.2f}"
        )
    base = report.baseline
    lines.append(
        f"baseline: base goodput {base['base_goodput_rps']:.2f} rps, "
        f"naive CC goodput {base['naive_cc_goodput_rps']:.2f} rps "
        f"({len(report.pareto)}/{len(report.points)} points on frontier)"
    )
    best = report.best
    lines.append(
        f"best: {best['pipeline']} — goodput {best['goodput_rps']:.2f} rps, "
        f"ttft p99 {best['ttft_p99_ms']:.2f} ms, "
        f"claws back {100 * best['clawback_frac']:.0f}% of the CC gap"
    )
    return "\n".join(lines)
