"""System configuration (paper Table I) and simulator parameters.

Every latency/bandwidth knob of the simulated CC stack lives here, as a
tree of frozen dataclasses rooted at :class:`SystemConfig`.  Defaults
encode the paper's testbed (Table I: dual EMR Xeon 6530, 1 TB DDR5,
H100 NVL 94 GB over PCIe 5.0 x16, TDX 1.5, Ubuntu 22.04) together with
calibrated micro-parameters chosen so the simulator lands on the
paper's reported overhead ratios (see repro.calibration for the
targets and EXPERIMENTS.md for achieved values).

Use :func:`SystemConfig.base` / :func:`SystemConfig.cc` for the two
modes the paper compares, or ``dataclasses.replace`` to build ablation
variants.
"""

from __future__ import annotations

import dataclasses
from dataclasses import dataclass, field
from enum import Enum
from typing import Optional

from . import units
from .crypto import throughput as crypto_throughput
from .faults.plan import FaultModelSpec, FaultPlan
from .faults.retry import RetryPolicy


class CCMode(Enum):
    """Computation modes compared throughout the paper."""

    OFF = "base"  # regular VM (paper: base / non-CC / CC-off)
    ON = "cc"  # trust domain with GPU in CC mode


class MemoryKind(Enum):
    """Host/device memory kinds relevant to transfer behaviour."""

    PAGEABLE = "pageable"
    PINNED = "pinned"
    MANAGED = "managed"  # UVM (cudaMallocManaged)
    DEVICE = "device"


class CopyKind(Enum):
    """Direction of a memory copy."""

    H2D = "h2d"
    D2H = "d2h"
    D2D = "d2d"


@dataclass(frozen=True)
class CPUSpec:
    """CPU package (Table I: 2x 5th Gen Xeon 6530 Gold @ 2.1 GHz)."""

    name: str = "Intel Xeon Gold 6530 (Emerald Rapids)"
    crypto_cpu: str = crypto_throughput.EMR
    cores: int = 32
    sockets: int = 2
    freq_ghz: float = 2.1
    # Single-thread staging-copy bandwidth (bytes/s): pageable copies
    # stage through write-combined driver buffers, well below raw
    # stream-copy speed.
    memcpy_bw: float = 13.5 * units.GB
    # Multiplicative tax on plain CPU work inside a TD (TME-MK decrypt on
    # LLC misses, extra TLB pressure).  Small by design (Sec. II-A).
    td_compute_tax: float = 1.04


@dataclass(frozen=True)
class PCIeSpec:
    """PCIe 5.0 x16 link between CPU socket and the GPU."""

    generation: int = 5
    lanes: int = 16
    # Effective (measured-class, not theoretical) DMA bandwidths.
    dma_h2d_bw: float = 26.0 * units.GB
    dma_d2h_bw: float = 24.0 * units.GB
    # Fixed DMA transaction setup latency per descriptor.
    dma_setup_ns: int = units.us(4.0)
    # Staging chunk size used by the driver for pageable/bounce pipelines.
    staging_chunk_bytes: int = 1 * units.MiB


@dataclass(frozen=True)
class GPUSpec:
    """NVIDIA H100 NVL 94 GB (Table I)."""

    name: str = "NVIDIA H100 NVL 94GB"
    num_sms: int = 132
    hbm_bytes: int = 94 * units.GiB
    hbm_bw: float = 3900.0 * units.GB  # HBM3
    # Dense peak throughputs (FLOP/s).
    fp32_flops: float = 60.0e12
    fp16_tensor_flops: float = 990.0e12
    bf16_tensor_flops: float = 990.0e12
    int8_tensor_flops: float = 1980.0e12
    # Achievable fraction of peak for real kernels (roofline efficiency).
    default_efficiency: float = 0.45
    # Fixed per-kernel execution overhead (scheduling, tail effects).
    kernel_fixed_ns: int = units.us(1.8)
    num_copy_engines: int = 3  # H2D, D2H, and one extra async engine
    max_concurrent_kernels: int = 32


@dataclass(frozen=True)
class TDXSpec:
    """Intel TDX 1.5 cost model (Sec. II-A, Fig. 8).

    ``hypercall_ns`` is the cost of a plain VM exit in a regular VM;
    ``td_hypercall_ns`` is a tdx_hypercall (TD -> TDX module -> host ->
    back), calibrated to the +470 % increase the paper cites from the
    SIGMETRICS '25 CVM study [16].
    """

    hypercall_ns: int = units.us(1.3)
    td_hypercall_ns: int = units.us(7.4)  # = 1.3us * 5.7 (+470 %)
    seamcall_ns: int = units.us(2.2)
    # tdh.mem.page.accept + EPT-entry install, per 4 KiB page.
    page_accept_ns: int = units.us(1.0)
    # set_memory_decrypted(): private->shared conversion, per 4 KiB page
    # (EPT permission flip + TLB shootdown, amortized).
    page_convert_ns: int = units.us(2.1)
    page_size: int = 4 * units.KiB
    # swiotlb bounce-buffer pool for DMA to/from the untrusted world.
    bounce_pool_bytes: int = 64 * units.MiB
    # Per-staging-chunk bounce bookkeeping during CC transfers (slot
    # recycling, scatter-gather setup, completion polling); this is why
    # the observed CC peak (3.03 GB/s) sits below the raw AES-GCM rate
    # (3.36 GB/s) — Sec. VI-A.
    bounce_chunk_overhead_ns: int = units.us(30.0)
    # Cipher used for PCIe traffic under CC (Sec. II-A: AES-GCM via
    # OpenSSL+AES-NI; single worker thread).
    transfer_cipher: str = crypto_throughput.DEFAULT_TRANSFER_CIPHER
    crypto_threads: int = 1
    # TEE-IO / TDX Connect what-if (Sec. VI-A: "TEE-IO technology
    # offers a potential solution... requires hardware replacement").
    # With PCIe IDE link encryption and trusted DMA, transfers skip the
    # bounce buffer and software AES-GCM entirely; the link pays a
    # small inline-encryption efficiency tax instead.
    teeio: bool = False
    teeio_link_efficiency: float = 0.94
    # Per-transfer TDISP/IOMMU validation cost under TEE-IO.
    teeio_setup_ns: int = units.us(2.5)


@dataclass(frozen=True)
class LaunchPathSpec:
    """CUDA kernel launch cost model (Sec. VI-B, Fig. 7a/8/11a/12a).

    The steady-state launch is a user-space pushbuffer write plus a
    doorbell; CC adds encryption/authentication of the command packet
    and occasional hypercall-mediated driver work.  The *first* launch
    of a kernel additionally loads the module and, under CC, allocates
    and converts bounce pages (dma_direct_alloc + set_memory_decrypted
    — the dominant frames in the paper's Fig. 8 flame graph).
    """

    klo_base_ns: int = units.us(4.4)
    # Extra steady-state CC work per launch (command packet AES-GCM,
    # shared-memory ring maintenance).
    klo_cc_extra_ns: int = units.us(0.3)
    # Every launch performs this many MMIO doorbell/register touches
    # that stay user-space in base mode but are cheap shared-page writes
    # under CC as well; only a fraction escalate to hypercalls.
    hypercalls_per_launch: float = 0.03
    # First-launch extras per kernel module (module load / JIT /
    # channel setup).
    first_launch_extra_ns: int = units.us(96.0)
    # DMA-capable pages the driver allocates+converts per kernel module
    # on its first launch under CC (the dma_direct_alloc +
    # set_memory_decrypted frames of Fig. 8).  Scales with module code
    # size: kernels can override via attrs["module_pages"].  The
    # default keeps ordinary first launches ~1.45x under CC; fat
    # templated modules (dwt2d's fdwt53/97) use ~200 pages, which
    # reproduces its 5.31x KLO blowup.
    first_launch_bounce_pages: int = 8
    # Lognormal jitter applied to each launch duration.
    jitter_sigma: float = 0.14
    # GPU-side launch queue depth (credits before the CPU blocks) —
    # the pushbuffer throttle that creates LQT backpressure for
    # launch-storm apps like sc/3dconv.
    launch_queue_depth: int = 64
    # CPU-side gap between consecutive launches from app code (loop
    # bookkeeping, argument marshalling).
    inter_launch_cpu_ns: int = units.us(1.9)
    # cudaDeviceSynchronize overhead beyond the wait itself; CC pays an
    # extra interrupt/doorbell round trip.
    sync_base_ns: int = units.us(2.2)
    sync_cc_extra_ns: int = units.us(3.8)
    # CUDA-graph costs (Sec. VII-A: launch fusion via cudaGraph).
    graph_capture_per_node_ns: int = units.us(6.5)
    graph_instantiate_base_ns: int = units.us(35.0)
    graph_launch_base_ns: int = units.us(7.0)
    graph_launch_per_node_ns: int = units.ns(320)


@dataclass(frozen=True)
class CommandProcessorSpec:
    """GPU command processor / channel model (Sec. II-A, KQT in Fig. 7c).

    Every command pays a fetch/dispatch latency; under CC the command
    processor additionally authenticates and decrypts the command
    packet, a fixed tax that dominates KQT for apps with few launches
    (Observation 4).
    """

    fetch_ns: int = units.us(1.6)
    cc_auth_extra_ns: int = units.us(3.1)


@dataclass(frozen=True)
class AllocSpec:
    """Memory management cost model (Fig. 6).

    Costs are ``base + per_page * pages`` with separate (base, CC)
    calibrations.  CC factors are dominated by hypercall-mediated ioctls
    and TDX page accept/convert work; see DESIGN.md Sec. 4 for targets.
    """

    # cudaMalloc (device memory)
    dmalloc_base_ns: int = units.us(72.0)
    dmalloc_per_page_ns: float = 14.0
    dmalloc_cc_base_ns: int = units.us(405.0)
    dmalloc_cc_per_page_ns: float = 80.0
    # cudaMallocHost (pinned host memory)
    hmalloc_base_ns: int = units.us(118.0)
    hmalloc_per_page_ns: float = 190.0
    hmalloc_cc_base_ns: int = units.us(670.0)
    hmalloc_cc_per_page_ns: float = 1090.0
    # cudaFree (device memory)
    free_base_ns: int = units.us(46.0)
    free_per_page_ns: float = 11.0
    free_cc_base_ns: int = units.us(485.0)
    free_cc_per_page_ns: float = 116.0
    # cudaMallocManaged (UVM)
    managed_alloc_base_ns: int = units.us(36.5)
    managed_alloc_per_page_ns: float = 7.2
    managed_alloc_cc_base_ns: int = units.us(198.0)
    managed_alloc_cc_per_page_ns: float = 14.2
    # cudaFree of managed memory
    managed_free_base_ns: int = units.us(144.0)
    managed_free_per_page_ns: float = 34.5
    managed_free_cc_base_ns: int = units.us(482.0)
    managed_free_cc_per_page_ns: float = 200.0


@dataclass(frozen=True)
class UVMSpec:
    """Unified Virtual Memory / GMMU model (Sec. II-B, Fig. 9).

    Far faults are serviced by the CPU-side UVM driver in 20-50 us; the
    driver batches faults and prefetches up to a VA-block.  Under CC,
    migrated pages must round-trip through the bounce buffer with
    AES-GCM ("encrypted paging", Observation 3/5), and fault handling
    is hypercall-mediated, which also defeats large-batch prefetching.
    """

    os_page_bytes: int = 4 * units.KiB
    migration_chunk_bytes: int = 64 * units.KiB  # basic migration unit
    va_block_bytes: int = 2 * units.MiB  # prefetch ceiling
    fault_service_ns: int = units.us(25.0)  # paper: 20-50 us
    fault_batch_pages: int = 256
    prefetch_enabled: bool = True
    # Effective migration bandwidth cap in base mode (prefetched
    # streams run close to PCIe speed).
    migration_bw: float = 20.0 * units.GB
    # Fraction of base-mode migration time that actually stalls the
    # kernel: prefetching and warp-level parallelism hide the rest
    # under execution.  CC encrypted paging is fully serialized (the
    # CPU-side crypto worker is on the critical path), so CC stalls
    # are not discounted.
    stall_fraction: float = 0.45
    # Under CC, each migrated chunk is limited to this many bytes
    # (bounce-buffer slots are scarce and per-chunk hypercalls dominate).
    cc_migration_chunk_bytes: int = 32 * units.KiB
    cc_extra_fault_hypercalls: int = 2
    # Device-memory budget for managed allocations; None means the full
    # GPU HBM.  Set lower to study oversubscription: once resident
    # managed data exceeds it, LRU allocations are written back to the
    # host, and the resulting thrash under CC encrypted paging is what
    # produces five-orders-of-magnitude KET blowups (the regime of the
    # paper's 164030x 2dconv datapoint).
    oversubscription_budget_bytes: Optional[int] = None


@dataclass(frozen=True)
class SystemConfig:
    """Complete simulated platform: Table I plus all cost models."""

    cc: CCMode = CCMode.OFF
    cpu: CPUSpec = field(default_factory=CPUSpec)
    pcie: PCIeSpec = field(default_factory=PCIeSpec)
    gpu: GPUSpec = field(default_factory=GPUSpec)
    tdx: TDXSpec = field(default_factory=TDXSpec)
    launch: LaunchPathSpec = field(default_factory=LaunchPathSpec)
    command: CommandProcessorSpec = field(default_factory=CommandProcessorSpec)
    alloc: AllocSpec = field(default_factory=AllocSpec)
    uvm: UVMSpec = field(default_factory=UVMSpec)
    # VM/TD resources (Sec. IV: 64 GB, pinned to NUMA node 0, 16 cores).
    vm_memory_bytes: int = 64 * units.GiB
    vm_cores: int = 16
    seed: int = 20250706
    # Fault injection and recovery (repro.faults).  The default plan is
    # empty: no injection, no RNG draws, bit-identical traces.
    faults: FaultPlan = field(default_factory=FaultPlan.none)
    fault_model: FaultModelSpec = field(default_factory=FaultModelSpec)
    retry: RetryPolicy = field(default_factory=RetryPolicy)

    @property
    def cc_on(self) -> bool:
        return self.cc is CCMode.ON

    @staticmethod
    def base(**overrides) -> "SystemConfig":
        """The paper's non-CC setup: regular VM with GPU passthrough."""
        return SystemConfig(cc=CCMode.OFF, **overrides)

    @staticmethod
    def confidential(**overrides) -> "SystemConfig":
        """The paper's CC setup: TD with the GPU in CC mode."""
        return SystemConfig(cc=CCMode.ON, **overrides)

    def replace(self, **changes) -> "SystemConfig":
        """Functional update (alias for dataclasses.replace)."""
        return dataclasses.replace(self, **changes)

    def validate(self) -> None:
        """Sanity-check the configuration; raises ValueError on
        nonsensical parameters.  Called by Machine at boot so ablation
        scripts fail fast instead of producing garbage timings."""
        problems = []
        if self.tdx.td_hypercall_ns < self.tdx.hypercall_ns:
            problems.append("td_hypercall_ns below plain VM-exit cost")
        for name, value in (
            ("cpu.memcpy_bw", self.cpu.memcpy_bw),
            ("pcie.dma_h2d_bw", self.pcie.dma_h2d_bw),
            ("pcie.dma_d2h_bw", self.pcie.dma_d2h_bw),
            ("gpu.hbm_bw", self.gpu.hbm_bw),
            ("gpu.fp32_flops", self.gpu.fp32_flops),
            ("uvm.migration_bw", self.uvm.migration_bw),
        ):
            if value <= 0:
                problems.append(f"{name} must be positive")
        if not 0 < self.gpu.default_efficiency <= 1:
            problems.append("gpu.default_efficiency must be in (0, 1]")
        if not 0 <= self.uvm.stall_fraction <= 1:
            problems.append("uvm.stall_fraction must be in [0, 1]")
        if self.pcie.staging_chunk_bytes <= 0:
            problems.append("pcie.staging_chunk_bytes must be positive")
        if self.uvm.cc_migration_chunk_bytes < self.uvm.os_page_bytes:
            problems.append("cc_migration_chunk_bytes below one OS page")
        if self.launch.launch_queue_depth < 1:
            problems.append("launch_queue_depth must be >= 1")
        if not 0 < self.tdx.teeio_link_efficiency <= 1:
            problems.append("teeio_link_efficiency must be in (0, 1]")
        if self.vm_memory_bytes <= 0 or self.gpu.hbm_bytes <= 0:
            problems.append("memory capacities must be positive")
        for sub in (self.faults, self.fault_model, self.retry):
            try:
                sub.validate()
            except ValueError as exc:
                problems.append(str(exc))
        if problems:
            raise ValueError("invalid SystemConfig: " + "; ".join(problems))

    # -- frequently used derived costs ------------------------------------

    def hypercall_ns(self) -> int:
        """Cost of one guest->host transition in the current mode."""
        return self.tdx.td_hypercall_ns if self.cc_on else self.tdx.hypercall_ns


def resolve_system_configs(
    cc: bool = False,
    teeio: bool = False,
    seed: Optional[int] = None,
    fault_plan: str = "",
    fault_rate: Optional[float] = None,
) -> SystemConfig:
    """Resolve user-facing mode flags into one :class:`SystemConfig`.

    This is the single config-resolution path shared by ``repro run``
    and ``repro check`` (and anything else that accepts the CC-mode
    flag set): both CLIs route through here, so a flag added to one
    cannot silently change the other's meaning and make committed
    golden snapshots unreproducible locally.  Raises ValueError on
    conflicting or malformed inputs.
    """
    config = SystemConfig.confidential() if cc else SystemConfig.base()
    if teeio:
        config = config.replace(tdx=dataclasses.replace(config.tdx, teeio=True))
    if seed is not None:
        config = config.replace(seed=seed)
    if fault_plan and fault_rate is not None:
        raise ValueError("--fault-plan and --fault-rate are mutually exclusive")
    if fault_plan:
        try:
            config = config.replace(faults=FaultPlan.load(fault_plan))
        except (OSError, ValueError) as exc:
            raise ValueError(f"--fault-plan: {exc}") from exc
    elif fault_rate is not None:
        plan = FaultPlan.uniform(fault_rate)
        try:
            plan.validate()
        except ValueError as exc:
            raise ValueError(f"--fault-rate: {exc}") from exc
        config = config.replace(faults=plan)
    return config


def grid_system_configs() -> "tuple[SystemConfig, SystemConfig]":
    """The canonical (base, cc) config pair the figure grid runs under.

    Everything that fingerprints or reproduces grid results — the
    result cache (:mod:`repro.exec.fingerprint`), golden snapshots and
    perf baselines (:mod:`repro.check`) — must derive its config hash
    from this pair, never from ad-hoc ``SystemConfig`` constructions.
    """
    return resolve_system_configs(cc=False), resolve_system_configs(cc=True)
