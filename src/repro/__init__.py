"""repro — a reproduction of "Dissecting Performance Overheads of
Confidential Computing on GPU-based Systems" (ISPASS 2025).

A calibrated discrete-event simulator of a CPU-GPU confidential
computing platform (Intel TDX + NVIDIA H100 CC class), a CUDA-like
runtime on top of it, the paper's GPU performance model, its workload
suites (Rodinia/Polybench/UVMBench/GraphBIG/Tigr-style apps, CNN
training, LLM serving), and a harness that regenerates every table and
figure of the paper's evaluation.

Quickstart::

    from repro import SystemConfig, run_app, decompose
    from repro.workloads import CATALOG

    trace, _ = run_app(CATALOG["sc"].app(), SystemConfig.confidential())
    print(decompose(trace).summary())
"""

from . import units
from .calibration import PAPER
from .config import CCMode, CopyKind, MemoryKind, SystemConfig
from .core import breakdown, decompose, kernel_to_launch_ratio
from .cuda import CudaRuntime, Machine, run_app, run_base_and_cc
from .gpu import KernelSpec, elementwise_kernel, gemm_kernel, nanosleep_kernel
from .profiler import Trace

__version__ = "1.0.0"

__all__ = [
    "CCMode",
    "CopyKind",
    "CudaRuntime",
    "KernelSpec",
    "Machine",
    "MemoryKind",
    "PAPER",
    "SystemConfig",
    "Trace",
    "breakdown",
    "decompose",
    "elementwise_kernel",
    "gemm_kernel",
    "kernel_to_launch_ratio",
    "nanosleep_kernel",
    "run_app",
    "run_base_and_cc",
    "units",
]
