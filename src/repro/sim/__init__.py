"""Deterministic discrete-event simulation kernel.

This package is a self-contained, SimPy-style coroutine scheduler used
as the substrate for every simulated hardware/software component in the
reproduction.  See :mod:`repro.sim.engine` for the core and
:mod:`repro.sim.resources` for shared-resource primitives.
"""

from .engine import (
    AllOf,
    AnyOf,
    Event,
    Interrupt,
    Process,
    SimTimeCollector,
    SimulationError,
    Simulator,
    Timeout,
)
from .resources import Request, Resource, Store

__all__ = [
    "AllOf",
    "AnyOf",
    "Event",
    "Interrupt",
    "Process",
    "Request",
    "Resource",
    "SimTimeCollector",
    "SimulationError",
    "Simulator",
    "Store",
    "Timeout",
]
