"""Minimal deterministic discrete-event simulation engine.

The engine is a small generator-coroutine kernel in the style of SimPy:
processes are Python generators that ``yield`` events (timeouts, other
processes, resource grants) and are resumed when those events trigger.

Design constraints driving this implementation:

* **Determinism.** Events scheduled for the same timestamp fire in
  scheduling order (a monotonically increasing sequence number breaks
  ties).  Time is integer nanoseconds (see :mod:`repro.units`).
* **No external dependencies.** The engine is self-contained so that
  the rest of the simulator is portable and easily testable.
"""

from __future__ import annotations

import heapq
import itertools
from typing import Any, Callable, Generator, Iterable, List, Optional


class SimulationError(RuntimeError):
    """Raised for misuse of the simulation kernel."""


class Interrupt(Exception):
    """Thrown into a process generator by :meth:`Process.interrupt`."""

    def __init__(self, cause: Any = None) -> None:
        super().__init__(cause)
        self.cause = cause


class Event:
    """A one-shot occurrence that callbacks (and processes) can wait on.

    An event starts *pending*, becomes *triggered* once :meth:`succeed`
    or :meth:`fail` is called, and then invokes its callbacks exactly
    once when the scheduler processes it.
    """

    PENDING = "pending"
    TRIGGERED = "triggered"
    PROCESSED = "processed"

    def __init__(self, sim: "Simulator") -> None:
        self.sim = sim
        self.callbacks: Optional[List[Callable[["Event"], None]]] = []
        self._value: Any = None
        self._ok = True
        self._state = Event.PENDING

    # -- state ---------------------------------------------------------

    @property
    def triggered(self) -> bool:
        return self._state != Event.PENDING

    @property
    def processed(self) -> bool:
        return self._state == Event.PROCESSED

    @property
    def ok(self) -> bool:
        return self._ok

    @property
    def value(self) -> Any:
        if self._state == Event.PENDING:
            raise SimulationError("event value not yet available")
        return self._value

    # -- triggering ------------------------------------------------------

    def succeed(self, value: Any = None, delay: int = 0) -> "Event":
        """Mark the event successful, scheduling callbacks after ``delay``."""
        if self._state != Event.PENDING:
            raise SimulationError("event already triggered")
        self._value = value
        self._ok = True
        self._state = Event.TRIGGERED
        self.sim._schedule(self, delay)
        return self

    def fail(self, exception: BaseException, delay: int = 0) -> "Event":
        """Mark the event failed; waiting processes will see the exception."""
        if self._state != Event.PENDING:
            raise SimulationError("event already triggered")
        if not isinstance(exception, BaseException):
            raise TypeError("fail() requires an exception instance")
        self._value = exception
        self._ok = False
        self._state = Event.TRIGGERED
        self.sim._schedule(self, delay)
        return self

    def add_callback(self, callback: Callable[["Event"], None]) -> None:
        if self.callbacks is None:
            # Already processed: run immediately (same tick semantics).
            callback(self)
        else:
            self.callbacks.append(callback)

    def _process(self) -> None:
        callbacks, self.callbacks = self.callbacks, None
        self._state = Event.PROCESSED
        if callbacks:
            for callback in callbacks:
                callback(self)
        elif not self._ok and isinstance(self, Process):
            # A process died with nobody waiting on it: surface the
            # failure instead of losing it (detached GPU/engine
            # processes must crash loudly on bugs).
            raise self._value

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return f"<{type(self).__name__} state={self._state}>"


class Timeout(Event):
    """An event that fires ``delay`` nanoseconds after creation."""

    def __init__(self, sim: "Simulator", delay: int, value: Any = None) -> None:
        if delay < 0:
            raise SimulationError(f"negative timeout delay: {delay}")
        super().__init__(sim)
        self._value = value
        self._ok = True
        self._state = Event.TRIGGERED
        sim._schedule(self, delay)


class Process(Event):
    """A running generator coroutine.

    The process event itself triggers when the generator returns (its
    value is the generator's return value) or raises.
    """

    def __init__(self, sim: "Simulator", generator: Generator) -> None:
        if not hasattr(generator, "send"):
            raise SimulationError("process target must be a generator")
        super().__init__(sim)
        self._generator = generator
        self._waiting_on: Optional[Event] = None
        # Bootstrap: resume once at the current time.
        init = Event(sim)
        init.succeed()
        init.add_callback(self._resume)

    @property
    def is_alive(self) -> bool:
        return self._state == Event.PENDING

    def interrupt(self, cause: Any = None) -> None:
        """Throw :class:`Interrupt` into the process at the current time."""
        if not self.is_alive:
            raise SimulationError("cannot interrupt a finished process")
        waiting, self._waiting_on = self._waiting_on, None
        if waiting is not None and waiting.callbacks is not None:
            try:
                waiting.callbacks.remove(self._resume)
            except ValueError:
                pass
        wake = Event(self.sim)
        wake.fail(Interrupt(cause))
        wake.add_callback(self._resume)

    def _resume(self, event: Event) -> None:
        self._waiting_on = None
        try:
            if event.ok:
                target = self._generator.send(event._value)
            else:
                target = self._generator.throw(event._value)
        except StopIteration as stop:
            self.succeed(stop.value)
            return
        except BaseException as exc:
            self.fail(exc)
            return
        if not isinstance(target, Event):
            self._generator.throw(
                SimulationError(f"process yielded non-event: {target!r}")
            )
            return
        if target.sim is not self.sim:
            self._generator.throw(
                SimulationError("process yielded event from another simulator")
            )
            return
        self._waiting_on = target
        target.add_callback(self._resume)


class AllOf(Event):
    """Triggers when all child events have triggered successfully.

    Its value is the list of child values, in the order given.
    """

    def __init__(self, sim: "Simulator", events: Iterable[Event]) -> None:
        super().__init__(sim)
        self._events = list(events)
        self._pending = len(self._events)
        if self._pending == 0:
            self.succeed([])
            return
        for event in self._events:
            event.add_callback(self._on_child)

    def _on_child(self, event: Event) -> None:
        if self.triggered:
            return
        if not event.ok:
            self.fail(event._value)
            return
        self._pending -= 1
        if self._pending == 0:
            self.succeed([child._value for child in self._events])


class AnyOf(Event):
    """Triggers when the first child event triggers.

    Its value is ``(index, value)`` of the first child to fire.
    """

    def __init__(self, sim: "Simulator", events: Iterable[Event]) -> None:
        super().__init__(sim)
        self._events = list(events)
        if not self._events:
            raise SimulationError("AnyOf requires at least one event")
        for index, event in enumerate(self._events):
            event.add_callback(lambda ev, i=index: self._on_child(i, ev))

    def _on_child(self, index: int, event: Event) -> None:
        if self.triggered:
            return
        if not event.ok:
            self.fail(event._value)
            return
        self.succeed((index, event._value))


class Simulator:
    """The event scheduler: a priority queue over (time, seq, event)."""

    def __init__(self) -> None:
        self._now = 0
        self._queue: List[tuple] = []
        self._seq = itertools.count()

    @property
    def now(self) -> int:
        """Current simulation time in nanoseconds."""
        return self._now

    # -- factories -------------------------------------------------------

    def event(self) -> Event:
        return Event(self)

    def timeout(self, delay: int, value: Any = None) -> Timeout:
        return Timeout(self, int(delay), value)

    def process(self, generator: Generator) -> Process:
        return Process(self, generator)

    def all_of(self, events: Iterable[Event]) -> AllOf:
        return AllOf(self, events)

    def any_of(self, events: Iterable[Event]) -> AnyOf:
        return AnyOf(self, events)

    # -- scheduling ------------------------------------------------------

    def _schedule(self, event: Event, delay: int = 0) -> None:
        if delay < 0:
            raise SimulationError("cannot schedule into the past")
        heapq.heappush(self._queue, (self._now + delay, next(self._seq), event))

    def step(self) -> None:
        """Process the single next event."""
        if not self._queue:
            raise SimulationError("no scheduled events")
        when, _seq, event = heapq.heappop(self._queue)
        if when < self._now:
            raise SimulationError("event scheduled in the past")
        self._now = when
        event._process()

    def peek(self) -> Optional[int]:
        """Timestamp of the next event, or None if the queue is empty."""
        return self._queue[0][0] if self._queue else None

    def run(self, until: Optional[Any] = None) -> Any:
        """Run until the queue drains, a deadline passes, or an event fires.

        ``until`` may be ``None`` (drain), an integer time in ns, or an
        :class:`Event` (run until it is processed and return its value;
        raises if it failed).
        """
        if until is None:
            while self._queue:
                self.step()
            return None
        if isinstance(until, Event):
            while not until.processed:
                if not self._queue:
                    raise SimulationError(
                        "simulation ran out of events before target triggered"
                    )
                self.step()
            if not until.ok:
                raise until.value
            return until.value
        deadline = int(until)
        while self._queue and self._queue[0][0] <= deadline:
            self.step()
        self._now = max(self._now, deadline)
        return None
