"""Minimal deterministic discrete-event simulation engine.

The engine is a small generator-coroutine kernel in the style of SimPy:
processes are Python generators that ``yield`` events (timeouts, other
processes, resource grants) and are resumed when those events trigger.

Design constraints driving this implementation:

* **Determinism.** Events scheduled for the same timestamp fire in
  scheduling order.  Time is integer nanoseconds (see
  :mod:`repro.units`).
* **No external dependencies.** The engine is self-contained so that
  the rest of the simulator is portable and easily testable.
* **Throughput.** The workloads this kernel drives (decode-step storms
  in :mod:`repro.serve`, launch trains in Fig. 7) are dominated by
  homogeneous event storms: thousands of events landing on a handful
  of distinct timestamps.  The scheduler is therefore a *calendar
  queue*: a heap of distinct timestamps indexing per-timestamp FIFO
  buckets.  Scheduling into an existing timestamp is a plain list
  append (no heap operation, no tuple allocation), and draining a
  same-timestamp storm is a linear walk of one bucket.  Because
  delays are validated non-negative, no bucket earlier than the one
  being drained can ever appear, so bucket order + append order
  reproduces exactly the ``(time, seq)`` order of a conventional
  event heap — the determinism contract is structural, not tie-broken.

Every event class declares ``__slots__`` and callbacks are stored in a
single inline slot (``_cb1``) with a rarely-used overflow list
(``_cbs``): the common case — a bare timeout with one waiting process,
or none at all — allocates no callback list.
"""

from __future__ import annotations

import heapq
from typing import Any, Callable, Dict, Generator, Iterable, List, Optional

# Bound locally: the drain loops below run once per event, so even the
# module-attribute lookup on heapq is worth shaving.
_heappush = heapq.heappush
_heappop = heapq.heappop

# Internal event states (ints compare faster than strings; the public
# string constants on Event are kept for introspection/debugging).
_PENDING = 0
_TRIGGERED = 1
_PROCESSED = 2

_STATE_NAMES = {_PENDING: "pending", _TRIGGERED: "triggered",
                _PROCESSED: "processed"}


class SimulationError(RuntimeError):
    """Raised for misuse of the simulation kernel."""


class Interrupt(Exception):
    """Thrown into a process generator by :meth:`Process.interrupt`."""

    def __init__(self, cause: Any = None) -> None:
        super().__init__(cause)
        self.cause = cause


class Event:
    """A one-shot occurrence that callbacks (and processes) can wait on.

    An event starts *pending*, becomes *triggered* once :meth:`succeed`
    or :meth:`fail` is called, and then invokes its callbacks exactly
    once when the scheduler processes it.
    """

    __slots__ = ("sim", "_value", "_ok", "_state", "_cb1", "_cbs")

    PENDING = "pending"
    TRIGGERED = "triggered"
    PROCESSED = "processed"

    def __init__(self, sim: "Simulator") -> None:
        self.sim = sim
        self._value: Any = None
        self._ok = True
        self._state = _PENDING
        self._cb1: Optional[Callable[["Event"], None]] = None
        self._cbs: Optional[List[Callable[["Event"], None]]] = None

    # -- state ---------------------------------------------------------

    @property
    def triggered(self) -> bool:
        return self._state != _PENDING

    @property
    def processed(self) -> bool:
        return self._state == _PROCESSED

    @property
    def ok(self) -> bool:
        return self._ok

    @property
    def value(self) -> Any:
        if self._state == _PENDING:
            raise SimulationError("event value not yet available")
        return self._value

    # -- triggering ------------------------------------------------------

    def succeed(self, value: Any = None, delay: int = 0) -> "Event":
        """Mark the event successful, scheduling callbacks after ``delay``.

        ``delay`` must be non-negative: validation happens *before* the
        event state changes, so a rejected call leaves the event
        pending and usable (it can still be succeeded or failed).
        """
        if delay < 0:
            raise SimulationError(
                f"succeed() delay must be >= 0, got {delay} "
                "(cannot schedule callbacks into the past)"
            )
        if self._state != _PENDING:
            raise SimulationError("event already triggered")
        self._value = value
        self._ok = True
        self._state = _TRIGGERED
        self.sim._schedule(self, delay)
        return self

    def fail(self, exception: BaseException, delay: int = 0) -> "Event":
        """Mark the event failed; waiting processes will see the exception."""
        if delay < 0:
            raise SimulationError(
                f"fail() delay must be >= 0, got {delay} "
                "(cannot schedule callbacks into the past)"
            )
        if self._state != _PENDING:
            raise SimulationError("event already triggered")
        if not isinstance(exception, BaseException):
            raise TypeError("fail() requires an exception instance")
        self._value = exception
        self._ok = False
        self._state = _TRIGGERED
        self.sim._schedule(self, delay)
        return self

    def add_callback(self, callback: Callable[["Event"], None]) -> None:
        if self._state == _PROCESSED:
            # Already processed: run immediately (same tick semantics).
            callback(self)
        elif self._cb1 is None:
            self._cb1 = callback
        elif self._cbs is None:
            self._cbs = [callback]
        else:
            self._cbs.append(callback)

    def _remove_callback(self, callback: Callable[["Event"], None]) -> None:
        """Detach a callback if present (no-op otherwise).

        Maintains the invariant that ``_cb1`` is filled before ``_cbs``
        so callback order is preserved across removals.
        """
        if self._cb1 is callback:
            cbs = self._cbs
            if cbs:
                self._cb1 = cbs.pop(0)
                if not cbs:
                    self._cbs = None
            else:
                self._cb1 = None
        elif self._cbs is not None:
            try:
                self._cbs.remove(callback)
            except ValueError:
                pass

    def _process(self) -> None:
        cb1 = self._cb1
        cbs = self._cbs
        self._cb1 = None
        self._cbs = None
        self._state = _PROCESSED
        if cb1 is not None:
            cb1(self)
            if cbs is not None:
                for callback in cbs:
                    callback(self)
        elif not self._ok and isinstance(self, Process):
            # A process died with nobody waiting on it: surface the
            # failure instead of losing it (detached GPU/engine
            # processes must crash loudly on bugs).
            raise self._value

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return f"<{type(self).__name__} state={_STATE_NAMES[self._state]}>"


class Timeout(Event):
    """An event that fires ``delay`` nanoseconds after creation.

    Construction is the kernel's hottest path (one per simulated wait),
    so it bypasses :meth:`Event.__init__`/:meth:`Event.succeed` and
    writes the slots directly — a bare timeout never allocates any
    callback storage.
    """

    __slots__ = ()

    def __init__(self, sim: "Simulator", delay: int, value: Any = None) -> None:
        if delay < 0:
            raise SimulationError(f"negative timeout delay: {delay}")
        self.sim = sim
        self._value = value
        self._ok = True
        self._state = _TRIGGERED
        self._cb1 = None
        self._cbs = None
        sim._schedule(self, delay)


class Process(Event):
    """A running generator coroutine.

    The process event itself triggers when the generator returns (its
    value is the generator's return value) or raises.
    """

    __slots__ = ("_generator", "_waiting_on", "_resume_bound")

    def __init__(self, sim: "Simulator", generator: Generator) -> None:
        if not hasattr(generator, "send"):
            raise SimulationError("process target must be a generator")
        Event.__init__(self, sim)
        self._generator = generator
        self._waiting_on: Optional[Event] = None
        # One bound method for the process lifetime: callback removal
        # (interrupt) compares by identity, and rebinding per resume
        # would allocate on every yield.
        resume = self._resume_bound = self._resume
        # Bootstrap: resume once at the current time, through the queue,
        # so process starts interleave deterministically with events
        # already scheduled for "now".
        init = Event(sim)
        init._state = _TRIGGERED
        init._cb1 = resume
        sim._schedule(init, 0)

    @property
    def is_alive(self) -> bool:
        return self._state == _PENDING

    def interrupt(self, cause: Any = None) -> None:
        """Throw :class:`Interrupt` into the process at the current time.

        Interrupting a process that already terminated is a caller bug
        and raises a clear :class:`SimulationError` (the scheduler state
        is left untouched).  An interrupt already *in flight* when the
        process terminates is discarded by :meth:`_resume`.
        """
        if self._state != _PENDING:
            raise SimulationError(
                "cannot interrupt a terminated process "
                f"(state={_STATE_NAMES[self._state]})"
            )
        waiting, self._waiting_on = self._waiting_on, None
        if waiting is not None and waiting._state != _PROCESSED:
            waiting._remove_callback(self._resume_bound)
        wake = Event(self.sim)
        wake.fail(Interrupt(cause))
        wake._cb1 = self._resume_bound

    def _resume(self, event: Event) -> None:
        if self._state != _PENDING:
            # Stale wakeup: an interrupt (or double interrupt) delivered
            # after the process already terminated.  Throwing into the
            # closed generator would re-trigger this (already
            # triggered) event and corrupt the scheduler mid-step —
            # drop the wakeup instead.
            return
        self._waiting_on = None
        try:
            if event._ok:
                target = self._generator.send(event._value)
            else:
                target = self._generator.throw(event._value)
        except StopIteration as stop:
            self.succeed(stop.value)
            return
        except BaseException as exc:
            self.fail(exc)
            return
        if not isinstance(target, Event):
            self._generator.throw(
                SimulationError(f"process yielded non-event: {target!r}")
            )
            return
        if target.sim is not self.sim:
            self._generator.throw(
                SimulationError("process yielded event from another simulator")
            )
            return
        self._waiting_on = target
        target.add_callback(self._resume_bound)


class AllOf(Event):
    """Triggers when all child events have triggered successfully.

    Its value is the list of child values, in the order given.
    """

    __slots__ = ("_events", "_pending")

    def __init__(self, sim: "Simulator", events: Iterable[Event]) -> None:
        Event.__init__(self, sim)
        self._events = list(events)
        self._pending = len(self._events)
        if self._pending == 0:
            self.succeed([])
            return
        for event in self._events:
            event.add_callback(self._on_child)

    def _on_child(self, event: Event) -> None:
        if self._state != _PENDING:
            return
        if not event._ok:
            self.fail(event._value)
            return
        self._pending -= 1
        if self._pending == 0:
            self.succeed([child._value for child in self._events])


class AnyOf(Event):
    """Triggers when the first child event triggers.

    Its value is ``(index, value)`` of the first child to fire.
    """

    __slots__ = ("_events",)

    def __init__(self, sim: "Simulator", events: Iterable[Event]) -> None:
        Event.__init__(self, sim)
        self._events = list(events)
        if not self._events:
            raise SimulationError("AnyOf requires at least one event")
        for index, event in enumerate(self._events):
            event.add_callback(lambda ev, i=index: self._on_child(i, ev))

    def _on_child(self, index: int, event: Event) -> None:
        if self._state != _PENDING:
            return
        if not event._ok:
            self.fail(event._value)
            return
        self.succeed((index, event._value))


# ---------------------------------------------------------------------------
# Ambient simulated-time accounting (the bench harness's sim_ns source)

#: Active :class:`SimTimeCollector` stack.  Checked (one truthiness
#: test) on every Simulator construction — Simulators are created a
#: handful of times per figure cell, so this costs nothing on the hot
#: path while letting the exec harness report final simulated time
#: without threading a handle through every figure module.
_COLLECTORS: List["SimTimeCollector"] = []


class SimTimeCollector:
    """Context manager that tracks every :class:`Simulator` created in
    its scope and sums their final clocks.

    Used by :func:`repro.exec.runner.execute_cell` to report the total
    simulated span a grid cell covered (the ``sim_ns`` bench field).
    Collectors nest: each registers the Simulators created while it is
    the innermost *or* an outer active scope.
    """

    __slots__ = ("_sims",)

    def __init__(self) -> None:
        self._sims: List["Simulator"] = []

    def __enter__(self) -> "SimTimeCollector":
        _COLLECTORS.append(self)
        return self

    def __exit__(self, *exc: Any) -> None:
        _COLLECTORS.remove(self)

    def _register(self, sim: "Simulator") -> None:
        self._sims.append(sim)

    @property
    def simulators(self) -> int:
        return len(self._sims)

    @property
    def total_sim_ns(self) -> int:
        """Sum of the current clocks of every registered Simulator."""
        return sum(sim._now for sim in self._sims)


class Simulator:
    """The event scheduler: a calendar queue over per-timestamp buckets.

    ``_times`` is a heap of the *distinct* pending timestamps;
    ``_buckets`` maps each to the FIFO list of events scheduled for it;
    ``_cursor`` is the drain position inside the minimum bucket.  A
    bucket's heap entry is pushed exactly once (on creation), so a
    same-timestamp storm costs one append per event and one heap
    operation per distinct timestamp.  Exhausted buckets are reclaimed
    lazily when the drain reaches their end.
    """

    __slots__ = ("_now", "_times", "_buckets", "_cursor")

    def __init__(self) -> None:
        self._now = 0
        self._times: List[int] = []
        self._buckets: Dict[int, List[Event]] = {}
        self._cursor = 0
        if _COLLECTORS:
            for collector in _COLLECTORS:
                collector._register(self)

    @property
    def now(self) -> int:
        """Current simulation time in nanoseconds."""
        return self._now

    # -- factories -------------------------------------------------------

    def event(self) -> Event:
        return Event(self)

    def timeout(self, delay: int, value: Any = None) -> Timeout:
        return Timeout(self, int(delay), value)

    def process(self, generator: Generator) -> Process:
        return Process(self, generator)

    def all_of(self, events: Iterable[Event]) -> AllOf:
        return AllOf(self, events)

    def any_of(self, events: Iterable[Event]) -> AnyOf:
        return AnyOf(self, events)

    # -- scheduling ------------------------------------------------------

    def _schedule(self, event: Event, delay: int = 0) -> None:
        if delay < 0:
            raise SimulationError("cannot schedule into the past")
        when = self._now + delay
        bucket = self._buckets.get(when)
        if bucket is None:
            self._buckets[when] = [event]
            _heappush(self._times, when)
        else:
            bucket.append(event)

    def _next(self) -> Optional[Event]:
        """Take the next event in deterministic order, advancing the
        clock; ``None`` when the queue is empty.  The event is consumed
        *before* it is processed, so an exception escaping a callback
        leaves the queue consistent."""
        times = self._times
        buckets = self._buckets
        cursor = self._cursor
        while times:
            when = times[0]
            bucket = buckets[when]
            if cursor < len(bucket):
                event = bucket[cursor]
                self._cursor = cursor + 1
                self._now = when
                return event
            # Bucket exhausted: reclaim it.  No earlier bucket can have
            # appeared while it drained (delays are non-negative), so
            # the cursor reset is safe.
            _heappop(times)
            del buckets[when]
            cursor = self._cursor = 0
        return None

    def step(self) -> None:
        """Process the single next event."""
        event = self._next()
        if event is None:
            raise SimulationError("no scheduled events")
        event._process()

    def peek(self) -> Optional[int]:
        """Timestamp of the next event, or None if the queue is empty."""
        times = self._times
        buckets = self._buckets
        while times:
            when = times[0]
            if self._cursor < len(buckets[when]):
                return when
            _heappop(times)
            del buckets[when]
            self._cursor = 0
        return None

    def run(self, until: Optional[Any] = None) -> Any:
        """Run until the queue drains, a deadline passes, or an event fires.

        ``until`` may be ``None`` (drain), an integer time in ns, or an
        :class:`Event` (run until it is processed and return its value;
        raises if it failed).
        """
        # The two hot drain loops below are `_next()` inlined by hand:
        # one call frame and a handful of attribute loads per event are
        # measurable at millions of events.  `times`/`buckets` alias the
        # live containers (they are never rebound, only mutated), so
        # events scheduled by a callback are visible to the loop.
        times = self._times
        buckets = self._buckets
        if until is None:
            while times:
                when = times[0]
                bucket = buckets[when]
                cursor = self._cursor
                if cursor < len(bucket):
                    self._cursor = cursor + 1
                    self._now = when
                    bucket[cursor]._process()
                else:
                    _heappop(times)
                    del buckets[when]
                    self._cursor = 0
            return None
        if isinstance(until, Event):
            while until._state != _PROCESSED:
                if not times:
                    raise SimulationError(
                        "simulation ran out of events before target triggered"
                    )
                when = times[0]
                bucket = buckets[when]
                cursor = self._cursor
                if cursor < len(bucket):
                    self._cursor = cursor + 1
                    self._now = when
                    bucket[cursor]._process()
                else:
                    _heappop(times)
                    del buckets[when]
                    self._cursor = 0
            if not until._ok:
                raise until._value
            return until._value
        advance = self._next
        deadline = int(until)
        while True:
            when = self.peek()
            if when is None or when > deadline:
                break
            event = advance()
            event._process()
        self._now = max(self._now, deadline)
        return None
