"""Shared-resource primitives for the simulation kernel.

:class:`Resource` models a fixed pool of interchangeable slots with a
FIFO wait queue (used for copy engines, launch-queue credits, CPU
worker threads...).  :class:`Store` is an unbounded FIFO of items with
blocking ``get`` (used for command channels between the driver and the
GPU command processor).
"""

from __future__ import annotations

from collections import deque
from typing import Any, Deque, Optional

from .engine import Event, SimulationError, Simulator


class Request(Event):
    """Grant event handed out by :meth:`Resource.request`."""

    __slots__ = ("resource",)

    def __init__(self, resource: "Resource") -> None:
        super().__init__(resource.sim)
        self.resource = resource


class Resource:
    """A pool of ``capacity`` slots with a FIFO queue of waiters.

    Usage from a process::

        req = engine_pool.request()
        yield req
        try:
            ...  # hold the slot
        finally:
            engine_pool.release(req)
    """

    __slots__ = ("sim", "capacity", "_in_use", "_waiters")

    def __init__(self, sim: Simulator, capacity: int = 1) -> None:
        if capacity < 1:
            raise SimulationError("resource capacity must be >= 1")
        self.sim = sim
        self.capacity = capacity
        self._in_use = 0
        self._waiters: Deque[Request] = deque()

    @property
    def in_use(self) -> int:
        return self._in_use

    @property
    def queue_length(self) -> int:
        return len(self._waiters)

    def request(self) -> Request:
        req = Request(self)
        if self._in_use < self.capacity:
            self._in_use += 1
            req.succeed()
        else:
            self._waiters.append(req)
        return req

    def release(self, request: Request) -> None:
        if request.resource is not self:
            raise SimulationError("release of a foreign request")
        if not request.triggered:
            # Cancelled while waiting: drop it from the queue.
            try:
                self._waiters.remove(request)
            except ValueError:
                raise SimulationError("request neither granted nor queued")
            request.fail(SimulationError("request cancelled"))
            return
        if self._in_use <= 0:
            raise SimulationError("release without outstanding grant")
        if self._waiters:
            nxt = self._waiters.popleft()
            nxt.succeed()
        else:
            self._in_use -= 1


class Store:
    """Unbounded FIFO of items with blocking get, optional capacity.

    ``put`` returns an event that triggers once the item is accepted
    (immediately unless a ``capacity`` was given and the store is full).
    ``get`` returns an event whose value is the item.
    """

    __slots__ = ("sim", "capacity", "_items", "_getters", "_putters")

    def __init__(self, sim: Simulator, capacity: Optional[int] = None) -> None:
        if capacity is not None and capacity < 1:
            raise SimulationError("store capacity must be >= 1 or None")
        self.sim = sim
        self.capacity = capacity
        self._items: Deque[Any] = deque()
        self._getters: Deque[Event] = deque()
        self._putters: Deque[tuple] = deque()  # (event, item)

    def __len__(self) -> int:
        return len(self._items)

    def put(self, item: Any) -> Event:
        event = Event(self.sim)
        if self._getters:
            getter = self._getters.popleft()
            getter.succeed(item)
            event.succeed()
        elif self.capacity is None or len(self._items) < self.capacity:
            self._items.append(item)
            event.succeed()
        else:
            self._putters.append((event, item))
        return event

    def get(self) -> Event:
        event = Event(self.sim)
        if self._items:
            event.succeed(self._items.popleft())
            self._admit_waiting_putter()
        elif self._putters:
            put_event, item = self._putters.popleft()
            put_event.succeed()
            event.succeed(item)
        else:
            self._getters.append(event)
        return event

    def _admit_waiting_putter(self) -> None:
        if self._putters and (
            self.capacity is None or len(self._items) < self.capacity
        ):
            put_event, item = self._putters.popleft()
            self._items.append(item)
            put_event.succeed()
