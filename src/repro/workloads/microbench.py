"""Microbenchmarks from Sec. VI-A and VII-A (Listings 1 and 2).

* :func:`bandwidth_sweep` — the Fig. 4a PCIe bandwidth test
  (64 B - 1 GB, pageable/pinned, base/cc), warmed-buffer methodology.
* :func:`launch_sequence` — Fig. 12a: two nanosleep kernels launched
  100x each back-to-back; per-launch KLO vs launch index.
* :func:`fusion_sweep` — Fig. 12b: fixed total KET progressively fused
  into fewer launches; KLO and LQT totals follow different trends.
* :func:`overlap_experiment` — Fig. 12c / Listing 2: data transfer
  overlapped with compute across N streams.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Generator, List, Optional, Sequence

from .. import units
from ..config import CopyKind, MemoryKind, SystemConfig
from ..cuda import CudaRuntime, run_app
from ..cuda.transfers import achieved_bandwidth_gbps, plan_copy
from ..gpu import nanosleep_kernel
from ..sim import Simulator
from ..tdx import GuestContext

# Default size grid of Fig. 4a: 64 B to 1 GB in powers of 4.
DEFAULT_SIZES = [64 * (4 ** i) for i in range(13)]  # 64 B ... 1 GiB


@dataclass(frozen=True)
class BandwidthPoint:
    size_bytes: int
    memory: MemoryKind
    copy_kind: CopyKind
    cc: bool
    gbps: float


def bandwidth_sweep(
    sizes: Optional[Sequence[int]] = None,
    kinds: Sequence[CopyKind] = (CopyKind.H2D, CopyKind.D2H),
) -> List[BandwidthPoint]:
    """Achieved copy bandwidth over transfer size (Fig. 4a)."""
    sizes = list(sizes) if sizes is not None else DEFAULT_SIZES
    points: List[BandwidthPoint] = []
    for cc in (False, True):
        config = SystemConfig.confidential() if cc else SystemConfig.base()
        guest = GuestContext(Simulator(), config)
        for memory in (MemoryKind.PAGEABLE, MemoryKind.PINNED):
            for copy_kind in kinds:
                for size in sizes:
                    plan = plan_copy(
                        config, guest, copy_kind, size, memory, cold=False
                    )
                    points.append(
                        BandwidthPoint(
                            size,
                            memory,
                            copy_kind,
                            cc,
                            achieved_bandwidth_gbps(plan, size),
                        )
                    )
    return points


# ---------------------------------------------------------------------------
# Listing 1 microbenchmark: fixed-duration nanosleep kernels
# ---------------------------------------------------------------------------


def launch_sequence_app(
    rt: CudaRuntime,
    launches_per_kernel: int = 100,
    ket_ns: int = units.ms(100),
    unroll: int = 1,
) -> Generator:
    """K0 x N back-to-back, then K1 x N (Fig. 12a methodology)."""
    k0 = nanosleep_kernel(ket_ns, name="microbench_k0", unroll=unroll)
    k1 = nanosleep_kernel(ket_ns, name="microbench_k1", unroll=unroll)
    for kernel in (k0, k1):
        for _ in range(launches_per_kernel):
            yield from rt.launch(kernel)
    yield from rt.synchronize()


def launch_sequence(
    config: SystemConfig,
    launches_per_kernel: int = 100,
    ket_ns: int = units.ms(100),
) -> List[int]:
    """Per-launch KLO (ns) in launch order."""
    trace, _ = run_app(
        launch_sequence_app,
        config,
        launches_per_kernel=launches_per_kernel,
        ket_ns=ket_ns,
    )
    return [e.duration_ns for e in trace.launches()]


# ---------------------------------------------------------------------------
# Fusion sweep (Fig. 12b)
# ---------------------------------------------------------------------------


@dataclass(frozen=True)
class FusionPoint:
    num_launches: int
    mean_klo_ns: float
    total_klo_ns: int
    total_lqt_ns: int
    end_to_end_ns: int


def fusion_sweep_app(rt: CudaRuntime, num_launches: int, total_ket_ns: int) -> Generator:
    """Total KET held constant, split across ``num_launches`` kernels."""
    per_kernel = max(1, total_ket_ns // num_launches)
    kernel = nanosleep_kernel(per_kernel, name=f"fused_{num_launches}")
    for _ in range(num_launches):
        yield from rt.launch(kernel)
    yield from rt.synchronize()


def fusion_sweep(
    config: SystemConfig,
    launch_counts: Sequence[int] = (1, 2, 4, 8, 16, 32, 64, 128, 256),
    total_ket_ns: int = units.ms(100),
) -> List[FusionPoint]:
    points = []
    for count in launch_counts:
        trace, _ = run_app(
            fusion_sweep_app, config, num_launches=count, total_ket_ns=total_ket_ns
        )
        launches = trace.launches()
        total_klo = sum(e.duration_ns for e in launches)
        total_lqt = sum(e.queue_ns for e in launches)
        points.append(
            FusionPoint(
                num_launches=count,
                mean_klo_ns=total_klo / len(launches),
                total_klo_ns=total_klo,
                total_lqt_ns=total_lqt,
                end_to_end_ns=trace.span_ns(),
            )
        )
    return points


# ---------------------------------------------------------------------------
# Overlap experiment (Fig. 12c / Listing 2)
# ---------------------------------------------------------------------------


@dataclass(frozen=True)
class OverlapPoint:
    num_streams: int
    total_bytes: int
    ket_ns: int
    cc: bool
    end_to_end_ns: int
    serial_ns: int

    @property
    def overlap_speedup(self) -> float:
        return self.serial_ns / self.end_to_end_ns if self.end_to_end_ns else 0.0


def overlap_app(
    rt: CudaRuntime, num_streams: int, total_bytes: int, ket_ns: int
) -> Generator:
    """Listing 2: per-stream H2D copy + independent kernel."""
    per_stream = max(4096, total_bytes // num_streams)
    streams = [rt.create_stream() for _ in range(num_streams)]
    devs, hosts = [], []
    for _ in range(num_streams):
        dev = yield from rt.malloc(per_stream)
        host = yield from rt.malloc_host(per_stream)
        devs.append(dev)
        hosts.append(host)
    kernel_template = nanosleep_kernel(ket_ns, name="overlap_kernel")
    for index, stream in enumerate(streams):
        yield from rt.memcpy_async(devs[index], hosts[index], stream=stream)
        yield from rt.launch(kernel_template, stream=stream)
    yield from rt.synchronize()
    for buf in devs + hosts:
        yield from rt.free(buf)


def _serial_reference_app(
    rt: CudaRuntime, num_streams: int, total_bytes: int, ket_ns: int
) -> Generator:
    """Same work, one stream, blocking copies (alpha = 0 reference)."""
    per_stream = max(4096, total_bytes // num_streams)
    kernel = nanosleep_kernel(ket_ns, name="overlap_kernel")
    dev = yield from rt.malloc(per_stream)
    host = yield from rt.malloc_host(per_stream)
    for _ in range(num_streams):
        yield from rt.memcpy(dev, host)
        yield from rt.launch(kernel)
        yield from rt.synchronize()
    yield from rt.free(dev)
    yield from rt.free(host)


def _compute_phase_span(trace) -> int:
    """Span of transfer+kernel activity, excluding setup/teardown."""
    events = trace.kernels() + trace.memcpys()
    if not events:
        return 0
    return max(e.end_ns for e in events) - min(e.start_ns for e in events)


def overlap_experiment(
    config: SystemConfig,
    num_streams: int,
    total_bytes: int,
    ket_ns: int,
) -> OverlapPoint:
    trace, _ = run_app(
        overlap_app,
        config,
        num_streams=num_streams,
        total_bytes=total_bytes,
        ket_ns=ket_ns,
    )
    serial_trace, _ = run_app(
        _serial_reference_app,
        config,
        num_streams=num_streams,
        total_bytes=total_bytes,
        ket_ns=ket_ns,
    )
    return OverlapPoint(
        num_streams=num_streams,
        total_bytes=total_bytes,
        ket_ns=ket_ns,
        cc=config.cc_on,
        end_to_end_ns=_compute_phase_span(trace),
        serial_ns=_compute_phase_span(serial_trace),
    )
