"""Declarative workload specifications.

A :class:`WorkloadSpec` describes an application as a list of
operations (allocations, copies, launches, loops, syncs) that can be
written by hand, loaded from JSON, or generated — so downstream users
can model *their* applications on the simulated CC platform without
writing coroutines.

Operation vocabulary (op = dict with an ``"op"`` key):

    {"op": "malloc",         "name": "A", "bytes": 4194304}
    {"op": "malloc_host",    "name": "hA", "bytes": 4194304}          # pinned
    {"op": "host_alloc",     "name": "hA", "bytes": 4194304}          # pageable
    {"op": "malloc_managed", "name": "M", "bytes": 4194304}
    {"op": "memcpy", "dst": "A", "src": "hA", "bytes": 4194304}       # optional bytes
    {"op": "launch", "kernel": "k1", "flops": 1e9, "mem_bytes": 1e6,
     "touches": [["M", 4194304]]}                                     # managed touches
    {"op": "launch", "kernel": "sleep", "duration_us": 100}           # fixed-KET form
    {"op": "sync"}
    {"op": "cpu", "us": 5.0}                                          # host think time
    {"op": "loop", "count": 10, "body": [ ...ops... ]}
    {"op": "free", "name": "A"}

Buffers are referenced by name; loops nest arbitrarily.  Validation
errors carry the offending op index path.
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field
from typing import Any, Dict, Generator, List, Sequence

from .. import units
from ..cuda import CudaRuntime
from ..gpu import KernelSpec


class SpecError(ValueError):
    """Malformed workload specification."""


_ALLOC_OPS = {"malloc", "malloc_host", "host_alloc", "malloc_managed"}
_KNOWN_OPS = _ALLOC_OPS | {"memcpy", "launch", "sync", "cpu", "loop", "free"}


@dataclass
class WorkloadSpec:
    """A named, validated list of operations."""

    name: str
    ops: List[Dict[str, Any]] = field(default_factory=list)

    def __post_init__(self) -> None:
        self.validate()

    # -- validation ------------------------------------------------------

    def validate(self) -> None:
        declared: set = set()
        self._validate_ops(self.ops, declared, path="ops")

    def _validate_ops(self, ops: Sequence[Dict], declared: set, path: str) -> None:
        if not isinstance(ops, (list, tuple)):
            raise SpecError(f"{path}: expected a list of ops")
        for index, op in enumerate(ops):
            where = f"{path}[{index}]"
            if not isinstance(op, dict) or "op" not in op:
                raise SpecError(f"{where}: op must be a dict with an 'op' key")
            kind = op["op"]
            if kind not in _KNOWN_OPS:
                raise SpecError(f"{where}: unknown op {kind!r}")
            if kind in _ALLOC_OPS:
                if "name" not in op or not isinstance(op.get("bytes"), int):
                    raise SpecError(f"{where}: {kind} needs 'name' and int 'bytes'")
                if op["bytes"] <= 0:
                    raise SpecError(f"{where}: bytes must be positive")
                declared.add(op["name"])
            elif kind == "memcpy":
                for key in ("dst", "src"):
                    if op.get(key) not in declared:
                        raise SpecError(
                            f"{where}: memcpy {key} {op.get(key)!r} not allocated"
                        )
            elif kind == "launch":
                if "kernel" not in op:
                    raise SpecError(f"{where}: launch needs a 'kernel' name")
                if "duration_us" not in op and "flops" not in op and "mem_bytes" not in op:
                    raise SpecError(
                        f"{where}: launch needs duration_us or flops/mem_bytes"
                    )
                for touch in op.get("touches", []):
                    if (
                        not isinstance(touch, (list, tuple))
                        or len(touch) != 2
                        or touch[0] not in declared
                    ):
                        raise SpecError(
                            f"{where}: touches entries must be [buffer, bytes]"
                        )
            elif kind == "cpu":
                if not isinstance(op.get("us"), (int, float)) or op["us"] < 0:
                    raise SpecError(f"{where}: cpu needs non-negative 'us'")
            elif kind == "loop":
                count = op.get("count")
                if not isinstance(count, int) or count < 0:
                    raise SpecError(f"{where}: loop needs non-negative int 'count'")
                self._validate_ops(op.get("body", []), declared, f"{where}.body")
            elif kind == "free":
                if op.get("name") not in declared:
                    raise SpecError(f"{where}: free of unknown buffer {op.get('name')!r}")

    # -- (de)serialization --------------------------------------------------

    def to_json(self) -> str:
        return json.dumps({"name": self.name, "ops": self.ops}, indent=1)

    @staticmethod
    def from_json(text: str) -> "WorkloadSpec":
        try:
            payload = json.loads(text)
        except json.JSONDecodeError as exc:
            raise SpecError(f"invalid JSON: {exc}") from exc
        if not isinstance(payload, dict) or "name" not in payload:
            raise SpecError("spec JSON must be an object with 'name' and 'ops'")
        return WorkloadSpec(payload["name"], payload.get("ops", []))

    @staticmethod
    def load(path: str) -> "WorkloadSpec":
        with open(path) as handle:
            return WorkloadSpec.from_json(handle.read())

    # -- execution --------------------------------------------------------

    def app(self):
        """Bind to an ``app(rt)`` callable for :func:`repro.cuda.run_app`."""

        def bound(rt: CudaRuntime) -> Generator:
            return (yield from execute(rt, self))

        bound.__name__ = self.name
        return bound

    def total_launches(self) -> int:
        """Static launch count (loops expanded)."""

        def count(ops) -> int:
            total = 0
            for op in ops:
                if op["op"] == "launch":
                    total += 1
                elif op["op"] == "loop":
                    total += op["count"] * count(op.get("body", []))
            return total

        return count(self.ops)


def _kernel_from_op(op: Dict[str, Any]) -> KernelSpec:
    if "duration_us" in op:
        return KernelSpec(
            name=op["kernel"],
            fixed_duration_ns=units.us(float(op["duration_us"])),
        )
    return KernelSpec(
        name=op["kernel"],
        flops=float(op.get("flops", 0.0)),
        mem_bytes=int(op.get("mem_bytes", 0)),
        precision=op.get("precision", "fp32"),
        efficiency=op.get("efficiency"),
    )


def execute(rt: CudaRuntime, spec: WorkloadSpec) -> Generator:
    """Run a validated spec against a runtime; returns buffer table."""
    buffers: Dict[str, Any] = {}

    def run_ops(ops) -> Generator:
        for op in ops:
            kind = op["op"]
            if kind == "malloc":
                buffers[op["name"]] = yield from rt.malloc(op["bytes"])
            elif kind == "malloc_host":
                buffers[op["name"]] = yield from rt.malloc_host(op["bytes"])
            elif kind == "host_alloc":
                buffers[op["name"]] = yield from rt.host_alloc(op["bytes"])
            elif kind == "malloc_managed":
                buffers[op["name"]] = yield from rt.malloc_managed(op["bytes"])
            elif kind == "memcpy":
                yield from rt.memcpy(
                    buffers[op["dst"]], buffers[op["src"]], op.get("bytes")
                )
            elif kind == "launch":
                touches = [
                    (buffers[name], touched) for name, touched in op.get("touches", [])
                ]
                yield from rt.launch(_kernel_from_op(op), managed_touches=touches)
            elif kind == "sync":
                yield from rt.synchronize()
            elif kind == "cpu":
                yield from rt.cpu_gap(units.us(float(op["us"])))
            elif kind == "loop":
                for _ in range(op["count"]):
                    yield from run_ops(op["body"])
            elif kind == "free":
                yield from rt.free(buffers.pop(op["name"]))

    try:
        yield from run_ops(spec.ops)
    except BaseException:
        # A fatal fault mid-run must not leak allocations: reclaim the
        # backing store untimed (the sim may not be drivable any more).
        for buffer in buffers.values():
            rt.reclaim(buffer)
        raise
    # Free anything the spec left allocated (keeps machines leak-free).
    for name in list(buffers):
        buffer = buffers.pop(name)
        if not buffer.freed:
            yield from rt.free(buffer)
    return None
