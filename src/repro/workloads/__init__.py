"""Workloads: the benchmark-suite app catalogue and the paper's
microbenchmarks (Listings 1-2)."""

from .apps import (
    CATALOG,
    FIG5_APPS,
    FIG7_APPS,
    FIG9_APPS,
    FIG10_APPS,
    AppInfo,
    get,
    names,
)
from .microbench import (
    BandwidthPoint,
    FusionPoint,
    OverlapPoint,
    bandwidth_sweep,
    fusion_sweep,
    launch_sequence,
    overlap_experiment,
)
from .spec import SpecError, WorkloadSpec, execute

__all__ = [
    "AppInfo",
    "BandwidthPoint",
    "CATALOG",
    "FIG10_APPS",
    "FIG5_APPS",
    "FIG7_APPS",
    "FIG9_APPS",
    "FusionPoint",
    "OverlapPoint",
    "SpecError",
    "WorkloadSpec",
    "bandwidth_sweep",
    "execute",
    "fusion_sweep",
    "get",
    "launch_sequence",
    "names",
    "overlap_experiment",
]
