"""Application catalogue modeled on the paper's benchmark suites
(Sec. VI-A: Rodinia, Polybench, UVMBench, GraphBIG, Tigr).

Each app encodes the *operation structure* of the original benchmark —
allocation sizes, explicit-copy pattern, number and duration of kernel
launches, synchronization points — which is what determines its CC
behaviour (launch counts for sc/3dconv/dwt2d are taken from the paper
directly).  Every app has an optional UVM variant that replaces
explicit copies with cudaMallocManaged + on-demand migration, used for
the Fig. 9 KET comparison.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Dict, Generator, List, Optional, Sequence, Tuple

from .. import units
from ..cuda import CudaRuntime
from ..gpu import KernelSpec, elementwise_kernel, gemm_kernel

AppBuilder = Callable[[CudaRuntime, bool], Generator]


@dataclass(frozen=True)
class AppInfo:
    """Catalogue entry for one benchmark application."""

    name: str
    suite: str
    builder: AppBuilder
    supports_uvm: bool = True
    description: str = ""

    def app(self, uvm: bool = False):
        """Bind to an ``app(rt)`` callable for :func:`repro.cuda.run_app`."""
        if uvm and not self.supports_uvm:
            raise ValueError(f"{self.name} has no UVM variant")

        def bound(rt: CudaRuntime) -> Generator:
            return (yield from self.builder(rt, uvm))

        bound.__name__ = f"{self.name}{'_uvm' if uvm else ''}"
        return bound


# ---------------------------------------------------------------------------
# Building blocks
# ---------------------------------------------------------------------------


def _alloc_inputs(
    rt: CudaRuntime, sizes: Sequence[int], uvm: bool, pinned: bool
) -> Generator:
    """Allocate one logical array per size and stage it to the GPU.

    Returns (device_or_managed buffers, host buffers or []).  In UVM
    mode nothing is copied — data migrates on first kernel touch.
    """
    if uvm:
        buffers = []
        for size in sizes:
            buf = yield from rt.malloc_managed(size)
            buffers.append(buf)
        return buffers, []
    devs, hosts = [], []
    for size in sizes:
        dev = yield from rt.malloc(size)
        if pinned:
            host = yield from rt.malloc_host(size)
        else:
            host = yield from rt.host_alloc(size)
        yield from rt.memcpy(dev, host)
        devs.append(dev)
        hosts.append(host)
    return devs, hosts


def _teardown(rt: CudaRuntime, buffers, hosts, readback: int = 0) -> Generator:
    """Copy a result back, then free everything (timed, Fig. 6)."""
    if readback and buffers and hosts:
        yield from rt.memcpy(hosts[-1], buffers[-1], min(readback, hosts[-1].size))
    for buf in buffers:
        yield from rt.free(buf)
    for host in hosts:
        yield from rt.free(host)


def _launch(
    rt: CudaRuntime,
    kernel: KernelSpec,
    uvm: bool,
    managed: Sequence[Tuple[object, int]] = (),
) -> Generator:
    yield from rt.launch(kernel, managed_touches=managed if uvm else ())


def _touch_all(buffers) -> List[Tuple[object, int]]:
    return [(buf, buf.size) for buf in buffers]


# ---------------------------------------------------------------------------
# Polybench-style applications
# ---------------------------------------------------------------------------


def _poly_gemm_chain(
    rt: CudaRuntime,
    uvm: bool,
    num_gemms: int,
    n: int,
    array_bytes: int,
    num_arrays: int,
) -> Generator:
    buffers, hosts = yield from _alloc_inputs(
        rt, [array_bytes] * num_arrays, uvm, pinned=False
    )
    for index in range(num_gemms):
        kernel = gemm_kernel(n, n, n, name=f"mm_kernel{index + 1}")
        yield from _launch(rt, kernel, uvm, _touch_all(buffers))
        yield from rt.synchronize()
    yield from _teardown(rt, buffers, hosts, readback=array_bytes)


def app_2mm(rt: CudaRuntime, uvm: bool) -> Generator:
    """Polybench 2MM: two dependent GEMMs, sync-separated (the paper's
    minimal-KQT example that CC amplifies, Sec. VI-B)."""
    yield from _poly_gemm_chain(rt, uvm, 2, 1024, 4 * units.MiB, 5)


def app_3mm(rt: CudaRuntime, uvm: bool) -> Generator:
    """Polybench 3MM: three GEMMs."""
    yield from _poly_gemm_chain(rt, uvm, 3, 1024, 4 * units.MiB, 7)


def _poly_matvec(rt: CudaRuntime, uvm: bool, name: str) -> Generator:
    n = 4096
    matrix = n * n * 4
    vec = n * 4
    buffers, hosts = yield from _alloc_inputs(
        rt, [matrix, vec, vec], uvm, pinned=False
    )
    for index in range(2):
        kernel = elementwise_kernel(
            n * n, flops_per_element=2.0, bytes_per_element=4,
            name=f"{name}_kernel{index + 1}",
        )
        yield from _launch(rt, kernel, uvm, _touch_all(buffers))
        yield from rt.synchronize()
    yield from _teardown(rt, buffers, hosts, readback=vec)


def app_atax(rt: CudaRuntime, uvm: bool) -> Generator:
    """Polybench ATAX: A^T(Ax), two short matvec kernels."""
    yield from _poly_matvec(rt, uvm, "atax")


def app_bicg(rt: CudaRuntime, uvm: bool) -> Generator:
    """Polybench BiCG: two matvec-style kernels."""
    yield from _poly_matvec(rt, uvm, "bicg")


def app_corr(rt: CudaRuntime, uvm: bool) -> Generator:
    """Polybench CORR: mean/std/center/corr kernels (4 launches)."""
    n = 2048
    data = n * n * 4
    buffers, hosts = yield from _alloc_inputs(rt, [data, data], uvm, pinned=False)
    for name in ("mean_kernel", "std_kernel", "reduce_kernel", "corr_kernel"):
        kernel = elementwise_kernel(
            n * n, flops_per_element=4.0, bytes_per_element=8, name=name
        )
        yield from _launch(rt, kernel, uvm, _touch_all(buffers))
        yield from rt.synchronize()
    yield from _teardown(rt, buffers, hosts, readback=data)


def app_gemm(rt: CudaRuntime, uvm: bool) -> Generator:
    """Polybench GEMM: one large matmul."""
    n = 2048
    data = n * n * 4
    buffers, hosts = yield from _alloc_inputs(rt, [data] * 3, uvm, pinned=False)
    yield from _launch(
        rt, gemm_kernel(n, n, n, name="gemm_kernel"), uvm, _touch_all(buffers)
    )
    yield from rt.synchronize()
    yield from _teardown(rt, buffers, hosts, readback=data)


def app_gramschm(rt: CudaRuntime, uvm: bool) -> Generator:
    """Polybench Gram-Schmidt: per-column iteration, 3 kernels each —
    data is GPU-resident across iterations, which is why its UVM CC
    slowdown is only ~1.08x (Sec. VI-B)."""
    n = 512
    data = n * n * 4
    columns = 128
    buffers, hosts = yield from _alloc_inputs(rt, [data, data], uvm, pinned=False)
    for _ in range(columns):
        for name in ("gs_kernel1", "gs_kernel2", "gs_kernel3"):
            kernel = elementwise_kernel(
                n * 64, flops_per_element=6.0, bytes_per_element=8, name=name
            )
            yield from _launch(rt, kernel, uvm, _touch_all(buffers))
        yield from rt.synchronize()
    yield from _teardown(rt, buffers, hosts, readback=data)


def app_2dconv(rt: CudaRuntime, uvm: bool) -> Generator:
    """Polybench 2DCONV: single very short stencil over large arrays on
    *pinned* memory — the paper's worst case for CC copies (19.69x)
    and for UVM encrypted paging (164030x KET)."""
    data = 24 * units.MiB
    buffers, hosts = yield from _alloc_inputs(rt, [data, data], uvm, pinned=True)
    kernel = elementwise_kernel(
        data // 4, flops_per_element=9.0, bytes_per_element=8,
        name="convolution2d_kernel",
    )
    yield from _launch(rt, kernel, uvm, _touch_all(buffers))
    yield from rt.synchronize()
    yield from _teardown(rt, buffers, hosts, readback=data)


def app_3dconv(rt: CudaRuntime, uvm: bool) -> Generator:
    """Polybench 3DCONV: 254 launches of the same kernel in a loop
    (launch count from Sec. VI-B) — the low-KLR regime of Fig. 10D."""
    data = 8 * units.MiB
    buffers, hosts = yield from _alloc_inputs(rt, [data, data], uvm, pinned=False)
    kernel = elementwise_kernel(
        800_000, flops_per_element=27.0, bytes_per_element=8,
        name="convolution3d_kernel",
    )
    # Launched back-to-back (no per-slice sync): the pushbuffer fills
    # and LQT backpressure dominates — Fig. 10D's low-KLR regime.
    for _ in range(254):
        yield from _launch(rt, kernel, uvm, _touch_all(buffers))
    yield from rt.synchronize()
    yield from _teardown(rt, buffers, hosts, readback=data)


# ---------------------------------------------------------------------------
# Rodinia-style applications
# ---------------------------------------------------------------------------


def app_bfs(rt: CudaRuntime, uvm: bool) -> Generator:
    """Rodinia BFS: frontier expansion, level-synchronous, 2 kernels
    per level with strongly varying durations."""
    graph_bytes = 32 * units.MiB
    buffers, hosts = yield from _alloc_inputs(
        rt, [graph_bytes, 4 * units.MiB], uvm, pinned=False
    )
    levels = 12
    frontier = [0.02, 0.08, 0.25, 0.6, 1.0, 0.9, 0.5, 0.25, 0.1, 0.05, 0.02, 0.01]
    if not uvm:
        stop_flag = yield from rt.host_alloc(4 * units.KiB)
    for level in range(levels):
        work = int(8_000_000 * frontier[level]) + 50_000
        k1 = elementwise_kernel(
            work, flops_per_element=2.0, bytes_per_element=12, name="bfs_kernel1"
        )
        k2 = elementwise_kernel(
            work // 4, flops_per_element=1.0, bytes_per_element=8, name="bfs_kernel2"
        )
        yield from _launch(rt, k1, uvm, _touch_all(buffers))
        yield from _launch(rt, k2, uvm, _touch_all(buffers[1:]))
        # Host checks the continue flag each level (implicit sync).
        if not uvm:
            yield from rt.memcpy(stop_flag, buffers[1], 4 * units.KiB)
        else:
            yield from rt.synchronize()
    if not uvm:
        hosts.append(stop_flag)
    yield from _teardown(rt, buffers, hosts, readback=4 * units.MiB)


def app_kmeans(rt: CudaRuntime, uvm: bool) -> Generator:
    """Rodinia kmeans: iterative cluster/swap kernels with a small
    per-iteration D2H readback of membership deltas."""
    points = 32 * units.MiB
    centroids = 64 * units.KiB
    buffers, hosts = yield from _alloc_inputs(
        rt, [points, centroids], uvm, pinned=False
    )
    if not uvm:
        delta_host = yield from rt.host_alloc(4 * units.KiB)
    for _ in range(20):
        cluster = elementwise_kernel(
            4_000_000, flops_per_element=8.0, bytes_per_element=8,
            name="kmeans_cluster",
        )
        swap = elementwise_kernel(
            500_000, flops_per_element=2.0, bytes_per_element=8,
            name="kmeans_swap",
        )
        yield from _launch(rt, cluster, uvm, _touch_all(buffers))
        yield from _launch(rt, swap, uvm, _touch_all(buffers[1:]))
        yield from rt.synchronize()
        if not uvm:
            yield from rt.memcpy(delta_host, buffers[1], 4 * units.KiB)
    if not uvm:
        hosts.append(delta_host)
    yield from _teardown(rt, buffers, hosts, readback=centroids)


def app_dwt2d(rt: CudaRuntime, uvm: bool) -> Generator:
    """Rodinia DWT2D: exactly 10 kernel launches (Sec. VI-B) across 4
    distinct kernels — first-launch KLO dominates, giving the paper's
    5.31x CC KLO blowup."""
    data = 8 * units.MiB
    buffers, hosts = yield from _alloc_inputs(rt, [data, data], uvm, pinned=True)
    names = [
        "c_CopySrcToComponents",
        "fdwt53_kernel",
        "fdwt53_kernel",
        "fdwt53_kernel",
        "c_CopySrcToComponents2",
        "fdwt97_kernel",
        "fdwt97_kernel",
        "fdwt97_kernel",
        "rdwt_kernel",
        "rdwt_kernel",
    ]
    for name in names:
        # DWT kernels are heavily templated fat binaries: their modules
        # need far more CC DMA-buffer setup on first launch, which is
        # what makes dwt2d the paper's worst KLO case (5.31x).
        kernel = elementwise_kernel(
            data // 8, flops_per_element=4.0, bytes_per_element=8, name=name,
            module_pages=200,
        )
        yield from _launch(rt, kernel, uvm, _touch_all(buffers))
        yield from rt.synchronize()
    yield from _teardown(rt, buffers, hosts, readback=data)


def app_sc(rt: CudaRuntime, uvm: bool) -> Generator:
    """Rodinia streamcluster: 1611 launches (Sec. VI-B) of a short
    pgain kernel — the paper's canonical launch-bound app (Fig. 10C)."""
    points = 16 * units.MiB
    buffers, hosts = yield from _alloc_inputs(
        rt, [points, units.MiB], uvm, pinned=False
    )
    kernel = elementwise_kernel(
        120_000, flops_per_element=4.0, bytes_per_element=8,
        name="kernel_compute_cost",
    )
    # Real streamcluster reads back the per-center gain after every
    # pgain launch — each iteration is launch + small blocking D2H.
    for _ in range(1611):
        yield from _launch(rt, kernel, uvm, _touch_all(buffers[1:]))
        if not uvm:
            yield from rt.memcpy(hosts[1], buffers[1], 4 * units.KiB)
        else:
            yield from rt.synchronize()
    yield from _teardown(rt, buffers, hosts, readback=units.MiB)


def app_hotspot(rt: CudaRuntime, uvm: bool) -> Generator:
    """Rodinia hotspot: iterative stencil, one kernel per step."""
    grid = 16 * units.MiB
    buffers, hosts = yield from _alloc_inputs(rt, [grid, grid], uvm, pinned=False)
    kernel = elementwise_kernel(
        2_000_000, flops_per_element=8.0, bytes_per_element=12,
        name="calculate_temp",
    )
    for _ in range(60):
        yield from _launch(rt, kernel, uvm, _touch_all(buffers))
    yield from rt.synchronize()
    yield from _teardown(rt, buffers, hosts, readback=grid)


def app_nw(rt: CudaRuntime, uvm: bool) -> Generator:
    """Rodinia Needleman-Wunsch: anti-diagonal wavefront, many short
    dependent launches."""
    data = 16 * units.MiB
    buffers, hosts = yield from _alloc_inputs(rt, [data, data], uvm, pinned=False)
    for index in range(255):
        name = "needle_cuda_shared_1" if index < 128 else "needle_cuda_shared_2"
        work = 20_000 + 400 * (index if index < 128 else 255 - index)
        kernel = elementwise_kernel(
            work, flops_per_element=3.0, bytes_per_element=8, name=name
        )
        yield from _launch(rt, kernel, uvm, _touch_all(buffers))
    yield from rt.synchronize()
    yield from _teardown(rt, buffers, hosts, readback=data)


def app_gaussian(rt: CudaRuntime, uvm: bool) -> Generator:
    """Rodinia gaussian elimination: 2 launches per row, very short
    kernels — launch-dominated like sc."""
    n = 512
    data = n * n * 4
    buffers, hosts = yield from _alloc_inputs(rt, [data, data], uvm, pinned=False)
    for row in range(n):
        fan1 = elementwise_kernel(
            n - row, flops_per_element=1.0, bytes_per_element=8, name="Fan1"
        )
        fan2 = elementwise_kernel(
            (n - row) * 8, flops_per_element=2.0, bytes_per_element=8, name="Fan2"
        )
        yield from _launch(rt, fan1, uvm, _touch_all(buffers))
        yield from _launch(rt, fan2, uvm, _touch_all(buffers))
    yield from rt.synchronize()
    yield from _teardown(rt, buffers, hosts, readback=data)


def app_pathfinder(rt: CudaRuntime, uvm: bool) -> Generator:
    """Rodinia pathfinder: few medium kernels."""
    data = 24 * units.MiB
    buffers, hosts = yield from _alloc_inputs(rt, [data, units.MiB], uvm, pinned=False)
    kernel = elementwise_kernel(
        3_000_000, flops_per_element=4.0, bytes_per_element=8,
        name="dynproc_kernel",
    )
    for _ in range(5):
        yield from _launch(rt, kernel, uvm, _touch_all(buffers))
        yield from rt.synchronize()
    yield from _teardown(rt, buffers, hosts, readback=units.MiB)


def app_srad(rt: CudaRuntime, uvm: bool) -> Generator:
    """Rodinia SRAD: two alternating stencil kernels per iteration over
    a speckle image, plus a per-iteration reduction readback."""
    image = 16 * units.MiB
    buffers, hosts = yield from _alloc_inputs(rt, [image, image], uvm, pinned=False)
    if not uvm:
        stats_host = yield from rt.host_alloc(4 * units.KiB)
    for _ in range(50):
        k1 = elementwise_kernel(
            2_000_000, flops_per_element=12.0, bytes_per_element=10, name="srad_cuda_1"
        )
        k2 = elementwise_kernel(
            2_000_000, flops_per_element=8.0, bytes_per_element=10, name="srad_cuda_2"
        )
        yield from _launch(rt, k1, uvm, _touch_all(buffers))
        yield from _launch(rt, k2, uvm, _touch_all(buffers))
        if not uvm:
            yield from rt.memcpy(stats_host, buffers[0], 4 * units.KiB)
        else:
            yield from rt.synchronize()
    if not uvm:
        hosts.append(stats_host)
    yield from _teardown(rt, buffers, hosts, readback=image)


def app_backprop(rt: CudaRuntime, uvm: bool) -> Generator:
    """Rodinia backprop: two layered kernels, forward + weight adjust."""
    weights = 24 * units.MiB
    buffers, hosts = yield from _alloc_inputs(
        rt, [weights, 4 * units.MiB], uvm, pinned=False
    )
    for name, work in (
        ("bpnn_layerforward_CUDA", 3_000_000),
        ("bpnn_adjust_weights_cuda", 3_000_000),
    ):
        kernel = elementwise_kernel(
            work, flops_per_element=6.0, bytes_per_element=12, name=name
        )
        yield from _launch(rt, kernel, uvm, _touch_all(buffers))
        yield from rt.synchronize()
    yield from _teardown(rt, buffers, hosts, readback=4 * units.MiB)


def app_lud(rt: CudaRuntime, uvm: bool) -> Generator:
    """Rodinia LUD: blocked LU decomposition — a diagonal/perimeter/
    internal kernel triple per block step with shrinking work."""
    matrix = 16 * units.MiB
    buffers, hosts = yield from _alloc_inputs(rt, [matrix], uvm, pinned=False)
    steps = 64
    for step in range(steps):
        remaining = steps - step
        for name, work in (
            ("lud_diagonal", 20_000),
            ("lud_perimeter", 60_000 * remaining),
            ("lud_internal", 30_000 * remaining * remaining // steps),
        ):
            kernel = elementwise_kernel(
                max(work, 1_000), flops_per_element=2.0, bytes_per_element=8,
                name=name,
            )
            yield from _launch(rt, kernel, uvm, _touch_all(buffers))
    yield from rt.synchronize()
    yield from _teardown(rt, buffers, hosts, readback=matrix)


def app_cfd(rt: CudaRuntime, uvm: bool) -> Generator:
    """Rodinia CFD (euler3d): flux/time-step kernel loop, compute-heavy."""
    mesh = 48 * units.MiB
    buffers, hosts = yield from _alloc_inputs(rt, [mesh, mesh // 4], uvm, pinned=False)
    for _ in range(100):
        flux = elementwise_kernel(
            4_000_000, flops_per_element=22.0, bytes_per_element=12,
            name="cuda_compute_flux",
        )
        step = elementwise_kernel(
            1_000_000, flops_per_element=6.0, bytes_per_element=8,
            name="cuda_time_step",
        )
        yield from _launch(rt, flux, uvm, _touch_all(buffers))
        yield from _launch(rt, step, uvm, _touch_all(buffers[1:]))
    yield from rt.synchronize()
    yield from _teardown(rt, buffers, hosts, readback=mesh // 4)


def app_lavamd(rt: CudaRuntime, uvm: bool) -> Generator:
    """Rodinia lavaMD: one large N-body-style kernel, compute-bound."""
    boxes = 32 * units.MiB
    buffers, hosts = yield from _alloc_inputs(rt, [boxes, boxes // 2], uvm, pinned=False)
    kernel = elementwise_kernel(
        6_000_000, flops_per_element=40.0, bytes_per_element=8,
        name="kernel_gpu_cuda",
    )
    yield from _launch(rt, kernel, uvm, _touch_all(buffers))
    yield from rt.synchronize()
    yield from _teardown(rt, buffers, hosts, readback=boxes // 2)


def app_particlefilter(rt: CudaRuntime, uvm: bool) -> Generator:
    """Rodinia particlefilter: per-frame likelihood/normalize/resample
    kernels with a tiny D2H of the estimate each frame."""
    particles = 8 * units.MiB
    buffers, hosts = yield from _alloc_inputs(
        rt, [particles, units.MiB], uvm, pinned=False
    )
    if not uvm:
        estimate = yield from rt.host_alloc(4 * units.KiB)
    for _ in range(30):
        for name, work in (
            ("likelihood_kernel", 800_000),
            ("normalize_weights_kernel", 400_000),
            ("find_index_kernel", 600_000),
        ):
            kernel = elementwise_kernel(
                work, flops_per_element=5.0, bytes_per_element=8, name=name
            )
            yield from _launch(rt, kernel, uvm, _touch_all(buffers))
        if not uvm:
            yield from rt.memcpy(estimate, buffers[1], 4 * units.KiB)
        else:
            yield from rt.synchronize()
    if not uvm:
        hosts.append(estimate)
    yield from _teardown(rt, buffers, hosts, readback=units.MiB)


def app_mvt(rt: CudaRuntime, uvm: bool) -> Generator:
    """Polybench MVT: two independent matvec kernels."""
    matrix = 64 * units.MiB
    buffers, hosts = yield from _alloc_inputs(rt, [matrix], uvm, pinned=False)
    for index in range(2):
        kernel = elementwise_kernel(
            4096 * 4096, flops_per_element=2.0, bytes_per_element=4,
            name=f"mvt_kernel{index + 1}",
        )
        yield from _launch(rt, kernel, uvm, _touch_all(buffers))
        yield from rt.synchronize()
    yield from _teardown(rt, buffers, hosts, readback=64 * units.KiB)


def app_syrk(rt: CudaRuntime, uvm: bool) -> Generator:
    """Polybench SYRK: one rank-k update kernel."""
    buffers, hosts = yield from _alloc_inputs(
        rt, [16 * units.MiB, 16 * units.MiB], uvm, pinned=False
    )
    yield from _launch(
        rt, gemm_kernel(2048, 2048, 2048, name="syrk_kernel"),
        uvm, _touch_all(buffers),
    )
    yield from rt.synchronize()
    yield from _teardown(rt, buffers, hosts, readback=16 * units.MiB)


def app_fdtd2d(rt: CudaRuntime, uvm: bool) -> Generator:
    """Polybench FDTD-2D: three field-update kernels per time step."""
    field = 16 * units.MiB
    buffers, hosts = yield from _alloc_inputs(
        rt, [field, field, field], uvm, pinned=False
    )
    for _ in range(60):
        for name in ("fdtd_step1_kernel", "fdtd_step2_kernel", "fdtd_step3_kernel"):
            kernel = elementwise_kernel(
                2_000_000, flops_per_element=4.0, bytes_per_element=12, name=name
            )
            yield from _launch(rt, kernel, uvm, _touch_all(buffers))
    yield from rt.synchronize()
    yield from _teardown(rt, buffers, hosts, readback=field)


def app_adi(rt: CudaRuntime, uvm: bool) -> Generator:
    """Polybench ADI: alternating-direction sweeps, 6 kernels per step."""
    grid = 16 * units.MiB
    buffers, hosts = yield from _alloc_inputs(rt, [grid, grid], uvm, pinned=False)
    for _ in range(30):
        for axis in ("col", "row"):
            for phase in (1, 2, 3):
                kernel = elementwise_kernel(
                    1_500_000, flops_per_element=5.0, bytes_per_element=10,
                    name=f"adi_{axis}_kernel{phase}",
                )
                yield from _launch(rt, kernel, uvm, _touch_all(buffers))
        yield from rt.synchronize()
    yield from _teardown(rt, buffers, hosts, readback=grid)


# ---------------------------------------------------------------------------
# UVMBench / graph suites
# ---------------------------------------------------------------------------


def app_cnn(rt: CudaRuntime, uvm: bool) -> Generator:
    """UVMBench CNN inference: weights staged once, activations flow
    device-to-device between layers — D2D dominates, so its CC copy
    slowdown is the catalogue minimum (paper: 1.17x)."""
    weights = 256 * units.KiB
    activation = 96 * units.MiB
    buffers, hosts = yield from _alloc_inputs(
        rt, [weights, 128 * units.KiB], uvm, pinned=False
    )
    act_a = yield from rt.malloc(activation)
    act_b = yield from rt.malloc(activation)
    for layer in range(8):
        conv = elementwise_kernel(
            2_000_000, flops_per_element=18.0, bytes_per_element=4,
            name=f"conv_layer",
        )
        relu = elementwise_kernel(
            1_000_000, flops_per_element=1.0, bytes_per_element=8, name="relu"
        )
        yield from _launch(rt, conv, uvm, _touch_all(buffers))
        yield from _launch(rt, relu, uvm, ())
        yield from rt.synchronize()
        src, dst = (act_a, act_b) if layer % 2 == 0 else (act_b, act_a)
        yield from rt.memcpy(dst, src)
    yield from rt.free(act_a)
    yield from rt.free(act_b)
    yield from _teardown(rt, buffers, hosts, readback=4 * units.KiB)


def _graph_app(
    rt: CudaRuntime,
    uvm: bool,
    name: str,
    iterations: int,
    work_per_iter: int,
    graph_bytes: int,
) -> Generator:
    buffers, hosts = yield from _alloc_inputs(
        rt, [graph_bytes, graph_bytes // 8], uvm, pinned=False
    )
    # Iterations chain entirely on-device (vertex state ping-pongs in
    # HBM), so launches go back-to-back and long kernels hide them —
    # the high-KLR regime of Fig. 10A.
    for _ in range(iterations):
        gather = elementwise_kernel(
            work_per_iter, flops_per_element=3.0, bytes_per_element=16,
            name=f"{name}_gather",
        )
        apply_k = elementwise_kernel(
            work_per_iter // 8, flops_per_element=2.0, bytes_per_element=8,
            name=f"{name}_apply",
        )
        yield from _launch(rt, gather, uvm, _touch_all(buffers))
        yield from _launch(rt, apply_k, uvm, _touch_all(buffers[1:]))
    yield from rt.synchronize()
    yield from _teardown(rt, buffers, hosts, readback=graph_bytes // 8)


def app_gb_bfs(rt: CudaRuntime, uvm: bool) -> Generator:
    """GraphBIG BFS: long, diverse kernels hide launch costs
    (Fig. 10A's high-KLR regime)."""
    yield from _graph_app(rt, uvm, "gb_bfs", 15, 12_000_000, 48 * units.MiB)


def app_gb_sssp(rt: CudaRuntime, uvm: bool) -> Generator:
    """GraphBIG SSSP."""
    yield from _graph_app(rt, uvm, "gb_sssp", 25, 8_000_000, 48 * units.MiB)


def app_gb_pagerank(rt: CudaRuntime, uvm: bool) -> Generator:
    """GraphBIG PageRank: fixed iteration count, medium kernels."""
    yield from _graph_app(rt, uvm, "gb_pagerank", 50, 6_000_000, 48 * units.MiB)


def app_tigr_bfs(rt: CudaRuntime, uvm: bool) -> Generator:
    """Tigr BFS on a transformed (degree-balanced) graph."""
    yield from _graph_app(rt, uvm, "tigr_bfs", 30, 5_000_000, 32 * units.MiB)


def app_tigr_sssp(rt: CudaRuntime, uvm: bool) -> Generator:
    """Tigr SSSP."""
    yield from _graph_app(rt, uvm, "tigr_sssp", 40, 4_000_000, 32 * units.MiB)


# ---------------------------------------------------------------------------
# Catalogue
# ---------------------------------------------------------------------------

CATALOG: Dict[str, AppInfo] = {
    info.name: info
    for info in [
        AppInfo("2mm", "polybench", app_2mm, description="two GEMMs"),
        AppInfo("3mm", "polybench", app_3mm, description="three GEMMs"),
        AppInfo("atax", "polybench", app_atax, description="A^T(Ax)"),
        AppInfo("bicg", "polybench", app_bicg, description="BiCG kernels"),
        AppInfo("corr", "polybench", app_corr, description="correlation"),
        AppInfo("gemm", "polybench", app_gemm, description="one GEMM"),
        AppInfo("gramschm", "polybench", app_gramschm, description="Gram-Schmidt"),
        AppInfo("2dconv", "polybench", app_2dconv, description="2D stencil, pinned"),
        AppInfo("3dconv", "polybench", app_3dconv, description="254-launch loop"),
        AppInfo("bfs", "rodinia", app_bfs, description="frontier BFS"),
        AppInfo("kmeans", "rodinia", app_kmeans, description="iterative kmeans"),
        AppInfo("dwt2d", "rodinia", app_dwt2d, description="10-launch DWT"),
        AppInfo("sc", "rodinia", app_sc, description="1611-launch streamcluster"),
        AppInfo("hotspot", "rodinia", app_hotspot, description="stencil loop"),
        AppInfo("nw", "rodinia", app_nw, description="wavefront"),
        AppInfo("gaussian", "rodinia", app_gaussian, description="1024 tiny launches"),
        AppInfo("pathfinder", "rodinia", app_pathfinder, description="few kernels"),
        AppInfo("srad", "rodinia", app_srad, description="stencil + readback loop"),
        AppInfo("backprop", "rodinia", app_backprop, description="NN fwd + adjust"),
        AppInfo("lud", "rodinia", app_lud, description="blocked LU, 192 launches"),
        AppInfo("cfd", "rodinia", app_cfd, description="euler3d flux loop"),
        AppInfo("lavamd", "rodinia", app_lavamd, description="one big N-body kernel"),
        AppInfo("particlefilter", "rodinia", app_particlefilter,
                description="per-frame kernels + estimate D2H"),
        AppInfo("mvt", "polybench", app_mvt, description="two matvecs"),
        AppInfo("syrk", "polybench", app_syrk, description="rank-k update"),
        AppInfo("fdtd2d", "polybench", app_fdtd2d, description="FDTD time loop"),
        AppInfo("adi", "polybench", app_adi, description="ADI sweeps"),
        AppInfo("cnn", "uvmbench", app_cnn, description="CNN inference, D2D-heavy"),
        AppInfo("gb_bfs", "graphbig", app_gb_bfs, description="GraphBIG BFS"),
        AppInfo("gb_sssp", "graphbig", app_gb_sssp, description="GraphBIG SSSP"),
        AppInfo("gb_pagerank", "graphbig", app_gb_pagerank, description="PageRank"),
        AppInfo("tigr_bfs", "tigr", app_tigr_bfs, description="Tigr BFS"),
        AppInfo("tigr_sssp", "tigr", app_tigr_sssp, description="Tigr SSSP"),
    ]
}

# App subsets used by specific figures.
FIG5_APPS = [
    "2mm", "3mm", "atax", "bicg", "corr", "gemm", "gramschm", "2dconv",
    "3dconv", "bfs", "kmeans", "dwt2d", "sc", "hotspot", "nw", "pathfinder",
    "cnn", "gb_bfs", "gb_pagerank", "tigr_bfs", "srad", "backprop", "cfd",
    "mvt", "fdtd2d",
]
# Fig. 7 excludes apps "with no queuing time (e.g., only a single launch)".
FIG7_APPS = [
    "2mm", "3mm", "atax", "bicg", "corr", "gramschm", "3dconv", "bfs",
    "kmeans", "dwt2d", "sc", "hotspot", "nw", "gaussian", "gb_pagerank",
    "srad", "lud", "fdtd2d", "adi", "particlefilter",
]
FIG9_APPS = [
    "2mm", "gemm", "gramschm", "2dconv", "3dconv", "bfs", "kmeans",
    "hotspot", "nw", "sc", "cnn", "gb_bfs",
]
FIG10_APPS = {  # the four representative traces of Fig. 10
    "A": "gb_bfs",  # few long kernels hide launches entirely
    "B": "tigr_bfs",  # many kernels with diverse durations, still hidden
    "C": "sc",  # launch storm, launch-dominated
    "D": "3dconv",  # iterative single kernel, launch/queue-dominated
}


def get(name: str) -> AppInfo:
    try:
        return CATALOG[name]
    except KeyError:
        raise KeyError(
            f"unknown app {name!r}; known: {sorted(CATALOG)}"
        ) from None


def names(suite: Optional[str] = None) -> List[str]:
    return sorted(
        name
        for name, info in CATALOG.items()
        if suite is None or info.suite == suite
    )
