"""Request-scoped serving telemetry: per-request CC-tax attribution.

The serving engine pays every cost through the simulated CC stack, but
its SLO histograms only say *that* the tail inflated — never *why*.
This module opens a logical span per request covering its whole
lifecycle (queued -> admitted -> chunked prefill -> decode steps ->
preempt/swap/restore -> retry/re-attest -> terminal state), tags every
cost-paying engine operation with the owning request ids, and folds
the stack's spans and events into a per-request decomposition in the
paper's Sec.-V vocabulary:

===========  ==========================================================
component    meaning (per request, integer nanoseconds)
===========  ==========================================================
``queue``    admission wait (arrival -> first admission; the whole
             lifetime for requests shed before ever being admitted)
``T``        memory-transfer time: prompt upload, per-step token D2H,
             KV swap traffic (bounce staging + DMA, minus the crypto
             and kernel-wait carve-outs below)
``E``        software encryption: AES-GCM staging and pushbuffer
             crypto (crypto-flagged spans)
``L``        kernel-launch overhead (KLO): the ``cudaLaunchKernel``
             driver path including CC hypercalls and module load
``Q``        launch queuing: inter-launch gaps and launch-credit
             backpressure (the LQT remainder of a launch operation)
``K``        kernel execution (KET) the request waited behind
``D``        host-side bookkeeping (per-iteration scheduler work)
``recovery`` fault handling: wasted attempts, backoff, re-attestation
``other``    wall-clock not covered by a tagged engine operation
===========  ==========================================================

**Conservation invariant**: for every request the component breakdown
(including ``queue``) sums *exactly* — integer nanoseconds — to its
end-to-end latency, because the components are computed by slicing a
single non-overlapping, gap-filled timeline of the run and clipping it
to the request's lifetime.  A second breakdown clipped to the TTFT
window (arrival -> first token) sums exactly to TTFT the same way.

**Zero perturbation**: recording only reads the simulated clock and
appends to Python lists; it never yields to the simulator.  A run with
telemetry enabled produces byte-identical simulated timings, verdicts
and goldens to a run without (gated in CI and the test suite).

The analysis surface on top — :func:`tail_report` (top-k slowest with
blame, percentiles recomputed from per-request records),
:func:`tenant_rollup`, :func:`forensics_diff` (which component moved
the TTFT p99 between base and CC), and byte-deterministic
JSONL/CSV exports — feeds ``repro serve report`` and the
``ext_serve_telemetry`` figure.
"""

from __future__ import annotations

from bisect import bisect_right
from dataclasses import dataclass, field
from typing import (
    Callable,
    Dict,
    List,
    Optional,
    Sequence,
    Tuple,
)

from .. import units
from ..obs.metrics import percentile
from ..profiler.collector import Trace
from .slo import RequestOutcome

#: Per-request attribution vocabulary, report order.  These SUM —
#: ``E`` is carved out of the transfer/launch time it occurs in (not
#: double-counted), so every nanosecond belongs to exactly one bucket.
ATTRIBUTION_COMPONENTS = (
    "queue", "T", "E", "L", "Q", "K", "D", "recovery", "other",
)

#: Span layer of the per-request telemetry spans (one Perfetto track
#: per request in the Chrome export).
SERVE_REQUEST_LAYER = "serve.req"
#: Span layer of the tagged engine operations (one shared track).
SERVE_OP_LAYER = "serve.op"

#: Engine operation kind -> component for the interval remainder after
#: the recovery/K/E/L carve-outs.
OP_BASE_COMPONENT = {
    "swap_out": "T",
    "swap_in": "T",
    "prompt_upload": "T",
    "token_d2h": "T",
    "prefill": "Q",
    "decode": "Q",
    "sched": "D",
    "reattest": "recovery",
    # Model-parallel communication: TP all-reduces over secure peer
    # links and PP activation handoffs across the host bridge.
    "tp_comm": "T",
    "pp_comm": "T",
}


class TelemetryError(ValueError):
    """Inconsistent telemetry capture (always a bug in the engine)."""


Interval = Tuple[int, int]


def _merged(intervals: Sequence[Interval]) -> List[Interval]:
    """Sort and merge possibly-overlapping intervals; drops empties."""
    merged: List[Interval] = []
    for start, end in sorted(intervals):
        if end <= start:
            continue
        if merged and start <= merged[-1][1]:
            if end > merged[-1][1]:
                merged[-1] = (merged[-1][0], end)
        else:
            merged.append((start, end))
    return merged


def _clip(merged: Sequence[Interval], start: int, end: int) -> List[Interval]:
    """The parts of a sorted disjoint interval list inside [start, end)."""
    if end <= start or not merged:
        return []
    out: List[Interval] = []
    index = bisect_right([s for s, _ in merged], start) - 1
    index = max(index, 0)
    while index < len(merged):
        s, e = merged[index]
        if s >= end:
            break
        lo, hi = max(s, start), min(e, end)
        if hi > lo:
            out.append((lo, hi))
        index += 1
    return out


def _subtract(base: Sequence[Interval], cut: Sequence[Interval]) -> List[Interval]:
    """``base`` minus ``cut`` (both sorted disjoint lists)."""
    out: List[Interval] = []
    for s, e in base:
        cursor = s
        for cs, ce in cut:
            if ce <= cursor or cs >= e:
                continue
            if cs > cursor:
                out.append((cursor, cs))
            cursor = max(cursor, ce)
        if cursor < e:
            out.append((cursor, e))
    return out


@dataclass(frozen=True)
class EngineOp:
    """One tagged cost-paying engine operation."""

    kind: str
    start_ns: int
    end_ns: int
    req_ids: Tuple[int, ...] = ()

    @property
    def duration_ns(self) -> int:
        return self.end_ns - self.start_ns


class ServeTelemetry:
    """Collects per-request lifecycle marks and tagged engine ops.

    All methods are pure bookkeeping: no simulator interaction, so an
    instrumented run is byte-identical to an uninstrumented one.  With
    ``enabled=False`` every hook is a no-op and nothing is retained
    (the engine uses a shared disabled instance when no telemetry was
    requested).
    """

    def __init__(self, enabled: bool = True) -> None:
        self.enabled = enabled
        self.ops: List[EngineOp] = []
        self.admitted_ns: Dict[int, int] = {}
        self._clock: Optional[Callable[[], int]] = None

    def bind_clock(self, clock: Callable[[], int]) -> None:
        self._clock = clock

    # -- engine hooks ------------------------------------------------------

    def admitted(self, req_id: int, now: int) -> None:
        """First admission of a request (re-admissions after a crash
        restore do not reset the mark: queueing is arrival -> first)."""
        if self.enabled:
            self.admitted_ns.setdefault(req_id, now)

    def op(self, kind: str, req_ids: Sequence[int] = ()):
        """Tag one cost-paying engine operation with its owners.

        Safe around generator code (the ``yield from`` of a runtime
        call): the interval closes when the block exits, exceptions
        included, so a fatal fault still leaves a closed interval.
        Telemetry-off runs get a shared no-op context (the decode loop
        enters one per step, so this path must not allocate).
        """
        if not self.enabled or self._clock is None:
            return _NULL_OP_CONTEXT
        if kind not in OP_BASE_COMPONENT:
            raise TelemetryError(f"unknown engine op kind {kind!r}")
        return _OpContext(self, kind, req_ids)


class _NullOpContext:
    """Shared no-op context for telemetry-off runs."""

    __slots__ = ()

    def __enter__(self) -> None:
        return None

    def __exit__(self, *exc: object) -> bool:
        return False


_NULL_OP_CONTEXT = _NullOpContext()


class _OpContext:
    """Records one :class:`EngineOp` interval on block exit."""

    __slots__ = ("_tel", "_kind", "_req_ids", "_start")

    def __init__(
        self, tel: ServeTelemetry, kind: str, req_ids: Sequence[int]
    ) -> None:
        self._tel = tel
        self._kind = kind
        self._req_ids = req_ids

    def __enter__(self) -> None:
        self._start = self._tel._clock()
        return None

    def __exit__(self, *exc: object) -> bool:
        tel = self._tel
        tel.ops.append(
            EngineOp(self._kind, self._start, tel._clock(),
                     tuple(self._req_ids))
        )
        return False


#: Shared inert instance for telemetry-off runs.
NULL_TELEMETRY = ServeTelemetry(enabled=False)


# ---------------------------------------------------------------------------
# Attribution: fold ops + stack spans into one component timeline.
# ---------------------------------------------------------------------------


def component_timeline(
    ops: Sequence[EngineOp], trace: Trace, horizon_ns: int
) -> List[Tuple[int, int, str]]:
    """A non-overlapping, gap-free component segmentation of [0, horizon).

    Each tagged engine-op interval is refined with the stack's own
    record — recovery events, kernel-execution events, crypto-flagged
    spans, ``cudaLaunchKernel`` spans (in that priority) — and the
    remainder falls to the op kind's base component.  Time covered by
    no op (engine idle, allocation prologue, drain epilogue) becomes
    ``other``.  Integer endpoints throughout, so clipping a request's
    lifetime against the result is exact.
    """
    recovery_ivs = _merged(
        [(e.start_ns, e.end_ns) for e in trace.recoveries()]
    )
    kernel_ivs = _merged([(e.start_ns, e.end_ns) for e in trace.kernels()])
    crypto_ivs = _merged(
        [
            (s.start_ns, s.end_ns)
            for s in trace.spans
            if s.attrs.get("crypto")
        ]
    )
    launch_ivs = _merged(
        [
            (s.start_ns, s.end_ns)
            for s in trace.spans
            if s.name == "cudaLaunchKernel"
        ]
    )
    refinements = (
        ("recovery", recovery_ivs),
        ("K", kernel_ivs),
        ("E", crypto_ivs),
        ("L", launch_ivs),
    )

    segments: List[Tuple[int, int, str]] = []
    previous_end = 0
    for op in sorted(ops, key=lambda o: (o.start_ns, o.end_ns)):
        if op.end_ns <= op.start_ns:
            continue
        if op.start_ns < previous_end:
            raise TelemetryError(
                f"overlapping engine ops at {op.start_ns} ns"
            )
        previous_end = op.end_ns
        remainder: List[Interval] = [(op.start_ns, op.end_ns)]
        for component, intervals in refinements:
            hit: List[Interval] = []
            for s, e in remainder:
                hit.extend(_clip(intervals, s, e))
            if not hit:
                continue
            segments.extend((s, e, component) for s, e in hit)
            remainder = _subtract(remainder, hit)
        base = OP_BASE_COMPONENT[op.kind]
        segments.extend((s, e, base) for s, e in remainder)

    segments.sort()
    filled: List[Tuple[int, int, str]] = []
    cursor = 0
    for start, end, component in segments:
        if start > cursor:
            filled.append((cursor, start, "other"))
        filled.append((start, end, component))
        cursor = end
    if cursor < horizon_ns:
        filled.append((cursor, horizon_ns, "other"))
    return filled


def _window_components(
    timeline: Sequence[Tuple[int, int, str]],
    starts: Sequence[int],
    lo: int,
    hi: int,
) -> Dict[str, int]:
    """Sum the timeline per component over the window [lo, hi)."""
    totals: Dict[str, int] = {}
    if hi <= lo:
        return totals
    index = max(bisect_right(starts, lo) - 1, 0)
    while index < len(timeline):
        start, end, component = timeline[index]
        if start >= hi:
            break
        overlap = min(end, hi) - max(start, lo)
        if overlap > 0:
            totals[component] = totals.get(component, 0) + overlap
        index += 1
    return totals


@dataclass(frozen=True)
class RequestAttribution:
    """One request's telemetry record: lifecycle + exact blame."""

    req_id: int
    tenant: str
    status: str
    cause: str
    arrival_ns: int
    admitted_ns: Optional[int]
    first_token_ns: Optional[int]
    finish_ns: int
    prompt_tokens: int
    gen_tokens: int
    preemptions: int
    #: Sec.-V breakdown of [arrival, finish); sums exactly to e2e_ns.
    components: Dict[str, int] = field(default_factory=dict)
    #: Same, clipped to [arrival, first token); sums exactly to
    #: ttft_ns.  Empty for requests that never produced a token.
    ttft_components: Dict[str, int] = field(default_factory=dict)

    @property
    def e2e_ns(self) -> int:
        return self.finish_ns - self.arrival_ns

    @property
    def ttft_ns(self) -> Optional[int]:
        if self.first_token_ns is None:
            return None
        return self.first_token_ns - self.arrival_ns

    @property
    def tpot_ns(self) -> int:
        """Mean inter-token gap after the first token (integer ns,
        matching the SLO report's ``int(outcome.tpot_ns)``)."""
        if self.first_token_ns is None or self.gen_tokens <= 1:
            return 0
        return int(
            (self.finish_ns - self.first_token_ns) / (self.gen_tokens - 1)
        )

    def dominant_component(self) -> str:
        """The largest non-queue blame bucket (ties -> report order)."""
        best, best_value = "other", -1
        for component in ATTRIBUTION_COMPONENTS:
            if component == "queue":
                continue
            value = self.components.get(component, 0)
            if value > best_value:
                best, best_value = component, value
        return best

    def to_record(self) -> Dict[str, object]:
        """Flat JSON/CSV-ready record (integer ns, no floats)."""
        record: Dict[str, object] = {
            "req_id": self.req_id,
            "tenant": self.tenant,
            "status": self.status,
            "cause": self.cause,
            "arrival_ns": self.arrival_ns,
            "admitted_ns": self.admitted_ns,
            "first_token_ns": self.first_token_ns,
            "finish_ns": self.finish_ns,
            "prompt_tokens": self.prompt_tokens,
            "gen_tokens": self.gen_tokens,
            "preemptions": self.preemptions,
            "e2e_ns": self.e2e_ns,
            "ttft_ns": self.ttft_ns,
            "tpot_ns": self.tpot_ns,
        }
        for component in ATTRIBUTION_COMPONENTS:
            record[f"c_{component}"] = self.components.get(component, 0)
        for component in ATTRIBUTION_COMPONENTS:
            record[f"f_{component}"] = self.ttft_components.get(component, 0)
        return record


def attribute_requests(
    outcomes: Sequence[RequestOutcome],
    telemetry: ServeTelemetry,
    trace: Trace,
) -> List[RequestAttribution]:
    """Per-request Sec.-V attribution for one serving run.

    Conservation is enforced, not hoped for: the function raises
    :class:`TelemetryError` if any request's breakdown does not sum
    exactly to its end-to-end latency (or its TTFT window to TTFT).
    """
    horizon = 0
    for op in telemetry.ops:
        horizon = max(horizon, op.end_ns)
    for outcome in outcomes:
        horizon = max(horizon, outcome.finish_ns)
    timeline = component_timeline(telemetry.ops, trace, horizon)
    starts = [start for start, _, _ in timeline]

    attributions: List[RequestAttribution] = []
    for outcome in sorted(outcomes, key=lambda o: o.req_id):
        admitted = telemetry.admitted_ns.get(outcome.req_id)
        components: Dict[str, int] = {}
        queue_end = admitted if admitted is not None else outcome.finish_ns
        queue_end = min(max(queue_end, outcome.arrival_ns), outcome.finish_ns)
        if queue_end > outcome.arrival_ns:
            components["queue"] = queue_end - outcome.arrival_ns
        if admitted is not None:
            for component, value in _window_components(
                timeline, starts, queue_end, outcome.finish_ns
            ).items():
                components[component] = components.get(component, 0) + value

        ttft_components: Dict[str, int] = {}
        if outcome.first_token_ns is not None:
            first = outcome.first_token_ns
            ttft_queue_end = min(queue_end, first)
            if ttft_queue_end > outcome.arrival_ns:
                ttft_components["queue"] = ttft_queue_end - outcome.arrival_ns
            if admitted is not None:
                for component, value in _window_components(
                    timeline, starts, min(queue_end, first), first
                ).items():
                    ttft_components[component] = (
                        ttft_components.get(component, 0) + value
                    )

        attribution = RequestAttribution(
            req_id=outcome.req_id,
            tenant=outcome.tenant,
            status=outcome.status,
            cause=outcome.cause,
            arrival_ns=outcome.arrival_ns,
            admitted_ns=admitted,
            first_token_ns=outcome.first_token_ns,
            finish_ns=outcome.finish_ns,
            prompt_tokens=outcome.prompt_tokens,
            gen_tokens=outcome.gen_tokens,
            preemptions=outcome.preemptions,
            components=components,
            ttft_components=ttft_components,
        )
        total = sum(components.values())
        if total != attribution.e2e_ns:
            raise TelemetryError(
                f"request {outcome.req_id}: components sum {total} ns != "
                f"e2e {attribution.e2e_ns} ns"
            )
        ttft = attribution.ttft_ns
        if ttft is not None and sum(ttft_components.values()) != ttft:
            raise TelemetryError(
                f"request {outcome.req_id}: TTFT components sum "
                f"{sum(ttft_components.values())} ns != ttft {ttft} ns"
            )
        attributions.append(attribution)
    return attributions


def record_telemetry_spans(
    attributions: Sequence[RequestAttribution],
    ops: Sequence[EngineOp],
    trace: Trace,
) -> None:
    """Append the per-request tracks and tagged ops to the trace.

    Called after the run completes, so the stack's own span ids are
    identical to a telemetry-off run; the telemetry spans simply take
    the ids after them (deterministic across processes).  Requests
    export on one Perfetto track each (layer ``serve.req``), engine
    ops on a shared ``serve.op`` track.
    """
    for attribution in attributions:
        attrs: Dict[str, object] = {
            "req": attribution.req_id,
            "tenant": attribution.tenant,
            "status": attribution.status,
            "cause": attribution.cause,
            "admitted_ns": attribution.admitted_ns,
            "first_token_ns": attribution.first_token_ns,
            "prompt_tokens": attribution.prompt_tokens,
            "gen_tokens": attribution.gen_tokens,
            "preemptions": attribution.preemptions,
        }
        for component in ATTRIBUTION_COMPONENTS:
            attrs[f"c_{component}"] = attribution.components.get(component, 0)
        for component in ATTRIBUTION_COMPONENTS:
            attrs[f"f_{component}"] = attribution.ttft_components.get(
                component, 0
            )
        root = trace.spans.record(
            "request",
            SERVE_REQUEST_LAYER,
            attribution.arrival_ns,
            attribution.e2e_ns,
            **attrs,
        )
        queue_ns = attribution.components.get("queue", 0)
        if queue_ns:
            trace.spans.record(
                "queued",
                SERVE_REQUEST_LAYER,
                attribution.arrival_ns,
                queue_ns,
                parent=root,
                req=attribution.req_id,
            )
        if attribution.admitted_ns is not None:
            trace.spans.record(
                "exec",
                SERVE_REQUEST_LAYER,
                attribution.admitted_ns,
                attribution.finish_ns - attribution.admitted_ns,
                parent=root,
                req=attribution.req_id,
            )
        if attribution.first_token_ns is not None:
            trace.spans.record(
                "first_token",
                SERVE_REQUEST_LAYER,
                attribution.first_token_ns,
                0,
                parent=root,
                req=attribution.req_id,
            )
    for op in sorted(ops, key=lambda o: (o.start_ns, o.end_ns)):
        trace.spans.record(
            op.kind,
            SERVE_OP_LAYER,
            op.start_ns,
            op.duration_ns,
            reqs=",".join(str(r) for r in op.req_ids),
        )


# ---------------------------------------------------------------------------
# Analysis surface: rollups, tail forensics, diff, exports.
# ---------------------------------------------------------------------------


def _completed(
    attributions: Sequence[RequestAttribution],
) -> List[RequestAttribution]:
    return [a for a in attributions if a.status == "completed"]


def _latency_block(samples: Sequence[float]) -> Dict[str, float]:
    """Identical reduction to :func:`repro.serve.slo.build_report`."""
    return {
        "mean": (sum(samples) / len(samples)) if samples else 0.0,
        "p50": percentile(samples, 50),
        "p95": percentile(samples, 95),
        "p99": percentile(samples, 99),
    }


def latency_percentiles(
    attributions: Sequence[RequestAttribution],
) -> Dict[str, Dict[str, float]]:
    """Global TTFT/TPOT/E2E blocks recomputed from per-request records.

    Percentiles reduce through the same nearest-rank helper and the
    same ms conversion as the verdict's SLO report, so equality with
    the verdict is exact (asserted in tests and the figure).
    """
    done = _completed(attributions)
    return {
        "ttft_ms": _latency_block(
            [units.to_ms(a.ttft_ns) for a in done]
        ),
        "tpot_ms": _latency_block([units.to_ms(a.tpot_ns) for a in done]),
        "e2e_ms": _latency_block([units.to_ms(a.e2e_ns) for a in done]),
    }


def _component_sums(
    attributions: Sequence[RequestAttribution],
) -> Dict[str, int]:
    sums = {component: 0 for component in ATTRIBUTION_COMPONENTS}
    for attribution in attributions:
        for component, value in attribution.components.items():
            sums[component] += value
    return sums


def tenant_rollup(
    attributions: Sequence[RequestAttribution],
) -> Dict[str, Dict]:
    """Per-tenant accounting: outcomes, tails and blame sums."""
    rollup: Dict[str, Dict] = {}
    for tenant in sorted({a.tenant for a in attributions}):
        mine = [a for a in attributions if a.tenant == tenant]
        done = _completed(mine)
        causes: Dict[str, int] = {}
        for attribution in mine:
            if attribution.status in ("shed", "failed"):
                cause = attribution.cause or "unspecified"
                causes[cause] = causes.get(cause, 0) + 1
        rollup[tenant] = {
            "requests": len(mine),
            "completed": len(done),
            "shed": sum(1 for a in mine if a.status == "shed"),
            "failed": sum(1 for a in mine if a.status == "failed"),
            "causes": dict(sorted(causes.items())),
            "preemptions": sum(a.preemptions for a in mine),
            "ttft_ms": _latency_block(
                [units.to_ms(a.ttft_ns) for a in done]
            ),
            "e2e_ms": _latency_block([units.to_ms(a.e2e_ns) for a in done]),
            "components_ns": _component_sums(mine),
        }
    return rollup


def pick_percentile_request(
    attributions: Sequence[RequestAttribution], pct: float = 99.0
) -> Optional[RequestAttribution]:
    """The completed request at the nearest-rank TTFT percentile.

    Ordering matches :func:`repro.obs.metrics.percentile` exactly, so
    the picked request's TTFT *is* the verdict's reported percentile
    (ties broken by request id for determinism).
    """
    done = [a for a in _completed(attributions) if a.ttft_ns is not None]
    if not done:
        return None
    ordered = sorted(done, key=lambda a: (a.ttft_ns, a.req_id))
    index = min(len(ordered) - 1, int(pct / 100.0 * len(ordered)))
    return ordered[index]


def tail_report(
    attributions: Sequence[RequestAttribution], top: int = 5
) -> Dict:
    """Tail forensics: slowest requests with blame + p99 attribution."""
    slowest = sorted(
        attributions, key=lambda a: (-a.e2e_ns, a.req_id)
    )[: max(top, 0)]
    p99 = pick_percentile_request(attributions, 99)
    report: Dict = {
        "requests": len(attributions),
        "completed": len(_completed(attributions)),
        "shed": sum(1 for a in attributions if a.status == "shed"),
        "failed": sum(1 for a in attributions if a.status == "failed"),
        "percentiles": latency_percentiles(attributions),
        "components_ns": _component_sums(attributions),
        "slowest": [a.to_record() for a in slowest],
    }
    if p99 is not None:
        report["ttft_p99"] = {
            "req_id": p99.req_id,
            "tenant": p99.tenant,
            "ttft_ms": units.to_ms(p99.ttft_ns),
            "components_ns": {
                component: p99.ttft_components.get(component, 0)
                for component in ATTRIBUTION_COMPONENTS
            },
        }
    return report


def render_tail_report(report: Dict, by_tenant: Optional[Dict] = None) -> str:
    """Human-readable forensics report (deterministic)."""
    lines: List[str] = []
    pct = report["percentiles"]
    lines.append(
        f"requests {report['requests']}  completed {report['completed']}  "
        f"shed {report['shed']}  failed {report['failed']}"
    )
    lines.append(
        f"ttft p50/p99 {pct['ttft_ms']['p50']:.2f}/"
        f"{pct['ttft_ms']['p99']:.2f} ms  "
        f"tpot p99 {pct['tpot_ms']['p99']:.2f} ms  "
        f"e2e p99 {pct['e2e_ms']['p99']:.2f} ms"
    )
    if "ttft_p99" in report:
        p99 = report["ttft_p99"]
        blame = ", ".join(
            f"{component}={units.to_ms(value):.2f}ms"
            for component, value in p99["components_ns"].items()
            if value
        )
        lines.append(
            f"ttft p99 = req {p99['req_id']} ({p99['tenant']}) "
            f"{p99['ttft_ms']:.2f} ms: {blame}"
        )
    lines.append("")
    lines.append(
        f"top {len(report['slowest'])} slowest requests "
        "(e2e, status, blame):"
    )
    for record in report["slowest"]:
        blame = ", ".join(
            f"{component}={units.to_ms(record[f'c_{component}']):.2f}ms"
            for component in ATTRIBUTION_COMPONENTS
            if record[f"c_{component}"]
        )
        status = record["status"]
        if record["cause"]:
            status += f":{record['cause']}"
        lines.append(
            f"  req {record['req_id']:>4} {record['tenant']:<10}"
            f"{units.to_ms(record['e2e_ns']):10.2f} ms  {status:<16} {blame}"
        )
    if by_tenant:
        lines.append("")
        lines.append("per-tenant rollup:")
        for tenant, row in by_tenant.items():
            lines.append(
                f"  {tenant:<10} n={row['requests']:<4} "
                f"done={row['completed']:<4} shed={row['shed']:<3} "
                f"failed={row['failed']:<3} "
                f"ttft p99 {row['ttft_ms']['p99']:8.2f} ms  "
                f"e2e p99 {row['e2e_ms']['p99']:8.2f} ms"
            )
            blame = ", ".join(
                f"{component}={units.to_ms(value):.2f}ms"
                for component, value in row["components_ns"].items()
                if value
            )
            lines.append(f"             blame: {blame}")
    return "\n".join(lines)


def forensics_diff(
    base: Sequence[RequestAttribution],
    cc: Sequence[RequestAttribution],
) -> Dict:
    """Attribute the base->CC TTFT p99 delta to Sec.-V components.

    Compares the TTFT-window breakdowns of the two sides' p99
    requests; per-component deltas sum exactly to the p99 TTFT delta
    (both sides' breakdowns are conservative), and ``dominant`` names
    the component that moved the most.
    """
    base_p99 = pick_percentile_request(base, 99)
    cc_p99 = pick_percentile_request(cc, 99)
    if base_p99 is None or cc_p99 is None:
        raise TelemetryError("both runs need completed requests to diff")
    deltas = {
        component: (
            cc_p99.ttft_components.get(component, 0)
            - base_p99.ttft_components.get(component, 0)
        )
        for component in ATTRIBUTION_COMPONENTS
    }
    dominant = max(
        ATTRIBUTION_COMPONENTS, key=lambda c: (deltas[c], -ord(c[0]))
    )
    return {
        "base_ttft_p99_ms": units.to_ms(base_p99.ttft_ns),
        "cc_ttft_p99_ms": units.to_ms(cc_p99.ttft_ns),
        "delta_ns": cc_p99.ttft_ns - base_p99.ttft_ns,
        "components_delta_ns": deltas,
        "dominant": dominant,
        "base_req_id": base_p99.req_id,
        "cc_req_id": cc_p99.req_id,
    }


def render_forensics_diff(diff: Dict) -> str:
    lines = [
        f"ttft p99: base {diff['base_ttft_p99_ms']:.2f} ms "
        f"(req {diff['base_req_id']}) -> cc {diff['cc_ttft_p99_ms']:.2f} ms "
        f"(req {diff['cc_req_id']}), "
        f"delta {units.to_ms(diff['delta_ns']):+.2f} ms",
        "per-component delta (exactly sums to the p99 delta):",
    ]
    for component in ATTRIBUTION_COMPONENTS:
        value = diff["components_delta_ns"][component]
        if value:
            lines.append(
                f"  {component:<9}{units.to_ms(value):+10.3f} ms"
            )
    lines.append(f"dominant component: {diff['dominant']}")
    return "\n".join(lines)


# ---------------------------------------------------------------------------
# Byte-deterministic per-request exports.
# ---------------------------------------------------------------------------

#: Fixed CSV column order (the JSONL keys, sorted for stability).
EXPORT_COLUMNS: Tuple[str, ...] = (
    "req_id", "tenant", "status", "cause",
    "arrival_ns", "admitted_ns", "first_token_ns", "finish_ns",
    "prompt_tokens", "gen_tokens", "preemptions",
    "e2e_ns", "ttft_ns", "tpot_ns",
) + tuple(f"c_{c}" for c in ATTRIBUTION_COMPONENTS) + tuple(
    f"f_{c}" for c in ATTRIBUTION_COMPONENTS
)


def requests_jsonl(attributions: Sequence[RequestAttribution]) -> str:
    """One sorted-key JSON object per request per line (byte-stable)."""
    import json

    return "\n".join(
        json.dumps(a.to_record(), sort_keys=True) for a in attributions
    ) + ("\n" if attributions else "")


def requests_csv(attributions: Sequence[RequestAttribution]) -> str:
    """Fixed-column CSV of the same records (byte-stable)."""
    lines = [",".join(EXPORT_COLUMNS)]
    for attribution in attributions:
        record = attribution.to_record()
        lines.append(
            ",".join(
                "" if record[column] is None else str(record[column])
                for column in EXPORT_COLUMNS
            )
        )
    return "\n".join(lines) + "\n"
