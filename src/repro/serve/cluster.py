"""Cluster-scale CC serving: replicated engines behind a tenant-aware
router, with model parallelism inside each replica.

The paper dissects one guest/GPU pair; "The Serialized Bridge" (Yin &
Wang, 2026) shows the same CC taxes compounding at cluster scale —
every replica pays attestation before it serves, every TP shard syncs
over encrypted peer links, every PP boundary crosses the serialized
host bridge, and the router itself transitions through the TD on every
placement.  :func:`run_cluster` composes those pieces from the existing
layers:

* **Replicas** are ordinary :class:`~repro.serve.ServingEngine` runs,
  shaped by a :class:`~repro.serve.parallelism.ParallelismSpec` — so a
  single-replica tp=1/pp=1 cluster reduces *exactly* to
  :func:`~repro.serve.scenario.run_scenario` output (the invariant the
  reduction test pins byte-for-byte).
* **The router** is a deterministic admission pass over the global
  arrival stream: per-request ingress cost (base routing work plus a
  TD hypercall under CC), three placement policies (``round-robin``,
  ``least-loaded``, ``kv-affinity`` tenant stickiness with overload
  spill), and a queue-delay estimator built from the same
  :class:`~repro.llm.backends.VLLMBackend` roofline the engines pay.
* **The autoscaler** watches the estimator's per-epoch p95 queue delay
  against the SLO-derived thresholds and adds replicas up to
  ``autoscale_max`` — each new replica becomes ready only after a full
  simulated SPDM attestation, so CC clusters pay more for elasticity
  exactly when they need it most.
"""

from __future__ import annotations

import dataclasses
import json
from dataclasses import asdict, dataclass, field
from typing import Dict, List, Optional, Tuple

from .. import units
from ..config import SystemConfig
from ..llm.backends import VLLM_STEP_SCHED_NS
from ..obs.metrics import percentile
from ..sim import Simulator
from ..tdx import GuestContext
from ..tdx.spdm import attest_gpu
from .arrivals import ServeRequest, generate_arrivals, stream_digest
from .parallelism import ParallelismSpec
from .scenario import ScenarioSpec, fault_plan_summary
from .scheduler import EngineResult, ServingEngine
from .slo import RequestOutcome, build_report
from .telemetry import ServeTelemetry, attribute_requests, record_telemetry_spans

PLACEMENTS = ("round-robin", "least-loaded", "kv-affinity")

#: Router CPU work per placement decision (classify + table lookup).
ROUTER_BASE_NS = units.us(3.0)


class ClusterError(ValueError):
    pass


@dataclass(frozen=True)
class ClusterSpec:
    """A serving cluster: scenario + replica topology + router policy."""

    scenario: ScenarioSpec = field(default_factory=ScenarioSpec)
    replicas: int = 1
    tp: int = 1
    pp: int = 1
    link_policy: str = "naive"
    placement: str = "round-robin"
    #: 0 disables the autoscaler; otherwise the ceiling it may reach.
    autoscale_max: int = 0
    autoscale_epoch_ms: float = 250.0
    scale_up_queue_ms: float = 200.0
    scale_down_queue_ms: float = 20.0

    def validate(self) -> None:
        problems = []
        if self.replicas < 1:
            problems.append(f"replicas must be >= 1, got {self.replicas}")
        if self.placement not in PLACEMENTS:
            problems.append(
                f"placement must be one of {PLACEMENTS}, "
                f"got {self.placement!r}"
            )
        if self.autoscale_max and self.autoscale_max < self.replicas:
            problems.append(
                f"autoscale_max ({self.autoscale_max}) must be >= "
                f"replicas ({self.replicas})"
            )
        if self.autoscale_epoch_ms <= 0:
            problems.append("autoscale_epoch_ms must be > 0")
        if self.scale_up_queue_ms <= self.scale_down_queue_ms:
            problems.append(
                "scale_up_queue_ms must exceed scale_down_queue_ms"
            )
        if problems:
            raise ClusterError("invalid ClusterSpec: " + "; ".join(problems))
        self.parallelism().validate()

    def parallelism(self) -> ParallelismSpec:
        return ParallelismSpec(
            tp=self.tp, pp=self.pp, link_policy=self.link_policy
        )

    @property
    def cluster_capable(self) -> bool:
        """True when the router/autoscaler actually have decisions to
        make; False is the exact-reduction path to the single engine."""
        return self.replicas > 1 or self.autoscale_max > self.replicas


@dataclass
class ReplicaOutcome:
    """One replica engine's share of the cluster run."""

    replica_id: int
    requests: int
    engine: EngineResult
    report: Dict


@dataclass
class ClusterResult:
    """Everything one cluster run produced (traces kept separately)."""

    spec: ClusterSpec
    cc: bool
    requests: int
    arrival_digest: str
    replicas: List[ReplicaOutcome]
    report: Dict
    router: Dict
    elapsed_ns: int
    faults: Optional[Dict] = None
    attributions: Optional[List] = None

    @property
    def goodput_rps(self) -> float:
        return self.report["goodput_rps"]

    def ttft_p99_ms(self) -> float:
        return self.report["ttft_ms"]["p99"]


def measure_attestation_ns(config: SystemConfig) -> int:
    """Full simulated SPDM attestation time under ``config`` — what a
    freshly scaled-up replica pays before its first request."""
    sim = Simulator()
    guest = GuestContext(sim, config)
    sim.run(sim.process(attest_gpu(sim, guest, config)))
    return sim.now


class _Router:
    """Deterministic placement over the global arrival stream.

    Pure bookkeeping (no Simulator): per-replica busy horizons advance
    by a roofline service estimate, which is what the placement and
    autoscaling decisions key off.  The *engines* then pay the real,
    fault-aware costs; the router only decides who pays where and adds
    its own ingress latency to each request.
    """

    def __init__(self, spec: ClusterSpec, config: SystemConfig) -> None:
        self.spec = spec
        self.config = config
        self.ingress_ns = int(ROUTER_BASE_NS)
        if config.cc_on:
            # Placement runs inside the trust boundary: admitting a
            # request into a TD replica costs a guest transition.
            self.ingress_ns += int(config.tdx.td_hypercall_ns)
        self.attest_ns = 0
        if spec.autoscale_max > spec.replicas:
            self.attest_ns = measure_attestation_ns(config)
        # Roofline service estimate, from the same backend the engines
        # use: whole-prompt prefill + per-token decode cadence at a
        # nominal batch of 8.
        engine = ServingEngine(
            scheduler_config=spec.scenario.scheduler_config(),
            kv_budget_bytes=spec.scenario.kv_budget_bytes,
            block_tokens=spec.scenario.block_tokens,
        )
        self._backend = engine.backend
        decode = self._backend.decode_kernel(config, 8, 256.0)
        self._decode_step_ns = decode.fixed_duration_ns + VLLM_STEP_SCHED_NS
        # Replica state.
        self.busy_until: Dict[int, int] = {}
        self.ready_at: Dict[int, int] = {}
        self.active: List[int] = []
        for rid in range(spec.replicas):
            self.busy_until[rid] = 0
            self.ready_at[rid] = 0
            self.active.append(rid)
        self._rr_next = 0
        self._pins: Dict[str, int] = {}
        self._epoch_ns = int(spec.autoscale_epoch_ms * units.NS_PER_SEC / 1e3)
        self._epoch_end = self._epoch_ns
        self._epoch_delays_ms: List[float] = []
        self.est_queue_ms: List[float] = []
        self.events: List[Dict] = []
        self.spills = 0

    def _service_ns(self, request: ServeRequest) -> int:
        prefill = self._backend.prefill_kernel(
            self.config, request.prompt_tokens
        )
        # Batch-of-8 decode cadence: each step advances 8 sequences.
        decode_ns = request.gen_tokens * self._decode_step_ns // 8
        return prefill.fixed_duration_ns + decode_ns

    def _least_loaded(self, now: int) -> int:
        return min(
            self.active,
            key=lambda rid: (max(self.busy_until[rid], now), rid),
        )

    def _backlog_ms(self, rid: int, now: int) -> float:
        return units.to_ms(max(0, self.busy_until[rid] - now))

    def _place(self, request: ServeRequest, now: int) -> int:
        placement = self.spec.placement
        if placement == "least-loaded":
            return self._least_loaded(now)
        if placement == "kv-affinity":
            # Tenant-sticky: prefix-cache hits come from landing a
            # tenant's stream on the same replica.  Spill (and re-pin)
            # when the pinned replica's backlog crosses the scale-up
            # threshold — latency beats cache affinity past that point.
            rid = self._pins.get(request.tenant)
            if rid is None or rid not in self.active:
                rid = self._least_loaded(now)
                self._pins[request.tenant] = rid
            elif self._backlog_ms(rid, now) > self.spec.scale_up_queue_ms:
                spill = self._least_loaded(now)
                if spill != rid:
                    self.spills += 1
                    self._pins[request.tenant] = spill
                    rid = spill
            return rid
        # round-robin over the active set.
        rid = self.active[self._rr_next % len(self.active)]
        self._rr_next += 1
        return rid

    def _autoscale_tick(self, now: int) -> None:
        """Evaluate scale decisions at every epoch boundary <= now."""
        if not self.spec.autoscale_max:
            return
        while self._epoch_end <= now:
            epoch_t = self._epoch_end
            self._epoch_end += self._epoch_ns
            delays = self._epoch_delays_ms
            self._epoch_delays_ms = []
            if not delays:
                continue
            p95 = percentile(delays, 95)
            if (
                p95 > self.spec.scale_up_queue_ms
                and len(self.active) < self.spec.autoscale_max
            ):
                rid = len(self.busy_until)
                self.busy_until[rid] = 0
                # A new replica serves only after boot + attestation —
                # the CC stack makes scale-up relief slower to arrive.
                self.ready_at[rid] = epoch_t + self.attest_ns
                self.active.append(rid)
                self.events.append({
                    "action": "scale-up",
                    "at_ms": units.to_ms(epoch_t),
                    "replica": rid,
                    "p95_queue_ms": p95,
                    "ready_ms": units.to_ms(self.ready_at[rid]),
                })
            elif (
                p95 < self.spec.scale_down_queue_ms
                and len(self.active) > self.spec.replicas
            ):
                for rid in reversed(self.active):
                    if (
                        rid >= self.spec.replicas
                        and self.busy_until[rid] <= epoch_t
                    ):
                        self.active.remove(rid)
                        self.events.append({
                            "action": "scale-down",
                            "at_ms": units.to_ms(epoch_t),
                            "replica": rid,
                            "p95_queue_ms": p95,
                        })
                        break

    def route(self, request: ServeRequest) -> Tuple[int, int]:
        """Place one request; returns (replica_id, adjusted_arrival_ns)."""
        self._autoscale_tick(request.arrival_ns)
        now = request.arrival_ns + self.ingress_ns
        rid = self._place(request, now)
        start = max(now, self.ready_at[rid])
        queue_ms = self._backlog_ms(rid, start)
        self.est_queue_ms.append(queue_ms)
        self._epoch_delays_ms.append(queue_ms)
        self.busy_until[rid] = (
            max(self.busy_until[rid], start) + self._service_ns(request)
        )
        return rid, start

    def summary(self, assigned: Dict[int, int]) -> Dict:
        return {
            "placement": self.spec.placement,
            "ingress_ns": self.ingress_ns,
            "attest_ms": units.to_ms(self.attest_ns),
            "replicas_started": self.spec.replicas,
            "replicas_final": len(self.active),
            "replica_requests": {
                str(rid): count for rid, count in sorted(assigned.items())
            },
            "affinity_spills": self.spills,
            "est_queue_ms": {
                "mean": (
                    sum(self.est_queue_ms) / len(self.est_queue_ms)
                    if self.est_queue_ms else 0.0
                ),
                "p95": percentile(self.est_queue_ms, 95),
            },
            "autoscale_events": self.events,
        }


def run_cluster(
    spec: ClusterSpec,
    config: Optional[SystemConfig] = None,
    telemetry: bool = False,
):
    """Run one cluster scenario; returns ``(traces, ClusterResult)``.

    ``traces`` maps replica id -> Chrome trace.  ``telemetry=True`` is
    only supported on single-replica clusters (per-request attribution
    across replicas would need merged clocks); the CLI enforces this.
    """
    spec.validate()
    config = config or SystemConfig.base()
    scenario = spec.scenario
    if telemetry and spec.cluster_capable:
        raise ClusterError(
            "telemetry capture requires a single-replica cluster"
        )
    requests = generate_arrivals(
        scenario.tenant_specs(), scenario.duration_ns, scenario.seed
    )
    par = spec.parallelism()

    # -- routing ---------------------------------------------------------
    router_summary: Dict
    per_replica: Dict[int, List[ServeRequest]] = {}
    original_arrival: Dict[int, int] = {
        r.req_id: r.arrival_ns for r in requests
    }
    if spec.cluster_capable:
        router = _Router(spec, config)
        for request in requests:
            rid, start = router.route(request)
            per_replica.setdefault(rid, []).append(
                dataclasses.replace(request, arrival_ns=start)
            )
        assigned = {rid: len(reqs) for rid, reqs in per_replica.items()}
        for rid in router.busy_until:
            assigned.setdefault(rid, 0)
        router_summary = router.summary(assigned)
    else:
        per_replica[0] = list(requests)
        router_summary = {
            "placement": spec.placement,
            "ingress_ns": 0,
            "attest_ms": 0.0,
            "replicas_started": 1,
            "replicas_final": 1,
            "replica_requests": {"0": len(requests)},
            "affinity_spills": 0,
            "est_queue_ms": {"mean": 0.0, "p95": 0.0},
            "autoscale_events": [],
        }

    # -- replica engines -------------------------------------------------
    traces: Dict[int, object] = {}
    replicas: List[ReplicaOutcome] = []
    all_outcomes: List[RequestOutcome] = []
    all_rejected: List[ServeRequest] = []
    attributions = None
    elapsed_ns = 0
    for rid in sorted(per_replica):
        replica_requests = per_replica[rid]
        engine = ServingEngine(
            scheduler_config=scenario.scheduler_config(),
            kv_budget_bytes=scenario.kv_budget_bytes,
            block_tokens=scenario.block_tokens,
            targets=scenario.slo_targets(),
            degrade=scenario.degrade(),
            parallelism=par,
        )
        label = scenario.label(config)
        if spec.cluster_capable:
            label = f"{label}-rep{rid}"
        tel = ServeTelemetry() if telemetry else None
        trace, result = engine.run(
            config, replica_requests, label=label, telemetry=tel
        )
        traces[rid] = trace
        # Latencies are charged from the *original* arrival, so router
        # ingress and replica-readiness waits land in TTFT/E2E.
        outcomes = [
            dataclasses.replace(
                o, arrival_ns=original_arrival[o.req_id]
            )
            for o in result.outcomes
        ]
        rejected = [
            dataclasses.replace(
                r, arrival_ns=original_arrival[r.req_id]
            )
            for r in result.rejected
        ]
        window_ns = max(scenario.duration_ns, result.elapsed_ns)
        replica_report = build_report(
            outcomes, rejected, window_ns, scenario.slo_targets()
        )
        replicas.append(ReplicaOutcome(
            replica_id=rid,
            requests=len(replica_requests),
            engine=result,
            report=replica_report,
        ))
        all_outcomes.extend(outcomes)
        all_rejected.extend(rejected)
        elapsed_ns = max(elapsed_ns, result.elapsed_ns)
        if tel is not None:
            attributions = attribute_requests(result.outcomes, tel, trace)
            record_telemetry_spans(attributions, tel.ops, trace)

    if len(replicas) > 1:
        # Deterministic merge order; with one replica the engine order
        # is kept so the report is float-identical to run_scenario
        # (sums over floats are order-sensitive).
        all_outcomes.sort(key=lambda o: o.req_id)
        all_rejected.sort(key=lambda r: r.req_id)
    window_ns = max(scenario.duration_ns, elapsed_ns)
    report = build_report(
        all_outcomes, all_rejected, window_ns, scenario.slo_targets()
    )
    return traces, ClusterResult(
        spec=spec,
        cc=config.cc_on,
        requests=len(requests),
        arrival_digest=stream_digest(requests),
        replicas=replicas,
        report=report,
        router=router_summary,
        elapsed_ns=elapsed_ns,
        faults=fault_plan_summary(config),
        attributions=attributions,
    )


def cluster_verdict(result: ClusterResult) -> Dict:
    """Deterministic, JSON-ready verdict for one cluster run."""
    spec = result.spec
    return {
        "command": "serve-cluster",
        "spec": {
            "scenario": asdict(spec.scenario),
            "replicas": spec.replicas,
            "tp": spec.tp,
            "pp": spec.pp,
            "link_policy": spec.link_policy,
            "placement": spec.placement,
            "autoscale_max": spec.autoscale_max,
            "autoscale_epoch_ms": spec.autoscale_epoch_ms,
            "scale_up_queue_ms": spec.scale_up_queue_ms,
            "scale_down_queue_ms": spec.scale_down_queue_ms,
        },
        "cc": result.cc,
        "requests": result.requests,
        "arrival_digest": result.arrival_digest,
        "elapsed_ms": units.to_ms(result.elapsed_ns),
        "router": result.router,
        "replicas": {
            str(r.replica_id): {
                "requests": r.requests,
                "elapsed_ms": units.to_ms(r.engine.elapsed_ns),
                "engine": dict(sorted(r.engine.stats.items())),
                "goodput_rps": r.report["goodput_rps"],
            }
            for r in result.replicas
        },
        "faults": result.faults or {"active": False, "sites": {}},
        "slo": result.report,
    }


def cluster_verdict_json(result: ClusterResult) -> str:
    """Byte-stable JSON encoding of the verdict (determinism gate)."""
    return json.dumps(cluster_verdict(result), indent=1, sort_keys=True)
