"""SLO accounting for the serving simulator.

Per-request latency decomposition in the standard serving vocabulary:

* **TTFT** — time to first token (arrival -> first decode completes;
  includes queueing, so it is the metric that blows up past the knee),
* **TPOT** — time per output token after the first (steady decode
  cadence; inflated by CC per-step staging/launch overheads),
* **E2E** — arrival -> last token.

**Goodput** counts only requests that met *both* the TTFT and TPOT
targets — the metric under which CC saturates at a strictly lower
arrival rate than native ("The Serialized Bridge").

All samples are recorded into :class:`~repro.obs.MetricsRegistry`
histograms (global and per-tenant), so reports reduce through the same
nearest-rank percentile helper used everywhere else, and the Chrome
trace carries queue-depth / KV-occupancy counter tracks next to them.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence

from .. import units
from ..obs.metrics import MetricsRegistry, percentile
from .arrivals import ServeRequest


@dataclass(frozen=True)
class SLOTargets:
    """Latency targets a request must meet to count toward goodput."""

    ttft_ms: float = 400.0
    tpot_ms: float = 60.0


@dataclass(frozen=True)
class RequestOutcome:
    """Completed-request record emitted by the serving engine."""

    req_id: int
    tenant: str
    arrival_ns: int
    first_token_ns: int  # absolute sim time of first emitted token
    finish_ns: int  # absolute sim time of last token
    prompt_tokens: int
    gen_tokens: int
    preemptions: int = 0

    @property
    def ttft_ns(self) -> int:
        return self.first_token_ns - self.arrival_ns

    @property
    def e2e_ns(self) -> int:
        return self.finish_ns - self.arrival_ns

    @property
    def tpot_ns(self) -> float:
        """Mean inter-token gap after the first token."""
        if self.gen_tokens <= 1:
            return 0.0
        return (self.finish_ns - self.first_token_ns) / (self.gen_tokens - 1)

    def meets(self, targets: SLOTargets) -> bool:
        return (
            units.to_ms(self.ttft_ns) <= targets.ttft_ms
            and units.to_ms(int(self.tpot_ns)) <= targets.tpot_ms
        )


class SLOTracker:
    """Streams request outcomes into registry histograms."""

    def __init__(
        self,
        metrics: MetricsRegistry,
        targets: Optional[SLOTargets] = None,
    ) -> None:
        self.metrics = metrics
        self.targets = targets or SLOTargets()
        self.outcomes: List[RequestOutcome] = []

    def observe(self, outcome: RequestOutcome) -> None:
        self.outcomes.append(outcome)
        for scope in ("serve", f"serve.{outcome.tenant}"):
            self.metrics.histogram(f"{scope}.ttft_ms").observe(
                units.to_ms(outcome.ttft_ns)
            )
            self.metrics.histogram(f"{scope}.tpot_ms").observe(
                units.to_ms(int(outcome.tpot_ns))
            )
            self.metrics.histogram(f"{scope}.e2e_ms").observe(
                units.to_ms(outcome.e2e_ns)
            )
        self.metrics.counter("serve.completed").inc()
        if outcome.meets(self.targets):
            self.metrics.counter("serve.slo_attained").inc()


def _latency_block(samples: Sequence[float]) -> Dict[str, float]:
    return {
        "mean": (sum(samples) / len(samples)) if samples else 0.0,
        "p50": percentile(samples, 50),
        "p95": percentile(samples, 95),
        "p99": percentile(samples, 99),
    }


def build_report(
    outcomes: Sequence[RequestOutcome],
    rejected: Sequence[ServeRequest],
    duration_ns: int,
    targets: SLOTargets,
) -> Dict:
    """Deterministic SLO report (plain dict, JSON-stable ordering is
    the caller's job via ``sort_keys``)."""
    duration_s = units.to_sec(duration_ns)
    attained = [o for o in outcomes if o.meets(targets)]
    tokens_out = sum(o.gen_tokens for o in outcomes)

    def tenant_names() -> List[str]:
        names = {o.tenant for o in outcomes} | {r.tenant for r in rejected}
        return sorted(names)

    def block(subset: Sequence[RequestOutcome]) -> Dict:
        met = [o for o in subset if o.meets(targets)]
        return {
            "completed": len(subset),
            "slo_attained": len(met),
            "ttft_ms": _latency_block([units.to_ms(o.ttft_ns) for o in subset]),
            "tpot_ms": _latency_block(
                [units.to_ms(int(o.tpot_ns)) for o in subset]
            ),
            "e2e_ms": _latency_block([units.to_ms(o.e2e_ns) for o in subset]),
        }

    report = {
        "targets": {"ttft_ms": targets.ttft_ms, "tpot_ms": targets.tpot_ms},
        "duration_s": duration_s,
        "offered": len(outcomes) + len(rejected),
        "rejected": len(rejected),
        "throughput_tok_s": tokens_out / duration_s if duration_s else 0.0,
        "completed_rps": len(outcomes) / duration_s if duration_s else 0.0,
        "goodput_rps": len(attained) / duration_s if duration_s else 0.0,
        "total_preemptions": sum(o.preemptions for o in outcomes),
        **block(outcomes),
        "tenants": {
            name: block([o for o in outcomes if o.tenant == name])
            for name in tenant_names()
        },
    }
    return report
