"""SLO accounting for the serving simulator.

Per-request latency decomposition in the standard serving vocabulary:

* **TTFT** — time to first token (arrival -> first decode completes;
  includes queueing, so it is the metric that blows up past the knee),
* **TPOT** — time per output token after the first (steady decode
  cadence; inflated by CC per-step staging/launch overheads),
* **E2E** — arrival -> last token.

**Goodput** counts only requests that met *both* the TTFT and TPOT
targets — the metric under which CC saturates at a strictly lower
arrival rate than native ("The Serialized Bridge").

All samples are recorded into :class:`~repro.obs.MetricsRegistry`
histograms (global and per-tenant), so reports reduce through the same
nearest-rank percentile helper used everywhere else, and the Chrome
trace carries queue-depth / KV-occupancy counter tracks next to them.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence

from .. import units
from ..obs.metrics import MetricsRegistry, percentile
from .arrivals import ServeRequest


@dataclass(frozen=True)
class SLOTargets:
    """Latency targets a request must meet to count toward goodput."""

    ttft_ms: float = 400.0
    tpot_ms: float = 60.0


@dataclass(frozen=True)
class RequestOutcome:
    """Terminal-request record emitted by the serving engine.

    ``status`` is one of the lifecycle terminal states: ``completed``
    (all tokens generated — the only status that can count toward
    goodput), ``shed`` (terminated by a degradation policy: TTFT
    timeout, deadline, admission pushback) or ``failed`` (the engine
    gave up; ``cause`` names the fault site or policy responsible).
    ``first_token_ns`` is ``None`` for requests that never produced a
    token (a request whose first token genuinely lands at sim-time 0
    is therefore distinguishable from one that never started);
    ``finish_ns`` is the termination time.
    """

    req_id: int
    tenant: str
    arrival_ns: int
    #: Absolute sim time of the first emitted token; ``None`` if the
    #: request never produced one (only possible for shed/failed).
    first_token_ns: Optional[int]
    finish_ns: int  # absolute sim time of last token
    prompt_tokens: int
    gen_tokens: int
    preemptions: int = 0
    status: str = "completed"
    cause: str = ""

    @property
    def ttft_ns(self) -> Optional[int]:
        """Time to first token; ``None`` if no token was emitted."""
        if self.first_token_ns is None:
            return None
        return self.first_token_ns - self.arrival_ns

    @property
    def e2e_ns(self) -> int:
        return self.finish_ns - self.arrival_ns

    @property
    def tpot_ns(self) -> float:
        """Mean inter-token gap after the first token."""
        if self.first_token_ns is None or self.gen_tokens <= 1:
            return 0.0
        return (self.finish_ns - self.first_token_ns) / (self.gen_tokens - 1)

    def meets(self, targets: SLOTargets) -> bool:
        ttft = self.ttft_ns
        if ttft is None:
            return False  # never produced a token -> cannot attain SLO
        return (
            units.to_ms(ttft) <= targets.ttft_ms
            and units.to_ms(int(self.tpot_ns)) <= targets.tpot_ms
        )


class SLOTracker:
    """Streams request outcomes into registry histograms."""

    def __init__(
        self,
        metrics: MetricsRegistry,
        targets: Optional[SLOTargets] = None,
    ) -> None:
        self.metrics = metrics
        self.targets = targets or SLOTargets()
        self.outcomes: List[RequestOutcome] = []

    def observe(self, outcome: RequestOutcome) -> None:
        self.outcomes.append(outcome)
        if outcome.status != "completed":
            # SHED metric taxonomy: shed/failed requests never enter
            # the latency histograms (their latencies are policy
            # artifacts, not service quality) — they get their own
            # counters, globally and per tenant/cause.
            self.metrics.counter(f"serve.{outcome.status}").inc()
            self.metrics.counter(
                f"serve.{outcome.tenant}.{outcome.status}"
            ).inc()
            if outcome.cause:
                self.metrics.counter(
                    f"serve.{outcome.status}.{outcome.cause}"
                ).inc()
            return
        for scope in ("serve", f"serve.{outcome.tenant}"):
            self.metrics.histogram(f"{scope}.ttft_ms").observe(
                units.to_ms(outcome.ttft_ns)
            )
            self.metrics.histogram(f"{scope}.tpot_ms").observe(
                units.to_ms(int(outcome.tpot_ns))
            )
            self.metrics.histogram(f"{scope}.e2e_ms").observe(
                units.to_ms(outcome.e2e_ns)
            )
        self.metrics.counter("serve.completed").inc()
        if outcome.meets(self.targets):
            self.metrics.counter("serve.slo_attained").inc()


def _latency_block(samples: Sequence[float]) -> Dict[str, float]:
    return {
        "mean": (sum(samples) / len(samples)) if samples else 0.0,
        "p50": percentile(samples, 50),
        "p95": percentile(samples, 95),
        "p99": percentile(samples, 99),
    }


def build_report(
    outcomes: Sequence[RequestOutcome],
    rejected: Sequence[ServeRequest],
    duration_ns: int,
    targets: SLOTargets,
) -> Dict:
    """Deterministic SLO report (plain dict, JSON-stable ordering is
    the caller's job via ``sort_keys``)."""
    duration_s = units.to_sec(duration_ns)
    completed = [o for o in outcomes if o.status == "completed"]
    shed = [o for o in outcomes if o.status == "shed"]
    failed = [o for o in outcomes if o.status == "failed"]
    attained = [o for o in completed if o.meets(targets)]
    tokens_out = sum(o.gen_tokens for o in completed)
    offered = len(outcomes) + len(rejected)

    def tenant_names() -> List[str]:
        names = {o.tenant for o in outcomes} | {r.tenant for r in rejected}
        return sorted(names)

    def cause_counts(subset: Sequence[RequestOutcome]) -> Dict[str, int]:
        counts: Dict[str, int] = {}
        for o in subset:
            cause = o.cause or "unspecified"
            counts[cause] = counts.get(cause, 0) + 1
        return dict(sorted(counts.items()))

    def block(subset: Sequence[RequestOutcome]) -> Dict:
        done = [o for o in subset if o.status == "completed"]
        met = [o for o in done if o.meets(targets)]
        return {
            "completed": len(done),
            "slo_attained": len(met),
            "ttft_ms": _latency_block([units.to_ms(o.ttft_ns) for o in done]),
            "tpot_ms": _latency_block(
                [units.to_ms(int(o.tpot_ns)) for o in done]
            ),
            "e2e_ms": _latency_block([units.to_ms(o.e2e_ns) for o in done]),
            # Per-tenant fault attribution: who paid for the faults.
            "shed": sum(1 for o in subset if o.status == "shed"),
            "failed": sum(1 for o in subset if o.status == "failed"),
        }

    report = {
        "targets": {"ttft_ms": targets.ttft_ms, "tpot_ms": targets.tpot_ms},
        "duration_s": duration_s,
        "offered": offered,
        "rejected": len(rejected),
        "throughput_tok_s": tokens_out / duration_s if duration_s else 0.0,
        "completed_rps": len(completed) / duration_s if duration_s else 0.0,
        "goodput_rps": len(attained) / duration_s if duration_s else 0.0,
        "total_preemptions": sum(o.preemptions for o in outcomes),
        # Degradation accounting: goodput vs shed rate is the figure of
        # merit under faults — a policy trades explicit sheds for
        # keeping the survivors inside their SLOs.
        "shed_rate": len(shed) / offered if offered else 0.0,
        "failed_rate": len(failed) / offered if offered else 0.0,
        "shed_causes": cause_counts(shed),
        "failed_causes": cause_counts(failed),
        **block(outcomes),
        "tenants": {
            name: block([o for o in outcomes if o.tenant == name])
            for name in tenant_names()
        },
    }
    return report
