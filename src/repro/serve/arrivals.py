"""Open-loop request arrival generation for the serving simulator.

Arrivals are generated ahead of the run (open loop: the workload does
not slow down when the server saturates — exactly the regime where
"The Serialized Bridge" finds CC knees).  Each tenant draws from its
own deterministic RNG substream keyed on ``(seed, tenant name)`` via
SHA-256 (same construction as the faults subsystem's per-site
substreams), so:

* two processes with the same seed produce byte-identical streams, and
* adding or removing one tenant never perturbs another tenant's
  arrivals or sampled lengths.

Two arrival processes are modeled: ``poisson`` (exponential
inter-arrival gaps) and ``gamma`` (bursty: same mean rate, heavier
clumping controlled by ``burstiness`` = squared coefficient of
variation of the gaps).  Prompt/output lengths come from named
:data:`TRACES` (lognormal fits of chat / code-assist / summarization
shapes).
"""

from __future__ import annotations

import hashlib
import math
from dataclasses import dataclass
from typing import Dict, List, Sequence, Tuple

import numpy as np

from .. import units

ARRIVAL_PROCESSES = ("poisson", "gamma")


class ArrivalError(ValueError):
    """Invalid tenant or trace specification."""


@dataclass(frozen=True)
class LengthTrace:
    """Lognormal prompt/output length model for one workload family."""

    name: str
    prompt_mean: float
    prompt_cv: float  # coefficient of variation of prompt length
    gen_mean: float
    gen_cv: float
    prompt_max: int = 2048
    gen_max: int = 512

    @staticmethod
    def _lognormal(rng: np.random.Generator, mean: float, cv: float) -> float:
        sigma2 = math.log(1.0 + cv * cv)
        mu = math.log(mean) - sigma2 / 2.0
        return float(rng.lognormal(mu, math.sqrt(sigma2)))

    def sample(self, rng: np.random.Generator) -> Tuple[int, int]:
        """Draw one (prompt_tokens, gen_tokens) pair, clamped to >= 1."""
        prompt = int(self._lognormal(rng, self.prompt_mean, self.prompt_cv))
        gen = int(self._lognormal(rng, self.gen_mean, self.gen_cv))
        return (
            max(1, min(prompt, self.prompt_max)),
            max(1, min(gen, self.gen_max)),
        )


TRACES: Dict[str, LengthTrace] = {
    "chat": LengthTrace("chat", prompt_mean=96, prompt_cv=0.6,
                        gen_mean=64, gen_cv=0.7),
    "code": LengthTrace("code", prompt_mean=256, prompt_cv=0.8,
                        gen_mean=96, gen_cv=0.6),
    "summarize": LengthTrace("summarize", prompt_mean=512, prompt_cv=0.5,
                             gen_mean=48, gen_cv=0.5),
}


@dataclass(frozen=True)
class TenantSpec:
    """One tenant's offered load: rate, arrival process, length trace."""

    name: str
    rate_rps: float
    trace: str = "chat"
    process: str = "poisson"
    burstiness: float = 4.0  # gamma only: CV^2 of inter-arrival gaps

    def validate(self) -> None:
        if not self.name:
            raise ArrivalError("tenant name must be non-empty")
        if self.rate_rps <= 0:
            raise ArrivalError(f"tenant {self.name}: rate must be > 0")
        if self.trace not in TRACES:
            raise ArrivalError(
                f"tenant {self.name}: unknown trace {self.trace!r} "
                f"(have {sorted(TRACES)})"
            )
        if self.process not in ARRIVAL_PROCESSES:
            raise ArrivalError(
                f"tenant {self.name}: unknown process {self.process!r}"
            )
        if self.process == "gamma" and self.burstiness <= 1.0:
            raise ArrivalError(
                f"tenant {self.name}: gamma burstiness must be > 1 "
                "(use poisson for burstiness == 1)"
            )


@dataclass(frozen=True)
class ServeRequest:
    """One inference request in the open-loop stream."""

    req_id: int
    tenant: str
    arrival_ns: int
    prompt_tokens: int
    gen_tokens: int

    @property
    def total_tokens(self) -> int:
        return self.prompt_tokens + self.gen_tokens


def tenant_rng(seed: int, tenant: str) -> np.random.Generator:
    """Deterministic per-tenant substream, stable across processes."""
    digest = hashlib.sha256(
        f"repro.serve:{seed}:{tenant}".encode()
    ).digest()
    return np.random.default_rng(int.from_bytes(digest[:8], "little"))


def _interarrival_ns(spec: TenantSpec, rng: np.random.Generator) -> int:
    mean_gap_s = 1.0 / spec.rate_rps
    if spec.process == "poisson":
        gap_s = rng.exponential(mean_gap_s)
    else:  # gamma: shape k = 1/CV^2 keeps the mean, fattens the tail
        shape = 1.0 / spec.burstiness
        gap_s = rng.gamma(shape, mean_gap_s / shape)
    return max(1, int(gap_s * units.NS_PER_SEC))


def generate_arrivals(
    tenants: Sequence[TenantSpec],
    duration_ns: int,
    seed: int,
) -> List[ServeRequest]:
    """Generate the merged, time-ordered open-loop request stream.

    Request ids are assigned after the deterministic merge sort on
    ``(arrival_ns, tenant name, per-tenant index)``, so ids are stable
    even when two tenants collide on the same nanosecond.
    """
    if duration_ns <= 0:
        raise ArrivalError("duration must be positive")
    names = [t.name for t in tenants]
    if len(set(names)) != len(names):
        raise ArrivalError(f"duplicate tenant names in {names}")
    raw: List[Tuple[int, str, int, int, int]] = []
    for spec in tenants:
        spec.validate()
        rng = tenant_rng(seed, spec.name)
        trace = TRACES[spec.trace]
        now = 0
        index = 0
        while True:
            now += _interarrival_ns(spec, rng)
            if now >= duration_ns:
                break
            prompt, gen = trace.sample(rng)
            raw.append((now, spec.name, index, prompt, gen))
            index += 1
    raw.sort(key=lambda row: (row[0], row[1], row[2]))
    return [
        ServeRequest(
            req_id=i, tenant=tenant, arrival_ns=at,
            prompt_tokens=prompt, gen_tokens=gen,
        )
        for i, (at, tenant, _idx, prompt, gen) in enumerate(raw)
    ]


def stream_digest(requests: Sequence[ServeRequest]) -> str:
    """SHA-256 over the canonical stream encoding (determinism checks)."""
    hasher = hashlib.sha256()
    for r in requests:
        hasher.update(
            f"{r.req_id}:{r.tenant}:{r.arrival_ns}:"
            f"{r.prompt_tokens}:{r.gen_tokens}\n".encode()
        )
    return hasher.hexdigest()


def default_tenants(
    total_rate_rps: float,
    count: int,
    process: str = "poisson",
) -> List[TenantSpec]:
    """Split a total offered rate across ``count`` tenants round-robin
    over the named traces (chat, code, summarize, chat, ...)."""
    if count <= 0:
        raise ArrivalError("tenant count must be positive")
    if total_rate_rps <= 0:
        raise ArrivalError("total rate must be positive")
    trace_names = ["chat", "code", "summarize"]
    return [
        TenantSpec(
            name=f"tenant{i}",
            rate_rps=total_rate_rps / count,
            trace=trace_names[i % len(trace_names)],
            process=process,
        )
        for i in range(count)
    ]
