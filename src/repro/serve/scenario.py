"""One-call serving scenarios: spec -> arrivals -> engine -> report.

The CLI (``repro serve``), the ``ext_serving`` grid figure and the
determinism tests all run through :func:`run_scenario`, so a scenario
is defined exactly once and every consumer sees byte-identical
results for the same (spec, config) pair.

Also home to :func:`predicted_step_cc_overhead_ns`, the Sec.-V model's
prediction for the *fixed* CC tax one decode iteration pays (token
round-trip staging/crypto + launch-path extras) — the bar the measured
TTFT p99 inflation is gated against in ``paper_targets.py``.
"""

from __future__ import annotations

import json
from dataclasses import asdict, dataclass
from typing import Dict, List, Optional

from .. import units
from ..config import CopyKind, MemoryKind, SystemConfig
from ..cuda.transfers import plan_copy
from ..sim import Simulator
from ..tdx import GuestContext
from .arrivals import (
    ServeRequest,
    TenantSpec,
    default_tenants,
    generate_arrivals,
    stream_digest,
)
from .lifecycle import DegradationPolicy
from .scheduler import (
    DEFAULT_KV_BUDGET_BYTES,
    EngineResult,
    SchedulerConfig,
    ServingEngine,
)
from .slo import SLOTargets, build_report
from .tuning import EngineTuning
from .telemetry import (
    RequestAttribution,
    ServeTelemetry,
    attribute_requests,
    record_telemetry_spans,
)


@dataclass(frozen=True)
class ScenarioSpec:
    """A complete multi-tenant serving scenario."""

    rate_rps: float = 8.0
    duration_ns: int = 2 * units.NS_PER_SEC
    tenants: int = 2
    policy: str = "fcfs"
    seed: int = 42
    process: str = "poisson"
    max_num_seqs: int = 16
    max_batch_tokens: int = 2048
    preemption: str = "swap"
    kv_budget_bytes: int = DEFAULT_KV_BUDGET_BYTES
    block_tokens: int = 16
    ttft_slo_ms: float = 400.0
    tpot_slo_ms: float = 60.0
    # Degradation policy (repro.serve.lifecycle): scalar knobs so the
    # spec stays a flat, JSON-friendly record.  Defaults are inert.
    deadline_ms: float = 0.0
    ttft_timeout_ms: float = 0.0
    shed_policy: str = "none"
    circuit_breaker: bool = False
    max_queue_depth: int = 0
    max_engine_restarts: int = 2

    def tenant_specs(self) -> List[TenantSpec]:
        return default_tenants(self.rate_rps, self.tenants, self.process)

    def scheduler_config(self) -> SchedulerConfig:
        return SchedulerConfig(
            policy=self.policy,
            max_num_seqs=self.max_num_seqs,
            max_batch_tokens=self.max_batch_tokens,
            preemption=self.preemption,
        )

    def slo_targets(self) -> SLOTargets:
        return SLOTargets(ttft_ms=self.ttft_slo_ms, tpot_ms=self.tpot_slo_ms)

    def degrade(self) -> DegradationPolicy:
        return DegradationPolicy(
            deadline_ms=self.deadline_ms,
            ttft_timeout_ms=self.ttft_timeout_ms,
            shed_policy=self.shed_policy,
            circuit_breaker=self.circuit_breaker,
            max_queue_depth=self.max_queue_depth,
            max_engine_restarts=self.max_engine_restarts,
        )

    def label(self, config: SystemConfig) -> str:
        mode = "cc" if config.cc_on else "base"
        suffix = "-faults" if config.faults.active else ""
        return (
            f"serve-{mode}-{self.policy}-r{self.rate_rps:g}"
            f"-t{self.tenants}-s{self.seed}{suffix}"
        )


def fault_plan_summary(config: SystemConfig) -> Dict:
    """JSON-ready description of the active fault plan (deterministic:
    sites are stored sorted)."""
    sites: Dict[str, Dict] = {}
    for name, site in config.faults.sites:
        entry: Dict = {}
        if site.rate:
            entry["rate"] = site.rate
        if site.schedule:
            entry["schedule"] = list(site.schedule)
        if site.max_faults is not None:
            entry["max_faults"] = site.max_faults
        sites[name] = entry
    return {"active": config.faults.active, "sites": sites}


@dataclass
class ScenarioResult:
    """Everything a scenario run produced (trace kept separately)."""

    spec: ScenarioSpec
    cc: bool
    requests: int
    arrival_digest: str
    engine: EngineResult
    report: Dict
    faults: Optional[Dict] = None
    #: Per-request CC-tax attributions (telemetry runs only).  Kept
    #: out of :func:`scenario_verdict` on purpose: the verdict JSON is
    #: byte-identical whether or not telemetry was enabled.
    attributions: Optional[List[RequestAttribution]] = None

    @property
    def goodput_rps(self) -> float:
        return self.report["goodput_rps"]

    def ttft_p99_ms(self) -> float:
        return self.report["ttft_ms"]["p99"]


def run_scenario(
    spec: ScenarioSpec,
    config: Optional[SystemConfig] = None,
    telemetry: bool = False,
    tuning: Optional[EngineTuning] = None,
):
    """Run one scenario; returns ``(trace, ScenarioResult)``.

    With ``telemetry=True`` the run also produces per-request CC-tax
    attributions (``result.attributions``) and appends the per-request
    tracks + tagged engine ops to the returned trace.  Telemetry is a
    run *parameter*, not part of :class:`ScenarioSpec`: the spec (and
    therefore the verdict JSON, which embeds it) is identical either
    way — the zero-perturbation invariant.

    ``tuning`` follows the same pattern for the CC-mitigation layer:
    it is a run parameter, the spec stays untouched, and the default
    (``None`` — a trivial :class:`~repro.serve.tuning.EngineTuning`)
    reproduces the committed verdict bytes exactly.  Non-trivial
    tunings change engine costs (that is their point) and surface
    themselves under the verdict's ``engine`` stats.
    """
    config = config or SystemConfig.base()
    requests = generate_arrivals(
        spec.tenant_specs(), spec.duration_ns, spec.seed
    )
    engine = ServingEngine(
        scheduler_config=spec.scheduler_config(),
        kv_budget_bytes=spec.kv_budget_bytes,
        block_tokens=spec.block_tokens,
        targets=spec.slo_targets(),
        degrade=spec.degrade(),
        tuning=tuning,
    )
    tel = ServeTelemetry() if telemetry else None
    trace, result = engine.run(
        config, requests, label=spec.label(config), telemetry=tel
    )
    # Rates are computed over the full busy window (arrival window +
    # drain), so an overloaded run reports its saturation throughput
    # rather than dividing by the nominal duration.
    window_ns = max(spec.duration_ns, result.elapsed_ns)
    report = build_report(
        result.outcomes, result.rejected, window_ns, spec.slo_targets()
    )
    attributions = None
    if tel is not None:
        attributions = attribute_requests(result.outcomes, tel, trace)
        record_telemetry_spans(attributions, tel.ops, trace)
    return trace, ScenarioResult(
        spec=spec,
        cc=config.cc_on,
        requests=len(requests),
        arrival_digest=stream_digest(requests),
        engine=result,
        report=report,
        faults=fault_plan_summary(config),
        attributions=attributions,
    )


def scenario_verdict(result: ScenarioResult) -> Dict:
    """Deterministic, JSON-ready verdict for one scenario run."""
    return {
        "command": "serve",
        "spec": asdict(result.spec),
        "cc": result.cc,
        "requests": result.requests,
        "arrival_digest": result.arrival_digest,
        "elapsed_ms": units.to_ms(result.engine.elapsed_ns),
        "engine": dict(sorted(result.engine.stats.items())),
        "faults": result.faults or {"active": False, "sites": {}},
        "slo": result.report,
    }


def verdict_json(result: ScenarioResult) -> str:
    """Byte-stable JSON encoding of the verdict (determinism gate)."""
    return json.dumps(scenario_verdict(result), indent=1, sort_keys=True)


def predicted_step_cc_overhead_ns(
    base_config: SystemConfig,
    cc_config: SystemConfig,
    decode_batch: int = 8,
) -> int:
    """Sec.-V model: fixed CC tax per decode iteration.

    Each iteration crosses the serialized bridge twice — a kernel
    launch (encrypted pushbuffer + occasional doorbell hypercall +
    command-processor auth) and a small D2H token-ids copy (bounce
    staging + AES-GCM + synchronization hypercalls).  This returns the
    config-predicted delta between CC and base for those fixed pieces;
    queueing and roofline terms are identical across modes and cancel.
    """
    token_bytes = max(64, 4 * decode_batch)

    def copy_ns(config: SystemConfig) -> int:
        guest = GuestContext(Simulator(), config)
        plan = plan_copy(
            config, guest, CopyKind.D2H, token_bytes,
            MemoryKind.PINNED, cold=False,
        )
        return plan.total_ns

    copy_delta = copy_ns(cc_config) - copy_ns(base_config)
    launch = cc_config.launch
    launch_delta = (
        launch.klo_cc_extra_ns
        + int(launch.hypercalls_per_launch * cc_config.tdx.td_hypercall_ns)
        + cc_config.command.cc_auth_extra_ns
    )
    return int(copy_delta + launch_delta)


def parse_duration_ns(text: str) -> int:
    """Parse ``2s`` / ``500ms`` / ``1.5s`` into integer nanoseconds."""
    raw = text.strip().lower()
    try:
        if raw.endswith("ms"):
            return int(float(raw[:-2]) * units.NS_PER_SEC / 1000)
        if raw.endswith("s"):
            return int(float(raw[:-1]) * units.NS_PER_SEC)
        return int(float(raw) * units.NS_PER_SEC)
    except ValueError as exc:
        raise ValueError(
            f"cannot parse duration {text!r} (use e.g. '2s' or '500ms')"
        ) from exc
