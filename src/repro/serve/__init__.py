"""Multi-tenant CC inference serving simulator.

The paper dissects single-job CC overheads; this package drives the
same simulated stack with an *open-loop stream of competing requests*
— the serving regime where "The Serialized Bridge" (Yin & Wang, 2026)
finds that per-iteration host<->device round-trips dominate end-to-end
CC cost.  Pipeline:

    arrivals -> admission control -> continuous batching -> backend
             -> KV pager (swap / recompute preemption) -> SLO report

* :mod:`repro.serve.arrivals` — seeded Poisson/Gamma per-tenant
  arrival processes with named prompt/output length traces.
* :mod:`repro.serve.scheduler` — the pure iteration-level batching
  core plus the :class:`ServingEngine` CUDA application that pays
  every simulated CC cost (bounce staging, AES-GCM, hypercalls,
  launch tax) per iteration.
* :mod:`repro.serve.kvpager` — paged KV allocation with
  swap-vs-recompute preemption; swap traffic rides the encrypted
  PCIe path.
* :mod:`repro.serve.slo` — TTFT/TPOT/E2E histograms, goodput and
  degradation accounting (shed/failed rates, per-tenant attribution).
* :mod:`repro.serve.lifecycle` — fault-aware request lifecycle:
  :class:`DegradationPolicy` (deadlines, TTFT timeouts, load shedding,
  circuit breaker, restart budget) and the :class:`LifecycleLedger`
  behind the no-lost-request invariant.
* :mod:`repro.serve.scenario` — one-call scenario runner shared by
  ``repro serve``, the ``ext_serving``/``ext_fault_serving`` figures
  and the tests.
* :mod:`repro.serve.telemetry` — request-scoped telemetry: per-request
  CC-tax attribution in the paper's Sec.-V vocabulary, tenant rollups,
  tail-latency forensics and byte-deterministic JSONL/CSV exports
  (``repro serve report``).
"""

from .arrivals import (
    ARRIVAL_PROCESSES,
    TRACES,
    ArrivalError,
    LengthTrace,
    ServeRequest,
    TenantSpec,
    default_tenants,
    generate_arrivals,
    stream_digest,
    tenant_rng,
)
from .cluster import (
    PLACEMENTS,
    ClusterError,
    ClusterResult,
    ClusterSpec,
    ReplicaOutcome,
    cluster_verdict,
    cluster_verdict_json,
    measure_attestation_ns,
    run_cluster,
)
from .kvpager import KVPager, PagerStats, PreemptPlan, RestorePlan
from .parallelism import LINK_POLICIES, TP_DEGREES, ParallelismSpec
from .lifecycle import (
    COMPLETED,
    FAILED,
    REJECTED,
    SHED,
    SHED_POLICIES,
    TERMINAL_STATES,
    DegradationPolicy,
    LifecycleError,
    LifecycleLedger,
)
from .scenario import (
    ScenarioResult,
    ScenarioSpec,
    fault_plan_summary,
    parse_duration_ns,
    predicted_step_cc_overhead_ns,
    run_scenario,
    scenario_verdict,
    verdict_json,
)
from .scheduler import (
    POLICIES,
    ContinuousBatchingScheduler,
    EngineResult,
    IterationPlan,
    SchedulerConfig,
    ServingEngine,
    SERVE_MODEL,
)
from .slo import RequestOutcome, SLOTargets, SLOTracker, build_report
from .tuning import (
    KV_BITS_CHOICES,
    MAX_D2H_STREAMS,
    MAX_FLUSH_EVERY,
    EngineTuning,
    TuningError,
)
from .telemetry import (
    ATTRIBUTION_COMPONENTS,
    EngineOp,
    NULL_TELEMETRY,
    RequestAttribution,
    ServeTelemetry,
    TelemetryError,
    attribute_requests,
    component_timeline,
    forensics_diff,
    latency_percentiles,
    pick_percentile_request,
    record_telemetry_spans,
    render_forensics_diff,
    render_tail_report,
    requests_csv,
    requests_jsonl,
    tail_report,
    tenant_rollup,
)

__all__ = [
    "ATTRIBUTION_COMPONENTS",
    "ARRIVAL_PROCESSES",
    "ArrivalError",
    "COMPLETED",
    "ClusterError",
    "ClusterResult",
    "ClusterSpec",
    "ContinuousBatchingScheduler",
    "DegradationPolicy",
    "EngineOp",
    "EngineResult",
    "EngineTuning",
    "FAILED",
    "KV_BITS_CHOICES",
    "MAX_D2H_STREAMS",
    "MAX_FLUSH_EVERY",
    "IterationPlan",
    "KVPager",
    "LengthTrace",
    "LINK_POLICIES",
    "LifecycleError",
    "LifecycleLedger",
    "NULL_TELEMETRY",
    "PLACEMENTS",
    "POLICIES",
    "PagerStats",
    "ParallelismSpec",
    "PreemptPlan",
    "REJECTED",
    "ReplicaOutcome",
    "RequestAttribution",
    "RequestOutcome",
    "RestorePlan",
    "SERVE_MODEL",
    "TP_DEGREES",
    "SHED",
    "SHED_POLICIES",
    "SLOTargets",
    "SLOTracker",
    "ScenarioResult",
    "ScenarioSpec",
    "SchedulerConfig",
    "ServeRequest",
    "ServeTelemetry",
    "ServingEngine",
    "TERMINAL_STATES",
    "TRACES",
    "TelemetryError",
    "TenantSpec",
    "TuningError",
    "attribute_requests",
    "build_report",
    "cluster_verdict",
    "cluster_verdict_json",
    "component_timeline",
    "default_tenants",
    "fault_plan_summary",
    "forensics_diff",
    "generate_arrivals",
    "latency_percentiles",
    "measure_attestation_ns",
    "parse_duration_ns",
    "run_cluster",
    "pick_percentile_request",
    "predicted_step_cc_overhead_ns",
    "record_telemetry_spans",
    "render_forensics_diff",
    "render_tail_report",
    "requests_csv",
    "requests_jsonl",
    "run_scenario",
    "scenario_verdict",
    "stream_digest",
    "tail_report",
    "tenant_rollup",
]
