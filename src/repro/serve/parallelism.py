"""Model-parallel topology of one serving replica.

"The Serialized Bridge" (Yin & Wang, 2026) locates the multi-GPU CC
serving tax on the serialized host<->device bridge and the encrypted
peer links under model parallelism.  A :class:`ParallelismSpec` pins a
replica's shape — tensor-parallel degree (ring all-reduces over
:mod:`repro.multigpu` secure links after every layer), pipeline stages
(activation handoffs through the CC staging path), and the link
metadata policy paid when CC is on.  The default ``tp=1, pp=1`` spec is
inert by construction: the engine takes every single-GPU fast path and
its output stays byte-identical to the pre-cluster engine.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..multigpu import LinkSecurity

TP_DEGREES = (1, 2, 4, 8)
LINK_POLICIES = ("naive", "batched")
MAX_WORLD_SIZE = 8


@dataclass(frozen=True)
class ParallelismSpec:
    """Tensor/pipeline-parallel shape of one replica engine."""

    tp: int = 1
    pp: int = 1
    link_policy: str = "naive"

    def validate(self) -> None:
        problems = []
        if self.tp not in TP_DEGREES:
            problems.append(f"tp must be one of {TP_DEGREES}, got {self.tp}")
        if self.pp < 1:
            problems.append(f"pp must be >= 1, got {self.pp}")
        if self.tp * self.pp > MAX_WORLD_SIZE:
            problems.append(
                f"tp*pp must be <= {MAX_WORLD_SIZE}, got {self.tp * self.pp}"
            )
        if self.link_policy not in LINK_POLICIES:
            problems.append(
                f"link_policy must be one of {LINK_POLICIES}, "
                f"got {self.link_policy!r}"
            )
        if problems:
            raise ValueError("invalid ParallelismSpec: " + "; ".join(problems))

    @property
    def world_size(self) -> int:
        return self.tp * self.pp

    @property
    def trivial(self) -> bool:
        """True when the spec adds no parallel machinery at all."""
        return self.tp == 1 and self.pp == 1

    def link_security(self, cc_on: bool) -> LinkSecurity:
        """Peer links are plaintext in base mode (one trust domain) and
        pay counter-mode metadata under CC."""
        if not cc_on:
            return LinkSecurity.NONE
        if self.link_policy == "batched":
            return LinkSecurity.BATCHED
        return LinkSecurity.NAIVE
