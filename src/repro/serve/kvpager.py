"""Paged KV-cache allocation with preemption for the serving layer.

Wraps the exact-accounting :class:`repro.llm.kvcache.PagedKVCache` with
the two mechanisms a multi-tenant server needs when the block pool
runs dry:

* **swap** — evict a victim's KV blocks to host memory and bring them
  back later.  The byte traffic is returned to the caller (the serving
  engine) which routes it through the simulated encrypted PCIe path,
  so under CC a preemption costs bounce-buffer staging + AES-GCM +
  hypercalls both ways — the mechanism "The Serialized Bridge" blames
  for CC's early throughput knee.
* **recompute** — drop the victim's blocks and re-run prefill over the
  tokens it had accumulated when it is rescheduled (no PCIe traffic,
  but compute paid again and prefill-budget pressure).

The pager itself is pure accounting (no simulation imports): the
engine pays the costs, property tests drive the pager directly.
Invariant: at drain (no active and no preempted sequences) the
allocator balance is exactly zero — every block back on the free list.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List

from ..llm.kvcache import KVCacheError, PagedKVCache

PREEMPTION_MODES = ("swap", "recompute")


@dataclass
class PagerStats:
    """Cumulative preemption accounting for one run."""

    preemptions: int = 0
    restores: int = 0
    swap_out_bytes: int = 0
    swap_in_bytes: int = 0
    recompute_tokens: int = 0
    # Engine crash-and-restart accounting: a crash drops *all* KV
    # (resident and swapped — the session key rotates with the
    # re-attestation, so swapped copies are undecryptable too).
    crashes: int = 0
    crash_lost_tokens: int = 0

    def as_dict(self) -> Dict[str, int]:
        return {
            "preemptions": self.preemptions,
            "restores": self.restores,
            "swap_out_bytes": self.swap_out_bytes,
            "swap_in_bytes": self.swap_in_bytes,
            "recompute_tokens": self.recompute_tokens,
            "crashes": self.crashes,
            "crash_lost_tokens": self.crash_lost_tokens,
        }


@dataclass(frozen=True)
class PreemptPlan:
    """What the engine must pay to evict one sequence."""

    seq_id: int
    tokens: int
    swap_bytes: int  # 0 in recompute mode


@dataclass(frozen=True)
class RestorePlan:
    """What the engine must pay to bring one sequence back."""

    seq_id: int
    tokens: int
    swap_bytes: int  # 0 in recompute mode
    recompute_tokens: int  # 0 in swap mode


class KVPager:
    """Block allocator + preemption policy over a fixed HBM budget."""

    def __init__(
        self,
        capacity_bytes: int,
        block_tokens: int,
        kv_bytes_per_token: int,
        mode: str = "swap",
    ) -> None:
        if mode not in PREEMPTION_MODES:
            raise KVCacheError(
                f"unknown preemption mode {mode!r} (have {PREEMPTION_MODES})"
            )
        self.cache = PagedKVCache(capacity_bytes, block_tokens, kv_bytes_per_token)
        self.mode = mode
        self.stats = PagerStats()
        # seq id -> token count held while evicted (insertion order =
        # eviction order, used for FIFO restore).
        self._evicted: Dict[int, int] = {}
        # Sequences whose KV was lost to an engine crash: their restore
        # is a full chunked recompute even in swap mode (the swapped
        # copy died with the session key).
        self._crash_lost: set = set()

    # -- queries -----------------------------------------------------------

    @property
    def block_tokens(self) -> int:
        return self.cache.block_tokens

    @property
    def capacity_tokens(self) -> int:
        return self.cache.num_blocks * self.cache.block_tokens

    @property
    def free_blocks(self) -> int:
        return self.cache.free_blocks

    @property
    def active_ids(self) -> List[int]:
        return sorted(self.cache._tables)

    @property
    def evicted_ids(self) -> List[int]:
        return list(self._evicted)

    def fits(self, total_tokens: int) -> bool:
        """Admission control: could the request *ever* be resident?"""
        return self.cache.blocks_needed(total_tokens) <= self.cache.num_blocks

    def can_admit(self, prompt_tokens: int) -> bool:
        return self.cache.can_admit(prompt_tokens)

    def seq_bytes(self, tokens: int) -> int:
        return tokens * self.cache.kv_bytes_per_token

    def decode_blocks_needed(self, seq_ids: List[int]) -> int:
        """Blocks the next decode step will allocate: one per resident
        sequence whose length is flush with a block boundary."""
        return sum(
            1
            for sid in seq_ids
            if self.cache.sequence_length(sid) % self.cache.block_tokens == 0
        )

    def drained(self) -> bool:
        return self.cache.num_sequences == 0 and not self._evicted

    # -- lifecycle ---------------------------------------------------------

    def admit(self, seq_id: int, prompt_tokens: int) -> None:
        self.cache.admit(seq_id, prompt_tokens)

    def append_token(self, seq_id: int) -> bool:
        return self.cache.append_token(seq_id)

    def release(self, seq_id: int) -> int:
        return self.cache.release(seq_id)

    def sequence_length(self, seq_id: int) -> int:
        return self.cache.sequence_length(seq_id)

    # -- preemption --------------------------------------------------------

    def preempt(self, seq_id: int) -> PreemptPlan:
        """Evict a resident sequence, freeing all its blocks."""
        if seq_id in self._evicted:
            raise KVCacheError(f"sequence {seq_id} already evicted")
        tokens = self.cache.sequence_length(seq_id)
        self.cache.release(seq_id)
        self._evicted[seq_id] = tokens
        self.stats.preemptions += 1
        swap_bytes = self.seq_bytes(tokens) if self.mode == "swap" else 0
        self.stats.swap_out_bytes += swap_bytes
        return PreemptPlan(seq_id=seq_id, tokens=tokens, swap_bytes=swap_bytes)

    def evicted_tokens(self, seq_id: int) -> int:
        if seq_id not in self._evicted:
            raise KVCacheError(f"sequence {seq_id} is not evicted")
        return self._evicted[seq_id]

    def can_restore(self, seq_id: int) -> bool:
        needed = self.cache.blocks_needed(self.evicted_tokens(seq_id))
        return needed <= self.cache.free_blocks

    def restore_is_recompute(self, seq_id: int) -> bool:
        """Will restoring this sequence re-run prefill (vs swap-in)?"""
        return self.mode == "recompute" or seq_id in self._crash_lost

    def restore(self, seq_id: int) -> RestorePlan:
        """Re-admit an evicted sequence at its saved length."""
        if not self.can_restore(seq_id):
            raise KVCacheError(f"no room to restore sequence {seq_id}")
        recompute_restore = self.restore_is_recompute(seq_id)
        tokens = self._evicted.pop(seq_id)
        self._crash_lost.discard(seq_id)
        self.cache.admit(seq_id, tokens)
        self.stats.restores += 1
        swap_bytes = 0 if recompute_restore else self.seq_bytes(tokens)
        recompute = tokens if recompute_restore else 0
        self.stats.swap_in_bytes += swap_bytes
        self.stats.recompute_tokens += recompute
        return RestorePlan(
            seq_id=seq_id,
            tokens=tokens,
            swap_bytes=swap_bytes,
            recompute_tokens=recompute,
        )

    # -- fault paths -------------------------------------------------------

    def drop_evicted(self, seq_id: int) -> int:
        """Discard an evicted sequence outright (cancellation): its
        swapped copy is released without ever being brought back."""
        tokens = self.evicted_tokens(seq_id)
        del self._evicted[seq_id]
        self._crash_lost.discard(seq_id)
        return tokens

    def crash(self) -> Dict[int, int]:
        """Engine crash: every block and every swapped copy is lost.

        Returns ``{seq_id: tokens}`` for all sequences that were live
        (resident or evicted) so the scheduler can requeue survivors;
        the allocator is left fully drained (balance zero).
        """
        lost: Dict[int, int] = {}
        for sid in self.active_ids:
            lost[sid] = self.cache.sequence_length(sid)
            self.cache.release(sid)
        for sid, tokens in self._evicted.items():
            lost[sid] = tokens
        self._evicted.clear()
        self._crash_lost.clear()
        self.stats.crashes += 1
        self.stats.crash_lost_tokens += sum(lost.values())
        return lost

    def mark_crash_lost(self, seq_id: int, tokens: int) -> None:
        """Requeue a crash survivor: it sits in the evicted queue but
        its restore is forced to chunked recompute in every mode."""
        if seq_id in self._evicted or seq_id in self.cache._tables:
            raise KVCacheError(f"sequence {seq_id} is still live")
        self._evicted[seq_id] = tokens
        self._crash_lost.add(seq_id)

    # -- invariants --------------------------------------------------------

    def check_invariants(self) -> None:
        self.cache.check_invariants()
        overlap = set(self._evicted) & set(self.cache._tables)
        assert not overlap, f"sequences both resident and evicted: {overlap}"
        stray = self._crash_lost - set(self._evicted)
        assert not stray, f"crash-lost sequences not queued: {stray}"
        if self.drained():
            assert self.cache.free_blocks == self.cache.num_blocks, (
                "allocator balance nonzero at drain"
            )
