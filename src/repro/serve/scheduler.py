"""Admission control + continuous-batching scheduler + serving engine.

Two layers, deliberately separated:

* :class:`ContinuousBatchingScheduler` — the *pure* decision core
  (iteration-level batching à la Orca/vLLM).  It owns the waiting /
  running / warming / evicted request states and a :class:`KVPager`,
  and each call to :meth:`plan` produces one iteration's worth of
  decisions (preemptions, restores, admissions, prefill-token chunks,
  decode batch) while maintaining the invariants the property tests
  pin down: the token budget ``prefill + decode <= max_batch_tokens``
  is never exceeded, decode never runs out of KV blocks, no request is
  starved under FCFS, and the allocator balance is zero at drain.  No
  simulation imports — tests drive it directly.
* :class:`ServingEngine` — the CUDA-runtime application that *pays*
  for each plan through the simulated CC stack: prompt uploads and
  per-step token downloads through the (bounce-buffered, AES-GCM)
  PCIe path, prefill/decode kernels via the
  :class:`~repro.llm.backends.VLLMBackend` roofline, per-iteration
  scheduler bookkeeping on the guest CPU, and KV swap traffic for
  preemptions.  Under CC every one of those arrows crosses the
  "serialized bridge", which is what moves the throughput knee.

Scheduling policies: ``fcfs`` (arrival order) and ``spf``
(shortest-prompt-first).  Both are head-of-line: if the next candidate
does not fit (seats, KV blocks, token budget), admission stops rather
than skipping it — the no-starvation guarantee under FCFS.

Recompute-mode restores re-enter through a *warming* state: their
recomputed prefill is chunked across iterations against the token
budget (chunked prefill), so even a sequence longer than
``max_batch_tokens`` makes progress without ever violating the budget.
"""

from __future__ import annotations

import dataclasses
from dataclasses import dataclass, field
from typing import Dict, Generator, List, Optional

import numpy as np

from .. import units
from ..config import SystemConfig
from ..cuda import CudaRuntime, run_app
from ..faults import BOUNCE_POOL, FatalFault
from ..faults import SPDM as SPDM_SITE
from ..llm.backends import VLLM_STEP_SCHED_NS, VLLMBackend
from ..llm.config import BF16, QUANTS, LlamaConfig, QuantConfig
from ..multigpu import MultiGPUNode, run_ring_all_reduce
from ..tdx.spdm import attest_gpu
from .arrivals import ServeRequest
from .parallelism import ParallelismSpec
from .kvpager import KVPager, PreemptPlan, RestorePlan
from .lifecycle import (
    COMPLETED,
    FAILED,
    REJECTED,
    SHED,
    DegradationPolicy,
    LifecycleLedger,
)
from .slo import RequestOutcome, SLOTargets, SLOTracker
from .telemetry import NULL_TELEMETRY, ServeTelemetry
from .tuning import EngineTuning

POLICIES = ("fcfs", "spf")

# Host<->device staging chunk for KV swap traffic (per memcpy call).
SWAP_CHUNK_BYTES = 1 * units.MiB


class SchedulerError(ValueError):
    pass


@dataclass(frozen=True)
class SchedulerConfig:
    """Continuous-batching knobs."""

    policy: str = "fcfs"
    max_num_seqs: int = 16
    max_batch_tokens: int = 2048
    preemption: str = "swap"  # or "recompute"

    def validate(self) -> None:
        if self.policy not in POLICIES:
            raise SchedulerError(
                f"unknown policy {self.policy!r} (have {POLICIES})"
            )
        if self.max_num_seqs < 1:
            raise SchedulerError("max_num_seqs must be >= 1")
        if self.max_batch_tokens <= self.max_num_seqs:
            raise SchedulerError(
                "max_batch_tokens must exceed max_num_seqs "
                "(every resident sequence decodes one token per step)"
            )
        if self.preemption not in ("swap", "recompute"):
            raise SchedulerError(
                f"unknown preemption mode {self.preemption!r}"
            )


@dataclass
class IterationPlan:
    """One engine iteration's decisions (costs paid by the engine)."""

    preempted: List[PreemptPlan] = field(default_factory=list)
    restored: List[RestorePlan] = field(default_factory=list)
    admitted: List[ServeRequest] = field(default_factory=list)
    # Prefill tokens this iteration: admitted prompts + warming chunks.
    prefill_tokens: int = 0
    decode_ids: List[int] = field(default_factory=list)

    @property
    def busy(self) -> bool:
        return bool(
            self.preempted
            or self.restored
            or self.admitted
            or self.prefill_tokens
            or self.decode_ids
        )


class ContinuousBatchingScheduler:
    """Pure iteration-level batching core over a :class:`KVPager`."""

    def __init__(self, config: SchedulerConfig, pager: KVPager) -> None:
        config.validate()
        if config.preemption != pager.mode:
            raise SchedulerError(
                f"scheduler preemption {config.preemption!r} does not "
                f"match pager mode {pager.mode!r}"
            )
        self.config = config
        self.pager = pager
        self.waiting: List[ServeRequest] = []
        self.running: Dict[int, ServeRequest] = {}  # admission-ordered
        self.warming: Dict[int, int] = {}  # sid -> pending recompute tokens
        self.evicted: List[int] = []  # FIFO restore order
        self.rejected: List[ServeRequest] = []
        self.requests: Dict[int, ServeRequest] = {}
        self.preempt_counts: Dict[int, int] = {}
        self.admit_order: List[int] = []  # admission history (tests)
        self._order: Dict[int, int] = {}  # sid -> admission index
        self._next_order = 0

    # -- queries -----------------------------------------------------------

    def has_work(self) -> bool:
        return bool(self.waiting or self.running or self.warming or self.evicted)

    @property
    def resident_count(self) -> int:
        return len(self.running) + len(self.warming)

    # -- admission control -------------------------------------------------

    def submit(self, request: ServeRequest) -> bool:
        """Admission control at arrival: reject requests that could
        never run (KV footprint over capacity, or prompt that cannot
        fit the token budget alongside a single decode slot)."""
        if (
            not self.pager.fits(request.total_tokens)
            or request.prompt_tokens + 1 > self.config.max_batch_tokens
        ):
            self.rejected.append(request)
            return False
        self.waiting.append(request)
        return True

    def _candidates(self) -> List[ServeRequest]:
        if self.config.policy == "spf":
            return sorted(
                self.waiting, key=lambda r: (r.prompt_tokens, r.req_id)
            )
        return list(self.waiting)

    # -- the iteration planner ---------------------------------------------

    def _decode_block_needs(self) -> int:
        """Blocks the coming decode steps may allocate.  Warming
        sequences are counted too: they do not decode yet, but their
        first decode after warmup must never find the pool empty."""
        ids = list(self.running) + list(self.warming)
        return self.pager.decode_blocks_needed(ids)

    def _headroom_deficit(self) -> int:
        """Blocks still missing for the coming decode step."""
        return self._decode_block_needs() - self.pager.free_blocks

    def _preempt_for_headroom(self, plan: IterationPlan) -> None:
        """Evict most-recently-admitted residents until the next decode
        step cannot run out of blocks."""
        while self._headroom_deficit() > 0:
            victims = sorted(
                list(self.running) + list(self.warming),
                key=lambda sid: self._order[sid],
            )
            victim = victims[-1]
            self.running.pop(victim, None)
            self.warming.pop(victim, None)
            plan.preempted.append(self.pager.preempt(victim))
            self.evicted.append(victim)
            self.preempt_counts[victim] = self.preempt_counts.get(victim, 0) + 1

    def _fits_next(self, prompt_blocks: int, boundary: bool) -> bool:
        """Would admitting a member leave decode headroom intact?"""
        free_after = self.pager.free_blocks - prompt_blocks
        needed_after = self._decode_block_needs() + (1 if boundary else 0)
        return free_after >= needed_after

    def _mark_admitted(self, sid: int) -> None:
        self._order[sid] = self._next_order
        self._next_order += 1

    def plan(self, admit: bool = True) -> IterationPlan:
        """Produce (and commit) one iteration's scheduling decisions.

        ``admit=False`` pauses new admissions (circuit breaker open:
        the running batch keeps draining, evicted sequences may still
        restore, but nothing leaves the wait queue).
        """
        plan = IterationPlan()
        budget = self.config.max_batch_tokens

        # 1. Decode headroom for what is already resident.
        self._preempt_for_headroom(plan)

        # 2. Chunked recompute prefill for warming sequences (FIFO).
        # One budget token is reserved per chunk for the decode slot the
        # sequence occupies as soon as its warmup completes.
        for sid in list(self.warming):
            room = budget - len(self.running) - plan.prefill_tokens - 1
            if room <= 0:
                break
            chunk = min(self.warming[sid], room)
            self.warming[sid] -= chunk
            plan.prefill_tokens += chunk
            if self.warming[sid] == 0:
                del self.warming[sid]
                self.running[sid] = self.requests[sid]

        # 3. Restores, FIFO over eviction order (they were admitted
        #    before anything still waiting).
        while self.evicted:
            sid = self.evicted[0]
            tokens = self.pager.evicted_tokens(sid)
            # Crash survivors recompute even in swap mode: their
            # swapped KV died with the session key.
            recompute_restore = self.pager.restore_is_recompute(sid)
            if self.resident_count + 1 > self.config.max_num_seqs:
                break
            if not self.pager.can_restore(sid) or not self._fits_next(
                self.pager.cache.blocks_needed(tokens),
                tokens % self.pager.block_tokens == 0,
            ):
                break
            if recompute_restore:
                # Needs at least one token of budget to start warming
                # (plus the reserved decode slot).
                if budget - len(self.running) - plan.prefill_tokens - 1 < 1:
                    break
            else:
                if plan.prefill_tokens + len(self.running) + 1 > budget:
                    break
            self.evicted.pop(0)
            restore = self.pager.restore(sid)
            plan.restored.append(restore)
            if recompute_restore:
                room = budget - len(self.running) - plan.prefill_tokens - 1
                chunk = min(restore.recompute_tokens, room)
                remaining = restore.recompute_tokens - chunk
                plan.prefill_tokens += chunk
                if remaining:
                    self.warming[sid] = remaining
                else:
                    self.running[sid] = self.requests[sid]
            else:
                self.running[sid] = self.requests[sid]

        # 4. Admissions from the wait queue (head-of-line per policy).
        for request in self._candidates() if admit else ():
            if self.resident_count + 1 > self.config.max_num_seqs:
                break
            boundary = request.prompt_tokens % self.pager.block_tokens == 0
            if not self.pager.can_admit(request.prompt_tokens):
                break
            if not self._fits_next(
                self.pager.cache.blocks_needed(request.prompt_tokens), boundary
            ):
                break
            if (
                plan.prefill_tokens
                + request.prompt_tokens
                + len(self.running)
                + 1
                > budget
            ):
                break
            self.waiting.remove(request)
            self.pager.admit(request.req_id, request.prompt_tokens)
            self.requests[request.req_id] = request
            self._mark_admitted(request.req_id)
            self.admit_order.append(request.req_id)
            self.running[request.req_id] = request
            plan.admitted.append(request)
            plan.prefill_tokens += request.prompt_tokens

        plan.decode_ids = list(self.running)
        assert plan.prefill_tokens + len(plan.decode_ids) <= budget, (
            "batch token budget exceeded"
        )
        return plan

    # -- fault paths -------------------------------------------------------

    def cancel(self, sid: int) -> None:
        """Terminate a request wherever it is (deadline shed, engine
        give-up): its KV blocks / swapped copy are released outright."""
        if sid in self.running:
            del self.running[sid]
            self.pager.release(sid)
        elif sid in self.warming:
            del self.warming[sid]
            self.pager.release(sid)
        elif sid in self.evicted:
            self.evicted.remove(sid)
            self.pager.drop_evicted(sid)
        else:
            raise SchedulerError(f"cannot cancel unknown sequence {sid}")

    def crash_recover(self) -> List[int]:
        """Engine crash: all KV is lost; requeue every live sequence
        for chunked recompute (admission order preserved).  Returns the
        survivor ids."""
        lost = self.pager.crash()
        self.running.clear()
        self.warming.clear()
        self.evicted.clear()
        survivors = sorted(lost, key=lambda sid: self._order[sid])
        for sid in survivors:
            self.pager.mark_crash_lost(sid, lost[sid])
            self.evicted.append(sid)
        return survivors

    def finish_step(self, decode_ids: List[int]) -> List[int]:
        """Account one generated token per decoding sequence; release
        and return the sequences that just finished."""
        finished = []
        for sid in decode_ids:
            self.pager.append_token(sid)
            request = self.requests[sid]
            generated = self.pager.sequence_length(sid) - request.prompt_tokens
            if generated >= request.gen_tokens:
                self.pager.release(sid)
                del self.running[sid]
                finished.append(sid)
        return finished


# -- the engine: pays for plans through the simulated CC stack -------------

# A ~1B-parameter serving model: decode steps are ~1 ms, so the
# fixed per-step CC costs (bounce staging + AES-GCM on the token
# round-trip, launch hypercalls, command-processor auth) are a
# double-digit fraction of the iteration — the regime where the
# serialized bridge moves the throughput knee.
SERVE_MODEL = LlamaConfig(
    name="llama-serve-1b",
    num_layers=16,
    hidden_size=2048,
    num_heads=16,
    num_kv_heads=8,
    head_dim=128,
    intermediate_size=5632,
    vocab_size=32000,
)

# KV budget: small enough that a busy multi-tenant mix actually pages.
DEFAULT_KV_BUDGET_BYTES = 96 * units.MiB


@dataclass
class EngineResult:
    """Everything one serving run produced."""

    outcomes: List[RequestOutcome]
    rejected: List[ServeRequest]
    elapsed_ns: int
    stats: Dict[str, int]


class _EngineCrash(Exception):
    """Internal: a fatal fault exhausted the engine-level retry budget;
    the iteration aborts and the crash-and-restart path takes over."""

    def __init__(self, site: str) -> None:
        super().__init__(site)
        self.site = site


class ServingEngine:
    """Continuous-batching server as a CUDA-runtime application.

    Every cost-paying path (uploads, prefill/decode launches, token
    D2H, KV swaps) runs under the guest's :class:`FaultInjector`; a
    :class:`DegradationPolicy` decides how the engine degrades when
    faults land (shed vs stall vs crash-and-restart).  With an inactive
    fault plan and the default inert policy the engine is
    byte-identical to the pre-fault-layer build (zero-perturbation
    guarantee)."""

    def __init__(
        self,
        scheduler_config: Optional[SchedulerConfig] = None,
        model: Optional[LlamaConfig] = None,
        quant: QuantConfig = BF16,
        kv_budget_bytes: int = DEFAULT_KV_BUDGET_BYTES,
        block_tokens: int = 16,
        targets: Optional[SLOTargets] = None,
        degrade: Optional[DegradationPolicy] = None,
        parallelism: Optional[ParallelismSpec] = None,
        tuning: Optional[EngineTuning] = None,
    ) -> None:
        self.scheduler_config = scheduler_config or SchedulerConfig()
        self.scheduler_config.validate()
        self.tuning = tuning or EngineTuning()
        self.tuning.validate()
        if self.tuning.quant != BF16.name:
            # The quantization mitigation overrides the backend quant.
            quant = QUANTS[self.tuning.quant]
        self.model = model or SERVE_MODEL
        self.backend = VLLMBackend(model=self.model, quant=quant)
        self.kv_budget_bytes = kv_budget_bytes
        self.block_tokens = block_tokens
        self.targets = targets or SLOTargets()
        self.degrade = degrade or DegradationPolicy()
        self.degrade.validate()
        self.parallelism = parallelism or ParallelismSpec()
        self.parallelism.validate()

    def run(
        self,
        config: SystemConfig,
        requests: List[ServeRequest],
        label: str = "serve",
        telemetry: Optional[ServeTelemetry] = None,
    ):
        """Boot a machine and serve the stream; returns (trace, result).

        ``telemetry``, when given, collects per-request lifecycle marks
        and tagged engine operations (pure bookkeeping — the simulated
        timings are byte-identical with or without it)."""
        return run_app(
            self.app, config, label=label,
            requests=requests, telemetry=telemetry,
        )

    def app(
        self,
        rt: CudaRuntime,
        requests: List[ServeRequest],
        telemetry: Optional[ServeTelemetry] = None,
    ) -> Generator:
        config = rt.config
        metrics = rt.guest.metrics
        tel = telemetry if telemetry is not None else NULL_TELEMETRY
        tel.bind_clock(lambda: rt.sim.now)
        degrade = self.degrade
        retry = config.retry
        faults_on = config.faults.active
        tun = self.tuning
        pager = KVPager(
            self.kv_budget_bytes,
            self.block_tokens,
            self.model.kv_bytes_per_token(tun.kv_bits),
            mode=self.scheduler_config.preemption,
        )
        sched = ContinuousBatchingScheduler(self.scheduler_config, pager)
        tracker = SLOTracker(metrics, self.targets)
        ledger = LifecycleLedger()

        prompt_host = yield from rt.malloc_host(4 * units.MiB)
        token_host = yield from rt.malloc_host(64 * units.KiB)
        scratch_dev = yield from rt.malloc(16 * units.MiB)
        swap_host = yield from rt.malloc_host(SWAP_CHUNK_BYTES)
        swap_dev = yield from rt.malloc(SWAP_CHUNK_BYTES)

        # Mitigation knobs (repro.serve.tuning).  Every tuned path
        # below is gated so a trivial tuning executes the exact
        # pre-tuning call sequence — byte-identical verdicts.
        fuse_steps = tun.fuse_step_kernels
        flush_every = tun.token_flush_every
        overlap_d2h = tun.d2h_streams > 1
        batched_flush = flush_every > 1 or overlap_d2h
        swap_in_host = swap_host
        if tun.split_swap_staging:
            # Direction-stable KV-swap staging: a dedicated swap-in
            # buffer means neither pinned bounce buffer ever flips
            # transfer direction, so the per-flip page conversion is
            # paid once instead of per preemption/restore cycle.
            swap_in_host = yield from rt.malloc_host(SWAP_CHUNK_BYTES)
        d2h_stream = None
        token_bufs = [token_host]
        if overlap_d2h:
            d2h_stream = rt.create_stream()
            for _ in range(tun.d2h_streams - 1):
                token_bufs.append(
                    (yield from rt.malloc_host(64 * units.KiB))
                )

        # Model parallelism: a non-trivial spec routes every inter-GPU
        # transfer through the secure-link substrate (TP ring
        # all-reduces) and the CC staging bridge (PP activation
        # handoffs).  The tp=1/pp=1 path allocates nothing and pays
        # nothing — byte-identical to the single-GPU engine.
        par = self.parallelism
        hidden = self.model.hidden_size
        tp_node = MultiGPUNode(num_gpus=par.tp) if par.tp > 1 else None
        link_sec = par.link_security(config.cc_on)
        pp_host = pp_dev = None
        if par.pp > 1:
            pp_bytes = max(
                64 * units.KiB,
                (self.scheduler_config.max_batch_tokens
                 + self.scheduler_config.max_num_seqs) * hidden * 2,
            )
            pp_host = yield from rt.malloc_host(pp_bytes)
            pp_dev = yield from rt.malloc(pp_bytes)
        tp_comm_ns = 0
        pp_comm_ns = 0

        pending = sorted(requests, key=lambda r: (r.arrival_ns, r.req_id))
        index = 0
        start = rt.sim.now
        first_token: Dict[int, int] = {}
        iterations = 0
        decode_steps = 0
        restarts = 0
        storms = 0
        breaker_trips = 0
        engine_retries = 0
        retry_pressure = False
        breaker_open = False
        # Batched/overlapped token-flush state (inert when trivial).
        pending_tokens = 0
        pending_ids: set = set()
        pending_first: List[int] = []
        pending_done: List[int] = []
        steps_since_flush = 0
        inflight: List = []  # (done event, firsts, dones) per async flush
        flush_buf = 0
        token_flushes = 0
        fused_launches = 0

        queue_gauge = metrics.gauge("serve.queue_depth")
        kv_gauge = metrics.gauge("serve.kv_used_blocks")
        running_gauge = metrics.gauge("serve.running_seqs")
        preempt_counter = metrics.counter("serve.preemptions")
        swap_counter = metrics.counter("serve.swap_bytes")

        def terminal(request, status, cause, when, first=None):
            """Record one terminal state (exactly once, via the ledger)."""
            ledger.finish(request.req_id, status, cause)
            # SHED span taxonomy: a zero-duration "serve"-layer span per
            # policy/fault termination, next to the "recovery" spans the
            # runtime emits for retried operations.
            rt.guest.spans.record(
                f"{status}:{cause}",
                "serve",
                when,
                0,
                req=request.req_id,
                tenant=request.tenant,
            )
            tracker.observe(
                RequestOutcome(
                    req_id=request.req_id,
                    tenant=request.tenant,
                    arrival_ns=request.arrival_ns,
                    first_token_ns=first,
                    finish_ns=when,
                    prompt_tokens=request.prompt_tokens,
                    gen_tokens=request.gen_tokens,
                    preemptions=sched.preempt_counts.get(request.req_id, 0),
                    status=status,
                    cause=cause,
                )
            )

        def paid(make_op):
            """Run one cost-paying op under the engine-level retry loop.

            The runtime below already retries transient faults
            per-primitive; a :class:`FatalFault` escaping it means that
            budget is gone.  The engine then replays the whole op (a
            fresh fault draw — transient storms pass) with
            ``RetryPolicy`` backoff in sim time; exhaustion escalates
            to :class:`_EngineCrash` and the restart path."""
            nonlocal engine_retries
            attempt = 1
            while True:
                try:
                    return (yield from make_op())
                except FatalFault as exc:
                    if attempt >= retry.max_attempts:
                        raise _EngineCrash(exc.site) from exc
                    engine_retries += 1
                    backoff_start = rt.sim.now
                    yield rt.sim.timeout(retry.backoff_ns(attempt))
                    rt.guest.record_recovery(
                        exc.site, backoff_start, attempt, "engine-retry"
                    )
                    attempt += 1

        def deliver(when, firsts, dones):
            """Client-visible token delivery: stamp first tokens and
            record completions.  On the un-tuned path this runs right
            after each step's token D2H; batched/overlapped flushes
            defer it to the flush's host-sync point."""
            for sid in firsts:
                first_token.setdefault(sid, when)
            for sid in dones:
                request = sched.requests[sid]
                ledger.finish(sid, COMPLETED)
                tracker.observe(
                    RequestOutcome(
                        req_id=sid,
                        tenant=request.tenant,
                        arrival_ns=request.arrival_ns,
                        first_token_ns=first_token[sid],
                        finish_ns=when,
                        prompt_tokens=request.prompt_tokens,
                        gen_tokens=request.gen_tokens,
                        preemptions=sched.preempt_counts.get(sid, 0),
                    )
                )

        def drain_inflight_one():
            """Host-sync the oldest outstanding async token flush."""
            event, firsts, dones = inflight.pop(0)
            if not event.processed:
                yield event
            deliver(rt.sim.now, firsts, dones)

        def flush_tokens():
            """Pay one coalesced token D2H for every decode step since
            the last flush (fewer encrypted bridge transits), then
            deliver the deferred records — immediately on the blocking
            path, at buffer-reuse/drain time on the overlapped path."""
            nonlocal pending_tokens, steps_since_flush, flush_buf
            nonlocal token_flushes
            if not pending_tokens:
                return
            ids = tuple(sorted(pending_ids))
            size = 4 * pending_tokens
            if overlap_d2h:
                while len(inflight) >= len(token_bufs):
                    yield from drain_inflight_one()
                buf = token_bufs[flush_buf % len(token_bufs)]
                flush_buf += 1
                # The flush DMA orders after this iteration's decode
                # kernel on the compute stream; the synchronous CPU
                # staging/crypto leg is paid inline regardless (single
                # OpenSSL worker under CC).
                rt.stream_wait_event(d2h_stream, rt.default_stream.tail)
                with tel.op("token_d2h", ids):
                    done = yield from paid(lambda: rt.memcpy_async(
                        buf, scratch_dev, d2h_stream, size
                    ))
                inflight.append(
                    (done, list(pending_first), list(pending_done))
                )
            else:
                with tel.op("token_d2h", ids):
                    yield from paid(lambda: rt.memcpy(
                        token_host, scratch_dev, size
                    ))
                deliver(rt.sim.now, list(pending_first), list(pending_done))
            token_flushes += 1
            pending_first.clear()
            pending_done.clear()
            pending_ids.clear()
            pending_tokens = 0
            steps_since_flush = 0

        def abandon_pending(when):
            """Crash/give-up path: the engine stops paying copies, but
            every device-complete token delivery must still be
            accounted (the ledger's exactly-once guarantee)."""
            nonlocal pending_tokens, steps_since_flush
            for _event, firsts, dones in inflight:
                deliver(when, firsts, dones)
            inflight.clear()
            deliver(when, pending_first, pending_done)
            pending_first.clear()
            pending_done.clear()
            pending_ids.clear()
            pending_tokens = 0
            steps_since_flush = 0

        def resident_ids():
            """Requests currently paying engine costs (telemetry tags).

            With telemetry off the tags are discarded unseen, so skip
            the per-iteration set union + sort entirely.
            """
            if not tel.enabled:
                return ()
            return tuple(sorted(
                set(sched.running) | set(sched.warming) | set(sched.evicted)
            ))

        def reattest(action):
            """Session teardown + full SPDM re-attestation (the KV keys
            rotate, but resident KV in HBM survives — only a *crash*
            loses KV)."""
            with tel.op("reattest", resident_ids()):
                restart_start = rt.sim.now
                yield rt.sim.timeout(config.fault_model.spdm_restart_ns)
                yield from attest_gpu(rt.sim, rt.guest, config)
                rt.guest.record_recovery(SPDM_SITE, restart_start, 1, action)
            metrics.counter("serve.reattestations").inc()

        def queue_cap_now():
            """Pushback threshold; bounce-pool exhaustion halves it."""
            cap = degrade.max_queue_depth
            if cap and rt.guest.faults.injected_at(BOUNCE_POOL) > 0:
                cap = max(1, cap // 2)
            return cap

        def shed_scan(when):
            """Enforce TTFT timeouts and end-to-end deadlines."""
            ttft_to = degrade.ttft_timeout_ns
            deadline = degrade.deadline_ns
            survivors = []
            for request in sched.waiting:
                waited = when - request.arrival_ns
                if ttft_to and waited > ttft_to:
                    terminal(request, SHED, "ttft_timeout", when)
                elif deadline and waited > deadline:
                    terminal(request, SHED, "deadline", when)
                else:
                    survivors.append(request)
            sched.waiting[:] = survivors
            if deadline:
                live = (
                    list(sched.running)
                    + list(sched.warming)
                    + list(sched.evicted)
                )
                for sid in live:
                    request = sched.requests[sid]
                    if when - request.arrival_ns > deadline:
                        sched.cancel(sid)
                        terminal(
                            request, SHED, "deadline", when,
                            first=first_token.get(sid),
                        )

        def give_up(cause):
            """Terminal engine failure: every request still in flight
            (and every arrival that will never be served) fails with
            cause — nothing is silently dropped."""
            nonlocal index
            when = rt.sim.now
            if batched_flush:
                abandon_pending(when)
            for request in list(sched.waiting):
                terminal(request, FAILED, cause, when)
            sched.waiting.clear()
            live = (
                list(sched.running)
                + list(sched.warming)
                + list(sched.evicted)
            )
            for sid in live:
                request = sched.requests[sid]
                sched.cancel(sid)
                terminal(
                    request, FAILED, cause, when,
                    first=first_token.get(sid),
                )
            while index < len(pending):
                request = pending[index]
                index += 1
                ledger.submit(request.req_id)
                terminal(request, FAILED, "engine_down", when)
            metrics.counter("serve.engine_give_up").inc()

        def chunked_copy(dst, src, total):
            remaining = total
            while remaining > 0:
                size = min(remaining, SWAP_CHUNK_BYTES)
                yield from paid(lambda s=size: rt.memcpy(dst, src, s))
                remaining -= size

        def shard(spec):
            """Tensor-parallel kernel shard: each rank computes 1/tp of
            the layer; the all-reduce below pays the sync."""
            if par.tp <= 1:
                return spec
            return dataclasses.replace(
                spec,
                name=f"{spec.name}@tp{par.tp}",
                fixed_duration_ns=max(1, spec.fixed_duration_ns // par.tp),
            )

        def tp_sync(tokens, ids):
            """Per-layer activation all-reduces over the secure peer
            links (two per transformer layer: attention out-proj and
            MLP down-proj), batched into one collective session."""
            nonlocal tp_comm_ns
            comm_start = rt.sim.now
            with tel.op("tp_comm", ids):
                yield from paid(lambda: run_ring_all_reduce(
                    rt.sim,
                    tp_node,
                    max(1, tokens * hidden * 2),
                    link_sec,
                    count=2 * self.model.num_layers,
                    guest=rt.guest,
                    retry=retry,
                ))
            tp_comm_ns += rt.sim.now - comm_start

        def pp_bridge(tokens, ids):
            """Pipeline-stage activation handoffs across the host
            bridge: each of the pp-1 boundaries stages activations
            D2H then H2D — under CC both legs cross the serialized
            bounce-buffer/AES-GCM path."""
            nonlocal pp_comm_ns
            act = max(64, tokens * hidden * 2)
            comm_start = rt.sim.now
            with tel.op("pp_comm", ids):
                for _stage in range(par.pp - 1):
                    yield from paid(lambda: rt.memcpy(pp_host, pp_dev, act))
                    yield from paid(lambda: rt.memcpy(pp_dev, pp_host, act))
            pp_comm_ns += rt.sim.now - comm_start

        while True:
            now = rt.sim.now
            while index < len(pending) and pending[index].arrival_ns <= now:
                request = pending[index]
                index += 1
                ledger.submit(request.req_id)
                if degrade.shed_policy == "pushback" and (
                    retry_pressure
                    or (
                        queue_cap_now()
                        and len(sched.waiting) >= queue_cap_now()
                    )
                ):
                    terminal(request, SHED, "pushback", now)
                    continue
                if not sched.submit(request):
                    ledger.finish(request.req_id, REJECTED, "admission")
            queue_gauge.set(len(sched.waiting))
            if degrade.sheds:
                shed_scan(now)
            if not sched.has_work():
                if index >= len(pending):
                    break
                # Idle: jump to the next arrival.
                yield rt.sim.timeout(pending[index].arrival_ns - now)
                continue

            try:
                # SPDM re-attestation storm: the session health check
                # demands a fresh attestation.  With the circuit
                # breaker the engine pauses admission and drains the
                # running batch first; without it the whole batch
                # stalls behind an inline re-attestation.
                if faults_on and rt.guest.faults.draw(SPDM_SITE) is not None:
                    storms += 1
                    metrics.counter("serve.spdm_storms").inc()
                    if degrade.circuit_breaker:
                        if not breaker_open:
                            breaker_open = True
                            breaker_trips += 1
                            metrics.counter("serve.breaker_trips").inc()
                    else:
                        yield from reattest("spdm-storm")

                plan = sched.plan(admit=not breaker_open)
                for request in plan.admitted:
                    # First admission only: queueing is arrival -> here.
                    tel.admitted(request.req_id, rt.sim.now)
                if not plan.busy:
                    if breaker_open:
                        # Batch drained: re-attest, close the breaker,
                        # resume admission.
                        yield from reattest("breaker-drain")
                        breaker_open = False
                        continue
                    raise RuntimeError(
                        "scheduler stalled with pending work (livelock)"
                    )
                iterations += 1
                retries_before = engine_retries

                for evict in plan.preempted:
                    preempt_counter.inc()
                    if evict.swap_bytes:
                        swap_counter.inc(evict.swap_bytes)
                        with tel.op("swap_out", (evict.seq_id,)):
                            yield from chunked_copy(
                                swap_host, swap_dev, evict.swap_bytes
                            )
                for restore in plan.restored:
                    if restore.swap_bytes:
                        swap_counter.inc(restore.swap_bytes)
                        with tel.op("swap_in", (restore.seq_id,)):
                            yield from chunked_copy(
                                swap_dev, swap_in_host, restore.swap_bytes
                            )
                if plan.admitted:
                    prompt_bytes = sum(
                        r.prompt_tokens for r in plan.admitted
                    ) * 4
                    with tel.op(
                        "prompt_upload",
                        tuple(r.req_id for r in plan.admitted),
                    ):
                        yield from paid(lambda: rt.memcpy(
                            scratch_dev, prompt_host, max(prompt_bytes, 64)
                        ))
                # Kernel fusion (Observation 7): a mixed iteration
                # (prefill + decode) launches ONE fused kernel below,
                # paying the CC launch tax — and, on parallel engines,
                # the collective session — once instead of twice.
                fuse_now = bool(
                    fuse_steps and plan.prefill_tokens and plan.decode_ids
                )
                prefill_ids = ()
                if plan.prefill_tokens:
                    prefill_ids = tuple(sorted(
                        {r.req_id for r in plan.admitted}
                        | set(sched.warming)
                    ))
                    if not fuse_now:
                        with tel.op("prefill", prefill_ids):
                            yield from paid(lambda: rt.launch(shard(
                                self.backend.prefill_kernel(
                                    config, plan.prefill_tokens
                                )
                            )))
                        if tp_node is not None:
                            yield from tp_sync(
                                plan.prefill_tokens, prefill_ids
                            )
                        if par.pp > 1:
                            yield from pp_bridge(
                                plan.prefill_tokens, prefill_ids
                            )

                # Iteration bookkeeping on the guest CPU.
                with tel.op("sched", resident_ids()):
                    yield from rt.cpu_gap(VLLM_STEP_SCHED_NS)

                if plan.decode_ids:
                    decode_steps += 1
                    contexts = [
                        pager.sequence_length(s) for s in plan.decode_ids
                    ]
                    step_spec = self.backend.decode_kernel(
                        config,
                        len(plan.decode_ids),
                        float(np.mean(contexts)),
                    )
                    step_ids = tuple(plan.decode_ids)
                    sync_tokens = len(plan.decode_ids)
                    if fuse_now:
                        fused_launches += 1
                        prefill_spec = self.backend.prefill_kernel(
                            config, plan.prefill_tokens
                        )
                        # One fused super-kernel: both rooflines run
                        # back to back, one kernel prologue instead of
                        # two, one launch path, one collective.
                        step_spec = dataclasses.replace(
                            step_spec,
                            name=f"fused_step_{self.backend.quant.name}",
                            fixed_duration_ns=max(
                                1,
                                step_spec.fixed_duration_ns
                                + prefill_spec.fixed_duration_ns
                                - config.gpu.kernel_fixed_ns,
                            ),
                        )
                        step_ids = tuple(sorted(
                            set(prefill_ids) | set(plan.decode_ids)
                        ))
                        sync_tokens = (
                            plan.prefill_tokens + len(plan.decode_ids)
                        )
                    with tel.op(
                        "fused_step" if fuse_now else "decode", step_ids
                    ):
                        yield from paid(
                            lambda: rt.launch(shard(step_spec))
                        )
                    if tp_node is not None:
                        yield from tp_sync(sync_tokens, step_ids)
                    if par.pp > 1:
                        yield from pp_bridge(sync_tokens, step_ids)
                    if not batched_flush:
                        with tel.op("token_d2h", tuple(plan.decode_ids)):
                            yield from paid(lambda: rt.memcpy(
                                token_host, scratch_dev,
                                4 * len(plan.decode_ids),
                            ))
                        step_end = rt.sim.now
                        for sid in plan.decode_ids:
                            first_token.setdefault(sid, step_end)
                        deliver(
                            step_end, (), sched.finish_step(plan.decode_ids)
                        )
                    else:
                        steps_since_flush += 1
                        pending_tokens += len(plan.decode_ids)
                        pending_ids.update(plan.decode_ids)
                        pending_first.extend(plan.decode_ids)
                        pending_done.extend(
                            sched.finish_step(plan.decode_ids)
                        )
                if batched_flush and pending_tokens and (
                    steps_since_flush >= flush_every
                    or not sched.has_work()
                ):
                    yield from flush_tokens()
                if batched_flush and inflight and not sched.has_work():
                    while inflight:
                        yield from drain_inflight_one()
                kv_gauge.set(pager.cache.used_blocks)
                running_gauge.set(len(sched.running))
                retry_pressure = engine_retries > retries_before
            except _EngineCrash as crash:
                # Engine crash: session and KV are gone.  Within the
                # restart budget the engine re-attests and requeues
                # every survivor for chunked recompute; past it, it
                # fails them with cause instead of looping forever.
                restarts += 1
                metrics.counter("serve.engine_crashes").inc()
                crash_start = rt.sim.now
                if batched_flush:
                    # Tokens already generated on-device are delivered
                    # at crash time; their requests left the scheduler
                    # at finish_step and only the flush was pending.
                    abandon_pending(crash_start)
                sched.crash_recover()
                first_token_keep = {
                    sid: first_token[sid]
                    for sid in first_token
                    if not ledger.state_of(sid)
                }
                first_token = first_token_keep
                if restarts > degrade.max_engine_restarts:
                    give_up(crash.site)
                    break
                try:
                    yield from reattest("engine-restart")
                except FatalFault:
                    give_up(crash.site)
                    break
                rt.guest.record_recovery(
                    crash.site, crash_start, restarts, "engine-restart",
                    scope="serve",
                )
                breaker_open = False
                retry_pressure = True
            except FatalFault as exc:
                # Re-attestation itself exhausted its retries: the
                # platform cannot restore a trusted session.
                give_up(exc.site)
                break

        pager.check_invariants()
        assert pager.drained(), "sequences left resident after drain"
        ledger.check_complete()
        yield from rt.synchronize()
        elapsed = rt.sim.now - start
        buffers = [prompt_host, token_host, swap_host, scratch_dev, swap_dev]
        if pp_host is not None:
            buffers += [pp_host, pp_dev]
        if swap_in_host is not swap_host:
            buffers.append(swap_in_host)
        buffers += token_bufs[1:]
        for buffer in buffers:
            yield from rt.free(buffer)
        stats = {
            "iterations": iterations,
            "decode_steps": decode_steps,
            "rejected": len(sched.rejected),
            "restarts": restarts,
            "spdm_storms": storms,
            "breaker_trips": breaker_trips,
            "engine_retries": engine_retries,
            "shed": ledger.count(SHED),
            "failed": ledger.count(FAILED),
            "faults_injected": rt.guest.faults.total_injected,
            "faults_recovery_ns": rt.guest.faults.total_recovery_ns,
            **pager.stats.as_dict(),
        }
        if not par.trivial:
            # Keys only appear on parallel engines so the single-GPU
            # stats dict (and every verdict embedding it) stays
            # byte-identical to the pre-cluster build.
            stats["tp_degree"] = par.tp
            stats["pp_stages"] = par.pp
            stats["tp_comm_ns"] = tp_comm_ns
            stats["pp_comm_ns"] = pp_comm_ns
        if not tun.trivial:
            # Same pattern as the parallelism keys: tuned engines grow
            # stats, trivial ones keep the committed verdict bytes.
            stats["tuning"] = tun.describe()
            stats["tuning_fused_launches"] = fused_launches
            stats["tuning_token_flushes"] = token_flushes
        return EngineResult(
            outcomes=tracker.outcomes,
            rejected=sched.rejected,
            elapsed_ns=elapsed,
            stats=stats,
        )
