"""Engine-level CC-mitigation knobs (paper Sec. VII-A, VII-B).

:class:`EngineTuning` is the *mechanism* half of the mitigation layer:
a frozen record of engine cost-path switches that
:class:`~repro.serve.scheduler.ServingEngine` consults on its hot
path.  The *policy* half — which knobs to flip and in what order —
lives in :mod:`repro.optim.passes`, where composable
:class:`~repro.optim.passes.MitigationPass` transforms produce tuning
records; :mod:`repro.serve` deliberately never imports
:mod:`repro.optim`, so the dependency arrow points one way.

Every default is inert: a trivial tuning (``EngineTuning()``) leaves
the engine byte-identical to the pre-tuning build — the same
zero-perturbation contract the telemetry and parallelism layers honor.

The knobs map onto the paper's evaluated mitigations:

``fuse_step_kernels``
    Launch admitted-prefill + decode as ONE fused kernel per mixed
    iteration, folding the per-launch CC tax (KLO hypercalls,
    pushbuffer crypto, command-processor auth) and — on parallel
    engines — one collective session per iteration (Sec. VII-A,
    Observation 7).

``token_flush_every``
    Coalesce the per-step token-ids D2H into one flush every *k*
    decode steps: fewer encrypted transits across the serialized
    bridge, at the cost of delayed token delivery (TTFT/TPOT).

``d2h_streams``
    Flush token downloads with ``cudaMemcpyAsync`` on a side stream,
    double-buffered across ``d2h_streams`` host buffers, so the DMA
    leg hides behind the next iteration's compute.  The CPU
    staging/AES-GCM leg stays synchronous — the single-OpenSSL-worker
    limit that makes overlap recover less under CC (Observation 8).

``split_swap_staging``
    Direction-stable KV-swap staging buffers: swap-out and swap-in
    each keep a dedicated pinned bounce buffer, so the UVM-backed
    pages never flip transfer direction and the per-flip
    page-conversion cost is paid once, not per preemption cycle.

``quant`` / ``kv_bits``
    Weight quantization (e.g. AWQ) shrinks the decode roofline's
    weight-read term, and narrower KV entries shrink the paged-KV
    footprint (fewer preemptions, less encrypted swap traffic).  The
    accuracy cost is carried as pass-config metadata
    (:class:`~repro.optim.passes.QuantizationPass`), not simulated.
"""

from __future__ import annotations

from dataclasses import dataclass, fields

from ..llm.config import QUANTS

#: Upper bound on batched token-download coalescing; 64 steps of a
#: full batch still fits the 64 KiB token host buffer with margin.
MAX_FLUSH_EVERY = 64
#: Upper bound on D2H flush buffers/streams (diminishing returns past
#: double-buffering; the CPU crypto leg is serialized regardless).
MAX_D2H_STREAMS = 8

KV_BITS_CHOICES = (4, 8, 16)


class TuningError(ValueError):
    """An :class:`EngineTuning` field is out of range."""


@dataclass(frozen=True)
class EngineTuning:
    """Validated engine mitigation knobs; defaults are all inert."""

    fuse_step_kernels: bool = False
    token_flush_every: int = 1
    d2h_streams: int = 1
    split_swap_staging: bool = False
    quant: str = "bf16"
    kv_bits: int = 16

    def validate(self) -> None:
        if not isinstance(self.token_flush_every, int) or not (
            1 <= self.token_flush_every <= MAX_FLUSH_EVERY
        ):
            raise TuningError(
                f"token_flush_every must be an int in "
                f"[1, {MAX_FLUSH_EVERY}], got {self.token_flush_every!r}"
            )
        if not isinstance(self.d2h_streams, int) or not (
            1 <= self.d2h_streams <= MAX_D2H_STREAMS
        ):
            raise TuningError(
                f"d2h_streams must be an int in [1, {MAX_D2H_STREAMS}], "
                f"got {self.d2h_streams!r}"
            )
        if self.quant not in QUANTS:
            raise TuningError(
                f"unknown quant {self.quant!r} (have {sorted(QUANTS)})"
            )
        if self.kv_bits not in KV_BITS_CHOICES:
            raise TuningError(
                f"kv_bits must be one of {KV_BITS_CHOICES}, "
                f"got {self.kv_bits!r}"
            )

    @property
    def trivial(self) -> bool:
        """True when every knob is at its inert default (the engine
        pays exactly the un-tuned cost sequence)."""
        default = _DEFAULT
        return all(
            getattr(self, f.name) == getattr(default, f.name)
            for f in fields(self)
        )

    def describe(self) -> str:
        """Stable human/machine label for verdicts and telemetry."""
        parts = []
        if self.fuse_step_kernels:
            parts.append("fusion")
        if self.d2h_streams > 1:
            parts.append(f"overlap:{self.d2h_streams}")
        if self.token_flush_every > 1:
            parts.append(f"batch:{self.token_flush_every}")
        if self.split_swap_staging:
            parts.append("staging")
        if self.quant != "bf16" or self.kv_bits != 16:
            parts.append(f"quant:{self.quant}:{self.kv_bits}")
        return "+".join(parts) if parts else "naive"


_DEFAULT = EngineTuning()
