"""Fault-aware request lifecycle for the serving engine.

Two pieces, both pure (no simulation imports):

* :class:`DegradationPolicy` — the knobs that decide how the engine
  degrades under faults instead of collapsing: per-request deadlines
  and TTFT timeouts, load shedding / admission pushback when queues or
  the retry budget saturate, a circuit breaker that pauses admission
  during SPDM re-attestation storms, and a restart budget for engine
  crash-and-restart recovery.  The default policy is inert
  (``shed_policy="none"``, breaker off): with no faults injected the
  engine behaves byte-identically to a build without this layer.
* :class:`LifecycleLedger` — the bookkeeping behind the
  **no-lost-request invariant**: every request submitted to the engine
  terminates *exactly once* as ``completed``, ``shed``,
  ``failed``-with-cause, or ``rejected`` (admission control).  The
  ledger raises on double-termination and :meth:`check_complete`
  asserts the full partition at drain, on every fault path included.

Lifecycle state machine (terminal states in brackets)::

    arrival -> waiting -> running <-> evicted/warming -> [completed]
       |          |          |
       |          |          +--> [shed]    (deadline exceeded)
       |          +------------> [shed]    (TTFT timeout / pushback)
       +----------------------> [rejected] (could never fit)
    any non-terminal ---------> [failed]   (engine gave up: restart
                                            budget or re-attestation
                                            exhausted; cause = site)
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Tuple

from .. import units

#: Terminal request states (``rejected`` is admission control at
#: arrival; the other three are post-admission outcomes).
COMPLETED = "completed"
SHED = "shed"
FAILED = "failed"
REJECTED = "rejected"
TERMINAL_STATES = (COMPLETED, SHED, FAILED, REJECTED)

#: Shedding policies, by increasing aggressiveness.  ``none`` never
#: sheds (the goodput-cliff variant in ``ext_fault_serving``);
#: ``deadline`` enforces the TTFT timeout on the wait queue and the
#: end-to-end deadline everywhere; ``pushback`` adds admission
#: pushback — arrivals are shed under engine retry pressure or when
#: the wait queue is past ``max_queue_depth`` (a breaker drain alone
#: does not shed: the queue absorbs arrivals until re-attestation
#: completes).
SHED_POLICIES = ("none", "deadline", "pushback")


class LifecycleError(AssertionError):
    """A lifecycle invariant was violated (a request was lost or
    terminated twice) — always a bug, never a recoverable condition."""


@dataclass(frozen=True)
class DegradationPolicy:
    """How the serving engine degrades under an active fault plan."""

    #: End-to-end deadline per request (0 = none).  A request past its
    #: deadline is shed wherever it is: waiting, running, or evicted.
    deadline_ms: float = 0.0
    #: Max time a request may wait for its first token before being
    #: shed from the queue (0 = none).
    ttft_timeout_ms: float = 0.0
    shed_policy: str = "none"
    #: Pause admission and drain the running batch when an SPDM
    #: re-attestation storm hits, instead of stalling mid-batch.
    circuit_breaker: bool = False
    #: Admission pushback threshold for ``shed_policy="pushback"``
    #: (0 = unbounded queue).
    max_queue_depth: int = 0
    #: Engine crash-and-restart budget: after this many restarts the
    #: engine fails its surviving requests with cause instead of
    #: looping forever on a persistent fatal fault.
    max_engine_restarts: int = 2

    def validate(self) -> None:
        problems = []
        if self.shed_policy not in SHED_POLICIES:
            problems.append(
                f"unknown shed_policy {self.shed_policy!r} "
                f"(have {SHED_POLICIES})"
            )
        if self.deadline_ms < 0 or self.ttft_timeout_ms < 0:
            problems.append("deadline/ttft timeout must be >= 0")
        if self.max_queue_depth < 0:
            problems.append("max_queue_depth must be >= 0")
        if self.max_engine_restarts < 0:
            problems.append("max_engine_restarts must be >= 0")
        if problems:
            raise ValueError(
                "invalid DegradationPolicy: " + "; ".join(problems)
            )

    # -- derived, in simulator units --------------------------------------

    @property
    def sheds(self) -> bool:
        return self.shed_policy != "none"

    @property
    def deadline_ns(self) -> int:
        return int(self.deadline_ms * units.NS_PER_SEC / 1000)

    @property
    def ttft_timeout_ns(self) -> int:
        return int(self.ttft_timeout_ms * units.NS_PER_SEC / 1000)


class LifecycleLedger:
    """Exactly-once terminal accounting for every submitted request."""

    def __init__(self) -> None:
        self._terminal: Dict[int, Tuple[str, str]] = {}
        self._submitted: List[int] = []

    def submit(self, req_id: int) -> None:
        self._submitted.append(req_id)

    def finish(self, req_id: int, state: str, cause: str = "") -> None:
        if state not in TERMINAL_STATES:
            raise LifecycleError(f"unknown terminal state {state!r}")
        if req_id in self._terminal:
            raise LifecycleError(
                f"request {req_id} terminated twice: "
                f"{self._terminal[req_id][0]} then {state}"
            )
        self._terminal[req_id] = (state, cause)

    def state_of(self, req_id: int) -> str:
        return self._terminal.get(req_id, ("", ""))[0]

    def count(self, state: str) -> int:
        return sum(1 for s, _ in self._terminal.values() if s == state)

    def check_complete(self) -> None:
        """Assert the no-lost-request invariant at drain."""
        lost = [r for r in self._submitted if r not in self._terminal]
        if lost:
            raise LifecycleError(
                f"{len(lost)} request(s) lost without a terminal state: "
                f"{lost[:8]}"
            )
        phantom = set(self._terminal) - set(self._submitted)
        if phantom:
            raise LifecycleError(
                f"terminal state for never-submitted request(s): "
                f"{sorted(phantom)[:8]}"
            )
