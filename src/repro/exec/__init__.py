"""Experiment orchestrator: parallel figure grid + result cache.

``repro.exec`` turns the paper's figure/workload/config grid into a
cache-aware, process-parallel sweep:

- :mod:`repro.exec.fingerprint` — cache-key ingredients (calibration
  hash, resolved SystemConfig hash, per-figure code fingerprint);
- :mod:`repro.exec.cache` — content-addressed store under
  ``results/.cache/``;
- :mod:`repro.exec.runner` — the grid registry, worker entry point,
  and ``run_grid`` orchestration.

See ``docs/architecture.md`` (Execution harness) for the design.
"""

from .cache import CacheStats, ResultCache, default_cache_dir, entry_key
from .fingerprint import (
    calibration_hash,
    cell_fingerprint,
    config_hash,
    grid_config_hash,
    package_fingerprint,
)
from .runner import (
    GRID,
    CellOutcome,
    CellSpec,
    GridReport,
    cell_cache_key,
    cell_for_generator,
    default_cells,
    execute_cell,
    payload_to_result,
    resolve_cells,
    run_grid,
)

__all__ = [
    "CacheStats",
    "ResultCache",
    "default_cache_dir",
    "entry_key",
    "calibration_hash",
    "cell_fingerprint",
    "config_hash",
    "grid_config_hash",
    "package_fingerprint",
    "GRID",
    "CellOutcome",
    "CellSpec",
    "GridReport",
    "cell_cache_key",
    "cell_for_generator",
    "default_cells",
    "execute_cell",
    "payload_to_result",
    "resolve_cells",
    "run_grid",
]
