"""Parallel experiment orchestrator for the figure/workload grid.

``repro run --figures fig04,fig05 --jobs 4`` (or ``--all``) fans the
grid out across a :class:`~concurrent.futures.ProcessPoolExecutor`.
Each worker runs one *(figure, variant)* cell in an isolated process —
its own interpreter state, its own seeded RNG — through the figure
module's uniform ``run(config) -> FigureResult`` entry point, and
ships back the exact ``to_json``/``to_text`` strings the serial path
writes, so the merged ``results/`` tree is byte-identical however many
jobs produced it.

Results are content-addressed in ``results/.cache/`` (see
:mod:`repro.exec.cache`); the key covers the calibration targets, the
resolved base/CC :class:`~repro.config.SystemConfig`, the per-figure
code fingerprint, and the cell's own parameters.  Unchanged cells are
served from cache without touching the simulator; only edited figures
re-simulate.  Per-cell wall time and hit/miss stats are recorded in a
:class:`~repro.obs.MetricsRegistry`.

A cell that raises is reported as a failure and never poisons the rest
of the grid — the pool keeps draining, the failing cell is simply not
cached.
"""

from __future__ import annotations

import concurrent.futures
import gc
import hashlib
import importlib
import multiprocessing
import os
import random
import time
import traceback
from dataclasses import dataclass
from typing import Any, Callable, Dict, List, Mapping, Optional, Sequence, Tuple

from ..figures.common import FigureResult, RunConfig
from ..obs import MetricsRegistry
from ..sim import SimTimeCollector
from . import fingerprint
from .cache import CacheStats, ResultCache, default_cache_dir, entry_key

# ---------------------------------------------------------------------------
# The grid


@dataclass(frozen=True)
class CellSpec:
    """One (figure, variant) cell of the experiment grid."""

    cell_id: str
    module: str  # figure module basename under repro.figures
    variant: str = ""
    params: Tuple[Tuple[str, Any], ...] = ()
    slow: bool = False  # excluded from the default set, included by --all
    hidden: bool = False  # never listed; resolvable by exact id only

    def entry_module(self) -> str:
        if self.hidden:
            return "repro.exec.runner"
        return f"repro.figures.{self.module}"

    def run_config(self) -> RunConfig:
        return RunConfig(variant=self.variant, params=dict(self.params))


def _cells(*specs: CellSpec) -> Dict[str, CellSpec]:
    return {spec.cell_id: spec for spec in specs}


_EXTENSION_NAMES = ("teeio", "crypto_scaling", "graph_fusion_cc",
                    "oversubscription", "attestation", "multigpu",
                    "model_load", "sensitivity", "distributed_training",
                    "fault_recovery")

GRID: Dict[str, CellSpec] = _cells(
    CellSpec("table1", "table1_config"),
    CellSpec("fig01", "fig01_overview"),
    CellSpec("fig03", "fig03_model"),
    CellSpec("fig04a", "fig04_bandwidth", variant="a"),
    CellSpec("fig04b", "fig04_bandwidth", variant="b"),
    CellSpec("fig05", "fig05_copytime"),
    CellSpec("fig06", "fig06_alloc"),
    CellSpec("fig07", "fig07_launch"),
    CellSpec("fig08", "fig08_flamegraph"),
    CellSpec("fig09", "fig09_ket"),
    CellSpec("fig10", "fig10_events"),
    CellSpec("fig11", "fig11_cdf"),
    CellSpec("fig12a", "fig12_micro", variant="a"),
    CellSpec("fig12b", "fig12_micro", variant="b"),
    CellSpec("fig12c", "fig12_micro", variant="c", slow=True),
    CellSpec("fig13", "fig13_cnn", slow=True),
    CellSpec("fig14", "fig14_llm", slow=True),
    *[
        CellSpec(f"ext_{name}", "extensions", variant=name, slow=True)
        for name in _EXTENSION_NAMES
    ],
    # The serving extension lives in its own figure module (it layers
    # on repro.serve rather than the single-app extension harness).
    CellSpec("ext_serving", "ext_serving", slow=True),
    CellSpec("ext_fault_serving", "ext_fault_serving", slow=True),
    CellSpec("ext_serve_telemetry", "ext_serve_telemetry", slow=True),
    CellSpec("ext_cluster_serving", "ext_cluster_serving", slow=True),
    CellSpec("ext_recovered_serving", "ext_recovered_serving", slow=True),
    # Harness self-test hook: a cell that always raises, so tests can
    # assert one crashing cell doesn't poison the pool.
    CellSpec("selftest_boom", "", variant="boom", hidden=True),
)


def run(config: Optional[RunConfig] = None) -> FigureResult:
    """Entry point for hidden self-test cells (crash isolation tests)."""
    raise RuntimeError(
        f"selftest cell raised on purpose (variant="
        f"{config.variant if config else ''!r})"
    )


def default_cells(include_slow: bool = False) -> List[str]:
    return [
        cell_id
        for cell_id, spec in GRID.items()
        if not spec.hidden and (include_slow or not spec.slow)
    ]


def resolve_cells(
    tokens: Sequence[str], grid: Optional[Mapping[str, CellSpec]] = None
) -> List[str]:
    """Expand user tokens to cell ids.

    A token matches its exact cell id, or — for grouped figures — every
    non-hidden id it prefixes (``fig04`` -> ``fig04a``, ``fig04b``;
    ``ext`` -> every extension).  Unknown tokens raise ValueError.
    """
    grid = GRID if grid is None else grid
    resolved: List[str] = []
    for token in tokens:
        if token in grid:
            matches = [token]
        else:
            matches = [
                cell_id
                for cell_id, spec in grid.items()
                if not spec.hidden and cell_id.startswith(token)
            ]
        if not matches:
            known = [c for c, s in grid.items() if not s.hidden]
            raise ValueError(
                f"unknown figure {token!r}; known cells: {', '.join(known)}"
            )
        for cell_id in matches:
            if cell_id not in resolved:
                resolved.append(cell_id)
    return resolved


# ---------------------------------------------------------------------------
# Cache keys


def cell_cache_key(spec: CellSpec) -> str:
    """Content address of one cell's payload."""
    if spec.hidden:
        code = f"selftest:{spec.cell_id}"
    else:
        code = fingerprint.cell_fingerprint(spec.module)
    return entry_key({
        "cell": spec.cell_id,
        "variant": spec.variant,
        "params": fingerprint.canonical(dict(spec.params)),
        "calibration": fingerprint.calibration_hash(),
        "config": fingerprint.grid_config_hash(),
        "code": code,
    })


def _cell_seed(cell_id: str) -> int:
    """Deterministic per-cell seed for worker RNG isolation."""
    digest = hashlib.sha256(f"repro.exec:{cell_id}".encode()).digest()
    return int.from_bytes(digest[:8], "big")


# ---------------------------------------------------------------------------
# Workers

WorkItem = Tuple[str, str, str, Tuple[Tuple[str, Any], ...]]


def _work_item(spec: CellSpec) -> WorkItem:
    return (spec.cell_id, spec.entry_module(), spec.variant, spec.params)


def execute_cell(item: WorkItem) -> Dict[str, Any]:
    """Run one grid cell; always returns (never raises) so a failing
    cell cannot take the pool down with it.  Top-level so it pickles
    into worker processes.

    The cell runs with the cyclic GC paused (the DES kernel allocates
    events in bursts that trigger collection sweeps mid-simulation but
    creates no cycles the refcounter can't reclaim) and under a
    :class:`~repro.sim.SimTimeCollector`, so the payload carries the
    final simulator clock (``sim_ns``) alongside wall time — the pair
    behind the ``sim_ns_per_wall_s`` throughput metric in the perf
    baseline.
    """
    cell_id, entry_module, variant, params = item
    random.seed(_cell_seed(cell_id))  # isolate ambient-RNG consumers
    started = time.perf_counter_ns()
    gc_was_enabled = gc.isenabled()
    if gc_was_enabled:
        gc.disable()
    try:
        module = importlib.import_module(entry_module)
        with SimTimeCollector() as sim_time:
            result = module.run(
                RunConfig(variant=variant, params=dict(params))
            )
        return {
            "cell": cell_id,
            "ok": True,
            "figure_id": result.figure_id,
            "payload_json": result.to_json(),
            "payload_text": result.to_text(),
            "wall_ns": time.perf_counter_ns() - started,
            "sim_ns": sim_time.total_sim_ns,
        }
    except BaseException as exc:  # noqa: BLE001 — isolation boundary
        return {
            "cell": cell_id,
            "ok": False,
            "error": f"{type(exc).__name__}: {exc}",
            "traceback": traceback.format_exc(),
            "wall_ns": time.perf_counter_ns() - started,
            "sim_ns": 0,
        }
    finally:
        if gc_was_enabled:
            gc.enable()


def _pool_context():
    """Prefer fork: children inherit PYTHONHASHSEED and module state,
    which keeps payloads byte-identical to the serial path even for
    code that iterates hash-ordered containers."""
    try:
        return multiprocessing.get_context("fork")
    except ValueError:  # pragma: no cover - non-POSIX platforms
        return multiprocessing.get_context()


# ---------------------------------------------------------------------------
# Orchestration


@dataclass
class CellOutcome:
    """What happened to one cell in one harness invocation."""

    cell: str
    figure_id: str = ""
    status: str = "run"  # "hit" | "run" | "failed"
    wall_ns: int = 0
    sim_ns: int = 0  # final simulator clock (0 for hits/failures)
    json_path: str = ""
    error: str = ""
    traceback: str = ""

    @property
    def ok(self) -> bool:
        return self.status != "failed"


@dataclass
class GridReport:
    """Merged outcome of one ``run_grid`` invocation."""

    outcomes: List[CellOutcome]
    stats: CacheStats
    results_dir: str
    cache_dir: str
    jobs: int
    wall_ns: int = 0
    metrics: Optional[MetricsRegistry] = None

    @property
    def ok(self) -> bool:
        return all(outcome.ok for outcome in self.outcomes)

    @property
    def failed(self) -> List[CellOutcome]:
        return [outcome for outcome in self.outcomes if not outcome.ok]

    @property
    def executed(self) -> List[CellOutcome]:
        return [o for o in self.outcomes if o.status == "run"]

    def all_cached(self) -> bool:
        return bool(self.outcomes) and all(
            outcome.status == "hit" for outcome in self.outcomes
        )

    def render(self) -> str:
        cell_width = max([5] + [len(o.cell) for o in self.outcomes]) + 2
        fig_width = max([7] + [len(o.figure_id) for o in self.outcomes]) + 2
        lines = [
            f"{'cell':<{cell_width}}{'figure':<{fig_width}}"
            f"{'status':<8}{'wall_ms':>9}",
            "-" * (cell_width + fig_width + 17),
        ]
        for outcome in self.outcomes:
            lines.append(
                f"{outcome.cell:<{cell_width}}{outcome.figure_id:<{fig_width}}"
                f"{outcome.status:<8}{outcome.wall_ns / 1e6:>9.1f}"
            )
            if outcome.error:
                lines.append(f"    {outcome.error}")
        hits, misses = self.stats.hits, self.stats.misses
        lines.append(
            f"{len(self.outcomes)} cells in {self.wall_ns / 1e6:.1f} ms "
            f"({self.jobs} job{'s' if self.jobs != 1 else ''}): "
            f"{hits} cache hit{'s' if hits != 1 else ''}, "
            f"{misses} miss{'es' if misses != 1 else ''}"
            f" ({100.0 * self.stats.hit_rate():.0f}% hit rate)"
        )
        if self.stats.evicted_corrupt:
            lines.append(
                f"  dropped {len(self.stats.evicted_corrupt)} corrupt cache "
                f"entr{'ies' if len(self.stats.evicted_corrupt) != 1 else 'y'}"
            )
        for outcome in self.failed:
            lines.append(f"FAILED {outcome.cell}: {outcome.error}")
        return "\n".join(lines)


def _write_outputs(
    results_dir: str, figure_id: str, payload_json: str, payload_text: str
) -> str:
    """Write ``<figure_id>.json`` + ``.txt`` exactly like
    :meth:`FigureResult.save` does on the serial path."""
    os.makedirs(results_dir, exist_ok=True)
    json_path = os.path.join(results_dir, f"{figure_id}.json")
    with open(json_path, "w") as handle:
        handle.write(payload_json)
    with open(os.path.join(results_dir, f"{figure_id}.txt"), "w") as handle:
        handle.write(payload_text + "\n")
    return json_path


def payload_to_result(payload_json: str) -> FigureResult:
    """Rehydrate a FigureResult from its serialized payload (a cache
    entry's ``payload_json`` or a ``results/<figure_id>.json`` file)."""
    import json as _json

    payload = _json.loads(payload_json)
    return FigureResult(
        figure_id=payload["figure_id"],
        title=payload["title"],
        columns=payload["columns"],
        rows=payload["rows"],
        notes=payload.get("notes", []),
        comparisons=payload.get("comparisons", []),
    )


def bench_cell(
    cell_id: str,
    repeats: int = 3,
    grid: Optional[Mapping[str, CellSpec]] = None,
    metrics: Optional[MetricsRegistry] = None,
) -> Dict[str, Any]:
    """Time one cell's real compute: run it ``repeats`` times with the
    cache bypassed and report min-of-N wall time (the perf gate's
    noise-resistant statistic).  Each repeat's wall time is recorded in
    the ``exec.bench.<cell>.wall_ns`` histogram."""
    grid = GRID if grid is None else grid
    metrics = metrics if metrics is not None else MetricsRegistry()
    spec = grid[cell_id]
    histogram = metrics.histogram(f"exec.bench.{cell_id}.wall_ns")
    times: List[int] = []
    sim_ns = 0
    for _ in range(max(1, repeats)):
        payload = execute_cell(_work_item(spec))
        if not payload["ok"]:
            return {
                "cell": cell_id,
                "ok": False,
                "error": payload["error"],
            }
        histogram.observe(payload["wall_ns"])
        times.append(payload["wall_ns"])
        # Deterministic cells advance the same simulated time every
        # repeat, so the last observation is the cell's sim_ns.
        sim_ns = payload.get("sim_ns", 0)
    return {
        "cell": cell_id,
        "ok": True,
        "wall_ns_min": min(times),
        "wall_ns_all": times,
        "sim_ns": sim_ns,
    }


def cell_for_generator(generator: Callable) -> Optional[str]:
    """Reverse lookup: which grid cell wraps this generator function?
    Lets the benches route their existing ``generate_*`` calls through
    the cache without changing their call sites."""
    for cell_id, spec in GRID.items():
        if spec.hidden or spec.params:
            continue
        module = importlib.import_module(spec.entry_module())
        variants = getattr(module, "VARIANTS", None)
        if variants is not None and variants.get(spec.variant) is generator:
            return cell_id
    return None


def run_grid(
    cell_ids: Sequence[str],
    jobs: int = 1,
    results_dir: str = "results",
    cache_dir: Optional[str] = None,
    force: bool = False,
    use_cache: bool = True,
    grid: Optional[Mapping[str, CellSpec]] = None,
    metrics: Optional[MetricsRegistry] = None,
) -> GridReport:
    """Run the named cells, serving unchanged ones from the cache.

    ``force`` recomputes every cell (refreshing cache entries);
    ``use_cache=False`` bypasses the cache entirely (no reads, no
    writes) — the pure serial-equivalence mode tests compare against.
    ``jobs <= 1`` executes inline in this process; otherwise misses fan
    out over a process pool and merge as they complete.
    """
    grid = GRID if grid is None else grid
    metrics = metrics if metrics is not None else MetricsRegistry()
    cache = ResultCache(cache_dir or default_cache_dir(results_dir))
    started = time.perf_counter_ns()

    specs = [grid[cell_id] for cell_id in cell_ids]
    keys = {spec.cell_id: cell_cache_key(spec) for spec in specs}
    outcomes: Dict[str, CellOutcome] = {}
    pending: List[CellSpec] = []

    for spec in specs:
        if use_cache and not force:
            entry = cache.get(keys[spec.cell_id])
        else:
            entry = None
            cache.stats.misses += 1  # bypassed lookups still count
        if entry is not None:
            json_path = _write_outputs(
                results_dir,
                entry["figure_id"],
                entry["payload_json"],
                entry["payload_text"],
            )
            outcomes[spec.cell_id] = CellOutcome(
                cell=spec.cell_id,
                figure_id=entry["figure_id"],
                status="hit",
                wall_ns=0,
                sim_ns=entry.get("sim_ns", 0),
                json_path=json_path,
            )
            metrics.counter("exec.cache.hits").inc()
            continue
        pending.append(spec)
        metrics.counter("exec.cache.misses").inc()

    def _absorb(spec: CellSpec, payload: Dict[str, Any]) -> None:
        metrics.histogram("exec.cell_wall_ns").observe(payload["wall_ns"])
        if not payload["ok"]:
            outcomes[spec.cell_id] = CellOutcome(
                cell=spec.cell_id,
                status="failed",
                wall_ns=payload["wall_ns"],
                error=payload["error"],
                traceback=payload.get("traceback", ""),
            )
            metrics.counter("exec.cells.failed").inc()
            return
        json_path = _write_outputs(
            results_dir,
            payload["figure_id"],
            payload["payload_json"],
            payload["payload_text"],
        )
        if use_cache:
            cache.put(
                keys[spec.cell_id],
                {
                    "cell": spec.cell_id,
                    "figure_id": payload["figure_id"],
                    "payload_json": payload["payload_json"],
                    "payload_text": payload["payload_text"],
                    "wall_ns": payload["wall_ns"],
                    "sim_ns": payload.get("sim_ns", 0),
                },
            )
        outcomes[spec.cell_id] = CellOutcome(
            cell=spec.cell_id,
            figure_id=payload["figure_id"],
            status="run",
            wall_ns=payload["wall_ns"],
            sim_ns=payload.get("sim_ns", 0),
            json_path=json_path,
        )
        metrics.counter("exec.cells.ok").inc()

    if pending and (jobs <= 1 or len(pending) == 1):
        for spec in pending:
            _absorb(spec, execute_cell(_work_item(spec)))
    elif pending:
        workers = min(jobs, len(pending))
        with concurrent.futures.ProcessPoolExecutor(
            max_workers=workers, mp_context=_pool_context()
        ) as pool:
            futures = {
                pool.submit(execute_cell, _work_item(spec)): spec
                for spec in pending
            }
            for future in concurrent.futures.as_completed(futures):
                spec = futures[future]
                try:
                    payload = future.result()
                except Exception as exc:  # a worker died outright
                    payload = {
                        "cell": spec.cell_id,
                        "ok": False,
                        "error": f"worker crashed: {type(exc).__name__}: {exc}",
                        "traceback": "",
                        "wall_ns": 0,
                    }
                _absorb(spec, payload)

    report = GridReport(
        outcomes=[outcomes[cell_id] for cell_id in cell_ids],
        stats=cache.stats,
        results_dir=results_dir,
        cache_dir=cache.root,
        jobs=jobs,
        wall_ns=time.perf_counter_ns() - started,
        metrics=metrics,
    )
    metrics.gauge("exec.grid.wall_ns").set(report.wall_ns)
    return report
