"""Content-addressed result cache for the experiment harness.

Entries live under ``results/.cache/`` as one JSON file per key; the
key is the SHA-256 over every ingredient that determines a cell's
payload (see :mod:`repro.exec.fingerprint`), so a cache *file* is
immutable — a change anywhere in the inputs produces a different key,
never an overwrite of a live entry.  Each entry stores the figure
payload exactly as the serial path writes it (``FigureResult.to_json``
/ ``to_text`` strings), which is what lets a warm run reproduce
byte-identical ``results/`` files without re-simulating.
"""

from __future__ import annotations

import hashlib
import json
import os
import tempfile
from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional

ENTRY_VERSION = 1


@dataclass
class CacheStats:
    """Hit/miss accounting for one harness invocation."""

    hits: int = 0
    misses: int = 0
    stores: int = 0
    evicted_corrupt: List[str] = field(default_factory=list)

    @property
    def lookups(self) -> int:
        return self.hits + self.misses

    def hit_rate(self) -> float:
        return self.hits / self.lookups if self.lookups else 0.0


def entry_key(ingredients: Dict[str, Any]) -> str:
    """Content address: SHA-256 of the canonical ingredient mapping."""
    blob = json.dumps(ingredients, sort_keys=True, separators=(",", ":"))
    return hashlib.sha256(blob.encode()).hexdigest()


class ResultCache:
    """Keyed store of figure payloads under one cache directory."""

    def __init__(self, root: str) -> None:
        self.root = root
        self.stats = CacheStats()

    def path_for(self, key: str) -> str:
        return os.path.join(self.root, f"{key}.json")

    def get(self, key: str) -> Optional[Dict[str, Any]]:
        """The stored entry, or None on miss.  A corrupt or truncated
        entry file counts as a miss (and is remembered in the stats) —
        never as an error and never as stale data."""
        path = self.path_for(key)
        try:
            with open(path) as handle:
                entry = json.load(handle)
        except FileNotFoundError:
            self.stats.misses += 1
            return None
        except (OSError, json.JSONDecodeError):
            self.stats.misses += 1
            self.stats.evicted_corrupt.append(path)
            return None
        if (
            not isinstance(entry, dict)
            or entry.get("version") != ENTRY_VERSION
            or "payload_json" not in entry
            or "payload_text" not in entry
        ):
            self.stats.misses += 1
            self.stats.evicted_corrupt.append(path)
            return None
        self.stats.hits += 1
        return entry

    def put(self, key: str, entry: Dict[str, Any]) -> str:
        """Atomically persist an entry (write-temp-then-rename so a
        crashed worker can never leave a half-written entry behind)."""
        os.makedirs(self.root, exist_ok=True)
        entry = {"version": ENTRY_VERSION, "key": key, **entry}
        path = self.path_for(key)
        fd, tmp_path = tempfile.mkstemp(
            dir=self.root, prefix=f".{key[:12]}.", suffix=".tmp"
        )
        try:
            with os.fdopen(fd, "w") as handle:
                json.dump(entry, handle, indent=1)
            os.replace(tmp_path, path)
        except BaseException:
            try:
                os.unlink(tmp_path)
            except OSError:
                pass
            raise
        self.stats.stores += 1
        return path

    def __len__(self) -> int:
        if not os.path.isdir(self.root):
            return 0
        return sum(
            1
            for name in os.listdir(self.root)
            if name.endswith(".json") and not name.startswith(".")
        )

    def clear(self) -> int:
        """Delete every entry; returns how many were removed."""
        removed = 0
        if not os.path.isdir(self.root):
            return 0
        for name in os.listdir(self.root):
            if name.endswith(".json") or name.endswith(".tmp"):
                try:
                    os.unlink(os.path.join(self.root, name))
                    removed += 1
                except OSError:
                    pass
        return removed


def default_cache_dir(results_dir: str) -> str:
    return os.path.join(results_dir, ".cache")
