"""Cache-key ingredients for the experiment harness.

A cached figure result is valid only while everything that could
change its payload is unchanged.  Three fingerprints capture that:

``calibration_hash()``
    The paper's reference numbers (:data:`repro.calibration.PAPER`),
    canonically serialized.  Recalibrating a target invalidates every
    figure that might compare against it.

``config_hash(config)``
    A resolved :class:`~repro.config.SystemConfig` — the full frozen
    dataclass tree (specs, fault plan, retry policy, seed) walked into
    canonical JSON.  The grid hashes the two configs figures actually
    instantiate, ``SystemConfig.base()`` and
    ``SystemConfig.confidential()``, so editing any default cost-model
    knob re-simulates everything.

``cell_fingerprint(module)``
    Per-figure code fingerprint: the figure module's own source, the
    shared ``figures/common.py``, and a package-wide fingerprint of the
    simulator core (every ``repro`` source file *except* the figure
    modules, the CLI, and this harness).  Editing one figure therefore
    re-runs only that figure; editing the core re-runs the grid;
    editing the harness itself re-runs nothing.
"""

from __future__ import annotations

import dataclasses
import enum
import hashlib
import json
import os
from functools import lru_cache
from typing import Any, Iterable, Tuple

from .. import calibration
from ..config import SystemConfig, grid_system_configs

_PACKAGE_ROOT = os.path.dirname(os.path.dirname(os.path.abspath(__file__)))

# Source trees whose edits cannot change a figure payload.  The check
# package (gating) never feeds the simulator, with one exception: the
# paper-target table is figure-table code, so cell_fingerprint() hashes
# it explicitly below.  The mitigation layer (optim) and its search
# driver (tune) are scoped out of the core too: only the figures that
# actually import them (``_OPTIM_DEPENDENT_MODULES``) fold
# ``optim_fingerprint()`` into their cell key, so editing a pass or the
# tuner re-simulates the recovered/tuning figures without invalidating
# the rest of the grid.
_CORE_EXCLUDED_DIRS = ("figures", "exec", "check", "optim", "tune")
_CORE_EXCLUDED_FILES = ("cli.py",)

#: Figure modules whose payloads depend on :mod:`repro.optim` (they
#: import passes or sweep helpers); keep in sync with the figure
#: modules' imports — test_exec.py's invalidation matrix enforces it.
_OPTIM_DEPENDENT_MODULES = ("extensions", "ext_recovered_serving")


def _sha256(parts: Iterable[bytes]) -> str:
    digest = hashlib.sha256()
    for part in parts:
        digest.update(part)
        digest.update(b"\x00")
    return digest.hexdigest()


def canonical(value: Any) -> Any:
    """Reduce a config-tree value to JSON-serializable canonical form."""
    if dataclasses.is_dataclass(value) and not isinstance(value, type):
        fields = {
            f.name: canonical(getattr(value, f.name))
            for f in dataclasses.fields(value)
        }
        return {"__dataclass__": type(value).__name__, **fields}
    if isinstance(value, enum.Enum):
        return value.value
    if isinstance(value, (list, tuple)):
        return [canonical(item) for item in value]
    if isinstance(value, dict):
        return {str(key): canonical(item) for key, item in sorted(value.items())}
    if isinstance(value, bytes):
        return value.hex()
    if isinstance(value, float):
        # repr() round-trips exactly; float('1.0') vs 1.0 must not differ.
        return repr(value)
    return value


def canonical_json(value: Any) -> str:
    return json.dumps(canonical(value), sort_keys=True, separators=(",", ":"))


def config_hash(config: SystemConfig) -> str:
    """Hash of one fully-resolved system configuration."""
    return _sha256([canonical_json(config).encode()])


@lru_cache(maxsize=None)
def grid_config_hash() -> str:
    """Hash of the two configs the figure grid instantiates (the
    shared :func:`repro.config.grid_system_configs` pair — the same one
    golden snapshots and perf baselines stamp into their metadata)."""
    base, cc = grid_system_configs()
    return _sha256([
        config_hash(base).encode(),
        config_hash(cc).encode(),
    ])


@lru_cache(maxsize=None)
def calibration_hash() -> str:
    targets = {
        key: (target.value, target.source, target.kind)
        for key, target in calibration.PAPER.items()
    }
    return _sha256([canonical_json(targets).encode()])


def _read_source(path: str) -> bytes:
    """One source file's bytes (monkeypatchable seam for tests)."""
    with open(path, "rb") as handle:
        return handle.read()


def _core_source_files() -> Tuple[str, ...]:
    paths = []
    for dirpath, dirnames, filenames in os.walk(_PACKAGE_ROOT):
        rel = os.path.relpath(dirpath, _PACKAGE_ROOT)
        top = rel.split(os.sep, 1)[0]
        if top in _CORE_EXCLUDED_DIRS:
            dirnames[:] = []
            continue
        dirnames[:] = sorted(d for d in dirnames if d != "__pycache__")
        for name in sorted(filenames):
            if not name.endswith(".py"):
                continue
            if rel == "." and name in _CORE_EXCLUDED_FILES:
                continue
            paths.append(os.path.join(dirpath, name))
    return tuple(sorted(paths))


@lru_cache(maxsize=None)
def package_fingerprint() -> str:
    """Fingerprint of the simulator core (everything but figures/CLI/exec)."""
    files = _core_source_files()
    return _sha256(
        [os.path.relpath(p, _PACKAGE_ROOT).encode() for p in files]
        + [_read_source(p) for p in files]
    )


def _optim_source_files() -> Tuple[str, ...]:
    paths = []
    for tree in ("optim", "tune"):
        root = os.path.join(_PACKAGE_ROOT, tree)
        if not os.path.isdir(root):
            continue
        for dirpath, dirnames, filenames in os.walk(root):
            dirnames[:] = sorted(d for d in dirnames if d != "__pycache__")
            for name in sorted(filenames):
                if name.endswith(".py"):
                    paths.append(os.path.join(dirpath, name))
    return tuple(sorted(paths))


@lru_cache(maxsize=None)
def optim_fingerprint() -> str:
    """Fingerprint of the mitigation-pass layer and the tune driver —
    folded into the cell key only for ``_OPTIM_DEPENDENT_MODULES``."""
    files = _optim_source_files()
    return _sha256(
        [os.path.relpath(p, _PACKAGE_ROOT).encode() for p in files]
        + [_read_source(p) for p in files]
    )


def _figure_path(module: str) -> str:
    return os.path.join(_PACKAGE_ROOT, "figures", f"{module}.py")


def cell_fingerprint(module: str) -> str:
    """Per-figure code fingerprint (module + shared table code + the
    paper-target table + core, plus the optim/tune layer for the
    figures that import it)."""
    targets_path = os.path.join(_PACKAGE_ROOT, "check", "paper_targets.py")
    parts = [
        module.encode(),
        _read_source(_figure_path(module)),
        _read_source(_figure_path("common")),
        _read_source(targets_path),
        package_fingerprint().encode(),
    ]
    if module in _OPTIM_DEPENDENT_MODULES:
        parts.append(optim_fingerprint().encode())
    return _sha256(parts)


def clear_caches() -> None:
    """Forget memoized fingerprints (used after monkeypatching sources)."""
    grid_config_hash.cache_clear()
    calibration_hash.cache_clear()
    package_fingerprint.cache_clear()
    optim_fingerprint.cache_clear()
