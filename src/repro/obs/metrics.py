"""Metrics registry: counters, gauges, and histograms in simulated time.

Counters and gauges keep their full sample series ``(t_ns, value)`` so
they export as Chrome-trace counter ("C"-phase) tracks next to the
span timeline — bounce-pool occupancy, engine utilisation and
launch-queue depth over the run, not just their final values.
Histograms collect raw observations for distribution summaries.

All recording is pure bookkeeping (no simulation interaction), so the
registry can never perturb simulated timings.
"""

from __future__ import annotations

import math
from typing import Callable, Dict, List, Optional, Sequence, Tuple, Union

Number = Union[int, float]


def percentile(values: Sequence[Number], pct: float) -> float:
    """Nearest-rank percentile over raw samples.

    Uses the same convention as the serving results (index
    ``min(n - 1, int(pct / 100 * n))``) so every percentile reported
    anywhere in the repo reduces identically. Returns 0.0 on empty
    input.  NaN samples are rejected (``ValueError``): a NaN would
    sort unpredictably and silently poison every rank above it.
    """
    if not values:
        return 0.0
    if any(isinstance(v, float) and math.isnan(v) for v in values):
        raise ValueError("percentile: NaN sample in input")
    ordered = sorted(values)
    index = min(len(ordered) - 1, int(pct / 100.0 * len(ordered)))
    return float(ordered[index])


class Metric:
    """Base: a named instrument bound to its registry's clock."""

    kind = "metric"

    def __init__(self, name: str, registry: "MetricsRegistry") -> None:
        self.name = name
        self._registry = registry

    def _now(self) -> int:
        clock = self._registry._clock
        return clock() if clock is not None else 0


class Counter(Metric):
    """Monotonic cumulative count; each increment is a sample."""

    kind = "counter"

    def __init__(self, name: str, registry: "MetricsRegistry") -> None:
        super().__init__(name, registry)
        self.series: List[Tuple[int, Number]] = []

    @property
    def value(self) -> Number:
        return self.series[-1][1] if self.series else 0

    def inc(self, delta: Number = 1) -> None:
        if not self._registry.enabled or delta == 0:
            return
        self.series.append((self._now(), self.value + delta))


class Gauge(Metric):
    """Point-in-time sampled value (occupancy, queue depth...)."""

    kind = "gauge"

    def __init__(self, name: str, registry: "MetricsRegistry") -> None:
        super().__init__(name, registry)
        self.series: List[Tuple[int, Number]] = []

    @property
    def value(self) -> Number:
        return self.series[-1][1] if self.series else 0

    def set(self, value: Number) -> None:
        if not self._registry.enabled:
            return
        self.series.append((self._now(), value))

    def max(self) -> Number:
        return max((v for _, v in self.series), default=0)


class Histogram(Metric):
    """Raw observation collector for distribution summaries."""

    kind = "histogram"

    def __init__(self, name: str, registry: "MetricsRegistry") -> None:
        super().__init__(name, registry)
        self.values: List[Number] = []

    def observe(self, value: Number) -> None:
        if not self._registry.enabled:
            return
        if isinstance(value, float) and math.isnan(value):
            # Reject at the door: a NaN observation would make every
            # later summary() raise far from the culprit.
            raise ValueError(f"histogram {self.name!r}: NaN observation")
        self.values.append(value)

    @property
    def count(self) -> int:
        return len(self.values)

    @property
    def sum(self) -> Number:
        return sum(self.values)

    def mean(self) -> float:
        return self.sum / self.count if self.count else 0.0

    def percentile(self, pct: float) -> float:
        """Nearest-rank percentile of the raw observations."""
        return percentile(self.values, pct)

    def summary(self) -> Dict[str, float]:
        """Distribution summary: count, mean, min/max and p50/p95/p99."""
        if not self.values:
            return {
                "count": 0, "mean": 0.0, "min": 0.0, "max": 0.0,
                "p50": 0.0, "p95": 0.0, "p99": 0.0,
            }
        return {
            "count": self.count,
            "mean": self.mean(),
            "min": float(min(self.values)),
            "max": float(max(self.values)),
            "p50": self.percentile(50),
            "p95": self.percentile(95),
            "p99": self.percentile(99),
        }


_KINDS = {"counter": Counter, "gauge": Gauge, "histogram": Histogram}


class MetricsRegistry:
    """Create-or-get registry of named metrics for one run."""

    def __init__(
        self,
        clock: Optional[Callable[[], int]] = None,
        enabled: bool = True,
    ) -> None:
        self._clock = clock
        self.enabled = enabled
        self._metrics: Dict[str, Metric] = {}

    def bind_clock(self, clock: Callable[[], int]) -> None:
        self._clock = clock

    def _get(self, name: str, kind: str) -> Metric:
        metric = self._metrics.get(name)
        if metric is None:
            metric = _KINDS[kind](name, self)
            # A disabled registry hands out transient no-op instruments
            # without registering them, so it stays observably empty.
            if self.enabled:
                self._metrics[name] = metric
        elif metric.kind != kind:
            raise ValueError(
                f"metric {name!r} is a {metric.kind}, not a {kind}"
            )
        return metric

    def counter(self, name: str) -> Counter:
        return self._get(name, "counter")  # type: ignore[return-value]

    def gauge(self, name: str) -> Gauge:
        return self._get(name, "gauge")  # type: ignore[return-value]

    def histogram(self, name: str) -> Histogram:
        return self._get(name, "histogram")  # type: ignore[return-value]

    def __contains__(self, name: str) -> bool:
        return name in self._metrics

    def __len__(self) -> int:
        return len(self._metrics)

    def names(self) -> List[str]:
        return sorted(self._metrics)

    def sampled(self) -> List[Metric]:
        """Counters and gauges (the exportable counter tracks), by name."""
        return [
            self._metrics[name]
            for name in self.names()
            if self._metrics[name].kind in ("counter", "gauge")
        ]

    def histograms(self) -> List[Histogram]:
        return [
            self._metrics[name]  # type: ignore[misc]
            for name in self.names()
            if self._metrics[name].kind == "histogram"
        ]

    # -- trace import support ----------------------------------------------

    def import_series(
        self, name: str, kind: str, samples: List[Tuple[int, Number]]
    ) -> None:
        """Restore a counter/gauge sample series from a trace file."""
        metric = self._get(name, kind)
        metric.series = list(samples)  # type: ignore[union-attr]

    def import_histogram(self, name: str, values: List[Number]) -> None:
        metric = self._get(name, "histogram")
        metric.values = list(values)  # type: ignore[union-attr]
