"""Observability subsystem: hierarchical spans and a metrics registry.

This package is the simulator's answer to the paper's methodology —
the paper dissects CC overhead by *looking at traces* (Nsight
timelines, perf flame graphs, per-phase counters), so the simulator
records the same structure first-class:

* :mod:`repro.obs.spans` — hierarchical spans with parent/child
  causality and a layer taxonomy (``td -> tdx_module -> hypervisor ->
  driver -> dma -> gpu.copy -> gpu.compute``), recorded by the
  instrumentation hooks wired through the TDX, CUDA, memory, GPU and
  fault layers.
* :mod:`repro.obs.metrics` — counters/gauges/histograms sampled in
  *simulated* time (bounce-pool occupancy, engine utilisation,
  launch-queue depth, encrypted bytes, hypercall and retry counts).
* :mod:`repro.obs.summary` — per-layer attribution tables, Sec.-V
  model-term extraction, and run-vs-run diffing behind the
  ``repro trace`` CLI (imported explicitly; not re-exported here to
  keep the package import-cycle free).

Recording is pure bookkeeping: no simulated time is ever consumed by
an observability hook, so a run with tracing enabled is byte-identical
in timing to one with tracing disabled (guarded by a benchmark test).
"""

from .metrics import Counter, Gauge, Histogram, MetricsRegistry, percentile
from .spans import CANONICAL_LAYERS, Span, SpanRecorder, layer_sort_key

__all__ = [
    "CANONICAL_LAYERS",
    "Counter",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
    "Span",
    "SpanRecorder",
    "layer_sort_key",
    "percentile",
]
