"""Hierarchical spans with a CC layer taxonomy.

A :class:`Span` is one timed region of the stack with explicit
parent/child causality — the structural unit the paper's analysis
needs to say *which layer* a nanosecond belongs to (a hypercall inside
``dma_direct_alloc`` inside ``cudaLaunchKernel`` is charged to the TDX
module, not the driver).

Spans are recorded two ways:

* as a context manager (:meth:`SpanRecorder.span`) around generator
  code — the span stays open across simulation yields, exactly like
  :class:`repro.tdx.CallStackRecorder` frames;
* retroactively (:meth:`SpanRecorder.record`) for operations whose
  duration is only known after the fact (hypercalls, fault-recovery
  intervals, synthesized pipeline stages).

Open-span nesting is tracked per *scope* so concurrent simulation
processes (the CPU thread vs. GPU engines) cannot misparent each
other's spans: CPU-side instrumentation uses the default ``"cpu"``
scope, the GPU command processor uses one scope per stream.

Recording never touches the simulation clock — observability must not
perturb the model (see ``benchmarks/test_extensions.py``).
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass, field
from typing import Any, Callable, Dict, Iterator, List, Optional, Tuple, Union

# The layer taxonomy, innermost-trusted first.  Spans may use other
# layer strings (e.g. "recovery"); canonical layers sort first in
# reports, extras sort alphabetically after.
CANONICAL_LAYERS = (
    "td",  # in-guest work private to the trust domain (crypto, page ops)
    "tdx_module",  # SEAM-mode TDX-module transitions (tdcall/seamcall)
    "hypervisor",  # plain VM exits (cc-off guests)
    "driver",  # CUDA runtime + kernel-mode driver work
    "dma",  # engine-resident transfer stages / UVM migration traffic
    "gpu.copy",  # copy-engine occupancy
    "gpu.compute",  # compute-engine occupancy (KET)
)


def layer_sort_key(layer: str) -> Tuple[int, str]:
    """Canonical layers in taxonomy order, then extras alphabetically."""
    try:
        return (CANONICAL_LAYERS.index(layer), layer)
    except ValueError:
        return (len(CANONICAL_LAYERS), layer)


@dataclass(slots=True)
class Span:
    """One timed region with parent/child causality."""

    span_id: int
    parent_id: Optional[int]
    name: str
    layer: str
    start_ns: int
    duration_ns: int = 0
    attrs: Dict[str, Any] = field(default_factory=dict)

    @property
    def end_ns(self) -> int:
        return self.start_ns + self.duration_ns


def _merge(intervals: List[Tuple[int, int]]) -> List[Tuple[int, int]]:
    """Merge possibly-overlapping (start, end) intervals."""
    merged: List[Tuple[int, int]] = []
    for start, end in sorted(intervals):
        if merged and start <= merged[-1][1]:
            merged[-1] = (merged[-1][0], max(merged[-1][1], end))
        else:
            merged.append((start, end))
    return merged


class _NullSpanContext:
    """Shared no-op context for disabled recorders (no allocation)."""

    __slots__ = ()

    def __enter__(self) -> None:
        return None

    def __exit__(self, *exc: Any) -> bool:
        return False


_NULL_SPAN_CONTEXT = _NullSpanContext()


class _SpanContext:
    """Class-based context manager for :meth:`SpanRecorder.span`.

    ``span()`` sits on the per-launch hot path (~100k entries per
    figure cell); a plain object with ``__enter__``/``__exit__`` avoids
    the generator frame + ``contextlib`` dispatch per call.
    """

    __slots__ = ("_recorder", "_name", "_layer", "_scope", "_attrs",
                 "_span", "_stack")

    def __init__(
        self,
        recorder: "SpanRecorder",
        name: str,
        layer: str,
        scope: str,
        attrs: Dict[str, Any],
    ) -> None:
        self._recorder = recorder
        self._name = name
        self._layer = layer
        self._scope = scope
        self._attrs = attrs

    def __enter__(self) -> Span:
        recorder = self._recorder
        stack = recorder._open.get(self._scope)
        if stack is None:
            stack = recorder._open[self._scope] = []
        span = Span(
            span_id=next(recorder._ids),
            parent_id=stack[-1].span_id if stack else None,
            name=self._name,
            layer=self._layer,
            start_ns=recorder._clock(),
            attrs=self._attrs,
        )
        recorder.spans.append(span)
        stack.append(span)
        self._span = span
        self._stack = stack
        return span

    def __exit__(self, *exc: Any) -> bool:
        self._stack.pop()
        span = self._span
        span.duration_ns = self._recorder._clock() - span.start_ns
        return False


class SpanRecorder:
    """Collects spans for one run; attached to every :class:`Trace`."""

    def __init__(
        self,
        clock: Optional[Callable[[], int]] = None,
        enabled: bool = True,
    ) -> None:
        self._clock = clock
        self.enabled = enabled
        self.spans: List[Span] = []
        self._ids = itertools.count(1)
        self._open: Dict[str, List[Span]] = {}

    def bind_clock(self, clock: Callable[[], int]) -> None:
        self._clock = clock

    def __len__(self) -> int:
        return len(self.spans)

    def __iter__(self) -> Iterator[Span]:
        return iter(self.spans)

    # -- recording ---------------------------------------------------------

    def span(self, name: str, layer: str, scope: str = "cpu", **attrs: Any):
        """Open a span for the duration of a with-block.

        Safe around generator code: the span stays open across
        simulation yields and closes (capturing the end time) when the
        block exits, including on exceptions.  Returns a reusable no-op
        context (entering yields ``None``) when recording is disabled.
        """
        if not self.enabled or self._clock is None:
            return _NULL_SPAN_CONTEXT
        return _SpanContext(self, name, layer, scope, attrs)

    def record(
        self,
        name: str,
        layer: str,
        start_ns: int,
        duration_ns: int,
        scope: str = "cpu",
        parent: Optional[Union[Span, int]] = None,
        **attrs: Any,
    ) -> Optional[Span]:
        """Record a completed span retroactively.

        The parent defaults to the innermost open span of ``scope`` —
        this is how fault-recovery spans end up nested under the
        operation they delayed — or may be given explicitly.
        """
        if not self.enabled:
            return None
        if parent is None:
            stack = self._open.get(scope)
            parent_id = stack[-1].span_id if stack else None
        elif isinstance(parent, Span):
            parent_id = parent.span_id
        else:
            parent_id = parent
        span = Span(
            span_id=next(self._ids),
            parent_id=parent_id,
            name=name,
            layer=layer,
            start_ns=start_ns,
            duration_ns=duration_ns,
            attrs=attrs,
        )
        self.spans.append(span)
        return span

    def add(self, span: Span) -> Span:
        """Append an externally built span (trace import), keeping the
        id counter ahead of every imported id."""
        self.spans.append(span)
        self._ids = itertools.count(
            max(span.span_id + 1, next(self._ids))
        )
        return span

    # -- queries -----------------------------------------------------------

    def layers(self) -> List[str]:
        """Distinct layers present, taxonomy order."""
        return sorted({s.layer for s in self.spans}, key=layer_sort_key)

    def by_layer(self) -> Dict[str, List[Span]]:
        result: Dict[str, List[Span]] = {}
        for span in self.spans:
            result.setdefault(span.layer, []).append(span)
        return result

    def layer_busy_ns(self) -> Dict[str, int]:
        """Union busy time per layer (overlapping spans count once)."""
        result: Dict[str, int] = {}
        for layer, spans in self.by_layer().items():
            merged = _merge([(s.start_ns, s.end_ns) for s in spans])
            result[layer] = sum(end - start for start, end in merged)
        return result

    def children_of(self, span_id: int) -> List[Span]:
        return [s for s in self.spans if s.parent_id == span_id]

    def roots(self) -> List[Span]:
        return [s for s in self.spans if s.parent_id is None]

    def subtree(self, root: Span) -> List[Span]:
        """``root`` plus all transitive children, in id order."""
        wanted = {root.span_id}
        selected = [root]
        for span in sorted(self.spans, key=lambda s: s.span_id):
            if span.parent_id in wanted:
                wanted.add(span.span_id)
                selected.append(span)
        return sorted(selected, key=lambda s: s.span_id)

    def total_ns(self, layer: Optional[str] = None) -> int:
        return sum(
            s.duration_ns
            for s in self.spans
            if layer is None or s.layer == layer
        )
