"""Cross-run overhead attribution built on spans + metrics.

Produces the ``repro trace summarize`` and ``repro trace diff``
reports:

* :func:`layer_table` — per-layer busy/total time from the span tree
  (the taxonomy td -> tdx_module -> hypervisor -> driver -> dma ->
  gpu.copy -> gpu.compute);
* :func:`model_components` — the paper's Sec.-V model terms measured
  from the same trace: T (memory time), E (software encryption, from
  crypto-flagged spans), L (KLO), Q (LQT + KQT), K (KET), D (T_other)
  and recovery;
* :func:`summarize` — one-trace report whose component table is
  computed by :func:`repro.core.breakdown` (so the sums match it
  *exactly*, not approximately);
* :func:`diff` — CC-on vs CC-off attribution: per-component deltas,
  each component's share of the total overhead, and a drift check of
  the Sec.-V model prediction against the observed span.
* :func:`serve_attributions` / :func:`serve_tail_diff` — serving-trace
  awareness: traces carrying per-request telemetry spans (layer
  ``serve.req``, see :mod:`repro.serve.telemetry`) get their request
  records reconstructed, a serving section in :func:`summarize`, and a
  tail-forensics diff attributing the base-vs-CC TTFT p99 delta to the
  same Sec.-V components.

This module deliberately lives outside ``repro.obs.__init__`` —
importing it pulls in :mod:`repro.core`, which imports the profiler,
which imports ``repro.obs``; keeping it out of the package root keeps
that cycle one-directional.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List

from .. import units
from ..core.breakdown import CATEGORIES, breakdown
from ..core.metrics import kernel_metrics, launch_metrics
from ..core.model import decompose
from ..profiler.collector import Trace
from .spans import Span, layer_sort_key

# Report order of the Sec.-V model terms.
COMPONENTS = ("T", "E", "L", "Q", "K", "D", "recovery")

_COMPONENT_LABELS = {
    "T": "T: memory transfer",
    "E": "E: software encryption",
    "L": "L: launch overhead (KLO)",
    "Q": "Q: queuing (LQT+KQT)",
    "K": "K: kernel execution (KET)",
    "D": "D: alloc/free/sync",
    "recovery": "recovery: fault handling",
}


def crypto_ns(trace: Trace) -> int:
    """Total software-crypto time: sum of crypto-flagged spans."""
    return sum(
        s.duration_ns for s in trace.spans if s.attrs.get("crypto")
    )


def model_components(trace: Trace) -> Dict[str, int]:
    """The Sec.-V model terms, measured from one trace.

    T, D and recovery come from :func:`repro.core.model.decompose`;
    L, Q and K from :mod:`repro.core.metrics`; E is the union of
    crypto-flagged spans (AES-GCM staging, pushbuffer encryption,
    encrypted paging).  E overlaps T/L by construction — it answers
    "how much time went into software crypto", not "which wall-clock
    nanoseconds", and is reported alongside rather than summed.
    """
    deco = decompose(trace)
    launches = launch_metrics(trace)
    kernels = kernel_metrics(trace)
    return {
        "T": deco.t_mem_ns,
        "E": crypto_ns(trace),
        "L": launches.total_klo_ns,
        "Q": launches.total_lqt_ns + kernels.total_kqt_ns,
        "K": kernels.total_ket_ns,
        "D": deco.t_other_ns,
        "recovery": deco.t_recovery_ns,
    }


@dataclass(frozen=True)
class LayerRow:
    layer: str
    busy_ns: int  # union of the layer's span intervals
    total_ns: int  # plain sum (double-counts overlap/nesting)
    spans: int


def layer_table(trace: Trace) -> List[LayerRow]:
    """Per-layer time table in taxonomy order."""
    busy = trace.spans.layer_busy_ns()
    by_layer = trace.spans.by_layer()
    return [
        LayerRow(
            layer=layer,
            busy_ns=busy[layer],
            total_ns=sum(s.duration_ns for s in by_layer[layer]),
            spans=len(by_layer[layer]),
        )
        for layer in sorted(by_layer, key=layer_sort_key)
    ]


def serve_attributions(trace: Trace) -> List:
    """Reconstruct per-request telemetry records from a serving trace.

    The inverse of :func:`repro.serve.telemetry.record_telemetry_spans`
    for the ``serve.req`` root spans; works on live traces and on
    traces re-imported from a Chrome export (attrs round-trip).
    Returns ``[]`` for traces without serving telemetry.  Imported
    lazily to keep the obs -> serve dependency one-directional at
    module load.
    """
    from ..serve.telemetry import (
        ATTRIBUTION_COMPONENTS,
        SERVE_REQUEST_LAYER,
        RequestAttribution,
    )

    attributions = []
    for span in trace.spans:
        if span.layer != SERVE_REQUEST_LAYER or span.name != "request":
            continue
        attrs = span.attrs
        attributions.append(
            RequestAttribution(
                req_id=int(attrs["req"]),
                tenant=str(attrs["tenant"]),
                status=str(attrs["status"]),
                cause=str(attrs["cause"]),
                arrival_ns=span.start_ns,
                admitted_ns=attrs["admitted_ns"],
                first_token_ns=attrs["first_token_ns"],
                finish_ns=span.end_ns,
                prompt_tokens=int(attrs["prompt_tokens"]),
                gen_tokens=int(attrs["gen_tokens"]),
                preemptions=int(attrs["preemptions"]),
                components={
                    c: attrs[f"c_{c}"]
                    for c in ATTRIBUTION_COMPONENTS
                    if attrs.get(f"c_{c}")
                },
                ttft_components={
                    c: attrs[f"f_{c}"]
                    for c in ATTRIBUTION_COMPONENTS
                    if attrs.get(f"f_{c}")
                },
            )
        )
    attributions.sort(key=lambda a: a.req_id)
    return attributions


def serve_tail_diff(base_trace: Trace, cc_trace: Trace) -> Dict:
    """Tail-forensics diff between two serving traces with telemetry.

    Raises ``ValueError`` if either trace carries no per-request
    telemetry spans.  The returned dict is
    :func:`repro.serve.telemetry.forensics_diff` output: per-component
    deltas that sum exactly to the TTFT p99 delta.
    """
    from ..serve.telemetry import forensics_diff

    base = serve_attributions(base_trace)
    cc = serve_attributions(cc_trace)
    if not base or not cc:
        raise ValueError(
            "serve_tail_diff needs two traces with serve telemetry "
            "(run `repro serve --trace` with telemetry enabled)"
        )
    return forensics_diff(base, cc)


def top_spans(trace: Trace, count: int = 10) -> List[Span]:
    """The ``count`` longest spans (ties broken by id for determinism)."""
    return sorted(
        trace.spans, key=lambda s: (-s.duration_ns, s.span_id)
    )[:count]


def summarize(trace: Trace, top: int = 10) -> str:
    """Human-readable per-layer + component + top-span report.

    The component table is produced by :func:`repro.core.breakdown` on
    this very trace, so its rows sum to the breakdown totals exactly.
    """
    lines: List[str] = []
    label = trace.label or "trace"
    span_ns = trace.span_ns()
    lines.append(f"trace {label}: span {units.to_ms(span_ns):.3f} ms, "
                 f"{len(trace.events)} events, {len(trace.spans)} spans")

    rows = layer_table(trace)
    if rows:
        lines.append("")
        lines.append("per-layer time (span union / sum / count):")
        for row in rows:
            lines.append(
                f"  {row.layer:<12}{units.to_ms(row.busy_ns):12.3f} ms"
                f"{units.to_ms(row.total_ns):12.3f} ms{row.spans:8d}"
            )

    result = breakdown(trace)
    lines.append("")
    lines.append("wall-clock attribution (core.breakdown):")
    for category, value_ns, share in result.rows():
        lines.append(
            f"  {category:<14}{units.to_ms(value_ns):12.3f} ms"
            f"{share * 100:7.1f}%"
        )
    total = sum(result.by_category_ns.get(c, 0) for c in CATEGORIES)
    lines.append(
        f"  {'total':<14}{units.to_ms(total):12.3f} ms  100.0%"
    )

    comps = model_components(trace)
    lines.append("")
    lines.append("Sec. V model terms:")
    for key in COMPONENTS:
        lines.append(
            f"  {_COMPONENT_LABELS[key]:<28}"
            f"{units.to_ms(comps[key]):12.3f} ms"
        )

    attributions = serve_attributions(trace)
    if attributions:
        from ..serve.telemetry import (
            ATTRIBUTION_COMPONENTS,
            latency_percentiles,
        )

        pct = latency_percentiles(attributions)
        done = sum(1 for a in attributions if a.status == "completed")
        shed = sum(1 for a in attributions if a.status == "shed")
        failed = sum(1 for a in attributions if a.status == "failed")
        lines.append("")
        lines.append(
            f"serving telemetry: {len(attributions)} requests "
            f"({done} completed, {shed} shed, {failed} failed)"
        )
        lines.append(
            f"  ttft p50/p99 {pct['ttft_ms']['p50']:.2f}/"
            f"{pct['ttft_ms']['p99']:.2f} ms  "
            f"e2e p99 {pct['e2e_ms']['p99']:.2f} ms"
        )
        sums = {c: 0 for c in ATTRIBUTION_COMPONENTS}
        for attribution in attributions:
            for component, value in attribution.components.items():
                sums[component] += value
        lines.append("  request-time blame: " + ", ".join(
            f"{c}={units.to_ms(v):.2f}ms"
            for c, v in sums.items() if v
        ))

    counters = [
        m for m in trace.metrics.sampled() if m.series
    ]
    if counters:
        lines.append("")
        lines.append("metrics (final value / samples):")
        for metric in counters:
            final = metric.series[-1][1]
            lines.append(
                f"  {metric.name:<26}{final:>16}"
                f"{len(metric.series):8d} samples"
            )

    spans = top_spans(trace, top)
    if spans:
        lines.append("")
        lines.append(f"top {len(spans)} spans:")
        for span in spans:
            lines.append(
                f"  {span.name:<28}{span.layer:<12}"
                f"{units.to_ms(span.duration_ns):12.3f} ms"
                f"  @{units.to_ms(span.start_ns):.3f}"
            )
    return "\n".join(lines)


@dataclass(frozen=True)
class ComponentDelta:
    component: str
    base_ns: int
    cc_ns: int

    @property
    def delta_ns(self) -> int:
        return self.cc_ns - self.base_ns

    @property
    def ratio(self) -> float:
        if self.base_ns == 0:
            return float("inf") if self.cc_ns else 1.0
        return self.cc_ns / self.base_ns


@dataclass(frozen=True)
class TraceDiff:
    """CC-on vs CC-off attribution with a model drift check."""

    base_label: str
    cc_label: str
    base_span_ns: int
    cc_span_ns: int
    components: List[ComponentDelta]
    # Relative error of the Sec.-V prediction vs observed span, per side.
    base_drift: float
    cc_drift: float
    tolerance: float
    flagged: List[str] = field(default_factory=list)

    @property
    def overhead_ns(self) -> int:
        return self.cc_span_ns - self.base_span_ns

    def component(self, name: str) -> ComponentDelta:
        for row in self.components:
            if row.component == name:
                return row
        raise KeyError(name)


def diff(
    base_trace: Trace, cc_trace: Trace, tolerance: float = 0.01
) -> TraceDiff:
    """Attribute the CC-on vs CC-off gap to the Sec.-V model terms.

    Components are measured per side with :func:`model_components`;
    the drift check validates that the model prediction P = A+B+C+D
    reproduces each side's observed span within ``tolerance``
    (flagging ``model:base`` / ``model:cc`` otherwise), so a diff row
    can be trusted as genuine attribution rather than model error.
    """
    base_comps = model_components(base_trace)
    cc_comps = model_components(cc_trace)
    components = [
        ComponentDelta(key, base_comps[key], cc_comps[key])
        for key in COMPONENTS
    ]
    flagged: List[str] = []
    drifts = {}
    for side, trace in (("base", base_trace), ("cc", cc_trace)):
        deco = decompose(trace)
        drifts[side] = abs(deco.prediction_error)
        if drifts[side] > tolerance:
            flagged.append(f"model:{side}")
    return TraceDiff(
        base_label=base_trace.label or "base",
        cc_label=cc_trace.label or "cc",
        base_span_ns=base_trace.span_ns(),
        cc_span_ns=cc_trace.span_ns(),
        components=components,
        base_drift=drifts["base"],
        cc_drift=drifts["cc"],
        tolerance=tolerance,
        flagged=flagged,
    )


def render_diff(result: TraceDiff) -> str:
    lines: List[str] = []
    lines.append(
        f"diff {result.base_label} -> {result.cc_label}: "
        f"{units.to_ms(result.base_span_ns):.3f} ms -> "
        f"{units.to_ms(result.cc_span_ns):.3f} ms "
        f"(+{units.to_ms(result.overhead_ns):.3f} ms)"
    )
    lines.append("")
    lines.append(
        f"  {'component':<28}{'base':>12}{'cc':>12}{'delta':>12}{'x':>8}"
    )
    for row in result.components:
        ratio = (
            f"{row.ratio:7.2f}x" if row.ratio != float("inf") else "    new"
        )
        lines.append(
            f"  {_COMPONENT_LABELS[row.component]:<28}"
            f"{units.to_ms(row.base_ns):11.3f} {units.to_ms(row.cc_ns):11.3f} "
            f"{units.to_ms(row.delta_ns):11.3f} {ratio}"
        )
    lines.append("")
    lines.append(
        f"model drift: base {result.base_drift * 100:.2f}%, "
        f"cc {result.cc_drift * 100:.2f}% "
        f"(tolerance {result.tolerance * 100:.1f}%)"
    )
    if result.flagged:
        lines.append("FLAGGED: " + ", ".join(result.flagged))
    else:
        lines.append("model terms within tolerance")
    return "\n".join(lines)
