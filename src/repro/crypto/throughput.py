"""Calibrated single-core crypto throughput model (paper Fig. 4b).

The paper measures single-core throughput of encryption/authentication
algorithms on an Intel Emerald Rapids (EMR) Xeon 6530 and an NVIDIA
Grace CPU, both with hardware AES acceleration (AES-NI / ARMv8 crypto
extensions).  The two anchor values quoted in the text are:

* AES-GCM on EMR: **3.36 GB/s** — the ceiling for CC PCIe transfers
  (observed pin-h2d peak is 3.03 GB/s, slightly below it).
* GHASH (authentication only) on EMR: up to **8.9 GB/s**.

The remaining entries are calibrated estimates consistent with public
OpenSSL ``speed`` results for these CPU generations; they exist so the
figure has the same comparative shape (CTR > GCM > SHA-2; GHASH
fastest; Grace slightly behind EMR on AES throughput).

Throughput scales mildly with buffer size (small buffers pay per-call
overhead); :func:`effective_throughput` models that with a simple
latency+bandwidth curve.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List

from .. import units


@dataclass(frozen=True)
class AlgorithmSpec:
    """Peak single-core throughput and per-call overhead of an algorithm."""

    name: str
    peak_gbps: float  # decimal GB/s at large buffer sizes
    call_overhead_ns: int  # fixed per-invocation setup cost
    confidentiality: bool  # encrypts payload
    integrity: bool  # authenticates payload

    @property
    def peak_bytes_per_sec(self) -> float:
        return self.peak_gbps * units.GB


# Single-core throughput tables, by CPU.  EMR anchors come from the
# paper text; everything else is a calibrated estimate (see module
# docstring).
_EMR = "intel-emr-xeon-6530"
_GRACE = "nvidia-grace"

_TABLES: Dict[str, Dict[str, AlgorithmSpec]] = {
    _EMR: {
        "aes-128-gcm": AlgorithmSpec("aes-128-gcm", 3.36, 450, True, True),
        "aes-256-gcm": AlgorithmSpec("aes-256-gcm", 2.98, 470, True, True),
        "aes-128-ctr": AlgorithmSpec("aes-128-ctr", 6.80, 300, True, False),
        "aes-128-xts": AlgorithmSpec("aes-128-xts", 5.10, 340, True, False),
        "ghash": AlgorithmSpec("ghash", 8.90, 250, False, True),
        "chacha20-poly1305": AlgorithmSpec(
            "chacha20-poly1305", 2.40, 500, True, True
        ),
        "sha-256": AlgorithmSpec("sha-256", 1.95, 380, False, True),
    },
    _GRACE: {
        "aes-128-gcm": AlgorithmSpec("aes-128-gcm", 3.05, 430, True, True),
        "aes-256-gcm": AlgorithmSpec("aes-256-gcm", 2.71, 450, True, True),
        "aes-128-ctr": AlgorithmSpec("aes-128-ctr", 6.10, 290, True, False),
        "aes-128-xts": AlgorithmSpec("aes-128-xts", 4.60, 330, True, False),
        "ghash": AlgorithmSpec("ghash", 7.60, 260, False, True),
        "chacha20-poly1305": AlgorithmSpec(
            "chacha20-poly1305", 2.95, 480, True, True
        ),
        "sha-256": AlgorithmSpec("sha-256", 2.30, 360, False, True),
    },
}

EMR = _EMR
GRACE = _GRACE
DEFAULT_TRANSFER_CIPHER = "aes-128-gcm"


def cpus() -> List[str]:
    return sorted(_TABLES)


def algorithms(cpu: str = _EMR) -> List[str]:
    return sorted(_TABLES[_require_cpu(cpu)])


def _require_cpu(cpu: str) -> str:
    if cpu not in _TABLES:
        raise KeyError(f"unknown CPU {cpu!r}; known: {sorted(_TABLES)}")
    return cpu


def spec(algorithm: str, cpu: str = _EMR) -> AlgorithmSpec:
    table = _TABLES[_require_cpu(cpu)]
    if algorithm not in table:
        raise KeyError(
            f"unknown algorithm {algorithm!r} for {cpu}; known: {sorted(table)}"
        )
    return table[algorithm]


def crypt_time_ns(size_bytes: int, algorithm: str, cpu: str = _EMR) -> int:
    """Single-core time to process ``size_bytes`` with ``algorithm``."""
    if size_bytes < 0:
        raise ValueError("size must be non-negative")
    if size_bytes == 0:
        return 0
    alg = spec(algorithm, cpu)
    return alg.call_overhead_ns + units.transfer_time_ns(
        size_bytes, alg.peak_bytes_per_sec
    )


def effective_throughput(
    size_bytes: int, algorithm: str, cpu: str = _EMR
) -> float:
    """Achieved GB/s for one call at this buffer size (latency included)."""
    duration = crypt_time_ns(size_bytes, algorithm, cpu)
    return units.bandwidth_gb_per_sec(size_bytes, duration)
