"""AES modes of operation used by the CC stack.

* CTR — keystream base for GCM and a throughput comparison point.
* GCM — AEAD used for CPU<->GPU PCIe traffic under H100 CC
  (paper Sec. II-A / III: "communication over the PCIe bus is encrypted
  using AES-GCM ... implemented in software using OpenSSL with AES-NI").
* GHASH/GMAC — authentication-only alternative the paper measures at up
  to 8.9 GB/s "at the cost of confidentiality" (Observation 2).
* XTS — counter-less mode used by Intel TME-MK for TD private DRAM
  (paper Sec. II-A).

All implementations are functional and validated against NIST test
vectors in the test suite.
"""

from __future__ import annotations

from typing import Tuple

from .aes import AES


class AuthenticationError(ValueError):
    """GCM tag verification failed."""


def _xor_bytes(a: bytes, b: bytes) -> bytes:
    return bytes(x ^ y for x, y in zip(a, b))


def _inc32(block: bytes) -> bytes:
    """Increment the low 32 bits of a 16-byte counter block (GCM inc32)."""
    prefix, counter = block[:12], int.from_bytes(block[12:], "big")
    counter = (counter + 1) & 0xFFFFFFFF
    return prefix + counter.to_bytes(4, "big")


class AESCTR:
    """AES in counter mode with a full-width 128-bit big-endian counter."""

    def __init__(self, key: bytes) -> None:
        self._aes = AES(key)

    def crypt(self, nonce: bytes, data: bytes) -> bytes:
        """Encrypt or decrypt (CTR is symmetric)."""
        if len(nonce) != 16:
            raise ValueError("CTR nonce must be 16 bytes")
        counter = int.from_bytes(nonce, "big")
        out = bytearray()
        for offset in range(0, len(data), 16):
            keystream = self._aes.encrypt_block(
                (counter & ((1 << 128) - 1)).to_bytes(16, "big")
            )
            chunk = data[offset : offset + 16]
            out.extend(_xor_bytes(chunk, keystream[: len(chunk)]))
            counter += 1
        return bytes(out)


# --- GHASH -------------------------------------------------------------------

_R = 0xE1 << 120  # GCM reduction polynomial representation


def _gf128_mul(x: int, y: int) -> int:
    """Multiply in GF(2^128) with the GCM bit ordering."""
    z = 0
    v = x
    for i in range(127, -1, -1):
        if (y >> i) & 1:
            z ^= v
        if v & 1:
            v = (v >> 1) ^ _R
        else:
            v >>= 1
    return z


class GHASH:
    """GHASH universal hash over GF(2^128) (NIST SP 800-38D)."""

    def __init__(self, h: bytes) -> None:
        if len(h) != 16:
            raise ValueError("GHASH subkey must be 16 bytes")
        self._h = int.from_bytes(h, "big")
        self._y = 0

    def update(self, data: bytes) -> "GHASH":
        """Absorb data, zero-padded to a 16-byte boundary."""
        for offset in range(0, len(data), 16):
            block = data[offset : offset + 16].ljust(16, b"\x00")
            self._y = _gf128_mul(
                self._y ^ int.from_bytes(block, "big"), self._h
            )
        return self

    def digest(self) -> bytes:
        return self._y.to_bytes(16, "big")


class AESGCM:
    """AES-GCM AEAD (NIST SP 800-38D), 96-bit IVs, 128-bit tags."""

    TAG_SIZE = 16

    def __init__(self, key: bytes) -> None:
        self._aes = AES(key)
        self._h = self._aes.encrypt_block(b"\x00" * 16)

    def _j0(self, iv: bytes) -> bytes:
        if len(iv) == 12:
            return iv + b"\x00\x00\x00\x01"
        ghash = GHASH(self._h)
        ghash.update(iv)
        ghash.update(b"\x00" * 8 + (8 * len(iv)).to_bytes(8, "big"))
        return ghash.digest()

    def _gctr(self, icb: bytes, data: bytes) -> bytes:
        out = bytearray()
        cb = icb
        for offset in range(0, len(data), 16):
            keystream = self._aes.encrypt_block(cb)
            chunk = data[offset : offset + 16]
            out.extend(_xor_bytes(chunk, keystream[: len(chunk)]))
            cb = _inc32(cb)
        return bytes(out)

    def _tag(self, j0: bytes, aad: bytes, ciphertext: bytes) -> bytes:
        ghash = GHASH(self._h)
        ghash.update(aad)
        ghash.update(ciphertext)
        lengths = (8 * len(aad)).to_bytes(8, "big") + (
            8 * len(ciphertext)
        ).to_bytes(8, "big")
        ghash.update(lengths)
        return _xor_bytes(self._aes.encrypt_block(j0), ghash.digest())

    def encrypt(
        self, iv: bytes, plaintext: bytes, aad: bytes = b""
    ) -> Tuple[bytes, bytes]:
        """Return (ciphertext, tag)."""
        j0 = self._j0(iv)
        ciphertext = self._gctr(_inc32(j0), plaintext)
        return ciphertext, self._tag(j0, aad, ciphertext)

    def decrypt(
        self, iv: bytes, ciphertext: bytes, tag: bytes, aad: bytes = b""
    ) -> bytes:
        """Verify tag and return plaintext; raises AuthenticationError."""
        j0 = self._j0(iv)
        expected = self._tag(j0, aad, ciphertext)
        if not _constant_time_eq(expected, tag):
            raise AuthenticationError("AES-GCM tag mismatch")
        return self._gctr(_inc32(j0), ciphertext)


def _constant_time_eq(a: bytes, b: bytes) -> bool:
    if len(a) != len(b):
        return False
    diff = 0
    for x, y in zip(a, b):
        diff |= x ^ y
    return diff == 0


class AESXTS:
    """AES-XTS (IEEE 1619 / NIST SP 800-38E), the TME-MK cipher.

    XTS is counter-less: the tweak is derived from the data unit (page)
    address, so no per-line metadata must be stored — the property the
    paper highlights as the reason TME-MK can protect the entire memory
    space cheaply (Sec. II-A).
    """

    def __init__(self, key: bytes) -> None:
        if len(key) not in (32, 64):
            raise ValueError("XTS key must be 32 (2x128) or 64 (2x256) bytes")
        half = len(key) // 2
        self._data_cipher = AES(key[:half])
        self._tweak_cipher = AES(key[half:])

    @staticmethod
    def _mul_alpha(tweak: int) -> int:
        """Multiply tweak by the primitive alpha in GF(2^128), XTS layout."""
        carry = (tweak >> 127) & 1
        tweak = (tweak << 1) & ((1 << 128) - 1)
        if carry:
            tweak ^= 0x87
        return tweak

    def _crypt(self, sector: int, data: bytes, encrypt: bool) -> bytes:
        if len(data) < 16:
            raise ValueError("XTS data unit must be at least one block")
        if len(data) % 16 != 0:
            raise NotImplementedError(
                "ciphertext stealing not required for page-aligned memory"
            )
        tweak_block = self._tweak_cipher.encrypt_block(
            sector.to_bytes(16, "little")
        )
        # XTS tweak arithmetic operates on the little-endian integer view.
        tweak = int.from_bytes(tweak_block, "little")
        op = (
            self._data_cipher.encrypt_block
            if encrypt
            else self._data_cipher.decrypt_block
        )
        out = bytearray()
        for offset in range(0, len(data), 16):
            t_bytes = tweak.to_bytes(16, "little")
            block = _xor_bytes(data[offset : offset + 16], t_bytes)
            block = op(block)
            out.extend(_xor_bytes(block, t_bytes))
            tweak = self._mul_alpha(tweak)
        return bytes(out)

    def encrypt(self, sector: int, plaintext: bytes) -> bytes:
        return self._crypt(sector, plaintext, encrypt=True)

    def decrypt(self, sector: int, ciphertext: bytes) -> bytes:
        return self._crypt(sector, ciphertext, encrypt=False)
