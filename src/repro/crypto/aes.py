"""AES block cipher (FIPS-197), implemented from scratch.

This is a straightforward table-free implementation (S-box lookups plus
explicit MixColumns arithmetic) supporting AES-128/192/256.  It is used
*functionally* by the simulator: transfer payloads really are encrypted
into the bounce buffer with AES-GCM (see :mod:`repro.crypto.gcm`), and
TD private memory contents can be encrypted with AES-XTS, so end-to-end
tests can assert that plaintext round-trips through the full CC data
path.

Performance of this pure-Python code is deliberately *not* what the
simulator uses for timing; simulated encryption time comes from the
calibrated single-core throughput model in
:mod:`repro.crypto.throughput` (paper Fig. 4b).
"""

from __future__ import annotations

from typing import List, Sequence

_SBOX = [
    0x63, 0x7C, 0x77, 0x7B, 0xF2, 0x6B, 0x6F, 0xC5, 0x30, 0x01, 0x67, 0x2B,
    0xFE, 0xD7, 0xAB, 0x76, 0xCA, 0x82, 0xC9, 0x7D, 0xFA, 0x59, 0x47, 0xF0,
    0xAD, 0xD4, 0xA2, 0xAF, 0x9C, 0xA4, 0x72, 0xC0, 0xB7, 0xFD, 0x93, 0x26,
    0x36, 0x3F, 0xF7, 0xCC, 0x34, 0xA5, 0xE5, 0xF1, 0x71, 0xD8, 0x31, 0x15,
    0x04, 0xC7, 0x23, 0xC3, 0x18, 0x96, 0x05, 0x9A, 0x07, 0x12, 0x80, 0xE2,
    0xEB, 0x27, 0xB2, 0x75, 0x09, 0x83, 0x2C, 0x1A, 0x1B, 0x6E, 0x5A, 0xA0,
    0x52, 0x3B, 0xD6, 0xB3, 0x29, 0xE3, 0x2F, 0x84, 0x53, 0xD1, 0x00, 0xED,
    0x20, 0xFC, 0xB1, 0x5B, 0x6A, 0xCB, 0xBE, 0x39, 0x4A, 0x4C, 0x58, 0xCF,
    0xD0, 0xEF, 0xAA, 0xFB, 0x43, 0x4D, 0x33, 0x85, 0x45, 0xF9, 0x02, 0x7F,
    0x50, 0x3C, 0x9F, 0xA8, 0x51, 0xA3, 0x40, 0x8F, 0x92, 0x9D, 0x38, 0xF5,
    0xBC, 0xB6, 0xDA, 0x21, 0x10, 0xFF, 0xF3, 0xD2, 0xCD, 0x0C, 0x13, 0xEC,
    0x5F, 0x97, 0x44, 0x17, 0xC4, 0xA7, 0x7E, 0x3D, 0x64, 0x5D, 0x19, 0x73,
    0x60, 0x81, 0x4F, 0xDC, 0x22, 0x2A, 0x90, 0x88, 0x46, 0xEE, 0xB8, 0x14,
    0xDE, 0x5E, 0x0B, 0xDB, 0xE0, 0x32, 0x3A, 0x0A, 0x49, 0x06, 0x24, 0x5C,
    0xC2, 0xD3, 0xAC, 0x62, 0x91, 0x95, 0xE4, 0x79, 0xE7, 0xC8, 0x37, 0x6D,
    0x8D, 0xD5, 0x4E, 0xA9, 0x6C, 0x56, 0xF4, 0xEA, 0x65, 0x7A, 0xAE, 0x08,
    0xBA, 0x78, 0x25, 0x2E, 0x1C, 0xA6, 0xB4, 0xC6, 0xE8, 0xDD, 0x74, 0x1F,
    0x4B, 0xBD, 0x8B, 0x8A, 0x70, 0x3E, 0xB5, 0x66, 0x48, 0x03, 0xF6, 0x0E,
    0x61, 0x35, 0x57, 0xB9, 0x86, 0xC1, 0x1D, 0x9E, 0xE1, 0xF8, 0x98, 0x11,
    0x69, 0xD9, 0x8E, 0x94, 0x9B, 0x1E, 0x87, 0xE9, 0xCE, 0x55, 0x28, 0xDF,
    0x8C, 0xA1, 0x89, 0x0D, 0xBF, 0xE6, 0x42, 0x68, 0x41, 0x99, 0x2D, 0x0F,
    0xB0, 0x54, 0xBB, 0x16,
]

_INV_SBOX = [0] * 256
for _i, _v in enumerate(_SBOX):
    _INV_SBOX[_v] = _i

_RCON = [0x01, 0x02, 0x04, 0x08, 0x10, 0x20, 0x40, 0x80, 0x1B, 0x36, 0x6C, 0xD8]


def _xtime(a: int) -> int:
    """Multiply by x in GF(2^8) mod x^8+x^4+x^3+x+1."""
    a <<= 1
    if a & 0x100:
        a ^= 0x11B
    return a & 0xFF


def _gmul(a: int, b: int) -> int:
    """GF(2^8) multiplication."""
    result = 0
    for _ in range(8):
        if b & 1:
            result ^= a
        b >>= 1
        a = _xtime(a)
    return result


class AES:
    """AES block cipher with 128/192/256-bit keys."""

    BLOCK_SIZE = 16

    def __init__(self, key: bytes) -> None:
        if len(key) not in (16, 24, 32):
            raise ValueError("AES key must be 16, 24, or 32 bytes")
        self.key = bytes(key)
        self._nr = {16: 10, 24: 12, 32: 14}[len(key)]
        self._round_keys = self._expand_key(self.key)

    # -- key schedule ----------------------------------------------------

    def _expand_key(self, key: bytes) -> List[List[int]]:
        nk = len(key) // 4
        words = [list(key[4 * i : 4 * i + 4]) for i in range(nk)]
        total_words = 4 * (self._nr + 1)
        for i in range(nk, total_words):
            temp = list(words[i - 1])
            if i % nk == 0:
                temp = temp[1:] + temp[:1]  # RotWord
                temp = [_SBOX[b] for b in temp]  # SubWord
                temp[0] ^= _RCON[i // nk - 1]
            elif nk > 6 and i % nk == 4:
                temp = [_SBOX[b] for b in temp]
            words.append([words[i - nk][j] ^ temp[j] for j in range(4)])
        # Group into 16-byte round keys (column-major state layout).
        round_keys = []
        for rnd in range(self._nr + 1):
            rk = []
            for w in words[4 * rnd : 4 * rnd + 4]:
                rk.extend(w)
            round_keys.append(rk)
        return round_keys

    # -- round operations (state is a flat list, column-major) -----------

    @staticmethod
    def _add_round_key(state: List[int], rk: Sequence[int]) -> None:
        for i in range(16):
            state[i] ^= rk[i]

    @staticmethod
    def _sub_bytes(state: List[int]) -> None:
        for i in range(16):
            state[i] = _SBOX[state[i]]

    @staticmethod
    def _inv_sub_bytes(state: List[int]) -> None:
        for i in range(16):
            state[i] = _INV_SBOX[state[i]]

    @staticmethod
    def _shift_rows(state: List[int]) -> List[int]:
        # state[col*4 + row]; row r shifts left by r.
        s = state
        return [
            s[0], s[5], s[10], s[15],
            s[4], s[9], s[14], s[3],
            s[8], s[13], s[2], s[7],
            s[12], s[1], s[6], s[11],
        ]

    @staticmethod
    def _inv_shift_rows(state: List[int]) -> List[int]:
        s = state
        return [
            s[0], s[13], s[10], s[7],
            s[4], s[1], s[14], s[11],
            s[8], s[5], s[2], s[15],
            s[12], s[9], s[6], s[3],
        ]

    @staticmethod
    def _mix_columns(state: List[int]) -> None:
        for c in range(4):
            i = 4 * c
            a0, a1, a2, a3 = state[i : i + 4]
            state[i + 0] = _xtime(a0) ^ (_xtime(a1) ^ a1) ^ a2 ^ a3
            state[i + 1] = a0 ^ _xtime(a1) ^ (_xtime(a2) ^ a2) ^ a3
            state[i + 2] = a0 ^ a1 ^ _xtime(a2) ^ (_xtime(a3) ^ a3)
            state[i + 3] = (_xtime(a0) ^ a0) ^ a1 ^ a2 ^ _xtime(a3)

    @staticmethod
    def _inv_mix_columns(state: List[int]) -> None:
        for c in range(4):
            i = 4 * c
            a0, a1, a2, a3 = state[i : i + 4]
            state[i + 0] = _gmul(a0, 14) ^ _gmul(a1, 11) ^ _gmul(a2, 13) ^ _gmul(a3, 9)
            state[i + 1] = _gmul(a0, 9) ^ _gmul(a1, 14) ^ _gmul(a2, 11) ^ _gmul(a3, 13)
            state[i + 2] = _gmul(a0, 13) ^ _gmul(a1, 9) ^ _gmul(a2, 14) ^ _gmul(a3, 11)
            state[i + 3] = _gmul(a0, 11) ^ _gmul(a1, 13) ^ _gmul(a2, 9) ^ _gmul(a3, 14)

    # -- public block API --------------------------------------------------

    def encrypt_block(self, block: bytes) -> bytes:
        if len(block) != 16:
            raise ValueError("AES block must be 16 bytes")
        state = list(block)
        self._add_round_key(state, self._round_keys[0])
        for rnd in range(1, self._nr):
            self._sub_bytes(state)
            state = self._shift_rows(state)
            self._mix_columns(state)
            self._add_round_key(state, self._round_keys[rnd])
        self._sub_bytes(state)
        state = self._shift_rows(state)
        self._add_round_key(state, self._round_keys[self._nr])
        return bytes(state)

    def decrypt_block(self, block: bytes) -> bytes:
        if len(block) != 16:
            raise ValueError("AES block must be 16 bytes")
        state = list(block)
        self._add_round_key(state, self._round_keys[self._nr])
        for rnd in range(self._nr - 1, 0, -1):
            state = self._inv_shift_rows(state)
            self._inv_sub_bytes(state)
            self._add_round_key(state, self._round_keys[rnd])
            self._inv_mix_columns(state)
        state = self._inv_shift_rows(state)
        self._inv_sub_bytes(state)
        self._add_round_key(state, self._round_keys[0])
        return bytes(state)
