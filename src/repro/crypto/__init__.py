"""Cryptographic substrate of the CC stack.

Functional, from-scratch implementations of the ciphers the paper's
system actually uses (AES-GCM for PCIe traffic, AES-XTS for TME-MK
memory encryption, GHASH as the authentication-only alternative), plus
the calibrated single-core throughput model used for simulated timing
(paper Fig. 4b).
"""

from .aes import AES
from .modes import AESCTR, AESGCM, AESXTS, GHASH, AuthenticationError
from . import throughput

__all__ = [
    "AES",
    "AESCTR",
    "AESGCM",
    "AESXTS",
    "GHASH",
    "AuthenticationError",
    "throughput",
]
