"""Host physical memory model with TD page states.

Under TDX, every guest-physical page is either *private* (encrypted by
TME-MK with the TD's key, inaccessible to devices) or *shared*
(hypervisor-visible, required for DMA).  ``set_memory_decrypted()``
converts private pages to shared — the conversion the paper's Fig. 8
flame graph shows inside the kernel launch path.

The model tracks page states and actually stores page contents, so the
end-to-end CC data path (private page -> AES-GCM -> bounce buffer ->
GPU) is functionally verifiable.  XTS encryption of private contents is
available for tests that want to see TME-MK behaviour explicitly.
"""

from __future__ import annotations

from enum import Enum
from typing import Callable, Dict, Optional

from .. import units
from .allocator import AllocatorError, ExtentAllocator


class PageState(Enum):
    PRIVATE = "private"  # TD-private, TME-MK encrypted, no device DMA
    SHARED = "shared"  # hypervisor-visible, DMA-capable


class HostMemory:
    """Guest-physical memory of a VM or TD.

    Pages are created lazily.  In a regular VM (``td=False``), all
    pages are shared (no TME-MK on non-TD memory with auto-bypass,
    Table I).  In a TD, pages start private.
    """

    def __init__(self, capacity: int, td: bool, page_size: int = 4 * units.KiB) -> None:
        self.capacity = capacity
        self.td = td
        self.page_size = page_size
        self.heap = ExtentAllocator(capacity, base=0x1000_0000, alignment=page_size)
        self._page_states: Dict[int, PageState] = {}
        self._contents: Dict[int, bytes] = {}  # page_index -> payload
        self.conversions_to_shared = 0
        self.conversions_to_private = 0

    # -- page state ------------------------------------------------------

    def _page_index(self, address: int) -> int:
        return address // self.page_size

    def default_state(self) -> PageState:
        return PageState.PRIVATE if self.td else PageState.SHARED

    def page_state(self, address: int) -> PageState:
        return self._page_states.get(self._page_index(address), self.default_state())

    def set_memory_decrypted(self, address: int, size: int) -> int:
        """Convert [address, address+size) to shared; returns page count.

        Mirrors the Linux ``set_memory_decrypted()`` the paper points at
        (arch/x86/mm/pat/set_memory.c); in a regular VM it is a no-op.
        """
        if not self.td:
            return 0
        count = 0
        for page in self._page_range(address, size):
            if self._page_states.get(page, self.default_state()) is not PageState.SHARED:
                self._page_states[page] = PageState.SHARED
                count += 1
        self.conversions_to_shared += count
        return count

    def set_memory_encrypted(self, address: int, size: int) -> int:
        """Convert [address, address+size) back to private."""
        if not self.td:
            return 0
        count = 0
        for page in self._page_range(address, size):
            if self._page_states.get(page, self.default_state()) is not PageState.PRIVATE:
                self._page_states[page] = PageState.PRIVATE
                count += 1
        self.conversions_to_private += count
        return count

    def is_dma_capable(self, address: int, size: int) -> bool:
        """True if a device may DMA directly to/from this range."""
        return all(
            self._page_states.get(page, self.default_state()) is PageState.SHARED
            for page in self._page_range(address, size)
        )

    def _page_range(self, address: int, size: int):
        first = self._page_index(address)
        last = self._page_index(address + max(size, 1) - 1)
        return range(first, last + 1)

    # -- contents ----------------------------------------------------------

    def write(self, address: int, data: bytes) -> None:
        """Store payload bytes at an address (page-granular backing)."""
        self._contents[address] = bytes(data)

    def read(self, address: int, size: Optional[int] = None) -> bytes:
        data = self._contents.get(address, b"")
        return data if size is None else data[:size]

    # -- allocation convenience ---------------------------------------------

    def alloc(self, size: int) -> int:
        return self.heap.alloc(size)

    def free(self, address: int) -> int:
        # A multi-GB buffer spans ~10^6 pages but typically only a few
        # were ever touched (page states are lazy): walk whichever of
        # the page span / touched-page set is smaller.
        pages = self._page_range(address, self.heap.size_of(address))
        states = self._page_states
        if len(states) < len(pages):
            first, last = pages[0], pages[-1]
            for page in [p for p in states if first <= p <= last]:
                del states[page]
        else:
            for page in pages:
                states.pop(page, None)
        self._contents.pop(address, None)
        return self.heap.free(address)


class BounceBufferPool:
    """swiotlb-style bounce-buffer pool in shared memory (Sec. II-A).

    Under TDX the GPU cannot DMA into TD-private memory, so transfers
    stage through this hypervisor-managed pool (``dma_alloc_*``).  The
    pool has fixed capacity; exhaustion forces callers to wait, which
    is one source of CC transfer-pipeline stalls.
    """

    def __init__(self, capacity: int, page_size: int = 4 * units.KiB) -> None:
        self.capacity = capacity
        self.page_size = page_size
        self._allocator = ExtentAllocator(
            capacity, base=0xB000_0000, alignment=page_size
        )
        self._staged: Dict[int, bytes] = {}
        self.peak_usage = 0
        self.total_allocs = 0
        # Observability hook: called with the pool's used byte count
        # after every alloc/free (GuestContext points this at a gauge).
        self.on_usage: Optional[Callable[[int], None]] = None

    @property
    def used_bytes(self) -> int:
        return self._allocator.used_bytes

    @property
    def free_bytes(self) -> int:
        return self._allocator.free_bytes

    def alloc(self, size: int) -> int:
        slot = self._allocator.alloc(size)
        self.total_allocs += 1
        self.peak_usage = max(self.peak_usage, self.used_bytes)
        if self.on_usage is not None:
            self.on_usage(self.used_bytes)
        return slot

    def free(self, slot: int) -> None:
        self._staged.pop(slot, None)
        self._allocator.free(slot)
        if self.on_usage is not None:
            self.on_usage(self.used_bytes)

    def stage(self, slot: int, data: bytes) -> None:
        """Place (already encrypted) bytes into a bounce slot."""
        if slot not in self._allocator._live:
            raise AllocatorError(f"staging into unallocated slot {slot:#x}")
        if len(data) > self._allocator.size_of(slot):
            raise AllocatorError("staged data exceeds slot size")
        self._staged[slot] = bytes(data)

    def peek(self, slot: int) -> bytes:
        """Read slot contents (what the untrusted hypervisor could see)."""
        return self._staged.get(slot, b"")
