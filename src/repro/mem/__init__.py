"""Memory substrates: extent allocator, host memory with TD page
states, and the swiotlb bounce-buffer pool."""

from .allocator import AllocatorError, ExtentAllocator, OutOfMemoryError
from .hostmem import BounceBufferPool, HostMemory, PageState

__all__ = [
    "AllocatorError",
    "BounceBufferPool",
    "ExtentAllocator",
    "HostMemory",
    "OutOfMemoryError",
    "PageState",
]
