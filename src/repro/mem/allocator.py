"""First-fit address-space allocator used for host heaps, device HBM,
and the bounce-buffer pool.

Tracks free extents as a sorted list of (start, size).  Allocation is
first-fit with configurable alignment; free coalesces neighbours.  The
allocator enforces the invariants the property-based tests check: no
overlapping live blocks, frees must match a live allocation exactly,
and capacity accounting is conserved.
"""

from __future__ import annotations

import bisect
from typing import Dict, List, Tuple


class OutOfMemoryError(MemoryError):
    """Allocation could not be satisfied."""


class AllocatorError(ValueError):
    """Allocator misuse (double free, bad address...)."""


def _align_up(value: int, alignment: int) -> int:
    return (value + alignment - 1) // alignment * alignment


class ExtentAllocator:
    """First-fit extent allocator over [base, base+capacity)."""

    def __init__(self, capacity: int, base: int = 0, alignment: int = 256) -> None:
        if capacity <= 0:
            raise AllocatorError("capacity must be positive")
        if alignment <= 0 or (alignment & (alignment - 1)) != 0:
            raise AllocatorError("alignment must be a positive power of two")
        self.base = base
        self.capacity = capacity
        self.alignment = alignment
        self._free: List[Tuple[int, int]] = [(base, capacity)]  # (start, size)
        self._live: Dict[int, int] = {}  # start -> size

    # -- queries ---------------------------------------------------------

    @property
    def used_bytes(self) -> int:
        return sum(self._live.values())

    @property
    def free_bytes(self) -> int:
        return self.capacity - self.used_bytes

    @property
    def num_allocations(self) -> int:
        return len(self._live)

    def size_of(self, address: int) -> int:
        if address not in self._live:
            raise AllocatorError(f"address {address:#x} is not allocated")
        return self._live[address]

    # -- allocate/free -----------------------------------------------------

    def alloc(self, size: int) -> int:
        """Allocate ``size`` bytes (rounded up to alignment), return address."""
        if size <= 0:
            raise AllocatorError("allocation size must be positive")
        size = _align_up(size, self.alignment)
        for index, (start, extent) in enumerate(self._free):
            aligned = _align_up(start, self.alignment)
            waste = aligned - start
            if extent - waste >= size:
                # Carve: [start, aligned) stays free, [aligned, aligned+size)
                # is allocated, remainder stays free.
                del self._free[index]
                if waste:
                    self._free.insert(index, (start, waste))
                    index += 1
                remainder = extent - waste - size
                if remainder:
                    self._free.insert(index, (aligned + size, remainder))
                self._live[aligned] = size
                return aligned
        raise OutOfMemoryError(
            f"cannot allocate {size} bytes ({self.free_bytes} free, fragmented)"
        )

    def free(self, address: int) -> int:
        """Free a previous allocation; returns its size."""
        size = self._live.pop(address, None)
        if size is None:
            raise AllocatorError(f"free of unallocated address {address:#x}")
        index = bisect.bisect_left(self._free, (address, 0))
        self._free.insert(index, (address, size))
        self._coalesce(index)
        return size

    def _coalesce(self, index: int) -> None:
        # Merge with successor first, then predecessor.
        if index + 1 < len(self._free):
            start, size = self._free[index]
            nxt_start, nxt_size = self._free[index + 1]
            if start + size == nxt_start:
                self._free[index] = (start, size + nxt_size)
                del self._free[index + 1]
        if index > 0:
            prev_start, prev_size = self._free[index - 1]
            start, size = self._free[index]
            if prev_start + prev_size == start:
                self._free[index - 1] = (prev_start, prev_size + size)
                del self._free[index]

    # -- invariant check (used by property tests) -------------------------

    def check_invariants(self) -> None:
        """Raise AssertionError if internal bookkeeping is inconsistent."""
        regions = sorted(
            [(s, sz, "free") for s, sz in self._free]
            + [(s, sz, "live") for s, sz in self._live.items()]
        )
        cursor = self.base
        total = 0
        for start, size, _kind in regions:
            assert size > 0, "zero-size region"
            assert start >= cursor, "overlapping regions"
            cursor = start + size
            total += size
        assert cursor <= self.base + self.capacity, "region beyond capacity"
        assert total == self.capacity, "capacity leak"
