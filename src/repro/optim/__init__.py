"""Optimizations the paper evaluates against CC overheads
(Sec. VII-A): kernel/launch fusion and copy/compute overlap.
Quantization (the third mitigation) lives with its workloads in
:mod:`repro.dnn` (AMP/FP16) and :mod:`repro.llm` (AWQ).

:mod:`repro.optim.passes` composes these mitigations into validated,
ordered :class:`~repro.optim.passes.PassPipeline` transforms over
serving scenarios — the policy layer the ``repro tune`` auto-tuner
(:mod:`repro.tune`) searches over."""

from .fusion import (
    FusionPlan,
    best_fusion_level,
    graph_fusion_time,
    sweep_fusion_levels,
    sweep_graph_batches,
)
from .overlap import OverlapPlan, compute_to_io_ratio, sweep_streams
from .passes import (
    PASS_FAMILIES,
    QUANT_ACCURACY_DROP_PCT,
    BatchedTokenDownloadPass,
    CopyOverlapPass,
    KernelFusionPass,
    MitigationPass,
    PassError,
    PassPipeline,
    QuantizationPass,
    StagingReusePass,
    parse_pipeline,
)

__all__ = [
    "BatchedTokenDownloadPass",
    "CopyOverlapPass",
    "FusionPlan",
    "KernelFusionPass",
    "MitigationPass",
    "OverlapPlan",
    "PASS_FAMILIES",
    "PassError",
    "PassPipeline",
    "QUANT_ACCURACY_DROP_PCT",
    "QuantizationPass",
    "StagingReusePass",
    "best_fusion_level",
    "compute_to_io_ratio",
    "graph_fusion_time",
    "parse_pipeline",
    "sweep_fusion_levels",
    "sweep_graph_batches",
    "sweep_streams",
]
