"""Optimizations the paper evaluates against CC overheads
(Sec. VII-A): kernel/launch fusion and copy/compute overlap.
Quantization (the third mitigation) lives with its workloads in
:mod:`repro.dnn` (AMP/FP16) and :mod:`repro.llm` (AWQ)."""

from .fusion import (
    FusionPlan,
    best_fusion_level,
    graph_fusion_time,
    sweep_fusion_levels,
    sweep_graph_batches,
)
from .overlap import OverlapPlan, compute_to_io_ratio, sweep_streams

__all__ = [
    "FusionPlan",
    "OverlapPlan",
    "best_fusion_level",
    "compute_to_io_ratio",
    "graph_fusion_time",
    "sweep_fusion_levels",
    "sweep_graph_batches",
    "sweep_streams",
]
