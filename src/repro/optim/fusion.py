"""Kernel/launch fusion planning (paper Sec. VII-A, Observation 7).

Given a workload of N short kernels with a fixed total KET, fusion
reduces launch count (and therefore total KLO + LQT) at the cost of a
higher per-launch KLO for the first launches of the fused kernels.
:func:`sweep_fusion_levels` measures end-to-end time across fusion
levels on the simulator, and :func:`best_fusion_level` returns the
empirically optimal level — the paper's point that a *fully* fused
kernel is suboptimal and fusion under CC has different objectives.

:func:`graph_fusion_time` evaluates the alternative the paper suggests
for iterative single-kernel apps (3dconv-style): launch fusion via
CUDA graphs instead of source-level kernel fusion.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Dict, Sequence

from .. import units
from ..config import SystemConfig
from ..cuda import run_app
from ..gpu import nanosleep_kernel
from ..workloads.microbench import fusion_sweep_app


def _check_duration(name: str, value) -> None:
    """Durations must be positive finite numbers — a NaN/inf KET would
    silently poison every simulated span downstream."""
    if not isinstance(value, (int, float)) or isinstance(value, bool):
        raise ValueError(f"{name} must be a number, got {value!r}")
    if not math.isfinite(value) or value <= 0:
        raise ValueError(
            f"{name} must be a positive finite duration in ns, "
            f"got {value!r}"
        )


def _check_counts(name: str, counts: Sequence[int]) -> None:
    """Sweep axes must be non-empty sequences of positive ints."""
    if not counts:
        raise ValueError(f"{name} must be non-empty")
    for count in counts:
        if (
            not isinstance(count, int)
            or isinstance(count, bool)
            or count <= 0
        ):
            raise ValueError(
                f"{name} entries must be positive ints, got {count!r}"
            )


@dataclass(frozen=True)
class FusionPlan:
    total_ket_ns: int
    levels: Dict[int, int]  # num_launches -> end-to-end ns
    best_level: int

    @property
    def best_time_ns(self) -> int:
        return self.levels[self.best_level]

    @property
    def fully_fused_time_ns(self) -> int:
        return self.levels[min(self.levels)]


def sweep_fusion_levels(
    config: SystemConfig,
    total_ket_ns: int = units.ms(100),
    launch_counts: Sequence[int] = (1, 2, 4, 8, 16, 32, 64, 128, 256),
) -> FusionPlan:
    """Measure end-to-end time for each fusion level."""
    _check_duration("total_ket_ns", total_ket_ns)
    _check_counts("launch_counts", launch_counts)
    levels: Dict[int, int] = {}
    for count in launch_counts:
        trace, _ = run_app(
            fusion_sweep_app, config, num_launches=count, total_ket_ns=total_ket_ns
        )
        levels[count] = trace.span_ns()
    best = min(levels, key=levels.get)
    return FusionPlan(total_ket_ns=total_ket_ns, levels=levels, best_level=best)


def best_fusion_level(
    config: SystemConfig,
    total_ket_ns: int = units.ms(100),
    launch_counts: Sequence[int] = (1, 2, 4, 8, 16, 32, 64, 128, 256),
) -> int:
    return sweep_fusion_levels(config, total_ket_ns, launch_counts).best_level


def _graph_app(rt, num_launches: int, per_kernel_ns: int, graph_batch: int):
    kernel = nanosleep_kernel(per_kernel_ns, name="graph_node")
    graph = yield from rt.graph_create([kernel] * graph_batch)
    full, remainder = divmod(num_launches, graph_batch)
    for _ in range(full):
        yield from rt.graph_launch(graph)
    for _ in range(remainder):
        yield from rt.launch(kernel)
    yield from rt.synchronize()


def graph_fusion_time(
    config: SystemConfig,
    num_launches: int = 254,
    per_kernel_ns: int = units.us(30),
    graph_batch: int = 16,
) -> int:
    """End-to-end time for an iterative app with cudaGraph launch
    fusion at the given batching level (3dconv-style, Sec. VII-A)."""
    _check_duration("per_kernel_ns", per_kernel_ns)
    _check_counts("num_launches", (num_launches,))
    _check_counts("graph_batch", (graph_batch,))
    trace, _ = run_app(
        _graph_app,
        config,
        num_launches=num_launches,
        per_kernel_ns=per_kernel_ns,
        graph_batch=graph_batch,
    )
    return trace.span_ns()


def sweep_graph_batches(
    config: SystemConfig,
    num_launches: int = 254,
    per_kernel_ns: int = units.us(30),
    batches: Sequence[int] = (1, 2, 4, 8, 16, 32, 64, 128),
) -> Dict[int, int]:
    """Graph-batch size -> end-to-end ns (the Ekelund-style optimum)."""
    _check_duration("per_kernel_ns", per_kernel_ns)
    _check_counts("num_launches", (num_launches,))
    _check_counts("batches", batches)
    return {
        batch: graph_fusion_time(config, num_launches, per_kernel_ns, batch)
        for batch in batches
    }
