"""Stream-overlap planning (paper Sec. VII-A, Observation 8).

Helpers for choosing a stream count and for quantifying how much of
the copy time a configuration hides (the model's alpha parameter).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Sequence

from .. import units
from ..config import SystemConfig
from ..core import decompose
from ..cuda import run_app
from ..workloads.microbench import overlap_app
from .fusion import _check_counts, _check_duration


@dataclass(frozen=True)
class OverlapPlan:
    alphas: Dict[int, float]  # streams -> achieved alpha
    times: Dict[int, int]  # streams -> end-to-end ns (note: total work
    # grows with stream count in the Listing-2 pattern, so times are
    # not comparable across counts — alpha is the figure of merit)
    best_streams: int

    @property
    def best_alpha(self) -> float:
        return self.alphas[self.best_streams]


def sweep_streams(
    config: SystemConfig,
    total_bytes: int = 512 * units.MB,
    ket_ns: int = units.ms(10),
    stream_counts: Sequence[int] = (1, 2, 4, 8, 16, 32, 64),
) -> OverlapPlan:
    """Measure achieved alpha (hidden copy fraction) per stream count."""
    _check_duration("ket_ns", ket_ns)
    _check_counts("total_bytes", (total_bytes,))
    _check_counts("stream_counts", stream_counts)
    alphas: Dict[int, float] = {}
    times: Dict[int, int] = {}
    for streams in stream_counts:
        trace, _ = run_app(
            overlap_app,
            config,
            num_streams=streams,
            total_bytes=total_bytes,
            ket_ns=ket_ns,
        )
        model = decompose(trace)
        alphas[streams] = model.alpha
        times[streams] = trace.span_ns()
    best = max(alphas, key=alphas.get)
    return OverlapPlan(alphas=alphas, times=times, best_streams=best)


def compute_to_io_ratio(
    config: SystemConfig, total_bytes: int, total_ket_ns: int
) -> float:
    """KET time over (un-overlapped) copy time — the knob Observation 8
    says to raise for better overlap under CC."""
    from ..config import CopyKind, MemoryKind
    from ..cuda.transfers import plan_copy
    from ..sim import Simulator
    from ..tdx import GuestContext

    guest = GuestContext(Simulator(), config)
    plan = plan_copy(
        config, guest, CopyKind.H2D, total_bytes, MemoryKind.PINNED, cold=False
    )
    return total_ket_ns / max(plan.total_ns, 1)
