"""Composable CC-mitigation passes (paper Sec. VII-A/VII-B).

The mitigation layer is split in two: :mod:`repro.serve.tuning` holds
the *mechanism* (:class:`~repro.serve.tuning.EngineTuning`, the frozen
knob record the serving engine consults on its hot path), and this
module holds the *policy* — small, validated, composable transforms
that each encode ONE mitigation the paper evaluates and produce a
tuning record by pure rewriting.  ``repro.serve`` never imports
``repro.optim``; the arrow points this way only.

A :class:`MitigationPass` is a pure transform over a
``(ScenarioSpec, EngineTuning)`` pair::

    spec, tuning = KernelFusionPass().apply(spec, tuning)

Passes compose via :class:`PassPipeline`, an *ordered* sequence.  The
empty pipeline is the identity: it yields a trivial tuning, and a
trivial tuning leaves the engine byte-identical to the un-tuned build
(the committed ``ext_serving``/``ext_cluster_serving`` verdicts) — the
invariant CI's cmp gates enforce.

Concrete passes, one per paper mitigation family:

* :class:`KernelFusionPass` — fold admitted-prefill + decode into one
  fused launch per mixed iteration (Observation 7: launch tax is the
  CC fixed cost fusion amortizes).
* :class:`CopyOverlapPass` — flush token D2H on a side stream with
  double buffering so the DMA leg hides behind compute
  (Observation 8: the CPU crypto leg stays serialized).
* :class:`BatchedTokenDownloadPass` — coalesce per-step token
  downloads into one flush every *k* steps (fewer encrypted transits
  of the serialized bridge).
* :class:`StagingReusePass` — direction-stable pinned staging for KV
  swaps, paying the page-conversion cost once instead of per
  direction flip.
* :class:`QuantizationPass` — AWQ-style weight quantization plus
  narrow KV entries (Sec. VII-B); the accuracy cost is carried as
  pass metadata (``accuracy_drop_pct``), not simulated.

:func:`parse_pipeline` turns the CLI/CI spelling
``"fusion+overlap:2+batch:4+staging+quant:awq:8"`` into a validated
pipeline; :data:`PASS_FAMILIES` is the registry behind it.
"""

from __future__ import annotations

import dataclasses
from dataclasses import dataclass
from typing import (
    Callable,
    Dict,
    Optional,
    Protocol,
    Sequence,
    Tuple,
    runtime_checkable,
)

from ..llm.config import QUANTS
from ..serve.scenario import ScenarioSpec
from ..serve.tuning import (
    KV_BITS_CHOICES,
    MAX_D2H_STREAMS,
    MAX_FLUSH_EVERY,
    EngineTuning,
)


class PassError(ValueError):
    """A mitigation pass (or pipeline spec) is invalid."""


#: Published perplexity-degradation ballpark per quant scheme, carried
#: as metadata on :class:`QuantizationPass` so the tuner can surface
#: the accuracy axis without pretending to simulate model quality.
QUANT_ACCURACY_DROP_PCT = {"bf16": 0.0, "awq": 0.4}

ApplyResult = Tuple[ScenarioSpec, EngineTuning]


@runtime_checkable
class MitigationPass(Protocol):
    """Structural contract every mitigation pass satisfies.

    A pass is a *pure* transform: ``apply`` must not mutate its inputs
    (both are frozen dataclasses) and must be deterministic, so
    pipelines are replayable and cache keys stay content-addressed.
    User-defined passes need no registration to run in a
    :class:`PassPipeline`; :data:`PASS_FAMILIES` registration is only
    required for the :func:`parse_pipeline` spelling.
    """

    name: str

    def validate(self) -> None: ...

    def apply(
        self, spec: ScenarioSpec, tuning: EngineTuning
    ) -> ApplyResult: ...

    def describe(self) -> str: ...


@dataclass(frozen=True)
class KernelFusionPass:
    """Fuse admitted-prefill + decode into one launch per iteration."""

    name = "fusion"

    def validate(self) -> None:
        return None

    def apply(self, spec: ScenarioSpec, tuning: EngineTuning) -> ApplyResult:
        return spec, dataclasses.replace(tuning, fuse_step_kernels=True)

    def describe(self) -> str:
        return "fusion"


@dataclass(frozen=True)
class CopyOverlapPass:
    """Hide token-download DMA behind compute on a side stream."""

    streams: int = 2
    name = "overlap"

    def validate(self) -> None:
        if not isinstance(self.streams, int) or not (
            2 <= self.streams <= MAX_D2H_STREAMS
        ):
            raise PassError(
                f"overlap streams must be an int in [2, {MAX_D2H_STREAMS}]"
                f" (1 would be a no-op), got {self.streams!r}"
            )

    def apply(self, spec: ScenarioSpec, tuning: EngineTuning) -> ApplyResult:
        return spec, dataclasses.replace(tuning, d2h_streams=self.streams)

    def describe(self) -> str:
        return f"overlap:{self.streams}"


@dataclass(frozen=True)
class BatchedTokenDownloadPass:
    """Coalesce per-step token D2H into one flush every *k* steps."""

    flush_every: int = 4
    name = "batch"

    def validate(self) -> None:
        if not isinstance(self.flush_every, int) or not (
            2 <= self.flush_every <= MAX_FLUSH_EVERY
        ):
            raise PassError(
                f"batch flush_every must be an int in [2, {MAX_FLUSH_EVERY}]"
                f" (1 would be a no-op), got {self.flush_every!r}"
            )

    def apply(self, spec: ScenarioSpec, tuning: EngineTuning) -> ApplyResult:
        return spec, dataclasses.replace(
            tuning, token_flush_every=self.flush_every
        )

    def describe(self) -> str:
        return f"batch:{self.flush_every}"


@dataclass(frozen=True)
class StagingReusePass:
    """Direction-stable pinned staging buffers for KV swap traffic."""

    name = "staging"

    def validate(self) -> None:
        return None

    def apply(self, spec: ScenarioSpec, tuning: EngineTuning) -> ApplyResult:
        return spec, dataclasses.replace(tuning, split_swap_staging=True)

    def describe(self) -> str:
        return "staging"


@dataclass(frozen=True)
class QuantizationPass:
    """Weight quantization + narrow KV entries (Sec. VII-B)."""

    quant: str = "awq"
    kv_bits: int = 8

    name = "quant"

    def validate(self) -> None:
        if self.quant not in QUANTS:
            raise PassError(
                f"unknown quant {self.quant!r} (have {sorted(QUANTS)})"
            )
        if self.kv_bits not in KV_BITS_CHOICES:
            raise PassError(
                f"kv_bits must be one of {KV_BITS_CHOICES}, "
                f"got {self.kv_bits!r}"
            )

    @property
    def accuracy_drop_pct(self) -> float:
        """Metadata: published quality cost of the scheme (not
        simulated — surfaces the accuracy axis in tuner output)."""
        return QUANT_ACCURACY_DROP_PCT[self.quant]

    def apply(self, spec: ScenarioSpec, tuning: EngineTuning) -> ApplyResult:
        return spec, dataclasses.replace(
            tuning, quant=self.quant, kv_bits=self.kv_bits
        )

    def describe(self) -> str:
        return f"quant:{self.quant}:{self.kv_bits}"


@dataclass(frozen=True)
class PassPipeline:
    """An ordered, composable sequence of mitigation passes.

    ``PassPipeline(())`` is the identity pipeline: applying it yields
    a trivial :class:`EngineTuning`, which reproduces the committed
    un-tuned verdict bytes exactly.
    """

    passes: Tuple[MitigationPass, ...] = ()

    def validate(self) -> None:
        seen = set()
        for p in self.passes:
            for attr in ("validate", "apply", "describe"):
                if not callable(getattr(p, attr, None)):
                    raise PassError(
                        f"{p!r} is not a mitigation pass "
                        f"(missing .{attr}())"
                    )
            p.validate()
            family = getattr(p, "name", type(p).__name__)
            if family in seen:
                raise PassError(
                    f"duplicate pass family {family!r} in pipeline "
                    f"{self.pipeline_id()!r}"
                )
            seen.add(family)

    def apply(
        self,
        spec: ScenarioSpec,
        tuning: Optional[EngineTuning] = None,
    ) -> ApplyResult:
        """Fold every pass, left to right, over ``(spec, tuning)``."""
        self.validate()
        tuning = tuning or EngineTuning()
        for p in self.passes:
            spec, tuning = p.apply(spec, tuning)
        tuning.validate()
        return spec, tuning

    def tuning(self) -> EngineTuning:
        """The tuning this pipeline produces from inert defaults."""
        return self.apply(ScenarioSpec())[1]

    def pipeline_id(self) -> str:
        """Stable label: pass descriptions joined by ``+`` (``naive``
        for the empty pipeline)."""
        if not self.passes:
            return "naive"
        return "+".join(p.describe() for p in self.passes)

    @property
    def trivial(self) -> bool:
        return not self.passes

    def accuracy_drop_pct(self) -> float:
        """Summed accuracy metadata across passes (0.0 when no pass
        carries a quality cost)."""
        return sum(
            getattr(p, "accuracy_drop_pct", 0.0) for p in self.passes
        )


def _parse_int(token: str, arg: str) -> int:
    try:
        return int(arg)
    except ValueError:
        raise PassError(
            f"bad integer {arg!r} in pipeline token {token!r}"
        ) from None


def _make_fusion(token: str, args: Sequence[str]) -> KernelFusionPass:
    if args:
        raise PassError(f"'fusion' takes no arguments, got {token!r}")
    return KernelFusionPass()


def _make_overlap(token: str, args: Sequence[str]) -> CopyOverlapPass:
    if len(args) > 1:
        raise PassError(f"'overlap' takes at most one arg, got {token!r}")
    streams = _parse_int(token, args[0]) if args else 2
    return CopyOverlapPass(streams=streams)


def _make_batch(token: str, args: Sequence[str]) -> BatchedTokenDownloadPass:
    if len(args) > 1:
        raise PassError(f"'batch' takes at most one arg, got {token!r}")
    flush_every = _parse_int(token, args[0]) if args else 4
    return BatchedTokenDownloadPass(flush_every=flush_every)


def _make_staging(token: str, args: Sequence[str]) -> StagingReusePass:
    if args:
        raise PassError(f"'staging' takes no arguments, got {token!r}")
    return StagingReusePass()


def _make_quant(token: str, args: Sequence[str]) -> QuantizationPass:
    if len(args) > 2:
        raise PassError(f"'quant' takes at most two args, got {token!r}")
    quant = args[0] if args else "awq"
    kv_bits = _parse_int(token, args[1]) if len(args) > 1 else 8
    return QuantizationPass(quant=quant, kv_bits=kv_bits)


#: Pipeline-spec grammar registry: family keyword -> factory taking
#: (full token, colon-split args).
PASS_FAMILIES: Dict[str, Callable[[str, Sequence[str]], MitigationPass]] = {
    "fusion": _make_fusion,
    "overlap": _make_overlap,
    "batch": _make_batch,
    "staging": _make_staging,
    "quant": _make_quant,
}


def parse_pipeline(text: str) -> PassPipeline:
    """Parse ``"fusion+overlap:2+batch:4+staging+quant:awq:8"``.

    ``"naive"`` (or the empty string) spells the identity pipeline.
    Family order is preserved; duplicate families are rejected.
    """
    raw = text.strip().lower()
    if raw in ("", "naive"):
        return PassPipeline(())
    passes = []
    for token in raw.split("+"):
        token = token.strip()
        if not token:
            raise PassError(f"empty pass token in pipeline spec {text!r}")
        family, *args = token.split(":")
        factory = PASS_FAMILIES.get(family)
        if factory is None:
            raise PassError(
                f"unknown pass family {family!r} in {text!r} "
                f"(have {sorted(PASS_FAMILIES)})"
            )
        passes.append(factory(token, args))
    pipeline = PassPipeline(tuple(passes))
    pipeline.validate()
    return pipeline
