"""Extension: multi-tenant serving under CC (the "serialized bridge").

Sweeps offered arrival rate x CC on/off x scheduler policy through the
:mod:`repro.serve` simulator and reproduces the qualitative result of
"The Serialized Bridge" (Yin & Wang, 2026): because every continuous-
batching iteration crosses the host<->device bridge (launch + token
round-trip) and every KV swap rides the encrypted PCIe path, the CC
goodput knee sits at a strictly lower arrival rate than native, and
tail TTFT inflates by at least the Sec.-V model's fixed per-step CC
tax long before saturation.
"""

from __future__ import annotations

from typing import Dict, Sequence, Tuple

from .. import units
from ..config import SystemConfig
from ..serve import (
    ScenarioSpec,
    predicted_step_cc_overhead_ns,
    run_scenario,
)
from .common import FigureResult, dispatch

RATES = (8.0, 16.0, 20.0, 24.0, 28.0, 32.0)
POLICY_LIST = ("fcfs", "spf")
# A rate sustains its offered load while goodput >= 90 % of it; the
# knee is the last sustained rate in the sweep.
KNEE_ATTAINMENT = 0.9


def _knee(rates: Sequence[float], goodput: Dict[float, float]) -> float:
    sustained = [r for r in rates if goodput[r] >= KNEE_ATTAINMENT * r]
    return max(sustained) if sustained else 0.0


def generate_serving(
    rates: Sequence[float] = RATES,
    policies: Sequence[str] = POLICY_LIST,
    duration_s: float = 2.0,
    tenants: int = 2,
    seed: int = 42,
) -> FigureResult:
    """Goodput/TTFT vs offered rate, base vs CC, per scheduler policy."""
    base_config = SystemConfig.base()
    cc_config = SystemConfig.confidential()
    predicted_ns = predicted_step_cc_overhead_ns(base_config, cc_config)

    rows = []
    goodput: Dict[Tuple[str, str], Dict[float, float]] = {}
    ttft_p99: Dict[Tuple[str, str], Dict[float, float]] = {}
    for policy in policies:
        for rate in rates:
            spec = ScenarioSpec(
                rate_rps=float(rate),
                duration_ns=int(duration_s * units.NS_PER_SEC),
                tenants=tenants,
                policy=policy,
                seed=seed,
            )
            for mode, config in (("base", base_config), ("cc", cc_config)):
                _, result = run_scenario(spec, config)
                report = result.report
                goodput.setdefault((policy, mode), {})[rate] = report[
                    "goodput_rps"
                ]
                ttft_p99.setdefault((policy, mode), {})[rate] = report[
                    "ttft_ms"
                ]["p99"]
                rows.append(
                    (
                        policy,
                        rate,
                        mode,
                        round(report["goodput_rps"], 3),
                        round(report["completed_rps"], 3),
                        round(report["ttft_ms"]["p50"], 3),
                        round(report["ttft_ms"]["p99"], 3),
                        round(report["tpot_ms"]["p99"], 3),
                        result.engine.stats["preemptions"],
                        report["rejected"],
                    )
                )

    knees = {
        (policy, mode): _knee(rates, goodput[(policy, mode)])
        for policy in policies
        for mode in ("base", "cc")
    }
    mid_rate = rates[len(rates) // 2]
    knee_holds = [
        knees[(policy, "cc")] < knees[(policy, "base")] for policy in policies
    ]
    predicted_ms = units.to_ms(predicted_ns)
    ttft_holds = [
        ttft_p99[(policy, "cc")][mid_rate]
        - ttft_p99[(policy, "base")][mid_rate]
        >= predicted_ms
        for policy in policies
    ]

    figure = FigureResult(
        figure_id="ext_serving",
        title="Multi-tenant serving: CC moves the goodput knee left",
        columns=("policy", "rate_rps", "mode", "goodput_rps",
                 "completed_rps", "ttft_p50_ms", "ttft_p99_ms",
                 "tpot_p99_ms", "preemptions", "rejected"),
        rows=rows,
        notes=[
            "Open-loop Poisson arrivals over %d tenants; goodput counts "
            "requests meeting both the TTFT and TPOT SLOs; a rate is "
            "sustained while goodput >= %g%% of it." % (
                tenants, 100 * KNEE_ATTAINMENT),
            "knees (last sustained rate, rps): " + ", ".join(
                f"{policy}/{mode}={knees[(policy, mode)]:g}"
                for policy in policies
                for mode in ("base", "cc")
            ),
            "Sec.-V model predicts a fixed CC tax of %.1f us per decode "
            "iteration (launch path + token-copy staging/crypto); TTFT "
            "p99 inflation is checked against it at %g rps." % (
                predicted_ns / 1000.0, mid_rate),
        ],
    )
    figure.add_paper_comparison(
        "CC goodput knee below base (fraction of policies)",
        sum(knee_holds) / len(knee_holds),
    )
    figure.add_paper_comparison(
        "TTFT p99 inflation >= Sec.-V per-step CC tax (fraction)",
        sum(ttft_holds) / len(ttft_holds),
    )
    return figure


VARIANTS = {"": generate_serving, "serving": generate_serving}


def run(config=None):
    """Uniform harness entry point (see :mod:`repro.exec`)."""
    return dispatch(VARIANTS, config, __name__)
