"""Extension: closing the CC serving gap with mitigation pipelines.

``ext_serving`` shows the problem — under CC the continuous-batching
goodput knee sits strictly left of native because every iteration
crosses the serialized host<->device bridge.  This figure shows the
*recovery*: a cumulative ladder of :mod:`repro.optim.passes`
mitigation pipelines (fusion -> +overlap -> +batched downloads ->
+staging reuse -> +quantization) sweeps the same rate x CC grid and
moves the knee back to (and past) the native knee, with per-pass
claw-back attribution at the top rate.

The figure's exact predicates pin the paper's Sec.-VII direction:

* the recovered knee sits strictly right of the naive CC knee;
* claw-back is monotone along the cumulative ladder (each pass helps
  or at worst does nothing, in order);
* coalescing token downloads is monotone in the flush period *k*
  (fewer encrypted bridge transits -> more completed throughput);
* the full pipeline closes the whole top-rate goodput gap (claw-back
  >= 1): copy/compute overlap hides the bridge DMA that stalls even
  the native engine, so a tuned CC stack can beat a naive native one.

The ``cell`` variant runs ONE (pipeline, rate, mode) point and is the
unit of work the ``repro tune`` auto-tuner schedules through the
content-addressed :mod:`repro.exec` cache.
"""

from __future__ import annotations

from typing import Dict, Sequence

from .. import units
from ..config import SystemConfig
from ..optim.passes import PassPipeline, parse_pipeline
from ..serve import ScenarioSpec, run_scenario
from .common import FigureResult, dispatch
from .ext_serving import KNEE_ATTAINMENT, _knee

RATES = (8.0, 16.0, 24.0, 28.0, 32.0)

#: Cumulative mitigation ladder: stage label -> pipeline spec.  Each
#: stage adds ONE pass family to the previous stage, so top-rate
#: goodput deltas between adjacent stages attribute the claw-back to
#: individual passes.
LADDER = (
    ("naive", "naive"),
    ("+fusion", "fusion"),
    ("+overlap", "fusion+overlap:2"),
    ("+batch", "fusion+overlap:2+batch:4"),
    ("+staging", "fusion+overlap:2+batch:4+staging"),
    ("+quant", "fusion+overlap:2+batch:4+staging+quant:awq:8"),
)

#: Token-download flush periods swept at the top rate (k=1 is the
#: naive per-step download).
FLUSH_SWEEP = (1, 2, 4, 8)


def _run_point(
    spec: ScenarioSpec, config: SystemConfig, pipeline: PassPipeline
):
    spec, tuning = pipeline.apply(spec)
    _, result = run_scenario(spec, config, tuning=tuning)
    return result


def _row(stage, pipeline_id, rate, mode, result):
    report = result.report
    return (
        stage,
        pipeline_id,
        rate,
        mode,
        round(report["goodput_rps"], 3),
        round(report["completed_rps"], 3),
        round(report["ttft_ms"]["p50"], 3),
        round(report["ttft_ms"]["p99"], 3),
        round(report["tpot_ms"]["p99"], 3),
        result.engine.stats["preemptions"],
    )


_COLUMNS = ("stage", "pipeline", "rate_rps", "mode", "goodput_rps",
            "completed_rps", "ttft_p50_ms", "ttft_p99_ms", "tpot_p99_ms",
            "preemptions")


def generate_recovered(
    rates: Sequence[float] = RATES,
    duration_s: float = 2.0,
    tenants: int = 2,
    seed: int = 42,
) -> FigureResult:
    """Rate x CC x mitigation-pipeline sweep with claw-back ladder."""
    base_config = SystemConfig.base()
    cc_config = SystemConfig.confidential()
    duration_ns = int(duration_s * units.NS_PER_SEC)
    top_rate = max(rates)

    def spec_for(rate: float) -> ScenarioSpec:
        return ScenarioSpec(
            rate_rps=float(rate), duration_ns=duration_ns,
            tenants=tenants, seed=seed,
        )

    rows = []
    goodput: Dict[str, Dict[float, float]] = {}
    for rate in rates:
        spec = spec_for(rate)
        result = _run_point(spec, base_config, PassPipeline(()))
        goodput.setdefault("base", {})[rate] = result.report["goodput_rps"]
        rows.append(_row("base", "naive", rate, "base", result))
        for stage, pipeline_spec in LADDER:
            pipeline = parse_pipeline(pipeline_spec)
            result = _run_point(spec, cc_config, pipeline)
            goodput.setdefault(stage, {})[rate] = result.report[
                "goodput_rps"
            ]
            rows.append(
                _row(stage, pipeline.pipeline_id(), rate, "cc", result)
            )

    # Token-batching k-sweep at the top rate (batch-only pipelines, so
    # the monotonicity predicate isolates ONE mitigation family).
    flush_completed: Dict[int, float] = {}
    for k in FLUSH_SWEEP:
        pipeline = parse_pipeline("naive" if k == 1 else f"batch:{k}")
        result = _run_point(spec_for(top_rate), cc_config, pipeline)
        flush_completed[k] = result.report["completed_rps"]
        rows.append(
            _row(f"k={k}", pipeline.pipeline_id(), top_rate, "cc", result)
        )

    knees = {stage: _knee(rates, goodput[stage])
             for stage in goodput}
    gap = goodput["base"][top_rate] - goodput["naive"][top_rate]
    clawback = {
        stage: (goodput[stage][top_rate] - goodput["naive"][top_rate])
        / gap if gap > 0 else 0.0
        for stage, _ in LADDER
    }
    ladder_stages = [stage for stage, _ in LADDER]
    ladder_monotone = [
        clawback[b] >= clawback[a]
        for a, b in zip(ladder_stages, ladder_stages[1:])
    ]
    flush_monotone = [
        flush_completed[b] >= flush_completed[a]
        for a, b in zip(FLUSH_SWEEP, FLUSH_SWEEP[1:])
    ]
    recovered = ladder_stages[-1]

    figure = FigureResult(
        figure_id="ext_recovered_serving",
        title="Mitigation pipelines move the CC goodput knee back",
        columns=_COLUMNS,
        rows=rows,
        notes=[
            "Cumulative pipeline ladder over %d tenants; a rate is "
            "sustained while goodput >= %g%% of it." % (
                tenants, 100 * KNEE_ATTAINMENT),
            "knees (last sustained rate, rps): " + ", ".join(
                f"{stage}={knees[stage]:g}"
                for stage in ("base", *ladder_stages)
            ),
            "claw-back at %g rps (fraction of the base-vs-naive-CC "
            "goodput gap recovered): " % top_rate + ", ".join(
                f"{stage}={clawback[stage]:.2f}" for stage in ladder_stages
            ),
            "per-pass attribution at %g rps (goodput delta vs previous "
            "stage, rps): " % top_rate + ", ".join(
                "%s=%+.2f" % (
                    b, goodput[b][top_rate] - goodput[a][top_rate])
                for a, b in zip(ladder_stages, ladder_stages[1:])
            ),
            "token-flush k-sweep at %g rps (completed rps): " % top_rate
            + ", ".join(
                f"k={k}:{flush_completed[k]:.2f}" for k in FLUSH_SWEEP
            ),
        ],
    )
    figure.add_paper_comparison(
        "recovered CC knee strictly above naive CC knee (exact)",
        float(knees[recovered] > knees["naive"]),
    )
    figure.add_paper_comparison(
        "cumulative ladder claw-back monotone (fraction of stages)",
        sum(ladder_monotone) / len(ladder_monotone),
    )
    figure.add_paper_comparison(
        "token-batch completed throughput monotone in k (fraction)",
        sum(flush_monotone) / len(flush_monotone),
    )
    figure.add_paper_comparison(
        "full pipeline closes the top-rate goodput gap (claw-back >= 1)",
        float(clawback[recovered] >= 1.0),
    )
    return figure


def cell_figure_id(passes: str, rate: float, mode: str) -> str:
    """Deterministic per-cell figure id (also the output filename under
    the tuner's results dir, so it must be unique per grid point)."""
    pipeline = parse_pipeline(passes)
    slug = pipeline.pipeline_id().replace(":", "").replace("+", "-")
    return f"ext_recovered_cell_{mode}_r{rate:g}_{slug}"


def generate_cell(
    passes: str = "naive",
    rate: float = 24.0,
    mode: str = "cc",
    duration_s: float = 2.0,
    tenants: int = 2,
    seed: int = 42,
) -> FigureResult:
    """One (pipeline, rate, mode) grid point for ``repro tune``."""
    if mode not in ("base", "cc"):
        raise ValueError(f"mode must be 'base' or 'cc', got {mode!r}")
    pipeline = parse_pipeline(passes)
    config = (
        SystemConfig.confidential() if mode == "cc" else SystemConfig.base()
    )
    spec = ScenarioSpec(
        rate_rps=float(rate),
        duration_ns=int(duration_s * units.NS_PER_SEC),
        tenants=tenants,
        seed=seed,
    )
    result = _run_point(spec, config, pipeline)
    return FigureResult(
        figure_id=cell_figure_id(passes, rate, mode),
        title=f"tune cell: {pipeline.pipeline_id()} @ {rate:g} rps ({mode})",
        columns=_COLUMNS,
        rows=[_row("cell", pipeline.pipeline_id(), float(rate), mode,
                   result)],
        notes=[
            "accuracy_drop_pct=%.2f" % pipeline.accuracy_drop_pct(),
        ],
    )


VARIANTS = {
    "": generate_recovered,
    "recovered": generate_recovered,
    "cell": generate_cell,
}


def run(config=None):
    """Uniform harness entry point (see :mod:`repro.exec`)."""
    return dispatch(VARIANTS, config, __name__)
