"""Fig. 12: microbenchmark studies (Sec. VII-A).

(a) per-launch KLO vs launch index for two nanosleep kernels launched
    100x each (first launches spike, CC curves sit higher);
(b) fusion sweep: total KET fixed, number of launches varied — KLO and
    LQT totals follow different trends, so full fusion is suboptimal;
(c) overlap: Listing-2 copy/compute overlap across streams for
    512 MB / 1 GB and KET 1 ms / 100 ms.
"""

from __future__ import annotations

from typing import Sequence

from .. import units
from ..config import SystemConfig
from ..workloads import fusion_sweep, launch_sequence, overlap_experiment
from .common import FigureResult, dispatch


def generate_12a(launches_per_kernel: int = 100) -> FigureResult:
    rows = []
    summary = {}
    for label, config in (
        ("base", SystemConfig.base()),
        ("cc", SystemConfig.confidential()),
    ):
        klos = launch_sequence(config, launches_per_kernel=launches_per_kernel)
        for index, value in enumerate(klos):
            rows.append((label, index, round(units.to_us(value), 3)))
        steady = sorted(klos)[: len(klos) // 2]
        summary[label] = {
            "first_k0": klos[0],
            "first_k1": klos[launches_per_kernel],
            "steady_mean": sum(steady) / len(steady),
        }
    figure = FigureResult(
        figure_id="fig12a_launch_sequence",
        title="KLO vs launch index (K0 x N then K1 x N)",
        columns=("mode", "launch_index", "klo_us"),
        rows=rows,
    )
    figure.add_paper_comparison(
        "first-launch spike over steady (base)",
        summary["base"]["first_k0"] / summary["base"]["steady_mean"],
    )
    figure.add_paper_comparison(
        "CC steady-state KLO ratio",
        summary["cc"]["steady_mean"] / summary["base"]["steady_mean"],
    )
    return figure


def generate_12b(
    launch_counts: Sequence[int] = (1, 2, 4, 8, 16, 32, 64, 128, 256),
    total_ket_ns: int = units.ms(100),
) -> FigureResult:
    rows = []
    trends = {}
    for label, config in (
        ("base", SystemConfig.base()),
        ("cc", SystemConfig.confidential()),
    ):
        points = fusion_sweep(config, launch_counts, total_ket_ns)
        trends[label] = points
        for point in points:
            rows.append(
                (
                    label,
                    point.num_launches,
                    round(units.to_us(point.mean_klo_ns), 2),
                    round(units.to_us(point.total_klo_ns), 2),
                    round(units.to_us(point.total_lqt_ns), 2),
                    round(units.to_ms(point.end_to_end_ns), 3),
                )
            )
    figure = FigureResult(
        figure_id="fig12b_fusion",
        title="Fusion sweep: fixed total KET split across N launches",
        columns=("mode", "launches", "mean_klo_us", "total_klo_us",
                 "total_lqt_us", "end_to_end_ms"),
        rows=rows,
        notes=[
            "KLO and LQT trend differently with launch count, so a fully "
            "fused kernel is suboptimal (Observation 7).",
        ],
    )
    cc_points = trends["cc"]
    figure.add_paper_comparison(
        "mean KLO at 1 launch / at max launches (CC)",
        cc_points[0].mean_klo_ns / cc_points[-1].mean_klo_ns,
    )
    figure.add_paper_comparison(
        "total KLO grows with launches (CC, max/min)",
        cc_points[-1].total_klo_ns / cc_points[0].total_klo_ns,
    )
    return figure


def generate_12c(
    stream_counts: Sequence[int] = (1, 2, 4, 8, 16, 32, 64),
) -> FigureResult:
    rows = []
    observed = {}
    for total_bytes in (512 * units.MB, units.GB):
        for ket_ns in (units.ms(1), units.ms(100)):
            for label, config in (
                ("base", SystemConfig.base()),
                ("cc", SystemConfig.confidential()),
            ):
                for streams in stream_counts:
                    point = overlap_experiment(config, streams, total_bytes, ket_ns)
                    observed[(total_bytes, ket_ns, label, streams)] = (
                        point.overlap_speedup
                    )
                    rows.append(
                        (
                            total_bytes // units.MB,
                            units.to_ms(ket_ns),
                            label,
                            streams,
                            round(units.to_ms(point.end_to_end_ns), 3),
                            round(point.overlap_speedup, 3),
                        )
                    )
    figure = FigureResult(
        figure_id="fig12c_overlap",
        title="Copy/compute overlap across streams (Listing 2)",
        columns=("total_MB", "ket_ms", "mode", "streams",
                 "end_to_end_ms", "overlap_speedup"),
        rows=rows,
        notes=[
            "Overlap is harder under CC and with short kernels; "
            "raising KET (compute-to-IO ratio) recovers it (Observation 8).",
        ],
    )
    key_long = (512 * units.MB, units.ms(100))
    key_short = (512 * units.MB, units.ms(1))
    figure.add_paper_comparison(
        "CC overlap speedup, 64 streams, KET 100ms vs 1ms (ratio > 1)",
        observed[key_long + ("cc", 64)] / observed[key_short + ("cc", 64)],
    )
    figure.add_paper_comparison(
        "base vs CC overlap speedup at 64 streams, KET 1ms (base higher)",
        observed[key_short + ("base", 64)] / observed[key_short + ("cc", 64)],
    )
    return figure


VARIANTS = {"a": generate_12a, "b": generate_12b, "c": generate_12c}


def run(config=None):
    """Uniform harness entry point (see :mod:`repro.exec`)."""
    return dispatch(VARIANTS, config, __name__)
