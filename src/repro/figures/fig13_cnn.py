"""Fig. 13: CNN training throughput and training time for different
batch sizes under CC and non-CC, with AMP and FP16 quantization.
"""

from __future__ import annotations

from typing import Optional, Sequence

import numpy as np

from ..config import SystemConfig
from ..dnn import MODELS, train
from .common import FigureResult, dispatch

# (batch, precision) panels shown in the paper's Fig. 13.
PANELS = (
    (64, "fp32"),
    (64, "amp"),
    (1024, "fp32"),
    (1024, "amp"),
    (1024, "fp16"),
)


def generate(model_names: Optional[Sequence[str]] = None) -> FigureResult:
    model_names = list(model_names) if model_names is not None else list(MODELS)
    rows = []
    results = {}
    for name in model_names:
        model = MODELS[name]
        for batch, precision in PANELS:
            for label, config in (
                ("base", SystemConfig.base()),
                ("cc", SystemConfig.confidential()),
            ):
                results[(name, batch, precision, label)] = train(
                    model, batch, precision, config
                )
    for name in model_names:
        norm = results[(name, 64, "fp32", "base")].epoch_time_sec
        for batch, precision in PANELS:
            for label in ("base", "cc"):
                result = results[(name, batch, precision, label)]
                rows.append(
                    (
                        name,
                        batch,
                        precision,
                        label,
                        round(result.throughput_img_per_sec, 1),
                        round(result.epoch_time_sec / norm, 4),
                    )
                )

    def agg(metric):
        return float(np.mean(metric)), float(np.max(metric))

    def pct_drop(batch, precision):
        return [
            1
            - results[(n, batch, precision, "cc")].throughput_img_per_sec
            / results[(n, batch, precision, "base")].throughput_img_per_sec
            for n in model_names
        ]

    def pct_time(batch, precision):
        return [
            results[(n, batch, precision, "cc")].epoch_time_sec
            / results[(n, batch, precision, "base")].epoch_time_sec
            - 1
            for n in model_names
        ]

    figure = FigureResult(
        figure_id="fig13_cnn",
        title="CNN training throughput / normalized training time",
        columns=("model", "batch", "precision", "mode",
                 "throughput_img_s", "time_vs_b64_fp32_base"),
        rows=rows,
    )
    mean_drop, max_drop = agg(pct_drop(64, "fp32"))
    mean_time, max_time = agg(pct_time(64, "fp32"))
    figure.add_paper_comparison("b64 fp32 CC throughput drop mean (%)",
                                100 * mean_drop)
    figure.add_paper_comparison("b64 fp32 CC throughput drop max (%)",
                                100 * max_drop)
    figure.add_paper_comparison("b64 fp32 CC time increase mean (%)",
                                100 * mean_time)
    figure.add_paper_comparison("b64 fp32 CC time increase max (%)",
                                100 * max_time)
    mean_drop_1024, _ = agg(pct_drop(1024, "fp32"))
    mean_time_1024, _ = agg(pct_time(1024, "fp32"))
    figure.add_paper_comparison("b1024 fp32 CC throughput drop mean (%)",
                                100 * mean_drop_1024)
    figure.add_paper_comparison("b1024 fp32 CC time increase mean (%)",
                                100 * mean_time_1024)
    # AMP at 64 (vs CC fp32@64), paper's "AMP reduces CC throughput".
    amp_drop = [
        1
        - results[(n, 64, "amp", "cc")].throughput_img_per_sec
        / results[(n, 64, "fp32", "cc")].throughput_img_per_sec
        for n in model_names
    ]
    amp_time = [
        results[(n, 64, "amp", "cc")].epoch_time_sec
        / results[(n, 64, "fp32", "cc")].epoch_time_sec
        - 1
        for n in model_names
    ]
    figure.add_paper_comparison("amp@64 CC throughput drop mean (%)",
                                100 * float(np.mean(amp_drop)))
    figure.add_paper_comparison("amp@64 CC throughput drop max (%)",
                                100 * float(np.max(amp_drop)))
    figure.add_paper_comparison("amp@64 CC time increase mean (%)",
                                100 * float(np.mean(amp_time)))
    figure.add_paper_comparison("amp@64 CC time increase max (%)",
                                100 * float(np.max(amp_time)))
    # CC AMP @1024 vs non-CC fp32 @1024 ("AMP becomes effective").
    amp_gain = [
        results[(n, 1024, "amp", "cc")].throughput_img_per_sec
        / results[(n, 1024, "fp32", "base")].throughput_img_per_sec
        - 1
        for n in model_names
    ]
    amp_time_drop = [
        1
        - results[(n, 1024, "amp", "cc")].epoch_time_sec
        / results[(n, 1024, "fp32", "base")].epoch_time_sec
        for n in model_names
    ]
    figure.add_paper_comparison("amp@1024 CC vs base throughput gain mean (%)",
                                100 * float(np.mean(amp_gain)))
    figure.add_paper_comparison("amp@1024 CC vs base throughput gain max (%)",
                                100 * float(np.max(amp_gain)))
    figure.add_paper_comparison("amp@1024 CC vs base time drop mean (%)",
                                100 * float(np.mean(amp_time_drop)))
    figure.add_paper_comparison("amp@1024 CC vs base time drop max (%)",
                                100 * float(np.max(amp_time_drop)))
    # FP16 quantization vs AMP at 1024 (CC): further time reduction.
    fp16_drop = [
        1
        - results[(n, 1024, "fp16", "cc")].epoch_time_sec
        / results[(n, 1024, "amp", "cc")].epoch_time_sec
        for n in model_names
    ]
    figure.add_paper_comparison("fp16@1024 time drop vs AMP mean (%)",
                                100 * float(np.mean(fp16_drop)))
    figure.add_paper_comparison("fp16@1024 time drop vs AMP max (%)",
                                100 * float(np.max(fp16_drop)))
    return figure
VARIANTS = {"": generate}


def run(config=None):
    """Uniform harness entry point (see :mod:`repro.exec`)."""
    return dispatch(VARIANTS, config, __name__)
