"""Fig. 7: effect of CC on KLO, LQT and KQT, normalized to non-CC.

Applications with no queuing time (single launch) are excluded, as in
the paper.
"""

from __future__ import annotations

from typing import Optional, Sequence

import numpy as np

from ..config import SystemConfig
from ..core import kernel_metrics, launch_metrics
from ..cuda import run_app
from ..workloads import CATALOG, FIG7_APPS
from .common import FigureResult, dispatch


def generate(app_names: Optional[Sequence[str]] = None) -> FigureResult:
    app_names = list(app_names) if app_names is not None else FIG7_APPS
    rows = []
    klo_ratios, lqt_ratios, kqt_ratios = [], [], []
    for name in app_names:
        info = CATALOG[name]
        metrics = {}
        for label, config in (
            ("base", SystemConfig.base()),
            ("cc", SystemConfig.confidential()),
        ):
            trace, _ = run_app(info.app(False), config, label=name)
            metrics[label] = (launch_metrics(trace), kernel_metrics(trace))
        launches_base, kernels_base = metrics["base"]
        launches_cc, kernels_cc = metrics["cc"]
        klo = launches_cc.klo_stats().mean / max(launches_base.klo_stats().mean, 1e-9)
        lqt_base_mean = launches_base.lqt_stats().mean
        lqt = (
            launches_cc.lqt_stats().mean / lqt_base_mean
            if lqt_base_mean > 0
            else float("nan")
        )
        kqt = kernels_cc.kqt_stats().mean / max(kernels_base.kqt_stats().mean, 1e-9)
        klo_ratios.append(klo)
        if lqt == lqt:  # not NaN
            lqt_ratios.append(lqt)
        kqt_ratios.append(kqt)
        rows.append(
            (
                name,
                launches_base.count,
                round(klo, 2),
                round(lqt, 2) if lqt == lqt else "n/a",
                round(kqt, 2),
            )
        )
    rows.append(
        (
            "MEAN",
            "",
            round(float(np.mean(klo_ratios)), 2),
            round(float(np.mean(lqt_ratios)), 2),
            round(float(np.mean(kqt_ratios)), 2),
        )
    )
    figure = FigureResult(
        figure_id="fig07_launch_queuing",
        title="CC effect on KLO / LQT / KQT (ratios vs non-CC)",
        columns=("app", "launches", "klo_cc/base", "lqt_cc/base", "kqt_cc/base"),
        rows=rows,
    )
    figure.add_paper_comparison("mean KLO slowdown", float(np.mean(klo_ratios)))
    figure.add_paper_comparison("max KLO slowdown (dwt2d)", max(klo_ratios))
    figure.add_paper_comparison("mean LQT slowdown", float(np.mean(lqt_ratios)))
    figure.add_paper_comparison("mean KQT slowdown", float(np.mean(kqt_ratios)))
    return figure
VARIANTS = {"": generate}


def run(config=None):
    """Uniform harness entry point (see :mod:`repro.exec`)."""
    return dispatch(VARIANTS, config, __name__)
