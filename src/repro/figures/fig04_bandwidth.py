"""Fig. 4a: H2D/D2H bandwidth vs transfer size (pageable/pinned x
base/cc) and Fig. 4b: single-core crypto throughput on EMR and Grace.
"""

from __future__ import annotations

from typing import Optional, Sequence

from .. import units
from ..config import CopyKind
from ..crypto import throughput as crypto
from ..workloads import bandwidth_sweep
from .common import FigureResult, dispatch


def generate_4a(sizes: Optional[Sequence[int]] = None) -> FigureResult:
    points = bandwidth_sweep(sizes=sizes)
    rows = [
        (
            point.size_bytes,
            point.memory.value,
            point.copy_kind.value,
            "cc" if point.cc else "base",
            round(point.gbps, 4),
        )
        for point in points
    ]
    figure = FigureResult(
        figure_id="fig04a_bandwidth",
        title="PCIe transfer bandwidth vs size (warmed buffers)",
        columns=("size_bytes", "memory", "dir", "mode", "GB_per_s"),
        rows=rows,
    )
    pin_cc = [
        p.gbps
        for p in points
        if p.cc and p.memory.value == "pinned" and p.copy_kind is CopyKind.H2D
    ]
    pin_base = [
        p.gbps
        for p in points
        if not p.cc and p.memory.value == "pinned" and p.copy_kind is CopyKind.H2D
    ]
    figure.add_paper_comparison("CC pin-h2d peak GB/s", max(pin_cc))
    figure.add_paper_comparison(
        "base pinned h2d peak GB/s (paper-class ~25)", max(pin_base)
    )
    return figure


def generate_4b(size_bytes: int = 64 * units.MiB) -> FigureResult:
    rows = []
    for cpu in crypto.cpus():
        for algorithm in crypto.algorithms(cpu):
            spec = crypto.spec(algorithm, cpu)
            rows.append(
                (
                    cpu,
                    algorithm,
                    round(crypto.effective_throughput(size_bytes, algorithm, cpu), 3),
                    spec.peak_gbps,
                    "yes" if spec.confidentiality else "no",
                    "yes" if spec.integrity else "no",
                )
            )
    figure = FigureResult(
        figure_id="fig04b_crypto",
        title="Single-core encryption/authentication throughput",
        columns=("cpu", "algorithm", "GB_per_s@64MiB", "peak_GB_per_s",
                 "confidentiality", "integrity"),
        rows=rows,
    )
    figure.add_paper_comparison(
        "AES-GCM peak on EMR GB/s",
        crypto.spec("aes-128-gcm", crypto.EMR).peak_gbps,
    )
    figure.add_paper_comparison(
        "GHASH peak on EMR GB/s",
        crypto.spec("ghash", crypto.EMR).peak_gbps,
    )
    return figure


VARIANTS = {"a": generate_4a, "b": generate_4b}


def run(config=None):
    """Uniform harness entry point (see :mod:`repro.exec`)."""
    return dispatch(VARIANTS, config, __name__)
