"""Reproduction report: aggregate paper-vs-measured comparisons from
the JSON results the benches tee into ``results/``.

``python -m repro report`` renders the full sheet plus an accuracy
histogram, so after ``pytest benchmarks/ --benchmark-only`` one command
shows how close the whole reproduction sits to the paper.
"""

from __future__ import annotations

import glob
import json
import os
from dataclasses import dataclass
from typing import Dict, List, Optional, Tuple


@dataclass(frozen=True)
class ComparisonRow:
    figure_id: str
    metric: str
    paper: float
    measured: float

    @property
    def relative_error(self) -> Optional[float]:
        """Relative error vs the paper, or None when the paper value is
        zero — such rows still surface in the report (``n/a`` bucket)
        rather than disappearing from the accuracy histogram."""
        if self.paper == 0:
            return None
        return abs(self.measured - self.paper) / abs(self.paper)


@dataclass(frozen=True)
class SkippedResult:
    """A results file the report could not use, and why."""

    path: str
    reason: str


def scan_results(results_dir: str) -> Tuple[List[Dict], List[SkippedResult]]:
    """Figure payloads under a results directory, plus every file that
    had to be skipped.

    A truncated or unreadable JSON file must not make its figure vanish
    silently from the report — the caller gets the skip list and is
    expected to show it.
    """
    payloads: List[Dict] = []
    skipped: List[SkippedResult] = []
    for path in sorted(glob.glob(os.path.join(results_dir, "*.json"))):
        try:
            with open(path) as handle:
                payload = json.load(handle)
        except OSError as exc:
            skipped.append(SkippedResult(path, f"unreadable: {exc}"))
            continue
        except json.JSONDecodeError as exc:
            skipped.append(SkippedResult(path, f"corrupt JSON: {exc}"))
            continue
        if isinstance(payload, dict) and "figure_id" in payload:
            payloads.append(payload)
        else:
            skipped.append(SkippedResult(path, "not a figure payload"))
    return payloads, skipped


def load_results(results_dir: str) -> List[Dict]:
    """All figure payloads saved under a results directory."""
    return scan_results(results_dir)[0]


def comparison_rows(results_dir: str) -> List[ComparisonRow]:
    rows = []
    for payload in load_results(results_dir):
        for item in payload.get("comparisons", []):
            rows.append(
                ComparisonRow(
                    payload["figure_id"],
                    item["metric"],
                    float(item["paper"]),
                    float(item["measured"]),
                )
            )
    return rows


def accuracy_histogram(rows: List[ComparisonRow]) -> Dict[str, int]:
    """Bucket comparisons by relative error."""
    buckets = {"<=5%": 0, "<=10%": 0, "<=25%": 0, "<=50%": 0, ">50%": 0, "n/a": 0}
    for row in rows:
        error = row.relative_error
        if error is None:
            buckets["n/a"] += 1
        elif error <= 0.05:
            buckets["<=5%"] += 1
        elif error <= 0.10:
            buckets["<=10%"] += 1
        elif error <= 0.25:
            buckets["<=25%"] += 1
        elif error <= 0.50:
            buckets["<=50%"] += 1
        else:
            buckets[">50%"] += 1
    return buckets


def render(results_dir: str) -> str:
    """The full report as text (markdown-ish table)."""
    payloads, skipped = scan_results(results_dir)
    rows = []
    for payload in payloads:
        for item in payload.get("comparisons", []):
            rows.append(
                ComparisonRow(
                    payload["figure_id"],
                    item["metric"],
                    float(item["paper"]),
                    float(item["measured"]),
                )
            )
    skip_lines = []
    if skipped:
        skip_lines.append("")
        skip_lines.append(
            f"WARNING: skipped {len(skipped)} unusable result file(s):"
        )
        for item in skipped:
            skip_lines.append(f"  {item.path}: {item.reason}")
    if not rows:
        return "\n".join(
            [
                f"no results under {results_dir!r} — run "
                "`repro run --all` or `pytest benchmarks/ "
                "--benchmark-only` first"
            ]
            + skip_lines
        )
    lines = [
        f"Reproduction report — {len(rows)} paper-vs-measured comparisons",
        "",
        f"{'figure':<24}{'metric':<60}{'paper':>12}{'measured':>12}{'err%':>8}",
        "-" * 116,
    ]
    for row in rows:
        error = row.relative_error
        err_text = f"{100 * error:7.1f}" if error is not None else "    n/a"
        lines.append(
            f"{row.figure_id:<24}{row.metric[:58]:<60}"
            f"{row.paper:>12.4g}{row.measured:>12.4g}{err_text:>8}"
        )
    lines.append("")
    lines.append("accuracy histogram (relative error vs paper):")
    for bucket, count in accuracy_histogram(rows).items():
        bar = "#" * count
        lines.append(f"  {bucket:>6}: {count:3d} {bar}")
    lines.extend(skip_lines)
    return "\n".join(lines)
