"""Extension: cluster-scale CC serving (the serialized bridge, scaled).

Sweeps offered arrival rate x CC on/off x tensor-parallel degree
through :mod:`repro.serve.cluster` replicas whose inter-GPU traffic
rides the :mod:`repro.multigpu` secure links, reproducing the
cluster-scale claim of "The Serialized Bridge" (Yin & Wang, 2026):
sharding buys base-mode throughput, but under CC every per-layer
all-reduce pays counter/MAC metadata on the peer links, so the goodput
knee sits strictly left of base at every TP degree — and the gap
*widens* as TP grows (more ring steps, each taxed).  A second section
exercises the cluster router: placement policies over three replicas
and the attestation-delayed autoscaler.
"""

from __future__ import annotations

from typing import Dict, Sequence, Tuple

from .. import units
from ..config import SystemConfig
from ..serve import ClusterSpec, ScenarioSpec, run_cluster
from .common import FigureResult, dispatch

RATES = (8.0, 12.0, 16.0, 20.0, 24.0, 28.0, 32.0, 36.0, 40.0, 44.0)
TP_SWEEP = (1, 2, 4)
PLACEMENT_RATE = 32.0
PLACEMENT_REPLICAS = 3
# A rate sustains its offered load while goodput >= 90 % of it; the
# knee is the last sustained rate in the sweep (same convention as
# ext_serving).
KNEE_ATTAINMENT = 0.9


def _knee(rates: Sequence[float], goodput: Dict[float, float]) -> float:
    sustained = [r for r in rates if goodput[r] >= KNEE_ATTAINMENT * r]
    return max(sustained) if sustained else 0.0


def generate_cluster_serving(
    rates: Sequence[float] = RATES,
    tp_sweep: Sequence[int] = TP_SWEEP,
    duration_s: float = 2.0,
    tenants: int = 2,
    seed: int = 42,
) -> FigureResult:
    """Goodput vs offered rate, base vs CC, per TP degree + router demo."""
    base_config = SystemConfig.base()
    cc_config = SystemConfig.confidential()
    duration_ns = int(duration_s * units.NS_PER_SEC)

    rows = []
    goodput: Dict[Tuple[int, str], Dict[float, float]] = {}
    for tp in tp_sweep:
        for rate in rates:
            spec = ClusterSpec(
                scenario=ScenarioSpec(
                    rate_rps=float(rate),
                    duration_ns=duration_ns,
                    tenants=tenants,
                    seed=seed,
                ),
                tp=tp,
            )
            for mode, config in (("base", base_config), ("cc", cc_config)):
                _, result = run_cluster(spec, config)
                report = result.report
                goodput.setdefault((tp, mode), {})[rate] = report[
                    "goodput_rps"
                ]
                stats = result.replicas[0].engine.stats
                rows.append(
                    (
                        "topology",
                        tp,
                        1,
                        "-",
                        rate,
                        mode,
                        round(report["goodput_rps"], 3),
                        round(report["completed_rps"], 3),
                        round(report["ttft_ms"]["p99"], 3),
                        round(units.to_ms(stats.get("tp_comm_ns", 0)), 3),
                        0,
                    )
                )

    # Router section: placement policies over a small replica pool at a
    # rate past the single-engine knee, plus the CC-attested autoscaler.
    for placement in ("round-robin", "least-loaded", "kv-affinity"):
        spec = ClusterSpec(
            scenario=ScenarioSpec(
                rate_rps=PLACEMENT_RATE,
                duration_ns=duration_ns,
                tenants=tenants,
                seed=seed,
            ),
            replicas=PLACEMENT_REPLICAS,
            placement=placement,
        )
        _, result = run_cluster(spec, cc_config)
        rows.append(
            (
                "placement",
                1,
                PLACEMENT_REPLICAS,
                placement,
                PLACEMENT_RATE,
                "cc",
                round(result.report["goodput_rps"], 3),
                round(result.report["completed_rps"], 3),
                round(result.report["ttft_ms"]["p99"], 3),
                0.0,
                result.router["affinity_spills"],
            )
        )
    autoscale_ready_ms = {}
    for mode, config in (("base", base_config), ("cc", cc_config)):
        spec = ClusterSpec(
            scenario=ScenarioSpec(
                rate_rps=PLACEMENT_RATE,
                duration_ns=duration_ns,
                tenants=tenants,
                seed=seed,
            ),
            replicas=1,
            autoscale_max=PLACEMENT_REPLICAS,
            placement="least-loaded",
        )
        _, result = run_cluster(spec, config)
        events = result.router["autoscale_events"]
        ups = [e for e in events if e["action"] == "scale-up"]
        autoscale_ready_ms[mode] = (
            ups[0]["ready_ms"] - ups[0]["at_ms"] if ups else 0.0
        )
        rows.append(
            (
                "autoscale",
                1,
                result.router["replicas_final"],
                "least-loaded",
                PLACEMENT_RATE,
                mode,
                round(result.report["goodput_rps"], 3),
                round(result.report["completed_rps"], 3),
                round(result.report["ttft_ms"]["p99"], 3),
                0.0,
                len(ups),
            )
        )

    knees = {
        (tp, mode): _knee(rates, goodput[(tp, mode)])
        for tp in tp_sweep
        for mode in ("base", "cc")
    }
    degradation = {
        tp: knees[(tp, "base")] - knees[(tp, "cc")] for tp in tp_sweep
    }
    # Predicate 1: CC knee strictly left of base at every TP >= 2.
    knee_holds = [
        knees[(tp, "cc")] < knees[(tp, "base")]
        for tp in tp_sweep
        if tp >= 2
    ]
    # Predicate 2: degradation grows strictly with TP degree.
    ordered = sorted(tp_sweep)
    growth_holds = [
        degradation[a] < degradation[b]
        for a, b in zip(ordered, ordered[1:])
    ]

    figure = FigureResult(
        figure_id="ext_cluster_serving",
        title="Cluster serving: encrypted TP links widen the CC knee gap",
        columns=("section", "tp", "replicas", "placement", "rate_rps",
                 "mode", "goodput_rps", "completed_rps", "ttft_p99_ms",
                 "tp_comm_ms", "events"),
        rows=rows,
        notes=[
            "Replica engines shard kernels across tp GPUs and pay two "
            "ring all-reduces per layer over the secure peer links "
            "(plaintext in base, naive counter/MAC metadata under CC); "
            "a rate is sustained while goodput >= %g%% of it." % (
                100 * KNEE_ATTAINMENT),
            "knees (last sustained rate, rps): " + ", ".join(
                f"tp{tp}/{mode}={knees[(tp, mode)]:g}"
                for tp in tp_sweep
                for mode in ("base", "cc")
            ),
            "knee degradation base-cc (rps): " + ", ".join(
                f"tp{tp}={degradation[tp]:g}" for tp in tp_sweep
            ),
            "autoscale relief latency (scale-up to ready, ms): " + ", ".join(
                f"{mode}={autoscale_ready_ms[mode]:.3f}"
                for mode in ("base", "cc")
            ),
        ],
    )
    figure.add_paper_comparison(
        "CC goodput knee strictly below base under TP>=2 (fraction)",
        sum(knee_holds) / len(knee_holds),
    )
    figure.add_paper_comparison(
        "knee degradation grows with TP degree (fraction of steps)",
        sum(growth_holds) / len(growth_holds),
    )
    return figure


VARIANTS = {"": generate_cluster_serving,
            "cluster_serving": generate_cluster_serving}


def run(config=None):
    """Uniform harness entry point (see :mod:`repro.exec`)."""
    return dispatch(VARIANTS, config, __name__)
