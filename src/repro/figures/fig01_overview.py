"""Fig. 1: end-to-end overview of where time goes under CC-off /
CC-on / CC-on+UVM for a representative copy-then-execute application.
"""

from __future__ import annotations

from .. import units
from ..config import SystemConfig
from ..core import CATEGORIES, breakdown
from ..cuda import run_app
from ..workloads import CATALOG
from .common import FigureResult, dispatch

DEFAULT_APP = "hotspot"


def generate(app_name: str = DEFAULT_APP) -> FigureResult:
    info = CATALOG[app_name]
    scenarios = [
        ("cc-off", SystemConfig.base(), False),
        ("cc-on", SystemConfig.confidential(), False),
        ("cc-on-uvm", SystemConfig.confidential(), True),
    ]
    rows = []
    spans = {}
    for label, config, uvm in scenarios:
        trace, _ = run_app(info.app(uvm), config, label=label)
        result = breakdown(trace)
        spans[label] = result.span_ns
        for category in CATEGORIES:
            category_ns = result.by_category_ns.get(category, 0)
            if category == "recovery" and category_ns == 0:
                # Only present under an active fault plan; omitting the
                # zero row keeps fault-free outputs bit-identical.
                continue
            rows.append(
                (
                    label,
                    category,
                    units.to_ms(category_ns),
                    100.0 * result.share(category),
                )
            )
        rows.append((label, "TOTAL", units.to_ms(result.span_ns), 100.0))
    figure = FigureResult(
        figure_id="fig01_overview",
        title=f"End-to-end breakdown of {app_name} under CC settings",
        columns=("scenario", "category", "time_ms", "share_pct"),
        rows=rows,
        notes=[
            "Reproduces the structure of paper Fig. 1: CC-on stretches "
            "copies/mgmt/launches; CC-on+UVM is dominated by encrypted paging.",
        ],
    )
    figure.add_paper_comparison(
        "cc-on / cc-off end-to-end (qualitative: > 1)",
        spans["cc-on"] / spans["cc-off"],
    )
    figure.add_paper_comparison(
        "cc-on-uvm / cc-on end-to-end (qualitative: >> 1)",
        spans["cc-on-uvm"] / spans["cc-on"],
    )
    return figure
VARIANTS = {"": generate}


def run(config=None):
    """Uniform harness entry point (see :mod:`repro.exec`)."""
    return dispatch(VARIANTS, config, __name__)
