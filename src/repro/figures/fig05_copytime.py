"""Fig. 5: time spent on copy operations per application, Base vs CC,
split by direction as Nsight reports it (CC pinned copies show up as
Managed D2D — Sec. VI-A).
"""

from __future__ import annotations

from typing import Optional, Sequence

import numpy as np

from .. import units
from ..config import CopyKind, SystemConfig
from ..core import copy_time_by_kind
from ..cuda import run_app
from ..workloads import CATALOG, FIG5_APPS
from .common import FigureResult, dispatch


def generate(app_names: Optional[Sequence[str]] = None) -> FigureResult:
    app_names = list(app_names) if app_names is not None else FIG5_APPS
    rows = []
    slowdowns = {}
    for name in app_names:
        info = CATALOG[name]
        totals = {}
        for label, config in (
            ("base", SystemConfig.base()),
            ("cc", SystemConfig.confidential()),
        ):
            trace, _ = run_app(info.app(False), config, label=name)
            by_kind = copy_time_by_kind(trace)
            totals[label] = sum(by_kind.values())
            rows.append(
                (
                    name,
                    label,
                    units.to_ms(by_kind[CopyKind.H2D]),
                    units.to_ms(by_kind[CopyKind.D2H]),
                    units.to_ms(by_kind[CopyKind.D2D]),
                    units.to_ms(totals[label]),
                )
            )
        slowdowns[name] = totals["cc"] / max(totals["base"], 1)
    for name in app_names:
        rows.append((name, "cc/base", "", "", "", round(slowdowns[name], 2)))
    figure = FigureResult(
        figure_id="fig05_copytime",
        title="Copy-operation time per app (Nsight-visible direction split)",
        columns=("app", "mode", "h2d_ms", "d2h_ms", "d2d_ms", "total_ms"),
        rows=rows,
        notes=[
            "Under CC, copies on pinned memory are reported as Managed D2D "
            "(encrypted paging), matching the paper's observation for 2dconv.",
        ],
    )
    values = list(slowdowns.values())
    figure.add_paper_comparison("mean copy slowdown", float(np.mean(values)))
    figure.add_paper_comparison("max copy slowdown (2dconv)", max(values))
    figure.add_paper_comparison("min copy slowdown (cnn)", min(values))
    return figure
VARIANTS = {"": generate}


def run(config=None):
    """Uniform harness entry point (see :mod:`repro.exec`)."""
    return dispatch(VARIANTS, config, __name__)
