"""Fig. 3: the GPU performance model — validated by comparing the
model's predicted end-to-end time P against the simulated wall clock
for a cross-section of applications in both modes.
"""

from __future__ import annotations

from typing import Sequence

from .. import units
from ..config import SystemConfig
from ..core import decompose
from ..cuda import run_app
from ..workloads import CATALOG
from .common import FigureResult, dispatch

DEFAULT_APPS = ("2mm", "hotspot", "sc", "3dconv", "gb_bfs", "kmeans")


def generate(app_names: Sequence[str] = DEFAULT_APPS) -> FigureResult:
    rows = []
    errors = []
    for name in app_names:
        info = CATALOG[name]
        for label, config in (
            ("base", SystemConfig.base()),
            ("cc", SystemConfig.confidential()),
        ):
            trace, _ = run_app(info.app(False), config, label=name)
            model = decompose(trace)
            errors.append(abs(model.prediction_error))
            rows.append(
                (
                    name,
                    label,
                    units.to_ms(model.part_a_ns),
                    units.to_ms(model.part_b_ns),
                    units.to_ms(model.part_c_ns),
                    units.to_ms(model.t_other_ns),
                    round(model.alpha, 3),
                    round(model.mean_beta, 3),
                    units.to_ms(model.predicted_ns),
                    units.to_ms(model.span_ns),
                    100.0 * model.prediction_error,
                )
            )
    figure = FigureResult(
        figure_id="fig03_perfmodel",
        title="Performance model P = (1-a)T_mem + sum(KLO+LQT) + sum((1-b)(KET+KQT)) + T_other",
        columns=(
            "app", "mode", "A_ms", "B_ms", "C_ms", "D_ms",
            "alpha", "mean_beta", "P_pred_ms", "P_obs_ms", "err_pct",
        ),
        rows=rows,
        notes=["The model is the paper's Sec.-V contribution; error is prediction vs simulated wall clock."],
    )
    figure.add_paper_comparison(
        "max |prediction error| (qualitative: small)",
        max(errors),
    )
    return figure
VARIANTS = {"": generate}


def run(config=None):
    """Uniform harness entry point (see :mod:`repro.exec`)."""
    return dispatch(VARIANTS, config, __name__)
