"""Fig. 9: kernel execution time (KET) normalized to the non-CC
non-UVM baseline, across base/CC and UVM/non-UVM.
"""

from __future__ import annotations

from typing import Optional, Sequence

import numpy as np

from ..config import SystemConfig
from ..core import kernel_metrics
from ..cuda import run_app
from ..workloads import CATALOG, FIG9_APPS
from .common import FigureResult, dispatch


def generate(app_names: Optional[Sequence[str]] = None) -> FigureResult:
    app_names = list(app_names) if app_names is not None else FIG9_APPS
    rows = []
    cc_nonuvm, uvm_base, uvm_cc = [], [], []
    for name in app_names:
        info = CATALOG[name]

        def mean_ket(config, uvm):
            trace, _ = run_app(info.app(uvm), config, label=name)
            return kernel_metrics(trace).ket_stats().mean

        baseline = mean_ket(SystemConfig.base(), False)
        r_cc = mean_ket(SystemConfig.confidential(), False) / baseline
        r_uvm = mean_ket(SystemConfig.base(), True) / baseline
        r_uvm_cc = mean_ket(SystemConfig.confidential(), True) / baseline
        cc_nonuvm.append(r_cc)
        uvm_base.append(r_uvm)
        uvm_cc.append(r_uvm_cc)
        rows.append(
            (name, 1.0, round(r_cc, 4), round(r_uvm, 2), round(r_uvm_cc, 2))
        )
    rows.append(
        (
            "MEAN",
            1.0,
            round(float(np.mean(cc_nonuvm)), 4),
            round(float(np.mean(uvm_base)), 2),
            round(float(np.mean(uvm_cc)), 2),
        )
    )
    figure = FigureResult(
        figure_id="fig09_ket",
        title="Mean KET normalized to non-CC non-UVM baseline",
        columns=("app", "base", "cc", "uvm_base", "uvm_cc"),
        rows=rows,
        notes=["uvm_cc is the paper's 'encrypted paging' regime (log-scale in the paper)."],
    )
    figure.add_paper_comparison(
        "non-UVM CC KET increase (%)",
        100.0 * (float(np.mean(cc_nonuvm)) - 1.0),
    )
    figure.add_paper_comparison(
        "UVM non-CC mean slowdown", float(np.mean(uvm_base))
    )
    figure.add_paper_comparison(
        "UVM CC mean slowdown", float(np.mean(uvm_cc))
    )
    figure.add_paper_comparison(
        "UVM CC max slowdown (2dconv; paper value is pathological thrash)",
        max(uvm_cc),
    )
    figure.add_paper_comparison("UVM CC min slowdown", min(uvm_cc))
    return figure
VARIANTS = {"": generate}


def run(config=None):
    """Uniform harness entry point (see :mod:`repro.exec`)."""
    return dispatch(VARIANTS, config, __name__)
