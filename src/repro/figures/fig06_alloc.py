"""Fig. 6: memory allocation/deallocation time under Base vs CC —
cudaMallocHost (Hmalloc), cudaMalloc (Dmalloc), cudaFree, and the
managed (UVM) variants, plus the paper's UVM-vs-non-UVM comparison.
"""

from __future__ import annotations

from typing import Sequence

from .. import units
from ..config import SystemConfig
from ..cuda import run_app
from .common import FigureResult, dispatch

DEFAULT_SIZES = (4 * units.MiB, 16 * units.MiB, 64 * units.MiB, 256 * units.MiB)


def _mgmt_app(rt, size):
    """Exercise all five management APIs once at the given size."""
    timings = {}
    dev = yield from rt.malloc(size)
    host = yield from rt.malloc_host(size)
    managed = yield from rt.malloc_managed(size)
    for buf, key in ((dev, "free"), (host, "hfree"), (managed, "managed_free")):
        yield from rt.free(buf)
    _ = timings
    return None


def _collect(config: SystemConfig, size: int):
    trace, _ = run_app(_mgmt_app, config, size=size)
    out = {}
    for event in trace.events:
        out.setdefault(event.name, []).append(event.duration_ns)
    return {name: sum(values) for name, values in out.items()}


def generate(sizes: Sequence[int] = DEFAULT_SIZES) -> FigureResult:
    apis = (
        "cudaMalloc",
        "cudaMallocHost",
        "cudaMallocManaged",
        "cudaFree",
        "cudaFreeHost",
        "cudaFree(managed)",
    )
    rows = []
    # API-level CC/base ratios are measured at *small* sizes (fixed
    # driver cost dominates — the API-microbenchmark regime the paper's
    # 5.43x/3.35x managed numbers come from); the UVM-vs-non-UVM app
    # comparison is per-page dominated, so it uses the *largest* size.
    small_ratio = {}
    uvm_vs_base = {}
    for size in sizes:
        base = _collect(SystemConfig.base(), size)
        cc = _collect(SystemConfig.confidential(), size)
        for api in apis:
            b, c = base.get(api, 0), cc.get(api, 0)
            ratio = c / b if b else float("nan")
            if size == min(sizes):
                small_ratio[api] = ratio
            rows.append(
                (
                    size // units.MiB,
                    api,
                    units.to_us(b),
                    units.to_us(c),
                    round(ratio, 2),
                )
            )
        if size == max(sizes):
            # The paper's UVM-vs-non-UVM normalization (non-CC non-UVM = 1).
            uvm_vs_base = {
                "uvm_alloc": base["cudaMallocManaged"] / base["cudaMalloc"],
                "uvm_free": base["cudaFree(managed)"] / base["cudaFree"],
                "cc_uvm_alloc": cc["cudaMallocManaged"] / base["cudaMalloc"],
                "cc_uvm_free": cc["cudaFree(managed)"] / base["cudaFree"],
            }
    figure = FigureResult(
        figure_id="fig06_alloc",
        title="Memory (de)allocation time, Base vs CC",
        columns=("size_MiB", "api", "base_us", "cc_us", "cc/base"),
        rows=rows,
    )

    figure.add_paper_comparison(
        "cudaMalloc slowdown", small_ratio["cudaMalloc"]
    )
    figure.add_paper_comparison(
        "cudaMallocHost slowdown", small_ratio["cudaMallocHost"]
    )
    figure.add_paper_comparison("cudaFree slowdown", small_ratio["cudaFree"])
    figure.add_paper_comparison(
        "cudaMallocManaged slowdown", small_ratio["cudaMallocManaged"]
    )
    figure.add_paper_comparison(
        "managed free slowdown", small_ratio["cudaFree(managed)"]
    )
    figure.add_paper_comparison(
        "non-CC UVM alloc vs base", uvm_vs_base["uvm_alloc"]
    )
    figure.add_paper_comparison(
        "non-CC UVM free vs base", uvm_vs_base["uvm_free"]
    )
    figure.add_paper_comparison(
        "CC UVM alloc vs base", uvm_vs_base["cc_uvm_alloc"]
    )
    figure.add_paper_comparison(
        "CC UVM free vs base", uvm_vs_base["cc_uvm_free"]
    )
    return figure
VARIANTS = {"": generate}


def run(config=None):
    """Uniform harness entry point (see :mod:`repro.exec`)."""
    return dispatch(VARIANTS, config, __name__)
