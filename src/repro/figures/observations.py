"""The paper's nine numbered Observations, evaluated against the
simulator.

Each check re-derives the observation's claim from simulated data and
returns (holds, detail).  The bench `benchmarks/test_observations.py`
asserts every observation holds.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Dict, List

import numpy as np

from .. import units
from ..config import CopyKind, MemoryKind, SystemConfig
from ..crypto import throughput as crypto
from ..cuda import run_app
from ..cuda.transfers import achieved_bandwidth_gbps, plan_copy
from ..core import kernel_metrics, launch_metrics
from ..profiler import EventKind
from ..sim import Simulator
from ..tdx import GuestContext
from ..workloads import CATALOG, FIG7_APPS, overlap_experiment


@dataclass
class ObservationResult:
    number: int
    claim: str
    holds: bool
    detail: str


def _bandwidth(config, copy_kind, size, memory):
    guest = GuestContext(Simulator(), config)
    plan = plan_copy(config, guest, copy_kind, size, memory, cold=False)
    return achieved_bandwidth_gbps(plan, size)


def observation_1() -> ObservationResult:
    """CC bandwidth drops; pinned/pageable gap disappears under CC."""
    size = 256 * units.MiB
    base_pin = _bandwidth(SystemConfig.base(), CopyKind.H2D, size, MemoryKind.PINNED)
    base_page = _bandwidth(SystemConfig.base(), CopyKind.H2D, size, MemoryKind.PAGEABLE)
    cc_pin = _bandwidth(SystemConfig.confidential(), CopyKind.H2D, size, MemoryKind.PINNED)
    cc_page = _bandwidth(SystemConfig.confidential(), CopyKind.H2D, size, MemoryKind.PAGEABLE)
    holds = (
        cc_pin < 0.25 * base_pin
        and base_pin > 1.4 * base_page
        and abs(cc_pin - cc_page) / cc_page < 0.1
    )
    return ObservationResult(
        1,
        "CC bandwidth drops; pinned==pageable under CC",
        holds,
        f"base pin/page={base_pin:.1f}/{base_page:.1f}, cc pin/page={cc_pin:.2f}/{cc_page:.2f} GB/s",
    )


def observation_2() -> ObservationResult:
    """Software crypto throughput is the transfer ceiling; faster
    algorithms trade away confidentiality."""
    gcm = crypto.spec("aes-128-gcm", crypto.EMR)
    ghash = crypto.spec("ghash", crypto.EMR)
    cc_peak = _bandwidth(
        SystemConfig.confidential(), CopyKind.H2D, units.GiB, MemoryKind.PINNED
    )
    base_peak = _bandwidth(
        SystemConfig.base(), CopyKind.H2D, units.GiB, MemoryKind.PINNED
    )
    holds = (
        cc_peak < gcm.peak_gbps < base_peak
        and ghash.peak_gbps > gcm.peak_gbps
        and not ghash.confidentiality
    )
    return ObservationResult(
        2,
        "AES-GCM caps CC transfers below demand; GHASH faster but no confidentiality",
        holds,
        f"cc_peak={cc_peak:.2f} <= gcm={gcm.peak_gbps} << base={base_peak:.1f} GB/s; ghash={ghash.peak_gbps}",
    )


def _copy_ratios(app_names) -> List[float]:
    ratios = []
    for name in app_names:
        info = CATALOG[name]
        tb, _ = run_app(info.app(False), SystemConfig.base(), label=name)
        tc, _ = run_app(info.app(False), SystemConfig.confidential(), label=name)
        ratios.append(
            tc.total_duration_ns(EventKind.MEMCPY)
            / max(tb.total_duration_ns(EventKind.MEMCPY), 1)
        )
    return ratios


def observation_3() -> ObservationResult:
    """Copies ~5.8x slower on average under CC, up to ~20x."""
    from ..workloads import FIG5_APPS

    ratios = _copy_ratios(FIG5_APPS)
    mean = float(np.mean(ratios))
    holds = 4.0 <= mean <= 8.0 and max(ratios) > 12.0
    return ObservationResult(
        3,
        "CC copies ~5.8x slower on average, up to ~20x (encrypted paging)",
        holds,
        f"mean={mean:.2f}x max={max(ratios):.2f}x (paper: 5.80x / 19.69x)",
    )


def _launch_ratio_table():
    out = {}
    for name in FIG7_APPS:
        info = CATALOG[name]
        tb, _ = run_app(info.app(False), SystemConfig.base(), label=name)
        tc, _ = run_app(info.app(False), SystemConfig.confidential(), label=name)
        lb, lc = launch_metrics(tb), launch_metrics(tc)
        kb, kc = kernel_metrics(tb), kernel_metrics(tc)
        out[name] = {
            "klo": lc.klo_stats().mean / max(lb.klo_stats().mean, 1e-9),
            "lqt": (
                lc.lqt_stats().mean / lb.lqt_stats().mean
                if lb.lqt_stats().mean > 0
                else None
            ),
            "kqt": kc.kqt_stats().mean / max(kb.kqt_stats().mean, 1e-9),
            "launches": lb.count,
        }
    return out


def observation_4() -> ObservationResult:
    """KLO up ~1.42x; KQT amplified for few-launch apps; LQT ~1.43x."""
    table = _launch_ratio_table()
    klo = float(np.mean([row["klo"] for row in table.values()]))
    lqt = float(np.mean([row["lqt"] for row in table.values() if row["lqt"]]))
    kqt = float(np.mean([row["kqt"] for row in table.values()]))
    few = [row["kqt"] for row in table.values() if row["launches"] <= 4]
    many = [row["kqt"] for row in table.values() if row["launches"] >= 100]
    holds = (
        1.2 <= klo <= 1.9
        and 1.1 <= lqt <= 1.8
        and 1.8 <= kqt <= 3.0
        and float(np.mean(few)) > float(np.mean(many))
    )
    return ObservationResult(
        4,
        "KLO ~1.42x, LQT ~1.43x, KQT ~2.32x; few-launch apps amplified",
        holds,
        f"klo={klo:.2f} lqt={lqt:.2f} kqt={kqt:.2f} (paper 1.42/1.43/2.32)",
    )


def observation_5() -> ObservationResult:
    """Non-UVM KET ~unchanged (+0.48%); UVM KET explodes under CC."""
    info = CATALOG["2dconv"]

    def mean_ket(config, uvm):
        trace, _ = run_app(info.app(uvm), config)
        return kernel_metrics(trace).ket_stats().mean

    baseline = mean_ket(SystemConfig.base(), False)
    cc_ratio = mean_ket(SystemConfig.confidential(), False) / baseline
    uvm_cc_ratio = mean_ket(SystemConfig.confidential(), True) / baseline
    holds = abs(cc_ratio - 1.0048) < 0.005 and uvm_cc_ratio > 100
    return ObservationResult(
        5,
        "non-UVM KET +0.48%; UVM encrypted paging catastrophic",
        holds,
        f"cc/base={cc_ratio:.4f}; uvm_cc/base={uvm_cc_ratio:.0f}x",
    )


def observation_6() -> ObservationResult:
    """High KLR hides launch costs; low KLR apps are launch-dominated."""
    from ..core import kernel_to_launch_ratio

    def exec_phase_span(trace) -> int:
        """Span of the launch+kernel phase (copies excluded — Fig. 10
        ignores memory copies for these apps, Sec. VI-B)."""
        events = trace.launches() + trace.kernels()
        return max(e.end_ns for e in events) - min(e.start_ns for e in events)

    outcomes = {}
    for name in ("gb_bfs", "sc"):
        info = CATALOG[name]
        tb, _ = run_app(info.app(False), SystemConfig.base(), label=name)
        tc, _ = run_app(info.app(False), SystemConfig.confidential(), label=name)
        outcomes[name] = {
            "klr": kernel_to_launch_ratio(tb),
            "exec": exec_phase_span(tc) / exec_phase_span(tb),
        }
    high, low = outcomes["gb_bfs"], outcomes["sc"]
    holds = high["klr"] > 3 * low["klr"] and low["exec"] > high["exec"]
    return ObservationResult(
        6,
        "high-KLR apps hide CC launch costs; low-KLR apps dominated by them",
        holds,
        f"gb_bfs: klr={high['klr']:.1f} exec-phase={high['exec']:.2f}x | "
        f"sc: klr={low['klr']:.1f} exec-phase={low['exec']:.2f}x",
    )


def observation_7() -> ObservationResult:
    """First launches cost more; KLO/LQT trend differently under fusion."""
    from ..workloads import fusion_sweep, launch_sequence

    klos = launch_sequence(SystemConfig.confidential(), launches_per_kernel=50)
    steady = sorted(klos)[: len(klos) // 2]
    first_spike = klos[0] / (sum(steady) / len(steady))
    points = fusion_sweep(
        SystemConfig.confidential(), launch_counts=(1, 16, 256),
        total_ket_ns=units.ms(50),
    )
    klo_trend_up = points[-1].total_klo_ns > points[0].total_klo_ns
    mean_klo_down = points[-1].mean_klo_ns < points[0].mean_klo_ns
    holds = first_spike > 5 and klo_trend_up and mean_klo_down
    return ObservationResult(
        7,
        "first-launch KLO spike; fusion trades total KLO against per-launch KLO",
        holds,
        f"first/steady={first_spike:.1f}; total KLO 1->256 launches "
        f"{units.to_us(points[0].total_klo_ns):.0f}->{units.to_us(points[-1].total_klo_ns):.0f} us",
    )


def observation_8() -> ObservationResult:
    """Overlap hides CC data movement; higher compute-to-IO helps."""
    short = overlap_experiment(
        SystemConfig.confidential(), 16, 512 * units.MB, units.ms(1)
    )
    long = overlap_experiment(
        SystemConfig.confidential(), 16, 512 * units.MB, units.ms(100)
    )
    base_short = overlap_experiment(
        SystemConfig.base(), 16, 512 * units.MB, units.ms(1)
    )
    holds = (
        long.overlap_speedup > short.overlap_speedup
        and base_short.overlap_speedup > short.overlap_speedup
        and long.overlap_speedup > 1.1
    )
    return ObservationResult(
        8,
        "overlap improves CC performance; higher KET improves overlap",
        holds,
        f"cc speedup ket1ms={short.overlap_speedup:.2f} ket100ms={long.overlap_speedup:.2f} "
        f"(base ket1ms={base_short.overlap_speedup:.2f})",
    )


def observation_9() -> ObservationResult:
    """FP16 cuts CNN training time; vLLM beats HF robustly under CC."""
    from ..dnn import get, train
    from ..llm import BF16, HFBackend, VLLMBackend, make_requests

    model = get("vgg16")
    cc = SystemConfig.confidential()
    amp = train(model, 1024, "amp", cc)
    fp16 = train(model, 1024, "fp16", cc)
    requests = make_requests(16)
    hf = HFBackend(quant=BF16).serve(SystemConfig.base(), requests, 8)
    vllm_cc = VLLMBackend(quant=BF16).serve(cc, requests, 8)
    holds = (
        fp16.epoch_time_sec < amp.epoch_time_sec
        and vllm_cc.tokens_per_sec > hf.tokens_per_sec
    )
    return ObservationResult(
        9,
        "FP16 quantization cuts training time; vLLM > HF even with CC on",
        holds,
        f"fp16/amp epoch={fp16.epoch_time_sec / amp.epoch_time_sec:.2f}; "
        f"vllm_cc/hf_base={vllm_cc.tokens_per_sec / hf.tokens_per_sec:.2f}",
    )


ALL_OBSERVATIONS: Dict[int, Callable[[], ObservationResult]] = {
    1: observation_1,
    2: observation_2,
    3: observation_3,
    4: observation_4,
    5: observation_5,
    6: observation_6,
    7: observation_7,
    8: observation_8,
    9: observation_9,
}


def evaluate_all() -> List[ObservationResult]:
    return [ALL_OBSERVATIONS[number]() for number in sorted(ALL_OBSERVATIONS)]
