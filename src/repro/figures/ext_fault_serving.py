"""Extension: serving resilience under fault injection.

Sweeps per-occurrence fault rate x CC on/off x degradation policy
through the :mod:`repro.serve` engine running at an offered rate past
the goodput knee, with every cost-paying path (uploads, prefill/decode
launches, token D2H, KV swaps) under the seeded
:class:`~repro.faults.FaultInjector`.

Three policy variants per (mode, fault-rate) cell:

* ``none`` — the inert default: no shedding, no breaker, restart
  budget 2.  At the highest fault rate the SPDM re-attestation storm
  eventually lands a terminal attestation failure mid-batch and the
  engine gives up: the goodput *cliff*.
* ``shed`` — TTFT timeout + end-to-end deadline + admission pushback:
  hopeless requests are shed with an explicit cause so survivors stay
  inside their SLOs (goodput above ``none`` at every nonzero rate),
  but inline re-attestation still exposes the engine to the same
  terminal storm.
* ``shed+breaker`` — adds the circuit breaker: admission pauses and
  the batch drains before a single re-attestation, collapsing the
  storm's many inline re-attests into few, which is what keeps the
  engine alive at the highest rate: the graceful *slope*.

The zero-fault-rate ``none`` cells double as the zero-perturbation
gate: their verdict JSON must be byte-identical to a plain build
(no fault plan, all-default :class:`~repro.serve.ScenarioSpec`).
"""

from __future__ import annotations

from typing import Dict, Sequence, Tuple

from .. import units
from ..config import SystemConfig
from ..faults import BOUNCE_POOL, DMA, GCM_TAG, HYPERCALL, SPDM
from ..faults import FaultPlan, SiteFaults
from ..serve import ScenarioSpec, run_scenario, verdict_json
from .common import FigureResult, dispatch

#: Per-occurrence probability at the transient copy sites; the other
#: sites scale with it (see :func:`fault_plan_for`).
FAULT_RATES = (0.0, 0.05, 0.1, 0.2)
POLICY_VARIANTS = ("none", "shed", "shed+breaker")
#: Offered load past the CC goodput knee (ext_serving: knee at 24 rps
#: under CC) — the regime where degradation policy actually matters.
OFFERED_RPS = 32.0
#: A cliff: no-policy goodput at the top fault rate under this
#: fraction of its zero-fault goodput.
CLIFF_FRACTION = 0.2
#: Graceful: policy goodput at the top fault rate at or above this
#: fraction of its zero-fault goodput.
GRACEFUL_FRACTION = 0.45


def fault_plan_for(rate: float) -> FaultPlan:
    """One scalar sweeps all five sites: full rate at the per-copy
    transient sites, quartered at the per-call/per-pool sites, halved
    at SPDM (drawn once per engine iteration, so it dominates)."""
    if rate == 0.0:
        return FaultPlan.none()
    return FaultPlan.from_mapping(
        {
            GCM_TAG: SiteFaults(rate=rate),
            DMA: SiteFaults(rate=rate),
            HYPERCALL: SiteFaults(rate=rate / 4),
            BOUNCE_POOL: SiteFaults(rate=rate / 4),
            SPDM: SiteFaults(rate=rate / 2),
        }
    )


def spec_for(variant: str, seed: int, duration_s: float) -> ScenarioSpec:
    """The scenario for one policy variant (identical load across all
    variants; only the degradation knobs differ)."""
    knobs: Dict = {}
    if variant in ("shed", "shed+breaker"):
        knobs = dict(
            ttft_timeout_ms=350.0,
            deadline_ms=2500.0,
            shed_policy="pushback",
            max_queue_depth=12,
            max_engine_restarts=3,
        )
    if variant == "shed+breaker":
        knobs["circuit_breaker"] = True
    return ScenarioSpec(
        rate_rps=OFFERED_RPS,
        duration_ns=int(duration_s * units.NS_PER_SEC),
        seed=seed,
        **knobs,
    )


def generate_fault_serving(
    fault_rates: Sequence[float] = FAULT_RATES,
    variants: Sequence[str] = POLICY_VARIANTS,
    duration_s: float = 2.0,
    seed: int = 42,
) -> FigureResult:
    """Goodput vs fault rate, base vs CC, per degradation policy."""
    rows = []
    goodput: Dict[Tuple[str, str], Dict[float, float]] = {}
    failed: Dict[Tuple[str, str], Dict[float, int]] = {}
    zero_rate_verdicts: Dict[str, str] = {}

    modes = (("base", SystemConfig.base), ("cc", SystemConfig.confidential))
    for mode, make_config in modes:
        for rate in fault_rates:
            config = make_config().replace(faults=fault_plan_for(rate))
            for variant in variants:
                spec = spec_for(variant, seed, duration_s)
                _, result = run_scenario(spec, config)
                report = result.report
                stats = result.engine.stats
                goodput.setdefault((mode, variant), {})[rate] = report[
                    "goodput_rps"
                ]
                failed.setdefault((mode, variant), {})[rate] = report[
                    "failed"
                ]
                if rate == 0.0 and variant == "none":
                    zero_rate_verdicts[mode] = verdict_json(result)
                rows.append(
                    (
                        mode,
                        rate,
                        variant,
                        round(report["goodput_rps"], 3),
                        report["completed"],
                        report["shed"],
                        report["failed"],
                        round(report["ttft_ms"]["p99"], 3),
                        round(report["shed_rate"], 4),
                        round(report["failed_rate"], 4),
                        stats["spdm_storms"],
                        stats["breaker_trips"],
                        stats["restarts"],
                        stats["engine_retries"],
                        stats["faults_injected"],
                    )
                )

    # Zero-perturbation: an inactive plan + inert policy must be
    # byte-identical to the all-defaults build.
    parity = []
    for mode, make_config in modes:
        plain = ScenarioSpec(
            rate_rps=OFFERED_RPS,
            duration_ns=int(duration_s * units.NS_PER_SEC),
            seed=seed,
        )
        _, plain_result = run_scenario(plain, make_config())
        parity.append(verdict_json(plain_result) == zero_rate_verdicts[mode])

    top = max(fault_rates)
    cliff = [
        goodput[(mode, "none")][top]
        < CLIFF_FRACTION * goodput[(mode, "none")][0.0]
        for mode, _ in modes
    ]
    graceful = [
        goodput[(mode, "shed+breaker")][top]
        >= GRACEFUL_FRACTION * goodput[(mode, "shed+breaker")][0.0]
        and failed[(mode, "shed+breaker")][top] == 0
        for mode, _ in modes
    ]
    beats = [
        goodput[(mode, "shed+breaker")][top] > goodput[(mode, "none")][top]
        for mode, _ in modes
    ]

    figure = FigureResult(
        figure_id="ext_fault_serving",
        title="Serving under faults: goodput cliff without degradation "
              "policies, graceful slope with them",
        columns=("mode", "fault_rate", "policy", "goodput_rps",
                 "completed", "shed", "failed", "ttft_p99_ms",
                 "shed_rate", "failed_rate", "spdm_storms",
                 "breaker_trips", "restarts", "engine_retries",
                 "faults_injected"),
        rows=rows,
        notes=[
            "Offered load %g rps (past the CC goodput knee), seed %d; "
            "fault_rate drives all five injection sites (SPDM at "
            "rate/2, hypercall/bounce at rate/4)." % (OFFERED_RPS, seed),
            "Policies: none (inert), shed (TTFT timeout 350 ms + "
            "deadline 2.5 s + pushback at queue depth 12), "
            "shed+breaker (adds the SPDM circuit breaker).",
            "At the top rate the storm lands a terminal attestation "
            "failure on the policy-free engine (give-up: requests fail "
            "with cause); the breaker collapses inline re-attests into "
            "one drain-then-attest, which is what survives it.",
            "Every request in every cell terminates exactly once "
            "(completed/shed/failed/rejected) and the KV pager drains "
            "to zero blocks — asserted inside the engine on all paths.",
        ],
    )
    figure.add_paper_comparison(
        "zero-fault verdict byte-identical to plain build (fraction)",
        sum(parity) / len(parity),
    )
    figure.add_paper_comparison(
        "no-policy goodput cliff at top fault rate (fraction of modes)",
        sum(cliff) / len(cliff),
    )
    figure.add_paper_comparison(
        "shed+breaker graceful at top fault rate, zero failed (fraction)",
        sum(graceful) / len(graceful),
    )
    figure.add_paper_comparison(
        "shed+breaker beats no-policy at top fault rate (fraction)",
        sum(beats) / len(beats),
    )
    return figure


VARIANTS = {"": generate_fault_serving,
            "fault_serving": generate_fault_serving}


def run(config=None):
    """Uniform harness entry point (see :mod:`repro.exec`)."""
    return dispatch(VARIANTS, config, __name__)
