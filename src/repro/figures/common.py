"""Shared infrastructure for figure reproduction.

Every figure module exposes a ``generate(...) -> FigureResult``; the
result carries typed rows, renders as an aligned text table, and
serializes to JSON so benches can tee machine-readable output into
``results/``.
"""

from __future__ import annotations

import json
import os
from dataclasses import dataclass, field
from typing import Any, Dict, List, Mapping, Optional, Sequence


@dataclass(frozen=True)
class RunConfig:
    """Uniform argument for the per-figure ``run(config)`` entry points.

    The execution harness (:mod:`repro.exec`) drives every figure
    through ``module.run(config)``.  ``variant`` selects a panel for
    multi-panel modules (``"a"``/``"b"``/``"c"`` for fig04/fig12, the
    experiment name for extensions); ``params`` are keyword arguments
    forwarded verbatim to the underlying generator.
    """

    variant: str = ""
    params: Mapping[str, Any] = field(default_factory=dict)

    def kwargs(self) -> Dict[str, Any]:
        return dict(self.params)


def dispatch(variants: Mapping[str, Any], config: Optional[RunConfig],
             module: str) -> "FigureResult":
    """Resolve ``config`` against a module's ``VARIANTS`` table."""
    variant = config.variant if config is not None else ""
    try:
        generator = variants[variant]
    except KeyError:
        raise ValueError(
            f"{module}: unknown variant {variant!r}; "
            f"known: {sorted(variants)}"
        ) from None
    return generator(**(config.kwargs() if config is not None else {}))


@dataclass
class FigureResult:
    """Rows reproducing one paper figure/table."""

    figure_id: str
    title: str
    columns: Sequence[str]
    rows: List[Sequence[Any]]
    notes: List[str] = field(default_factory=list)
    # paper-vs-measured summary entries: (metric, paper value, measured)
    comparisons: List[Dict[str, Any]] = field(default_factory=list)

    def add_comparison(self, metric: str, paper: float, measured: float) -> None:
        self.comparisons.append(
            {"metric": metric, "paper": paper, "measured": measured}
        )

    def add_paper_comparison(
        self, metric: str, measured: float, default: Optional[float] = None
    ) -> None:
        """Add a comparison whose paper value comes from the canonical
        target table (:mod:`repro.check.paper_targets`) — the same
        table the accuracy gate scores against, so figure and gate
        cannot disagree.  ``default`` covers parameter-dependent metric
        names that only have a table entry for the default parameters.
        """
        from ..check.paper_targets import paper_value

        self.add_comparison(
            metric, paper_value(self.figure_id, metric, default), measured
        )

    def to_text(self) -> str:
        widths = [len(str(c)) for c in self.columns]
        str_rows = [[_fmt(cell) for cell in row] for row in self.rows]
        for row in str_rows:
            for index, cell in enumerate(row):
                widths[index] = max(widths[index], len(cell))
        lines = [f"== {self.figure_id}: {self.title} =="]
        header = "  ".join(
            str(c).ljust(widths[i]) for i, c in enumerate(self.columns)
        )
        lines.append(header)
        lines.append("-" * len(header))
        for row in str_rows:
            lines.append(
                "  ".join(cell.rjust(widths[i]) for i, cell in enumerate(row))
            )
        if self.comparisons:
            lines.append("")
            lines.append("paper-vs-measured:")
            for item in self.comparisons:
                lines.append(
                    f"  {item['metric']:<42} paper={item['paper']:<12g} "
                    f"measured={item['measured']:g}"
                )
        for note in self.notes:
            lines.append(f"note: {note}")
        return "\n".join(lines)

    def to_json(self) -> str:
        return json.dumps(
            {
                "figure_id": self.figure_id,
                "title": self.title,
                "columns": list(self.columns),
                "rows": [[_jsonable(c) for c in row] for row in self.rows],
                "notes": self.notes,
                "comparisons": self.comparisons,
            },
            indent=1,
        )

    def save(self, results_dir: str) -> str:
        os.makedirs(results_dir, exist_ok=True)
        path = os.path.join(results_dir, f"{self.figure_id}.json")
        with open(path, "w") as handle:
            handle.write(self.to_json())
        text_path = os.path.join(results_dir, f"{self.figure_id}.txt")
        with open(text_path, "w") as handle:
            handle.write(self.to_text() + "\n")
        return path


def _fmt(cell: Any) -> str:
    if isinstance(cell, float):
        if cell == 0:
            return "0"
        if abs(cell) >= 10000 or abs(cell) < 0.001:
            return f"{cell:.3g}"
        return f"{cell:.3f}".rstrip("0").rstrip(".")
    return str(cell)


def _jsonable(cell: Any) -> Any:
    if hasattr(cell, "value"):
        return cell.value
    return cell


def default_results_dir() -> str:
    return os.environ.get(
        "REPRO_RESULTS_DIR",
        os.path.join(os.path.dirname(os.path.dirname(os.path.dirname(
            os.path.dirname(os.path.abspath(__file__))))), "results"),
    )
