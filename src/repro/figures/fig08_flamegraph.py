"""Fig. 8: simplified call stack of a cudaLaunchKernel inside a TD.

Runs a single kernel launch on a confidential machine, captures the
recorded driver/TDX call stacks, and folds them into a flame graph —
the dma_direct_alloc / set_memory_decrypted / tdx_hypercall frames the
paper highlights.
"""

from __future__ import annotations

from .. import units
from ..config import SystemConfig
from ..cuda import Machine
from ..gpu import nanosleep_kernel
from ..profiler import build_tree, frame_share, render_ascii
from .common import FigureResult


def _single_launch(rt):
    # A representative kernel with a realistic module size (~64 DMA
    # pages of code/constant staging) so the first-launch conversion
    # work is visible, as in the paper's perf capture.
    kernel = nanosleep_kernel(units.us(50), name="probe")
    kernel.attrs["module_pages"] = 64.0
    yield from rt.launch(kernel)
    yield from rt.synchronize()


def generate() -> FigureResult:
    machine = Machine(SystemConfig.confidential(), label="fig08")
    machine.run(_single_launch)
    samples = machine.guest.stacks.samples
    # Restrict to the launch path (drop sync/idle frames).
    launch_samples = {
        stack: value
        for stack, value in samples.items()
        if stack and stack[0] == "cudaLaunchKernel"
    }
    tree = build_tree(launch_samples, root_name="cudaLaunchKernel(in TD)")
    rows = []
    for line in machine.guest.stacks.folded():
        if line.startswith("cudaLaunchKernel"):
            stack, _, value = line.rpartition(" ")
            rows.append((stack, int(value)))
    figure = FigureResult(
        figure_id="fig08_flamegraph",
        title="Folded call stacks of one cudaLaunchKernel inside a TD",
        columns=("stack", "self_ns"),
        rows=rows,
        notes=[
            "ASCII flame graph:",
            *render_ascii(tree).splitlines(),
        ],
    )
    figure.add_comparison(
        "share of launch in set_memory_decrypted (qualitative: large)",
        0.5,
        frame_share(tree, "set_memory_decrypted"),
    )
    figure.add_comparison(
        "share of launch in TDX module (__seamcall)",
        0.1,
        frame_share(tree, "tdx_module.__seamcall"),
    )
    return figure
