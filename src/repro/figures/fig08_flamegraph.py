"""Fig. 8: simplified call stack of a cudaLaunchKernel inside a TD.

Runs a single kernel launch on a confidential machine, takes the
hierarchical span subtree rooted at the ``cudaLaunchKernel`` driver
span, and folds it into a flame graph — the dma_direct_alloc /
set_memory_decrypted / tdx_hypercall frames the paper highlights.
"""

from __future__ import annotations

from .. import units
from ..config import SystemConfig
from ..cuda import Machine
from ..gpu import nanosleep_kernel
from ..profiler import folded_from_spans, frame_share, render_ascii, tree_from_spans
from .common import FigureResult, dispatch


def _single_launch(rt):
    # A representative kernel with a realistic module size (~64 DMA
    # pages of code/constant staging) so the first-launch conversion
    # work is visible, as in the paper's perf capture.
    kernel = nanosleep_kernel(units.us(50), name="probe")
    kernel.attrs["module_pages"] = 64.0
    yield from rt.launch(kernel)
    yield from rt.synchronize()


def generate() -> FigureResult:
    machine = Machine(SystemConfig.confidential(), label="fig08")
    machine.run(_single_launch)
    # Restrict to the launch path (drop sync/idle frames): fold the
    # span subtree hanging off the cudaLaunchKernel driver span.
    launch_root = next(
        s for s in machine.trace.spans if s.name == "cudaLaunchKernel"
    )
    launch_spans = machine.trace.spans.subtree(launch_root)
    tree = tree_from_spans(launch_spans, root_name="cudaLaunchKernel(in TD)")
    rows = folded_from_spans(launch_spans)
    figure = FigureResult(
        figure_id="fig08_flamegraph",
        title="Folded call stacks of one cudaLaunchKernel inside a TD",
        columns=("stack", "self_ns"),
        rows=rows,
        notes=[
            "ASCII flame graph:",
            *render_ascii(tree).splitlines(),
        ],
    )
    figure.add_paper_comparison(
        "share of launch in set_memory_decrypted (qualitative: large)",
        frame_share(tree, "set_memory_decrypted"),
    )
    figure.add_paper_comparison(
        "share of launch in TDX module (__seamcall)",
        frame_share(tree, "tdx_module.__seamcall"),
    )
    return figure
VARIANTS = {"": generate}


def run(config=None):
    """Uniform harness entry point (see :mod:`repro.exec`)."""
    return dispatch(VARIANTS, config, __name__)
