"""Table I: the confidential-computing system setup, as encoded in
:class:`repro.config.SystemConfig` defaults."""

from __future__ import annotations

from .. import units
from ..config import SystemConfig
from .common import FigureResult, dispatch


def generate() -> FigureResult:
    config = SystemConfig.base()
    rows = [
        ("CPU", f"{config.cpu.sockets}x {config.cpu.name} @{config.cpu.freq_ghz}GHz, "
                f"{config.cpu.cores} cores"),
        ("Memory (VM/TD)", f"{config.vm_memory_bytes // units.GiB} GB, "
                           f"{config.vm_cores} cores pinned (NUMA node 0)"),
        ("TME-MK", "auto bypass (TD-private memory only), AES-XTS"),
        ("GPU", config.gpu.name),
        ("GPU HBM", f"{config.gpu.hbm_bytes // units.GiB} GiB @ "
                    f"{config.gpu.hbm_bw / units.GB:.0f} GB/s"),
        ("PCIe", f"Gen{config.pcie.generation} x{config.pcie.lanes}, "
                 f"effective H2D {config.pcie.dma_h2d_bw / units.GB:.0f} GB/s"),
        ("TDX", f"hypercall {units.to_us(config.tdx.hypercall_ns):.1f} us (VM) / "
                f"{units.to_us(config.tdx.td_hypercall_ns):.1f} us (TD)"),
        ("Transfer cipher", config.tdx.transfer_cipher +
         f" ({config.tdx.crypto_threads} thread)"),
        ("Bounce pool", f"{config.tdx.bounce_pool_bytes // units.MiB} MiB swiotlb"),
        ("UVM", f"fault {units.to_us(config.uvm.fault_service_ns):.0f} us, "
                f"chunk {config.uvm.migration_chunk_bytes // units.KiB} KiB "
                f"(CC: {config.uvm.cc_migration_chunk_bytes // units.KiB} KiB)"),
        ("Seed", str(config.seed)),
    ]
    return FigureResult(
        figure_id="table1_config",
        title="Simulated system setup (paper Table I)",
        columns=("component", "configuration"),
        rows=rows,
    )
VARIANTS = {"": generate}


def run(config=None):
    """Uniform harness entry point (see :mod:`repro.exec`)."""
    return dispatch(VARIANTS, config, __name__)
