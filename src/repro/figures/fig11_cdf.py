"""Fig. 11: CDFs of per-launch KLO and per-kernel KET pooled across
the app catalogue, base vs CC.

Follows the paper's display rule: for the launch CDF the top-5 longest
launches are trimmed from the curve, while averages use all points.
"""

from __future__ import annotations

from typing import List, Optional, Sequence

import numpy as np

from .. import units
from ..config import SystemConfig
from ..cuda import run_app
from ..profiler import cdf
from ..workloads import CATALOG, FIG7_APPS
from .common import FigureResult, dispatch

PERCENTILES = (10, 25, 50, 75, 90, 95, 99)
TRIM_TOP_LAUNCHES = 5


def _pool(app_names: Sequence[str], config: SystemConfig):
    klos: List[int] = []
    kets: List[int] = []
    for name in app_names:
        trace, _ = run_app(CATALOG[name].app(False), config, label=name)
        klos.extend(e.duration_ns for e in trace.launches())
        kets.extend(e.duration_ns for e in trace.kernels())
    return klos, kets


def generate(app_names: Optional[Sequence[str]] = None) -> FigureResult:
    app_names = list(app_names) if app_names is not None else FIG7_APPS
    rows = []
    means = {}
    for label, config in (
        ("base", SystemConfig.base()),
        ("cc", SystemConfig.confidential()),
    ):
        klos, kets = _pool(app_names, config)
        for metric, values, trim in (
            ("klo", klos, TRIM_TOP_LAUNCHES),
            ("ket", kets, 0),
        ):
            means[(metric, label)] = float(np.mean(values))
            curve_values, _probs = cdf(values, trim_top=trim)
            for pct in PERCENTILES:
                rows.append(
                    (
                        metric,
                        label,
                        pct,
                        round(units.to_us(float(np.percentile(curve_values, pct))), 3),
                    )
                )
            rows.append(
                (metric, label, "mean(all)", round(units.to_us(means[(metric, label)]), 3))
            )
    figure = FigureResult(
        figure_id="fig11_cdfs",
        title="CDF percentiles of KLO and KET (pooled over apps)",
        columns=("metric", "mode", "percentile", "value_us"),
        rows=rows,
        notes=[
            "Launch curves trim the top-5 longest launches (paper's rule); "
            "means are over all points.",
        ],
    )
    figure.add_paper_comparison(
        "KLO CDF shifts right under CC (mean ratio > 1)",
        means[("klo", "cc")] / means[("klo", "base")],
    )
    figure.add_paper_comparison(
        "KET distribution ~unchanged under CC (mean ratio)",
        means[("ket", "cc")] / means[("ket", "base")],
    )
    return figure
VARIANTS = {"": generate}


def run(config=None):
    """Uniform harness entry point (see :mod:`repro.exec`)."""
    return dispatch(VARIANTS, config, __name__)
