"""Extension experiments beyond the paper's figures.

The paper flags several directions it leaves open; each generator here
runs one of them on the simulator:

* :func:`generate_teeio` — the TEE-IO / TDX-Connect hardware what-if
  (Sec. VI-A: "TEE-IO technology offers a potential solution ...
  however, its adoption requires hardware replacement").
* :func:`generate_crypto_scaling` — multi-threaded/pipelined software
  encryption (Sec. VIII: PipeLLM / FastRack-style optimizations).
* :func:`generate_graph_fusion_cc` — "whether [the optimal fusion
  point] holds in CC mode remains unclear, and we leave it for future
  work" (Sec. VII-A): the Ekelund-style cudaGraph batching sweep run
  under both modes.
* :func:`generate_oversubscription` — UVM oversubscription thrash
  under encrypted paging (the regime behind Fig. 9's extreme point).
* :func:`generate_attestation` — SPDM session establishment and time
  to first kernel (Sec. III's attestation machinery).
"""

from __future__ import annotations

import dataclasses
from typing import Sequence

from .. import units
from ..config import CopyKind, MemoryKind, SystemConfig
from ..cuda import Machine, run_app
from ..cuda.transfers import achieved_bandwidth_gbps, plan_copy
from ..faults import FaultPlan
from ..gpu import nanosleep_kernel
from ..optim import sweep_graph_batches
from ..sim import Simulator
from ..tdx import GuestContext, attest_gpu
from ..workloads import CATALOG
from .common import FigureResult, dispatch


def _bandwidth(config: SystemConfig, size: int = 256 * units.MiB) -> float:
    guest = GuestContext(Simulator(), config)
    plan = plan_copy(config, guest, CopyKind.H2D, size, MemoryKind.PINNED, cold=False)
    return achieved_bandwidth_gbps(plan, size)


def generate_teeio() -> FigureResult:
    """CC transfer and end-to-end cost with and without TEE-IO."""
    base = SystemConfig.base()
    cc = SystemConfig.confidential()
    teeio = cc.replace(tdx=dataclasses.replace(cc.tdx, teeio=True))
    rows = []
    spans = {}
    for label, config in (("base", base), ("cc", cc), ("cc+teeio", teeio)):
        bw = _bandwidth(config)
        trace, _ = run_app(CATALOG["2dconv"].app(False), config, label=label)
        spans[label] = trace.span_ns()
        rows.append((label, round(bw, 2), round(units.to_ms(trace.span_ns()), 3)))
    figure = FigureResult(
        figure_id="ext_teeio",
        title="TEE-IO what-if: pinned H2D bandwidth and 2dconv end-to-end",
        columns=("mode", "h2d_GB_per_s", "2dconv_e2e_ms"),
        rows=rows,
        notes=[
            "TEE-IO removes the bounce buffer and software AES-GCM; the "
            "link pays only the PCIe IDE inline-encryption efficiency tax.",
        ],
    )
    figure.add_paper_comparison(
        "teeio recovers transfer bandwidth (teeio/base, ~0.9+)",
        _bandwidth(teeio) / _bandwidth(base),
    )
    figure.add_paper_comparison(
        # TEE-IO fixes the *transfer* path only; memory management and
        # launch-path hypercalls remain, so roughly a third of the CC
        # slowdown survives even with perfect IO hardware.
        "teeio end-to-end vs cc (fraction of CC slowdown removed)",
        (spans["cc"] - spans["cc+teeio"]) / max(spans["cc"] - spans["base"], 1),
    )
    return figure


def generate_crypto_scaling(
    thread_counts: Sequence[int] = (1, 2, 4, 8),
) -> FigureResult:
    """Multi-threaded encryption: the software fix the paper's
    Sec. VIII discusses (PipeLLM, FastRack)."""
    rows = []
    bws = {}
    for threads in thread_counts:
        config = SystemConfig.confidential()
        config = config.replace(
            tdx=dataclasses.replace(config.tdx, crypto_threads=threads)
        )
        bw = _bandwidth(config)
        bws[threads] = bw
        trace, _ = run_app(CATALOG["2dconv"].app(False), config)
        rows.append((threads, round(bw, 2), round(units.to_ms(trace.span_ns()), 3)))
    base_bw = _bandwidth(SystemConfig.base())
    figure = FigureResult(
        figure_id="ext_crypto_scaling",
        title="CC transfer bandwidth vs encryption worker threads",
        columns=("crypto_threads", "h2d_GB_per_s", "2dconv_e2e_ms"),
        rows=rows,
        notes=[
            "Scaling saturates once AES-GCM stops being the pipeline "
            "bottleneck (DMA and bounce bookkeeping take over).",
        ],
    )
    figure.add_paper_comparison(
        # Even with crypto off the critical path, bounce bookkeeping
        # keeps CC transfers short of native bandwidth.
        "8-thread CC bandwidth / base bandwidth (still < 1)",
        bws[8] / base_bw,
    )
    figure.add_paper_comparison(
        "2-thread speedup over 1 thread", bws[2] / bws[1]
    )
    return figure


def generate_graph_fusion_cc(
    batches: Sequence[int] = (1, 2, 4, 8, 16, 32, 64, 128),
    num_launches: int = 254,
    per_kernel_ns: int = units.us(5),
) -> FigureResult:
    """Does Ekelund et al.'s optimal cudaGraph batching point move
    under CC?  (The paper's explicitly-deferred question.)"""
    rows = []
    optima = {}
    for label, config in (
        ("base", SystemConfig.base()),
        ("cc", SystemConfig.confidential()),
    ):
        times = sweep_graph_batches(
            config, num_launches=num_launches,
            per_kernel_ns=per_kernel_ns, batches=batches,
        )
        optima[label] = min(times, key=times.get)
        for batch in batches:
            rows.append((label, batch, round(units.to_ms(times[batch]), 4)))
    figure = FigureResult(
        figure_id="ext_graph_fusion_cc",
        title=f"cudaGraph batching sweep ({num_launches} x "
              f"{units.to_us(per_kernel_ns):.0f}us kernels)",
        columns=("mode", "graph_batch", "end_to_end_ms"),
        rows=rows,
        notes=[
            f"optimal batch: base={optima['base']}, cc={optima['cc']} — "
            "CC pushes the optimum toward larger graphs (each avoided "
            "launch saves more when launches are hypercall-taxed).",
        ],
    )
    figure.add_paper_comparison(
        "CC optimal batch >= base optimal batch",
        float(optima["cc"] >= optima["base"]),
    )
    return figure


def _oversub_app(rt, working_sets: int, set_bytes: int, rounds: int):
    buffers = []
    for _ in range(working_sets):
        buf = yield from rt.malloc_managed(set_bytes)
        buffers.append(buf)
    kernel = nanosleep_kernel(units.us(30), name="oversub_kernel")
    for _ in range(rounds):
        for buf in buffers:
            yield from rt.launch(kernel, managed_touches=[(buf, set_bytes)])
            yield from rt.synchronize()
    for buf in buffers:
        yield from rt.free(buf)


def generate_oversubscription(
    ratios: Sequence[float] = (0.5, 0.9, 1.2, 1.8),
    set_bytes: int = 8 * units.MiB,
    working_sets: int = 3,
    rounds: int = 2,
) -> FigureResult:
    """Mean UVM kernel time vs oversubscription ratio, base vs CC."""
    rows = []
    kets = {}
    for ratio in ratios:
        budget = int(working_sets * set_bytes / ratio)
        for label, config in (
            ("base", SystemConfig.base()),
            ("cc", SystemConfig.confidential()),
        ):
            config = config.replace(
                uvm=dataclasses.replace(
                    config.uvm, oversubscription_budget_bytes=budget
                )
            )
            trace, _ = run_app(
                _oversub_app, config,
                working_sets=working_sets, set_bytes=set_bytes, rounds=rounds,
            )
            # Steady state: only the final round's kernels (the first
            # round is cold-start migration in every configuration).
            kernels = sorted(trace.kernels(), key=lambda e: e.start_ns)
            steady = kernels[-working_sets:]
            ket = sum(k.duration_ns for k in steady) / len(steady)
            kets[(ratio, label)] = ket
            rows.append((ratio, label, round(units.to_us(ket), 1)))
    figure = FigureResult(
        figure_id="ext_oversubscription",
        title="UVM mean KET vs oversubscription ratio (thrash regime)",
        columns=("oversub_ratio", "mode", "mean_ket_us"),
        rows=rows,
        notes=[
            "Past ratio 1.0 the working sets evict each other every round; "
            "CC encrypted paging amplifies the thrash by another ~30-50x — "
            "the regime that produces the paper's 164030x Fig. 9 extreme.",
        ],
    )
    figure.add_paper_comparison(
        "CC thrash blowup at 1.8x oversubscription (vs in-budget CC)",
        kets[(1.8, "cc")] / kets[(0.5, "cc")],
    )
    figure.add_paper_comparison(
        "base thrash blowup at 1.8x (vs in-budget base)",
        kets[(1.8, "base")] / kets[(0.5, "base")],
    )
    figure.add_paper_comparison(
        "CC/base steady-state ratio while thrashing",
        kets[(1.8, "cc")] / kets[(1.8, "base")],
    )
    return figure


def generate_multigpu(
    gpu_counts: Sequence[int] = (2, 4, 8),
    sizes: Sequence[int] = (16 * units.MiB, 256 * units.MiB, units.GB),
) -> FigureResult:
    """Secure multi-GPU all-reduce: naive vs batched metadata
    management over NVLink-class links (the Sec. VIII scaling
    direction, after Na et al. HPCA'24)."""
    from ..multigpu import LinkSecurity, MultiGPUNode, ring_all_reduce

    rows = []
    bandwidths = {}
    for num_gpus in gpu_counts:
        node = MultiGPUNode(num_gpus=num_gpus)
        for size in sizes:
            for security in LinkSecurity:
                result = ring_all_reduce(node, size, security)
                bandwidths[(num_gpus, size, security)] = (
                    result.algo_bandwidth_gbps
                )
                rows.append(
                    (
                        num_gpus,
                        size // units.MiB,
                        security.value,
                        round(units.to_ms(result.time_ns), 4),
                        round(result.algo_bandwidth_gbps, 1),
                    )
                )
    figure = FigureResult(
        figure_id="ext_multigpu",
        title="Secure multi-GPU ring all-reduce: metadata-policy cost",
        columns=("gpus", "size_MiB", "link_security",
                 "all_reduce_ms", "algo_GB_per_s"),
        rows=rows,
        notes=[
            "Batched metadata management keeps secure collectives within "
            "a few percent of plaintext links; naive per-flit counters "
            "lose ~40 % of bandwidth — the gap the HPCA'24 work closes.",
        ],
    )
    big = units.GB
    figure.add_paper_comparison(
        "batched / plaintext all-reduce bandwidth (8 GPUs, 1 GB)",
        bandwidths[(8, big, LinkSecurity.BATCHED)]
        / bandwidths[(8, big, LinkSecurity.NONE)],
    )
    figure.add_paper_comparison(
        "naive / plaintext all-reduce bandwidth (8 GPUs, 1 GB)",
        bandwidths[(8, big, LinkSecurity.NAIVE)]
        / bandwidths[(8, big, LinkSecurity.NONE)],
    )
    # Hierarchical H100-NVL topology: NVLink islands bridged by PCIe —
    # under CC the cross-island hop pays the main paper's bounce+crypto
    # tax, dominating the collective.
    from ..multigpu import hierarchical_all_reduce

    hier_base = hierarchical_all_reduce(
        SystemConfig.base(), 2, 2, 256 * units.MiB, LinkSecurity.NONE
    )
    hier_cc = hierarchical_all_reduce(
        SystemConfig.confidential(), 2, 2, 256 * units.MiB,
        LinkSecurity.BATCHED,
    )
    figure.rows.append(
        ("2x2-hier", 256, "none", round(units.to_ms(hier_base.time_ns), 4),
         round(hier_base.algo_bandwidth_gbps, 1))
    )
    figure.rows.append(
        ("2x2-hier", 256, "cc-pcie", round(units.to_ms(hier_cc.time_ns), 4),
         round(hier_cc.algo_bandwidth_gbps, 1))
    )
    figure.add_paper_comparison(
        "CC tax on cross-island (hier cc/base, 2x2 NVL pairs)",
        hier_cc.time_ns / hier_base.time_ns,
    )
    return figure


def generate_distributed_training(
    gpu_counts: Sequence[int] = (1, 2, 4, 8),
    model_name: str = "resnet50",
    batch_per_gpu: int = 256,
) -> FigureResult:
    """Data-parallel CC training across GPUs and topologies — the
    composition of the paper's single-GPU findings with multi-GPU
    scaling: gradient sync over the CC PCIe bridge (NVL pairs) inherits
    the full transfer tax every step."""
    from ..dnn import data_parallel_train, get

    model = get(model_name)
    rows = []
    eff = {}
    for topology in ("nvlink", "nvl-pairs"):
        for label, config in (
            ("base", SystemConfig.base()),
            ("cc", SystemConfig.confidential()),
        ):
            for num_gpus in gpu_counts:
                result = data_parallel_train(
                    model, num_gpus, batch_per_gpu, "fp32", config,
                    topology=topology,
                )
                eff[(topology, label, num_gpus)] = result.scaling_efficiency
                rows.append(
                    (
                        topology,
                        label,
                        num_gpus,
                        round(units.to_ms(result.step_time_ns), 2),
                        round(units.to_ms(result.allreduce_ns), 2),
                        round(result.throughput_img_per_sec, 0),
                        round(result.scaling_efficiency, 3),
                    )
                )
    figure = FigureResult(
        figure_id="ext_distributed_training",
        title=f"Data-parallel {model_name} training (batch {batch_per_gpu}/GPU)",
        columns=("topology", "mode", "gpus", "step_ms",
                 "allreduce_ms", "img_per_s", "scaling_eff"),
        rows=rows,
        notes=[
            "On a full NVLink fabric, CC barely dents scaling; on H100 "
            "NVL pairs the gradient all-reduce crosses the CC PCIe "
            "bounce+crypto path and scaling efficiency collapses.",
        ],
    )
    if 4 in gpu_counts:
        figure.add_paper_comparison(
            "CC scaling efficiency, 4 GPUs on NVLink fabric",
            eff[("nvlink", "cc", 4)],
        )
        figure.add_paper_comparison(
            "CC scaling efficiency, 4 GPUs on NVL pairs",
            eff[("nvl-pairs", "cc", 4)],
        )
        figure.add_paper_comparison(
            "base scaling efficiency, 4 GPUs on NVL pairs",
            eff[("nvl-pairs", "base", 4)],
        )
    return figure


def generate_model_load() -> FigureResult:
    """Time to upload Llama-3-8B's weights (16 GB BF16) under each
    transfer regime — the workload PipeLLM (Sec. VIII [19]) targets:
    model load is a giant H2D burst that CC's software crypto turns
    from sub-second into many seconds."""
    from ..llm import LLAMA3_8B

    weight_bytes = LLAMA3_8B.param_bytes(16)
    chunk = 256 * units.MiB
    chunks = units.pages(weight_bytes, chunk)

    def load_time(config: SystemConfig) -> int:
        guest = GuestContext(Simulator(), config)
        total = 0
        for _ in range(chunks):
            plan = plan_copy(
                config, guest, CopyKind.H2D, chunk, MemoryKind.PINNED,
                cold=False,
            )
            total += plan.total_ns
        return total

    cc = SystemConfig.confidential()
    scenarios = [
        ("base", SystemConfig.base()),
        ("cc", cc),
        ("cc+pipelined-4t", cc.replace(
            tdx=dataclasses.replace(cc.tdx, crypto_threads=4))),
        ("cc+teeio", cc.replace(
            tdx=dataclasses.replace(cc.tdx, teeio=True))),
    ]
    rows = []
    times = {}
    for label, config in scenarios:
        t = load_time(config)
        times[label] = t
        rows.append(
            (
                label,
                round(units.to_sec(t), 3),
                round(units.bandwidth_gb_per_sec(weight_bytes, t), 2),
            )
        )
    figure = FigureResult(
        figure_id="ext_model_load",
        title=f"Llama-3-8B weight upload ({weight_bytes / units.GB:.1f} GB)",
        columns=("mode", "load_time_s", "GB_per_s"),
        rows=rows,
        notes=[
            "PipeLLM-style pipelined multi-worker encryption recovers "
            "most of the CC model-load penalty in software; TEE-IO "
            "removes it in hardware.",
        ],
    )
    figure.add_paper_comparison(
        "cc / base model-load time", times["cc"] / times["base"]
    )
    figure.add_paper_comparison(
        "pipelined recovers (cc / cc+pipelined)",
        times["cc"] / times["cc+pipelined-4t"],
    )
    return figure


def generate_sensitivity(
    seeds: Sequence[int] = tuple(range(8)),
    apps: Sequence[str] = ("2mm", "sc"),
) -> FigureResult:
    """Seed sensitivity of the headline ratios.

    The paper notes that for apps with very few launches "potential
    queuing time variations are not stable and can fluctuate"
    (Sec. VI-B on 3mm/atax/bicg/corr); this experiment quantifies that:
    run the same apps across RNG seeds and report the coefficient of
    variation of the CC/base ratios.
    """
    import numpy as np

    from ..core import launch_metrics
    from ..profiler import EventKind

    rows = []
    covs = {}
    for name in apps:
        info = CATALOG[name]
        klo_ratios, copy_ratios = [], []
        for seed in seeds:
            base = SystemConfig.base().replace(seed=seed)
            cc = SystemConfig.confidential().replace(seed=seed)
            tb, _ = run_app(info.app(False), base)
            tc, _ = run_app(info.app(False), cc)
            klo_ratios.append(
                launch_metrics(tc).klo_stats().mean
                / launch_metrics(tb).klo_stats().mean
            )
            copy_ratios.append(
                tc.total_duration_ns(EventKind.MEMCPY)
                / max(tb.total_duration_ns(EventKind.MEMCPY), 1)
            )
        for metric, values in (("klo", klo_ratios), ("copy", copy_ratios)):
            mean = float(np.mean(values))
            std = float(np.std(values))
            cov = std / mean if mean else 0.0
            covs[(name, metric)] = cov
            rows.append(
                (name, metric, len(seeds), round(mean, 3), round(std, 3),
                 round(100 * cov, 2))
            )
    figure = FigureResult(
        figure_id="ext_sensitivity",
        title="Seed sensitivity of CC/base ratios",
        columns=("app", "metric", "seeds", "mean", "std", "cov_pct"),
        rows=rows,
    )
    if "2mm" in apps and "sc" in apps:
        figure.add_paper_comparison(
            "few-launch app (2mm) KLO ratio noisier than launch-storm (sc)",
            float(covs[("2mm", "klo")] > covs[("sc", "klo")]),
        )
    figure.add_paper_comparison(
        "copy ratios are seed-stable (max CoV, %)",
        100 * max(covs[(name, "copy")] for name in apps),
    )
    return figure


def _first_kernel_app(rt):
    kernel = nanosleep_kernel(units.us(20), name="first")
    yield from rt.launch(kernel)
    yield from rt.synchronize()


def generate_attestation() -> FigureResult:
    """SPDM session establishment and time-to-first-kernel."""
    rows = []
    session_ns = {}
    for label, config in (
        ("base", SystemConfig.base()),
        ("cc", SystemConfig.confidential()),
    ):
        sim = Simulator()
        guest = GuestContext(sim, config)
        process = sim.process(attest_gpu(sim, guest, config))
        session = sim.run(until=process)
        session_ns[label] = session.elapsed_ns
        trace, _ = run_app(_first_kernel_app, config)
        first_kernel = trace.kernels()[0].end_ns
        rows.append(
            (
                label,
                session.messages,
                round(units.to_ms(session.elapsed_ns), 4),
                round(units.to_us(first_kernel), 1),
                round(units.to_ms(session.elapsed_ns + first_kernel), 4),
            )
        )
    figure = FigureResult(
        figure_id="ext_attestation",
        title="SPDM attestation cost and time to first kernel",
        columns=("mode", "spdm_messages", "spdm_ms",
                 "first_kernel_us", "total_ms"),
        rows=rows,
        notes=[
            "The SPDM flow (GET_VERSION..FINISH) runs once at CC bring-up; "
            "in a TD every doorbell is hypercall-mediated, so session "
            "establishment itself is slower too.",
        ],
    )
    figure.add_paper_comparison(
        "TD attestation / VM attestation time",
        session_ns["cc"] / session_ns["base"],
    )
    return figure


def generate_fault_recovery(
    rates: Sequence[float] = (0.0, 0.01, 0.02, 0.05, 0.1),
    app_name: str = "srad",
) -> FigureResult:
    """End-to-end CC overhead vs injected fault rate (repro.faults).

    Sweeps a uniform per-occurrence fault rate over every injection
    site and reports how much of the run turns into recovery time
    (wasted attempts, backoff, degraded staging).  The rate-0 row
    doubles as the zero-overhead regression: it must match a run with
    no fault plan exactly.
    """
    info = CATALOG[app_name]
    baseline_trace, _ = run_app(
        info.app(False), SystemConfig.confidential(), label="no-plan"
    )
    baseline_span = baseline_trace.span_ns()
    rows = []
    spans = {}
    recovery = {}
    for rate in rates:
        config = SystemConfig.confidential().replace(
            faults=FaultPlan.uniform(rate)
        )
        machine = Machine(config, label=f"fault-rate-{rate}")
        machine.run(info.app(False))
        trace = machine.trace
        span = trace.span_ns()
        spans[rate] = span
        recovery[rate] = trace.recovery_ns()
        rows.append(
            (
                rate,
                machine.guest.faults.total_injected,
                sum(machine.guest.faults.retries.values()),
                round(units.to_ms(recovery[rate]), 3),
                round(100.0 * recovery[rate] / span, 2) if span else 0.0,
                round(units.to_ms(span), 3),
                round(span / baseline_span, 4),
            )
        )
    top = max(rates)
    figure = FigureResult(
        figure_id="ext_fault_recovery",
        title=f"CC overhead vs injected fault rate ({app_name})",
        columns=("fault_rate", "injected", "retried", "recovery_ms",
                 "recovery_pct", "e2e_ms", "slowdown_vs_no_faults"),
        rows=rows,
        notes=[
            "Uniform per-occurrence rate at all sites (GCM tag, DMA, "
            "hypercall, bounce pool, SPDM); transient faults are retried "
            "with exponential backoff and booked as 'recovery' time.",
            "The rate-0 row is the zero-overhead guarantee: an empty "
            "plan performs no RNG draws, so the trace is byte-identical "
            "to a run without the fault layer.",
        ],
    )
    figure.add_paper_comparison(
        "rate-0 span / no-plan span (zero-overhead guarantee)",
        spans[rates[0]] / baseline_span,
    )
    figure.add_paper_comparison(
        f"slowdown at rate {top} (recovery visible end to end, > 1)",
        spans[top] / baseline_span,
        default=1.0,
    )
    return figure


EXPERIMENTS = ("teeio", "crypto_scaling", "graph_fusion_cc",
               "oversubscription", "attestation", "multigpu",
               "model_load", "sensitivity", "distributed_training",
               "fault_recovery")

VARIANTS = {name: globals()[f"generate_{name}"] for name in EXPERIMENTS}


def run(config=None):
    """Uniform harness entry point (see :mod:`repro.exec`)."""
    return dispatch(VARIANTS, config, __name__)
