"""Fig. 14: vLLM throughput speedup over the HF BF16 CC-off baseline
for Llama-3-8B, across quantization (BF16/AWQ), CC mode, and batch
size 1-128.
"""

from __future__ import annotations

from typing import Optional, Sequence

from ..config import SystemConfig
from ..llm import AWQ, BF16, HFBackend, VLLMBackend, make_requests
from .common import FigureResult, dispatch

DEFAULT_BATCHES = (1, 2, 4, 8, 16, 32, 64, 128)


def generate(batch_sizes: Optional[Sequence[int]] = None) -> FigureResult:
    batch_sizes = (
        list(batch_sizes) if batch_sizes is not None else list(DEFAULT_BATCHES)
    )
    base = SystemConfig.base()
    cc = SystemConfig.confidential()
    rows = []
    cells = {}
    for batch in batch_sizes:
        requests = make_requests(max(3 * batch, 8), seed=11)
        hf_baseline = HFBackend(quant=BF16).serve(base, requests, batch)
        for quant in (BF16, AWQ):
            for mode_label, config in (("cc-off", base), ("cc-on", cc)):
                result = VLLMBackend(quant=quant).serve(config, requests, batch)
                speedup = result.tokens_per_sec / hf_baseline.tokens_per_sec
                cells[(batch, quant.name, mode_label)] = speedup
                rows.append(
                    (
                        batch,
                        quant.name,
                        mode_label,
                        round(result.tokens_per_sec, 1),
                        round(speedup, 3),
                    )
                )
        # Also report HF under CC (the paper's full grid).
        hf_cc = HFBackend(quant=BF16).serve(cc, requests, batch)
        rows.append(
            (
                batch,
                "bf16-hf",
                "cc-on",
                round(hf_cc.tokens_per_sec, 1),
                round(hf_cc.tokens_per_sec / hf_baseline.tokens_per_sec, 3),
            )
        )
    figure = FigureResult(
        figure_id="fig14_llm",
        title="vLLM speedup over HF BF16 CC-off baseline (Llama-3-8B)",
        columns=("batch", "quant", "mode", "tokens_per_s", "speedup_vs_hf"),
        rows=rows,
    )
    vllm_cells = [v for k, v in cells.items()]
    figure.add_paper_comparison(
        "all vLLM speedups > 1 (fraction)",
        sum(1 for v in vllm_cells if v > 1.0) / len(vllm_cells),
    )
    small = [b for b in batch_sizes if b <= 32]
    large = [b for b in batch_sizes if b >= 64]
    awq_wins_small = all(
        cells[(b, "awq", "cc-off")] > cells[(b, "bf16", "cc-off")] for b in small
    )
    bf16_wins_large = all(
        cells[(b, "bf16", "cc-off")] >= cells[(b, "awq", "cc-off")] for b in large
    )
    figure.add_paper_comparison("AWQ > BF16 at batch <= 32", float(awq_wins_small))
    figure.add_paper_comparison(
        "BF16 >= AWQ at batch 64/128", float(bf16_wins_large)
    )
    cc_below_off = sum(
        1
        for b in batch_sizes
        for q in ("bf16", "awq")
        if cells[(b, q, "cc-on")] <= cells[(b, q, "cc-off")]
    ) / (2 * len(batch_sizes))
    figure.add_paper_comparison("CC-on <= CC-off (fraction of cells)", cc_below_off)
    return figure
VARIANTS = {"": generate}


def run(config=None):
    """Uniform harness entry point (see :mod:`repro.exec`)."""
    return dispatch(VARIANTS, config, __name__)
