"""Extension: request-level serving telemetry self-verification.

Runs one serving scenario (base and CC) with request-scoped telemetry
(:mod:`repro.serve.telemetry`) and gates the layer's three standing
guarantees as exact predicates:

* **zero perturbation** — the verdict JSON with telemetry enabled is
  byte-identical to the telemetry-off run, per mode;
* **conservation** — every request's Sec.-V component breakdown
  (queue/T/E/L/Q/K/D/recovery/other) sums to its end-to-end latency
  exactly (integer ns), and its TTFT-window breakdown to TTFT;
* **consistency** — the tail-forensics report reproduces the verdict's
  global TTFT/TPOT/E2E percentiles from the per-request records, and
  the base-vs-CC forensics diff attributes the TTFT p99 delta to
  component deltas that sum to it exactly.

The per-mode rows double as a blame summary: where the wall-clock of a
served request actually goes under CC vs base.
"""

from __future__ import annotations

from .. import units
from ..config import SystemConfig
from ..serve import (
    ATTRIBUTION_COMPONENTS,
    ScenarioSpec,
    forensics_diff,
    latency_percentiles,
    run_scenario,
    tail_report,
    verdict_json,
)
from .common import FigureResult, dispatch

RATE_RPS = 8.0
DURATION_S = 2.0
SEED = 42

_PCT_KEYS = ("p50", "p95", "p99")
_PCT_METRICS = ("ttft_ms", "tpot_ms", "e2e_ms")


def generate_serve_telemetry(
    rate_rps: float = RATE_RPS,
    duration_s: float = DURATION_S,
    seed: int = SEED,
) -> FigureResult:
    """Telemetry invariants as exact predicates, base vs CC."""
    spec = ScenarioSpec(
        rate_rps=float(rate_rps),
        duration_ns=int(duration_s * units.NS_PER_SEC),
        seed=seed,
    )
    modes = (
        ("base", SystemConfig.base()),
        ("cc", SystemConfig.confidential()),
    )

    rows = []
    verdict_identical = []
    conserved = []
    percentile_matches = []
    attributions = {}
    for mode, config in modes:
        _, plain = run_scenario(spec, config, telemetry=False)
        _, result = run_scenario(spec, config, telemetry=True)
        verdict_identical.append(
            verdict_json(plain) == verdict_json(result)
        )
        atts = result.attributions
        attributions[mode] = atts
        for attribution in atts:
            ok = (
                sum(attribution.components.values()) == attribution.e2e_ns
            )
            if attribution.ttft_ns is not None:
                ok = ok and (
                    sum(attribution.ttft_components.values())
                    == attribution.ttft_ns
                )
            conserved.append(ok)
        recomputed = latency_percentiles(atts)
        for metric in _PCT_METRICS:
            for key in _PCT_KEYS:
                percentile_matches.append(
                    recomputed[metric][key] == result.report[metric][key]
                )
        report = tail_report(atts, top=1)
        sums = report["components_ns"]
        rows.append(
            (
                mode,
                len(atts),
                report["completed"],
                round(result.report["ttft_ms"]["p99"], 3),
            ) + tuple(
                round(units.to_ms(sums[c]), 3)
                for c in ATTRIBUTION_COMPONENTS
            )
        )

    diff = forensics_diff(attributions["base"], attributions["cc"])
    delta_attributed = (
        sum(diff["components_delta_ns"].values()) == diff["delta_ns"]
    )

    figure = FigureResult(
        figure_id="ext_serve_telemetry",
        title="Request-level telemetry: exact CC-tax attribution",
        columns=("mode", "requests", "completed", "ttft_p99_ms") + tuple(
            f"{c}_ms" for c in ATTRIBUTION_COMPONENTS
        ),
        rows=rows,
        notes=[
            "One scenario (%g rps x %gs, seed %d) per mode; component "
            "columns are run-wide sums of per-request blame." % (
                rate_rps, duration_s, seed),
            "TTFT p99 moved %+0.3f ms base->cc; dominant component: %s."
            % (units.to_ms(diff["delta_ns"]), diff["dominant"]),
        ],
    )
    figure.add_paper_comparison(
        "telemetry-on verdict byte-identical to off (fraction of modes)",
        sum(verdict_identical) / len(verdict_identical),
    )
    figure.add_paper_comparison(
        "per-request breakdown sums exactly to E2E/TTFT (fraction)",
        sum(conserved) / len(conserved),
    )
    figure.add_paper_comparison(
        "forensics percentiles equal the verdict report (fraction)",
        sum(percentile_matches) / len(percentile_matches),
    )
    figure.add_paper_comparison(
        "TTFT p99 delta fully attributed to components (fraction)",
        1.0 if delta_attributed else 0.0,
    )
    return figure


VARIANTS = {"": generate_serve_telemetry,
            "serve_telemetry": generate_serve_telemetry}


def run(config=None):
    """Uniform harness entry point (see :mod:`repro.exec`)."""
    return dispatch(VARIANTS, config, __name__)
