"""Figure reproduction: one generator per paper table/figure.

Each module exposes ``generate(...) -> FigureResult``; benches render
the text tables and tee JSON into ``results/``.
"""

from .common import FigureResult, default_results_dir
from . import (
    ext_cluster_serving,
    ext_fault_serving,
    ext_recovered_serving,
    ext_serve_telemetry,
    ext_serving,
    extensions,
    fig01_overview,
    fig03_model,
    fig04_bandwidth,
    fig05_copytime,
    fig06_alloc,
    fig07_launch,
    fig08_flamegraph,
    fig09_ket,
    fig10_events,
    fig11_cdf,
    fig12_micro,
    fig13_cnn,
    fig14_llm,
    observations,
    table1_config,
)

__all__ = [
    "FigureResult",
    "default_results_dir",
    "ext_cluster_serving",
    "ext_fault_serving",
    "ext_recovered_serving",
    "ext_serve_telemetry",
    "ext_serving",
    "extensions",
    "fig01_overview",
    "fig03_model",
    "fig04_bandwidth",
    "fig05_copytime",
    "fig06_alloc",
    "fig07_launch",
    "fig08_flamegraph",
    "fig09_ket",
    "fig10_events",
    "fig11_cdf",
    "fig12_micro",
    "fig13_cnn",
    "fig14_llm",
    "observations",
    "table1_config",
]
