"""Fig. 10: distribution of Kernel and Launch events over each
application's lifetime for four representative apps (A: high-KLR graph
app, B: diverse-KET BFS, C: streamcluster, D: 3dconv).

The paper plots one dot per event (start vs duration); we emit a
binned timeline per app/mode plus the KLR summary that drives
Observation 6, and include a capped per-event sample for plotting.
"""

from __future__ import annotations

from typing import Dict, Optional

import numpy as np

from .. import units
from ..config import SystemConfig
from ..core import kernel_to_launch_ratio
from ..cuda import run_app
from ..workloads import CATALOG, FIG10_APPS
from .common import FigureResult, dispatch

SAMPLE_EVENTS_PER_TRACE = 40
TIMELINE_BINS = 10


def generate(apps: Optional[Dict[str, str]] = None) -> FigureResult:
    apps = dict(apps) if apps is not None else dict(FIG10_APPS)
    rows = []
    klrs = {}
    for panel, name in apps.items():
        info = CATALOG[name]
        for label, config in (
            ("base", SystemConfig.base()),
            ("cc", SystemConfig.confidential()),
        ):
            trace, _ = run_app(info.app(False), config, label=name)
            klr = kernel_to_launch_ratio(trace)
            if label == "base":
                klrs[panel] = klr
            span = max(trace.span_ns(), 1)
            for kind, events in (
                ("launch", trace.launches()),
                ("kernel", trace.kernels()),
            ):
                durations = [e.duration_ns for e in events]
                starts = [e.start_ns for e in events]
                histogram = np.histogram(
                    starts, bins=TIMELINE_BINS, range=(0, span)
                )[0]
                rows.append(
                    (
                        panel,
                        name,
                        label,
                        kind,
                        len(events),
                        round(units.to_us(float(np.mean(durations))), 2),
                        round(units.to_us(float(np.max(durations))), 2),
                        round(klr, 2),
                        "|".join(str(int(v)) for v in histogram),
                    )
                )
    figure = FigureResult(
        figure_id="fig10_event_timeline",
        title="Kernel/Launch event distribution over app lifetime",
        columns=(
            "panel", "app", "mode", "event", "count",
            "mean_dur_us", "max_dur_us", "klr_base", "start_histogram",
        ),
        rows=rows,
        notes=[
            "Panels A/B are high-KLR (long kernels hide launches); "
            "C (sc) and D (3dconv) are low-KLR, launch-dominated (Obs. 6).",
        ],
    )
    if "A" in klrs and "C" in klrs:
        figure.add_paper_comparison(
            "KLR panel A >> panel C", float(klrs["A"] > 5 * klrs["C"])
        )
    if "B" in klrs and "D" in klrs:
        figure.add_paper_comparison(
            "KLR panel B > panel D", float(klrs["B"] > klrs["D"])
        )
    return figure
VARIANTS = {"": generate}


def run(config=None):
    """Uniform harness entry point (see :mod:`repro.exec`)."""
    return dispatch(VARIANTS, config, __name__)
