"""Fault plans: *what* fails, *where*, and the platform cost model of
failure — all frozen dataclasses so they compose into
:class:`repro.config.SystemConfig` and keep runs reproducible.

A :class:`FaultPlan` maps named injection sites to a
:class:`SiteFaults` spec.  Sites are string constants so external JSON
plans stay readable::

    {
      "sites": {
        "crypto.gcm_tag":  {"rate": 0.01},
        "tdx.hypercall":   {"rate": 0.002, "max_faults": 4},
        "spdm.attest":     {"schedule": [0]}
      }
    }

``rate`` is the per-occurrence probability of injection (drawn from a
per-site RNG substream seeded by ``SystemConfig.seed``), ``schedule``
lists explicit zero-based occurrence indices that must fail (useful
for regression tests), and ``max_faults`` caps total injections at the
site.  The default plan is empty: with no active site the injector
never touches an RNG, guaranteeing zero overhead and bit-identical
traces versus a build without the fault layer.
"""

from __future__ import annotations

import dataclasses
import json
from dataclasses import dataclass
from typing import Dict, Iterable, Mapping, Optional, Tuple

from .. import units


# -- injection-site names ----------------------------------------------------

GCM_TAG = "crypto.gcm_tag"  # AES-GCM tag mismatch on a staged copy
DMA = "gpu.dma"  # transient PCIe/DMA transaction error
HYPERCALL = "tdx.hypercall"  # hypercall/seamcall timeout
BOUNCE_POOL = "tdx.bounce_pool"  # swiotlb bounce-pool exhaustion
SPDM = "spdm.attest"  # SPDM attestation message corruption
LINK = "link.transfer"  # secure peer-link MAC failure mid-collective

ALL_SITES: Tuple[str, ...] = (GCM_TAG, DMA, HYPERCALL, BOUNCE_POOL, SPDM, LINK)


@dataclass(frozen=True)
class SiteFaults:
    """Fault behaviour of one injection site."""

    rate: float = 0.0
    schedule: Tuple[int, ...] = ()
    max_faults: Optional[int] = None

    @property
    def active(self) -> bool:
        return self.rate > 0.0 or bool(self.schedule)

    def validate(self, site: str) -> None:
        if not 0.0 <= self.rate <= 1.0:
            raise ValueError(f"{site}: fault rate must be in [0, 1]")
        if any((not isinstance(i, int)) or i < 0 for i in self.schedule):
            raise ValueError(f"{site}: schedule indices must be ints >= 0")
        if self.max_faults is not None and self.max_faults < 0:
            raise ValueError(f"{site}: max_faults must be >= 0")


@dataclass(frozen=True)
class FaultPlan:
    """Deterministic description of which sites fail and how often.

    Stored as a sorted tuple of (site, spec) pairs so the plan is
    hashable, order-independent, and safely shareable between frozen
    configs.
    """

    sites: Tuple[Tuple[str, SiteFaults], ...] = ()

    @staticmethod
    def none() -> "FaultPlan":
        """The empty plan: no injection, zero overhead."""
        return FaultPlan()

    @staticmethod
    def uniform(
        rate: float,
        sites: Iterable[str] = ALL_SITES,
        max_faults: Optional[int] = None,
    ) -> "FaultPlan":
        """Same per-occurrence rate at every named site."""
        return FaultPlan.from_mapping(
            {site: SiteFaults(rate=rate, max_faults=max_faults) for site in sites}
        )

    @staticmethod
    def from_mapping(mapping: Mapping[str, SiteFaults]) -> "FaultPlan":
        return FaultPlan(sites=tuple(sorted(mapping.items())))

    # -- queries ---------------------------------------------------------

    def spec_for(self, site: str) -> Optional[SiteFaults]:
        for name, spec in self.sites:
            if name == site:
                return spec
        return None

    @property
    def active(self) -> bool:
        return any(spec.active for _name, spec in self.sites)

    def validate(self) -> None:
        seen = set()
        for name, spec in self.sites:
            if name in seen:
                raise ValueError(f"duplicate fault site {name!r}")
            seen.add(name)
            if name not in ALL_SITES:
                raise ValueError(
                    f"unknown fault site {name!r}; known: {sorted(ALL_SITES)}"
                )
            spec.validate(name)

    # -- (de)serialization ------------------------------------------------

    def to_json(self) -> str:
        payload: Dict[str, Dict] = {}
        for name, spec in self.sites:
            entry: Dict = {}
            if spec.rate:
                entry["rate"] = spec.rate
            if spec.schedule:
                entry["schedule"] = list(spec.schedule)
            if spec.max_faults is not None:
                entry["max_faults"] = spec.max_faults
            payload[name] = entry
        return json.dumps({"sites": payload}, indent=1)

    @staticmethod
    def from_json(text: str) -> "FaultPlan":
        try:
            payload = json.loads(text)
        except json.JSONDecodeError as exc:
            raise ValueError(f"invalid fault-plan JSON: {exc}") from exc
        if not isinstance(payload, dict) or not isinstance(
            payload.get("sites", {}), dict
        ):
            raise ValueError("fault plan must be an object with a 'sites' map")
        mapping: Dict[str, SiteFaults] = {}
        for name, entry in payload.get("sites", {}).items():
            if not isinstance(entry, dict):
                raise ValueError(f"site {name!r}: spec must be an object")
            mapping[name] = SiteFaults(
                rate=float(entry.get("rate", 0.0)),
                schedule=tuple(int(i) for i in entry.get("schedule", ())),
                max_faults=entry.get("max_faults"),
            )
        plan = FaultPlan.from_mapping(mapping)
        plan.validate()
        return plan

    @staticmethod
    def load(path: str) -> "FaultPlan":
        with open(path) as handle:
            return FaultPlan.from_json(handle.read())

    def replace_site(self, site: str, spec: SiteFaults) -> "FaultPlan":
        mapping = dict(self.sites)
        mapping[site] = spec
        return FaultPlan.from_mapping(mapping)


@dataclass(frozen=True)
class FaultModelSpec:
    """Platform cost model of failure and recovery (what a fault *costs*,
    as opposed to the :class:`FaultPlan`, which says what *fails*)."""

    # Guest-side watchdog budget before a hypercall round trip is
    # declared timed out and reissued.
    hypercall_timeout_ns: int = units.us(45.0)
    # A DMA error aborts the transaction partway through; this fraction
    # of the transfer is wasted before the completion error surfaces.
    dma_error_detect_fraction: float = 0.5
    # PCIe link recovery / descriptor requeue before the retry starts.
    dma_retrain_ns: int = units.us(12.0)
    # AES-GCM authenticates at end-of-message, so a tag mismatch wastes
    # this fraction of the transfer before re-staging (1.0 = the whole
    # copy must be encrypted and DMAed again).
    gcm_refetch_fraction: float = 1.0
    # Degraded staging-chunk size once the bounce pool is exhausted.
    bounce_degraded_chunk_bytes: int = 256 * units.KiB
    # Teardown + session-state reset before an SPDM re-attestation.
    spdm_restart_ns: int = units.us(120.0)

    def validate(self) -> None:
        problems = []
        if not 0.0 < self.dma_error_detect_fraction <= 1.0:
            problems.append("dma_error_detect_fraction must be in (0, 1]")
        if not 0.0 < self.gcm_refetch_fraction <= 1.0:
            problems.append("gcm_refetch_fraction must be in (0, 1]")
        for name in (
            "hypercall_timeout_ns",
            "dma_retrain_ns",
            "bounce_degraded_chunk_bytes",
            "spdm_restart_ns",
        ):
            if getattr(self, name) <= 0:
                problems.append(f"{name} must be positive")
        if problems:
            raise ValueError("invalid FaultModelSpec: " + "; ".join(problems))

    def replace(self, **changes) -> "FaultModelSpec":
        return dataclasses.replace(self, **changes)
