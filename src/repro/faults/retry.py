"""Retry policy: how the runtime reacts to transient faults.

One policy governs every recovery loop in the stack (hypercall
reissue, copy re-staging, SPDM re-attestation): up to ``max_attempts``
tries with exponential backoff *in simulated time*, so recovery cost
is attributed on the timeline like any other activity.
"""

from __future__ import annotations

from dataclasses import dataclass

from .. import units


@dataclass(frozen=True)
class RetryPolicy:
    """Bounded exponential backoff, in simulated nanoseconds."""

    max_attempts: int = 4
    backoff_base_ns: int = units.us(50.0)
    backoff_factor: float = 2.0
    backoff_cap_ns: int = units.ms(2.0)

    def __post_init__(self) -> None:
        # Fail at construction time: a policy built from CLI flags or
        # dataclasses.replace must not survive long enough to blow up
        # deep inside a recovery loop (e.g. backoff_factor=0.5 turning
        # exponential backoff into exponential *decay*).
        self.validate()

    def backoff_ns(self, attempt: int) -> int:
        """Backoff before retry number ``attempt`` (1-based)."""
        if attempt < 1:
            raise ValueError("attempt numbering starts at 1")
        raw = self.backoff_base_ns * (self.backoff_factor ** (attempt - 1))
        return int(min(raw, self.backoff_cap_ns))

    def validate(self) -> None:
        problems = []
        if self.max_attempts < 1:
            problems.append("max_attempts must be >= 1")
        if self.backoff_base_ns < 0 or self.backoff_cap_ns < 0:
            problems.append("backoff durations must be non-negative")
        if self.backoff_factor < 1.0:
            problems.append("backoff_factor must be >= 1")
        if problems:
            raise ValueError("invalid RetryPolicy: " + "; ".join(problems))
