"""Retry policy: how the runtime reacts to transient faults.

One policy governs every recovery loop in the stack (hypercall
reissue, copy re-staging, SPDM re-attestation): up to ``max_attempts``
tries with exponential backoff *in simulated time*, so recovery cost
is attributed on the timeline like any other activity.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

from .. import units


@dataclass(frozen=True)
class RetryPolicy:
    """Bounded exponential backoff, in simulated nanoseconds."""

    max_attempts: int = 4
    backoff_base_ns: int = units.us(50.0)
    backoff_factor: float = 2.0
    backoff_cap_ns: int = units.ms(2.0)

    def __post_init__(self) -> None:
        # Fail at construction time: a policy built from CLI flags or
        # dataclasses.replace must not survive long enough to blow up
        # deep inside a recovery loop (e.g. backoff_factor=0.5 turning
        # exponential backoff into exponential *decay*).
        self.validate()

    def backoff_ns(self, attempt: int) -> int:
        """Backoff before retry number ``attempt`` (1-based).

        The exponent is clamped *before* the multiplication: once
        ``base * factor**k`` can only land at or above the cap, the cap
        is returned directly.  Without the clamp a large ``attempt``
        (chaos tests drive thousands) materializes astronomically large
        floats — ``2.0 ** 1024`` even raises OverflowError — inside
        sim-time arithmetic that only ever needs the capped value.
        """
        if attempt < 1:
            raise ValueError("attempt numbering starts at 1")
        if self.backoff_base_ns == 0:
            return 0
        if self.backoff_base_ns >= self.backoff_cap_ns:
            return self.backoff_cap_ns
        exponent = attempt - 1
        if self.backoff_factor > 1.0 and exponent > 0:
            # Smallest exponent that already reaches the cap.
            saturation = math.ceil(
                math.log(self.backoff_cap_ns / self.backoff_base_ns)
                / math.log(self.backoff_factor)
            )
            exponent = min(exponent, max(saturation, 0))
        raw = self.backoff_base_ns * (self.backoff_factor ** exponent)
        return int(min(raw, self.backoff_cap_ns))

    def validate(self) -> None:
        problems = []
        if self.max_attempts < 1:
            problems.append("max_attempts must be >= 1")
        if self.backoff_base_ns < 0 or self.backoff_cap_ns < 0:
            problems.append("backoff durations must be non-negative")
        if self.backoff_factor < 1.0:
            problems.append("backoff_factor must be >= 1")
        if problems:
            raise ValueError("invalid RetryPolicy: " + "; ".join(problems))
