"""Deterministic fault-injection and recovery layer for the CC stack.

The paper dissects steady-state overheads; this subsystem adds the
*recovery* dimension a production confidential stack also pays:
AES-GCM tag failures forcing re-transfers, transient DMA/PCIe and
hypercall errors forcing retries, bounce-pool exhaustion forcing
chunked-staging degradation, and SPDM attestation failures forcing
re-attestation.  Injection is seeded and deterministic (driven by
``SystemConfig.seed``); every injected fault and retry is timed on the
simulated clock and emitted as a ``recovery`` trace event so the
Fig.-1 style breakdown gains a recovery-overhead component.
"""

from .errors import (
    AttestationFault,
    BounceExhaustedFault,
    DmaFault,
    FatalFault,
    FaultError,
    GcmTagFault,
    HypercallTimeoutFault,
    LinkFault,
    TransientFault,
)
from .injector import FaultInjector, FaultRecord
from .plan import (
    ALL_SITES,
    BOUNCE_POOL,
    DMA,
    GCM_TAG,
    HYPERCALL,
    LINK,
    SPDM,
    FaultModelSpec,
    FaultPlan,
    SiteFaults,
)
from .retry import RetryPolicy

__all__ = [
    "ALL_SITES",
    "AttestationFault",
    "BOUNCE_POOL",
    "BounceExhaustedFault",
    "DMA",
    "DmaFault",
    "FatalFault",
    "FaultError",
    "FaultInjector",
    "FaultModelSpec",
    "FaultPlan",
    "FaultRecord",
    "GCM_TAG",
    "GcmTagFault",
    "HYPERCALL",
    "HypercallTimeoutFault",
    "LINK",
    "LinkFault",
    "RetryPolicy",
    "SPDM",
    "SiteFaults",
    "TransientFault",
]
