"""Error taxonomy of the fault-injection and recovery layer.

Two tiers, mirroring how a production confidential stack reacts:

* :class:`TransientFault` — recoverable by the runtime (re-transfer on
  an AES-GCM tag mismatch, retry a timed-out hypercall, re-attest
  after an SPDM failure).  Applications never see these unless the
  retry budget is exhausted.
* :class:`FatalFault` — a transient fault that survived every retry
  (or a genuinely unrecoverable condition).  Surfaces to application
  code as a typed exception; the runtime guarantees all simulator
  resources (bounce slots, engines, launch credits) are released
  before it propagates.
"""

from __future__ import annotations

from typing import Optional


class FaultError(RuntimeError):
    """Base class of every injected-fault exception."""


class TransientFault(FaultError):
    """A recoverable fault injected at a named site.

    ``site`` is the injection-site name (see :mod:`repro.faults.plan`)
    and ``occurrence`` the zero-based index of the site visit that
    failed — together they identify the injection deterministically.
    """

    def __init__(self, site: str, occurrence: int, detail: str = "") -> None:
        message = f"transient fault at {site} (occurrence {occurrence})"
        if detail:
            message += f": {detail}"
        super().__init__(message)
        self.site = site
        self.occurrence = occurrence


class GcmTagFault(TransientFault):
    """AES-GCM authentication-tag verification failed on a staged copy."""


class DmaFault(TransientFault):
    """Transient DMA/PCIe error (link retrain, aborted transaction)."""


class HypercallTimeoutFault(TransientFault):
    """A hypercall/seamcall round trip timed out."""


class BounceExhaustedFault(TransientFault):
    """The swiotlb bounce-buffer pool could not satisfy a staging
    request; the runtime degrades to chunked staging."""


class AttestationFault(TransientFault):
    """SPDM message corruption detected during GPU attestation."""


class LinkFault(TransientFault):
    """Secure inter-GPU link transfer failed MAC verification or the
    link dropped mid-collective and must retrain before the retry."""


class FatalFault(FaultError):
    """A fault that exhausted its retry budget.

    Carries the final :class:`TransientFault` as ``__cause__`` (and
    ``last_fault``) so callers can inspect the originating site.
    """

    def __init__(
        self,
        site: str,
        attempts: int,
        last_fault: Optional[TransientFault] = None,
    ) -> None:
        super().__init__(
            f"fault at {site} not recovered after {attempts} attempt(s)"
        )
        self.site = site
        self.attempts = attempts
        self.last_fault = last_fault
