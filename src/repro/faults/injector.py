"""Seeded, deterministic fault injector.

One :class:`FaultInjector` lives on each :class:`~repro.tdx.GuestContext`
and is consulted at every named injection site.  Determinism rules:

* Each site draws from its **own** RNG substream, seeded by
  ``(SystemConfig.seed, crc32(site))`` — so adding draws at one site
  never perturbs another, and two runs with the same config produce
  byte-identical fault schedules regardless of call interleaving.
* The injector never touches the guest's jitter RNG, and when a site
  has no active spec it performs **no draw at all** — an empty plan is
  exactly a no-op (the zero-overhead guarantee).
"""

from __future__ import annotations

import zlib
from dataclasses import dataclass
from typing import Dict, List, Optional, TYPE_CHECKING

import numpy as np

from .errors import (
    AttestationFault,
    BounceExhaustedFault,
    DmaFault,
    GcmTagFault,
    HypercallTimeoutFault,
    LinkFault,
    TransientFault,
)
from .plan import (
    ALL_SITES,
    BOUNCE_POOL,
    DMA,
    GCM_TAG,
    HYPERCALL,
    LINK,
    SPDM,
    FaultPlan,
)

if TYPE_CHECKING:  # pragma: no cover - typing only
    from ..sim import Simulator

_FAULT_CLASSES = {
    GCM_TAG: GcmTagFault,
    DMA: DmaFault,
    HYPERCALL: HypercallTimeoutFault,
    BOUNCE_POOL: BounceExhaustedFault,
    SPDM: AttestationFault,
    LINK: LinkFault,
}


@dataclass(frozen=True)
class FaultRecord:
    """One injected fault, for post-run reporting."""

    site: str
    occurrence: int
    time_ns: int


class FaultInjector:
    """Per-guest deterministic fault source and recovery ledger."""

    def __init__(
        self,
        plan: Optional[FaultPlan] = None,
        seed: int = 0,
        sim: Optional["Simulator"] = None,
    ) -> None:
        self.plan = plan if plan is not None else FaultPlan.none()
        self.seed = seed
        self.sim = sim
        self._rngs: Dict[str, np.random.Generator] = {}
        self.occurrences: Dict[str, int] = {}
        self.injected: Dict[str, int] = {}
        self.retries: Dict[str, int] = {}
        self.recovery_ns: Dict[str, int] = {}
        self.fatal: Dict[str, int] = {}
        self.records: List[FaultRecord] = []

    # -- drawing ---------------------------------------------------------

    def _rng(self, site: str) -> np.random.Generator:
        rng = self._rngs.get(site)
        if rng is None:
            rng = np.random.default_rng([self.seed, zlib.crc32(site.encode())])
            self._rngs[site] = rng
        return rng

    def draw(self, site: str) -> Optional[TransientFault]:
        """Consult the plan for one site visit; returns a fault or None.

        Counts the occurrence and draws from the site's RNG substream
        only when the site has an active spec — an inactive site costs
        nothing and leaves every RNG untouched.
        """
        spec = self.plan.spec_for(site)
        if spec is None or not spec.active:
            return None
        occurrence = self.occurrences.get(site, 0)
        self.occurrences[site] = occurrence + 1
        if (
            spec.max_faults is not None
            and self.injected.get(site, 0) >= spec.max_faults
        ):
            return None
        fire = occurrence in spec.schedule
        if not fire and spec.rate > 0.0:
            fire = float(self._rng(site).random()) < spec.rate
        if not fire:
            return None
        self.injected[site] = self.injected.get(site, 0) + 1
        self.records.append(
            FaultRecord(
                site=site,
                occurrence=occurrence,
                time_ns=self.sim.now if self.sim is not None else 0,
            )
        )
        return _FAULT_CLASSES.get(site, TransientFault)(site, occurrence)

    # -- ledger ----------------------------------------------------------

    def note_recovery(self, site: str, duration_ns: int, fatal: bool = False) -> None:
        self.recovery_ns[site] = self.recovery_ns.get(site, 0) + duration_ns
        if fatal:
            self.fatal[site] = self.fatal.get(site, 0) + 1
        else:
            self.retries[site] = self.retries.get(site, 0) + 1

    @property
    def total_injected(self) -> int:
        return sum(self.injected.values())

    @property
    def total_recovery_ns(self) -> int:
        return sum(self.recovery_ns.values())

    def injected_at(self, site: str) -> int:
        return self.injected.get(site, 0)

    def report_rows(self) -> List[tuple]:
        """(site, occurrences, injected, retries, fatal, recovery_ns) rows."""
        rows = []
        for site in ALL_SITES:
            if (
                self.occurrences.get(site, 0) == 0
                and self.injected.get(site, 0) == 0
            ):
                continue
            rows.append(
                (
                    site,
                    self.occurrences.get(site, 0),
                    self.injected.get(site, 0),
                    self.retries.get(site, 0),
                    self.fatal.get(site, 0),
                    self.recovery_ns.get(site, 0),
                )
            )
        return rows
