"""CUDA-like runtime over the simulated CC platform."""

from .machine import Machine, run_app, run_base_and_cc
from .memory import Buffer, DeviceBuffer, HostBuffer, ManagedBuffer
from .runtime import CudaError, CudaGraph, CudaRuntime, FatalCudaFault, Stream
from .transfers import TransferPlan, achieved_bandwidth_gbps, plan_copy

__all__ = [
    "Buffer",
    "CudaError",
    "CudaGraph",
    "CudaRuntime",
    "DeviceBuffer",
    "FatalCudaFault",
    "HostBuffer",
    "Machine",
    "ManagedBuffer",
    "Stream",
    "TransferPlan",
    "achieved_bandwidth_gbps",
    "plan_copy",
    "run_app",
    "run_base_and_cc",
]
