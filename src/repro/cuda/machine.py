"""The complete simulated platform: one Machine = Fig. 2 instantiated.

Wires the simulation kernel, guest context (VM or TD), GPU device, and
CUDA runtime together, and drives application coroutines to completion
returning their traces — the unit of work for every figure bench.
"""

from __future__ import annotations

from typing import Any, Callable, Generator, Optional, Tuple

from ..config import SystemConfig
from ..profiler import Trace
from ..sim import Simulator
from ..tdx import GuestContext
from ..gpu import GPU
from .runtime import CudaRuntime

AppFunction = Callable[..., Generator]


class Machine:
    """One booted platform instance (fresh state per application run)."""

    def __init__(
        self,
        config: Optional[SystemConfig] = None,
        label: str = "",
        observe: bool = True,
    ) -> None:
        self.config = config or SystemConfig.base()
        self.config.validate()
        self.sim = Simulator()
        self.trace = Trace(label=label, observability=observe)
        # Bind the raw clock slot, skipping the `now` property dispatch
        # — this closure runs for every span/metric sample.
        self.trace.bind_clock(lambda sim=self.sim: sim._now)
        self.guest = GuestContext(self.sim, self.config, trace=self.trace)
        self.gpu = GPU(self.sim, self.config, self.guest, self.trace)
        self.runtime = CudaRuntime(
            self.sim, self.config, self.guest, self.gpu, self.trace
        )

    def run(self, app: AppFunction, *args: Any, **kwargs: Any) -> Any:
        """Run an application coroutine to completion; returns its value."""
        process = self.sim.process(app(self.runtime, *args, **kwargs))
        return self.sim.run(until=process)

    @property
    def elapsed_ns(self) -> int:
        return self.sim.now


def run_app(
    app: AppFunction,
    config: Optional[SystemConfig] = None,
    label: str = "",
    observe: bool = True,
    *args: Any,
    **kwargs: Any,
) -> Tuple[Trace, Any]:
    """Convenience: boot a machine, run one app, return (trace, result)."""
    machine = Machine(config, label=label, observe=observe)
    result = machine.run(app, *args, **kwargs)
    return machine.trace, result


def run_base_and_cc(
    app: AppFunction,
    base_config: Optional[SystemConfig] = None,
    cc_config: Optional[SystemConfig] = None,
    label: str = "",
    **kwargs: Any,
) -> Tuple[Trace, Trace]:
    """Run the same app in both modes (the paper's standard comparison)."""
    base_trace, _ = run_app(
        app, base_config or SystemConfig.base(), label=f"{label}|base", **kwargs
    )
    cc_trace, _ = run_app(
        app, cc_config or SystemConfig.confidential(), label=f"{label}|cc", **kwargs
    )
    return base_trace, cc_trace
