"""Memory objects handed out by the CUDA-like runtime.

Three host-visible kinds (paper Sec. II-B / VI-A):

* pageable host memory (plain malloc),
* pinned host memory (cudaMallocHost) — under CC, pinned memory is
  *implemented with pageable/UVM mechanisms* (Observation 1), tracked
  via ``cc_uvm_backed``;
* managed memory (cudaMallocManaged) — UVM, migrates on demand.

Buffers optionally carry real payload bytes so tests can verify the
functional encryption path end-to-end.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional

from ..config import MemoryKind


@dataclass
class Buffer:
    """Base class for all runtime-managed memory objects."""

    address: int
    size: int
    kind: MemoryKind
    freed: bool = False
    payload: Optional[bytes] = None

    def write(self, data: bytes) -> None:
        if len(data) > self.size:
            raise ValueError("payload larger than buffer")
        self.payload = bytes(data)

    def read(self) -> bytes:
        return self.payload or b""


@dataclass
class HostBuffer(Buffer):
    pinned: bool = False
    # Under CC, "pinned" host memory is backed by UVM encrypted paging
    # (Observation 1); Nsight then labels its copies Managed/D2D.
    cc_uvm_backed: bool = False


@dataclass
class DeviceBuffer(Buffer):
    pass


@dataclass
class ManagedBuffer(Buffer):
    uvm_handle: int = 0
    attrs: dict = field(default_factory=dict)
