"""Transfer-cost pipelines for explicit memory copies (paper Sec. VI-A).

The driver moves data in staging chunks; total time is the classic
two-stage pipeline fill + steady state.  The stage structure differs by
mode and memory kind:

* base + pinned:      DMA only (no staging) — the fast path.
* base + pageable:    CPU staging memcpy || DMA.
* CC   (any host mem): software AES-GCM into the bounce buffer || DMA,
  plus hypercall-mediated setup.  Pinned memory degenerates to the same
  bounce path (Observation 1), with UVM-style bookkeeping making it a
  hair slower on setup but identical in steady state.

The achieved-bandwidth curves this produces reproduce Fig. 4a: a large
pinned/pageable gap in base mode that *disappears* under CC, with CC
peak throughput capped just below the AES-GCM single-core rate.
"""

from __future__ import annotations

from dataclasses import dataclass

from .. import units
from ..config import CopyKind, MemoryKind, SystemConfig
from ..tdx import GuestContext


@dataclass(frozen=True)
class TransferPlan:
    """Cost breakdown of one explicit copy."""

    total_ns: int  # wall-clock duration of the blocking operation
    cpu_ns: int  # CPU-resident portion (staging copies / crypto)
    dma_ns: int  # engine-resident portion
    setup_ns: int  # fixed setup (descriptors, hypercalls)
    hypercalls: int
    managed_label: bool  # Nsight would label this copy Managed/D2D

    def attribution(self, start_ns: int, cc_on: bool):
        """Per-stage span rows ``(name, layer, start, dur, attrs)``.

        The plan's stages overlap in the chunked pipeline; rows are
        laid out as setup at the front, the CPU-resident stage right
        after it, and the DMA stage flush with the end, all inside
        ``[start_ns, start_ns + total_ns)`` — wall-clock faithful at
        the edges, overlapping in the middle like the real pipeline.
        """
        end_ns = start_ns + self.total_ns
        rows = []
        if self.setup_ns:
            rows.append(
                ("memcpy.setup", "driver", start_ns, self.setup_ns, {})
            )
        if self.cpu_ns:
            name = "memcpy.encrypt" if cc_on else "memcpy.staging"
            rows.append(
                (
                    name,
                    "td" if cc_on else "driver",
                    start_ns + self.setup_ns,
                    min(self.cpu_ns, self.total_ns - self.setup_ns),
                    {"crypto": True} if cc_on else {},
                )
            )
        if self.dma_ns:
            dma = min(self.dma_ns, self.total_ns)
            rows.append(("memcpy.dma", "dma", end_ns - dma, dma, {}))
        return rows


def _pipeline_ns(stage_a_ns: int, stage_b_ns: int, chunks: int) -> int:
    """Two-stage chunked pipeline: fill + bottleneck steady state."""
    if chunks <= 0:
        return 0
    return stage_a_ns + stage_b_ns + (chunks - 1) * max(stage_a_ns, stage_b_ns)


def plan_copy(
    config: SystemConfig,
    guest: GuestContext,
    copy_kind: CopyKind,
    size: int,
    memory: MemoryKind,
    cold: bool = True,
) -> TransferPlan:
    """Compute the cost of a blocking cudaMemcpy.

    ``cold`` matters only for CC copies on pinned/managed memory: those
    are UVM-backed (Observation 1), so a first-touch copy pays
    fault-ramp service on top of the encrypt+DMA pipeline.  Bandwidth
    microbenchmarks loop over a warmed buffer (``cold=False``), which
    is why Fig. 4a still shows ~3 GB/s while application copies
    (Fig. 5) are hit far harder — up to ~20x for 2dconv.
    """
    if size <= 0:
        return TransferPlan(0, 0, 0, 0, 0, False)
    if copy_kind is CopyKind.D2D:
        return _plan_d2d(config, size)
    if config.cc_on:
        if config.tdx.teeio:
            return _plan_teeio_host_copy(config, copy_kind, size, memory)
        return _plan_cc_host_copy(config, guest, copy_kind, size, memory, cold)
    return _plan_base_host_copy(config, copy_kind, size, memory)


def _plan_teeio_host_copy(
    config: SystemConfig, copy_kind: CopyKind, size: int, memory: MemoryKind
) -> TransferPlan:
    """TEE-IO / TDX-Connect what-if (Sec. VI-A): the device is a
    trusted DMA agent, so no bounce buffer and no software crypto —
    PCIe IDE encrypts inline at a small link-efficiency cost.  Pinned
    memory works natively again; pageable still stages through the CPU.
    """
    base = _plan_base_host_copy(config, copy_kind, size, memory)
    ide_scale = 1.0 / config.tdx.teeio_link_efficiency
    return TransferPlan(
        total_ns=int(base.total_ns * ide_scale) + config.tdx.teeio_setup_ns,
        cpu_ns=base.cpu_ns,
        dma_ns=int(base.dma_ns * ide_scale),
        setup_ns=base.setup_ns + config.tdx.teeio_setup_ns,
        hypercalls=0,
        managed_label=False,
    )


def _plan_d2d(config: SystemConfig, size: int) -> TransferPlan:
    # On-device copy: read + write through HBM; CC does not encrypt HBM
    # (Sec. III), so this is mode-independent.
    dma = units.transfer_time_ns(2 * size, config.gpu.hbm_bw)
    setup = units.us(3.0)
    return TransferPlan(setup + dma, 0, dma, setup, 0, False)


def _dma_bw(config: SystemConfig, copy_kind: CopyKind) -> float:
    return (
        config.pcie.dma_h2d_bw
        if copy_kind is CopyKind.H2D
        else config.pcie.dma_d2h_bw
    )


def _plan_base_host_copy(
    config: SystemConfig, copy_kind: CopyKind, size: int, memory: MemoryKind
) -> TransferPlan:
    setup = config.pcie.dma_setup_ns
    bw = _dma_bw(config, copy_kind)
    if memory is MemoryKind.PINNED:
        dma = units.transfer_time_ns(size, bw)
        return TransferPlan(setup + dma, 0, dma, setup, 0, False)
    # Pageable: staging memcpy pipelined with DMA.
    chunk = min(config.pcie.staging_chunk_bytes, size)
    chunks = units.pages(size, chunk)
    stage = units.transfer_time_ns(chunk, config.cpu.memcpy_bw)
    dma = units.transfer_time_ns(chunk, bw)
    total = setup + _pipeline_ns(stage, dma, chunks)
    return TransferPlan(
        total,
        cpu_ns=stage * chunks,
        dma_ns=dma * chunks,
        setup_ns=setup,
        hypercalls=0,
        managed_label=False,
    )


def _cc_fault_ramp_ns(
    config: SystemConfig, copy_kind: CopyKind, size: int
) -> int:
    """First-touch fault service for CC UVM-backed (pinned) copies.

    H2D migrations are GPU-fault driven: the prefetcher ramps inside
    each 2 MiB VA block, costing ~5 service round trips per block.
    D2H migrations are CPU-fault driven with only readahead-sized
    batching (one service per 64 KiB) — which is why cold D2H managed
    copies are the worst case in Fig. 5.
    Each CC fault service includes the hypercall round trips.
    """
    uvm = config.uvm
    if copy_kind is CopyKind.H2D:
        # GPU-fault driven; two hypercalls per service round trip.
        per_fault = uvm.fault_service_ns + 2 * config.tdx.td_hypercall_ns
        blocks = units.pages(size, uvm.va_block_bytes)
        ramp_per_block = 5  # 64K -> 128K -> 256K ... -> 2M
        faults = blocks * ramp_per_block
    else:
        # CPU-fault driven (#VE on first access + mapgpa + completion):
        # three guest exits per readahead window.
        per_fault = uvm.fault_service_ns + 3 * config.tdx.td_hypercall_ns
        readahead = 48 * units.KiB
        faults = units.pages(size, readahead)
    return faults * per_fault


def _plan_cc_host_copy(
    config: SystemConfig,
    guest: GuestContext,
    copy_kind: CopyKind,
    size: int,
    memory: MemoryKind,
    cold: bool,
) -> TransferPlan:
    """The five-step CC copy (Sec. VI-A): prepare in private memory,
    software-encrypt into the bounce buffer, DMA, decrypt on the far
    side (GPU copy-engine hardware, not the bottleneck)."""
    chunk = min(config.pcie.staging_chunk_bytes, size)
    chunks = units.pages(size, chunk)
    # Per-chunk CPU stage: AES-GCM plus bounce-slot bookkeeping (scaled
    # to chunk size so small copies are not overcharged).
    bounce_overhead = int(
        config.tdx.bounce_chunk_overhead_ns
        * min(1.0, chunk / config.pcie.staging_chunk_bytes)
    )
    crypto = guest.crypt_time_ns(chunk) + bounce_overhead
    dma = units.transfer_time_ns(chunk, _dma_bw(config, copy_kind))
    hypercalls = 3  # map + doorbell + completion are host-mediated
    setup = config.pcie.dma_setup_ns + hypercalls * config.hypercall_ns()
    # "Pinned" memory under CC is UVM-backed (Observation 1): same bounce
    # pipeline, plus per-copy UVM bookkeeping; Nsight labels it Managed.
    managed_label = memory in (MemoryKind.PINNED, MemoryKind.MANAGED)
    fault_ramp = 0
    if managed_label:
        setup += units.us(6.0)  # VA-block lookup + residency update
        if cold:
            fault_ramp = _cc_fault_ramp_ns(config, copy_kind, size)
    total = setup + fault_ramp + _pipeline_ns(crypto, dma, chunks)
    return TransferPlan(
        total,
        cpu_ns=crypto * chunks,
        dma_ns=dma * chunks,
        setup_ns=setup,
        hypercalls=hypercalls,
        managed_label=managed_label,
    )


def achieved_bandwidth_gbps(plan: TransferPlan, size: int) -> float:
    return units.bandwidth_gb_per_sec(size, plan.total_ns)
