"""CUDA-like runtime API over the simulated machine.

All public methods are generator coroutines: application code is a
process that ``yield from``s runtime calls, exactly mirroring how a
CUDA host thread blocks in the driver.  The runtime implements the
paper's measured API surface:

* cudaMalloc / cudaMallocHost / cudaMallocManaged / cudaFree (Fig. 6)
* cudaMemcpy / cudaMemcpyAsync over pageable, pinned and managed
  memory with the full CC bounce+AES-GCM path (Fig. 4a / Fig. 5)
* cudaLaunchKernel with the TD launch path — first-launch bounce
  setup, hypercall-mediated driver work, launch-queue credits — that
  produces KLO/LQT/KQT behaviour (Fig. 7, 8, 11, 12)
* streams, cudaDeviceSynchronize, and CUDA graphs (Sec. VII-A).
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass, field
from typing import Generator, List, Optional, Sequence, Tuple

from .. import units
from ..config import CopyKind, MemoryKind, SystemConfig
from ..crypto import AESGCM
from ..faults import (
    BOUNCE_POOL,
    DMA,
    GCM_TAG,
    FatalFault,
    GcmTagFault,
    TransientFault,
)
from ..gpu import GPU, KernelCommand, KernelSpec
from ..gpu.device import CopyCommand
from ..mem.allocator import OutOfMemoryError
from ..profiler import (
    Trace,
    alloc_event,
    free_event,
    launch_event,
    memcpy_event,
    sync_event,
)
from ..sim import Event, Simulator
from ..tdx import GuestContext
from .memory import Buffer, DeviceBuffer, HostBuffer, ManagedBuffer
from .transfers import TransferPlan, plan_copy


class CudaError(RuntimeError):
    """Runtime misuse (double free, bad copy direction...)."""


class FatalCudaFault(CudaError, FatalFault):
    """A copy fault that exhausted its retry budget.

    Inherits both :class:`CudaError` (the runtime's error surface) and
    :class:`~repro.faults.FatalFault` (the fault taxonomy), so callers
    may catch either.
    """

    def __init__(self, site: str, attempts: int, last_fault=None) -> None:
        FatalFault.__init__(self, site, attempts, last_fault)


class Stream:
    """An in-order work queue; tail is the last submitted op's event.

    Stream ids are assigned per runtime (not from a process-global
    counter) so two identically-configured machines in one process
    produce byte-identical traces.
    """

    _ids = itertools.count(0)  # fallback for streams built standalone

    def __init__(self, stream_id: Optional[int] = None) -> None:
        self.id = next(Stream._ids) if stream_id is None else stream_id
        self.tail: Optional[Event] = None


@dataclass
class CudaGraph:
    """An instantiated CUDA graph: a chain of kernel nodes."""

    nodes: List[Tuple[KernelSpec, Tuple[Tuple[int, int], ...]]] = field(
        default_factory=list
    )

    @property
    def num_nodes(self) -> int:
        return len(self.nodes)


class CudaRuntime:
    """The per-application CUDA runtime instance."""

    def __init__(
        self,
        sim: Simulator,
        config: SystemConfig,
        guest: GuestContext,
        gpu: GPU,
        trace: Trace,
    ) -> None:
        self.sim = sim
        self.config = config
        self.guest = guest
        self.gpu = gpu
        self.trace = trace
        # Immutable-config fast paths for the per-launch hot loop.
        self._cc = config.cc_on
        self._gpu_spec = config.gpu
        self._stream_ids = itertools.count(0)
        self.default_stream = Stream(next(self._stream_ids))
        self._streams: List[Stream] = [self.default_stream]
        self._seen_kernels: set = set()
        self._hypercall_accum = 0.0
        self._last_launch_end: Optional[int] = None
        # Lazily cached on first launch, not per launch (the registry
        # hands back the same object for a given name; resolving on use
        # keeps its register-on-lookup semantics observable).
        self._launch_depth_gauge = None
        # Functional transfer crypto (independent of the timing model).
        self._gcm = AESGCM(b"hcc-session-key!")  # 16-byte session key
        self._iv_counter = itertools.count(1)

    # ------------------------------------------------------------------
    # Memory management (Fig. 6 cost model)
    # ------------------------------------------------------------------

    def _mgmt_cost_ns(self, base: str) -> Generator:
        """Timed driver work of an allocation-family API."""
        spec = self.config.alloc
        suffix = "_cc" if self.config.cc_on else ""
        base_ns = getattr(spec, f"{base}{suffix}_base_ns")
        per_page = getattr(spec, f"{base}{suffix}_per_page_ns")
        return base_ns, per_page

    def _timed_mgmt(self, which: str, api: str, size: int) -> Generator:
        base_ns, per_page = self._mgmt_cost_ns(which)
        num_pages = units.pages(size, self.config.tdx.page_size)
        cost = self.guest.jitter(int(base_ns + per_page * num_pages), 0.05)
        start = self.sim.now
        with self.guest.stacks.frame(api):
            with self.guest.spans.span(api, "driver", bytes=size):
                yield from self.guest.cpu_work(cost)
        return start, self.sim.now - start

    def malloc(self, size: int) -> Generator:
        """cudaMalloc: device-memory allocation."""
        start, duration = yield from self._timed_mgmt("dmalloc", "cudaMalloc", size)
        address = self.gpu.hbm.alloc(size)
        self.trace.add(alloc_event("cudaMalloc", start, duration, size))
        return DeviceBuffer(address, size, MemoryKind.DEVICE)

    def malloc_host(self, size: int) -> Generator:
        """cudaMallocHost: pinned host memory.

        Under CC, native pinning is impossible (TDX isolation); the
        driver falls back to UVM-backed pageable mechanisms
        (Observation 1) — same API, different machinery underneath.
        """
        start, duration = yield from self._timed_mgmt(
            "hmalloc", "cudaMallocHost", size
        )
        address = self.guest.memory.alloc(size)
        self.trace.add(alloc_event("cudaMallocHost", start, duration, size))
        return HostBuffer(
            address,
            size,
            MemoryKind.PINNED,
            pinned=True,
            cc_uvm_backed=self.config.cc_on,
        )

    def host_alloc(self, size: int) -> Generator:
        """Plain pageable malloc: cheap, not a CUDA API, untraced."""
        yield from self.guest.cpu_work(units.us(1.0))
        address = self.guest.memory.alloc(size)
        return HostBuffer(address, size, MemoryKind.PAGEABLE, pinned=False)

    def malloc_managed(self, size: int) -> Generator:
        """cudaMallocManaged: UVM allocation (lazy backing)."""
        start, duration = yield from self._timed_mgmt(
            "managed_alloc", "cudaMallocManaged", size
        )
        address = self.guest.memory.alloc(size)
        handle = self.gpu.uvm.register(size)
        self.trace.add(alloc_event("cudaMallocManaged", start, duration, size))
        return ManagedBuffer(
            address, size, MemoryKind.MANAGED, uvm_handle=handle
        )

    def free(self, buffer: Buffer) -> Generator:
        """cudaFree / cudaFreeHost, dispatched on the buffer kind."""
        if buffer.freed:
            raise CudaError("double free")
        if isinstance(buffer, DeviceBuffer):
            which, api = "free", "cudaFree"
        elif isinstance(buffer, ManagedBuffer):
            which, api = "managed_free", "cudaFree(managed)"
        elif isinstance(buffer, HostBuffer) and buffer.pinned:
            which, api = "hmalloc", "cudaFreeHost"  # symmetric unpin cost
        else:
            # Plain host memory: free() is trivial and untraced.
            self.guest.memory.free(buffer.address)
            buffer.freed = True
            yield from self.guest.cpu_work(units.ns(600))
            return None
        start, duration = yield from self._timed_mgmt(which, api, buffer.size)
        if isinstance(buffer, DeviceBuffer):
            self.gpu.hbm.free(buffer.address)
        else:
            self.guest.memory.free(buffer.address)
            if isinstance(buffer, ManagedBuffer):
                self.gpu.uvm.unregister(buffer.uvm_handle)
        buffer.freed = True
        self.trace.add(free_event(api, start, duration, buffer.size))
        return None

    def reclaim(self, buffer: Buffer) -> None:
        """Untimed emergency release after a failed run.

        Used by error paths (fatal fault cleanup) where the simulation
        may no longer be drivable; releases the backing store without
        consuming simulated time or emitting trace events.  Idempotent.
        """
        if buffer.freed:
            return
        if isinstance(buffer, DeviceBuffer):
            self.gpu.hbm.free(buffer.address)
        else:
            self.guest.memory.free(buffer.address)
            if isinstance(buffer, ManagedBuffer):
                self.gpu.uvm.unregister(buffer.uvm_handle)
        buffer.freed = True

    # ------------------------------------------------------------------
    # Memory copies (Fig. 4a / Fig. 5)
    # ------------------------------------------------------------------

    @staticmethod
    def _infer_copy(dst: Buffer, src: Buffer) -> Tuple[CopyKind, MemoryKind]:
        dst_dev = isinstance(dst, DeviceBuffer)
        src_dev = isinstance(src, DeviceBuffer)
        if src_dev and dst_dev:
            return CopyKind.D2D, MemoryKind.DEVICE
        if dst_dev:
            return CopyKind.H2D, src.kind
        if src_dev:
            return CopyKind.D2H, dst.kind
        raise CudaError("host-to-host copies are not a GPU operation")

    def _functional_transfer(
        self, dst: Buffer, src: Buffer, size: int
    ) -> None:
        """Move real payload bytes, exercising the bounce+GCM data path."""
        if src.payload is None:
            return
        data = src.payload[:size]
        if self.config.cc_on and (
            isinstance(dst, DeviceBuffer) or isinstance(src, DeviceBuffer)
        ):
            try:
                data = self._stage_through_bounce(data)
            except OutOfMemoryError:
                # Pool exhausted: degrade to chunked staging so the copy
                # still completes with a bounded footprint.
                chunk = self.config.fault_model.bounce_degraded_chunk_bytes
                pieces = []
                for offset in range(0, max(len(data), 1), chunk):
                    pieces.append(
                        self._stage_through_bounce(data[offset:offset + chunk])
                    )
                data = b"".join(pieces)
        dst.payload = data

    def _stage_through_bounce(self, data: bytes) -> bytes:
        """Encrypt into a bounce slot and decrypt on the far side,
        verifying integrity as the hardware would.  The slot is freed on
        every path — including a failed tag verification."""
        iv = next(self._iv_counter).to_bytes(12, "big")
        ciphertext, tag = self._gcm.encrypt(iv, data)
        slot = self.guest.bounce.alloc(max(len(ciphertext), 1))
        try:
            self.guest.bounce.stage(slot, ciphertext)
            return self._gcm.decrypt(iv, self.guest.bounce.peek(slot), tag)
        finally:
            self.guest.bounce.free(slot)

    @staticmethod
    def _take_warmth(dst: Buffer, src: Buffer, copy_kind: CopyKind) -> bool:
        """Residency-based cold/warm classification for UVM-backed
        buffers: a copy is cold unless the buffer's pages already moved
        in this direction last time (H2D after D2H must migrate pages
        back, and vice versa)."""
        cold = False
        for buffer in (dst, src):
            if isinstance(buffer, DeviceBuffer):
                continue
            if getattr(buffer, "_last_dir", None) is not copy_kind:
                cold = True
            buffer._last_dir = copy_kind
        return cold

    def memcpy(
        self,
        dst: Buffer,
        src: Buffer,
        size: Optional[int] = None,
        cold: Optional[bool] = None,
    ) -> Generator:
        """Blocking cudaMemcpy (the paper notes copy APIs are blocking)."""
        size = size if size is not None else min(dst.size, src.size)
        if size > dst.size or size > src.size:
            raise CudaError("copy larger than buffer")
        copy_kind, memory = self._infer_copy(dst, src)
        if cold is None:
            cold = self._take_warmth(dst, src, copy_kind)
        # Default-stream ordering: wait for outstanding GPU work.
        tail = self.default_stream.tail
        if tail is not None and not tail.processed:
            yield tail
        plan = plan_copy(self.config, self.guest, copy_kind, size, memory, cold)
        with self.guest.spans.span(
            "cudaMemcpy",
            "driver",
            bytes=size,
            copy_kind=copy_kind.value,
        ):
            engine = self.gpu.copy_engine(copy_kind).request()
            yield engine
            try:
                yield from self._copy_with_recovery(
                    copy_kind, plan, size, memory, self.default_stream.id
                )
                self.guest.hypercall_count += plan.hypercalls
                self._functional_transfer(dst, src, size)
            finally:
                self.gpu.copy_engine(copy_kind).release(engine)
        return plan

    def _copy_with_recovery(
        self,
        copy_kind: CopyKind,
        plan: TransferPlan,
        size: int,
        memory: MemoryKind,
        stream_id: int,
    ) -> Generator:
        """Run one staged copy under the fault plan.

        Failed attempts (injected AES-GCM tag mismatches or transient
        DMA errors) waste simulated time and are booked as RECOVERY
        events; the successful attempt emits the ordinary memcpy event,
        so a fault-free run's trace is byte-identical to one produced
        without the fault layer.  Retry exhaustion raises
        :class:`FatalCudaFault` (the engine is released by the caller).
        """
        guest = self.guest
        model = self.config.fault_model
        retry = self.config.retry
        degraded = False
        if self.config.cc_on:
            # Bounce-pool exhaustion does not kill the copy; it degrades
            # staging to small chunks (extra map hypercalls, paid below).
            degraded = guest.faults.draw(BOUNCE_POOL) is not None
        attempt = 1
        while True:
            fault: Optional[TransientFault] = None
            if self.config.cc_on:
                fault = guest.faults.draw(GCM_TAG)
            if fault is None:
                fault = guest.faults.draw(DMA)
            if fault is None:
                break
            start = self.sim.now
            if isinstance(fault, GcmTagFault):
                # Tag verification happens at end of message: the whole
                # re-staged fraction of the copy is wasted.
                wasted = int(plan.total_ns * model.gcm_refetch_fraction)
            else:
                wasted = (
                    int(plan.total_ns * model.dma_error_detect_fraction)
                    + model.dma_retrain_ns
                )
            yield self.sim.timeout(wasted)
            if attempt >= retry.max_attempts:
                guest.record_recovery(fault.site, start, attempt, "fatal", fatal=True)
                raise FatalCudaFault(fault.site, attempt, fault)
            yield self.sim.timeout(retry.backoff_ns(attempt))
            guest.record_recovery(fault.site, start, attempt)
            attempt += 1
        start = self.sim.now
        yield self.sim.timeout(plan.total_ns)
        self.trace.add(
            memcpy_event(
                copy_kind,
                start,
                self.sim.now - start,
                size,
                memory,
                stream=stream_id,
                managed=plan.managed_label,
            )
        )
        for name, layer, stage_start, stage_ns, attrs in plan.attribution(
            start, self.config.cc_on
        ):
            guest.spans.record(name, layer, stage_start, stage_ns, **attrs)
        if plan.hypercalls:
            guest.metrics.counter("tdx.hypercalls").inc(plan.hypercalls)
        if self.config.cc_on and plan.cpu_ns:
            guest.metrics.counter("crypto.encrypted_bytes").inc(size)
        if degraded:
            degraded_start = self.sim.now
            chunks = units.pages(size, model.bounce_degraded_chunk_bytes)
            # Each extra degraded chunk needs its own swiotlb map.
            extra = max(0, chunks - 1) * self.config.hypercall_ns()
            if extra:
                yield self.sim.timeout(extra)
            guest.record_recovery(BOUNCE_POOL, degraded_start, 1, "degraded")

    def memcpy_async(
        self,
        dst: Buffer,
        src: Buffer,
        stream: Stream,
        size: Optional[int] = None,
    ) -> Generator:
        """cudaMemcpyAsync: CPU-side staging/crypto is synchronous (a
        single OpenSSL worker under CC — the reason overlap is harder
        with CC on, Fig. 12c); the DMA portion runs on a copy engine."""
        size = size if size is not None else min(dst.size, src.size)
        copy_kind, memory = self._infer_copy(dst, src)
        cold = self._take_warmth(dst, src, copy_kind)
        plan = plan_copy(self.config, self.guest, copy_kind, size, memory, cold)
        # API + synchronous CPU-resident portion.  The staging/crypto
        # work blocks the calling thread, so it is traced as its own
        # memcpy-staging event — this is the un-hideable part of an
        # "async" copy under CC (single OpenSSL worker).
        with self.guest.spans.span(
            "cudaMemcpyAsync",
            "driver",
            bytes=size,
            copy_kind=copy_kind.value,
            stream=stream.id,
        ):
            yield from self.guest.cpu_work(units.us(1.2))
            if plan.cpu_ns:
                staging_start = self.sim.now
                cc = self.config.cc_on
                with self.guest.stacks.frame("cudaMemcpyAsync.staging"):
                    with self.guest.spans.span(
                        "memcpy.encrypt" if cc else "memcpy.staging",
                        "td" if cc else "driver",
                        **({"crypto": True} if cc else {}),
                    ):
                        yield from self.guest.cpu_work(plan.cpu_ns)
                staging_event = memcpy_event(
                    copy_kind,
                    staging_start,
                    self.sim.now - staging_start,
                    size,
                    memory,
                    stream=stream.id,
                    managed=plan.managed_label,
                )
                staging_event.attrs["staging"] = True
                self.trace.add(staging_event)
                if cc:
                    self.guest.metrics.counter("crypto.encrypted_bytes").inc(
                        size
                    )
            self.guest.hypercall_count += plan.hypercalls
            if plan.hypercalls:
                self.guest.metrics.counter("tdx.hypercalls").inc(
                    plan.hypercalls
                )
            done = self.sim.event()
            command = CopyCommand(
                copy_kind=copy_kind,
                memory=memory,
                size_bytes=size,
                gpu_time_ns=plan.setup_ns + plan.dma_ns,
                stream=stream.id,
                enqueued_ns=self.sim.now,
                done=done,
                predecessor=stream.tail,
                managed_label=plan.managed_label,
            )
            yield self.gpu.submit(command)
            stream.tail = done
            self._functional_transfer(dst, src, size)
        return done

    # ------------------------------------------------------------------
    # Kernel launch (Fig. 7 / 8 / 11 / 12)
    # ------------------------------------------------------------------

    def launch(
        self,
        kernel: KernelSpec,
        stream: Optional[Stream] = None,
        managed_touches: Sequence[Tuple[ManagedBuffer, int]] = (),
    ) -> Generator:
        """cudaLaunchKernel: returns the kernel's completion event.

        ``managed_touches`` lists (managed buffer, bytes touched) pairs;
        non-resident chunks fault and migrate during execution.
        """
        stream = stream or self.default_stream
        launch_cfg = self.config.launch
        # Validate the kernel spec eagerly so bad parameters surface in
        # the caller, not later inside a detached GPU process.
        kernel.base_duration_ns(self._gpu_spec, self._cc)
        # Application-side loop bookkeeping between launches: lands in
        # the LQT gap, not in KLO.
        yield from self.guest.cpu_work(launch_cfg.inter_launch_cpu_ns)
        # Launch-queue credit (backpressure when the queue is full).
        credit = self.gpu.launch_credits.request()
        yield credit
        depth = self._launch_depth_gauge
        if depth is None:
            depth = self._launch_depth_gauge = self.guest.metrics.gauge(
                "launch.queue_depth"
            )
        depth.set(self.gpu.launch_credits.in_use)
        try:
            start = self.sim.now
            lqt = (
                max(0, start - self._last_launch_end)
                if self._last_launch_end is not None
                else 0
            )
            first = kernel.name not in self._seen_kernels
            with self.guest.stacks.frame("cudaLaunchKernel"):
                with self.guest.spans.span(
                    "cudaLaunchKernel",
                    "driver",
                    kernel=kernel.name,
                    stream=stream.id,
                    first=first,
                ):
                    with self.guest.stacks.frame("libcuda.so::cuLaunchKernel"):
                        if first:
                            self._seen_kernels.add(kernel.name)
                            yield from self._first_launch_setup(kernel)
                        base = self.guest.jitter(
                            launch_cfg.klo_base_ns, launch_cfg.jitter_sigma
                        )
                        with self.guest.stacks.frame("nvidia.ko::rm_ioctl"):
                            yield from self.guest.cpu_work(base)
                            if self._cc:
                                yield from self._cc_launch_extra()
        except BaseException:
            # Driver-side failure (e.g. a fatal hypercall fault) before
            # the command reached the GPU: the queue credit must not
            # leak, or later launches deadlock on backpressure.
            self.gpu.launch_credits.release(credit)
            raise
        end = self.sim.now
        self._last_launch_end = end
        self.trace.add(
            launch_event(kernel.name, start, end - start, lqt, stream.id, first)
        )
        done = self.sim.event()
        command = KernelCommand(
            kernel=kernel,
            stream=stream.id,
            enqueued_ns=end,
            done=done,
            predecessor=stream.tail,
            managed_touches=[
                (buf.uvm_handle, touched) for buf, touched in managed_touches
            ],
            credit=credit,
        )
        yield self.gpu.submit(command)
        stream.tail = done
        return done

    def _first_launch_setup(self, kernel: KernelSpec) -> Generator:
        """Module load / JIT, plus per-module CC DMA-buffer setup.

        Under CC, loading a module means allocating its command/code
        staging buffers in DMA-capable (shared) memory: dma_direct_alloc
        followed by set_memory_decrypted per page — the dominant frames
        of the paper's Fig. 8 flame graph.
        """
        launch_cfg = self.config.launch
        extra = launch_cfg.first_launch_extra_ns
        # Larger machine code (the Listing-1 unroll knob) loads slower.
        unroll = kernel.attrs.get("unroll", 1.0)
        extra = int(extra * (1.0 + 0.015 * max(unroll - 1.0, 0.0)))
        with self.guest.stacks.frame("cuModuleLoad"):
            with self.guest.spans.span("cuModuleLoad", "driver"):
                yield from self.guest.cpu_work(extra)
        if self.config.cc_on:
            pages = int(
                kernel.attrs.get(
                    "module_pages", launch_cfg.first_launch_bounce_pages
                )
            )
            with self.guest.stacks.frame("dma_direct_alloc"):
                with self.guest.spans.span(
                    "dma_direct_alloc", "driver", pages=pages
                ):
                    yield from self.guest.hypercall("tdvmcall.mapgpa")
                    duration = pages * self.config.tdx.page_convert_ns
                    self.guest.pages_converted += pages
                    with self.guest.stacks.frame("set_memory_decrypted"):
                        self.guest.stacks.record(duration)
                    yield self.sim.timeout(duration)
                    self.guest.spans.record(
                        "set_memory_decrypted",
                        "td",
                        self.sim.now - duration,
                        duration,
                        pages=pages,
                    )
                    self.guest.metrics.counter("tdx.pages_converted").inc(
                        pages
                    )
            yield from self.guest.hypercall("tdvmcall.mmio")

    def _cc_launch_extra(self) -> Generator:
        """Steady-state CC launch tax: packet crypto + rare hypercalls."""
        launch_cfg = self.config.launch
        with self.guest.stacks.frame("cc_encrypt_pushbuffer"):
            with self.guest.spans.span(
                "cc_encrypt_pushbuffer", "td", crypto=True
            ):
                yield from self.guest.cpu_work(launch_cfg.klo_cc_extra_ns)
        self._hypercall_accum += launch_cfg.hypercalls_per_launch
        while self._hypercall_accum >= 1.0:
            self._hypercall_accum -= 1.0
            yield from self.guest.hypercall("tdvmcall.mmio")

    # ------------------------------------------------------------------
    # Streams and synchronization
    # ------------------------------------------------------------------

    def create_stream(self) -> Stream:
        stream = Stream(next(self._stream_ids))
        self._streams.append(stream)
        return stream

    def stream_wait_event(self, stream: Stream, event: Optional[Event]) -> None:
        """cudaStreamWaitEvent: order future work on ``stream`` after
        ``event``.  Pure dependency bookkeeping — costs nothing on the
        calling thread.  The stream model keeps a single predecessor
        (its tail), so an already-satisfied event is a no-op and an
        outstanding one replaces the tail; copy/launch commands on the
        engine queues still serialize per engine, which covers the
        multi-predecessor cases this simplification drops.
        """
        if event is not None and not event.processed:
            stream.tail = event

    def cpu_gap(self, duration_ns: int) -> Generator:
        """Application think time between API calls (loop bookkeeping)."""
        yield from self.guest.cpu_work(duration_ns)

    def stream_synchronize(self, stream: Stream) -> Generator:
        start = self.sim.now
        with self.guest.spans.span(
            "cudaStreamSynchronize", "driver", stream=stream.id
        ):
            if stream.tail is not None and not stream.tail.processed:
                yield stream.tail
            yield from self._sync_overhead()
        self.trace.add(
            sync_event("cudaStreamSynchronize", start, self.sim.now - start)
        )
        return None

    def synchronize(self) -> Generator:
        """cudaDeviceSynchronize: wait for all streams."""
        start = self.sim.now
        with self.guest.spans.span("cudaDeviceSynchronize", "driver"):
            pending = [
                s.tail
                for s in self._streams
                if s.tail is not None and not s.tail.processed
            ]
            if pending:
                yield self.sim.all_of(pending)
            yield from self._sync_overhead()
        self.trace.add(
            sync_event("cudaDeviceSynchronize", start, self.sim.now - start)
        )
        return None

    def _sync_overhead(self) -> Generator:
        cfg = self.config.launch
        overhead = cfg.sync_base_ns
        if self.config.cc_on:
            overhead += cfg.sync_cc_extra_ns
        yield self.sim.timeout(overhead)

    # ------------------------------------------------------------------
    # CUDA graphs (Sec. VII-A launch fusion)
    # ------------------------------------------------------------------

    def graph_create(
        self,
        kernels: Sequence[KernelSpec],
        managed_touches: Sequence[Sequence[Tuple[ManagedBuffer, int]]] = (),
    ) -> Generator:
        """Capture + instantiate a graph of sequential kernel nodes."""
        cfg = self.config.launch
        cost = cfg.graph_instantiate_base_ns + cfg.graph_capture_per_node_ns * len(
            kernels
        )
        with self.guest.stacks.frame("cudaGraphInstantiate"):
            with self.guest.spans.span(
                "cudaGraphInstantiate", "driver", nodes=len(kernels)
            ):
                yield from self.guest.cpu_work(cost)
        nodes = []
        for index, kernel in enumerate(kernels):
            touches = (
                tuple(
                    (buf.uvm_handle, touched)
                    for buf, touched in managed_touches[index]
                )
                if index < len(managed_touches)
                else ()
            )
            nodes.append((kernel, touches))
        return CudaGraph(nodes=nodes)

    def graph_launch(self, graph: CudaGraph, stream: Optional[Stream] = None) -> Generator:
        """One launch submits every node: the KLO is paid once."""
        stream = stream or self.default_stream
        cfg = self.config.launch
        start = self.sim.now
        lqt = (
            max(0, start - self._last_launch_end)
            if self._last_launch_end is not None
            else 0
        )
        cost = cfg.graph_launch_base_ns + cfg.graph_launch_per_node_ns * graph.num_nodes
        with self.guest.stacks.frame("cudaGraphLaunch"):
            with self.guest.spans.span(
                "cudaGraphLaunch",
                "driver",
                nodes=graph.num_nodes,
                stream=stream.id,
            ):
                yield from self.guest.cpu_work(
                    self.guest.jitter(cost, cfg.jitter_sigma)
                )
                if self.config.cc_on:
                    yield from self._cc_launch_extra()
        end = self.sim.now
        self._last_launch_end = end
        self.trace.add(
            launch_event(
                f"graph[{graph.num_nodes}]", start, end - start, lqt, stream.id
            )
        )
        last_done = None
        for index, (kernel, touches) in enumerate(graph.nodes):
            done = self.sim.event()
            command = KernelCommand(
                kernel=kernel,
                stream=stream.id,
                enqueued_ns=end,
                done=done,
                predecessor=stream.tail,
                managed_touches=list(touches),
                credit=None,  # graph nodes bypass the launch queue
                fetch_free=index > 0,  # one fetch for the whole graph
            )
            yield self.gpu.submit(command)
            stream.tail = done
            last_done = done
        return last_done
