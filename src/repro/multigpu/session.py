"""Executable collectives: the closed-form ring all-reduce of
:mod:`repro.multigpu.collectives`, replayed on the simulated clock with
fault injection and exactly-once metrics accounting.

The analytic :func:`~repro.multigpu.collectives.ring_all_reduce` answers
"how long would this take"; serving engines need the *process* form —
something that advances :class:`~repro.sim.Simulator` time, visits the
``link.transfer`` fault site, retries MAC failures with backoff, and
books payload/wire bytes into the metrics registry.  Determinism rules
mirror the rest of the fault layer:

* With the ``link.transfer`` site inactive the whole collective batch
  collapses to one coalesced timeout of ``count * closed_form.time_ns``
  — zero RNG draws, byte-identical to a build without this module.
* Wire/payload bytes are booked once per **delivered** chunk.  A retry
  costs time (the wasted transfer plus link retrain backoff), never
  bytes — the invariant the composition tests pin down.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Generator, Optional, TYPE_CHECKING

from ..faults import LINK, FatalFault, RetryPolicy
from .collectives import RING_REDUCE_NS_PER_BYTE, ring_all_reduce
from .links import LinkSecurity, LinkSpec, MultiGPUNode, transfer_time_ns

if TYPE_CHECKING:  # pragma: no cover - typing only
    from ..sim import Simulator
    from ..tdx import GuestContext


def wire_bytes(link: LinkSpec, size: int, security: LinkSecurity) -> int:
    """On-the-wire bytes for ``size`` payload bytes under a policy.

    ``NONE`` moves plaintext with no metadata, so its *encrypted* wire
    footprint is zero; the secure policies pay their counter/MAC
    metadata overhead on every chunk.
    """
    if size <= 0 or security is LinkSecurity.NONE:
        return 0
    if security is LinkSecurity.NAIVE:
        overhead = link.naive_metadata_overhead
    else:
        overhead = link.batched_metadata_overhead
    return int(size * (1.0 + overhead))


@dataclass
class SessionStats:
    """Ledger of one :func:`run_ring_all_reduce` batch."""

    collectives: int = 0
    payload_bytes: int = 0
    encrypted_bytes: int = 0
    retries: int = 0
    time_ns: int = 0


def run_ring_all_reduce(
    sim: "Simulator",
    node: MultiGPUNode,
    size_bytes: int,
    security: LinkSecurity,
    *,
    count: int = 1,
    guest: Optional["GuestContext"] = None,
    retry: Optional[RetryPolicy] = None,
) -> Generator:
    """Run ``count`` back-to-back ring all-reduces of ``size_bytes``.

    A simulator process (generator): yields timeouts totalling the
    closed-form collective time, plus any injected-fault recovery.
    Returns a :class:`SessionStats`; metric counters are flushed into
    ``guest.metrics`` exactly once (in a ``finally``) even when a fault
    exhausts its retry budget and :class:`FatalFault` propagates.
    """
    shape = ring_all_reduce(node, size_bytes, security)
    stats = SessionStats()
    n = node.num_gpus
    chunk = max(1, size_bytes // n)
    chunk_wire = wire_bytes(node.link, chunk, security)
    steps = 2 * (n - 1)
    injector = guest.faults if guest is not None else None
    active = (
        injector is not None
        and (spec := injector.plan.spec_for(LINK)) is not None
        and spec.active
    )
    if not active:
        # Zero-overhead path: no draws, one coalesced timeout.
        total = count * shape.time_ns
        if total > 0:
            yield sim.timeout(total)
        stats.collectives = count
        stats.payload_bytes = count * steps * chunk
        stats.encrypted_bytes = count * steps * chunk_wire
        stats.time_ns = total
        _flush(guest, stats)
        return stats

    retry = retry if retry is not None else guest.config.retry
    step_transfer = transfer_time_ns(node.link, chunk, security)
    reduce_step = int(chunk * RING_REDUCE_NS_PER_BYTE)
    pending = 0  # coalesced successful-step time awaiting one timeout
    started = sim.now
    try:
        for _round in range(count):
            for step in range(steps):
                step_cost = step_transfer + (reduce_step if step < n - 1 else 0)
                attempt = 1
                while True:
                    fault = injector.draw(LINK)
                    if fault is None:
                        break
                    if pending:
                        yield sim.timeout(pending)
                        pending = 0
                    start = sim.now
                    if attempt >= retry.max_attempts:
                        # Wasted transfer surfaces the MAC failure, then
                        # the session gives up: bytes stay unbooked.
                        yield sim.timeout(step_transfer)
                        guest.record_recovery(
                            LINK, start, attempt, "link-fatal", fatal=True
                        )
                        raise FatalFault(LINK, attempt, fault)
                    yield sim.timeout(
                        step_transfer + retry.backoff_ns(attempt)
                    )
                    guest.record_recovery(LINK, start, attempt, "link-retrain")
                    stats.retries += 1
                    attempt += 1
                pending += step_cost
                stats.payload_bytes += chunk
                stats.encrypted_bytes += chunk_wire
            stats.collectives += 1
        if pending:
            yield sim.timeout(pending)
            pending = 0
    finally:
        if pending:
            # A fatal fault left coalesced successful time unspent; it
            # already happened on the wire, so charge it to the ledger
            # (the simulator clock stops at the failure point).
            stats.time_ns = sim.now - started + pending
        else:
            stats.time_ns = sim.now - started
        _flush(guest, stats)
    return stats


def _flush(guest: Optional["GuestContext"], stats: SessionStats) -> None:
    if guest is None:
        return
    metrics = guest.metrics
    if stats.collectives:
        metrics.counter("multigpu.collectives").inc(stats.collectives)
    if stats.payload_bytes:
        metrics.counter("multigpu.payload_bytes").inc(stats.payload_bytes)
    if stats.encrypted_bytes:
        metrics.counter("multigpu.encrypted_bytes").inc(stats.encrypted_bytes)
    if stats.retries:
        metrics.counter("multigpu.link_retries").inc(stats.retries)
