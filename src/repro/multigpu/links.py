"""Multi-GPU interconnect substrate (paper Sec. VIII direction:
"scaling counter-mode encryption for multi-GPU networks" [83]/[132]).

Models a node with N GPUs joined by NVLink-class peer links, and
secure channels over those links: counter-mode encryption with
per-message authentication, where the security *metadata* (counters,
MACs) is the scaling bottleneck the HPCA'24 work addresses.

Two metadata policies are modeled:

* ``naive``   — counter fetch/verify and MAC check per 256 B flit
  group: large extra metadata traffic and per-chunk latency.
* ``batched`` — dynamic batched metadata (the paper's cited
  optimization): counters are updated per large batch and MACs cover
  whole chunks, shrinking overhead to a few percent.

Channels are also *functional*: payloads are really encrypted with
AES-CTR under a per-link key and authenticated with GHASH-derived
MACs, with monotonic-counter replay protection that tests can poke.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from enum import Enum
from typing import Dict, Tuple

from .. import units
from ..crypto import AESCTR, GHASH
from ..crypto.sha256 import hmac_sha256


class LinkSecurity(Enum):
    NONE = "none"  # base mode: HBM-to-HBM trusted (single enclave)
    NAIVE = "naive"  # per-flit-group counter/MAC metadata
    BATCHED = "batched"  # dynamic batched metadata management


@dataclass(frozen=True)
class LinkSpec:
    """One direction of a peer link (NVLink4-class by default)."""

    bandwidth: float = 400.0 * units.GB
    latency_ns: int = units.us(2.0)
    # Metadata policies.  MAC verification pipelines with the transfer
    # (hardware GMAC at line rate), so each policy costs (a) extra
    # wire traffic for counters/MACs, (b) a throughput efficiency hit
    # from counter-fetch stalls, and (c) a one-time verification tail.
    naive_metadata_overhead: float = 0.14
    naive_efficiency: float = 0.68  # per-flit-group counter fetches stall
    naive_auth_tail_ns: int = units.us(1.2)
    batched_metadata_overhead: float = 0.025
    batched_efficiency: float = 0.985  # batched counters rarely stall
    batched_auth_tail_ns: int = units.us(0.8)


def transfer_time_ns(spec: LinkSpec, size: int, security: LinkSecurity) -> int:
    """Time to move ``size`` bytes over one link under a policy."""
    if size <= 0:
        return 0
    if security is LinkSecurity.NONE:
        return spec.latency_ns + units.transfer_time_ns(size, spec.bandwidth)
    if security is LinkSecurity.NAIVE:
        overhead = spec.naive_metadata_overhead
        efficiency = spec.naive_efficiency
        auth_tail = spec.naive_auth_tail_ns
    else:
        overhead = spec.batched_metadata_overhead
        efficiency = spec.batched_efficiency
        auth_tail = spec.batched_auth_tail_ns
    wire_bytes = int(size * (1.0 + overhead))
    return (
        spec.latency_ns
        + auth_tail
        + units.transfer_time_ns(wire_bytes, spec.bandwidth * efficiency)
    )


def effective_bandwidth_gbps(
    spec: LinkSpec, size: int, security: LinkSecurity
) -> float:
    return units.bandwidth_gb_per_sec(size, transfer_time_ns(spec, size, security))


class ReplayError(RuntimeError):
    """Counter regression: a replayed or reordered secure message."""


class AuthFailure(RuntimeError):
    """MAC verification failed (tampered link traffic)."""


class SecureChannel:
    """Functional counter-mode channel between two GPUs.

    Messages are AES-CTR encrypted under a per-channel key with a
    monotonically increasing counter as the IV; a GHASH-over-CTR MAC
    (GMAC construction) authenticates ciphertext+counter.  The receiver
    enforces strict counter monotonicity (replay protection).
    """

    def __init__(self, key: bytes, channel_id: int = 0) -> None:
        self._ctr = AESCTR(key)
        self._mac_key = hmac_sha256(key, b"gmac-subkey")[:16]
        self.channel_id = channel_id
        self.send_counter = 0
        self.recv_counter = -1

    def _nonce(self, counter: int) -> bytes:
        return self.channel_id.to_bytes(4, "big") + counter.to_bytes(12, "big")

    def _mac(self, counter: int, ciphertext: bytes) -> bytes:
        ghash = GHASH(self._mac_key)
        ghash.update(self._nonce(counter))
        ghash.update(ciphertext)
        return ghash.digest()

    def seal(self, plaintext: bytes) -> Tuple[int, bytes, bytes]:
        """Encrypt+authenticate; returns (counter, ciphertext, mac)."""
        counter = self.send_counter
        self.send_counter += 1
        ciphertext = self._ctr.crypt(self._nonce(counter), plaintext)
        return counter, ciphertext, self._mac(counter, ciphertext)

    def open(self, counter: int, ciphertext: bytes, mac: bytes) -> bytes:
        """Verify monotonicity + MAC, then decrypt."""
        if counter <= self.recv_counter:
            raise ReplayError(
                f"counter {counter} <= last seen {self.recv_counter}"
            )
        if self._mac(counter, ciphertext) != mac:
            raise AuthFailure("link message MAC mismatch")
        self.recv_counter = counter
        return self._ctr.crypt(self._nonce(counter), ciphertext)


@dataclass
class MultiGPUNode:
    """N GPUs with all-to-all peer links and per-pair secure channels."""

    num_gpus: int = 4
    link: LinkSpec = field(default_factory=LinkSpec)
    session_key: bytes = b"multi-gpu-link-key"

    def __post_init__(self) -> None:
        if self.num_gpus < 2:
            raise ValueError("a multi-GPU node needs at least 2 GPUs")
        self._channels: Dict[Tuple[int, int], SecureChannel] = {}

    def channel(self, src: int, dst: int) -> SecureChannel:
        """The (directional) secure channel between two GPUs."""
        self._check(src)
        self._check(dst)
        if src == dst:
            raise ValueError("no self-links")
        key = (src, dst)
        if key not in self._channels:
            channel_key = hmac_sha256(
                self.session_key, bytes([src, dst])
            )[:16]
            self._channels[key] = SecureChannel(
                channel_key, channel_id=src * 256 + dst
            )
        return self._channels[key]

    def _check(self, gpu: int) -> None:
        if not 0 <= gpu < self.num_gpus:
            raise ValueError(f"gpu {gpu} out of range")

    def p2p_time_ns(self, size: int, security: LinkSecurity) -> int:
        return transfer_time_ns(self.link, size, security)
