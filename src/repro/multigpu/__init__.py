"""Secure multi-GPU substrate: NVLink-class peer links, counter-mode
secure channels with naive vs batched metadata management, and timed
collectives (the scaling direction of paper Sec. VIII)."""

from .collectives import (
    RING_REDUCE_NS_PER_BYTE,
    CollectiveResult,
    all_reduce_sweep,
    best_all_reduce,
    broadcast,
    hierarchical_all_reduce,
    ring_all_reduce,
    tree_all_reduce,
)
from .links import (
    AuthFailure,
    LinkSecurity,
    LinkSpec,
    MultiGPUNode,
    ReplayError,
    SecureChannel,
    effective_bandwidth_gbps,
    transfer_time_ns,
)
from .session import SessionStats, run_ring_all_reduce, wire_bytes

__all__ = [
    "AuthFailure",
    "CollectiveResult",
    "LinkSecurity",
    "LinkSpec",
    "MultiGPUNode",
    "RING_REDUCE_NS_PER_BYTE",
    "ReplayError",
    "SecureChannel",
    "SessionStats",
    "all_reduce_sweep",
    "best_all_reduce",
    "broadcast",
    "effective_bandwidth_gbps",
    "hierarchical_all_reduce",
    "ring_all_reduce",
    "run_ring_all_reduce",
    "transfer_time_ns",
    "tree_all_reduce",
    "wire_bytes",
]
