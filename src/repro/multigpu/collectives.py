"""Collective operations over the multi-GPU node, timed under the
three link-security policies.

Ring all-reduce is the workhorse of multi-GPU training: 2(N-1) steps,
each moving size/N per link, with all links active concurrently.  The
security tax therefore multiplies against the busiest phase of
distributed training — the scaling concern paper Sec. VIII points at.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Sequence

from .. import units
from .links import LinkSecurity, MultiGPUNode, transfer_time_ns

# Element-wise reduction throughput of the ring reduce-scatter half
# (~1.5 TB/s of HBM-bound adds); shared with the executable collective
# path in :mod:`repro.multigpu.session` so both agree to the nanosecond.
RING_REDUCE_NS_PER_BYTE: float = 1.0 / (1500.0 * units.GB) * units.NS_PER_SEC


@dataclass(frozen=True)
class CollectiveResult:
    operation: str
    num_gpus: int
    size_bytes: int
    security: LinkSecurity
    time_ns: int

    @property
    def algo_bandwidth_gbps(self) -> float:
        """Algorithm bandwidth: payload bytes / time."""
        return units.bandwidth_gb_per_sec(self.size_bytes, self.time_ns)


def ring_all_reduce(
    node: MultiGPUNode,
    size_bytes: int,
    security: LinkSecurity,
    reduce_ns_per_byte: float = RING_REDUCE_NS_PER_BYTE,
) -> CollectiveResult:
    """Ring all-reduce of ``size_bytes`` per GPU.

    2(N-1) steps; each step every GPU sends/receives size/N bytes on
    its ring links simultaneously, and the reduce-scatter half also
    pays an element-wise reduction over the received chunk.
    """
    n = node.num_gpus
    chunk = max(1, size_bytes // n)
    step_transfer = transfer_time_ns(node.link, chunk, security)
    reduce_step = int(chunk * reduce_ns_per_byte)
    reduce_scatter = (n - 1) * (step_transfer + reduce_step)
    all_gather = (n - 1) * step_transfer
    return CollectiveResult(
        "all_reduce", n, size_bytes, security, reduce_scatter + all_gather
    )


def broadcast(
    node: MultiGPUNode, size_bytes: int, security: LinkSecurity
) -> CollectiveResult:
    """Binary-tree broadcast from GPU 0: ceil(log2 N) pipelined hops."""
    hops = max(1, (node.num_gpus - 1).bit_length())
    time = hops * transfer_time_ns(node.link, size_bytes, security)
    return CollectiveResult("broadcast", node.num_gpus, size_bytes, security, time)


def tree_all_reduce(
    node: MultiGPUNode,
    size_bytes: int,
    security: LinkSecurity,
    reduce_ns_per_byte: float = RING_REDUCE_NS_PER_BYTE,
) -> CollectiveResult:
    """Binary-tree all-reduce: reduce up the tree, broadcast down.

    Latency-optimal (2·log2 N hops of the full payload) but moves N×
    more bytes per link than the ring — the classic small-message /
    large-message tradeoff :func:`best_all_reduce` picks between.
    """
    hops = max(1, (node.num_gpus - 1).bit_length())
    step = transfer_time_ns(node.link, size_bytes, security)
    reduce_step = int(size_bytes * reduce_ns_per_byte)
    return CollectiveResult(
        "tree_all_reduce",
        node.num_gpus,
        size_bytes,
        security,
        hops * (step + reduce_step) + hops * step,
    )


def best_all_reduce(
    node: MultiGPUNode, size_bytes: int, security: LinkSecurity
) -> CollectiveResult:
    """Pick ring vs tree per message size (as NCCL's tuner would)."""
    ring = ring_all_reduce(node, size_bytes, security)
    tree = tree_all_reduce(node, size_bytes, security)
    return ring if ring.time_ns <= tree.time_ns else tree


def hierarchical_all_reduce(
    config,
    num_islands: int,
    island_size: int,
    size_bytes: int,
    security: LinkSecurity,
    link: "LinkSpec" = None,
) -> CollectiveResult:
    """All-reduce over NVLink islands bridged by PCIe (the H100 *NVL*
    topology of the paper's own testbed: GPUs are NVLink-paired, pairs
    talk over PCIe through the CPU).

    Three phases: intra-island ring reduce-scatter, inter-island ring
    over island leaders across PCIe, intra-island all-gather.  The
    PCIe hop is where this meets the main paper: under CC it routes
    through the bounce buffer with software AES-GCM (a D2H + H2D pair
    per transfer), so the cross-island phase inherits the full CC
    transfer tax — unless ``config.tdx.teeio`` is set.
    """
    from ..config import CopyKind, MemoryKind
    from ..cuda.transfers import plan_copy
    from ..sim import Simulator
    from ..tdx import GuestContext
    from .links import LinkSpec as _LinkSpec

    link = link or _LinkSpec()
    island = MultiGPUNode(num_gpus=island_size, link=link)
    guest = GuestContext(Simulator(), config)

    def pcie_hop_ns(bytes_: int) -> int:
        """GPU -> CPU -> GPU across the PCIe bridge."""
        d2h = plan_copy(
            config, guest, CopyKind.D2H, bytes_, MemoryKind.PINNED, cold=False
        )
        h2d = plan_copy(
            config, guest, CopyKind.H2D, bytes_, MemoryKind.PINNED, cold=False
        )
        return d2h.total_ns + h2d.total_ns

    # Phase 1: intra-island reduce-scatter (ring halves of all_reduce).
    intra = ring_all_reduce(island, size_bytes, security)
    reduce_scatter_ns = intra.time_ns // 2
    all_gather_ns = intra.time_ns - reduce_scatter_ns
    # Phase 2: leaders exchange their shard over PCIe: ring of
    # num_islands leaders, 2(k-1) steps of (size/island_size)/k bytes.
    shard = max(1, size_bytes // island_size)
    if num_islands > 1:
        chunk = max(1, shard // num_islands)
        inter_ns = 2 * (num_islands - 1) * pcie_hop_ns(chunk)
    else:
        inter_ns = 0
    total = reduce_scatter_ns + inter_ns + all_gather_ns
    return CollectiveResult(
        "hierarchical_all_reduce",
        num_islands * island_size,
        size_bytes,
        security,
        total,
    )


def all_reduce_sweep(
    gpu_counts: Sequence[int],
    sizes: Sequence[int],
) -> Dict[tuple, CollectiveResult]:
    """All-reduce times over (gpus, size, security) — the extension
    experiment's data."""
    results: Dict[tuple, CollectiveResult] = {}
    for num_gpus in gpu_counts:
        node = MultiGPUNode(num_gpus=num_gpus)
        for size in sizes:
            for security in LinkSecurity:
                results[(num_gpus, size, security)] = ring_all_reduce(
                    node, size, security
                )
    return results
