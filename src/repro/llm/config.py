"""LLM model configuration (paper Sec. VII-B: Meta-Llama-3-8B)."""

from __future__ import annotations

from dataclasses import dataclass


@dataclass(frozen=True)
class LlamaConfig:
    """Transformer shape; defaults are Meta-Llama-3-8B."""

    name: str = "Meta-Llama-3-8B"
    num_layers: int = 32
    hidden_size: int = 4096
    num_heads: int = 32
    num_kv_heads: int = 8
    head_dim: int = 128
    intermediate_size: int = 14336
    vocab_size: int = 128256

    @property
    def params(self) -> float:
        """Approximate parameter count."""
        attn = self.num_layers * (
            self.hidden_size * self.num_heads * self.head_dim  # Q
            + 2 * self.hidden_size * self.num_kv_heads * self.head_dim  # K,V
            + self.num_heads * self.head_dim * self.hidden_size  # O
        )
        mlp = self.num_layers * 3 * self.hidden_size * self.intermediate_size
        embed = 2 * self.vocab_size * self.hidden_size
        return attn + mlp + embed

    def param_bytes(self, bits: int) -> int:
        return int(self.params * bits / 8)

    def kv_bytes_per_token(self, bits: int = 16) -> int:
        """KV-cache bytes appended per token across all layers."""
        per_layer = 2 * self.num_kv_heads * self.head_dim
        return int(self.num_layers * per_layer * bits / 8)

    def flops_per_token(self) -> float:
        """Dense FLOPs to process one token (~2 x params)."""
        return 2.0 * self.params


LLAMA3_8B = LlamaConfig()


@dataclass(frozen=True)
class QuantConfig:
    """Weight quantization scheme."""

    name: str
    weight_bits: int
    # Extra compute factor for on-the-fly dequantization.
    dequant_overhead: float

    @property
    def is_quantized(self) -> bool:
        return self.weight_bits < 16


BF16 = QuantConfig("bf16", 16, 1.0)
# Activation-aware Weight Quantization: 4-bit weights, dequantized to
# FP16 inside the GEMM kernels (Sec. VII-B).  Cuts the memory-bound
# decode floor ~4x, but the dequantizing GEMMs cannot stream through
# the tensor cores, so per-token compute costs ~4.6x BF16 — which is
# why BF16 overtakes AWQ once decode turns compute-bound at batch
# 64-128 (the paper's crossover, Fig. 14).
AWQ = QuantConfig("awq", 4, 4.6)

QUANTS = {q.name: q for q in (BF16, AWQ)}
