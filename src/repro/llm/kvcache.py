"""Paged KV-cache block manager (the PagedAttention allocator that
powers the vLLM-style backend, Sec. VII-B).

A real data structure, not a cost model: fixed-size token blocks, a
free list, per-sequence block tables, append/free with exact
accounting.  Property-based tests assert conservation (free + used =
total), no double allocation, and correct capacity math.
"""

from __future__ import annotations

from typing import Dict, List


class KVCacheError(RuntimeError):
    pass


class OutOfBlocksError(KVCacheError):
    """The cache cannot serve the request right now."""


class PagedKVCache:
    """Block-granular KV cache over a fixed HBM budget."""

    def __init__(
        self,
        capacity_bytes: int,
        block_tokens: int,
        kv_bytes_per_token: int,
    ) -> None:
        if block_tokens <= 0 or kv_bytes_per_token <= 0:
            raise KVCacheError("block size and per-token bytes must be positive")
        self.block_tokens = block_tokens
        self.kv_bytes_per_token = kv_bytes_per_token
        self.block_bytes = block_tokens * kv_bytes_per_token
        self.num_blocks = capacity_bytes // self.block_bytes
        if self.num_blocks <= 0:
            raise KVCacheError("capacity smaller than one block")
        self._free: List[int] = list(range(self.num_blocks))
        self._tables: Dict[int, List[int]] = {}  # seq id -> block list
        self._lengths: Dict[int, int] = {}  # seq id -> token count

    # -- queries -----------------------------------------------------------

    @property
    def free_blocks(self) -> int:
        return len(self._free)

    @property
    def used_blocks(self) -> int:
        return self.num_blocks - len(self._free)

    @property
    def num_sequences(self) -> int:
        return len(self._tables)

    def sequence_length(self, seq_id: int) -> int:
        self._require(seq_id)
        return self._lengths[seq_id]

    def block_table(self, seq_id: int) -> List[int]:
        self._require(seq_id)
        return list(self._tables[seq_id])

    def blocks_needed(self, num_tokens: int) -> int:
        return (num_tokens + self.block_tokens - 1) // self.block_tokens

    def can_admit(self, prompt_tokens: int) -> bool:
        return self.blocks_needed(prompt_tokens) <= self.free_blocks

    def _require(self, seq_id: int) -> None:
        if seq_id not in self._tables:
            raise KVCacheError(f"unknown sequence {seq_id}")

    # -- lifecycle -----------------------------------------------------------

    def admit(self, seq_id: int, prompt_tokens: int) -> List[int]:
        """Allocate blocks for a new sequence's prompt."""
        if seq_id in self._tables:
            raise KVCacheError(f"sequence {seq_id} already admitted")
        if prompt_tokens <= 0:
            raise KVCacheError("prompt must have at least one token")
        needed = self.blocks_needed(prompt_tokens)
        if needed > len(self._free):
            raise OutOfBlocksError(
                f"need {needed} blocks, only {len(self._free)} free"
            )
        blocks = [self._free.pop() for _ in range(needed)]
        self._tables[seq_id] = blocks
        self._lengths[seq_id] = prompt_tokens
        return list(blocks)

    def append_token(self, seq_id: int) -> bool:
        """Account one generated token; returns True if a new block was
        allocated for it."""
        self._require(seq_id)
        length = self._lengths[seq_id]
        new_length = length + 1
        if self.blocks_needed(new_length) > len(self._tables[seq_id]):
            if not self._free:
                raise OutOfBlocksError("cache exhausted on decode")
            self._tables[seq_id].append(self._free.pop())
            self._lengths[seq_id] = new_length
            return True
        self._lengths[seq_id] = new_length
        return False

    def release(self, seq_id: int) -> int:
        """Free a finished sequence; returns blocks returned."""
        self._require(seq_id)
        blocks = self._tables.pop(seq_id)
        del self._lengths[seq_id]
        self._free.extend(blocks)
        return len(blocks)

    def check_invariants(self) -> None:
        held = [b for table in self._tables.values() for b in table]
        assert len(held) + len(self._free) == self.num_blocks, "block leak"
        combined = held + self._free
        assert len(set(combined)) == len(combined), "double allocation"
        for seq_id, table in self._tables.items():
            assert self.blocks_needed(self._lengths[seq_id]) == len(table), (
                f"table size mismatch for seq {seq_id}"
            )
