"""LLM serving backends (paper Sec. VII-B, Fig. 14).

Two backends with the structural differences that produce the paper's
Fig. 14 shape:

* :class:`HFBackend` — HuggingFace-style eager serving: static
  batching (every request in a batch decodes until the *longest* one
  finishes — padding waste), per-op Python dispatch, many kernel
  launches per decode step.
* :class:`VLLMBackend` — vLLM-style serving: continuous batching over
  a real :class:`PagedKVCache`, CUDA-graph decode (one launch per
  step), lean scheduler.

Quantization (BF16 vs AWQ) changes the decode roofline: AWQ's 4-bit
weights cut the memory-bound floor ~4x, but its dequantizing GEMMs pay
a large compute penalty, so BF16 overtakes AWQ once decode becomes
compute-bound at batch 64-128 — exactly the paper's crossover.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Generator, List, Optional, Sequence

import numpy as np

from .. import units
from ..config import SystemConfig
from ..cuda import CudaRuntime, run_app
from ..gpu import KernelSpec
from ..obs.metrics import percentile
from .config import BF16, LlamaConfig, QuantConfig
from .kvcache import PagedKVCache

# Eager HF serving: Python/dispatch overhead per decode step, plus
# per-op costs for the ops we model explicitly.
HF_STEP_PYTHON_NS = units.us(12_000)
HF_OPS_PER_STEP = 64
HF_OP_CPU_NS = units.us(20.0)
# vLLM scheduler bookkeeping per engine step (continuous batching).
VLLM_STEP_SCHED_NS = units.us(2_000)

PREFILL_EFFICIENCY = 0.60
DECODE_HBM_EFFICIENCY = 0.60
# AWQ fused kernels read quantized weights but with lower effective
# bandwidth than dense BF16 streams.
AWQ_MEM_FACTOR = 1.35


@dataclass(frozen=True)
class Request:
    req_id: int
    prompt_tokens: int
    gen_tokens: int


def make_requests(
    count: int,
    seed: int = 7,
    prompt_tokens: int = 128,
    gen_low: int = 32,
    gen_high: int = 160,
) -> List[Request]:
    """Batched requests with varied generation lengths (the variance is
    what static batching wastes and continuous batching recovers)."""
    rng = np.random.default_rng(seed)
    return [
        Request(i, prompt_tokens, int(rng.integers(gen_low, gen_high + 1)))
        for i in range(count)
    ]


@dataclass(frozen=True)
class ServeResult:
    backend: str
    quant: str
    cc: bool
    batch_size: int
    total_tokens: int
    elapsed_ns: int
    # Per-request latency samples (ns); empty tuples if not collected.
    ttft_ns: tuple = ()  # time to first token, per request
    e2e_ns: tuple = ()  # request completion latency, per request

    @property
    def tokens_per_sec(self) -> float:
        return self.total_tokens / units.to_sec(self.elapsed_ns)

    def ttft_ms(self, pct: float = 50) -> float:
        """Time-to-first-token percentile in milliseconds."""
        return units.to_ms(int(percentile(self.ttft_ns, pct)))

    def e2e_latency_ms(self, pct: float = 50) -> float:
        """Request end-to-end latency percentile in milliseconds."""
        return units.to_ms(int(percentile(self.e2e_ns, pct)))


class _BackendBase:
    name = "base"

    def __init__(
        self,
        model: Optional[LlamaConfig] = None,
        quant: QuantConfig = BF16,
    ) -> None:
        self.model = model or LlamaConfig()
        self.quant = quant

    # -- roofline pieces ---------------------------------------------------

    def _decode_step_kernel(
        self, config: SystemConfig, batch: int, avg_context: float
    ) -> KernelSpec:
        """One whole decode step as a fused kernel cost."""
        gpu = config.gpu
        weight_bytes = self.model.param_bytes(self.quant.weight_bits)
        mem_ns = (
            weight_bytes
            * (AWQ_MEM_FACTOR if self.quant.is_quantized else 1.0)
            / (gpu.hbm_bw * DECODE_HBM_EFFICIENCY)
            * units.NS_PER_SEC
        )
        kv_bytes = batch * avg_context * self.model.kv_bytes_per_token()
        kv_ns = kv_bytes / (gpu.hbm_bw * DECODE_HBM_EFFICIENCY) * units.NS_PER_SEC
        compute_ns = (
            batch
            * self.model.flops_per_token()
            * self.quant.dequant_overhead
            / (gpu.bf16_tensor_flops * 0.5)
            * units.NS_PER_SEC
        )
        duration = int(max(mem_ns + kv_ns, compute_ns)) + gpu.kernel_fixed_ns
        return KernelSpec(
            name=f"decode_{self.quant.name}_b{batch}",
            fixed_duration_ns=duration,
        )

    def _prefill_kernel(self, config: SystemConfig, tokens: int) -> KernelSpec:
        gpu = config.gpu
        compute_ns = (
            tokens
            * self.model.flops_per_token()
            / (gpu.bf16_tensor_flops * PREFILL_EFFICIENCY)
            * units.NS_PER_SEC
        )
        return KernelSpec(
            name=f"prefill_{self.quant.name}", fixed_duration_ns=int(compute_ns) + gpu.kernel_fixed_ns
        )

    # Public kernel builders for external schedulers (repro.serve
    # issues work through these so every step pays the same roofline).

    def decode_kernel(
        self, config: SystemConfig, batch: int, avg_context: float
    ) -> KernelSpec:
        return self._decode_step_kernel(config, batch, avg_context)

    def prefill_kernel(self, config: SystemConfig, tokens: int) -> KernelSpec:
        return self._prefill_kernel(config, tokens)

    def serve(
        self,
        config: SystemConfig,
        requests: Sequence[Request],
        batch_size: int,
    ) -> ServeResult:
        trace_label = f"{self.name}-{self.quant.name}-b{batch_size}"
        _trace, payload = run_app(
            self._serve_app,
            config,
            label=trace_label,
            requests=list(requests),
            batch_size=batch_size,
        )
        total_tokens, elapsed_ns, ttft, e2e = payload
        return ServeResult(
            backend=self.name,
            quant=self.quant.name,
            cc=config.cc_on,
            batch_size=batch_size,
            total_tokens=total_tokens,
            elapsed_ns=elapsed_ns,
            ttft_ns=tuple(ttft),
            e2e_ns=tuple(e2e),
        )

    def _serve_app(self, rt, requests, batch_size):  # pragma: no cover
        raise NotImplementedError


class HFBackend(_BackendBase):
    """Static batching, eager per-op dispatch, padding waste."""

    name = "hf"

    def _serve_app(
        self, rt: CudaRuntime, requests: List[Request], batch_size: int
    ) -> Generator:
        config = rt.config
        prompt_host = yield from rt.malloc_host(1 * units.MiB)
        token_host = yield from rt.malloc_host(64 * units.KiB)
        scratch_dev = yield from rt.malloc(4 * units.MiB)
        start = rt.sim.now
        total_tokens = 0
        ttft, e2e = [], []
        for index in range(0, len(requests), batch_size):
            batch = requests[index : index + batch_size]
            # Prompt upload (token ids) + prefill for the whole batch.
            prompt_bytes = sum(r.prompt_tokens for r in batch) * 4
            yield from rt.memcpy(scratch_dev, prompt_host, max(prompt_bytes, 64))
            yield from rt.launch(
                self._prefill_kernel(config, sum(r.prompt_tokens for r in batch))
            )
            # Static batching: decode until the LONGEST request is done.
            max_gen = max(r.gen_tokens for r in batch)
            avg_context = float(
                np.mean([r.prompt_tokens + r.gen_tokens / 2 for r in batch])
            )
            step_kernel = self._decode_step_kernel(config, len(batch), avg_context)
            for step in range(max_gen):
                # Eager Python + per-op driver register reads (#VE in TD).
                yield from rt.cpu_gap(HF_STEP_PYTHON_NS)
                for _op in range(HF_OPS_PER_STEP):
                    yield from rt.cpu_gap(HF_OP_CPU_NS)
                    if config.cc_on and _op % 8 == 0:
                        yield from rt.guest.hypercall("tdvmcall.mmio_read")
                yield from rt.launch(step_kernel)
                # Detokenize: copy the step's token ids back.
                yield from rt.memcpy(token_host, scratch_dev, 4 * len(batch))
                now = rt.sim.now
                if step == 0:
                    ttft.extend([now - start] * len(batch))
                for request in batch:
                    if request.gen_tokens == step + 1:
                        e2e.append(now - start)
            total_tokens += sum(r.gen_tokens for r in batch)
        yield from rt.synchronize()
        elapsed = rt.sim.now - start
        for buf in (prompt_host, token_host, scratch_dev):
            yield from rt.free(buf)
        return total_tokens, elapsed, ttft, e2e


class VLLMBackend(_BackendBase):
    """Continuous batching over a paged KV cache, CUDA-graph decode."""

    name = "vllm"

    def __init__(
        self,
        model: Optional[LlamaConfig] = None,
        quant: QuantConfig = BF16,
        kv_budget_bytes: int = 24 * units.GiB,
        block_tokens: int = 16,
    ) -> None:
        super().__init__(model, quant)
        self.kv_budget_bytes = kv_budget_bytes
        self.block_tokens = block_tokens

    def _serve_app(
        self, rt: CudaRuntime, requests: List[Request], batch_size: int
    ) -> Generator:
        config = rt.config
        cache = PagedKVCache(
            self.kv_budget_bytes,
            self.block_tokens,
            self.model.kv_bytes_per_token(),
        )
        prompt_host = yield from rt.malloc_host(1 * units.MiB)
        token_host = yield from rt.malloc_host(64 * units.KiB)
        scratch_dev = yield from rt.malloc(4 * units.MiB)
        waiting = list(requests)
        running = {}  # req -> tokens still to generate
        start = rt.sim.now
        total_tokens = 0
        ttft, e2e = [], []
        first_token_seen = set()
        while waiting or running:
            # Scheduler: admit while there is room (continuous batching).
            admitted = []
            while (
                waiting
                and len(running) < batch_size
                and cache.can_admit(waiting[0].prompt_tokens)
            ):
                request = waiting.pop(0)
                cache.admit(request.req_id, request.prompt_tokens)
                running[request.req_id] = request
                admitted.append(request)
            if admitted:
                prompt_bytes = sum(r.prompt_tokens for r in admitted) * 4
                yield from rt.memcpy(scratch_dev, prompt_host, max(prompt_bytes, 64))
                yield from rt.launch(
                    self._prefill_kernel(
                        config, sum(r.prompt_tokens for r in admitted)
                    )
                )
            if not running:
                continue
            # One engine step: scheduler bookkeeping + graph decode.
            yield from rt.cpu_gap(VLLM_STEP_SCHED_NS)
            contexts = [cache.sequence_length(rid) for rid in running]
            step_kernel = self._decode_step_kernel(
                config, len(running), float(np.mean(contexts))
            )
            yield from rt.launch(step_kernel)
            yield from rt.memcpy(token_host, scratch_dev, 4 * len(running))
            finished = []
            now = rt.sim.now
            for rid, request in running.items():
                cache.append_token(rid)
                total_tokens += 1
                if rid not in first_token_seen:
                    first_token_seen.add(rid)
                    ttft.append(now - start)
                generated = cache.sequence_length(rid) - request.prompt_tokens
                if generated >= request.gen_tokens:
                    finished.append(rid)
                    e2e.append(now - start)
            for rid in finished:
                cache.release(rid)
                del running[rid]
        yield from rt.synchronize()
        elapsed = rt.sim.now - start
        for buf in (prompt_host, token_host, scratch_dev):
            yield from rt.free(buf)
        return total_tokens, elapsed, ttft, e2e
