"""LLM inference workloads: Llama-3-8B serving on HF-style and
vLLM-style backends with BF16/AWQ quantization (paper Sec. VII-B)."""

from .backends import (
    HFBackend,
    Request,
    ServeResult,
    VLLMBackend,
    make_requests,
)
from .config import AWQ, BF16, LLAMA3_8B, LlamaConfig, QUANTS, QuantConfig
from .kvcache import KVCacheError, OutOfBlocksError, PagedKVCache

__all__ = [
    "AWQ",
    "BF16",
    "HFBackend",
    "KVCacheError",
    "LLAMA3_8B",
    "LlamaConfig",
    "OutOfBlocksError",
    "PagedKVCache",
    "QUANTS",
    "QuantConfig",
    "Request",
    "ServeResult",
    "VLLMBackend",
    "make_requests",
]
