"""Kernel descriptors and the roofline execution-time model.

Kernel execution time (KET) for non-UVM kernels follows a roofline:
``max(flops / peak_flops, bytes / hbm_bw) / efficiency`` plus a fixed
scheduling overhead.  The paper's Observation 5 — non-UVM KET is
essentially unaffected by CC (+0.48 % on average) — is modeled as a
small multiplicative factor; UVM kernels instead incur fault-driven
migration time computed by :mod:`repro.gpu.uvm`.
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace
from typing import Dict, Optional, Tuple

from .. import units
from ..config import GPUSpec

# Observation 5: average non-UVM KET increase under CC.
CC_KET_FACTOR = 1.0048

Precision = str  # "fp32" | "fp16" | "bf16" | "int8"


@dataclass(frozen=True)
class KernelSpec:
    """A GPU kernel's cost profile.

    Either give a ``fixed_duration_ns`` (microbenchmarks: the paper's
    PTX-nanosleep kernel, Listing 1) or FLOPs + HBM traffic for the
    roofline model.  ``managed_bytes`` is the managed-memory footprint
    the kernel touches (drives UVM far faults when the buffers are not
    resident).
    """

    name: str
    flops: float = 0.0
    mem_bytes: int = 0
    precision: Precision = "fp32"
    efficiency: Optional[float] = None
    fixed_duration_ns: Optional[int] = None
    # Managed (UVM) footprint touched by this kernel, per buffer role.
    managed_bytes: int = 0
    # Grid metadata (informational; occupancy folded into efficiency).
    grid: Tuple[int, int, int] = (1, 1, 1)
    block: Tuple[int, int, int] = (256, 1, 1)
    attrs: Dict[str, float] = field(default_factory=dict)

    def with_name(self, name: str) -> "KernelSpec":
        return replace(self, name=name)

    def peak_flops(self, gpu: GPUSpec) -> float:
        table = {
            "fp32": gpu.fp32_flops,
            "fp16": gpu.fp16_tensor_flops,
            "bf16": gpu.bf16_tensor_flops,
            "int8": gpu.int8_tensor_flops,
        }
        try:
            return table[self.precision]
        except KeyError:
            raise ValueError(f"unknown precision {self.precision!r}") from None

    def base_duration_ns(self, gpu: GPUSpec, cc: bool) -> int:
        """KET excluding UVM migration, including the tiny CC factor.

        Memoized per (gpu, cc): the spec, the GPUSpec and the mode are
        all immutable, and the driver + command processor re-evaluate
        this for every one of the ~30k launches in a figure cell.  The
        frozen dataclass still has a ``__dict__`` (no slots), so the
        cache hides there via ``object.__setattr__``.
        """
        cached = self.__dict__.get("_duration_cache")
        if (
            cached is not None
            and cached[0] is gpu
            and cached[1] == cc
        ):
            return cached[2]
        duration = self._compute_duration_ns(gpu, cc)
        object.__setattr__(self, "_duration_cache", (gpu, cc, duration))
        return duration

    def _compute_duration_ns(self, gpu: GPUSpec, cc: bool) -> int:
        if self.fixed_duration_ns is not None:
            duration = self.fixed_duration_ns
        else:
            eff = self.efficiency if self.efficiency is not None else gpu.default_efficiency
            if eff <= 0 or eff > 1:
                raise ValueError(f"efficiency must be in (0, 1], got {eff}")
            compute_ns = (
                self.flops / (self.peak_flops(gpu) * eff) * units.NS_PER_SEC
                if self.flops
                else 0.0
            )
            memory_ns = (
                self.mem_bytes / (gpu.hbm_bw * eff) * units.NS_PER_SEC
                if self.mem_bytes
                else 0.0
            )
            duration = int(max(compute_ns, memory_ns)) + gpu.kernel_fixed_ns
        if cc:
            duration = int(duration * CC_KET_FACTOR)
        return max(duration, 1)


def nanosleep_kernel(duration_ns: int, name: str = "nanosleep", unroll: int = 1) -> KernelSpec:
    """The paper's Listing-1 microbenchmark kernel.

    Runs for a fixed duration using PTX ``nanosleep``; ``unroll``
    mirrors the loop-unrolling parameter N_x used to control code size
    (it only affects the first-launch module-load cost, captured in
    attrs for the launch path).
    """
    return KernelSpec(
        name=name,
        fixed_duration_ns=duration_ns,
        attrs={"unroll": float(unroll)},
    )


def gemm_kernel(
    m: int,
    n: int,
    k: int,
    precision: Precision = "fp32",
    name: Optional[str] = None,
    efficiency: Optional[float] = None,
) -> KernelSpec:
    """Dense matmul cost: 2*m*n*k FLOPs, (mk + kn + mn) element traffic."""
    elem = {"fp32": 4, "fp16": 2, "bf16": 2, "int8": 1}[precision]
    return KernelSpec(
        name=name or f"gemm_{m}x{n}x{k}_{precision}",
        flops=2.0 * m * n * k,
        mem_bytes=(m * k + k * n + m * n) * elem,
        precision=precision,
        efficiency=efficiency,
    )


def elementwise_kernel(
    num_elements: int,
    flops_per_element: float = 1.0,
    bytes_per_element: int = 8,
    precision: Precision = "fp32",
    name: str = "elementwise",
    module_pages: Optional[int] = None,
) -> KernelSpec:
    """Memory-bound streaming kernel (axpy, activation, reduction...).

    ``module_pages`` marks unusually large kernel modules (heavily
    templated fat binaries), which pay proportionally more CC
    first-launch DMA-buffer setup.
    """
    attrs = {}
    if module_pages is not None:
        attrs["module_pages"] = float(module_pages)
    return KernelSpec(
        name=name,
        flops=num_elements * flops_per_element,
        mem_bytes=num_elements * bytes_per_element,
        precision=precision,
        attrs=attrs,
    )
