"""GPU device model: command processor, channels, copy/compute engines,
HBM, and the GMMU/UVM hookup (paper Sec. II-A, Fig. 2).

Commands arrive from the in-guest driver through an MMIO-configurable
channel (a bounded Store).  The command processor fetches commands
serially — paying a per-command fetch latency, plus an authentication/
decryption tax in CC mode that is the mechanism behind the paper's KQT
amplification (Observation 4) — and dispatches them to engines:

* compute engine: up to ``max_concurrent_kernels`` kernels in flight,
  per-stream ordering enforced via predecessor events;
* copy engines: one per direction (H2D / D2H / D2D), so transfers in
  opposite directions overlap but same-direction copies serialize.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Generator, List, Optional, Tuple

from ..config import CopyKind, MemoryKind, SystemConfig
from ..faults import DMA, FatalFault, FaultError
from ..mem import ExtentAllocator
from ..profiler import Trace, kernel_event, memcpy_event
from ..sim import Event, Resource, Simulator, Store
from ..tdx import GuestContext
from .kernels import KernelSpec
from .uvm import UVMManager


@dataclass(slots=True)
class KernelCommand:
    kernel: KernelSpec
    stream: int
    enqueued_ns: int
    done: Event
    predecessor: Optional[Event] = None
    # Managed buffers touched during execution: (uvm handle, bytes).
    managed_touches: List[Tuple[int, int]] = field(default_factory=list)
    # Launch-queue credit held since cudaLaunchKernel; released at
    # kernel completion (backpressures the CPU when the queue fills).
    credit: Optional[object] = None
    # Graph-chained commands after the first skip the per-command fetch
    # (the whole graph is fetched as one command packet).
    fetch_free: bool = False


@dataclass(slots=True)
class CopyCommand:
    copy_kind: CopyKind
    memory: MemoryKind
    size_bytes: int
    gpu_time_ns: int  # DMA/engine-resident portion, precomputed by driver
    stream: int
    enqueued_ns: int
    done: Event
    predecessor: Optional[Event] = None
    managed_label: bool = False  # Nsight labels CC pinned copies "Managed"
    # Graph-chained commands after the first skip the per-command fetch
    # (mirrors KernelCommand; copies are never graph-chained today).
    fetch_free: bool = False


class GPU:
    """The simulated H100 with its engines and memory."""

    def __init__(
        self,
        sim: Simulator,
        config: SystemConfig,
        guest: GuestContext,
        trace: Trace,
    ) -> None:
        self.sim = sim
        self.config = config
        self.guest = guest
        self.trace = trace
        self.hbm = ExtentAllocator(
            config.gpu.hbm_bytes, base=0x7_0000_0000, alignment=512
        )
        self.channel: Store = Store(sim)
        self.compute = Resource(sim, capacity=config.gpu.max_concurrent_kernels)
        self._copy_engines = {
            CopyKind.H2D: Resource(sim, capacity=1),
            CopyKind.D2H: Resource(sim, capacity=1),
            CopyKind.D2D: Resource(sim, capacity=1),
        }
        self.launch_credits = Resource(
            sim, capacity=config.launch.launch_queue_depth
        )
        self.uvm = UVMManager(sim, config, guest)
        self.commands_processed = 0
        # Config is immutable for the GPU's lifetime: precompute the
        # per-command fetch latency.  Hot instruments are cached lazily
        # on first use so the registry's register-on-lookup semantics
        # (the set of exported metric names) are unchanged.
        self._fetch_ns = self._fetch_latency_ns()
        self._cc = config.cc_on
        self._gpu_spec = config.gpu
        self._compute_inflight_gauge = None
        self._copy_inflight_gauge = None
        self._launch_depth_gauge = None
        sim.process(self._command_processor())

    # -- driver-facing API ---------------------------------------------------

    def submit(self, command) -> Event:
        """Enqueue a command (driver doorbell); returns the put event."""
        return self.channel.put(command)

    def copy_engine(self, kind: CopyKind) -> Resource:
        return self._copy_engines[kind]

    # -- command processing -----------------------------------------------

    def _fetch_latency_ns(self) -> int:
        spec = self.config.command
        latency = spec.fetch_ns
        if self.config.cc_on:
            latency += spec.cc_auth_extra_ns
        return latency

    def _command_processor(self) -> Generator:
        """Serial fetch/dispatch loop (the channel engine)."""
        while True:
            command = yield self.channel.get()
            if not command.fetch_free:
                yield self.sim.timeout(self._fetch_ns)
            self.commands_processed += 1
            if isinstance(command, KernelCommand):
                self.sim.process(self._run_kernel(command))
            elif isinstance(command, CopyCommand):
                self.sim.process(self._run_copy(command))
            else:
                raise TypeError(f"unknown command {command!r}")

    def _run_kernel(self, command: KernelCommand) -> Generator:
        if command.predecessor is not None and not command.predecessor.processed:
            try:
                yield command.predecessor
            except FaultError as exc:
                # Stream-ordered predecessor died: propagate the failure
                # down the stream without leaking the launch credit.
                if command.credit is not None:
                    self.launch_credits.release(command.credit)
                command.done.fail(exc)
                return
        slot = self.compute.request()
        yield slot
        scope = f"gpu:s{command.stream}"
        inflight = self._compute_inflight_gauge
        if inflight is None:
            inflight = self._compute_inflight_gauge = self.guest.metrics.gauge(
                "gpu.compute_inflight"
            )
        inflight.set(self.compute.in_use)
        try:
            exec_start = self.sim.now
            kqt = exec_start - command.enqueued_ns
            faulted_pages = 0
            uvm_used = bool(command.managed_touches)
            with self.guest.spans.span(
                command.kernel.name,
                "gpu.compute",
                scope=scope,
                stream=command.stream,
                kqt_ns=kqt,
            ):
                for handle, touched_bytes in command.managed_touches:
                    migrated, _elapsed = yield from self.uvm.gpu_touch(
                        handle, touched_bytes, scope=scope
                    )
                    alloc = self.uvm.allocation(handle)
                    faulted_pages += migrated // max(alloc.chunk_bytes, 1)
                yield self.sim.timeout(
                    command.kernel.base_duration_ns(self._gpu_spec, self._cc)
                )
            self.trace.add(
                kernel_event(
                    command.kernel.name,
                    exec_start,
                    self.sim.now - exec_start,
                    kqt_ns=kqt,
                    stream=command.stream,
                    uvm=uvm_used,
                    faulted_pages=faulted_pages,
                )
            )
        finally:
            self.compute.release(slot)
            inflight.set(self.compute.in_use)
        if command.credit is not None:
            self.launch_credits.release(command.credit)
            depth = self._launch_depth_gauge
            if depth is None:
                depth = self._launch_depth_gauge = self.guest.metrics.gauge(
                    "launch.queue_depth"
                )
            depth.set(self.launch_credits.in_use)
        command.done.succeed()

    def _run_copy(self, command: CopyCommand) -> Generator:
        if command.predecessor is not None and not command.predecessor.processed:
            try:
                yield command.predecessor
            except FaultError as exc:
                command.done.fail(exc)
                return
        engine = self._copy_engines[command.copy_kind].request()
        yield engine
        scope = f"gpu:s{command.stream}"
        inflight = self._copy_inflight_gauge
        if inflight is None:
            inflight = self._copy_inflight_gauge = self.guest.metrics.gauge(
                "gpu.copy_inflight"
            )
        inflight.set(
            sum(e.in_use for e in self._copy_engines.values())
        )
        try:
            with self.guest.spans.span(
                f"memcpy_{command.copy_kind.value}",
                "gpu.copy",
                scope=scope,
                stream=command.stream,
                bytes=command.size_bytes,
            ):
                yield from self._dma_with_retry(command, scope)
                start = self.sim.now
                yield self.sim.timeout(command.gpu_time_ns)
            self.trace.add(
                memcpy_event(
                    command.copy_kind,
                    start,
                    self.sim.now - start,
                    command.size_bytes,
                    command.memory,
                    stream=command.stream,
                    managed=command.managed_label,
                )
            )
        except FatalFault as exc:
            # Surface the failure to whoever synchronizes on the stream;
            # the engine slot is released by the finally below.
            command.done.fail(exc)
            return
        finally:
            self._copy_engines[command.copy_kind].release(engine)
            inflight.set(
                sum(e.in_use for e in self._copy_engines.values())
            )
        command.done.succeed()

    def _dma_with_retry(self, command: CopyCommand, scope: str = "cpu") -> Generator:
        """Consult the DMA fault site for an engine-resident transfer.

        Each injected transient error wastes the detected fraction of
        the transfer plus a link retrain, booked as RECOVERY time; retry
        exhaustion raises :class:`FatalFault`.
        """
        model = self.config.fault_model
        retry = self.config.retry
        attempt = 1
        while True:
            fault = self.guest.faults.draw(DMA)
            if fault is None:
                return
            start = self.sim.now
            wasted = (
                int(command.gpu_time_ns * model.dma_error_detect_fraction)
                + model.dma_retrain_ns
            )
            yield self.sim.timeout(wasted)
            if attempt >= retry.max_attempts:
                self.guest.record_recovery(
                    DMA, start, attempt, "fatal", fatal=True, scope=scope
                )
                raise FatalFault(DMA, attempt, fault)
            yield self.sim.timeout(retry.backoff_ns(attempt))
            self.guest.record_recovery(DMA, start, attempt, scope=scope)
            attempt += 1
