"""Unified Virtual Memory subsystem: GMMU far faults, migration,
prefetching, and CC "encrypted paging" (paper Sec. II-B, VI-A, VI-B).

Base mode: a GPU access to a non-resident managed page raises a far
fault; the CPU-side UVM driver services batches of faults (20-50 us
per batch) and migrates data in migration-chunk units, prefetching up
to a VA block when access density is high.

CC mode: migrated pages cannot be DMA'd directly from TD-private
memory, so every chunk round-trips through the bounce buffer with
AES-GCM ("encrypted paging"), per-chunk hypercalls are required, and
the effective chunk size collapses to ``cc_migration_chunk_bytes`` —
this is what blows UVM kernel time up by orders of magnitude
(Observation 5: average 188.87x, up to 164030x).
"""

from __future__ import annotations

from typing import Dict, Generator, Set

from .. import units
from ..config import SystemConfig
from ..tdx import GuestContext


class ManagedAllocation:
    """Residency bookkeeping for one cudaMallocManaged region."""

    def __init__(self, size: int, chunk_bytes: int) -> None:
        self.size = size
        self.chunk_bytes = chunk_bytes
        self.num_chunks = units.pages(size, chunk_bytes)
        self._on_gpu: Set[int] = set()
        self.last_touch_ns: int = 0

    def resident_chunks(self) -> int:
        return len(self._on_gpu)

    @property
    def resident_bytes(self) -> int:
        return len(self._on_gpu) * self.chunk_bytes

    def evict_all(self) -> int:
        """Drop every resident chunk; returns chunks evicted."""
        count = len(self._on_gpu)
        self._on_gpu.clear()
        return count

    def nonresident_in_prefix(self, byte_count: int) -> int:
        """Chunks within the first ``byte_count`` bytes not on the GPU."""
        wanted = min(units.pages(byte_count, self.chunk_bytes), self.num_chunks)
        return sum(1 for c in range(wanted) if c not in self._on_gpu)

    def mark_resident(self, byte_count: int) -> None:
        wanted = min(units.pages(byte_count, self.chunk_bytes), self.num_chunks)
        self._on_gpu.update(range(wanted))

    def evict_to_host(self, byte_count: int) -> int:
        """CPU touch pulls chunks back; returns chunks moved."""
        wanted = min(units.pages(byte_count, self.chunk_bytes), self.num_chunks)
        moved = sum(1 for c in range(wanted) if c in self._on_gpu)
        self._on_gpu.difference_update(range(wanted))
        return moved


class UVMManager:
    """Services far faults for all managed allocations of one machine."""

    def __init__(self, sim, config: SystemConfig, guest: GuestContext) -> None:
        self.sim = sim
        self.config = config
        self.guest = guest
        self._allocations: Dict[int, ManagedAllocation] = {}
        self._next_id = 1
        budget = config.uvm.oversubscription_budget_bytes
        self.budget_bytes = budget if budget is not None else config.gpu.hbm_bytes
        # Statistics
        self.total_faults = 0
        self.total_migrated_bytes = 0
        self.total_migration_ns = 0
        self.total_evicted_bytes = 0
        self.total_evictions = 0

    # -- allocation lifecycle ---------------------------------------------

    def register(self, size: int) -> int:
        """Create residency tracking for a managed buffer; returns id."""
        uvm = self.config.uvm
        chunk = (
            uvm.cc_migration_chunk_bytes
            if self.config.cc_on
            else uvm.migration_chunk_bytes
        )
        handle = self._next_id
        self._next_id += 1
        self._allocations[handle] = ManagedAllocation(size, chunk)
        return handle

    def unregister(self, handle: int) -> None:
        del self._allocations[handle]

    def allocation(self, handle: int) -> ManagedAllocation:
        return self._allocations[handle]

    # -- fault service -------------------------------------------------------

    def migration_chunk_time_ns(self, chunk_bytes: int) -> int:
        """Cost of moving one chunk H2D during fault service."""
        uvm = self.config.uvm
        if not self.config.cc_on:
            return units.transfer_time_ns(chunk_bytes, uvm.migration_bw)
        # Encrypted paging: software AES-GCM + bounce round trip + DMA.
        encrypt = self.guest.crypt_time_ns(chunk_bytes)
        dma = units.transfer_time_ns(chunk_bytes, self.config.pcie.dma_h2d_bw)
        hypercalls = uvm.cc_extra_fault_hypercalls * self.config.hypercall_ns()
        bounce_copy = units.transfer_time_ns(chunk_bytes, self.config.cpu.memcpy_bw)
        return encrypt + dma + hypercalls + bounce_copy

    # -- oversubscription / eviction ----------------------------------------

    @property
    def resident_bytes(self) -> int:
        return sum(a.resident_bytes for a in self._allocations.values())

    def _evict_for(
        self, handle: int, incoming_bytes: int, scope: str = "cpu"
    ) -> Generator:
        """LRU writeback until ``incoming_bytes`` fit in the budget.

        Whole allocations are evicted least-recently-touched first (the
        UVM driver evicts at VA-block granularity; allocation granularity
        is the coarsest — and most pessimistic — approximation, which is
        the regime that matters for thrash studies).
        """
        total_evicted_ns = 0
        while (
            self.resident_bytes + incoming_bytes > self.budget_bytes
        ):
            victims = [
                (a.last_touch_ns, h)
                for h, a in self._allocations.items()
                if h != handle and a.resident_chunks() > 0
            ]
            if not victims:
                break  # nothing else to evict; allow overshoot
            _when, victim_handle = min(victims)
            victim = self._allocations[victim_handle]
            evicted_chunks = victim.evict_all()
            self.total_evictions += 1
            self.total_evicted_bytes += evicted_chunks * victim.chunk_bytes
            # Writeback D2H: encrypted per chunk under CC, streamed in
            # base mode.
            if self.config.cc_on:
                writeback = evicted_chunks * self.migration_chunk_time_ns(
                    victim.chunk_bytes
                )
            else:
                writeback = units.transfer_time_ns(
                    evicted_chunks * victim.chunk_bytes,
                    self.config.uvm.migration_bw,
                )
            yield self.sim.timeout(max(writeback, 1))
            self.guest.spans.record(
                "uvm.evict",
                "dma",
                self.sim.now - max(writeback, 1),
                max(writeback, 1),
                scope=scope,
                bytes=evicted_chunks * victim.chunk_bytes,
            )
            total_evicted_ns += writeback
        return total_evicted_ns

    def gpu_touch(
        self, handle: int, byte_count: int, scope: str = "cpu"
    ) -> Generator:
        """A kernel touches the first ``byte_count`` bytes of a buffer.

        Simulates the fault/migration traffic needed to make them
        resident; returns (migrated_bytes, elapsed_ns).  Called from
        within the kernel-execution process, so the elapsed time
        extends KET — matching how the paper measures UVM kernels.
        """
        alloc = self._allocations[handle]
        alloc.last_touch_ns = self.sim.now
        missing = alloc.nonresident_in_prefix(byte_count)
        if missing == 0:
            return (0, 0)
        uvm = self.config.uvm
        chunk_bytes = alloc.chunk_bytes
        start = self.sim.now
        yield from self._evict_for(handle, missing * chunk_bytes, scope=scope)

        if self.config.cc_on:
            # Encrypted paging defeats batching: each chunk pays a
            # fault-service round trip.
            batches = missing
            chunks_per_batch = 1
        else:
            # Fault batching + prefetch: one service round trip brings
            # in up to a VA block (prefetch on) or a fault batch.
            if uvm.prefetch_enabled:
                chunks_per_batch = max(1, uvm.va_block_bytes // chunk_bytes)
            else:
                chunks_per_batch = max(
                    1, (uvm.fault_batch_pages * uvm.os_page_bytes) // chunk_bytes
                )
            batches = (missing + chunks_per_batch - 1) // chunks_per_batch

        # In base mode, prefetching and warp parallelism hide part of
        # the migration behind execution; encrypted paging under CC is
        # fully serialized on the CPU crypto worker.
        stall = 1.0 if self.config.cc_on else uvm.stall_fraction
        remaining = missing
        for _ in range(batches):
            in_batch = min(chunks_per_batch, remaining)
            remaining -= in_batch
            self.total_faults += 1
            batch_ns = uvm.fault_service_ns + (
                self.migration_chunk_time_ns(chunk_bytes) * in_batch
            )
            yield self.sim.timeout(max(1, int(batch_ns * stall)))
        alloc.mark_resident(byte_count)
        migrated = missing * chunk_bytes
        elapsed = self.sim.now - start
        self.total_migrated_bytes += migrated
        self.total_migration_ns += elapsed
        self.guest.spans.record(
            "uvm.migrate",
            "dma",
            start,
            elapsed,
            scope=scope,
            bytes=migrated,
            batches=batches,
        )
        self.guest.metrics.counter("uvm.migrated_bytes").inc(migrated)
        if self.config.cc_on:
            # Encrypted paging: every migrated chunk is AES-GCM'd.
            self.guest.metrics.counter("crypto.encrypted_bytes").inc(migrated)
        return (migrated, elapsed)

    def cpu_touch(self, handle: int, byte_count: int) -> Generator:
        """Host access migrates chunks back to CPU memory (D2H)."""
        alloc = self._allocations[handle]
        moved = alloc.evict_to_host(byte_count)
        if moved == 0:
            return (0, 0)
        start = self.sim.now
        chunk_bytes = alloc.chunk_bytes
        uvm = self.config.uvm
        if self.config.cc_on:
            for _ in range(moved):
                yield self.sim.timeout(uvm.fault_service_ns)
                yield self.sim.timeout(self.migration_chunk_time_ns(chunk_bytes))
        else:
            total = moved * chunk_bytes
            yield self.sim.timeout(uvm.fault_service_ns)
            yield self.sim.timeout(
                units.transfer_time_ns(total, uvm.migration_bw)
            )
        elapsed = self.sim.now - start
        self.guest.spans.record(
            "uvm.migrate_d2h",
            "dma",
            start,
            elapsed,
            bytes=moved * chunk_bytes,
        )
        self.guest.metrics.counter("uvm.migrated_bytes").inc(
            moved * chunk_bytes
        )
        if self.config.cc_on:
            self.guest.metrics.counter("crypto.encrypted_bytes").inc(
                moved * chunk_bytes
            )
        return (moved * chunk_bytes, elapsed)
