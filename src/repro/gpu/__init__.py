"""GPU device substrate: command processor, engines, HBM, GMMU/UVM,
and kernel cost models (paper Sec. II, Fig. 2)."""

from .device import GPU, CopyCommand, KernelCommand
from .kernels import (
    CC_KET_FACTOR,
    KernelSpec,
    elementwise_kernel,
    gemm_kernel,
    nanosleep_kernel,
)
from .uvm import ManagedAllocation, UVMManager

__all__ = [
    "CC_KET_FACTOR",
    "CopyCommand",
    "GPU",
    "KernelCommand",
    "KernelSpec",
    "ManagedAllocation",
    "UVMManager",
    "elementwise_kernel",
    "gemm_kernel",
    "nanosleep_kernel",
]
