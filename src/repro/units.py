"""Canonical units used throughout the simulator.

Time is represented as *integer nanoseconds* everywhere inside the
simulation core.  Integer time keeps the discrete-event scheduler fully
deterministic (no floating-point tie ambiguity) while still being fine
enough to resolve sub-microsecond driver activity.  Figures and reports
convert to microseconds/milliseconds at the edges.

Sizes are plain integers in bytes.  Bandwidths are floats in bytes per
second.
"""

from __future__ import annotations

# --- time ------------------------------------------------------------------

NS_PER_US = 1_000
NS_PER_MS = 1_000_000
NS_PER_SEC = 1_000_000_000


def ns(value: float) -> int:
    """Nanoseconds (identity, rounds to int)."""
    return int(round(value))


def us(value: float) -> int:
    """Microseconds -> nanoseconds."""
    return int(round(value * NS_PER_US))


def ms(value: float) -> int:
    """Milliseconds -> nanoseconds."""
    return int(round(value * NS_PER_MS))


def sec(value: float) -> int:
    """Seconds -> nanoseconds."""
    return int(round(value * NS_PER_SEC))


def to_us(t_ns: int) -> float:
    """Nanoseconds -> microseconds."""
    return t_ns / NS_PER_US


def to_ms(t_ns: int) -> float:
    """Nanoseconds -> milliseconds."""
    return t_ns / NS_PER_MS


def to_sec(t_ns: int) -> float:
    """Nanoseconds -> seconds."""
    return t_ns / NS_PER_SEC


# --- sizes -----------------------------------------------------------------

KiB = 1024
MiB = 1024 * KiB
GiB = 1024 * MiB

GB = 1_000_000_000  # decimal gigabyte, used for bandwidth reporting
MB = 1_000_000
KB = 1_000


def transfer_time_ns(size_bytes: int, bandwidth_bytes_per_sec: float) -> int:
    """Time to move ``size_bytes`` at ``bandwidth_bytes_per_sec``.

    Computed in exact integer arithmetic: the bandwidth float is taken
    as the rational it exactly represents (``as_integer_ratio``), so the
    result is correct to the nanosecond even when ``size * NS_PER_SEC``
    exceeds 2**53 — where the old float expression silently lost
    integer-ns precision for large model-load / KV-cache transfers.
    Rounding is round-half-to-even, matching what ``round()`` did on
    the float path.  Always at least 1 ns for a non-empty transfer so
    that events retain strict ordering.
    """
    if size_bytes <= 0:
        return 0
    if not bandwidth_bytes_per_sec > 0:  # also rejects NaN
        raise ValueError("bandwidth must be positive")
    try:
        num, den = bandwidth_bytes_per_sec.as_integer_ratio()
    except (OverflowError, ValueError):
        raise ValueError("bandwidth must be finite") from None
    # t = size * NS_PER_SEC / (num/den), rounded half-to-even.
    numerator = size_bytes * NS_PER_SEC * den
    quotient, remainder = divmod(numerator, num)
    twice = remainder * 2
    if twice > num or (twice == num and quotient % 2 == 1):
        quotient += 1
    return max(quotient, 1)


def bandwidth_gb_per_sec(size_bytes: int, duration_ns: int) -> float:
    """Achieved bandwidth in decimal GB/s for a transfer."""
    if duration_ns <= 0:
        return float("inf") if size_bytes > 0 else 0.0
    return size_bytes / (duration_ns / NS_PER_SEC) / GB


def pages(size_bytes: int, page_size: int) -> int:
    """Number of pages needed to hold ``size_bytes``."""
    if size_bytes <= 0:
        return 0
    return (size_bytes + page_size - 1) // page_size
