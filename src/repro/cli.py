"""Command-line interface: ``python -m repro <command>``.

Commands
--------
apps
    List the workload catalogue.
run APP [--cc] [--uvm] [--teeio] [--seed N] [--fault-plan P.json]
        [--fault-rate R] [--trace OUT.json]
    Run one app and print its metric/model dissection.
run --figures fig04,fig05,... | --all [--jobs N] [--force]
        [--no-cache] [--assert-cached] [--out DIR] [--cache-dir DIR]
    Run the figure/workload grid through the parallel experiment
    harness (repro.exec): unchanged cells come from the
    content-addressed cache under DIR/.cache, edited figures
    re-simulate across N worker processes.
figures [ID ...] [--out DIR]
    Regenerate paper figures (default: the fast ones) into DIR.
bandwidth [--sizes N ...]
    Print the Fig. 4a bandwidth table.
observations [N ...]
    Evaluate the paper's numbered observations.
attest [--cc]
    Run the SPDM GPU attestation flow and report its cost.
faults APP [--cc] [--uvm] [--fault-plan P.json | --fault-rate R]
    Run one app under a fault plan and print the per-site report.
serve [--rate R] [--duration 2s] [--tenants N] [--policy fcfs|spf]
        [--seed N] [--cc] [--process poisson|gamma] [--preemption
        swap|recompute] [--fault-plan P.json | --fault-rate R]
        [--deadline MS] [--ttft-timeout MS] [--shed-policy
        none|deadline|pushback] [--circuit-breaker] [--max-queue-depth N]
        [--max-restarts N] [--replicas N] [--tp N] [--pp N]
        [--link-policy naive|batched] [--placement round-robin|
        least-loaded|kv-affinity] [--autoscale-max N]
        [--verdict OUT.json] [--trace OUT.json]
        [--requests-out OUT.jsonl|csv] [--telemetry] [--json]
    Simulate a multi-tenant continuous-batching serving scenario
    (repro.serve), optionally under a fault plan with a degradation
    policy, and print its SLO summary; the verdict JSON is
    byte-deterministic for a given flag set.  --trace/--requests-out
    enable request-scoped telemetry (per-request Perfetto tracks,
    per-request CC-tax attribution records) without perturbing the
    verdict.  Any non-trivial topology flag (--replicas/--tp/--pp/
    --autoscale-max) routes the scenario through repro.serve.cluster:
    replica engines whose TP all-reduces ride the secure peer links
    and whose placement/attestation costs come from the same simulated
    CC stack.  Contradictory flag combinations (a --deadline that no
    shed policy enforces, a --circuit-breaker with no faults to trip
    it, telemetry outputs on a multi-replica cluster) exit 2 at parse
    time instead of being silently ignored.
serve report [scenario flags] [--top K] [--by-tenant] [--diff] [--json]
    Tail-latency forensics for one scenario: top-k slowest requests
    with per-request Sec.-V blame (T/E/L/Q/K/D/recovery + queueing),
    global percentiles recomputed from per-request records, optional
    per-tenant rollup, and (--diff, with --cc) a base-vs-CC
    attribution of the TTFT p99 delta.
trace export APP -o OUT.json [--cc] [--uvm] ...
    Run one app and write its full observability record (events,
    spans, metrics) as Perfetto-loadable Chrome-trace JSON.
trace summarize (APP [--cc] ... | --input TRACE.json)
    Per-layer time table, wall-clock attribution, Sec.-V model terms,
    metrics, and the longest spans.
trace diff APP [--uvm] | --base B.json --cc-trace C.json
    CC-on vs CC-off overhead attribution across the model terms, with
    a model-drift cross-check.
trace validate TRACE.json
    Check a trace file against the exporter schema.
check golden [CELLS ...] [--full] [--update]
    Verify figure payloads against the committed golden snapshots in
    results/golden/ (exit 4 = GOLDEN_DRIFT); --update refreshes them.
check accuracy [CELLS ...] [--full]
    Score each figure's reproduction error against the paper's
    reported values (exit 3 = ACCURACY_DRIFT on threshold breach).
check perf [--quick] [--update] [--band F]
    Time the grid (min-of-N wall clock + simulated-ns throughput) and
    gate against BENCH_baseline.json (exit 5 = PERF_REGRESSION).
"""

from __future__ import annotations

import argparse
import dataclasses
import os
import sys
from typing import List, Optional

from . import units
from .config import SystemConfig, resolve_system_configs
from .core import decompose, kernel_metrics, kernel_to_launch_ratio, launch_metrics
from .cuda import CudaError, Machine, run_app
from .faults import FaultError
from .mem.allocator import OutOfMemoryError
from .sim import SimulationError
from .workloads import CATALOG


def _config(args) -> SystemConfig:
    """Resolve CLI mode flags through the one shared resolution path
    (:func:`repro.config.resolve_system_configs`) so ``repro run`` and
    ``repro check`` can never disagree on what a flag means."""
    try:
        return resolve_system_configs(
            cc=args.cc,
            teeio=getattr(args, "teeio", False),
            seed=getattr(args, "seed", None),
            fault_plan=getattr(args, "fault_plan", ""),
            fault_rate=getattr(args, "fault_rate", None),
        )
    except ValueError as exc:
        raise SystemExit(str(exc))


def cmd_apps(_args) -> int:
    print(f"{'name':<14}{'suite':<12}{'uvm':<5}description")
    for name in sorted(CATALOG):
        info = CATALOG[name]
        print(f"{name:<14}{info.suite:<12}{'yes' if info.supports_uvm else 'no':<5}"
              f"{info.description}")
    return 0


def _cmd_run_grid(args) -> int:
    """``repro run --figures .../--all``: the parallel harness path."""
    from .exec import runner as exec_runner

    tokens = [
        token
        for chunk in (args.figures or [])
        for token in chunk.split(",")
        if token
    ]
    try:
        cells = exec_runner.resolve_cells(tokens)
    except ValueError as exc:
        raise SystemExit(str(exc))
    if args.all:
        cells += [
            cell_id
            for cell_id in exec_runner.default_cells(include_slow=True)
            if cell_id not in cells
        ]
    report = exec_runner.run_grid(
        cells,
        jobs=max(1, args.jobs),
        results_dir=args.out,
        cache_dir=args.cache_dir or None,
        force=args.force,
        use_cache=not args.no_cache,
    )
    print(report.render())
    if args.assert_cached and not report.all_cached():
        print(
            f"error: expected 100% cache hits, got "
            f"{report.stats.hits}/{len(report.outcomes)}",
            file=sys.stderr,
        )
        return 1
    return 0 if report.ok else 1


def cmd_run(args) -> int:
    if args.figures or args.all:
        if args.app:
            raise SystemExit(
                "repro run takes either APP or --figures/--all, not both"
            )
        return _cmd_run_grid(args)
    if not args.app:
        raise SystemExit(
            "repro run needs an APP (see `repro apps`), or "
            "--figures/--all for the experiment grid"
        )
    info = CATALOG[args.app]
    config = _config(args)
    machine = Machine(config, label=args.app)
    machine.run(info.app(args.uvm))
    trace = machine.trace
    launches = launch_metrics(trace)
    kernels = kernel_metrics(trace)
    mode = "cc" if args.cc else "base"
    if getattr(args, "teeio", False):
        mode += "+teeio"
    print(f"{args.app} [{mode}{' uvm' if args.uvm else ''}]  "
          f"span {units.to_ms(trace.span_ns()):.3f} ms")
    print(f"  launches {launches.count}  "
          f"KLO mean {units.to_us(launches.klo_stats().mean):.2f} us  "
          f"LQT mean {units.to_us(launches.lqt_stats().mean):.2f} us")
    print(f"  kernels  {kernels.count}  "
          f"KET mean {units.to_us(kernels.ket_stats().mean):.2f} us  "
          f"KQT mean {units.to_us(kernels.kqt_stats().mean):.2f} us")
    print(f"  KLR {kernel_to_launch_ratio(trace):.2f}")
    if config.faults.active:
        ledger = machine.guest.faults
        print(f"  faults   injected {ledger.total_injected}  "
              f"recovery {units.to_ms(trace.recovery_ns()):.3f} ms")
    print(decompose(trace).summary())
    if args.trace:
        with open(args.trace, "w") as handle:
            handle.write(trace.to_chrome_trace())
        print(f"chrome trace -> {args.trace}")
    return 0


# Figure generators that finish in ~seconds; fig13 (CNN) runs ~12 s and
# is included only when named explicitly.
_FAST_FIGURES = {
    "table1": lambda: _figures_module().table1_config.generate(),
    "fig01": lambda: _figures_module().fig01_overview.generate(),
    "fig03": lambda: _figures_module().fig03_model.generate(),
    "fig04a": lambda: _figures_module().fig04_bandwidth.generate_4a(),
    "fig04b": lambda: _figures_module().fig04_bandwidth.generate_4b(),
    "fig05": lambda: _figures_module().fig05_copytime.generate(),
    "fig06": lambda: _figures_module().fig06_alloc.generate(),
    "fig07": lambda: _figures_module().fig07_launch.generate(),
    "fig08": lambda: _figures_module().fig08_flamegraph.generate(),
    "fig09": lambda: _figures_module().fig09_ket.generate(),
    "fig10": lambda: _figures_module().fig10_events.generate(),
    "fig11": lambda: _figures_module().fig11_cdf.generate(),
    "fig12a": lambda: _figures_module().fig12_micro.generate_12a(),
    "fig12b": lambda: _figures_module().fig12_micro.generate_12b(),
}
_SLOW_FIGURES = {
    "fig12c": lambda: _figures_module().fig12_micro.generate_12c(),
    "fig13": lambda: _figures_module().fig13_cnn.generate(),
    "fig14": lambda: _figures_module().fig14_llm.generate(),
    "ext": lambda: None,  # expanded below
}
_EXTENSIONS = ("teeio", "crypto_scaling", "graph_fusion_cc",
               "oversubscription", "attestation", "multigpu",
               "model_load", "sensitivity", "distributed_training",
               "fault_recovery")


def _figures_module():
    from . import figures

    return figures


def cmd_figures(args) -> int:
    from .figures import (ext_cluster_serving, ext_fault_serving,
                          ext_recovered_serving, ext_serve_telemetry,
                          ext_serving, extensions)

    def _ext_result(ext_name):
        # The serving-family extensions live in their own modules
        # (they layer on repro.serve rather than the single-app
        # harness).
        if ext_name == "serving":
            return ext_serving.generate_serving()
        if ext_name == "fault_serving":
            return ext_fault_serving.generate_fault_serving()
        if ext_name == "serve_telemetry":
            return ext_serve_telemetry.generate_serve_telemetry()
        if ext_name == "cluster_serving":
            return ext_cluster_serving.generate_cluster_serving()
        if ext_name == "recovered_serving":
            return ext_recovered_serving.generate_recovered()
        return getattr(extensions, f"generate_{ext_name}")()

    serve_family = ("serving", "fault_serving", "serve_telemetry",
                    "cluster_serving", "recovered_serving")
    names = args.ids or sorted(_FAST_FIGURES)
    for name in names:
        if name in _FAST_FIGURES:
            result = _FAST_FIGURES[name]()
        elif name in ("fig12c", "fig13", "fig14"):
            result = _SLOW_FIGURES[name]()
        elif name == "ext":
            for ext_name in (*_EXTENSIONS, *serve_family):
                result = _ext_result(ext_name)
                print(result.to_text())
                print(f"[saved] {result.save(args.out)}\n")
            continue
        elif name in _EXTENSIONS or name in serve_family:
            result = _ext_result(name)
        else:
            known = (sorted(_FAST_FIGURES) + sorted(_SLOW_FIGURES)
                     + list(_EXTENSIONS) + list(serve_family))
            print(f"unknown figure {name!r}; known: {known}",
                  file=sys.stderr)
            return 2
        print(result.to_text())
        print(f"[saved] {result.save(args.out)}\n")
    return 0


def cmd_tune(args) -> int:
    """``repro tune``: Pareto auto-tuner over CC-mitigation pipelines.

    Enumerates a deterministic pass x config grid, runs every point
    through the content-addressed exec cache (resumable; parallel via
    ``--jobs``) and prints the Pareto frontier over (goodput, TTFT
    p99, CC overhead ratio) with claw-back attribution.
    """
    from .serve import parse_duration_ns
    from .tune import (
        FAMILY_ORDER,
        TuneError,
        TuneSpec,
        render_pareto_table,
        run_tune,
        tune_verdict_json,
    )

    families = tuple(
        token.strip() for token in args.passes.split(",") if token.strip()
    ) if args.passes else FAMILY_ORDER
    try:
        duration_s = parse_duration_ns(args.duration) / units.NS_PER_SEC
        spec = TuneSpec(
            families=families,
            grid=args.grid,
            rate=args.rate,
            duration_s=duration_s,
            tenants=args.tenants,
            seed=args.seed,
        )
        report = run_tune(
            spec,
            jobs=args.jobs,
            results_dir=args.out,
            cache_dir=args.cache_dir or None,
            force=args.force,
            use_cache=not args.no_cache,
        )
    except (TuneError, ValueError) as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2
    grid_report = report.grid_report
    print(
        f"tune[{spec.grid}] rate={spec.rate:g} rps, "
        f"{len(report.points)} pipelines over {'+'.join(spec.families)} "
        f"({grid_report.stats.hits} cached, "
        f"{len(grid_report.executed)} simulated)"
    )
    print(render_pareto_table(report))
    payload = tune_verdict_json(report)
    if args.verdict:
        with open(args.verdict, "w") as handle:
            handle.write(payload + "\n")
        print(f"verdict -> {args.verdict}")
    if args.pareto_out:
        with open(args.pareto_out, "w") as handle:
            handle.write(render_pareto_table(report) + "\n")
        print(f"pareto table -> {args.pareto_out}")
    if args.json:
        print(payload)
    return 0


def cmd_bandwidth(args) -> int:
    from .figures.fig04_bandwidth import generate_4a

    sizes = [int(s) for s in args.sizes] if args.sizes else None
    print(generate_4a(sizes=sizes).to_text())
    return 0


def cmd_observations(args) -> int:
    from .figures.observations import ALL_OBSERVATIONS

    numbers = [int(n) for n in args.numbers] or sorted(ALL_OBSERVATIONS)
    failures = 0
    for number in numbers:
        result = ALL_OBSERVATIONS[number]()
        status = "HOLDS" if result.holds else "FAILS"
        print(f"Observation {number}: {status}")
        print(f"  claim:  {result.claim}")
        print(f"  detail: {result.detail}")
        failures += 0 if result.holds else 1
    return 1 if failures else 0


def _apply_overrides(config: SystemConfig, settings: List[str]) -> SystemConfig:
    """Apply dotted-path overrides like ``tdx.td_hypercall_ns=3000``.

    Values parse as int, then float, then bool, then string.  Time
    fields take raw nanoseconds.
    """
    for setting in settings:
        if "=" not in setting:
            raise SystemExit(f"--set needs key=value, got {setting!r}")
        path, _, raw = setting.partition("=")
        parts = path.split(".")
        value: object
        for parser in (int, float):
            try:
                value = parser(raw)
                break
            except ValueError:
                continue
        else:
            value = {"true": True, "false": False}.get(raw.lower(), raw)
        if len(parts) == 1:
            try:
                config = config.replace(**{parts[0]: value})
            except (TypeError, ValueError) as exc:
                raise SystemExit(f"--set {setting!r}: {exc}")
            continue
        if len(parts) != 2:
            raise SystemExit(f"--set supports section.field paths, got {path!r}")
        section_name, field_name = parts
        section = getattr(config, section_name, None)
        if section is None or not hasattr(section, field_name):
            raise SystemExit(f"unknown config field {path!r}")
        try:
            config = config.replace(
                **{section_name: dataclasses.replace(section, **{field_name: value})}
            )
        except (TypeError, ValueError) as exc:
            # e.g. --set retry.backoff_factor=0.5: validated dataclasses
            # (RetryPolicy & co) raise in __post_init__; surface that as
            # a CLI argument error instead of a traceback.
            raise SystemExit(f"--set {setting!r}: {exc}")
    return config


def cmd_whatif(args) -> int:
    """Run one app under default CC and under CC with overrides."""
    info = CATALOG[args.app]
    baseline_cfg = SystemConfig.base()
    cc_cfg = SystemConfig.confidential()
    modified_cfg = _apply_overrides(cc_cfg, args.set or [])
    rows = []
    for label, config in (
        ("base", baseline_cfg),
        ("cc", cc_cfg),
        ("cc+overrides", modified_cfg),
    ):
        trace, _ = run_app(info.app(args.uvm), config, label=label)
        rows.append((label, trace.span_ns()))
    base_span = rows[0][1]
    print(f"what-if on {args.app}: {', '.join(args.set or [])}")
    for label, span in rows:
        print(f"  {label:<14}{units.to_ms(span):10.3f} ms   "
              f"{span / base_span:6.2f}x of base")
    default_cc = rows[1][1]
    modified = rows[2][1]
    direction = "faster" if modified < default_cc else "slower"
    print(f"  overrides make CC {abs(1 - modified / default_cc) * 100:.1f}% "
          f"{direction}")
    return 0


def cmd_analyze(args) -> int:
    """Apply the paper's model to an external chrome-trace capture."""
    from .profiler import load_chrome_trace

    trace = load_chrome_trace(args.trace)
    launches = launch_metrics(trace)
    kernels = kernel_metrics(trace)
    print(f"{args.trace}: {len(trace)} events, "
          f"span {units.to_ms(trace.span_ns()):.3f} ms")
    if launches.count:
        print(f"  launches {launches.count}  "
              f"KLO mean {units.to_us(launches.klo_stats().mean):.2f} us  "
              f"LQT mean {units.to_us(launches.lqt_stats().mean):.2f} us")
    if kernels.count:
        print(f"  kernels  {kernels.count}  "
              f"KET mean {units.to_us(kernels.ket_stats().mean):.2f} us  "
              f"KQT mean {units.to_us(kernels.kqt_stats().mean):.2f} us")
        print(f"  KLR {kernel_to_launch_ratio(trace):.2f}")
    print(decompose(trace).summary())
    return 0


def cmd_report(args) -> int:
    from .figures.report import render

    print(render(args.dir))
    return 0


def _write_check_outputs(args, gate: str, report) -> None:
    """Persist a gate's verdict JSON (always) and text report (opt-in)."""
    from .check.gate import write_verdict

    verdict_path = args.verdict or os.path.join(
        args.out if hasattr(args, "out") else "results",
        "check", f"{gate}_verdict.json",
    )
    write_verdict(verdict_path, gate, report.verdict, report.details())
    if getattr(args, "report", ""):
        with open(args.report, "w") as handle:
            handle.write(report.render() + "\n")


def cmd_check(args) -> int:
    """``repro check golden|accuracy|perf``: the regression gates."""
    from .check import gate as check_gate

    if args.check_command == "golden":
        from .check.golden import check_golden

        cells = check_gate.gate_cells(args.cells, full=args.full)
        report = check_golden(
            cells,
            results_dir=args.out,
            golden_dir=args.golden_dir or None,
            jobs=max(1, args.jobs),
            update=args.update,
            use_cache=not args.no_cache,
        )
        print(report.render())
        _write_check_outputs(args, "golden", report)
        return report.exit_code

    if args.check_command == "accuracy":
        from .check.accuracy import check_accuracy

        cells = check_gate.gate_cells(args.cells, full=args.full)
        report = check_accuracy(
            cells,
            results_dir=args.out,
            jobs=max(1, args.jobs),
            use_cache=not args.no_cache,
        )
        print(report.render())
        _write_check_outputs(args, "accuracy", report)
        return report.exit_code

    if args.check_command == "perf":
        from .check import perf as check_perf

        baseline_path = args.baseline or check_perf.default_baseline_path()
        baseline = None
        if not args.update:
            # Fail fast on a missing/bad baseline before timing anything.
            try:
                baseline = check_perf.load_baseline(baseline_path)
            except FileNotFoundError:
                print(
                    f"error: no perf baseline at {baseline_path}; record one "
                    f"with `repro check perf --update`",
                    file=sys.stderr,
                )
                return 1
            except ValueError as exc:
                print(f"error: {exc}", file=sys.stderr)
                return 1
        entries = check_perf.measure(
            check_perf.perf_cells(quick=args.quick), repeats=args.repeats
        )
        if args.update:
            path = check_perf.save_baseline(entries, baseline_path, args.repeats)
            print(f"perf baseline written -> {path}")
            return 0
        report = check_perf.compare(
            baseline, entries, band=args.band, baseline_path=baseline_path
        )
        print(report.render())
        _write_check_outputs(args, "perf", report)
        return report.exit_code

    raise SystemExit(f"unknown check subcommand {args.check_command!r}")


def cmd_attest(args) -> int:
    from .sim import Simulator
    from .tdx import GuestContext, attest_gpu

    config = _config(args)
    sim = Simulator()
    guest = GuestContext(sim, config)
    session = sim.run(until=sim.process(attest_gpu(sim, guest, config)))
    print(f"SPDM session established ({'TD' if args.cc else 'VM'})")
    print(f"  messages:        {session.messages}")
    print(f"  elapsed:         {units.to_ms(session.elapsed_ns):.3f} ms")
    print(f"  session key:     {session.session_key.hex()}")
    print(f"  transcript hash: {session.transcript_hash.hex()}")
    print(f"  measurement:     {session.measurement.hex()[:32]}...")
    return 0


def cmd_faults(args) -> int:
    """Run one app under a fault plan and print the per-site report."""
    info = CATALOG[args.app]
    if not args.fault_plan and args.fault_rate is None:
        args.fault_rate = 0.01  # a visible default for the report
    config = _config(args)
    machine = Machine(config, label=args.app)
    machine.run(info.app(args.uvm))
    trace, ledger = machine.trace, machine.guest.faults
    span = trace.span_ns()
    mode = "cc" if args.cc else "base"
    print(f"fault report: {args.app} [{mode}{' uvm' if args.uvm else ''}] "
          f"seed={config.seed}")
    print(f"  {'site':<18}{'visits':>8}{'injected':>10}{'retried':>9}"
          f"{'fatal':>7}{'recovery_ms':>13}")
    for site, visits, injected, retried, fatal, rec_ns in ledger.report_rows():
        print(f"  {site:<18}{visits:>8}{injected:>10}{retried:>9}{fatal:>7}"
              f"{units.to_ms(rec_ns):>13.3f}")
    recovery = trace.recovery_ns()
    share = 100.0 * recovery / span if span else 0.0
    print(f"  injected {ledger.total_injected} total; recovery "
          f"{units.to_ms(recovery):.3f} ms = {share:.2f}% of "
          f"{units.to_ms(span):.3f} ms span")
    return 0


def _run_traced(args, cc: bool, label_suffix: str = ""):
    """Run one catalogue app with observability on; returns the trace."""
    info = CATALOG[args.app]
    args_cc_saved = args.cc if hasattr(args, "cc") else False
    args.cc = cc
    config = _config(args)
    args.cc = args_cc_saved
    machine = Machine(config, label=f"{args.app}{label_suffix}")
    machine.run(info.app(getattr(args, "uvm", False)))
    return machine.trace


def _build_serve_spec(args):
    """ScenarioSpec from the shared serve/`serve report` flag set."""
    from .serve import ScenarioSpec, parse_duration_ns

    return ScenarioSpec(
        rate_rps=args.rate,
        duration_ns=parse_duration_ns(args.duration),
        tenants=args.tenants,
        policy=args.policy,
        seed=args.seed if args.seed is not None else 42,
        process=args.process,
        max_num_seqs=args.max_num_seqs,
        max_batch_tokens=args.max_batch_tokens,
        preemption=args.preemption,
        kv_budget_bytes=args.kv_budget_mib * units.MiB,
        deadline_ms=args.deadline,
        ttft_timeout_ms=args.ttft_timeout,
        shed_policy=args.shed_policy,
        circuit_breaker=args.circuit_breaker,
        max_queue_depth=args.max_queue_depth,
        max_engine_restarts=args.max_restarts,
    )


def _write_requests(attributions, path: str) -> None:
    """Per-request export: CSV by extension, JSONL otherwise."""
    from .serve import requests_csv, requests_jsonl

    payload = (
        requests_csv(attributions)
        if path.endswith(".csv")
        else requests_jsonl(attributions)
    )
    with open(path, "w") as handle:
        handle.write(payload)
    print(f"per-request records -> {path}")


def _validate_serve_args(args) -> None:
    """Reject contradictory serve flag combinations at parse time.

    Each of these combos used to parse cleanly and then be silently
    ignored (a --deadline under shed_policy="none" never sheds
    anything; a --circuit-breaker with no fault plan never trips).
    Contradictions exit 2 with the usage line, the same contract as
    the argparse-level value validators.
    """
    from .serve.parallelism import MAX_WORLD_SIZE, TP_DEGREES

    error = args._serve_parser.error
    faults = bool(args.fault_plan) or args.fault_rate is not None
    if args.circuit_breaker and not faults:
        error("--circuit-breaker never trips without "
              "--fault-plan/--fault-rate")
    if (args.deadline or args.ttft_timeout) and args.shed_policy == "none":
        error("--deadline/--ttft-timeout are never enforced under "
              "--shed-policy none; use deadline or pushback")
    if args.shed_policy == "deadline" and not (
            args.deadline or args.ttft_timeout):
        error("--shed-policy deadline needs --deadline and/or "
              "--ttft-timeout to enforce")
    if args.max_queue_depth and args.shed_policy != "pushback":
        error("--max-queue-depth is only read by --shed-policy pushback")
    if (args.shed_policy == "pushback" and not args.max_queue_depth
            and not faults):
        error("--shed-policy pushback with no --max-queue-depth and no "
              "fault flags never sheds anything")
    # Cluster topology (serve only; `serve report` has no cluster flags).
    replicas = getattr(args, "replicas", 1)
    tp = getattr(args, "tp", 1)
    pp = getattr(args, "pp", 1)
    autoscale = getattr(args, "autoscale_max", 0)
    if tp not in TP_DEGREES:
        error(f"--tp must be one of {TP_DEGREES}, got {tp}")
    if tp * pp > MAX_WORLD_SIZE:
        error(f"--tp x --pp must fit the {MAX_WORLD_SIZE}-GPU node, "
              f"got {tp * pp}")
    if autoscale and autoscale < replicas:
        error(f"--autoscale-max ({autoscale}) is a ceiling and must be "
              f">= --replicas ({replicas})")
    if getattr(args, "link_policy", "naive") != "naive" and tp == 1:
        error("--link-policy only shapes tp>1 peer links; add --tp 2/4/8")
    if (getattr(args, "placement", "round-robin") != "round-robin"
            and replicas == 1 and not autoscale):
        error("--placement needs --replicas > 1 or --autoscale-max "
              "(one fixed replica leaves nothing to place)")
    if (replicas > 1 or autoscale > replicas) and (
            args.trace or args.requests_out
            or getattr(args, "telemetry", False)):
        error("--trace/--requests-out/--telemetry need a single-replica "
              "cluster (per-request clocks are per-engine)")


def _cmd_serve_cluster(args) -> int:
    """``repro serve`` with a non-trivial topology: the cluster path."""
    from .serve import ClusterSpec, cluster_verdict_json, run_cluster

    telemetry = bool(args.trace or args.requests_out or args.telemetry)
    try:
        spec = ClusterSpec(
            scenario=_build_serve_spec(args),
            replicas=args.replicas,
            tp=args.tp,
            pp=args.pp,
            link_policy=args.link_policy,
            placement=args.placement,
            autoscale_max=args.autoscale_max,
        )
        traces, result = run_cluster(
            spec, _config(args), telemetry=telemetry
        )
    except ValueError as exc:
        raise SystemExit(str(exc))
    report = result.report
    router = result.router
    mode = "cc" if result.cc else "base"
    print(
        f"serve-cluster[{mode}] tp={spec.tp} pp={spec.pp} "
        f"replicas={router['replicas_started']}->"
        f"{router['replicas_final']} placement={spec.placement} "
        f"rate={spec.scenario.rate_rps:g} rps x "
        f"{spec.scenario.tenants} tenants, seed {spec.scenario.seed}"
    )
    print(
        f"  requests {result.requests}  completed {report['completed']}  "
        f"rejected {report['rejected']}"
    )
    print(
        f"  goodput {report['goodput_rps']:.2f} rps  "
        f"ttft p50/p99 {report['ttft_ms']['p50']:.2f}/"
        f"{report['ttft_ms']['p99']:.2f} ms  "
        f"elapsed {units.to_ms(result.elapsed_ns):.1f} ms"
    )
    ups = [e for e in router["autoscale_events"]
           if e["action"] == "scale-up"]
    print(
        f"  router   ingress {router['ingress_ns'] / 1e3:.1f} us  "
        f"attest {router['attest_ms']:.2f} ms  "
        f"spills {router['affinity_spills']}  scale-ups {len(ups)}"
    )
    for outcome in result.replicas:
        stats = outcome.engine.stats
        comm = ""
        if "tp_comm_ns" in stats or "pp_comm_ns" in stats:
            comm = (
                f"  tp_comm {units.to_ms(stats.get('tp_comm_ns', 0)):.1f}"
                f" ms  pp_comm "
                f"{units.to_ms(stats.get('pp_comm_ns', 0)):.1f} ms"
            )
        print(
            f"  replica {outcome.replica_id}: {outcome.requests} reqs  "
            f"goodput {outcome.report['goodput_rps']:.2f} rps{comm}"
        )
    payload = cluster_verdict_json(result)
    if args.verdict:
        with open(args.verdict, "w") as handle:
            handle.write(payload + "\n")
        print(f"verdict -> {args.verdict}")
    if args.trace:
        with open(args.trace, "w") as handle:
            handle.write(traces[0].to_chrome_trace())
        print(f"chrome trace -> {args.trace}")
    if args.requests_out:
        _write_requests(result.attributions, args.requests_out)
    if args.json:
        print(payload)
    return 0


def cmd_serve(args) -> int:
    """``repro serve``: one multi-tenant serving scenario + verdict."""
    from .serve import run_scenario, verdict_json

    if getattr(args, "serve_command", None) == "report":
        return cmd_serve_report(args)

    _validate_serve_args(args)
    if (args.replicas > 1 or args.tp > 1 or args.pp > 1
            or args.autoscale_max > 0):
        return _cmd_serve_cluster(args)

    # Telemetry is pure bookkeeping (the verdict is byte-identical
    # either way); enable it whenever an output wants the per-request
    # records.
    telemetry = bool(args.trace or args.requests_out or args.telemetry)
    try:
        spec = _build_serve_spec(args)
        trace, result = run_scenario(
            spec, _config(args), telemetry=telemetry
        )
    except ValueError as exc:
        raise SystemExit(str(exc))
    report = result.report
    mode = "cc" if result.cc else "base"
    print(
        f"serve[{mode}] policy={spec.policy} rate={spec.rate_rps:g} rps "
        f"x {spec.tenants} tenants ({spec.process}), seed {spec.seed}"
    )
    print(
        f"  requests {result.requests}  completed {report['completed']}  "
        f"rejected {report['rejected']}  "
        f"preemptions {result.engine.stats['preemptions']}"
    )
    if result.faults and result.faults["active"]:
        stats = result.engine.stats
        print(
            f"  faults   injected {stats['faults_injected']}  "
            f"shed {stats['shed']}  failed {stats['failed']}  "
            f"restarts {stats['restarts']}  "
            f"breaker trips {stats['breaker_trips']}"
        )
    print(
        f"  goodput {report['goodput_rps']:.2f} rps  "
        f"throughput {report['throughput_tok_s']:.0f} tok/s  "
        f"elapsed {units.to_ms(result.engine.elapsed_ns):.1f} ms"
    )
    print(
        f"  ttft p50/p99 {report['ttft_ms']['p50']:.2f}/"
        f"{report['ttft_ms']['p99']:.2f} ms  "
        f"tpot p50/p99 {report['tpot_ms']['p50']:.2f}/"
        f"{report['tpot_ms']['p99']:.2f} ms"
    )
    payload = verdict_json(result)
    if args.verdict:
        with open(args.verdict, "w") as handle:
            handle.write(payload + "\n")
        print(f"verdict -> {args.verdict}")
    if args.trace:
        with open(args.trace, "w") as handle:
            handle.write(trace.to_chrome_trace())
        print(f"chrome trace -> {args.trace}")
    if args.requests_out:
        _write_requests(result.attributions, args.requests_out)
    if args.json:
        print(payload)
    return 0


def cmd_serve_report(args) -> int:
    """``repro serve report``: tail-latency forensics for a scenario.

    Runs the scenario with telemetry, prints the top-k slowest
    requests with per-request Sec.-V blame, the global percentiles
    recomputed from the per-request records, and (with ``--diff``) a
    base-vs-CC attribution of the TTFT p99 delta.
    """
    import json as json_mod

    from .config import SystemConfig
    from .serve import (
        forensics_diff,
        render_forensics_diff,
        render_tail_report,
        run_scenario,
        tail_report,
        tenant_rollup,
    )

    _validate_serve_args(args)
    try:
        spec = _build_serve_spec(args)
        config = _config(args)
        trace, result = run_scenario(spec, config, telemetry=True)
    except ValueError as exc:
        raise SystemExit(str(exc))
    attributions = result.attributions
    report = tail_report(attributions, top=args.top)
    rollup = tenant_rollup(attributions) if args.by_tenant else None
    mode = "cc" if result.cc else "base"
    print(
        f"serve report[{mode}] policy={spec.policy} "
        f"rate={spec.rate_rps:g} rps x {spec.tenants} tenants, "
        f"seed {spec.seed}"
    )
    print(render_tail_report(report, rollup))
    if args.diff:
        if not result.cc:
            raise SystemExit(
                "serve report --diff compares base vs CC: add --cc"
            )
        try:
            _, base_result = run_scenario(
                spec, SystemConfig.base(seed=config.seed), telemetry=True
            )
        except ValueError as exc:
            raise SystemExit(str(exc))
        print()
        print(render_forensics_diff(
            forensics_diff(base_result.attributions, attributions)
        ))
    if args.requests_out:
        _write_requests(attributions, args.requests_out)
    if args.trace:
        with open(args.trace, "w") as handle:
            handle.write(trace.to_chrome_trace())
        print(f"chrome trace -> {args.trace}")
    if args.json:
        print(json_mod.dumps(report, indent=1, sort_keys=True))
    return 0


def cmd_trace(args) -> int:
    from .obs import summary
    from .profiler import load_chrome_trace, validate_chrome_trace

    if args.trace_command == "export":
        trace = _run_traced(args, args.cc, label_suffix="|cc" if args.cc else "|base")
        with open(args.output, "w") as handle:
            handle.write(trace.to_chrome_trace())
        print(f"{trace.label}: {len(trace)} events, {len(trace.spans)} spans, "
              f"{len(trace.metrics)} metrics -> {args.output}")
        return 0

    if args.trace_command == "summarize":
        if args.input:
            trace = load_chrome_trace(args.input, label=args.input)
        else:
            if not args.app:
                raise SystemExit("trace summarize needs APP or --input")
            trace = _run_traced(args, args.cc)
        print(summary.summarize(trace, top=args.top))
        return 0

    if args.trace_command == "diff":
        if args.base or args.cc_trace:
            if not (args.base and args.cc_trace):
                raise SystemExit("--base and --cc-trace must be given together")
            base_trace = load_chrome_trace(args.base)
            cc_trace = load_chrome_trace(args.cc_trace)
        else:
            if not args.app:
                raise SystemExit("trace diff needs APP or --base/--cc-trace")
            base_trace = _run_traced(args, cc=False, label_suffix="|base")
            cc_trace = _run_traced(args, cc=True, label_suffix="|cc")
        result = summary.diff(base_trace, cc_trace, tolerance=args.tolerance)
        print(summary.render_diff(result))
        # Serving traces with per-request telemetry additionally get
        # the tail-forensics diff (which component moved the TTFT p99).
        if summary.serve_attributions(base_trace) and \
                summary.serve_attributions(cc_trace):
            from .serve import render_forensics_diff

            print()
            print(render_forensics_diff(
                summary.serve_tail_diff(base_trace, cc_trace)
            ))
        return 1 if result.flagged else 0

    if args.trace_command == "validate":
        with open(args.input) as handle:
            errors = validate_chrome_trace(handle.read())
        if errors:
            for error in errors:
                print(error, file=sys.stderr)
            print(f"{args.input}: {len(errors)} schema violation(s)",
                  file=sys.stderr)
            return 1
        print(f"{args.input}: valid")
        return 0

    raise SystemExit(f"unknown trace subcommand {args.trace_command!r}")


def _add_fault_args(parser: argparse.ArgumentParser) -> None:
    parser.add_argument("--seed", type=int, default=None,
                        help="override SystemConfig.seed")
    parser.add_argument("--fault-plan", default="", metavar="PLAN.json",
                        help="JSON fault plan (see examples/fault_plan.json)")
    parser.add_argument("--fault-rate", type=float, default=None, metavar="R",
                        help="uniform per-occurrence fault rate at all sites")


# Argparse-level validators: a bad value dies inside argument parsing
# with the standard usage message and exit code 2, before any simulator
# state exists.

def _positive_float(text: str) -> float:
    try:
        value = float(text)
    except ValueError:
        raise argparse.ArgumentTypeError(f"{text!r} is not a number")
    if not value > 0:
        raise argparse.ArgumentTypeError(f"must be > 0, got {text}")
    return value


def _positive_int(text: str) -> int:
    try:
        value = int(text)
    except ValueError:
        raise argparse.ArgumentTypeError(f"{text!r} is not an integer")
    if value < 1:
        raise argparse.ArgumentTypeError(f"must be >= 1, got {text}")
    return value


def _nonneg_int(text: str) -> int:
    try:
        value = int(text)
    except ValueError:
        raise argparse.ArgumentTypeError(f"{text!r} is not an integer")
    if value < 0:
        raise argparse.ArgumentTypeError(f"must be >= 0, got {text}")
    return value


def _nonneg_float(text: str) -> float:
    try:
        value = float(text)
    except ValueError:
        raise argparse.ArgumentTypeError(f"{text!r} is not a number")
    if value < 0:
        raise argparse.ArgumentTypeError(f"must be >= 0, got {text}")
    return value


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro", description=__doc__,
        formatter_class=argparse.RawDescriptionHelpFormatter,
    )
    sub = parser.add_subparsers(dest="command", required=True)

    sub.add_parser("apps", help="list the workload catalogue")

    run_p = sub.add_parser(
        "run", help="run one app and dissect it, or run the figure grid"
    )
    run_p.add_argument("app", nargs="?", choices=sorted(CATALOG))
    run_p.add_argument("--cc", action="store_true")
    run_p.add_argument("--uvm", action="store_true")
    run_p.add_argument("--teeio", action="store_true",
                       help="enable the TEE-IO what-if (with --cc)")
    run_p.add_argument("--trace", default="", help="chrome-trace output path")
    _add_fault_args(run_p)
    grid_group = run_p.add_argument_group(
        "experiment grid (repro.exec)",
        "fan figure cells out over worker processes with result caching",
    )
    grid_group.add_argument(
        "--figures", action="append", metavar="ID[,ID...]", default=None,
        help="grid cells to run (prefixes expand: fig04 -> fig04a,fig04b)",
    )
    grid_group.add_argument(
        "--all", action="store_true",
        help="run every grid cell, slow figures and extensions included",
    )
    grid_group.add_argument(
        "--jobs", type=int, default=1, metavar="N",
        help="worker processes for cache misses (default 1 = in-process)",
    )
    grid_group.add_argument(
        "--force", action="store_true",
        help="re-simulate every cell, refreshing its cache entry",
    )
    grid_group.add_argument(
        "--no-cache", action="store_true",
        help="bypass the result cache entirely (no reads, no writes)",
    )
    grid_group.add_argument(
        "--assert-cached", action="store_true",
        help="exit nonzero unless every cell was a cache hit",
    )
    grid_group.add_argument(
        "--out", default="results", metavar="DIR",
        help="results directory (default: results)",
    )
    grid_group.add_argument(
        "--cache-dir", default="", metavar="DIR",
        help="cache location (default: DIR_OUT/.cache)",
    )

    fig_p = sub.add_parser("figures", help="regenerate paper figures")
    fig_p.add_argument("ids", nargs="*",
                       help="figure ids (default: all fast figures)")
    fig_p.add_argument("--out", default="results")

    bw_p = sub.add_parser("bandwidth", help="Fig. 4a bandwidth table")
    bw_p.add_argument("--sizes", nargs="*", default=None)

    obs_p = sub.add_parser("observations", help="evaluate Observations 1-9")
    obs_p.add_argument("numbers", nargs="*", default=[])

    att_p = sub.add_parser("attest", help="run SPDM GPU attestation")
    att_p.add_argument("--cc", action="store_true")

    faults_p = sub.add_parser(
        "faults", help="run an app under a fault plan and report recovery"
    )
    faults_p.add_argument("app", choices=sorted(CATALOG))
    faults_p.add_argument("--cc", action="store_true")
    faults_p.add_argument("--uvm", action="store_true")
    _add_fault_args(faults_p)

    def _add_serve_scenario_args(parser: argparse.ArgumentParser) -> None:
        """Scenario flags shared by ``serve`` and ``serve report``."""
        parser.add_argument(
            "--rate", type=_positive_float, default=8.0,
            help="total offered arrival rate, req/s (default 8)")
        parser.add_argument(
            "--duration", default="2s", metavar="DUR",
            help="arrival window, e.g. 2s or 500ms (default 2s)")
        parser.add_argument(
            "--tenants", type=_positive_int, default=2,
            help="number of tenants sharing the rate (default 2)")
        parser.add_argument(
            "--policy", choices=("fcfs", "spf"), default="fcfs",
            help="admission order (default fcfs)")
        parser.add_argument(
            "--process", choices=("poisson", "gamma"), default="poisson",
            help="arrival process (gamma = bursty)")
        parser.add_argument("--cc", action="store_true")
        parser.add_argument(
            "--seed", type=_nonneg_int, default=None,
            help="arrival + platform seed (default 42)")
        parser.add_argument("--max-num-seqs", type=int, default=16)
        parser.add_argument("--max-batch-tokens", type=int, default=2048)
        parser.add_argument(
            "--preemption", choices=("swap", "recompute"), default="swap",
            help="KV-exhaustion policy (default swap)")
        parser.add_argument(
            "--kv-budget-mib", type=int, default=96,
            help="KV-cache HBM budget in MiB (default 96)")
        parser.add_argument(
            "--fault-plan", default="", metavar="PLAN.json",
            help="JSON fault plan (see examples/serve_fault_plan.json)")
        parser.add_argument(
            "--fault-rate", type=float, default=None, metavar="R",
            help="uniform per-occurrence fault rate at all sites")
        parser.add_argument(
            "--trace", default="", metavar="OUT.json",
            help="write the chrome trace here (enables telemetry: "
                 "per-request tracks + tagged engine ops)")
        parser.add_argument(
            "--requests-out", default="", metavar="OUT.jsonl|csv",
            help="write byte-deterministic per-request attribution "
                 "records (JSONL, or CSV by extension)")
        degrade_group = parser.add_argument_group(
            "degradation policy (repro.serve.lifecycle)",
            "how the engine degrades under faults instead of collapsing",
        )
        degrade_group.add_argument(
            "--deadline", type=_nonneg_float, default=0.0, metavar="MS",
            help="end-to-end deadline per request, ms (0 = none)")
        degrade_group.add_argument(
            "--ttft-timeout", type=_nonneg_float, default=0.0, metavar="MS",
            help="shed a queued request waiting longer than MS (0 = none)")
        degrade_group.add_argument(
            "--shed-policy", choices=("none", "deadline", "pushback"),
            default="none",
            help="load-shedding aggressiveness (default none)")
        degrade_group.add_argument(
            "--circuit-breaker", action="store_true",
            help="pause admission and drain during SPDM storms")
        degrade_group.add_argument(
            "--max-queue-depth", type=_nonneg_int, default=0, metavar="N",
            help="admission pushback threshold (0 = unbounded)")
        degrade_group.add_argument(
            "--max-restarts", type=_nonneg_int, default=2, metavar="N",
            help="engine crash-and-restart budget (default 2)")

    serve_p = sub.add_parser(
        "serve",
        help="simulate a multi-tenant serving scenario (repro.serve)",
    )
    serve_sub = serve_p.add_subparsers(dest="serve_command")
    serve_p.set_defaults(serve_command=None)
    _add_serve_scenario_args(serve_p)
    serve_p.add_argument("--verdict", default="", metavar="OUT.json",
                         help="write the deterministic verdict JSON here")
    serve_p.add_argument("--telemetry", action="store_true",
                         help="collect per-request telemetry even "
                              "without an output (zero perturbation)")
    serve_p.add_argument("--json", action="store_true",
                         help="print the verdict JSON to stdout")
    cluster_group = serve_p.add_argument_group(
        "cluster topology (repro.serve.cluster)",
        "replicated engines behind the tenant-aware router; any "
        "non-trivial value routes the scenario through the cluster path",
    )
    cluster_group.add_argument(
        "--replicas", type=_positive_int, default=1, metavar="N",
        help="fixed replica engines behind the router (default 1)")
    cluster_group.add_argument(
        "--tp", type=_positive_int, default=1, metavar="N",
        help="tensor-parallel degree per replica: 1, 2, 4 or 8")
    cluster_group.add_argument(
        "--pp", type=_positive_int, default=1, metavar="N",
        help="pipeline stages per replica (default 1)")
    cluster_group.add_argument(
        "--link-policy", choices=("naive", "batched"), default="naive",
        help="secure peer-link mode for tp>1 under --cc (default naive)")
    cluster_group.add_argument(
        "--placement",
        choices=("round-robin", "least-loaded", "kv-affinity"),
        default="round-robin",
        help="router placement policy (default round-robin)")
    cluster_group.add_argument(
        "--autoscale-max", type=_nonneg_int, default=0, metavar="N",
        help="autoscaler replica ceiling (0 = off); each scale-up "
             "pays a full SPDM attestation before serving")
    serve_p.set_defaults(_serve_parser=serve_p)

    sreport_p = serve_sub.add_parser(
        "report",
        help="tail-latency forensics: top-k slowest requests with "
             "per-request CC-tax blame",
    )
    _add_serve_scenario_args(sreport_p)
    sreport_p.add_argument("--top", type=_positive_int, default=5,
                           metavar="K",
                           help="slowest requests to show (default 5)")
    sreport_p.add_argument("--by-tenant", action="store_true",
                           help="append the per-tenant rollup")
    sreport_p.add_argument("--diff", action="store_true",
                           help="also run the base-mode scenario and "
                                "attribute the TTFT p99 delta "
                                "(requires --cc)")
    sreport_p.add_argument("--json", action="store_true",
                           help="print the forensics report as JSON")
    sreport_p.set_defaults(_serve_parser=sreport_p)

    tune_p = sub.add_parser(
        "tune",
        help="auto-tune CC-mitigation pass pipelines (Pareto search)",
    )
    tune_p.add_argument(
        "--passes", default="", metavar="FAMILIES",
        help="comma-separated pass families to search "
             "(default: fusion,overlap,batch,staging,quant)",
    )
    tune_p.add_argument(
        "--grid", choices=("small", "full"), default="small",
        help="config candidates per family (small: one each; "
             "full: widened numeric knobs)",
    )
    tune_p.add_argument(
        "--figure", choices=("ext_recovered_serving",),
        default="ext_recovered_serving",
        help="figure family providing the sweep cells",
    )
    tune_p.add_argument(
        "--rate", type=_positive_float, default=24.0, metavar="RPS",
        help="offered arrival rate to tune at (default 24)",
    )
    tune_p.add_argument(
        "--duration", default="2s", metavar="DUR",
        help="scenario duration, e.g. 2s or 500ms (default 2s)",
    )
    tune_p.add_argument(
        "--tenants", type=_positive_int, default=2, metavar="N",
    )
    tune_p.add_argument(
        "--seed", type=_nonneg_int, default=42, metavar="N",
    )
    tune_p.add_argument("--jobs", type=_positive_int, default=1, metavar="N")
    tune_p.add_argument(
        "--out", default=os.path.join("results", "tune"), metavar="DIR",
        help="per-point output dir (default results/tune)",
    )
    tune_p.add_argument(
        "--cache-dir", default="", metavar="DIR",
        help="content-addressed cache (default results/.cache, shared "
             "with 'repro run')",
    )
    tune_p.add_argument(
        "--force", action="store_true",
        help="recompute every point, refreshing cache entries",
    )
    tune_p.add_argument(
        "--no-cache", action="store_true",
        help="bypass the cache entirely (no reads, no writes)",
    )
    tune_p.add_argument(
        "--pareto-out", default="", metavar="PATH",
        help="also write the Pareto table to PATH (CI artifact)",
    )
    tune_p.add_argument(
        "--verdict", default="", metavar="PATH",
        help="write the byte-deterministic tune verdict JSON to PATH",
    )
    tune_p.add_argument("--json", action="store_true",
                        help="print the verdict JSON to stdout")

    trace_p = sub.add_parser(
        "trace", help="export / summarize / diff observability traces"
    )
    trace_sub = trace_p.add_subparsers(dest="trace_command", required=True)

    texp_p = trace_sub.add_parser(
        "export", help="run an app and write a Perfetto-loadable trace"
    )
    texp_p.add_argument("app", choices=sorted(CATALOG))
    texp_p.add_argument("-o", "--output", required=True,
                        help="chrome-trace JSON output path")
    texp_p.add_argument("--cc", action="store_true")
    texp_p.add_argument("--uvm", action="store_true")
    texp_p.add_argument("--teeio", action="store_true")
    _add_fault_args(texp_p)

    tsum_p = trace_sub.add_parser(
        "summarize", help="per-layer table, model terms, top spans"
    )
    tsum_p.add_argument("app", nargs="?", choices=sorted(CATALOG))
    tsum_p.add_argument("--input", default="",
                        help="summarize an exported trace file instead")
    tsum_p.add_argument("--top", type=int, default=10,
                        help="number of top spans to list")
    tsum_p.add_argument("--cc", action="store_true")
    tsum_p.add_argument("--uvm", action="store_true")
    tsum_p.add_argument("--teeio", action="store_true")
    _add_fault_args(tsum_p)

    tdiff_p = trace_sub.add_parser(
        "diff", help="CC-on vs CC-off overhead attribution"
    )
    tdiff_p.add_argument("app", nargs="?", choices=sorted(CATALOG))
    tdiff_p.add_argument("--base", default="",
                         help="CC-off trace file (with --cc-trace)")
    tdiff_p.add_argument("--cc-trace", default="",
                         help="CC-on trace file (with --base)")
    tdiff_p.add_argument("--tolerance", type=float, default=0.01,
                         help="model drift tolerance (default 1%%)")
    tdiff_p.add_argument("--uvm", action="store_true")
    tdiff_p.add_argument("--teeio", action="store_true")
    _add_fault_args(tdiff_p)

    tval_p = trace_sub.add_parser(
        "validate", help="check a trace file against the exporter schema"
    )
    tval_p.add_argument("input", help="chrome-trace JSON path")

    rep_p = sub.add_parser(
        "report", help="aggregate paper-vs-measured from results/"
    )
    rep_p.add_argument("--dir", default="results")

    check_p = sub.add_parser(
        "check",
        help="regression gates: golden snapshots, paper accuracy, perf budgets",
    )
    check_sub = check_p.add_subparsers(dest="check_command", required=True)

    def _add_gate_args(parser: argparse.ArgumentParser) -> None:
        parser.add_argument(
            "cells", nargs="*",
            help="grid cells to gate (default: the fast grid)",
        )
        parser.add_argument(
            "--full", action="store_true",
            help="gate the full grid, slow figures and extensions included",
        )
        parser.add_argument("--jobs", type=int, default=1, metavar="N")
        parser.add_argument("--out", default="results", metavar="DIR")
        parser.add_argument(
            "--no-cache", action="store_true",
            help="re-simulate every cell instead of serving cached payloads",
        )
        parser.add_argument(
            "--verdict", default="", metavar="PATH",
            help="verdict JSON path (default: OUT/check/<gate>_verdict.json)",
        )
        parser.add_argument(
            "--report", default="", metavar="PATH",
            help="also write the text report to PATH (CI artifact)",
        )

    cgold_p = check_sub.add_parser(
        "golden", help="verify results against results/golden/ snapshots"
    )
    _add_gate_args(cgold_p)
    cgold_p.add_argument(
        "--update", action="store_true",
        help="refresh the golden snapshots from the current run",
    )
    cgold_p.add_argument(
        "--golden-dir", default="", metavar="DIR",
        help="snapshot directory (default: results/golden next to the package)",
    )

    cacc_p = check_sub.add_parser(
        "accuracy", help="score reproduction error against the paper targets"
    )
    _add_gate_args(cacc_p)

    cperf_p = check_sub.add_parser(
        "perf", help="time the grid and gate against BENCH_baseline.json"
    )
    cperf_p.add_argument(
        "--quick", action="store_true",
        help="time only the quick smoke subset",
    )
    cperf_p.add_argument(
        "--update", action="store_true",
        help="record the current timings as the new baseline",
    )
    cperf_p.add_argument(
        "--baseline", default="", metavar="PATH",
        help="baseline file (default: BENCH_baseline.json at the repo root)",
    )
    cperf_p.add_argument(
        "--repeats", type=int, default=3, metavar="N",
        help="repeats per bench; min wall time is kept (default 3)",
    )
    cperf_p.add_argument(
        "--band", type=float, default=0.75, metavar="F",
        help="allowed slowdown fraction over baseline (default 0.75 = +75%%)",
    )
    cperf_p.add_argument("--out", default="results", metavar="DIR")
    cperf_p.add_argument("--verdict", default="", metavar="PATH")
    cperf_p.add_argument("--report", default="", metavar="PATH")

    ana_p = sub.add_parser(
        "analyze", help="apply the Sec.-V model to a chrome-trace file"
    )
    ana_p.add_argument("trace", help="chrome-trace JSON path")

    what_p = sub.add_parser(
        "whatif", help="run an app under CC with config overrides"
    )
    what_p.add_argument("app", choices=sorted(CATALOG))
    what_p.add_argument("--uvm", action="store_true")
    what_p.add_argument(
        "--set", action="append", metavar="SECTION.FIELD=VALUE",
        help="e.g. --set tdx.td_hypercall_ns=1300 --set tdx.teeio=true",
    )

    return parser


_COMMANDS = {
    "apps": cmd_apps,
    "run": cmd_run,
    "figures": cmd_figures,
    "bandwidth": cmd_bandwidth,
    "observations": cmd_observations,
    "attest": cmd_attest,
    "faults": cmd_faults,
    "report": cmd_report,
    "check": cmd_check,
    "serve": cmd_serve,
    "tune": cmd_tune,
    "trace": cmd_trace,
    "analyze": cmd_analyze,
    "whatif": cmd_whatif,
}


def main(argv: Optional[List[str]] = None) -> int:
    args = build_parser().parse_args(argv)
    try:
        return _COMMANDS[args.command](args)
    except (OutOfMemoryError, CudaError, FaultError, SimulationError) as exc:
        # One-line diagnostic, nonzero exit — no traceback spam for
        # well-understood runtime failures.
        print(f"error: {type(exc).__name__}: {exc}", file=sys.stderr)
        return 1


if __name__ == "__main__":  # pragma: no cover
    raise SystemExit(main())
