"""Tests for trace import: chrome-trace round trip and row import."""

import json

import pytest

from repro.config import CopyKind, SystemConfig
from repro.core import decompose, launch_metrics, kernel_metrics
from repro.cuda import run_app
from repro.gpu import nanosleep_kernel
from repro.profiler import (
    Trace,
    TraceImportError,
    from_chrome_trace,
    from_rows,
    kernel_event,
    load_chrome_trace,
    recovery_event,
)
from repro import units


def _app(rt):
    dev = yield from rt.malloc(4 * units.MiB)
    host = yield from rt.host_alloc(4 * units.MiB)
    yield from rt.memcpy(dev, host)
    for _ in range(3):
        yield from rt.launch(nanosleep_kernel(units.us(40), name="k"))
        yield from rt.synchronize()
    yield from rt.free(dev)
    yield from rt.free(host)


def test_chrome_roundtrip_preserves_metrics():
    trace, _ = run_app(_app, SystemConfig.confidential())
    clone = from_chrome_trace(trace.to_chrome_trace())
    assert len(clone) == len(trace)
    assert clone.span_ns() == trace.span_ns()
    original_launch = launch_metrics(trace)
    cloned_launch = launch_metrics(clone)
    assert cloned_launch.klo_ns == original_launch.klo_ns
    assert cloned_launch.lqt_ns == original_launch.lqt_ns
    assert kernel_metrics(clone).kqt_ns == kernel_metrics(trace).kqt_ns


def test_roundtrip_model_decomposition_identical():
    trace, _ = run_app(_app, SystemConfig.base())
    clone = from_chrome_trace(trace.to_chrome_trace())
    original = decompose(trace)
    imported = decompose(clone)
    assert imported.part_b_ns == original.part_b_ns
    assert imported.part_c_ns == original.part_c_ns
    assert imported.t_mem_ns == original.t_mem_ns
    assert imported.predicted_ns == original.predicted_ns


def test_memcpy_enums_revived():
    trace, _ = run_app(_app, SystemConfig.base())
    clone = from_chrome_trace(trace.to_chrome_trace())
    copy = clone.memcpys()[0]
    assert copy.attrs["copy_kind"] is CopyKind.H2D


def test_roundtrip_is_byte_identical():
    """Export -> import -> export reproduces the same bytes, both modes."""
    for config in (SystemConfig.base(), SystemConfig.confidential()):
        trace, _ = run_app(_app, config, label="rt")
        text = trace.to_chrome_trace()
        again = from_chrome_trace(text).to_chrome_trace()
        assert again == text


def test_roundtrip_preserves_recovery_queue_and_stream():
    trace = Trace(label="faulty")
    trace.add(kernel_event("k", 10, 100, kqt_ns=7, stream=3))
    trace.add(recovery_event("crypto.gcm_tag", 120, 40, attempt=2,
                             action="retry"))
    clone = from_chrome_trace(trace.to_chrome_trace())
    kernel = clone.kernels()[0]
    assert kernel.queue_ns == 7
    assert kernel.stream == 3
    (recovery,) = clone.recoveries()
    assert recovery.name == "recover:crypto.gcm_tag"
    assert recovery.start_ns == 120 and recovery.duration_ns == 40
    assert recovery.attrs["attempt"] == 2
    assert recovery.attrs["action"] == "retry"
    assert clone.recovery_ns() == trace.recovery_ns() == 40


def test_roundtrip_preserves_spans():
    trace, _ = run_app(_app, SystemConfig.confidential())
    clone = from_chrome_trace(trace.to_chrome_trace())
    assert len(clone.spans) == len(trace.spans)
    for original, revived in zip(trace.spans, clone.spans):
        assert revived.span_id == original.span_id
        assert revived.parent_id == original.parent_id
        assert revived.name == original.name
        assert revived.layer == original.layer
        assert revived.start_ns == original.start_ns
        assert revived.duration_ns == original.duration_ns
    assert clone.spans.layer_busy_ns() == trace.spans.layer_busy_ns()


def test_roundtrip_preserves_counters_and_gauges():
    trace, _ = run_app(_app, SystemConfig.confidential())
    clone = from_chrome_trace(trace.to_chrome_trace())
    assert clone.metrics.names() == trace.metrics.names()
    for original, revived in zip(
        trace.metrics.sampled(), clone.metrics.sampled()
    ):
        assert revived.kind == original.kind
        assert revived.series == original.series
    assert clone.metrics.counter("tdx.hypercalls").value > 0


def test_import_error_is_value_error():
    assert issubclass(TraceImportError, ValueError)
    with pytest.raises(TraceImportError):
        from_chrome_trace("{nope")


def test_load_from_file(tmp_path):
    trace, _ = run_app(_app, SystemConfig.base())
    path = tmp_path / "trace.json"
    path.write_text(trace.to_chrome_trace())
    clone = load_chrome_trace(str(path))
    assert len(clone) == len(trace)
    assert clone.label == str(path)


def test_foreign_events_skipped():
    payload = {
        "traceEvents": [
            {"ph": "M", "name": "process_name"},  # metadata
            {"ph": "X", "cat": "python", "name": "foreign", "ts": 0, "dur": 1},
            {"ph": "X", "cat": "kernel", "name": "k", "ts": 10.0, "dur": 5.0,
             "args": {"queue_us": 2.0}},
        ]
    }
    trace = from_chrome_trace(json.dumps(payload))
    assert len(trace) == 1
    kernel = trace.kernels()[0]
    assert kernel.start_ns == 10_000
    assert kernel.queue_ns == 2_000


def test_bare_array_variant_accepted():
    rows = [{"ph": "X", "cat": "sync", "name": "s", "ts": 0, "dur": 3}]
    trace = from_chrome_trace(json.dumps(rows))
    assert len(trace) == 1


def test_malformed_inputs_rejected():
    with pytest.raises(TraceImportError, match="invalid JSON"):
        from_chrome_trace("{nope")
    with pytest.raises(TraceImportError, match="traceEvents"):
        from_chrome_trace('{"other": 1}')
    with pytest.raises(TraceImportError, match="bad ts/dur"):
        from_chrome_trace(json.dumps(
            {"traceEvents": [{"ph": "X", "cat": "kernel", "name": "k",
                              "ts": "NaN?", "dur": None}]}
        ))
    with pytest.raises(TraceImportError, match="unknown copy kind"):
        from_chrome_trace(json.dumps(
            {"traceEvents": [{"ph": "X", "cat": "memcpy", "name": "m",
                              "ts": 0, "dur": 1,
                              "args": {"copy_kind": "sideways"}}]}
        ))


def test_from_rows_minimal():
    trace = from_rows(
        [
            ("launch", "k", 0.0, 5.0),
            ("kernel", "k", 8.0, 100.0, 3.0),
            ("memcpy", "h2d", 120.0, 40.0),
        ]
    )
    assert len(trace) == 3
    assert trace.kernels()[0].queue_ns == 3_000
    # The model runs on row-imported traces too.
    model = decompose(trace)
    assert model.span_ns == 160_000


def test_from_rows_validation():
    with pytest.raises(TraceImportError, match="unknown kind"):
        from_rows([("warp", "k", 0, 1)])
    with pytest.raises(TraceImportError, match="expected 4 or 5"):
        from_rows([("kernel",)])
