"""Regression and equivalence tests for the optimized event kernel.

The scheduler rewrite (calendar queue over per-timestamp buckets,
``__slots__`` event objects, inlined drain loops) is only acceptable if
it is *observably identical* to the reference (time, seq) heap it
replaced.  These tests pin that contract from three directions:

* API regressions the rewrite fixed: negative-delay ``succeed``/
  ``fail`` must raise before mutating the event, interrupting a
  terminated process must raise a clear error, and stale wakeups
  (e.g. a second interrupt racing a process's completion) must be
  ignored rather than corrupting generator state.
* A Hypothesis property: for arbitrary schedules — including
  same-timestamp storms and events that schedule more events when they
  fire — the bucketed queue drains in exactly the order a (time, seq)
  min-heap would.
* Pinned verdict digests for a storm-heavy serving scenario: the
  end-to-end byte-identity gate in miniature.
"""

import hashlib
import heapq

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.config import resolve_system_configs
from repro.serve import ScenarioSpec, run_scenario, verdict_json
from repro.sim import Interrupt, SimulationError, Simulator

# ---------------------------------------------------------------------------
# Negative-delay validation (succeed/fail must reject before mutating)


def test_succeed_negative_delay_raises_before_mutation():
    sim = Simulator()
    event = sim.event()
    with pytest.raises(SimulationError, match="delay must be >= 0"):
        event.succeed("value", delay=-1)
    # The rejected call must not have half-triggered the event: it is
    # still pending and still usable.
    assert not event.triggered
    event.succeed("value", delay=2)
    sim.run()
    assert event.processed and event.ok and event.value == "value"
    assert sim.now == 2


def test_fail_negative_delay_raises_before_mutation():
    sim = Simulator()
    event = sim.event()
    boom = RuntimeError("boom")
    with pytest.raises(SimulationError, match="delay must be >= 0"):
        event.fail(boom, delay=-3)
    assert not event.triggered
    # Still pending: the opposite resolution is legal too.
    event.succeed("recovered")
    sim.run()
    assert event.processed and event.ok and event.value == "recovered"


def test_negative_timeout_rejected():
    sim = Simulator()
    with pytest.raises(SimulationError, match="negative timeout delay"):
        sim.timeout(-1)


# ---------------------------------------------------------------------------
# Interrupting terminated processes / stale wakeups


def test_interrupt_terminated_process_raises():
    sim = Simulator()

    def proc():
        yield sim.timeout(1)

    process = sim.process(proc())
    sim.run()
    assert not process.is_alive
    with pytest.raises(SimulationError, match="terminated process"):
        process.interrupt("too late")


def test_double_interrupt_stale_wakeup_is_ignored():
    """A second interrupt delivered in the same tick must not resume a
    process that already finished handling the first one."""
    sim = Simulator()
    log = []

    def victim():
        try:
            yield sim.timeout(100)
        except Interrupt as exc:
            log.append(("interrupted", exc.cause))
        # Returns immediately: the second wake arrives after death.

    process = sim.process(victim())

    def interrupter():
        yield sim.timeout(1)
        process.interrupt("first")
        process.interrupt("second")

    sim.process(interrupter())
    sim.run()
    assert log == [("interrupted", "first")]
    assert not process.is_alive


def test_interrupted_process_can_keep_running():
    sim = Simulator()
    log = []

    def victim():
        try:
            yield sim.timeout(100)
        except Interrupt as exc:
            log.append((sim.now, exc.cause))
        yield sim.timeout(5)
        log.append((sim.now, "done"))

    process = sim.process(victim())

    def interrupter():
        yield sim.timeout(3)
        process.interrupt("poke")

    sim.process(interrupter())
    sim.run()
    assert log == [(3, "poke"), (8, "done")]


# ---------------------------------------------------------------------------
# Property: bucketed calendar queue == reference (time, seq) heap

# Each entry is (delay, children): a root event scheduled at t=delay
# that, when it fires, schedules one child per listed delay.  Small
# delay ranges force same-timestamp collisions (the storm case the
# bucketed queue exists for).
_SCHEDULES = st.lists(
    st.tuples(
        st.integers(min_value=0, max_value=4),
        st.lists(st.integers(min_value=0, max_value=4), max_size=3),
    ),
    max_size=12,
)


def _reference_order(schedule):
    """Drain the schedule through a classic (time, seq) min-heap."""
    order = []
    heap = []
    seq = 0
    for index, (delay, children) in enumerate(schedule):
        heapq.heappush(heap, (delay, seq, f"r{index}", children))
        seq += 1
    while heap:
        now, _, label, children = heapq.heappop(heap)
        order.append((now, label))
        for child_index, child_delay in enumerate(children):
            heapq.heappush(
                heap, (now + child_delay, seq, f"{label}.c{child_index}", ())
            )
            seq += 1
    return order


@settings(max_examples=200, deadline=None)
@given(schedule=_SCHEDULES)
def test_bucketed_queue_matches_reference_heap_order(schedule):
    expected = _reference_order(schedule)

    sim = Simulator()
    order = []

    def fire(label, children):
        def callback(_event):
            order.append((sim.now, label))
            for child_index, child_delay in enumerate(children):
                sim.timeout(child_delay).add_callback(
                    fire(f"{label}.c{child_index}", ())
                )

        return callback

    for index, (delay, children) in enumerate(schedule):
        sim.timeout(delay).add_callback(fire(f"r{index}", children))
    sim.run()
    assert order == expected


# ---------------------------------------------------------------------------
# End-to-end byte-identity: storm-heavy serving verdicts are pinned

#: SHA-256 of ``verdict_json`` for the pinned storm scenario below.
#: These digests predate the scheduler rewrite — any kernel change that
#: shifts event ordering, RNG draw order, or float accumulation breaks
#: them.  Do NOT update without a golden-gate review.
_STORM_DIGESTS = {
    False: "4a4e4c98db635536812815c8ef9cb6a6586b665d093e6cf7d96e938898aca0b0",
    True: "e62a8c551806cc070f69dea20f5667c6d6a16a6cd21e54df2a736b4e3d228cdb",
}


@pytest.mark.parametrize("cc", [False, True], ids=["base", "cc"])
def test_storm_serving_verdict_digest_pinned(cc):
    spec = ScenarioSpec(
        rate_rps=48.0,
        duration_ns=500_000_000,
        tenants=4,
        policy="fcfs",
        seed=11,
    )
    config = resolve_system_configs(cc=cc)
    _, result = run_scenario(spec, config)
    digest = hashlib.sha256(verdict_json(result).encode()).hexdigest()
    assert digest == _STORM_DIGESTS[cc]
