"""Unit + property tests for interval arithmetic."""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core import intervals


def test_merge_disjoint():
    assert intervals.merge([(0, 5), (10, 15)]) == [(0, 5), (10, 15)]


def test_merge_overlapping_and_touching():
    assert intervals.merge([(0, 5), (3, 8), (8, 10)]) == [(0, 10)]


def test_merge_ignores_empty():
    assert intervals.merge([(5, 5), (7, 3)]) == []


def test_union_length():
    assert intervals.union_length([(0, 10), (5, 15), (20, 25)]) == 20


def test_overlap_with_union():
    merged = intervals.merge([(0, 10), (20, 30)])
    assert intervals.overlap_with_union((5, 25), merged) == 10
    assert intervals.overlap_with_union((10, 20), merged) == 0
    assert intervals.overlap_with_union((-5, 40), merged) == 20


def test_union_overlap():
    a = [(0, 10), (20, 30)]
    b = [(5, 25)]
    assert intervals.union_overlap(a, b) == 10


def test_subtract_middle():
    assert intervals.subtract([(0, 10)], [(3, 7)]) == [(0, 3), (7, 10)]


def test_subtract_all():
    assert intervals.subtract([(0, 10)], [(0, 10)]) == []


def test_subtract_none():
    assert intervals.subtract([(0, 10)], [(20, 30)]) == [(0, 10)]


interval_list = st.lists(
    st.tuples(
        st.integers(min_value=0, max_value=1000),
        st.integers(min_value=0, max_value=1000),
    ).map(lambda t: (min(t), max(t))),
    max_size=12,
)


@settings(max_examples=80, deadline=None)
@given(a=interval_list, b=interval_list)
def test_property_inclusion_exclusion(a, b):
    # |A u B| = |A| + |B| - |A n B| over interval unions.
    union_all = intervals.union_length(a + b)
    len_a = intervals.union_length(a)
    len_b = intervals.union_length(b)
    inter = intervals.union_overlap(a, b)
    assert union_all == len_a + len_b - inter


@settings(max_examples=80, deadline=None)
@given(a=interval_list, b=interval_list)
def test_property_subtract_partitions(a, b):
    # |A \ B| + |A n B| = |A|.
    diff = intervals.total_length(intervals.subtract(a, b))
    inter = intervals.union_overlap(a, b)
    assert diff + inter == intervals.union_length(a)


@settings(max_examples=60, deadline=None)
@given(a=interval_list)
def test_property_merge_is_disjoint_sorted(a):
    merged = intervals.merge(a)
    for (s1, e1), (s2, e2) in zip(merged, merged[1:]):
        assert e1 < s2
    for s, e in merged:
        assert s < e
