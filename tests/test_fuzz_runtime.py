"""Fuzz the CUDA runtime with randomly generated workload specs.

Hypothesis builds structurally valid but arbitrary specs; every one
must run to completion in both modes without leaks, with CC no faster
than base, and with the Sec.-V model closing on the resulting traces.
"""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro import units
from repro.config import SystemConfig
from repro.core import decompose
from repro.cuda import Machine
from repro.faults import ALL_SITES, FatalFault, FaultPlan, SiteFaults
from repro.workloads import WorkloadSpec

MiB = units.MiB


@st.composite
def workload_specs(draw):
    """A random but valid spec over a small buffer universe."""
    buffer_kinds = draw(
        st.lists(
            st.sampled_from(["malloc", "malloc_host", "host_alloc",
                             "malloc_managed"]),
            min_size=2,
            max_size=4,
        )
    )
    ops = []
    names = []
    device_names, host_names, managed_names = [], [], []
    for index, kind in enumerate(buffer_kinds):
        name = f"buf{index}"
        size = draw(st.integers(min_value=4096, max_value=4 * MiB))
        ops.append({"op": kind, "name": name, "bytes": size})
        names.append((name, size, kind))
        if kind == "malloc":
            device_names.append((name, size))
        elif kind == "malloc_managed":
            managed_names.append((name, size))
        else:
            host_names.append((name, size))

    body = []
    num_ops = draw(st.integers(min_value=1, max_value=6))
    for _ in range(num_ops):
        choice = draw(st.sampled_from(["launch", "memcpy", "cpu", "sync"]))
        if choice == "launch":
            op = {
                "op": "launch",
                "kernel": f"k{draw(st.integers(0, 2))}",
                "duration_us": draw(st.integers(min_value=1, max_value=300)),
            }
            if managed_names and draw(st.booleans()):
                name, size = draw(st.sampled_from(managed_names))
                touched = draw(st.integers(min_value=1, max_value=size))
                op["touches"] = [[name, touched]]
            body.append(op)
        elif choice == "memcpy" and device_names and host_names:
            dev, dev_size = draw(st.sampled_from(device_names))
            host, host_size = draw(st.sampled_from(host_names))
            size = draw(st.integers(1, min(dev_size, host_size)))
            if draw(st.booleans()):
                body.append({"op": "memcpy", "dst": dev, "src": host, "bytes": size})
            else:
                body.append({"op": "memcpy", "dst": host, "src": dev, "bytes": size})
        elif choice == "cpu":
            body.append({"op": "cpu", "us": draw(st.floats(0.1, 50.0))})
        else:
            body.append({"op": "sync"})
    loop_count = draw(st.integers(min_value=1, max_value=4))
    ops.append({"op": "loop", "count": loop_count, "body": body})
    ops.append({"op": "sync"})
    return WorkloadSpec("fuzz", ops)


@settings(max_examples=40, deadline=None)
@given(spec=workload_specs())
def test_fuzz_runs_clean_in_both_modes(spec):
    spans = {}
    for label, config in (
        ("base", SystemConfig.base()),
        ("cc", SystemConfig.confidential()),
    ):
        machine = Machine(config)
        machine.run(spec.app())
        # No leaks anywhere.
        assert machine.gpu.hbm.used_bytes == 0
        assert machine.guest.memory.heap.used_bytes == 0
        assert machine.guest.bounce.used_bytes == 0
        machine.gpu.hbm.check_invariants()
        spans[label] = machine.trace.span_ns()
        # The model closes on arbitrary traces: predictions never
        # exceed the observed span (untraced host think-time is the
        # only unmodeled slack), and when there is GPU work the error
        # is small.
        model = decompose(machine.trace)
        if model.span_ns > 0:
            assert model.predicted_ns <= model.span_ns * 1.001
            # The only unmodeled slack is untraced host time: explicit
            # cpu ops plus per-launch app bookkeeping.  The prediction
            # must account for everything else.
            untraced_ns = 0
            for op in spec.ops:
                if op["op"] == "loop":
                    for inner in op["body"]:
                        if inner["op"] == "cpu":
                            untraced_ns += op["count"] * units.us(inner["us"])
            untraced_ns = int(untraced_ns * 1.05)
            untraced_ns += spec.total_launches() * units.us(2.5)
            slack = untraced_ns / model.span_ns
            assert model.prediction_error >= -(slack + 0.03)
        # Launch accounting matches the spec.
        assert len(machine.trace.launches()) == spec.total_launches()
    assert spans["cc"] >= spans["base"]


@st.composite
def fault_plans(draw):
    """A random fault plan: per-site rates and/or explicit schedules."""
    mapping = {}
    for site in draw(
        st.lists(st.sampled_from(ALL_SITES), min_size=1, max_size=3,
                 unique=True)
    ):
        rate = draw(st.sampled_from([0.0, 0.05, 0.2, 0.5]))
        schedule = tuple(
            draw(st.lists(st.integers(0, 30), max_size=4, unique=True))
        )
        max_faults = draw(st.sampled_from([None, 1, 3]))
        mapping[site] = SiteFaults(
            rate=rate, schedule=schedule, max_faults=max_faults
        )
    return FaultPlan.from_mapping(mapping)


@settings(max_examples=30, deadline=None)
@given(spec=workload_specs(), plan=fault_plans(), seed=st.integers(0, 2**31))
def test_fuzz_fault_schedules_never_leak_or_deadlock(spec, plan, seed):
    """Under arbitrary fault plans a run either completes or raises a
    typed fault — and in both cases sim time is monotone, no deadlock
    occurs, and every resource is back home."""
    for config in (
        SystemConfig.base().replace(faults=plan, seed=seed),
        SystemConfig.confidential().replace(faults=plan, seed=seed),
    ):
        machine = Machine(config)
        before = machine.sim.now
        try:
            machine.run(spec.app())
        except FatalFault as exc:
            assert exc.site in ALL_SITES
            assert exc.attempts == config.retry.max_attempts
            assert machine.guest.faults.fatal.get(exc.site, 0) >= 1
        # Sim time only moves forward (machine.run drives to quiescence
        # or raises — it never hangs, or Hypothesis would time out).
        assert machine.sim.now >= before
        # All resources released, success or failure alike.
        assert machine.gpu.hbm.used_bytes == 0
        assert machine.guest.memory.heap.used_bytes == 0
        assert machine.guest.bounce.used_bytes == 0
        assert machine.gpu.launch_credits.in_use == 0
        machine.gpu.hbm.check_invariants()
        machine.guest.memory.heap.check_invariants()
        # The ledger and the trace agree on recovery bookkeeping.
        booked = sum(machine.guest.faults.recovery_ns.values())
        assert machine.trace.recovery_ns() == booked
