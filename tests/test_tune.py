"""Tests for the Pareto auto-tuner (repro.tune).

Covers deterministic pipeline enumeration, exec-grid construction
(non-hidden cells, stable ids), verdict byte-determinism across runs
and jobs counts, cache-backed resume, Pareto-frontier math, and the
new figure's registration in the grid.
"""

import json
import os

import pytest

from repro.exec import runner as exec_runner
from repro.tune import (
    CANDIDATES,
    FAMILY_ORDER,
    TuneError,
    TuneSpec,
    build_grid,
    enumerate_pipelines,
    pareto_frontier,
    render_pareto_table,
    run_tune,
    tune_verdict,
    tune_verdict_json,
)

# Small, fast problem: 4 pipelines + base = 5 quarter-second scenarios.
SMALL = TuneSpec(families=("fusion", "batch"), grid="small",
                 rate=12.0, duration_s=0.25)


def _dirs(tmp_path, name="tune"):
    out = str(tmp_path / name)
    return out, os.path.join(str(tmp_path), ".cache")


# ---------------------------------------------------------------------------
# enumeration and grid construction


def test_enumerate_pipelines_deterministic_and_naive_first():
    pipelines = enumerate_pipelines(SMALL)
    assert pipelines == ("naive", "batch:4", "fusion", "fusion+batch:4")
    assert pipelines == enumerate_pipelines(SMALL)


def test_enumerate_full_grid_size():
    spec = TuneSpec(grid="full")
    sizes = [1 + len(CANDIDATES["full"][f]) for f in FAMILY_ORDER]
    expected = 1
    for size in sizes:
        expected *= size
    pipelines = enumerate_pipelines(spec)
    assert len(pipelines) == expected
    assert len(set(pipelines)) == expected
    assert pipelines[0] == "naive"


def test_build_grid_cells_are_visible_and_stable():
    grid = build_grid(SMALL)
    assert f"tune_base_r{SMALL.rate:g}" in grid
    for cell_id, spec in grid.items():
        # hidden cells would get a selftest cache key, defeating
        # code-fingerprint invalidation for tune results
        assert not spec.hidden
        assert spec.module == "ext_recovered_serving"
        assert spec.variant == "cell"
        assert cell_id == spec.cell_id
    assert list(grid) == list(build_grid(SMALL))


@pytest.mark.parametrize("bad", [
    TuneSpec(grid="huge"),
    TuneSpec(families=()),
    TuneSpec(families=("bogus",)),
    TuneSpec(families=("fusion", "fusion")),
    TuneSpec(rate=0.0),
    TuneSpec(rate=float("nan")),
    TuneSpec(duration_s=-1.0),
    TuneSpec(tenants=0),
])
def test_spec_validation_rejects(bad):
    with pytest.raises(TuneError):
        bad.validate()


# ---------------------------------------------------------------------------
# Pareto math (pure, no simulation)


def _pt(goodput, ttft, ratio):
    return {"goodput_rps": goodput, "ttft_p99_ms": ttft,
            "cc_overhead_ratio": ratio}


def test_pareto_frontier_marks_non_dominated():
    points = [
        _pt(10.0, 50.0, 1.5),   # dominated by the next point
        _pt(12.0, 40.0, 1.2),   # frontier
        _pt(8.0, 10.0, 1.9),    # frontier: best ttft
        _pt(12.0, 40.0, 1.2),   # duplicate of frontier point: kept
        _pt(7.0, 60.0, 2.0),    # dominated by everything
    ]
    assert pareto_frontier(points) == [False, True, True, True, False]


def test_pareto_frontier_single_point():
    assert pareto_frontier([_pt(1.0, 1.0, 1.0)]) == [True]


# ---------------------------------------------------------------------------
# end-to-end sweeps (cache-backed, deterministic)


def test_run_tune_end_to_end_and_resume(tmp_path):
    out, cache = _dirs(tmp_path)
    report = run_tune(SMALL, results_dir=out, cache_dir=cache)
    assert len(report.points) == 4
    pipelines = {p["pipeline"] for p in report.points}
    assert pipelines == {"naive", "batch:4", "fusion", "fusion+batch:4"}
    naive = next(p for p in report.points if p["pipeline"] == "naive")
    assert naive["clawback_frac"] == 0.0
    assert report.pareto  # frontier is never empty
    assert report.best["pipeline"] in pipelines
    # per-point outputs landed under the tune results dir
    assert any(
        name.startswith("ext_recovered_cell_") and name.endswith(".json")
        for name in os.listdir(out)
    )
    # resume: a second run is all cache hits, identical verdict bytes
    first = tune_verdict_json(report)
    again = run_tune(SMALL, results_dir=out, cache_dir=cache)
    assert again.grid_report.all_cached()
    assert tune_verdict_json(again) == first


def test_verdict_bytes_identical_across_jobs_and_cache_modes(tmp_path):
    out, cache = _dirs(tmp_path)
    parallel = run_tune(SMALL, jobs=2, results_dir=out, cache_dir=cache)
    fresh = run_tune(
        SMALL, jobs=1, results_dir=str(tmp_path / "t2"),
        cache_dir=os.path.join(str(tmp_path), ".cache2"), use_cache=False,
    )
    assert tune_verdict_json(parallel) == tune_verdict_json(fresh)


def test_verdict_shape_and_no_run_dependent_fields(tmp_path):
    out, cache = _dirs(tmp_path)
    report = run_tune(SMALL, results_dir=out, cache_dir=cache)
    verdict = tune_verdict(report)
    assert verdict["command"] == "tune"
    assert verdict["cells"] == len(report.points) + 1
    assert tuple(verdict["spec"]["families"]) == SMALL.families
    flat = json.dumps(verdict)
    for forbidden in ("wall", "hit", "miss", "cache"):
        assert forbidden not in flat
    # byte-stable encoding round-trips
    assert json.loads(tune_verdict_json(report)) == json.loads(
        json.dumps(verdict))


def test_render_pareto_table_mentions_best_and_baseline(tmp_path):
    out, cache = _dirs(tmp_path)
    report = run_tune(SMALL, results_dir=out, cache_dir=cache)
    table = render_pareto_table(report)
    assert report.best["pipeline"] in table
    assert "baseline" in table and "clawback" in table


def test_failed_point_raises_tune_error(tmp_path, monkeypatch):
    out, cache = _dirs(tmp_path)
    grid = build_grid(SMALL)
    broken_id = next(iter(grid))
    import dataclasses as _dc

    broken = dict(grid)
    broken[broken_id] = _dc.replace(
        grid[broken_id],
        params=grid[broken_id].params + (("mode", "bogus"),),
    )
    monkeypatch.setattr("repro.tune.driver.build_grid", lambda spec: broken)
    with pytest.raises(TuneError, match="failed"):
        run_tune(SMALL, results_dir=out, cache_dir=cache)


# ---------------------------------------------------------------------------
# figure registration


def test_recovered_serving_cell_registered_in_grid():
    spec = exec_runner.GRID["ext_recovered_serving"]
    assert spec.module == "ext_recovered_serving"
    assert spec.slow and not spec.hidden
    assert "ext_recovered_serving" in exec_runner.resolve_cells(["ext"])
