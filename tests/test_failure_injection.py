"""Failure-injection and robustness tests: resource exhaustion, misuse,
and corruption must fail loudly and leave state consistent."""

import dataclasses

import pytest

from repro import units
from repro.config import SystemConfig
from repro.cuda import CudaError, Machine, run_app
from repro.gpu import nanosleep_kernel
from repro.mem import OutOfMemoryError
from repro.sim import SimulationError, Simulator


# --- device / host memory exhaustion --------------------------------------


def test_hbm_exhaustion_surfaces_oom():
    config = SystemConfig.base()

    def hog(rt):
        yield from rt.malloc(config.gpu.hbm_bytes + units.MiB)

    with pytest.raises(OutOfMemoryError):
        run_app(hog, config)


def test_hbm_exhaustion_by_fragmented_allocs():
    config = SystemConfig.base()

    def hog(rt):
        held = []
        # 94 GiB HBM: 95 x 1 GiB must fail before completing.
        for _ in range(95):
            held.append((yield from rt.malloc(units.GiB)))

    with pytest.raises(OutOfMemoryError):
        run_app(hog, config)


def test_vm_memory_exhaustion():
    config = SystemConfig.base()

    def hog(rt):
        yield from rt.host_alloc(config.vm_memory_bytes + units.MiB)

    with pytest.raises(OutOfMemoryError):
        run_app(hog, config)


def test_machine_state_consistent_after_oom():
    machine = Machine(SystemConfig.base())

    def partial(rt):
        ok = yield from rt.malloc(units.MiB)
        try:
            yield from rt.malloc(machine.config.gpu.hbm_bytes)
        except OutOfMemoryError:
            pass
        yield from rt.free(ok)

    machine.run(partial)
    assert machine.gpu.hbm.used_bytes == 0
    machine.gpu.hbm.check_invariants()


# --- bounce pool exhaustion --------------------------------------------------


def test_bounce_pool_exhaustion():
    config = SystemConfig.confidential()
    machine = Machine(config)
    guest = machine.guest
    slot = guest.bounce.alloc(config.tdx.bounce_pool_bytes)
    with pytest.raises(OutOfMemoryError):
        guest.bounce.alloc(4096)
    guest.bounce.free(slot)
    assert guest.bounce.free_bytes == config.tdx.bounce_pool_bytes


def test_failed_copy_releases_bounce_slots():
    """Regression: a copy that dies mid-flight must not leak its bounce
    slot (or the pool silently shrinks until every CC copy degrades)."""
    from repro.cuda import FatalCudaFault
    from repro.faults import GCM_TAG, FaultPlan, SiteFaults

    plan = FaultPlan.from_mapping(
        {GCM_TAG: SiteFaults(schedule=tuple(range(8)))}
    )
    machine = Machine(SystemConfig.confidential().replace(faults=plan))

    def copy_forever(rt):
        dev = yield from rt.malloc(units.MiB)
        host = yield from rt.host_alloc(units.MiB)
        try:
            yield from rt.memcpy(dev, host)
        finally:
            rt.reclaim(dev)
            rt.reclaim(host)

    with pytest.raises(FatalCudaFault):
        machine.run(copy_forever)
    assert machine.guest.bounce.used_bytes == 0
    assert (
        machine.guest.bounce.free_bytes
        == machine.config.tdx.bounce_pool_bytes
    )


def test_functional_staging_frees_slot_on_corruption():
    """Even a genuine (non-injected) tag failure in the functional
    data path must free the staged slot before propagating."""
    from repro.crypto import AuthenticationError

    machine = Machine(SystemConfig.confidential())
    rt = machine.runtime

    class _BadGcm:
        def encrypt(self, iv, data):
            return data, b"\x00" * 16

        def decrypt(self, iv, data, tag):
            raise AuthenticationError("tag mismatch")

    rt._gcm = _BadGcm()
    with pytest.raises(AuthenticationError):
        rt._stage_through_bounce(b"payload")
    assert machine.guest.bounce.used_bytes == 0


# --- runtime misuse -----------------------------------------------------------


def test_copy_overflow_rejected():
    def bad(rt):
        small = yield from rt.malloc(1024)
        big = yield from rt.host_alloc(8192)
        yield from rt.memcpy(small, big, 8192)

    with pytest.raises(CudaError, match="larger than buffer"):
        run_app(bad, SystemConfig.base())


def test_use_after_free_double_free():
    def bad(rt):
        buf = yield from rt.malloc(4096)
        yield from rt.free(buf)
        yield from rt.free(buf)

    with pytest.raises(CudaError, match="double free"):
        run_app(bad, SystemConfig.base())


def test_exception_in_app_does_not_corrupt_machine():
    machine = Machine(SystemConfig.base())

    def crash(rt):
        yield from rt.malloc(units.MiB)
        raise RuntimeError("app bug")

    with pytest.raises(RuntimeError, match="app bug"):
        machine.run(crash)
    # A new app on the same machine still works.
    def ok(rt):
        yield from rt.launch(nanosleep_kernel(units.us(10)))
        yield from rt.synchronize()
        return "fine"

    assert machine.run(ok) == "fine"


# --- simulation-kernel misuse --------------------------------------------------


def test_run_until_untriggered_event_fails_cleanly():
    sim = Simulator()
    event = sim.event()
    with pytest.raises(SimulationError, match="ran out of events"):
        sim.run(until=event)


def test_interrupt_finished_process_rejected():
    sim = Simulator()

    def proc():
        yield sim.timeout(1)

    process = sim.process(proc())
    sim.run()
    with pytest.raises(SimulationError):
        process.interrupt()


# --- configuration validation ---------------------------------------------------


def test_zero_queue_depth_rejected():
    config = SystemConfig.base()
    bad = config.replace(
        launch=dataclasses.replace(config.launch, launch_queue_depth=0)
    )

    def app(rt):
        yield from rt.launch(nanosleep_kernel(units.us(1)))

    # Config validation at machine boot catches it before any launch.
    with pytest.raises(ValueError, match="launch_queue_depth"):
        run_app(app, bad)


def test_negative_kernel_efficiency_rejected():
    from repro.gpu import KernelSpec

    def app(rt):
        yield from rt.launch(KernelSpec(name="bad", flops=1e9, efficiency=-0.5))
        yield from rt.synchronize()

    with pytest.raises(ValueError, match="efficiency"):
        run_app(app, SystemConfig.base())
