"""Tests for data-parallel CNN training across GPUs under CC."""

import pytest

from repro.config import SystemConfig
from repro.dnn import data_parallel_train, get

MODEL = get("resnet50")


def test_single_gpu_has_no_allreduce():
    result = data_parallel_train(MODEL, 1, 256)
    assert result.allreduce_ns == 0
    assert result.scaling_efficiency == pytest.approx(1.0)


def test_throughput_scales_with_gpus():
    one = data_parallel_train(MODEL, 1, 256)
    four = data_parallel_train(MODEL, 4, 256)
    assert four.throughput_img_per_sec > 3 * one.throughput_img_per_sec
    assert four.global_batch == 4 * 256


def test_nvlink_scaling_efficiency_high():
    result = data_parallel_train(MODEL, 8, 256, topology="nvlink")
    assert result.scaling_efficiency > 0.95


def test_nvl_pairs_slower_than_nvlink():
    nvlink = data_parallel_train(MODEL, 4, 256, topology="nvl-pairs")
    fabric = data_parallel_train(MODEL, 4, 256, topology="nvlink")
    assert nvlink.allreduce_ns > fabric.allreduce_ns


def test_cc_tax_explodes_on_nvl_pairs():
    """The headline composition: gradient sync over the CC PCIe bridge
    dominates distributed confidential training."""
    base = data_parallel_train(
        MODEL, 4, 256, config=SystemConfig.base(), topology="nvl-pairs"
    )
    cc = data_parallel_train(
        MODEL, 4, 256, config=SystemConfig.confidential(), topology="nvl-pairs"
    )
    assert cc.allreduce_ns > 5 * base.allreduce_ns
    assert cc.scaling_efficiency < base.scaling_efficiency - 0.2


def test_cc_tax_small_on_pure_nvlink():
    base = data_parallel_train(
        MODEL, 4, 256, config=SystemConfig.base(), topology="nvlink"
    )
    cc = data_parallel_train(
        MODEL, 4, 256, config=SystemConfig.confidential(), topology="nvlink"
    )
    # Batched link metadata keeps NVLink sync cheap even under CC.
    assert cc.allreduce_ns < 1.2 * base.allreduce_ns


def test_half_precision_halves_gradient_traffic():
    fp32 = data_parallel_train(MODEL, 4, 256, "fp32", topology="nvl-pairs",
                               config=SystemConfig.confidential())
    fp16 = data_parallel_train(MODEL, 4, 256, "fp16", topology="nvl-pairs",
                               config=SystemConfig.confidential())
    assert fp16.allreduce_ns < 0.7 * fp32.allreduce_ns


def test_epoch_time_uses_global_batch():
    result = data_parallel_train(MODEL, 4, 256)
    assert result.epoch_time_sec() > 0
    bigger = data_parallel_train(MODEL, 8, 256)
    assert bigger.epoch_time_sec() < result.epoch_time_sec()


def test_invalid_inputs_rejected():
    with pytest.raises(ValueError):
        data_parallel_train(MODEL, 0, 256)
    with pytest.raises(ValueError):
        data_parallel_train(MODEL, 4, 256, topology="token-ring")
