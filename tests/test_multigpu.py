"""Tests for the secure multi-GPU substrate."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro import units
from repro.multigpu import (
    AuthFailure,
    LinkSecurity,
    LinkSpec,
    MultiGPUNode,
    ReplayError,
    SecureChannel,
    broadcast,
    effective_bandwidth_gbps,
    ring_all_reduce,
    transfer_time_ns,
)


# --- link timing ---------------------------------------------------------


def test_security_ordering_of_transfer_time():
    spec = LinkSpec()
    size = 256 * units.MiB
    none = transfer_time_ns(spec, size, LinkSecurity.NONE)
    batched = transfer_time_ns(spec, size, LinkSecurity.BATCHED)
    naive = transfer_time_ns(spec, size, LinkSecurity.NAIVE)
    assert none < batched < naive


def test_batched_overhead_small():
    spec = LinkSpec()
    size = 256 * units.MiB
    none = effective_bandwidth_gbps(spec, size, LinkSecurity.NONE)
    batched = effective_bandwidth_gbps(spec, size, LinkSecurity.BATCHED)
    naive = effective_bandwidth_gbps(spec, size, LinkSecurity.NAIVE)
    # Batched metadata keeps >90 % of link bandwidth; naive loses far more.
    assert batched / none > 0.9
    assert naive / none < 0.75


def test_zero_size_transfer_free():
    assert transfer_time_ns(LinkSpec(), 0, LinkSecurity.NAIVE) == 0


# --- secure channel (functional) ----------------------------------------


def test_channel_roundtrip_and_counters():
    channel_tx = SecureChannel(b"0123456789abcdef", channel_id=7)
    channel_rx = SecureChannel(b"0123456789abcdef", channel_id=7)
    for index in range(3):
        counter, ciphertext, mac = channel_tx.seal(b"gradient-%d" % index)
        assert counter == index
        assert ciphertext != b"gradient-%d" % index
        assert channel_rx.open(counter, ciphertext, mac) == b"gradient-%d" % index


def test_channel_replay_rejected():
    tx = SecureChannel(b"k" * 16)
    rx = SecureChannel(b"k" * 16)
    message = tx.seal(b"first")
    rx.open(*message)
    with pytest.raises(ReplayError):
        rx.open(*message)


def test_channel_tamper_rejected():
    tx = SecureChannel(b"k" * 16)
    rx = SecureChannel(b"k" * 16)
    counter, ciphertext, mac = tx.seal(b"weights")
    corrupted = bytes([ciphertext[0] ^ 1]) + ciphertext[1:]
    with pytest.raises(AuthFailure):
        rx.open(counter, corrupted, mac)


def test_channel_out_of_order_rejected():
    tx = SecureChannel(b"k" * 16)
    rx = SecureChannel(b"k" * 16)
    first = tx.seal(b"a")
    second = tx.seal(b"b")
    rx.open(*second)
    with pytest.raises(ReplayError):
        rx.open(*first)


@settings(max_examples=20, deadline=None)
@given(payload=st.binary(min_size=0, max_size=200))
def test_channel_roundtrip_property(payload):
    tx = SecureChannel(b"p" * 16, channel_id=3)
    rx = SecureChannel(b"p" * 16, channel_id=3)
    assert rx.open(*tx.seal(payload)) == payload


# --- node ------------------------------------------------------------------


def test_node_channels_are_per_direction():
    node = MultiGPUNode(num_gpus=4)
    assert node.channel(0, 1) is node.channel(0, 1)
    assert node.channel(0, 1) is not node.channel(1, 0)
    with pytest.raises(ValueError):
        node.channel(0, 0)
    with pytest.raises(ValueError):
        node.channel(0, 9)
    with pytest.raises(ValueError):
        MultiGPUNode(num_gpus=1)


def test_cross_pair_keys_differ():
    node = MultiGPUNode(num_gpus=4)
    counter, ciphertext_a, _ = node.channel(0, 1).seal(b"same payload")
    _, ciphertext_b, _ = node.channel(2, 3).seal(b"same payload")
    assert ciphertext_a != ciphertext_b


# --- collectives ------------------------------------------------------------


def test_all_reduce_scales_with_security():
    node = MultiGPUNode(num_gpus=8)
    size = 512 * units.MiB
    times = {
        security: ring_all_reduce(node, size, security).time_ns
        for security in LinkSecurity
    }
    assert times[LinkSecurity.NONE] < times[LinkSecurity.BATCHED]
    assert times[LinkSecurity.BATCHED] < times[LinkSecurity.NAIVE]


def test_all_reduce_bandwidth_improves_with_gpus():
    # Ring all-reduce algorithm bandwidth approaches bus bandwidth and
    # is roughly GPU-count independent at large N; check sane values.
    size = units.GB
    for n in (2, 4, 8):
        node = MultiGPUNode(num_gpus=n)
        result = ring_all_reduce(node, size, LinkSecurity.NONE)
        assert 100 < result.algo_bandwidth_gbps < 400


def test_broadcast_log_hops():
    size = 64 * units.MiB
    t2 = broadcast(MultiGPUNode(num_gpus=2), size, LinkSecurity.NONE).time_ns
    t8 = broadcast(MultiGPUNode(num_gpus=8), size, LinkSecurity.NONE).time_ns
    assert t8 == 3 * t2  # log2(8) = 3 hops vs 1


def test_collective_result_metadata():
    node = MultiGPUNode(num_gpus=4)
    result = ring_all_reduce(node, units.MiB, LinkSecurity.BATCHED)
    assert result.operation == "all_reduce"
    assert result.num_gpus == 4
    assert result.security is LinkSecurity.BATCHED
    assert result.time_ns > 0
