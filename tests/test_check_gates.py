"""Tests for the regression gates (repro.check.golden/accuracy/perf).

Covers the ISSUE acceptance criteria: each gate returns its distinct
documented exit code under injected drift (3 = accuracy, 4 = golden,
5 = perf), golden --update round-trips idempotently, and a perturbed
calibration constant trips the accuracy gate end to end.
"""

import dataclasses
import json
import os

import pytest

from repro.check import (
    EXIT_ACCURACY_DRIFT,
    EXIT_GOLDEN_DRIFT,
    EXIT_OK,
    EXIT_PERF_REGRESSION,
    VERDICTS,
)
from repro.check import paper_targets
from repro.check import perf as check_perf
from repro.check.accuracy import check_accuracy, score_payload
from repro.check.gate import PayloadSet, gate_cells, write_verdict
from repro.check.golden import check_golden, golden_path
from repro.cli import main
from repro.config import SystemConfig

PAYLOAD = {
    "figure_id": "fig_x",
    "columns": ["a", "b"],
    "rows": [["r", 1.25]],
    "comparisons": [],
}


def _payload_set(payload=PAYLOAD, figure_id="fig_x"):
    return PayloadSet(
        payloads={figure_id: json.loads(json.dumps(payload))},
        cell_of={figure_id: figure_id},
    )


# ---------------------------------------------------------------------------
# exit codes


def test_exit_codes_are_distinct_and_documented():
    codes = [EXIT_OK, EXIT_ACCURACY_DRIFT, EXIT_GOLDEN_DRIFT,
             EXIT_PERF_REGRESSION]
    assert codes == [0, 3, 4, 5]  # 1 = crash, 2 = argparse usage error
    assert VERDICTS == {
        "OK": 0, "ACCURACY_DRIFT": 3, "GOLDEN_DRIFT": 4,
        "PERF_REGRESSION": 5,
    }


def test_gate_cells_resolves_defaults_and_tokens():
    fast = gate_cells()
    assert "table1" in fast and "ext_teeio" not in fast
    assert "ext_teeio" in gate_cells(full=True)
    assert gate_cells(["table1"]) == ["table1"]


def test_write_verdict_is_machine_readable(tmp_path):
    path = str(tmp_path / "verdict.json")
    write_verdict(path, "golden", "GOLDEN_DRIFT", {"drifted": ["fig_x"]})
    payload = json.loads(open(path).read())
    assert payload["gate"] == "golden"
    assert payload["exit_code"] == EXIT_GOLDEN_DRIFT
    assert payload["exit_codes"]["PERF_REGRESSION"] == 5
    assert payload["drifted"] == ["fig_x"]


# ---------------------------------------------------------------------------
# golden gate


def test_golden_update_then_verify_roundtrip(tmp_path):
    golden_dir = str(tmp_path)
    report = check_golden(
        [], golden_dir=golden_dir, update=True, payload_set=_payload_set()
    )
    assert report.updated == ["fig_x"]
    assert report.ok and report.exit_code == EXIT_OK

    verify = check_golden([], golden_dir=golden_dir,
                          payload_set=_payload_set())
    assert verify.ok and verify.verdict == "OK"


def test_golden_update_is_idempotent(tmp_path):
    golden_dir = str(tmp_path)
    check_golden([], golden_dir=golden_dir, update=True,
                 payload_set=_payload_set())
    first = open(golden_path(golden_dir, "fig_x")).read()
    again = check_golden([], golden_dir=golden_dir, update=True,
                         payload_set=_payload_set())
    assert again.ok  # --update still reports clean against what it wrote
    assert open(golden_path(golden_dir, "fig_x")).read() == first


def test_golden_drift_returns_exit_4(tmp_path):
    golden_dir = str(tmp_path)
    check_golden([], golden_dir=golden_dir, update=True,
                 payload_set=_payload_set())
    drifted = json.loads(json.dumps(PAYLOAD))
    drifted["rows"][0][1] = 1.30
    report = check_golden([], golden_dir=golden_dir,
                          payload_set=_payload_set(drifted))
    assert not report.ok
    assert report.exit_code == EXIT_GOLDEN_DRIFT
    assert report.verdict == "GOLDEN_DRIFT"
    rendered = report.render()
    assert "$.rows[0][1]" in rendered and "1.25" in rendered


def test_missing_golden_is_drift_with_guidance(tmp_path):
    report = check_golden([], golden_dir=str(tmp_path),
                          payload_set=_payload_set())
    assert report.exit_code == EXIT_GOLDEN_DRIFT
    assert "run `repro check golden --update`" in report.render()


def test_failed_cell_fails_the_golden_gate(tmp_path):
    payload_set = _payload_set()
    payload_set.failures.append("fig_y: boom")
    report = check_golden([], golden_dir=str(tmp_path), update=True,
                          payload_set=payload_set)
    assert not report.ok and report.exit_code == EXIT_GOLDEN_DRIFT


# ---------------------------------------------------------------------------
# accuracy gate


def _crypto_payload(measured, embedded=None):
    table = paper_targets.TARGETS["fig04b_crypto"]
    paper = table["AES-GCM peak on EMR GB/s"].value
    return {
        "comparisons": [{
            "metric": "AES-GCM peak on EMR GB/s",
            "paper": paper if embedded is None else embedded,
            "measured": measured,
        }]
    }


def test_accuracy_within_threshold_is_ok():
    paper = paper_targets.TARGETS["fig04b_crypto"]["AES-GCM peak on EMR GB/s"].value
    score = score_payload("fig04b_crypto", _crypto_payload(paper * 1.001))
    assert not score.breached
    assert score.worst_pct == pytest.approx(0.1)


def test_accuracy_breach_returns_exit_3():
    paper = paper_targets.TARGETS["fig04b_crypto"]["AES-GCM peak on EMR GB/s"].value
    payload_set = PayloadSet(
        payloads={"fig04b_crypto": _crypto_payload(paper * 2)},
        cell_of={"fig04b_crypto": "fig04b"},
    )
    report = check_accuracy([], payload_set=payload_set)
    assert report.breached
    assert report.exit_code == EXIT_ACCURACY_DRIFT
    assert report.verdict == "ACCURACY_DRIFT"
    assert "BREACH" in report.render()


def test_unregistered_metric_breaches():
    score = score_payload(
        "fig04b_crypto",
        {"comparisons": [{"metric": "nope", "paper": 1.0, "measured": 1.0}]},
    )
    assert score.unregistered == ["nope"] and score.breached


def test_embedded_paper_value_must_match_table():
    paper = paper_targets.TARGETS["fig04b_crypto"]["AES-GCM peak on EMR GB/s"].value
    score = score_payload(
        "fig04b_crypto", _crypto_payload(paper, embedded=paper * 1.01)
    )
    assert score.table_mismatches and score.breached


def test_qualitative_targets_are_not_error_scored():
    score = score_payload(
        "fig01_overview",
        {"comparisons": [{
            "metric": "cc-on / cc-off end-to-end (qualitative: > 1)",
            "paper": 1.0,
            "measured": 123.0,  # any direction-consistent magnitude is fine
        }]},
    )
    assert score.qualitative == 1 and not score.scores
    assert not score.breached


def test_every_quantitative_target_has_finite_value():
    for figure_id, metrics in paper_targets.TARGETS.items():
        for metric, target in metrics.items():
            assert target.value == target.value, (figure_id, metric)
        assert paper_targets.threshold_for(figure_id) > 0


def test_paper_value_requires_registration():
    with pytest.raises(KeyError):
        paper_targets.paper_value("fig04b_crypto", "nope")
    assert paper_targets.paper_value("fig04b_crypto", "nope", default=7.0) == 7.0


def test_perturbed_calibration_trips_accuracy_gate(tmp_path, monkeypatch):
    """End to end: inflate the TD hypercall cost and the launch-path
    figure drifts past its accuracy budget (exit 3)."""
    pristine = SystemConfig.confidential()

    def inflated(**overrides):
        return pristine.replace(
            tdx=dataclasses.replace(
                pristine.tdx, td_hypercall_ns=pristine.tdx.td_hypercall_ns * 20
            )
        )

    clean = check_accuracy(["fig07"], results_dir=str(tmp_path / "clean"),
                           use_cache=False)
    assert clean.ok

    monkeypatch.setattr(SystemConfig, "confidential", inflated)
    report = check_accuracy(["fig07"], results_dir=str(tmp_path / "drift"),
                            use_cache=False)
    assert not report.ok
    assert report.exit_code == EXIT_ACCURACY_DRIFT
    assert report.breached[0].figure_id == "fig07_launch_queuing"


# ---------------------------------------------------------------------------
# perf gate


def _baseline(entries, config_hash=""):
    return {
        "version": check_perf.BASELINE_VERSION,
        "config_hash": config_hash,
        "entries": entries,
    }


def test_measure_times_cells_and_sim_benches():
    entries = check_perf.measure(
        ["table1"], repeats=1, sim_benches={"gemm.cc": ("gemm", True)}
    )
    assert set(entries) == {"cell:table1", "sim:gemm.cc"}
    assert entries["cell:table1"].wall_ns > 0
    assert entries["sim:gemm.cc"].sim_ns > 0
    assert entries["sim:gemm.cc"].sim_ns_per_wall_s > 0


def test_baseline_save_load_roundtrip(tmp_path):
    entries = {
        "cell:x": check_perf.PerfEntry("cell:x", wall_ns=1000, sim_ns=500)
    }
    path = str(tmp_path / "b.json")
    check_perf.save_baseline(entries, path, repeats=1)
    baseline = check_perf.load_baseline(path)
    assert baseline["entries"]["cell:x"]["wall_ns"] == 1000
    assert baseline["entries"]["cell:x"]["sim_ns"] == 500
    assert baseline["entries"]["cell:x"]["sim_ns_per_wall_s"] > 0


def test_baseline_version_mismatch_rejected(tmp_path):
    path = str(tmp_path / "b.json")
    with open(path, "w") as handle:
        json.dump({"version": 999, "entries": {}}, handle)
    with pytest.raises(ValueError):
        check_perf.load_baseline(path)


def test_baseline_all_cells_zero_sim_ns_rejected(tmp_path):
    """The zeroed-accounting bug: a baseline where no cell recorded a
    simulator clock must not load (it could never gate sim throughput)."""
    entries = {
        "cell:a": check_perf.PerfEntry("cell:a", wall_ns=1000),
        "cell:b": check_perf.PerfEntry("cell:b", wall_ns=2000),
    }
    path = str(tmp_path / "b.json")
    check_perf.save_baseline(entries, path, repeats=1)
    with pytest.raises(ValueError, match="zeroed accounting"):
        check_perf.load_baseline(path)


def test_baseline_analytic_cell_zero_sim_ns_allowed(tmp_path):
    """Individual analytic cells (table1) legitimately record sim_ns=0
    as long as the harness is recording the clock somewhere."""
    entries = {
        "cell:table1": check_perf.PerfEntry("cell:table1", wall_ns=1000),
        "cell:fig05": check_perf.PerfEntry(
            "cell:fig05", wall_ns=1000, sim_ns=7
        ),
    }
    path = str(tmp_path / "b.json")
    check_perf.save_baseline(entries, path, repeats=1)
    baseline = check_perf.load_baseline(path)
    assert baseline["entries"]["cell:table1"]["sim_ns"] == 0


def test_baseline_sim_bench_zero_sim_ns_rejected(tmp_path):
    entries = {
        "sim:gemm.cc": check_perf.PerfEntry("sim:gemm.cc", wall_ns=1000)
    }
    path = str(tmp_path / "b.json")
    check_perf.save_baseline(entries, path, repeats=1)
    with pytest.raises(ValueError, match="sim_ns=0"):
        check_perf.load_baseline(path)


def test_baseline_nonpositive_wall_ns_rejected(tmp_path):
    path = str(tmp_path / "b.json")
    with open(path, "w") as handle:
        json.dump(
            _baseline(
                {
                    "cell:x": {
                        "wall_ns": 0,
                        "sim_ns": 5,
                        "sim_ns_per_wall_s": 1.0,
                    }
                }
            ),
            handle,
        )
    with pytest.raises(ValueError, match="invalid wall_ns"):
        check_perf.load_baseline(path)


def test_baseline_inconsistent_rate_rejected(tmp_path):
    path = str(tmp_path / "b.json")
    with open(path, "w") as handle:
        json.dump(
            _baseline(
                {
                    "cell:x": {
                        "wall_ns": 1000,
                        "sim_ns": 5,
                        "sim_ns_per_wall_s": 0.0,
                    }
                }
            ),
            handle,
        )
    with pytest.raises(ValueError, match="inconsistent"):
        check_perf.load_baseline(path)


def test_perf_regression_returns_exit_5():
    entries = {"cell:x": check_perf.PerfEntry("cell:x", wall_ns=2000)}
    report = check_perf.compare(
        _baseline({"cell:x": {"wall_ns": 1000, "sim_ns": 0}}), entries,
        band=0.75, noise_floor_ns=0,
    )
    assert report.regressions and report.exit_code == EXIT_PERF_REGRESSION
    assert report.verdict == "PERF_REGRESSION"


def test_perf_within_band_is_ok_and_improvement_is_a_hint():
    entries = {
        "cell:ok": check_perf.PerfEntry("cell:ok", wall_ns=1500),
        "cell:fast": check_perf.PerfEntry("cell:fast", wall_ns=100),
    }
    report = check_perf.compare(
        _baseline({
            "cell:ok": {"wall_ns": 1000, "sim_ns": 0},
            "cell:fast": {"wall_ns": 1000, "sim_ns": 0},
        }),
        entries, band=0.75, noise_floor_ns=0,
    )
    statuses = {c.name: c.status for c in report.comparisons}
    assert statuses == {"cell:ok": "ok", "cell:fast": "improved"}
    assert report.ok and report.exit_code == EXIT_OK


def test_perf_noise_floor_shields_sub_ms_benches():
    """A 2x blowup on a 0.5 ms bench is scheduler jitter, not a
    regression; the same ratio above the floor still fails."""
    entries = {
        "sim:tiny": check_perf.PerfEntry("sim:tiny", wall_ns=1_000_000),
        "cell:big": check_perf.PerfEntry("cell:big", wall_ns=400_000_000),
    }
    report = check_perf.compare(
        _baseline({
            "sim:tiny": {"wall_ns": 500_000, "sim_ns": 0},
            "cell:big": {"wall_ns": 200_000_000, "sim_ns": 0},
        }),
        entries, band=0.2, noise_floor_ns=50_000_000,
    )
    statuses = {c.name: c.status for c in report.comparisons}
    assert statuses == {"sim:tiny": "ok", "cell:big": "regression"}


def test_perf_sim_drift_is_informational_not_failing():
    entries = {"sim:g": check_perf.PerfEntry("sim:g", wall_ns=1000, sim_ns=42)}
    report = check_perf.compare(
        _baseline({"sim:g": {"wall_ns": 1000, "sim_ns": 41}}), entries,
    )
    assert report.ok
    assert any("behavioural drift" in note for note in report.notes)


def test_perf_missing_entries_are_noted():
    report = check_perf.compare(
        _baseline({"cell:gone": {"wall_ns": 1, "sim_ns": 0}}),
        {"cell:new": check_perf.PerfEntry("cell:new", wall_ns=1)},
    )
    assert any("cell:gone" in note for note in report.notes)
    assert any("cell:new" in note for note in report.notes)


# ---------------------------------------------------------------------------
# CLI surface


def test_cli_golden_update_verify_and_drift(tmp_path, capsys):
    out = str(tmp_path / "results")
    golden = str(tmp_path / "golden")
    assert main(["check", "golden", "table1", "--out", out,
                 "--golden-dir", golden, "--update"]) == 0
    assert main(["check", "golden", "table1", "--out", out,
                 "--golden-dir", golden]) == 0
    verdict = json.loads(
        open(os.path.join(out, "check", "golden_verdict.json")).read()
    )
    assert verdict["verdict"] == "OK" and verdict["exit_code"] == 0

    snapshot = os.path.join(golden, "table1_config.json")
    payload = json.loads(open(snapshot).read())
    payload["rows"][0][-1] = "edited"
    with open(snapshot, "w") as handle:
        json.dump(payload, handle)
    capsys.readouterr()
    assert main(["check", "golden", "table1", "--out", out,
                 "--golden-dir", golden]) == EXIT_GOLDEN_DRIFT
    assert "GOLDEN_DRIFT" in capsys.readouterr().out


def test_cli_accuracy_ok_and_report_file(tmp_path, capsys):
    out = str(tmp_path / "results")
    report_path = str(tmp_path / "accuracy.txt")
    assert main(["check", "accuracy", "fig04b", "--out", out,
                 "--report", report_path]) == 0
    assert "verdict: OK" in open(report_path).read()


def test_cli_perf_requires_baseline(tmp_path, capsys):
    missing = str(tmp_path / "nope.json")
    code = main(["check", "perf", "--quick", "--repeats", "1",
                 "--baseline", missing, "--out", str(tmp_path / "r")])
    assert code == 1
    assert "repro check perf --update" in capsys.readouterr().err
