"""Tests for the paged KV-cache block manager."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.llm import KVCacheError, OutOfBlocksError, PagedKVCache


def make_cache(blocks=64, block_tokens=16, per_token=1024):
    return PagedKVCache(blocks * block_tokens * per_token, block_tokens, per_token)


def test_capacity_math():
    cache = make_cache(blocks=64)
    assert cache.num_blocks == 64
    assert cache.free_blocks == 64
    assert cache.blocks_needed(1) == 1
    assert cache.blocks_needed(16) == 1
    assert cache.blocks_needed(17) == 2


def test_admit_allocates_prompt_blocks():
    cache = make_cache()
    blocks = cache.admit(1, prompt_tokens=40)
    assert len(blocks) == 3
    assert cache.used_blocks == 3
    assert cache.sequence_length(1) == 40


def test_append_token_allocates_on_boundary():
    cache = make_cache(block_tokens=4)
    cache.admit(1, prompt_tokens=4)
    assert cache.append_token(1) is True  # token 5 -> new block
    assert cache.append_token(1) is False  # token 6 fits
    assert cache.sequence_length(1) == 6


def test_release_returns_blocks():
    cache = make_cache()
    cache.admit(1, prompt_tokens=100)
    held = cache.used_blocks
    returned = cache.release(1)
    assert returned == held
    assert cache.free_blocks == cache.num_blocks


def test_out_of_blocks_on_admit():
    cache = make_cache(blocks=2, block_tokens=16)
    assert not cache.can_admit(100)
    with pytest.raises(OutOfBlocksError):
        cache.admit(1, prompt_tokens=100)


def test_out_of_blocks_on_decode():
    cache = make_cache(blocks=1, block_tokens=4)
    cache.admit(1, prompt_tokens=4)
    with pytest.raises(OutOfBlocksError):
        cache.append_token(1)


def test_double_admit_rejected():
    cache = make_cache()
    cache.admit(1, prompt_tokens=10)
    with pytest.raises(KVCacheError):
        cache.admit(1, prompt_tokens=10)


def test_unknown_sequence_rejected():
    cache = make_cache()
    with pytest.raises(KVCacheError):
        cache.append_token(42)
    with pytest.raises(KVCacheError):
        cache.release(42)


def test_invalid_construction():
    with pytest.raises(KVCacheError):
        PagedKVCache(100, 0, 10)
    with pytest.raises(KVCacheError):
        PagedKVCache(10, 16, 1024)  # less than one block


@settings(max_examples=50, deadline=None)
@given(
    ops=st.lists(
        st.one_of(
            st.tuples(st.just("admit"), st.integers(1, 80)),
            st.tuples(st.just("append"), st.integers(0, 10)),
            st.tuples(st.just("release"), st.integers(0, 10)),
        ),
        max_size=80,
    )
)
def test_property_block_conservation(ops):
    cache = make_cache(blocks=32, block_tokens=8)
    next_id = 0
    live = []
    for op, value in ops:
        if op == "admit":
            try:
                cache.admit(next_id, value)
                live.append(next_id)
                next_id += 1
            except OutOfBlocksError:
                pass
        elif op == "append" and live:
            try:
                cache.append_token(live[value % len(live)])
            except OutOfBlocksError:
                pass
        elif op == "release" and live:
            cache.release(live.pop(value % len(live)))
        cache.check_invariants()
    for seq in list(live):
        cache.release(seq)
    assert cache.free_blocks == cache.num_blocks
