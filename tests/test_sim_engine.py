"""Unit tests for the discrete-event simulation kernel."""

import pytest

from repro.sim import (
    AllOf,
    Interrupt,
    Resource,
    SimulationError,
    Simulator,
    Store,
)


def test_timeout_advances_clock():
    sim = Simulator()
    log = []

    def proc():
        yield sim.timeout(10)
        log.append(sim.now)
        yield sim.timeout(5)
        log.append(sim.now)

    sim.process(proc())
    sim.run()
    assert log == [10, 15]


def test_timeout_value_passthrough():
    sim = Simulator()
    result = []

    def proc():
        value = yield sim.timeout(3, value="payload")
        result.append(value)

    sim.process(proc())
    sim.run()
    assert result == ["payload"]


def test_negative_timeout_rejected():
    sim = Simulator()
    with pytest.raises(SimulationError):
        sim.timeout(-1)


def test_same_time_events_fire_in_scheduling_order():
    sim = Simulator()
    order = []

    def proc(name):
        yield sim.timeout(7)
        order.append(name)

    for name in "abcde":
        sim.process(proc(name))
    sim.run()
    assert order == list("abcde")


def test_process_return_value_via_run():
    sim = Simulator()

    def proc():
        yield sim.timeout(1)
        return 42

    p = sim.process(proc())
    assert sim.run(until=p) == 42


def test_process_waits_on_subprocess():
    sim = Simulator()
    trace = []

    def child():
        yield sim.timeout(20)
        trace.append(("child-done", sim.now))
        return "child-value"

    def parent():
        value = yield sim.process(child())
        trace.append(("parent-resumed", sim.now, value))

    sim.process(parent())
    sim.run()
    assert trace == [("child-done", 20), ("parent-resumed", 20, "child-value")]


def test_process_exception_propagates_to_parent():
    sim = Simulator()

    def child():
        yield sim.timeout(1)
        raise ValueError("boom")

    def parent():
        with pytest.raises(ValueError):
            yield sim.process(child())
        return "handled"

    p = sim.process(parent())
    assert sim.run(until=p) == "handled"


def test_unhandled_process_exception_surfaces_at_run():
    sim = Simulator()

    def proc():
        yield sim.timeout(1)
        raise RuntimeError("unhandled")

    p = sim.process(proc())
    with pytest.raises(RuntimeError, match="unhandled"):
        sim.run(until=p)


def test_run_until_time_stops_clock_at_deadline():
    sim = Simulator()

    def proc():
        yield sim.timeout(100)

    sim.process(proc())
    sim.run(until=50)
    assert sim.now == 50
    sim.run()
    assert sim.now == 100


def test_all_of_collects_values_in_order():
    sim = Simulator()

    def worker(delay, value):
        yield sim.timeout(delay)
        return value

    def parent():
        procs = [sim.process(worker(d, v)) for d, v in [(30, "a"), (10, "b")]]
        values = yield AllOf(sim, procs)
        return values, sim.now

    p = sim.process(parent())
    values, when = sim.run(until=p)
    assert values == ["a", "b"]
    assert when == 30


def test_any_of_returns_first():
    sim = Simulator()

    def parent():
        first = yield sim.any_of([sim.timeout(50, "slow"), sim.timeout(5, "fast")])
        return first, sim.now

    p = sim.process(parent())
    (index, value), when = sim.run(until=p)
    assert (index, value) == (1, "fast")
    assert when == 5


def test_event_succeed_twice_rejected():
    sim = Simulator()
    ev = sim.event()
    ev.succeed(1)
    with pytest.raises(SimulationError):
        ev.succeed(2)


def test_interrupt_wakes_waiting_process():
    sim = Simulator()
    log = []

    def sleeper():
        try:
            yield sim.timeout(1000)
        except Interrupt as intr:
            log.append((sim.now, intr.cause))

    p = sim.process(sleeper())

    def interrupter():
        yield sim.timeout(10)
        p.interrupt("wake-up")

    sim.process(interrupter())
    sim.run()
    assert log == [(10, "wake-up")]


def test_resource_serializes_access():
    sim = Simulator()
    res = Resource(sim, capacity=1)
    spans = []

    def user(name, hold):
        req = res.request()
        yield req
        start = sim.now
        yield sim.timeout(hold)
        res.release(req)
        spans.append((name, start, sim.now))

    sim.process(user("a", 10))
    sim.process(user("b", 5))
    sim.run()
    assert spans == [("a", 0, 10), ("b", 10, 15)]


def test_resource_capacity_two_runs_pair_concurrently():
    sim = Simulator()
    res = Resource(sim, capacity=2)
    starts = {}

    def user(name):
        req = res.request()
        yield req
        starts[name] = sim.now
        yield sim.timeout(10)
        res.release(req)

    for name in ("a", "b", "c"):
        sim.process(user(name))
    sim.run()
    assert starts["a"] == 0
    assert starts["b"] == 0
    assert starts["c"] == 10


def test_resource_fifo_ordering():
    sim = Simulator()
    res = Resource(sim, capacity=1)
    order = []

    def user(name):
        req = res.request()
        yield req
        order.append(name)
        yield sim.timeout(1)
        res.release(req)

    for name in "abcd":
        sim.process(user(name))
    sim.run()
    assert order == list("abcd")


def test_store_put_get_fifo():
    sim = Simulator()
    store = Store(sim)
    got = []

    def producer():
        for item in (1, 2, 3):
            yield store.put(item)
            yield sim.timeout(1)

    def consumer():
        for _ in range(3):
            item = yield store.get()
            got.append((sim.now, item))

    sim.process(producer())
    sim.process(consumer())
    sim.run()
    assert [item for _, item in got] == [1, 2, 3]


def test_store_get_blocks_until_put():
    sim = Simulator()
    store = Store(sim)
    got = []

    def consumer():
        item = yield store.get()
        got.append((sim.now, item))

    def producer():
        yield sim.timeout(25)
        yield store.put("late")

    sim.process(consumer())
    sim.process(producer())
    sim.run()
    assert got == [(25, "late")]


def test_bounded_store_put_blocks_when_full():
    sim = Simulator()
    store = Store(sim, capacity=1)
    log = []

    def producer():
        yield store.put("x")
        log.append(("put-x", sim.now))
        yield store.put("y")
        log.append(("put-y", sim.now))

    def consumer():
        yield sim.timeout(40)
        item = yield store.get()
        log.append(("got", item, sim.now))

    sim.process(producer())
    sim.process(consumer())
    sim.run()
    assert ("put-x", 0) in log
    put_y = next(entry for entry in log if entry[0] == "put-y")
    assert put_y[1] == 40


def test_yielding_non_event_raises():
    sim = Simulator()

    def proc():
        yield 42

    p = sim.process(proc())
    with pytest.raises(SimulationError):
        sim.run(until=p)
