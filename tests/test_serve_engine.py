"""Tests for the serving engine and scenario runner: CC ordering,
preemption cost paths, SLO reporting, and verdict determinism."""

import pytest

from repro import units
from repro.config import SystemConfig
from repro.serve import (
    ScenarioSpec,
    SLOTargets,
    build_report,
    parse_duration_ns,
    predicted_step_cc_overhead_ns,
    run_scenario,
    scenario_verdict,
    verdict_json,
)

# Small but non-trivial: ~8 requests over 2 tenants in half a second.
QUICK = ScenarioSpec(rate_rps=16.0, duration_ns=units.NS_PER_SEC // 2)

# High enough pressure on a small pool to force paging.
PAGING = ScenarioSpec(
    rate_rps=32.0,
    duration_ns=units.NS_PER_SEC // 2,
    max_num_seqs=8,
    kv_budget_bytes=24 * units.MiB,
)


def test_scenario_completes_and_reports():
    trace, result = run_scenario(QUICK, SystemConfig.base())
    assert result.requests > 0
    report = result.report
    assert report["completed"] == result.requests - report["rejected"]
    assert report["goodput_rps"] <= report["completed_rps"]
    assert report["ttft_ms"]["p50"] <= report["ttft_ms"]["p99"]
    assert set(report["tenants"]) == {"tenant0", "tenant1"}
    # The engine exported its SLO histograms and occupancy tracks.
    names = trace.metrics.names()
    assert "serve.ttft_ms" in names
    assert "serve.kv_used_blocks" in names
    assert "serve.queue_depth" in names


def test_cc_run_is_slower_and_pays_the_step_tax():
    _, base = run_scenario(QUICK, SystemConfig.base())
    _, cc = run_scenario(QUICK, SystemConfig.confidential())
    assert cc.cc and not base.cc
    assert base.arrival_digest == cc.arrival_digest  # same offered stream
    assert cc.engine.elapsed_ns > base.engine.elapsed_ns
    predicted_ns = predicted_step_cc_overhead_ns(
        SystemConfig.base(), SystemConfig.confidential()
    )
    assert predicted_ns > 0
    # Mean TTFT inflates by at least the model's fixed per-step tax.
    assert (
        cc.report["ttft_ms"]["mean"] - base.report["ttft_ms"]["mean"]
        >= units.to_ms(predicted_ns)
    )


def test_swap_preemption_rides_the_pcie_path():
    trace, result = run_scenario(PAGING, SystemConfig.confidential())
    stats = result.engine.stats
    assert stats["preemptions"] > 0
    assert stats["swap_out_bytes"] > 0
    assert stats["swap_in_bytes"] > 0
    assert trace.metrics.counter("serve.swap_bytes").value == (
        stats["swap_out_bytes"] + stats["swap_in_bytes"]
    )
    assert result.report["total_preemptions"] > 0


def test_recompute_preemption_pays_compute_not_bytes():
    spec = ScenarioSpec(
        rate_rps=PAGING.rate_rps,
        duration_ns=PAGING.duration_ns,
        max_num_seqs=PAGING.max_num_seqs,
        kv_budget_bytes=PAGING.kv_budget_bytes,
        preemption="recompute",
    )
    _, result = run_scenario(spec, SystemConfig.base())
    stats = result.engine.stats
    assert stats["preemptions"] > 0
    assert stats["recompute_tokens"] > 0
    assert stats["swap_out_bytes"] == stats["swap_in_bytes"] == 0


def test_verdict_json_is_deterministic():
    first = verdict_json(run_scenario(QUICK, SystemConfig.confidential())[1])
    second = verdict_json(run_scenario(QUICK, SystemConfig.confidential())[1])
    assert first == second
    payload = scenario_verdict(run_scenario(QUICK, SystemConfig.base())[1])
    assert payload["command"] == "serve"
    assert payload["spec"]["seed"] == 42


def test_different_seeds_change_the_verdict():
    spec43 = ScenarioSpec(rate_rps=QUICK.rate_rps,
                          duration_ns=QUICK.duration_ns, seed=43)
    a = verdict_json(run_scenario(QUICK, SystemConfig.base())[1])
    b = verdict_json(run_scenario(spec43, SystemConfig.base())[1])
    assert a != b


def test_build_report_empty_run():
    report = build_report([], [], units.NS_PER_SEC, SLOTargets())
    assert report["completed"] == 0
    assert report["goodput_rps"] == 0.0
    assert report["ttft_ms"]["p99"] == 0.0


def test_parse_duration():
    assert parse_duration_ns("2s") == 2 * units.NS_PER_SEC
    assert parse_duration_ns("500ms") == units.NS_PER_SEC // 2
    assert parse_duration_ns("1.5s") == int(1.5 * units.NS_PER_SEC)
    assert parse_duration_ns("3") == 3 * units.NS_PER_SEC
    with pytest.raises(ValueError, match="duration"):
        parse_duration_ns("fast")
