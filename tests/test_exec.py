"""Tests for the parallel experiment harness (repro.exec).

Covers the ISSUE-3 acceptance criteria: cache hit/miss/invalidation
(config change, calibration change, code-fingerprint change),
serial-vs-parallel byte-identical payloads, warm-cache reruns that
execute zero simulations, and worker crash isolation.
"""

import json
import os

import pytest

from repro.cli import main
from repro.config import SystemConfig
from repro.exec import cache as exec_cache
from repro.exec import fingerprint
from repro.exec import runner as exec_runner
from repro.figures.common import FigureResult

FAST_CELLS = ["table1", "fig04b"]


@pytest.fixture(autouse=True)
def _fresh_fingerprints():
    """Monkeypatched source readers must not leak cached fingerprints."""
    fingerprint.clear_caches()
    yield
    fingerprint.clear_caches()


def _dirs(tmp_path, name="run"):
    results = str(tmp_path / name)
    return results, os.path.join(results, ".cache")


# ---------------------------------------------------------------------------
# fingerprints


def test_config_hash_distinguishes_modes_and_overrides():
    base = fingerprint.config_hash(SystemConfig.base())
    assert base == fingerprint.config_hash(SystemConfig.base())
    assert base != fingerprint.config_hash(SystemConfig.confidential())
    assert base != fingerprint.config_hash(SystemConfig.base().replace(seed=1))


def test_cell_fingerprint_tracks_figure_source(monkeypatch):
    before = fingerprint.cell_fingerprint("table1_config")
    assert before == fingerprint.cell_fingerprint("table1_config")
    original = fingerprint._read_source

    def edited(path):
        data = original(path)
        if path.endswith("table1_config.py"):
            data += b"\n# edited"
        return data

    monkeypatch.setattr(fingerprint, "_read_source", edited)
    fingerprint.clear_caches()
    assert fingerprint.cell_fingerprint("table1_config") != before
    # an untouched figure is unaffected by the edit
    monkeypatch.undo()
    fingerprint.clear_caches()
    assert fingerprint.cell_fingerprint("table1_config") == before


def test_core_edit_invalidates_every_cell(monkeypatch):
    before = fingerprint.cell_fingerprint("table1_config")
    original = fingerprint._read_source

    def edited(path):
        data = original(path)
        if path.endswith(os.path.join("repro", "units.py")):
            data += b"\n# core edit"
        return data

    monkeypatch.setattr(fingerprint, "_read_source", edited)
    fingerprint.clear_caches()
    assert fingerprint.cell_fingerprint("table1_config") != before


def test_harness_edit_does_not_invalidate(monkeypatch):
    """Editing repro/exec or the CLI must not re-simulate figures."""
    before = fingerprint.package_fingerprint()
    original = fingerprint._read_source

    def edited(path):
        data = original(path)
        if os.sep + "exec" + os.sep in path or path.endswith("cli.py"):
            data += b"\n# harness edit"
        return data

    monkeypatch.setattr(fingerprint, "_read_source", edited)
    fingerprint.clear_caches()
    assert fingerprint.package_fingerprint() == before


def _with_edit(monkeypatch, suffix):
    """Monkeypatch the source reader to append bytes to files whose
    path ends with ``suffix`` (relative, os.sep-joined)."""
    original = fingerprint._read_source
    tail = os.path.join(*suffix.split("/"))

    def edited(path):
        data = original(path)
        if path.endswith(tail):
            data += b"\n# scoped edit"
        return data

    monkeypatch.setattr(fingerprint, "_read_source", edited)
    fingerprint.clear_caches()


# The cache-invalidation matrix for the scoped optim/tune fingerprint:
# rows are edit sites, columns are (figure module -> must invalidate?).
# Only the figures that import repro.optim may be re-simulated by a
# pass/tuner edit; a core edit still invalidates everything.
_MATRIX = [
    ("repro/optim/passes.py",
     {"table1_config": False, "ext_serving": False,
      "extensions": True, "ext_recovered_serving": True}),
    ("repro/tune/driver.py",
     {"table1_config": False, "ext_serving": False,
      "extensions": True, "ext_recovered_serving": True}),
    ("repro/units.py",
     {"table1_config": True, "ext_serving": True,
      "extensions": True, "ext_recovered_serving": True}),
    ("repro/figures/ext_recovered_serving.py",
     {"table1_config": False, "ext_serving": False,
      "extensions": False, "ext_recovered_serving": True}),
]


@pytest.mark.parametrize("edit_site,expected", _MATRIX,
                         ids=[site for site, _ in _MATRIX])
def test_invalidation_matrix_scopes_optim_edits(
    monkeypatch, edit_site, expected
):
    before = {
        module: fingerprint.cell_fingerprint(module) for module in expected
    }
    _with_edit(monkeypatch, edit_site)
    for module, must_change in expected.items():
        changed = fingerprint.cell_fingerprint(module) != before[module]
        assert changed == must_change, (
            f"edit to {edit_site}: expected "
            f"{module} {'invalidated' if must_change else 'untouched'}"
        )


def test_optim_dependent_modules_match_imports():
    """The scoped-fingerprint module list must track reality: exactly
    the figure modules that import repro.optim."""
    import importlib

    from repro.exec.runner import GRID

    modules = {
        spec.module for spec in GRID.values() if not spec.hidden
    }
    importers = set()
    for module in modules:
        source = open(
            fingerprint._figure_path(module), encoding="utf-8"
        ).read()
        if "from ..optim" in source or "from repro.optim" in source:
            importers.add(module)
    assert importers == set(fingerprint._OPTIM_DEPENDENT_MODULES)
    # and each one really imports cleanly
    for module in importers:
        importlib.import_module(f"repro.figures.{module}")


# ---------------------------------------------------------------------------
# cache store


def test_cache_put_get_roundtrip(tmp_path):
    cache = exec_cache.ResultCache(str(tmp_path / "c"))
    key = exec_cache.entry_key({"cell": "x"})
    assert cache.get(key) is None
    cache.put(key, {"cell": "x", "figure_id": "f", "payload_json": "{}",
                    "payload_text": "t", "wall_ns": 1})
    entry = cache.get(key)
    assert entry["figure_id"] == "f"
    assert cache.stats.hits == 1 and cache.stats.misses == 1
    assert len(cache) == 1
    assert cache.clear() == 1
    assert len(cache) == 0


def test_cache_corrupt_entry_is_a_miss(tmp_path):
    cache = exec_cache.ResultCache(str(tmp_path / "c"))
    key = exec_cache.entry_key({"cell": "x"})
    os.makedirs(cache.root, exist_ok=True)
    with open(cache.path_for(key), "w") as handle:
        handle.write("{truncated")
    assert cache.get(key) is None
    assert cache.stats.misses == 1
    assert cache.stats.evicted_corrupt == [cache.path_for(key)]


# ---------------------------------------------------------------------------
# grid resolution


def test_resolve_cells_exact_and_prefix():
    assert exec_runner.resolve_cells(["table1"]) == ["table1"]
    assert exec_runner.resolve_cells(["fig04"]) == ["fig04a", "fig04b"]
    assert exec_runner.resolve_cells(["fig04", "fig04a"]) == ["fig04a", "fig04b"]
    ext = exec_runner.resolve_cells(["ext"])
    assert len(ext) == 15 and all(c.startswith("ext_") for c in ext)


def test_resolve_cells_unknown_token():
    with pytest.raises(ValueError, match="unknown figure"):
        exec_runner.resolve_cells(["fig99"])


def test_hidden_cells_not_prefix_expanded():
    with pytest.raises(ValueError):
        exec_runner.resolve_cells(["selftest"])
    # but exact id still resolves (it's the crash-isolation hook)
    assert exec_runner.resolve_cells(["selftest_boom"]) == ["selftest_boom"]


def test_default_cells_split():
    fast = exec_runner.default_cells()
    everything = exec_runner.default_cells(include_slow=True)
    assert "fig13" not in fast and "fig13" in everything
    assert "selftest_boom" not in everything
    assert set(fast) < set(everything)


# ---------------------------------------------------------------------------
# orchestration: hit/miss, warm-cache zero simulation, invalidation


def test_cold_then_warm_run(tmp_path, monkeypatch):
    results, cache_dir = _dirs(tmp_path)
    cold = exec_runner.run_grid(FAST_CELLS, results_dir=results)
    assert cold.ok and not cold.all_cached()
    assert cold.stats.misses == len(FAST_CELLS) and cold.stats.hits == 0
    assert [o.status for o in cold.outcomes] == ["run"] * len(FAST_CELLS)
    for outcome in cold.outcomes:
        assert os.path.exists(outcome.json_path)

    # warm rerun: every cell served from cache, zero simulations
    def no_simulation(item):
        raise AssertionError(f"warm run executed {item[0]}")

    monkeypatch.setattr(exec_runner, "execute_cell", no_simulation)
    warm = exec_runner.run_grid(FAST_CELLS, results_dir=results)
    assert warm.ok and warm.all_cached()
    assert warm.stats.hits == len(FAST_CELLS) and warm.stats.misses == 0
    # metrics registry saw the hits
    assert warm.metrics.counter("exec.cache.hits").value == len(FAST_CELLS)
    assert "exec.cache.misses" not in warm.metrics


def test_warm_outputs_byte_identical(tmp_path):
    results, _ = _dirs(tmp_path)
    exec_runner.run_grid(FAST_CELLS, results_dir=results)
    cold_bytes = {
        name: open(os.path.join(results, name), "rb").read()
        for name in sorted(os.listdir(results))
        if name.endswith((".json", ".txt"))
    }
    exec_runner.run_grid(FAST_CELLS, results_dir=results)
    for name, blob in cold_bytes.items():
        assert open(os.path.join(results, name), "rb").read() == blob


def test_force_reruns_and_refreshes(tmp_path):
    results, _ = _dirs(tmp_path)
    exec_runner.run_grid(FAST_CELLS, results_dir=results)
    forced = exec_runner.run_grid(FAST_CELLS, results_dir=results, force=True)
    assert [o.status for o in forced.outcomes] == ["run"] * len(FAST_CELLS)
    assert forced.stats.misses == len(FAST_CELLS)
    warm = exec_runner.run_grid(FAST_CELLS, results_dir=results)
    assert warm.all_cached()


def test_no_cache_mode_never_touches_cache(tmp_path):
    results, cache_dir = _dirs(tmp_path)
    report = exec_runner.run_grid(
        FAST_CELLS, results_dir=results, use_cache=False
    )
    assert report.ok and not os.path.exists(cache_dir)


@pytest.mark.parametrize(
    "ingredient", ["grid_config_hash", "calibration_hash"]
)
def test_invalidation_on_hash_change(tmp_path, monkeypatch, ingredient):
    results, _ = _dirs(tmp_path)
    exec_runner.run_grid(FAST_CELLS, results_dir=results)
    monkeypatch.setattr(
        fingerprint, ingredient, lambda: f"changed-{ingredient}"
    )
    rerun = exec_runner.run_grid(FAST_CELLS, results_dir=results)
    assert rerun.stats.hits == 0
    assert [o.status for o in rerun.outcomes] == ["run"] * len(FAST_CELLS)


def test_invalidation_on_code_fingerprint_change(tmp_path, monkeypatch):
    results, _ = _dirs(tmp_path)
    exec_runner.run_grid(["table1", "fig04b"], results_dir=results)
    original = fingerprint._read_source

    def edited(path):
        data = original(path)
        if path.endswith("fig04_bandwidth.py"):
            data += b"\n# edited"
        return data

    monkeypatch.setattr(fingerprint, "_read_source", edited)
    fingerprint.clear_caches()
    rerun = exec_runner.run_grid(["table1", "fig04b"], results_dir=results)
    by_cell = {o.cell: o.status for o in rerun.outcomes}
    # only the edited figure re-simulates; the untouched one stays cached
    assert by_cell == {"table1": "hit", "fig04b": "run"}


def test_corrupt_cache_entry_recovers(tmp_path):
    results, cache_dir = _dirs(tmp_path)
    exec_runner.run_grid(["table1"], results_dir=results)
    key = exec_runner.cell_cache_key(exec_runner.GRID["table1"])
    path = os.path.join(cache_dir, f"{key}.json")
    with open(path, "w") as handle:
        handle.write('{"version": 1, "payload_json"')  # truncated write
    repaired = exec_runner.run_grid(["table1"], results_dir=results)
    assert repaired.outcomes[0].status == "run"
    assert repaired.stats.evicted_corrupt == [path]
    assert exec_runner.run_grid(["table1"], results_dir=results).all_cached()


# ---------------------------------------------------------------------------
# serial vs parallel determinism


def test_serial_and_parallel_payloads_byte_identical(tmp_path):
    cells = ["table1", "fig04a", "fig04b"]
    serial_dir = str(tmp_path / "serial")
    parallel_dir = str(tmp_path / "parallel")
    serial = exec_runner.run_grid(
        cells, jobs=1, results_dir=serial_dir, use_cache=False
    )
    parallel = exec_runner.run_grid(
        cells, jobs=2, results_dir=parallel_dir, use_cache=False
    )
    assert serial.ok and parallel.ok
    names = sorted(os.listdir(serial_dir))
    assert names == sorted(os.listdir(parallel_dir))
    for name in names:
        with open(os.path.join(serial_dir, name), "rb") as handle:
            serial_blob = handle.read()
        with open(os.path.join(parallel_dir, name), "rb") as handle:
            assert handle.read() == serial_blob, name


def test_parallel_matches_figure_result_save(tmp_path):
    """Harness output files must be byte-identical to FigureResult.save."""
    from repro.figures import fig04_bandwidth

    direct_dir = str(tmp_path / "direct")
    result = fig04_bandwidth.generate_4b()
    result.save(direct_dir)
    harness_dir = str(tmp_path / "harness")
    exec_runner.run_grid(["fig04b"], jobs=2, results_dir=harness_dir)
    for suffix in (".json", ".txt"):
        name = result.figure_id + suffix
        with open(os.path.join(direct_dir, name), "rb") as handle:
            direct_blob = handle.read()
        with open(os.path.join(harness_dir, name), "rb") as handle:
            assert handle.read() == direct_blob


# ---------------------------------------------------------------------------
# crash isolation


def test_failing_cell_does_not_poison_the_pool(tmp_path):
    results, _ = _dirs(tmp_path)
    report = exec_runner.run_grid(
        ["selftest_boom", "table1", "fig04b"], jobs=2, results_dir=results
    )
    assert not report.ok
    by_cell = {o.cell: o for o in report.outcomes}
    assert by_cell["selftest_boom"].status == "failed"
    assert "RuntimeError" in by_cell["selftest_boom"].error
    assert by_cell["table1"].ok and by_cell["fig04b"].ok
    assert report.metrics.counter("exec.cells.failed").value == 1
    # the failure was not cached; healthy cells were
    rerun = exec_runner.run_grid(
        ["selftest_boom", "table1", "fig04b"], jobs=1, results_dir=results
    )
    statuses = {o.cell: o.status for o in rerun.outcomes}
    assert statuses == {
        "selftest_boom": "failed", "table1": "hit", "fig04b": "hit"
    }


def test_failing_cell_inline_is_isolated_too(tmp_path):
    results, _ = _dirs(tmp_path)
    report = exec_runner.run_grid(
        ["selftest_boom", "table1"], jobs=1, results_dir=results
    )
    assert not report.ok
    assert report.outcomes[0].status == "failed"
    assert report.outcomes[1].ok


# ---------------------------------------------------------------------------
# payload rehydration + bench routing


def test_payload_roundtrip():
    from repro.figures import table1_config

    result = table1_config.generate()
    rehydrated = exec_runner.payload_to_result(result.to_json())
    assert isinstance(rehydrated, FigureResult)
    assert rehydrated.to_json() == result.to_json()
    assert rehydrated.to_text() == result.to_text()


def test_cell_for_generator():
    from repro.figures import extensions, fig04_bandwidth, table1_config

    assert exec_runner.cell_for_generator(table1_config.generate) == "table1"
    assert exec_runner.cell_for_generator(fig04_bandwidth.generate_4b) == "fig04b"
    assert (
        exec_runner.cell_for_generator(extensions.generate_teeio) == "ext_teeio"
    )
    assert exec_runner.cell_for_generator(lambda: None) is None


def test_every_visible_cell_maps_to_a_variant():
    import importlib

    for cell_id, spec in exec_runner.GRID.items():
        if spec.hidden:
            continue
        module = importlib.import_module(spec.entry_module())
        assert spec.variant in module.VARIANTS, cell_id


# ---------------------------------------------------------------------------
# CLI integration


def test_cli_grid_cold_warm_and_assert_cached(tmp_path, capsys):
    out = str(tmp_path / "results")
    argv = ["run", "--figures", "table1,fig04b", "--out", out]
    assert main(argv) == 0
    captured = capsys.readouterr().out
    assert "0 cache hits" in captured and "2 misses" in captured
    assert main(argv + ["--assert-cached", "--jobs", "2"]) == 0
    captured = capsys.readouterr().out
    assert "2 cache hits" in captured and "100% hit rate" in captured


def test_cli_assert_cached_fails_cold(tmp_path, capsys):
    out = str(tmp_path / "results")
    assert main(["run", "--figures", "table1", "--out", out,
                 "--assert-cached"]) == 1
    assert "expected 100% cache hits" in capsys.readouterr().err


def test_cli_grid_unknown_figure(tmp_path):
    with pytest.raises(SystemExit, match="unknown figure"):
        main(["run", "--figures", "fig99", "--out", str(tmp_path)])


def test_cli_run_requires_app_or_grid():
    with pytest.raises(SystemExit, match="needs an APP"):
        main(["run"])
    with pytest.raises(SystemExit, match="not both"):
        main(["run", "2mm", "--figures", "table1"])


def test_cli_failed_cell_exits_nonzero(tmp_path, capsys):
    out = str(tmp_path / "results")
    assert main(["run", "--figures", "selftest_boom", "--out", out]) == 1
    assert "FAILED selftest_boom" in capsys.readouterr().out


def test_cli_grid_json_matches_figures_command(tmp_path):
    """`repro run --figures` and the legacy serial `repro figures` path
    write byte-identical payloads."""
    legacy_dir = str(tmp_path / "legacy")
    grid_dir = str(tmp_path / "grid")
    assert main(["figures", "fig04b", "--out", legacy_dir]) == 0
    assert main(["run", "--figures", "fig04b", "--jobs", "2",
                 "--out", grid_dir]) == 0
    with open(os.path.join(legacy_dir, "fig04b_crypto.json"), "rb") as handle:
        legacy_blob = handle.read()
    with open(os.path.join(grid_dir, "fig04b_crypto.json"), "rb") as handle:
        assert handle.read() == legacy_blob
    payload = json.loads(legacy_blob)
    assert payload["figure_id"] == "fig04b_crypto"


# ---------------------------------------------------------------------------
# simulator-clock accounting (the zeroed-sim_ns bug)


def test_execute_cell_records_simulator_clock():
    """A simulating cell's payload carries the final simulator clock —
    the statistic the perf baseline's sim_ns_per_wall_s derives from."""
    spec = exec_runner.GRID["fig03"]
    payload = exec_runner.execute_cell(exec_runner._work_item(spec))
    assert payload["ok"]
    assert payload["sim_ns"] > 0


def test_analytic_cell_has_zero_sim_ns():
    spec = exec_runner.GRID["table1"]
    payload = exec_runner.execute_cell(exec_runner._work_item(spec))
    assert payload["ok"]
    assert payload["sim_ns"] == 0


def test_bench_cell_forwards_sim_ns():
    result = exec_runner.bench_cell("fig03", repeats=1)
    assert result["ok"]
    assert result["sim_ns"] > 0


def test_run_grid_sim_ns_survives_cache_roundtrip(tmp_path):
    results, _ = _dirs(tmp_path)
    cold = exec_runner.run_grid(["fig03"], results_dir=results)
    assert cold.ok
    recorded = cold.outcomes[0].sim_ns
    assert recorded > 0
    warm = exec_runner.run_grid(["fig03"], results_dir=results)
    assert warm.all_cached()
    assert warm.outcomes[0].sim_ns == recorded
